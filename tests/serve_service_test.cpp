// The serving layer's contract: responses bit-identical to direct solver
// calls under any batching policy, and typed (never silent) rejections.
#include "serve/serve.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/reoptimize.hpp"
#include "core/scenario.hpp"
#include "core/solver.hpp"
#include "helpers.hpp"

namespace netmon::serve {
namespace {

using namespace std::chrono_literals;

// A tiny model (4-node line, 6 links) so queue/deadline mechanics run in
// microseconds; the GEANT fixture below covers solver-level identity.
struct LineModel {
  topo::Graph graph = test::line_graph();
  core::MeasurementTask task;
  traffic::LinkLoads loads;

  LineModel() {
    task.ods = {{0, 3}, {1, 3}};
    task.expected_packets = {5000.0, 3000.0};
    loads.assign(graph.link_count(), 1000.0);
  }

  std::unique_ptr<Server> server(ServerOptions options = {}) const {
    if (options.problem.theta == core::ProblemOptions{}.theta)
      options.problem.theta = 50000.0;
    return std::make_unique<Server>(graph, task, loads, options);
  }
};

struct ServeLineTest : ::testing::Test {
  LineModel model;
};

Request solve_request(std::uint64_t id) {
  Request request;
  request.id = id;
  return request;
}

core::ProblemOptions at_theta(double theta) {
  core::ProblemOptions options;
  options.theta = theta;
  return options;
}

struct ServeGeantTest : ::testing::Test {
  core::GeantScenario scenario = core::make_geant_scenario();

  std::unique_ptr<Server> server(ServerOptions options = {}) const {
    return std::make_unique<Server>(scenario.net.graph, scenario.task,
                                    scenario.loads, options);
  }
};

TEST_F(ServeGeantTest, SolveMatchesDirectSolverBitExactly) {
  auto srv = server();
  LoopbackTransport client(*srv);

  Request request;
  request.id = 7;
  const Response response = client.call(request);

  EXPECT_EQ(response.id, 7u);
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  ASSERT_EQ(response.solutions.size(), 1u);

  const core::PlacementSolution direct =
      core::solve_placement(core::make_problem(scenario));
  EXPECT_EQ(response.solutions[0].rates, direct.rates);
  EXPECT_EQ(response.solutions[0].total_utility, direct.total_utility);
  EXPECT_EQ(response.solutions[0].lambda, direct.lambda);
  EXPECT_EQ(response.solutions[0].iterations, direct.iterations);
}

TEST_F(ServeGeantTest, WhatIfBatchMatchesDirectScenarioSolves) {
  auto srv = server();
  LoopbackTransport client(*srv);

  Request request;
  request.kind = RequestKind::kWhatIfBatch;
  request.what_if = {{0}, {1}, {2, 3}};
  const Response response = client.call(request);

  ASSERT_EQ(response.status, ResponseStatus::kOk);
  ASSERT_EQ(response.solutions.size(), request.what_if.size());
  for (std::size_t i = 0; i < request.what_if.size(); ++i) {
    core::ProblemOptions options;
    for (topo::LinkId id : request.what_if[i]) options.failed.insert(id);
    const core::PlacementSolution direct =
        core::solve_placement(core::make_problem(scenario, options));
    EXPECT_EQ(response.solutions[i].rates, direct.rates) << "scenario " << i;
  }
}

TEST_F(ServeGeantTest, ThetaSweepMatchesDirectSolves) {
  auto srv = server();
  LoopbackTransport client(*srv);

  Request request;
  request.kind = RequestKind::kThetaSweep;
  request.thetas = {40000.0, 100000.0, 250000.0};
  const Response response = client.call(request);

  ASSERT_EQ(response.status, ResponseStatus::kOk);
  ASSERT_EQ(response.sweep.size(), request.thetas.size());
  for (std::size_t i = 0; i < request.thetas.size(); ++i) {
    const core::PlacementSolution direct = core::solve_placement(
        core::make_problem(scenario, at_theta(request.thetas[i])));
    EXPECT_EQ(response.sweep[i].theta, request.thetas[i]);
    EXPECT_EQ(response.sweep[i].total_utility, direct.total_utility);
    EXPECT_EQ(response.sweep[i].lambda, direct.lambda);
    EXPECT_EQ(response.sweep[i].active_monitors,
              direct.active_monitors.size());
  }
}

TEST_F(ServeGeantTest, AccuracyReportMatchesDirectSolve) {
  auto srv = server();
  LoopbackTransport client(*srv);

  Request request;
  request.kind = RequestKind::kAccuracyReport;
  const Response response = client.call(request);

  ASSERT_EQ(response.status, ResponseStatus::kOk);
  const core::PlacementSolution direct =
      core::solve_placement(core::make_problem(scenario));
  ASSERT_EQ(response.accuracy.size(), direct.per_od.size());
  for (std::size_t k = 0; k < direct.per_od.size(); ++k) {
    EXPECT_EQ(response.accuracy[k].od, direct.per_od[k].od);
    EXPECT_EQ(response.accuracy[k].rho_approx, direct.per_od[k].rho_approx);
    EXPECT_EQ(response.accuracy[k].rho_exact, direct.per_od[k].rho_exact);
    EXPECT_EQ(response.accuracy[k].predicted_accuracy,
              direct.per_od[k].predicted_accuracy);
  }
}

TEST_F(ServeGeantTest, WarmStartMatchesResolveWarm) {
  const core::PlacementSolution base =
      core::solve_placement(core::make_problem(scenario));

  auto srv = server();
  LoopbackTransport client(*srv);
  Request request;
  request.theta = 130000.0;
  request.warm_start = base.rates;
  const Response response = client.call(request);

  ASSERT_EQ(response.status, ResponseStatus::kOk);
  const core::PlacementSolution direct = core::resolve_warm(
      core::make_problem(scenario, at_theta(130000.0)), base.rates);
  EXPECT_EQ(response.solutions[0].rates, direct.rates);
}

// The acceptance criterion: concurrent clients submitting a mixed
// workload get bit-identical answers no matter the thread count, batch
// size, or linger policy — batching composition is invisible.
TEST_F(ServeGeantTest, MixedWorkloadBitIdenticalAcrossServingPolicies) {
  auto make_requests = [] {
    std::vector<Request> requests;
    for (std::uint64_t i = 0; i < 4; ++i) {
      Request solve;
      solve.id = 100 + i;
      solve.theta = 60000.0 + 20000.0 * static_cast<double>(i);
      requests.push_back(solve);
    }
    Request what_if;
    what_if.id = 200;
    what_if.kind = RequestKind::kWhatIfBatch;
    what_if.what_if = {{0}, {5}};
    requests.push_back(what_if);
    Request sweep;
    sweep.id = 300;
    sweep.kind = RequestKind::kThetaSweep;
    sweep.thetas = {50000.0, 150000.0};
    requests.push_back(sweep);
    return requests;
  };

  struct Policy {
    unsigned threads;
    std::size_t max_batch;
    std::chrono::milliseconds linger;
    bool via_wire;
  };
  const Policy policies[] = {{1, 1, 0ms, false},
                             {4, 16, 5ms, false},
                             {2, 3, 1ms, true}};

  std::vector<std::vector<Response>> runs;
  for (const Policy& policy : policies) {
    ServerOptions options;
    options.threads = policy.threads;
    options.batch.max_batch = policy.max_batch;
    options.batch.linger = policy.linger;
    auto srv = server(options);
    LoopbackTransport client(*srv, policy.via_wire);

    // Concurrent producers, like N operator consoles.
    std::vector<std::future<Response>> futures;
    for (Request& request : make_requests())
      futures.push_back(client.send(std::move(request)));
    std::vector<Response> responses;
    for (auto& f : futures) responses.push_back(f.get());
    runs.push_back(std::move(responses));
  }

  const std::vector<Response>& baseline = runs[0];
  for (std::size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      const Response& a = baseline[i];
      const Response& b = runs[run][i];
      EXPECT_EQ(a.id, b.id);
      EXPECT_EQ(a.status, b.status);
      ASSERT_EQ(a.solutions.size(), b.solutions.size());
      for (std::size_t j = 0; j < a.solutions.size(); ++j) {
        EXPECT_EQ(a.solutions[j].rates, b.solutions[j].rates);
        EXPECT_EQ(a.solutions[j].total_utility, b.solutions[j].total_utility);
      }
      EXPECT_EQ(a.sweep, b.sweep);
      EXPECT_EQ(a.accuracy, b.accuracy);
    }
  }
}

TEST_F(ServeLineTest, QueueFullRejectsWithTypedResponse) {
  ServerOptions options;
  options.queue_capacity = 1;
  options.start_paused = true;
  auto srv = model.server(options);
  LoopbackTransport client(*srv);

  std::future<Response> admitted = client.send(solve_request(1));
  std::future<Response> rejected = client.send(solve_request(2));

  // The rejection is immediate and typed — no waiting on the dispatcher.
  ASSERT_EQ(rejected.wait_for(0s), std::future_status::ready);
  const Response response = rejected.get();
  EXPECT_EQ(response.id, 2u);
  EXPECT_EQ(response.status, ResponseStatus::kRejectedQueueFull);
  EXPECT_NE(response.error.find("queue full"), std::string::npos);

  srv->resume();
  EXPECT_EQ(admitted.get().status, ResponseStatus::kOk);

  const StatsSnapshot stats = srv->stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.served_ok, 1u);
}

TEST_F(ServeLineTest, DeadlineExpiresInQueue) {
  ServerOptions options;
  options.start_paused = true;
  auto srv = model.server(options);
  LoopbackTransport client(*srv);

  Request request;
  request.id = 9;
  request.deadline_ms = 1;
  std::future<Response> future = client.send(std::move(request));
  std::this_thread::sleep_for(20ms);  // let the deadline pass while parked
  srv->resume();

  const Response response = future.get();
  EXPECT_EQ(response.status, ResponseStatus::kDeadlineExpired);
  EXPECT_NE(response.error.find("in queue"), std::string::npos);
  EXPECT_EQ(srv->stats().expired_in_queue, 1u);
}

TEST_F(ServeGeantTest, IterationBudgetTruncatesMidSolveDeterministically) {
  auto srv = server();
  LoopbackTransport client(*srv);

  Request request;
  request.iteration_budget = 1;
  const Response truncated = client.call(request);

  EXPECT_EQ(truncated.status, ResponseStatus::kDeadlineExpired);
  EXPECT_NE(truncated.error.find("iteration budget"), std::string::npos);
  // The truncated (feasible, uncertified) point still comes back.
  ASSERT_EQ(truncated.solutions.size(), 1u);
  EXPECT_EQ(truncated.solutions[0].status, opt::SolveStatus::kCancelled);
  EXPECT_EQ(truncated.solutions[0].iterations, 1);
  EXPECT_EQ(srv->stats().expired_mid_solve, 1u);

  // Deterministic: the same budget truncates at the same point.
  const Response again = client.call([]{ Request r; r.iteration_budget = 1; return r; }());
  EXPECT_EQ(again.solutions[0].rates, truncated.solutions[0].rates);
}

TEST_F(ServeLineTest, WallClockDeadlineExpiresMidSolve) {
  ServerOptions options;
  options.threads = 1;
  auto srv = model.server(options);
  LoopbackTransport client(*srv);

  // A heavy request (large sweep) with a deadline it cannot possibly
  // meet: expiry may hit in-queue or mid-solve depending on timing, but
  // it must always be a typed kDeadlineExpired.
  Request request;
  request.kind = RequestKind::kThetaSweep;
  for (int i = 0; i < 800; ++i)
    request.thetas.push_back(10000.0 + 100.0 * i);
  request.deadline_ms = 1;
  const Response response = client.call(std::move(request));
  EXPECT_EQ(response.status, ResponseStatus::kDeadlineExpired);
  const StatsSnapshot stats = srv->stats();
  EXPECT_EQ(stats.expired_in_queue + stats.expired_mid_solve, 1u);
}

TEST_F(ServeLineTest, BadRequestsGetTypedValidationErrors) {
  auto srv = model.server();
  LoopbackTransport client(*srv);

  Request empty_sweep;
  empty_sweep.kind = RequestKind::kThetaSweep;
  EXPECT_EQ(client.call(empty_sweep).status, ResponseStatus::kBadRequest);

  Request bad_link;
  bad_link.failed = {static_cast<topo::LinkId>(model.graph.link_count())};
  EXPECT_EQ(client.call(bad_link).status, ResponseStatus::kBadRequest);

  Request bad_warm;
  bad_warm.warm_start = {0.5};  // wrong dimension
  EXPECT_EQ(client.call(bad_warm).status, ResponseStatus::kBadRequest);

  Request bad_theta;
  bad_theta.theta = -5.0;
  EXPECT_EQ(client.call(bad_theta).status, ResponseStatus::kBadRequest);

  EXPECT_EQ(srv->stats().bad_requests, 4u);
  EXPECT_EQ(srv->stats().served_ok, 0u);
}

TEST_F(ServeLineTest, ShutdownAnswersEveryParkedRequest) {
  ServerOptions options;
  options.start_paused = true;
  options.queue_capacity = 8;
  auto srv = model.server(options);
  LoopbackTransport client(*srv);

  std::vector<std::future<Response>> futures;
  for (std::uint64_t i = 0; i < 5; ++i)
    futures.push_back(client.send(solve_request(i)));
  srv->stop();

  for (auto& future : futures) {
    const Response response = future.get();
    EXPECT_EQ(response.status, ResponseStatus::kShutdown);
    EXPECT_FALSE(response.error.empty());
  }
  // Submits after stop are rejected, also typed.
  const Response late = client.call(solve_request(99));
  EXPECT_EQ(late.status, ResponseStatus::kShutdown);
  EXPECT_EQ(srv->stats().rejected_shutdown, 6u);
}

TEST_F(ServeLineTest, StatsCountersBalanceAndExportAsJson) {
  ServerOptions options;
  options.batch.max_batch = 4;
  auto srv = model.server(options);
  LoopbackTransport client(*srv);

  std::vector<std::future<Response>> futures;
  for (std::uint64_t i = 0; i < 6; ++i)
    futures.push_back(client.send(solve_request(i)));
  futures.push_back(client.send([]{ Request r; r.kind = RequestKind::kThetaSweep; return r; }()));
  for (auto& future : futures) future.get();

  const StatsSnapshot stats = srv->stats();
  EXPECT_EQ(stats.submitted, 7u);
  EXPECT_EQ(stats.submitted,
            stats.served_ok + stats.rejected_queue_full +
                stats.rejected_shutdown + stats.bad_requests +
                stats.expired_in_queue + stats.expired_mid_solve);
  EXPECT_EQ(stats.served_ok, 6u);
  EXPECT_EQ(stats.bad_requests, 1u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.problems_solved, 6u);
  EXPECT_GE(stats.batch_size_max, 1.0);
  EXPECT_LE(stats.batch_size_max, 4.0);

  const std::string json = srv->stats_json();
  EXPECT_NE(json.find("serve"), std::string::npos);
  EXPECT_NE(json.find("counters"), std::string::npos);
  EXPECT_NE(json.find("latency_ms"), std::string::npos);
  EXPECT_NE(json.find("submitted"), std::string::npos);
}

TEST_F(ServeLineTest, BatcherRespectsMaxBatchAndLinger) {
  ServerOptions options;
  options.start_paused = true;
  options.batch.max_batch = 2;
  options.queue_capacity = 16;
  auto srv = model.server(options);
  LoopbackTransport client(*srv);

  std::vector<std::future<Response>> futures;
  for (std::uint64_t i = 0; i < 5; ++i)
    futures.push_back(client.send(solve_request(i)));
  srv->resume();
  for (auto& future : futures)
    EXPECT_EQ(future.get().status, ResponseStatus::kOk);

  const StatsSnapshot stats = srv->stats();
  EXPECT_LE(stats.batch_size_max, 2.0);
  EXPECT_GE(stats.batches, 3u);  // 5 requests in batches of <= 2
}

TEST_F(ServeLineTest, DestructorDrainsCleanly) {
  // A server destroyed with requests still parked must answer them all
  // (typed) before the promise objects die — no broken futures.
  std::future<Response> parked;
  {
    ServerOptions options;
    options.start_paused = true;
    auto srv = model.server(options);
    LoopbackTransport client(*srv);
    parked = client.send(solve_request(1));
  }
  EXPECT_EQ(parked.get().status, ResponseStatus::kShutdown);
}

}  // namespace
}  // namespace netmon::serve
