// Zero-allocation steady state of the ingest hot path (same
// counting-allocator idiom as topo_presize_test.cpp): once the ring is
// built, the synthetic source's heap is warmed, and the flow table has
// seen every flow once, pushing packets source -> ring -> sampler ->
// table performs no heap allocations at all.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "ingest/spsc_ring.hpp"
#include "ingest/synthetic.hpp"
#include "netflow/flow_table.hpp"
#include "sampling/sampler.hpp"
#include "topo/graph.hpp"
#include "util/rng.hpp"

namespace {
std::size_t g_alloc_count = 0;

void* counted_alloc(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_alloc_count;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_alloc_count;
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace netmon {
namespace {

template <typename Fn>
std::size_t allocations_in(Fn&& fn) {
  const std::size_t before = g_alloc_count;
  fn();
  return g_alloc_count - before;
}

TEST(IngestZeroAlloc, RingPushPopAllocatesNothing) {
  ingest::SpscRing<ingest::PacketRecord> ring(256);
  ingest::PacketRecord batch[64];
  const std::size_t allocs = allocations_in([&] {
    for (int round = 0; round < 1000; ++round) {
      ring.push_or_drop(batch, 64);
      ring.pop(batch, 64);
    }
  });
  EXPECT_EQ(allocs, 0u) << "ring moved records through the heap";
}

TEST(IngestZeroAlloc, SyntheticReplayAllocatesNothingAfterWarmup) {
  topo::Graph graph;
  const auto a = graph.add_node("A");
  const auto b = graph.add_node("B");
  graph.add_duplex(a, b, 1e9, 1.0);
  const routing::RoutingMatrix matrix =
      routing::RoutingMatrix::single_path(graph, {{0, 1}});
  ingest::SyntheticOptions options;
  options.flowgen.interval_sec = 30.0;
  const ingest::SyntheticTraffic traffic(matrix, {{{0, 1}, 400.0}},
                                         options);
  const auto link = *graph.find_link(0, 1);
  auto source = traffic.source(link);
  ASSERT_NE(source, nullptr);

  ingest::PacketRecord batch[256];
  ASSERT_GT(source->next_batch(batch, 256), 0u);  // warm the heap merge
  const std::size_t allocs = allocations_in([&] {
    while (!source->exhausted()) {
      if (source->next_batch(batch, 256) == 0) break;
    }
  });
  EXPECT_EQ(allocs, 0u) << "synthetic replay allocated in steady state";
}

TEST(IngestZeroAlloc, HotPathSteadyStateAllocatesNothing) {
  // Full per-packet path: source batch -> ring -> Bernoulli sampler ->
  // pre-sized flow table on already-cached flows.
  topo::Graph graph;
  const auto a = graph.add_node("A");
  const auto b = graph.add_node("B");
  graph.add_duplex(a, b, 1e9, 1.0);
  const routing::RoutingMatrix matrix =
      routing::RoutingMatrix::single_path(graph, {{0, 1}});
  ingest::SyntheticOptions options;
  options.flowgen.interval_sec = 60.0;
  const ingest::SyntheticTraffic traffic(matrix, {{{0, 1}, 300.0}},
                                         options);
  const auto link = *graph.find_link(0, 1);
  auto source = traffic.source(link);
  ASSERT_NE(source, nullptr);

  ingest::SpscRing<ingest::PacketRecord> ring(1024);
  sampling::LinkSampler sampler(sampling::SamplerKind::kBernoulli, 0.5,
                                Rng(42).substream(link)());
  // Timeouts beyond the interval: no expiry churn during the run, so
  // the export callback (which appends to a vector) never fires.
  netflow::FlowTableOptions table_options;
  table_options.idle_timeout_sec = 1e6;
  table_options.active_timeout_sec = 1e6;
  std::vector<netflow::FlowRecord> exported;
  exported.reserve(4096);
  netflow::FlowTable table(
      link, table_options,
      [&exported](const netflow::FlowRecord& r) { exported.push_back(r); });
  table.reserve(4096);

  // Warm-up pass: replay the whole interval once so every flow is
  // cached (FIN expiry still exports some; that's the warm-up's job).
  {
    auto warm = traffic.source(link);
    ingest::PacketRecord batch[256];
    while (!warm->exhausted()) {
      const std::size_t n = warm->next_batch(batch, 256);
      if (n == 0) break;
      for (std::size_t i = 0; i < n; ++i)
        table.observe(batch[i].key, batch[i].bytes, batch[i].ts_sec, false);
    }
  }
  ASSERT_GT(table.size(), 0u);

  // Steady state: same flows again (fresh source, same seed), through
  // the ring, sampled, folded. Suppress FIN so no entry is erased and
  // re-inserted: every observe() hits an already-cached flow.
  ingest::PacketRecord in[256], out[256];
  std::uint64_t observed = 0;
  const std::size_t allocs = allocations_in([&] {
    while (!source->exhausted()) {
      const std::size_t n = source->next_batch(in, 256);
      if (n == 0) break;
      std::size_t staged = 0;
      while (staged < n) staged += ring.try_push(in + staged, n - staged);
      std::size_t drained = 0;
      while (drained < n) {
        const std::size_t got = ring.pop(out, 256);
        for (std::size_t i = 0; i < got; ++i) {
          if (!sampler.sample()) continue;
          table.observe(out[i].key, out[i].bytes, out[i].ts_sec, false);
          ++observed;
        }
        drained += got;
      }
    }
  });
  EXPECT_GT(observed, 0u);
  EXPECT_EQ(allocs, 0u) << "ingest hot path allocated in steady state";
}

}  // namespace
}  // namespace netmon
