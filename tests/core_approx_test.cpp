// The approximation tier (core/approx) against ground truth: on GEANT
// and Abilene the exact optimum is cheap to compute, so the certified
// Frank-Wolfe bound can be VALIDATED — the certificate must bound the
// true optimum from above, the approximate value must not exceed it,
// and the relative gap must meet the tier's accuracy target across
// theta sweeps and random budgets.
#include <gtest/gtest.h>

#include <vector>

#include "core/approx.hpp"
#include "core/partition.hpp"
#include "core/scenario.hpp"
#include "core/solver.hpp"
#include "opt/certificate.hpp"
#include "topo/abilene.hpp"
#include "traffic/gravity.hpp"
#include "traffic/link_load.hpp"
#include "util/rng.hpp"

namespace netmon::core {
namespace {

/// Exact optimum vs approx tier on one problem; returns the certificate.
void check_problem(const PlacementProblem& problem, std::size_t groups,
                   double max_relative_gap) {
  const PlacementSolution exact = solve_placement(problem);
  ASSERT_EQ(exact.status, opt::SolveStatus::kOptimal);

  const Partition partition = partition_bfs(problem, groups);
  const ApproxResult approx = solve_approx(problem, partition);

  // The certificate must bound the TRUE optimum from above...
  const double slack = 1e-6 * std::abs(approx.certificate.upper_bound) + 1e-9;
  EXPECT_LE(exact.total_utility, approx.certificate.upper_bound + slack)
      << "certificate does not bound the exact optimum";
  // ...and the approximate value can never beat the optimum.
  EXPECT_LE(approx.solution.total_utility, exact.total_utility + slack);
  // Tier accuracy target.
  EXPECT_LE(approx.certificate.relative_gap, max_relative_gap);
  // The solution carries the certificate.
  EXPECT_EQ(approx.solution.tier, SolveTier::kApprox);
  EXPECT_EQ(approx.solution.certified_gap, approx.certificate.gap);
  EXPECT_EQ(approx.solution.certified_upper_bound,
            approx.certificate.upper_bound);
}

TEST(ApproxTier, GeantThetaSweepStaysWithinOnePercent) {
  const GeantScenario scenario = make_geant_scenario();
  for (const double theta : {25000.0, 50000.0, 100000.0, 200000.0}) {
    ProblemOptions options;
    options.theta = theta;
    const PlacementProblem problem = make_problem(scenario, options);
    SCOPED_TRACE("theta=" + std::to_string(theta));
    check_problem(problem, 4, 0.01);
  }
}

TEST(ApproxTier, GeantRandomBudgetsStayWithinOnePercent) {
  const GeantScenario scenario = make_geant_scenario();
  // Budget range from the instance itself: fractions of sum u_j alpha_j.
  const PlacementProblem probe = make_problem(scenario, {});
  double max_budget = 0.0;
  const auto& u = probe.constraints().loads();
  const auto& alpha = probe.constraints().upper();
  for (std::size_t j = 0; j < u.size(); ++j) max_budget += u[j] * alpha[j];

  netmon::Rng rng(23);
  for (int trial = 0; trial < 5; ++trial) {
    ProblemOptions options;
    options.theta = max_budget * rng.uniform(0.005, 0.5);
    const PlacementProblem problem = make_problem(scenario, options);
    SCOPED_TRACE("theta=" + std::to_string(options.theta));
    check_problem(problem, 3, 0.01);
  }
}

TEST(ApproxTier, AbileneThetaSweepStaysWithinOnePercent) {
  const topo::AbileneNetwork net = topo::make_abilene();
  MeasurementTask task;
  task.interval_sec = 300.0;
  traffic::TrafficMatrix demands = traffic::gravity_matrix(
      net.graph, {.total_pkt_per_sec = 6.0e5, .min_mass = 1e-12});
  for (const auto& [name, rate] : topo::abilene_task_rates()) {
    const auto dst = *net.graph.find_node(name);
    task.ods.push_back({net.customer, dst});
    task.expected_packets.push_back(rate * task.interval_sec);
    demands.push_back({{net.customer, dst}, rate});
  }
  const traffic::LinkLoads loads = traffic::link_loads(net.graph, demands);

  for (const double theta : {10000.0, 50000.0, 100000.0}) {
    ProblemOptions options;
    options.theta = theta;
    const PlacementProblem problem(net.graph, task, loads, options);
    SCOPED_TRACE("theta=" + std::to_string(theta));
    check_problem(problem, 3, 0.01);
  }
}

TEST(ApproxTier, DeterministicAcrossPoolSizes) {
  const GeantScenario scenario = make_geant_scenario();
  const PlacementProblem problem = make_problem(scenario, {});
  const Partition partition = partition_bfs(problem, 4);

  const ApproxResult serial = solve_approx(problem, partition);
  for (unsigned threads : {1u, 4u}) {
    runtime::ThreadPool pool(threads);
    ApproxOptions options;
    options.pool = &pool;
    const ApproxResult parallel = solve_approx(problem, partition, options);
    EXPECT_EQ(parallel.solution.total_utility, serial.solution.total_utility)
        << "@" << threads;
    ASSERT_EQ(parallel.solution.rates.size(), serial.solution.rates.size());
    for (std::size_t i = 0; i < serial.solution.rates.size(); ++i)
      EXPECT_EQ(parallel.solution.rates[i], serial.solution.rates[i])
          << "rate @" << i << " threads=" << threads;
    EXPECT_EQ(parallel.certificate.gap, serial.certificate.gap);
  }
}

TEST(ApproxTier, CertificateAtTheExactOptimumIsTight) {
  const GeantScenario scenario = make_geant_scenario();
  const PlacementProblem problem = make_problem(scenario, {});
  const PlacementSolution exact = solve_placement(problem);
  ASSERT_EQ(exact.status, opt::SolveStatus::kOptimal);
  const std::vector<double> p = problem.compress(exact.rates);
  const opt::GapCertificate cert =
      opt::certified_gap(problem.objective(), problem.constraints(), p);
  // At a KKT-certified point the Frank-Wolfe gap collapses (numerically).
  EXPECT_LE(cert.relative_gap, 1e-6);
  EXPECT_GE(cert.gap, 0.0);
}

TEST(ApproxTier, PartitionCoversCandidatesExactlyOnce) {
  const GeantScenario scenario = make_geant_scenario();
  const PlacementProblem problem = make_problem(scenario, {});
  for (const std::size_t groups : {1u, 3u, 7u}) {
    const Partition part = partition_bfs(problem, groups);
    EXPECT_LE(part.group_count(), groups);
    std::vector<bool> seen(problem.candidates().size(), false);
    for (std::size_t g = 0; g < part.group_count(); ++g) {
      EXPECT_FALSE(part.groups[g].empty()) << "empty group " << g;
      for (std::size_t j : part.groups[g]) {
        EXPECT_FALSE(seen[j]) << "candidate " << j << " in two groups";
        seen[j] = true;
        EXPECT_EQ(part.group_of_candidate[j], g);
      }
    }
    for (std::size_t j = 0; j < seen.size(); ++j)
      EXPECT_TRUE(seen[j]) << "candidate " << j << " unassigned";
  }
}

TEST(ApproxTier, ChooseTierRoutesBySizeAndDeadline) {
  TierPolicy policy;  // approx_min_candidates = 4096
  EXPECT_EQ(choose_tier(72, policy), SolveTier::kExact);
  EXPECT_EQ(choose_tier(4096, policy), SolveTier::kApprox);
  EXPECT_EQ(choose_tier(200000, policy), SolveTier::kApprox);

  policy.deadline_ms = 10.0;  // 10 ms at 50 candidates/ms => 500 cap
  EXPECT_EQ(choose_tier(400, policy), SolveTier::kExact);
  EXPECT_EQ(choose_tier(1000, policy), SolveTier::kApprox);
}

}  // namespace
}  // namespace netmon::core
