#include "opt/constraints.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace netmon::opt {
namespace {

BoxBudgetConstraints simple() {
  return BoxBudgetConstraints({10.0, 20.0, 5.0}, {1.0, 0.5, 1.0}, 8.0);
}

TEST(Constraints, ValidatesConstruction) {
  EXPECT_THROW(BoxBudgetConstraints({}, {}, 1.0), Error);
  EXPECT_THROW(BoxBudgetConstraints({1.0}, {1.0, 1.0}, 1.0), Error);
  EXPECT_THROW(BoxBudgetConstraints({0.0}, {1.0}, 1.0), Error);    // u=0
  EXPECT_THROW(BoxBudgetConstraints({1.0}, {1.5}, 1.0), Error);    // alpha>1
  EXPECT_THROW(BoxBudgetConstraints({1.0}, {1.0}, 0.0), Error);    // theta=0
  EXPECT_THROW(BoxBudgetConstraints({1.0}, {1.0}, 2.0), Error);    // theta>u*a
}

TEST(Constraints, BudgetAndFeasibility) {
  const auto c = simple();
  const std::vector<double> p{0.1, 0.2, 0.6};  // budget 1+4+3 = 8
  EXPECT_DOUBLE_EQ(c.budget(p), 8.0);
  EXPECT_TRUE(c.feasible(p));
  EXPECT_FALSE(c.feasible(std::vector<double>{0.1, 0.2, 0.0}));  // budget 5
  EXPECT_FALSE(c.feasible(std::vector<double>{-0.1, 0.3, 0.6}));  // negative
  EXPECT_FALSE(c.feasible(std::vector<double>{0.0, 0.6, 0.0}));  // above alpha
}

TEST(Constraints, InitialPointFeasibleOnPlane) {
  const auto c = simple();
  const auto p = c.initial_point();
  EXPECT_TRUE(c.feasible(p));
  EXPECT_NEAR(c.budget(p), 8.0, 1e-9);
  // Uniform scaling of alpha.
  EXPECT_NEAR(p[0] / 1.0, p[1] / 0.5, 1e-12);
}

TEST(Constraints, InitialPointAtFullCapacity) {
  // theta = sum(u*alpha) forces p = alpha.
  BoxBudgetConstraints c({10.0, 20.0}, {0.5, 0.25}, 10.0);
  const auto p = c.initial_point();
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.25, 1e-12);
}

TEST(Projection, FeasibleAndIdempotent) {
  const auto c = simple();
  Rng rng(42);
  for (int rep = 0; rep < 200; ++rep) {
    std::vector<double> y(3);
    for (double& v : y) v = rng.uniform(-2.0, 2.0);
    const auto p = c.project(y);
    EXPECT_TRUE(c.feasible(p, 1e-7)) << "rep " << rep;
    const auto p2 = c.project(p);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(p2[j], p[j], 1e-7);
  }
}

TEST(Projection, FixedPointForFeasible) {
  const auto c = simple();
  const std::vector<double> p{0.1, 0.2, 0.6};
  const auto proj = c.project(p);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(proj[j], p[j], 1e-9);
}

TEST(Projection, IsNearestPoint) {
  // Compare against a dense grid search on a 2-variable instance.
  BoxBudgetConstraints c({1.0, 1.0}, {1.0, 1.0}, 1.0);
  const std::vector<double> y{0.9, 0.8};
  const auto p = c.project(y);
  // Analytic: project onto the segment p0+p1=1, 0<=p<=1.
  // Nearest point: (0.55, 0.45).
  EXPECT_NEAR(p[0], 0.55, 1e-7);
  EXPECT_NEAR(p[1], 0.45, 1e-7);
}

TEST(Projection, ClampsAtBounds) {
  BoxBudgetConstraints c({1.0, 1.0}, {1.0, 1.0}, 1.0);
  const auto p = c.project(std::vector<double>{5.0, -5.0});
  EXPECT_NEAR(p[0], 1.0, 1e-7);
  EXPECT_NEAR(p[1], 0.0, 1e-7);
}

TEST(Projection, WeightedBudget) {
  // Unequal loads: the lambda shift is scaled by u_j.
  BoxBudgetConstraints c({1.0, 3.0}, {1.0, 1.0}, 1.5);
  Rng rng(9);
  for (int rep = 0; rep < 100; ++rep) {
    std::vector<double> y{rng.uniform(-1.0, 2.0), rng.uniform(-1.0, 2.0)};
    const auto p = c.project(y);
    EXPECT_NEAR(c.budget(p), 1.5, 1e-6);
  }
}

}  // namespace
}  // namespace netmon::opt
