#include "estimate/tomogravity.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "topo/geant.hpp"
#include "traffic/gravity.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace netmon::estimate {
namespace {

TEST(Tomogravity, RecoversConsistentMatrixExactly) {
  // Loads generated from a gravity matrix are perfectly explainable, so
  // IPF must drive the residual to ~0 and reproduce the loads.
  const topo::Graph g = test::line_graph();
  traffic::GravityOptions gravity;
  gravity.total_pkt_per_sec = 50000.0;
  const traffic::TrafficMatrix truth = traffic::gravity_matrix(g, gravity);
  const traffic::LinkLoads observed = traffic::link_loads(g, truth);

  const TomogravityResult result = tomogravity(g, observed);
  EXPECT_LT(result.residual, 1e-6);
  const traffic::LinkLoads reproduced = traffic::link_loads(g, result.matrix);
  for (topo::LinkId id = 0; id < g.link_count(); ++id)
    EXPECT_NEAR(reproduced[id], observed[id],
                1e-5 * (1.0 + observed[id]));
}

TEST(Tomogravity, GravityTruthRecoveredOnGeant) {
  // On GEANT with a pure gravity ground truth, the estimate should be
  // close per-OD as well (the prior equals the truth's structure).
  const topo::GeantNetwork net = topo::make_geant();
  traffic::GravityOptions gravity;
  gravity.total_pkt_per_sec = 1.0e6;
  const traffic::TrafficMatrix truth =
      traffic::gravity_matrix(net.graph, gravity);
  const traffic::LinkLoads observed = traffic::link_loads(net.graph, truth);

  const TomogravityResult result = tomogravity(net.graph, observed);
  EXPECT_LT(result.residual, 1e-4);
  EXPECT_LT(matrix_relative_error(result.matrix, truth, 10.0), 0.05);
}

TEST(Tomogravity, SkewedTruthStillMatchesLoads)  {
  // Ground truth deviating from gravity: per-OD error grows (the problem
  // is under-determined) but the loads must still be honoured.
  const topo::GeantNetwork net = topo::make_geant();
  traffic::GravityOptions gravity;
  gravity.total_pkt_per_sec = 1.0e6;
  traffic::TrafficMatrix truth = traffic::gravity_matrix(net.graph, gravity);
  Rng rng(5);
  for (traffic::Demand& d : truth) d.pkt_per_sec *= rng.uniform(0.3, 3.0);
  const traffic::LinkLoads observed = traffic::link_loads(net.graph, truth);

  const TomogravityResult result = tomogravity(net.graph, observed);
  const traffic::LinkLoads reproduced =
      traffic::link_loads(net.graph, result.matrix);
  for (topo::LinkId id : routing::RoutingMatrix::single_path(
                             net.graph,
                             [&] {
                               std::vector<routing::OdPair> ods;
                               for (const auto& d : truth) ods.push_back(d.od);
                               return ods;
                             }())
                             .links_used()) {
    EXPECT_NEAR(reproduced[id] / std::max(1.0, observed[id]),
                observed[id] / std::max(1.0, observed[id]), 0.02)
        << net.graph.link_name(id);
  }
}

TEST(Tomogravity, UnexplainableTrafficShowsAsResidual) {
  // JANET has zero gravity mass; its demand pollutes the observed loads
  // with traffic the model cannot attribute.
  const topo::GeantNetwork net = topo::make_geant();
  traffic::GravityOptions gravity;
  gravity.total_pkt_per_sec = 1.0e6;
  traffic::TrafficMatrix truth = traffic::gravity_matrix(net.graph, gravity);
  // A large opaque demand from JANET to NL.
  truth.push_back({{net.janet, *net.graph.find_node("NL")}, 50000.0});
  const traffic::LinkLoads observed = traffic::link_loads(net.graph, truth);

  const TomogravityResult result = tomogravity(net.graph, observed);
  // The estimate contains no JANET demand...
  for (const traffic::Demand& d : result.matrix) {
    EXPECT_NE(d.od.src, net.janet);
  }
  // ...and convergence is still fine on the explainable system (the
  // JANET volume is absorbed by UK->NL-crossing demands).
  EXPECT_LT(result.residual, 1e-3);
}

TEST(Tomogravity, ValidatesInputs) {
  const topo::Graph g = test::line_graph();
  traffic::LinkLoads wrong(2, 1.0);
  EXPECT_THROW(tomogravity(g, wrong), Error);
}

// Property sweep: whatever the (consistent) ground truth scale, IPF must
// honour the observed loads on GEANT.
class TomogravitySweep : public ::testing::TestWithParam<int> {};

TEST_P(TomogravitySweep, LoadsAlwaysHonoured) {
  Rng rng(3100 + GetParam());
  const topo::GeantNetwork net = topo::make_geant();
  traffic::GravityOptions gravity;
  gravity.total_pkt_per_sec = rng.uniform(2e5, 3e6);
  traffic::TrafficMatrix truth =
      traffic::gravity_matrix(net.graph, gravity);
  for (traffic::Demand& d : truth) d.pkt_per_sec *= rng.uniform(0.5, 2.0);
  const traffic::LinkLoads observed = traffic::link_loads(net.graph, truth);

  const TomogravityResult result = tomogravity(net.graph, observed);
  EXPECT_LT(result.residual, 1e-3) << "seed " << GetParam();
  // No negative demands, total volume in the right ballpark.
  double total = 0.0;
  for (const traffic::Demand& d : result.matrix) {
    EXPECT_GE(d.pkt_per_sec, 0.0);
    total += d.pkt_per_sec;
  }
  EXPECT_NEAR(total / traffic::total_rate(truth), 1.0, 0.2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TomogravitySweep, ::testing::Range(0, 8));

TEST(MatrixRelativeError, BasicBehaviour) {
  traffic::TrafficMatrix ref{{{0, 1}, 100.0}, {{1, 2}, 200.0}};
  traffic::TrafficMatrix est{{{0, 1}, 110.0}, {{1, 2}, 150.0}};
  // (0.1 + 0.25)/2
  EXPECT_NEAR(matrix_relative_error(est, ref), 0.175, 1e-12);
  traffic::TrafficMatrix tiny{{{0, 1}, 0.5}};
  EXPECT_THROW(matrix_relative_error(est, tiny, 1.0), Error);
}

}  // namespace
}  // namespace netmon::estimate
