#include "isis/lsdb.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "topo/geant.hpp"
#include "util/error.hpp"

namespace netmon::isis {
namespace {

TEST(LinkStateDb, InstallsFullDatabase) {
  const topo::Graph g = test::line_graph();
  LinkStateDb db(g);
  EXPECT_FALSE(db.complete());
  for (const Lsp& lsp : LinkStateDb::full_database(g))
    EXPECT_TRUE(db.install(lsp));
  EXPECT_TRUE(db.complete());
  EXPECT_TRUE(db.failed_links().empty());
}

TEST(LinkStateDb, StaleSequenceRejected) {
  const topo::Graph g = test::line_graph();
  LinkStateDb db(g);
  const auto lsps = LinkStateDb::full_database(g, /*sequence=*/5);
  EXPECT_TRUE(db.install(lsps[0]));
  EXPECT_FALSE(db.install(lsps[0]));  // same sequence: stale
  Lsp older = lsps[0];
  older.sequence = 3;
  EXPECT_FALSE(db.install(older));
  EXPECT_EQ(db.sequence(lsps[0].origin), 5u);
}

TEST(LinkStateDb, DownAdjacencyReported) {
  const topo::Graph g = test::line_graph();
  LinkStateDb db(g);
  const auto ab = *g.find_link(0, 1);
  for (const Lsp& lsp : LinkStateDb::full_database(g, 1)) db.install(lsp);

  // Node A re-advertises with A->B down.
  Lsp update;
  update.origin = 0;
  update.sequence = 2;
  for (topo::LinkId id : g.out_links(0))
    update.adjacencies.push_back(Adjacency{id, id != ab});
  EXPECT_TRUE(db.install(update));
  const auto failed = db.failed_links();
  EXPECT_EQ(failed.size(), 1u);
  EXPECT_TRUE(failed.count(ab));
}

TEST(LinkStateDb, OmittedAdjacencyIsWithdrawn) {
  const topo::Graph g = test::line_graph();
  LinkStateDb db(g);
  for (const Lsp& lsp : LinkStateDb::full_database(g, 1)) db.install(lsp);
  // Node B advertises only one of its three adjacencies.
  Lsp partial;
  partial.origin = 1;
  partial.sequence = 2;
  partial.adjacencies.push_back(Adjacency{g.out_links(1)[0], true});
  db.install(partial);
  // The other two B-owned links are implicitly down.
  EXPECT_EQ(db.failed_links().size(), g.out_links(1).size() - 1);
}

TEST(LinkStateDb, RecoveryClearsFailure) {
  const topo::Graph g = test::line_graph();
  LinkStateDb db(g);
  const auto ab = *g.find_link(0, 1);
  auto lsps = LinkStateDb::full_database(g, 1, routing::LinkSet{ab});
  for (const Lsp& lsp : lsps) db.install(lsp);
  EXPECT_TRUE(db.failed_links().count(ab));
  // Recovery: fresh LSP with everything up.
  for (const Lsp& lsp : LinkStateDb::full_database(g, 2)) db.install(lsp);
  EXPECT_TRUE(db.failed_links().empty());
}

TEST(LinkStateDb, RejectsForeignLinks) {
  const topo::Graph g = test::line_graph();
  LinkStateDb db(g);
  Lsp bogus;
  bogus.origin = 0;
  bogus.sequence = 1;
  bogus.adjacencies.push_back(Adjacency{*g.find_link(1, 2), true});
  EXPECT_THROW(db.install(bogus), Error);
}

TEST(FloodTimes, HopCountTimesDelay) {
  const topo::Graph g = test::line_graph();
  const auto when = flood_times(g, 0, 0.05);
  EXPECT_DOUBLE_EQ(when[0], 0.0);
  EXPECT_DOUBLE_EQ(when[1], 0.05);
  EXPECT_DOUBLE_EQ(when[2], 0.10);
  EXPECT_DOUBLE_EQ(when[3], 0.15);
}

TEST(FloodTimes, RoutesAroundFailures) {
  const topo::Graph g = test::diamond_graph();
  const auto sx = *g.find_link(0, 1);
  const auto when = flood_times(g, 0, 1.0, routing::LinkSet{sx});
  // X is still reachable via T (S->Y->T->X) against link directions?
  // diamond has duplex links, so X can be reached S->Y->T->X in 3 hops.
  EXPECT_DOUBLE_EQ(when[1], 3.0);
  EXPECT_DOUBLE_EQ(when[2], 1.0);
  EXPECT_DOUBLE_EQ(when[3], 2.0);
}

TEST(FloodTimes, UnreachableIsInfinite) {
  topo::Graph g;
  g.add_node("A");
  g.add_node("B");
  const auto when = flood_times(g, 0, 1.0);
  EXPECT_TRUE(std::isinf(when[1]));
}

TEST(FloodTimes, GeantConvergesWithinFourHops) {
  const topo::GeantNetwork net = topo::make_geant();
  const auto when = flood_times(net.graph, net.uk, 0.01);
  double worst = 0.0;
  for (topo::NodeId pop : net.pops) worst = std::max(worst, when[pop]);
  EXPECT_LE(worst, 0.05 + 1e-12);  // diameter <= 5 hops from UK
}

TEST(ClosedLoop, LsdbDrivesReoptimization) {
  // The operational loop: LSP arrives -> failed set changes -> routing
  // and loads recomputed -> placement re-solved.
  const topo::GeantNetwork net = topo::make_geant();
  LinkStateDb db(net.graph);
  for (const Lsp& lsp : LinkStateDb::full_database(net.graph, 1))
    db.install(lsp);
  EXPECT_TRUE(db.failed_links().empty());

  const auto uk_nl = *net.graph.find_link("UK", "NL");
  Lsp failure;
  failure.origin = net.graph.link(uk_nl).src;
  failure.sequence = 2;
  for (topo::LinkId id : net.graph.out_links(failure.origin))
    failure.adjacencies.push_back(Adjacency{id, id != uk_nl});
  EXPECT_TRUE(db.install(failure));

  const routing::LinkSet failed = db.failed_links();
  ASSERT_EQ(failed.size(), 1u);
  // Routing recomputes around the LSDB-reported failure.
  const auto spf = routing::dijkstra(net.graph, net.janet, failed);
  const auto path =
      routing::extract_path(spf, net.graph, *net.graph.find_node("NL"));
  for (topo::LinkId id : path) EXPECT_NE(id, uk_nl);
}

}  // namespace
}  // namespace netmon::isis
