#include "sampling/sampler.hpp"

#include <gtest/gtest.h>

#include "sampling/dedup.hpp"
#include "util/error.hpp"

namespace netmon::sampling {
namespace {

TEST(BernoulliSampler, RateMatches) {
  BernoulliSampler s(0.05, 42);
  int hits = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) hits += s.sample();
  EXPECT_NEAR(hits / double(n), 0.05, 0.002);
  EXPECT_DOUBLE_EQ(s.rate(), 0.05);
}

TEST(BernoulliSampler, ZeroAndOne) {
  BernoulliSampler never(0.0, 1), always(1.0, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(never.sample());
    EXPECT_TRUE(always.sample());
  }
  EXPECT_THROW(BernoulliSampler(1.5, 1), Error);
}

TEST(PeriodicSampler, ExactlyOnePerPeriod) {
  PeriodicSampler s(0.01, 42);  // period 100
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += s.sample();
  EXPECT_EQ(hits, 1000);
  EXPECT_DOUBLE_EQ(s.rate(), 0.01);
}

TEST(PeriodicSampler, RoundsPeriod) {
  PeriodicSampler s(0.3, 42);  // period round(1/0.3)=3
  int hits = 0;
  for (int i = 0; i < 3000; ++i) hits += s.sample();
  EXPECT_EQ(hits, 1000);
  EXPECT_NEAR(s.rate(), 1.0 / 3.0, 1e-12);
}

TEST(PeriodicSampler, PhaseVariesWithSeed) {
  // With period 1000, different seeds should mostly pick different phases.
  int distinct = 0;
  int previous = -1;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    PeriodicSampler s(0.001, seed);
    int phase = -1;
    for (int i = 0; i < 1000; ++i) {
      if (s.sample()) phase = i;
    }
    if (phase != previous) ++distinct;
    previous = phase;
  }
  EXPECT_GE(distinct, 4);
}

TEST(PeriodicSampler, ZeroRateNeverSamples) {
  PeriodicSampler s(0.0, 42);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(s.sample());
  EXPECT_DOUBLE_EQ(s.rate(), 0.0);
}

TEST(PacketId, DistinctAcrossSequenceAndFlows) {
  traffic::FlowKey a, b;
  a.src_ip = 1;
  b.src_ip = 2;
  EXPECT_NE(packet_id(a, 0), packet_id(a, 1));
  EXPECT_NE(packet_id(a, 0), packet_id(b, 0));
  EXPECT_EQ(packet_id(a, 7), packet_id(a, 7));  // stable across points
}

TEST(PacketIdDedup, CountsDistinct) {
  PacketIdDedup dedup;
  EXPECT_TRUE(dedup.insert(1));
  EXPECT_FALSE(dedup.insert(1));
  EXPECT_TRUE(dedup.insert(2));
  EXPECT_EQ(dedup.distinct(), 2u);
  dedup.clear();
  EXPECT_EQ(dedup.distinct(), 0u);
  EXPECT_TRUE(dedup.insert(1));
}

}  // namespace
}  // namespace netmon::sampling
