#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace netmon {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // population variance is 4 => sample variance = 4 * 8/7
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleObservationVarianceZero) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng rng(7);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 20.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Quantile, InterpolatesLinearly) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0 / 3.0), 2.0);
}

TEST(Quantile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(quantile({5.0, 1.0, 3.0}, 0.5), 3.0);
}

TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile({42.0}, 0.73), 42.0);
}

TEST(Quantile, ErrorsOnBadInput) {
  EXPECT_THROW(quantile({}, 0.5), Error);
  EXPECT_THROW(quantile({1.0}, -0.1), Error);
  EXPECT_THROW(quantile({1.0}, 1.1), Error);
}

TEST(MeanOf, BasicAndError) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 6.0}), 3.0);
  EXPECT_THROW(mean_of({}), Error);
}

}  // namespace
}  // namespace netmon
