#include "opt/barrier.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/scenario.hpp"
#include "core/solver.hpp"
#include "core/utility.hpp"
#include "opt/gradient_projection.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace netmon::opt {
namespace {

std::shared_ptr<const Concave1d> log_u(double eps) {
  return std::make_shared<core::LogUtility>(eps);
}

TEST(Barrier, MatchesAnalyticTwoVariableOptimum) {
  SeparableConcaveObjective::SparseRows rows{{{0, 1.0}}, {{1, 1.0}}};
  const SeparableConcaveObjective f(2, std::move(rows),
                                    {log_u(0.1), log_u(0.1)});
  const BoxBudgetConstraints c({1.0, 2.0}, {1.0, 1.0}, 0.5);
  const BarrierResult r = maximize_barrier(f, c);
  EXPECT_NEAR(r.p[0], 0.3, 1e-5);
  EXPECT_NEAR(r.p[1], 0.1, 1e-5);
  EXPECT_LT(r.gap_bound, 1e-8);
}

TEST(Barrier, HandlesActiveBoundsViaTheBarrier) {
  // The true optimum pins p1 to 0; the barrier solution approaches it.
  SeparableConcaveObjective::SparseRows rows{{{0, 1.0}}, {{1, 1.0}}};
  const SeparableConcaveObjective f(2, std::move(rows),
                                    {log_u(0.01), log_u(1000.0)});
  const BoxBudgetConstraints c({1.0, 1.0}, {1.0, 1.0}, 0.2);
  const BarrierResult r = maximize_barrier(f, c);
  EXPECT_NEAR(r.p[0], 0.2, 1e-4);
  EXPECT_LT(r.p[1], 1e-4);
}

TEST(Barrier, AgreesWithGradientProjectionOnGeant) {
  // Three independent algorithms must meet at the same optimum; here the
  // barrier method against the paper's solver on the full Table I
  // instance.
  const core::GeantScenario s = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(s);
  const SolveResult gp =
      maximize(problem.objective(), problem.constraints());
  const BarrierResult barrier =
      maximize_barrier(problem.objective(), problem.constraints());
  EXPECT_NEAR(barrier.value, gp.value,
              1e-5 * (1.0 + std::abs(gp.value)));
  // The rate vectors agree too (up to the barrier's interior smoothing).
  for (std::size_t j = 0; j < gp.p.size(); ++j) {
    EXPECT_NEAR(barrier.p[j], gp.p[j], 2e-4) << "link " << j;
  }
}

class BarrierSweep : public ::testing::TestWithParam<int> {};

TEST_P(BarrierSweep, AgreesOnRandomInstances) {
  Rng rng(71000 + GetParam());
  const std::size_t n = 2 + rng.below(8);
  SeparableConcaveObjective::SparseRows rows(n);
  std::vector<std::shared_ptr<const Concave1d>> utilities;
  for (std::size_t k = 0; k < n; ++k) {
    rows[k].emplace_back(k, 1.0);
    if (k + 1 < n && rng.bernoulli(0.5)) rows[k].emplace_back(k + 1, 0.5);
    utilities.push_back(
        rng.bernoulli(0.5)
            ? std::shared_ptr<const Concave1d>(
                  std::make_shared<core::SreUtility>(rng.uniform(1e-4, 0.2)))
            : log_u(rng.uniform(0.01, 0.5)));
  }
  std::vector<double> u(n), alpha(n, 1.0);
  double max_budget = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    u[j] = rng.uniform(1e3, 1e6);
    max_budget += u[j];
  }
  const double theta = max_budget * rng.uniform(0.01, 0.5);
  const SeparableConcaveObjective f(n, rows, utilities);
  const BoxBudgetConstraints c(u, alpha, theta);

  const SolveResult gp = maximize(f, c);
  const BarrierResult barrier = maximize_barrier(f, c);
  EXPECT_EQ(gp.status, SolveStatus::kOptimal);
  EXPECT_NEAR(barrier.value, gp.value, 1e-4 * (1.0 + std::abs(gp.value)))
      << "instance " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, BarrierSweep, ::testing::Range(0, 12));

TEST(Barrier, RequiresStrictInterior) {
  SeparableConcaveObjective::SparseRows rows{{{0, 1.0}}};
  const SeparableConcaveObjective f(1, std::move(rows), {log_u(0.1)});
  const BoxBudgetConstraints c({1.0}, {1.0}, 1.0);  // theta == u*alpha
  EXPECT_THROW(maximize_barrier(f, c), Error);
}

}  // namespace
}  // namespace netmon::opt
