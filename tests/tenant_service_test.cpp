// TenantService contract: tenant resolution + typed rejects, exact cache
// hits bit-identical WITHOUT invoking the solver (the solver-invocation
// counter is the proof), warm-started misses, quota enforcement on the
// injected clock, and RCU isolation — in-flight requests answer against
// the snapshot they resolved, swaps notwithstanding.
#include "tenant/tenant.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "obs/clock.hpp"
#include "serve/serve.hpp"

namespace netmon::tenant {
namespace {

using namespace std::chrono_literals;

TenantModel line_model(double theta = 50000.0) {
  TenantModel model;
  model.graph = test::line_graph();
  model.task.ods = {{0, 3}, {1, 3}};
  model.task.expected_packets = {5000.0, 3000.0};
  model.loads.assign(model.graph.link_count(), 1000.0);
  model.problem.theta = theta;
  return model;
}

serve::Request solve_request(std::uint64_t id, const std::string& tenant = "") {
  serve::Request request;
  request.id = id;
  request.tenant = tenant;
  return request;
}

void expect_identical_solutions(const serve::Response& a,
                                const serve::Response& b) {
  ASSERT_EQ(a.solutions.size(), b.solutions.size());
  for (std::size_t i = 0; i < a.solutions.size(); ++i) {
    EXPECT_EQ(a.solutions[i].rates, b.solutions[i].rates);
    EXPECT_EQ(a.solutions[i].total_utility, b.solutions[i].total_utility);
    EXPECT_EQ(a.solutions[i].lambda, b.solutions[i].lambda);
    EXPECT_EQ(a.solutions[i].iterations, b.solutions[i].iterations);
    EXPECT_EQ(a.solutions[i].active_monitors, b.solutions[i].active_monitors);
  }
}

TEST(TenantService, UnknownTenantsAreTypedBadRequests) {
  TenantRegistry registry;
  TenantService service(registry);

  // No default yet: even the empty name has nowhere to resolve.
  serve::Response response = service.submit(solve_request(1)).get();
  EXPECT_EQ(response.status, serve::ResponseStatus::kBadRequest);
  EXPECT_NE(response.error.find("no default tenant"), std::string::npos);

  registry.publish("alpha", line_model());
  response = service.submit(solve_request(2, "ghost")).get();
  EXPECT_EQ(response.status, serve::ResponseStatus::kBadRequest);
  EXPECT_NE(response.error.find("unknown tenant"), std::string::npos);
}

TEST(TenantService, ResponsesEchoTheResolvedTenant) {
  TenantRegistry registry;
  registry.publish("alpha", line_model());
  TenantService service(registry);

  const serve::Response response = service.submit(solve_request(5)).get();
  EXPECT_EQ(response.status, serve::ResponseStatus::kOk);
  EXPECT_EQ(response.tenant, "alpha");  // empty name -> default, echoed
  EXPECT_EQ(response.id, 5u);
  ASSERT_EQ(response.solutions.size(), 1u);
}

TEST(TenantService, AnswersMatchASingleTenantServerBitExactly) {
  TenantRegistry registry;
  registry.publish("alpha", line_model());
  TenantService service(registry);

  const TenantModel model = line_model();
  serve::ServerOptions options;
  options.problem = model.problem;
  serve::Server reference(model.graph, model.task, model.loads, options);

  serve::Request request = solve_request(9, "alpha");
  request.failed = {3};
  const serve::Response tenant_answer = service.submit(request).get();
  const serve::Response direct_answer = reference.submit(request).get();
  ASSERT_EQ(tenant_answer.status, serve::ResponseStatus::kOk);
  ASSERT_EQ(direct_answer.status, serve::ResponseStatus::kOk);
  expect_identical_solutions(tenant_answer, direct_answer);
}

TEST(TenantService, ExactHitIsBitIdenticalAndNeverInvokesTheSolver) {
  TenantRegistry registry;
  registry.publish("alpha", line_model());
  TenantService service(registry);

  serve::Request request = solve_request(11, "alpha");
  request.kind = serve::RequestKind::kWhatIfBatch;
  request.what_if = {{1}, {3}};

  const serve::Response first = service.submit(request).get();
  ASSERT_EQ(first.status, serve::ResponseStatus::kOk) << first.error;
  EXPECT_EQ(first.cache, serve::CacheOutcome::kNone);
  const std::uint64_t solves_after_first = service.solver_invocations();
  EXPECT_GT(solves_after_first, 0u);

  serve::Request repeat = request;
  repeat.id = 12;
  const serve::Response second = service.submit(repeat).get();
  ASSERT_EQ(second.status, serve::ResponseStatus::kOk);
  EXPECT_EQ(second.cache, serve::CacheOutcome::kHit);
  EXPECT_EQ(second.id, 12u);  // re-stamped, not the cached id
  EXPECT_EQ(second.tenant, "alpha");
  expect_identical_solutions(first, second);
  // The acceptance probe: a hit replays the answer, it does not solve.
  EXPECT_EQ(service.solver_invocations(), solves_after_first);
  EXPECT_EQ(service.cache().hits(), 1u);
}

TEST(TenantService, CanonicallyEqualSpellingsShareOneCacheEntry) {
  TenantRegistry registry;
  registry.publish("alpha", line_model(50000.0));
  TenantService service(registry);

  // theta omitted vs. the default spelled out; failed in either order.
  serve::Request a = solve_request(1, "alpha");
  a.failed = {3, 1};
  const serve::Response first = service.submit(a).get();
  ASSERT_EQ(first.status, serve::ResponseStatus::kOk);

  serve::Request b = solve_request(2, "alpha");
  b.theta = 50000.0;
  b.failed = {1, 3};
  const serve::Response second = service.submit(b).get();
  EXPECT_EQ(second.cache, serve::CacheOutcome::kHit);
  expect_identical_solutions(first, second);
}

TEST(TenantService, NearMissesWarmStartFromTheCache) {
  TenantRegistry registry;
  registry.publish("alpha", line_model());
  TenantService service(registry);

  serve::Request seed = solve_request(1, "alpha");
  seed.theta = 50000.0;
  ASSERT_EQ(service.submit(seed).get().status, serve::ResponseStatus::kOk);

  serve::Request close = solve_request(2, "alpha");
  close.theta = 52000.0;
  const serve::Response response = service.submit(close).get();
  ASSERT_EQ(response.status, serve::ResponseStatus::kOk);
  EXPECT_EQ(response.cache, serve::CacheOutcome::kWarmStart);
  EXPECT_EQ(service.cache().warm_starts(), 1u);

  // The warm-started answer must still be the true optimum: identical to
  // a cold solve of the same request on a cache-less service.
  TenantRegistry cold_registry;
  cold_registry.publish("alpha", line_model());
  TenantServiceOptions cold_options;
  cold_options.cache.max_entries = 0;
  TenantService cold(cold_registry, cold_options);
  const serve::Response reference = cold.submit(close).get();
  ASSERT_EQ(reference.status, serve::ResponseStatus::kOk);
  ASSERT_EQ(response.solutions.size(), 1u);
  ASSERT_EQ(reference.solutions.size(), 1u);
  EXPECT_EQ(response.solutions[0].active_monitors,
            reference.solutions[0].active_monitors);
  for (std::size_t l = 0; l < reference.solutions[0].rates.size(); ++l)
    EXPECT_NEAR(response.solutions[0].rates[l],
                reference.solutions[0].rates[l], 1e-6)
        << "link " << l;
}

TEST(TenantService, ExplicitWarmStartsAreLeftAlone) {
  TenantRegistry registry;
  registry.publish("alpha", line_model());
  TenantService service(registry);

  serve::Request seed = solve_request(1, "alpha");
  ASSERT_EQ(service.submit(seed).get().status, serve::ResponseStatus::kOk);

  // A client-provided warm start wins over the cache donor.
  serve::Request explicit_warm = solve_request(2, "alpha");
  explicit_warm.theta = 52000.0;
  explicit_warm.warm_start.assign(
      registry.acquire("alpha")->model().graph.link_count(), 0.1);
  const serve::Response response = service.submit(explicit_warm).get();
  ASSERT_EQ(response.status, serve::ResponseStatus::kOk);
  EXPECT_EQ(response.cache, serve::CacheOutcome::kNone);
}

TEST(TenantService, RateLimitRejectsAreTypedAndRecoverOnTheClock) {
  obs::ManualClock clock;
  TenantRegistry registry(&clock);
  registry.publish("alpha", line_model());
  QuotaConfig quota;
  quota.tokens_per_sec = 1.0;
  quota.burst = 2.0;
  registry.set_quota("alpha", quota);

  TenantServiceOptions options;
  options.clock = &clock;
  TenantService service(registry, options);

  EXPECT_EQ(service.submit(solve_request(1, "alpha")).get().status,
            serve::ResponseStatus::kOk);
  EXPECT_EQ(service.submit(solve_request(2, "alpha")).get().status,
            serve::ResponseStatus::kOk);

  serve::Response rejected = service.submit(solve_request(3, "alpha")).get();
  EXPECT_EQ(rejected.status, serve::ResponseStatus::kRejectedQuota);
  EXPECT_NE(rejected.error.find("rate limit"), std::string::npos);
  EXPECT_EQ(rejected.tenant, "alpha");

  clock.advance(1s);
  EXPECT_EQ(service.submit(solve_request(4, "alpha")).get().status,
            serve::ResponseStatus::kOk);
}

TEST(TenantService, InflightCapRejectsWhileRequestsArePending) {
  TenantRegistry registry;
  registry.publish("alpha", line_model());
  QuotaConfig quota;
  quota.max_inflight = 1;
  registry.set_quota("alpha", quota);

  TenantServiceOptions options;
  options.start_paused = true;  // park the first request in the queue
  TenantService service(registry, options);

  std::future<serve::Response> parked =
      service.submit(solve_request(1, "alpha"));

  serve::Response rejected = service.submit(solve_request(2, "alpha")).get();
  EXPECT_EQ(rejected.status, serve::ResponseStatus::kRejectedQuota);
  EXPECT_NE(rejected.error.find("in-flight"), std::string::npos);

  service.resume();
  EXPECT_EQ(parked.get().status, serve::ResponseStatus::kOk);
  // Completion released the slot.
  EXPECT_EQ(service.submit(solve_request(3, "alpha")).get().status,
            serve::ResponseStatus::kOk);
  EXPECT_EQ(registry.quota("alpha")->inflight(), 0u);
}

TEST(TenantService, TenantsAreIsolatedWithinOneBatch) {
  TenantRegistry registry;
  registry.publish("small", line_model(20000.0));
  registry.publish("large", line_model(200000.0));

  TenantServiceOptions options;
  options.start_paused = true;  // force both tenants into one batch
  options.batch.max_batch = 8;
  TenantService service(registry, options);

  std::future<serve::Response> small_future =
      service.submit(solve_request(1, "small"));
  std::future<serve::Response> large_future =
      service.submit(solve_request(2, "large"));
  service.resume();

  const serve::Response small = small_future.get();
  const serve::Response large = large_future.get();
  ASSERT_EQ(small.status, serve::ResponseStatus::kOk);
  ASSERT_EQ(large.status, serve::ResponseStatus::kOk);
  EXPECT_EQ(small.tenant, "small");
  EXPECT_EQ(large.tenant, "large");
  // Ten times the budget buys a strictly better objective: each slot
  // solved against its own tenant's model.
  EXPECT_LT(small.solutions[0].budget_used, large.solutions[0].budget_used);
  EXPECT_LT(small.solutions[0].total_utility, large.solutions[0].total_utility);
}

TEST(TenantService, InFlightRequestsKeepTheSnapshotTheyResolved) {
  TenantRegistry registry;
  registry.publish("alpha", line_model(50000.0));

  TenantServiceOptions options;
  options.start_paused = true;
  TenantService service(registry, options);

  // Admitted and parked against epoch 1...
  std::future<serve::Response> pinned =
      service.submit(solve_request(1, "alpha"));
  // ...then the registry swaps (and even removes) the tenant.
  registry.publish("alpha", line_model(90000.0));
  service.resume();

  const serve::Response old_epoch = pinned.get();
  ASSERT_EQ(old_epoch.status, serve::ResponseStatus::kOk);

  // A fresh request sees epoch 2 — and must NOT hit epoch 1's cache.
  const serve::Response new_epoch =
      service.submit(solve_request(2, "alpha")).get();
  ASSERT_EQ(new_epoch.status, serve::ResponseStatus::kOk);
  EXPECT_EQ(new_epoch.cache, serve::CacheOutcome::kNone);
  EXPECT_GT(new_epoch.solutions[0].budget_used,
            old_epoch.solutions[0].budget_used);

  // The two epochs answered with their own thetas: repeating each
  // request now hits its own epoch's entry.
  const serve::Response repeat =
      service.submit(solve_request(3, "alpha")).get();
  EXPECT_EQ(repeat.cache, serve::CacheOutcome::kHit);
  expect_identical_solutions(new_epoch, repeat);
}

TEST(TenantService, StopAnswersParkedRequestsWithShutdown) {
  TenantRegistry registry;
  registry.publish("alpha", line_model());
  TenantServiceOptions options;
  options.start_paused = true;
  TenantService service(registry, options);

  std::future<serve::Response> parked =
      service.submit(solve_request(1, "alpha"));
  service.stop();
  EXPECT_EQ(parked.get().status, serve::ResponseStatus::kShutdown);
  // Post-stop submissions reject immediately.
  EXPECT_EQ(service.submit(solve_request(2, "alpha")).get().status,
            serve::ResponseStatus::kShutdown);
  // Quota slots were released on the shutdown path too.
  EXPECT_EQ(registry.quota("alpha")->inflight(), 0u);
}

TEST(TenantService, MetricsExposeTheTenantAndCacheFamilies) {
  TenantRegistry registry;
  TenantService service(registry);
  // Published after construction: bind() has attached the swap counter.
  registry.publish("alpha", line_model());

  serve::Request request = solve_request(1, "alpha");
  ASSERT_EQ(service.submit(request).get().status, serve::ResponseStatus::kOk);
  request.id = 2;
  ASSERT_EQ(service.submit(request).get().cache, serve::CacheOutcome::kHit);

  const std::string text = service.prometheus();
  EXPECT_NE(text.find("netmon_cache_hits_total 1"), std::string::npos);
  EXPECT_NE(text.find("netmon_cache_misses_total"), std::string::npos);
  EXPECT_NE(text.find("netmon_cache_entries 1"), std::string::npos);
  EXPECT_NE(text.find("netmon_tenant_count 1"), std::string::npos);
  EXPECT_NE(text.find("netmon_tenant_swaps_total 1"), std::string::npos);
}

TEST(TenantService, WorksBehindTheWireTransportUnchanged) {
  TenantRegistry registry;
  registry.publish("alpha", line_model());
  TenantService service(registry);
  serve::LoopbackTransport wire(service, /*via_wire=*/true);

  serve::Request request = solve_request(21, "alpha");
  const serve::Response first = wire.call(request);
  ASSERT_EQ(first.status, serve::ResponseStatus::kOk);
  EXPECT_EQ(first.tenant, "alpha");

  request.id = 22;
  const serve::Response second = wire.call(request);
  EXPECT_EQ(second.cache, serve::CacheOutcome::kHit);
  expect_identical_solutions(first, second);
}

}  // namespace
}  // namespace netmon::tenant
