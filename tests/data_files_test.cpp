// The repo ships the reference topology and task as text files
// (data/geant.topo, data/janet.task) for the placement_tool CLI; they
// must stay in sync with the built-in scenario.
#include <gtest/gtest.h>

#include <fstream>

#include "topo/geant.hpp"
#include "topo/io.hpp"

namespace netmon::topo {
namespace {

std::ifstream open_data(const std::string& name) {
  // ctest runs from the build tree; the data dir sits next to it.
  for (const char* prefix : {"../data/", "data/", "../../data/"}) {
    std::ifstream in(prefix + name);
    if (in) return in;
  }
  return std::ifstream{};
}

TEST(DataFiles, TopologyFileMatchesBuiltIn) {
  std::ifstream in = open_data("geant.topo");
  ASSERT_TRUE(in) << "data/geant.topo not found relative to the build dir";
  const Graph parsed = read_graph(in);
  const GeantNetwork net = make_geant();
  ASSERT_EQ(parsed.node_count(), net.graph.node_count());
  ASSERT_EQ(parsed.link_count(), net.graph.link_count());
  for (LinkId id = 0; id < parsed.link_count(); ++id) {
    EXPECT_EQ(parsed.link(id).src, net.graph.link(id).src);
    EXPECT_EQ(parsed.link(id).dst, net.graph.link(id).dst);
    EXPECT_DOUBLE_EQ(parsed.link(id).igp_weight,
                     net.graph.link(id).igp_weight);
    EXPECT_EQ(parsed.link(id).monitorable, net.graph.link(id).monitorable);
  }
  for (const Node& n : net.graph.nodes()) {
    EXPECT_DOUBLE_EQ(parsed.node(n.id).mass, n.mass);
  }
}

TEST(DataFiles, TaskFileMatchesBuiltIn) {
  std::ifstream in = open_data("janet.task");
  ASSERT_TRUE(in) << "data/janet.task not found relative to the build dir";
  const auto& names = janet_destinations();
  const auto& rates = janet_od_rates();
  std::string line;
  std::size_t k = 0;
  double total = 0.0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind, src, dst;
    double rate = 0.0;
    ASSERT_TRUE(fields >> kind >> src >> dst >> rate) << line;
    EXPECT_EQ(kind, "od");
    EXPECT_EQ(src, "JANET");
    ASSERT_LT(k, names.size());
    EXPECT_EQ(dst, names[k]);
    EXPECT_DOUBLE_EQ(rate, rates[k]);
    total += rate;
    ++k;
  }
  EXPECT_EQ(k, names.size());
  EXPECT_NEAR(total, 57933.0, 1e-9);
}

}  // namespace
}  // namespace netmon::topo
