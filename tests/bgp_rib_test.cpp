#include "bgp/rib.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace netmon::bgp {
namespace {

using net::ipv4;

Route route(net::Prefix prefix, topo::NodeId egress, std::uint32_t lp = 100,
            std::uint32_t as_len = 1, std::uint32_t peer = 0) {
  return Route{prefix, egress, lp, as_len, peer};
}

TEST(BestPath, DecisionOrder) {
  const net::Prefix p{ipv4(10, 0, 0, 0), 8};
  // Higher local-pref wins...
  EXPECT_TRUE(better_route(route(p, 1, 200, 5, 1), route(p, 2, 100, 1, 0)));
  // ...then shorter AS path...
  EXPECT_TRUE(better_route(route(p, 1, 100, 2, 1), route(p, 2, 100, 3, 0)));
  // ...then lower peer id.
  EXPECT_TRUE(better_route(route(p, 1, 100, 2, 0), route(p, 2, 100, 2, 1)));
}

TEST(Rib, BestSelectsByPolicy) {
  Rib rib;
  const net::Prefix p{ipv4(192, 0, 2, 0), 24};
  rib.insert(route(p, 5, 100, 3, 1));
  rib.insert(route(p, 7, 100, 2, 2));  // shorter AS path: preferred
  rib.insert(route(p, 9, 90, 1, 3));   // lower local-pref: not preferred
  const auto best = rib.best(p);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->egress, 7u);
  EXPECT_EQ(rib.prefix_count(), 1u);
  EXPECT_EQ(rib.route_count(), 3u);
}

TEST(Rib, ReannouncementReplacesPerPeer) {
  Rib rib;
  const net::Prefix p{ipv4(192, 0, 2, 0), 24};
  rib.insert(route(p, 5, 100, 3, 1));
  rib.insert(route(p, 6, 100, 1, 1));  // same peer, better route
  EXPECT_EQ(rib.route_count(), 1u);
  EXPECT_EQ(rib.best(p)->egress, 6u);
}

TEST(Rib, WithdrawFallsBackToNextBest) {
  Rib rib;
  const net::Prefix p{ipv4(192, 0, 2, 0), 24};
  rib.insert(route(p, 7, 100, 1, 1));
  rib.insert(route(p, 5, 100, 3, 2));
  EXPECT_EQ(rib.best(p)->egress, 7u);
  EXPECT_EQ(rib.withdraw(p, 1), 1u);
  EXPECT_EQ(rib.best(p)->egress, 5u);
  EXPECT_EQ(rib.withdraw(p, 2), 1u);
  EXPECT_FALSE(rib.best(p).has_value());
  EXPECT_EQ(rib.withdraw(p, 2), 0u);
  EXPECT_EQ(rib.prefix_count(), 0u);
}

TEST(Rib, PrefixesAreIndependent) {
  Rib rib;
  rib.insert(route({ipv4(10, 1, 0, 0), 16}, 1));
  rib.insert(route({ipv4(10, 2, 0, 0), 16}, 2));
  EXPECT_EQ(rib.prefix_count(), 2u);
  EXPECT_EQ(rib.best({ipv4(10, 1, 0, 0), 16})->egress, 1u);
  EXPECT_EQ(rib.best({ipv4(10, 2, 0, 0), 16})->egress, 2u);
  // Same base, different length = different prefix.
  rib.insert(route({ipv4(10, 1, 0, 0), 24}, 3));
  EXPECT_EQ(rib.prefix_count(), 3u);
}

TEST(Rib, HostBitsIgnoredInKey) {
  Rib rib;
  rib.insert(route({ipv4(10, 1, 2, 3), 16}, 1));  // host bits set
  EXPECT_TRUE(rib.best({ipv4(10, 1, 0, 0), 16}).has_value());
}

TEST(Rib, ExportsLongestPrefixMatchMap) {
  Rib rib;
  rib.insert(route({ipv4(10, 0, 0, 0), 8}, 1));
  rib.insert(route({ipv4(10, 64, 0, 0), 10}, 2, 100, 1, 7));
  rib.insert(route({ipv4(10, 64, 0, 0), 10}, 3, 200, 5, 8));  // wins on LP
  const netflow::EgressMap map = rib.to_egress_map();
  EXPECT_EQ(map.lookup(ipv4(10, 1, 1, 1)), 1u);
  EXPECT_EQ(map.lookup(ipv4(10, 70, 0, 1)), 3u);
  EXPECT_EQ(map.size(), 2u);
}

TEST(Rib, ValidatesRoutes) {
  Rib rib;
  Route bad = route({ipv4(10, 0, 0, 0), 8}, 1);
  bad.egress = topo::kInvalidId;
  EXPECT_THROW(rib.insert(bad), Error);
}

}  // namespace
}  // namespace netmon::bgp
