#include "core/reoptimize.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"

namespace netmon::core {
namespace {

TEST(WarmStart, ProjectedPointIsFeasible) {
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem problem = make_problem(s);
  // A wildly infeasible "previous" configuration.
  sampling::RateVector previous(s.net.graph.link_count(), 0.5);
  const auto start = warm_start_point(problem, previous);
  EXPECT_TRUE(problem.constraints().feasible(start, 1e-6));
}

TEST(WarmStart, IdenticalProblemConvergesImmediately) {
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem problem = make_problem(s);
  const PlacementSolution cold = solve_placement(problem);
  const PlacementSolution warm = resolve_warm(problem, cold.rates);
  EXPECT_EQ(warm.status, opt::SolveStatus::kOptimal);
  EXPECT_LE(warm.iterations, 5);  // already at the optimum
  EXPECT_NEAR(warm.total_utility, cold.total_utility, 1e-9);
}

TEST(WarmStart, FasterAfterSmallPerturbation) {
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem base = make_problem(s);
  const PlacementSolution previous = solve_placement(base);

  // Perturb theta by 10%: the new optimum is near the old one.
  ProblemOptions options;
  options.theta = 110000.0;
  const PlacementProblem perturbed = make_problem(s, options);
  const PlacementSolution cold = solve_placement(perturbed);
  const PlacementSolution warm = resolve_warm(perturbed, previous.rates);

  EXPECT_EQ(warm.status, opt::SolveStatus::kOptimal);
  EXPECT_NEAR(warm.total_utility, cold.total_utility,
              1e-7 * (1.0 + std::abs(cold.total_utility)));
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(WarmStart, SurvivesTopologyChange) {
  // After a failure the candidate set itself changes; the warm start must
  // still be feasible and reach the same optimum as a cold solve.
  const GeantScenario before = make_geant_scenario();
  const PlacementProblem base = make_problem(before);
  const PlacementSolution previous = solve_placement(base);

  const topo::LinkId uk_nl = *before.net.graph.find_link("UK", "NL");
  ScenarioOptions failed_scenario;
  failed_scenario.failed.insert(uk_nl);
  const GeantScenario after = make_geant_scenario(failed_scenario);
  ProblemOptions options;
  options.failed.insert(uk_nl);
  const PlacementProblem rerouted(after.net.graph, after.task, after.loads,
                                  options);

  const PlacementSolution cold = solve_placement(rerouted);
  const PlacementSolution warm = resolve_warm(rerouted, previous.rates);
  EXPECT_EQ(warm.status, opt::SolveStatus::kOptimal);
  EXPECT_NEAR(warm.total_utility, cold.total_utility,
              1e-7 * (1.0 + std::abs(cold.total_utility)));
}

}  // namespace
}  // namespace netmon::core
