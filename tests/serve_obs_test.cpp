// Observability of the serving layer: injectable clock driving deadline
// expiry deterministically, flight-recorder event ordering, and the
// shared Prometheus/trace export of serve + solver metrics.
#include "serve/serve.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "obs/obs.hpp"

namespace netmon::serve {
namespace {

using namespace std::chrono_literals;

struct LineModel {
  topo::Graph graph = test::line_graph();
  core::MeasurementTask task;
  traffic::LinkLoads loads;

  LineModel() {
    task.ods = {{0, 3}, {1, 3}};
    task.expected_packets = {5000.0, 3000.0};
    loads.assign(graph.link_count(), 1000.0);
  }

  std::unique_ptr<Server> server(ServerOptions options = {}) const {
    if (options.problem.theta == core::ProblemOptions{}.theta)
      options.problem.theta = 50000.0;
    return std::make_unique<Server>(graph, task, loads, options);
  }
};

struct ServeObsTest : ::testing::Test {
  LineModel model;
};

Request solve_request(std::uint64_t id) {
  Request request;
  request.id = id;
  return request;
}

TEST_F(ServeObsTest, ManualClockDrivesDeadlineExpiryWithoutSleeps) {
  // The deadline check and the timestamps share one injected clock, so
  // advancing it while the dispatcher is parked expires the request
  // deterministically — no sleeps, no wall-clock races.
  obs::ManualClock clock;
  ServerOptions options;
  options.start_paused = true;
  options.clock = &clock;
  auto srv = model.server(options);
  LoopbackTransport client(*srv);

  Request request;
  request.id = 9;
  request.deadline_ms = 50;
  std::future<Response> future = client.send(std::move(request));

  clock.advance(100ms);  // past the deadline, in virtual time only
  srv->resume();

  const Response response = future.get();
  EXPECT_EQ(response.status, ResponseStatus::kDeadlineExpired);
  EXPECT_NE(response.error.find("in queue"), std::string::npos);
  EXPECT_EQ(srv->stats().expired_in_queue, 1u);

  // The flight recorder saw the miss, timestamped by the same clock.
  const auto events = srv->flight_recorder().dump();
  const auto miss = std::find_if(events.begin(), events.end(), [](auto& e) {
    return e.event == obs::ServeEvent::kDeadlineMissQueue;
  });
  ASSERT_NE(miss, events.end());
  EXPECT_EQ(miss->request_id, 9u);
}

TEST_F(ServeObsTest, ManualClockBeforeDeadlineStillServes) {
  obs::ManualClock clock;
  ServerOptions options;
  options.start_paused = true;
  options.clock = &clock;
  auto srv = model.server(options);
  LoopbackTransport client(*srv);

  Request request;
  request.id = 10;
  request.deadline_ms = 50;
  std::future<Response> future = client.send(std::move(request));

  clock.advance(10ms);  // within the deadline
  srv->resume();
  EXPECT_EQ(future.get().status, ResponseStatus::kOk);
}

TEST_F(ServeObsTest, FlightRecorderCapturesTheRequestLifecycleInOrder) {
  auto srv = model.server();
  LoopbackTransport client(*srv);

  const Response response = client.call(solve_request(42));
  ASSERT_EQ(response.status, ResponseStatus::kOk);

  const auto events = srv->flight_recorder().dump();
  auto index_of = [&](obs::ServeEvent event) -> std::ptrdiff_t {
    const auto it = std::find_if(events.begin(), events.end(), [&](auto& e) {
      return e.event == event;
    });
    return it == events.end() ? -1 : it - events.begin();
  };

  const std::ptrdiff_t admit = index_of(obs::ServeEvent::kAdmit);
  const std::ptrdiff_t dequeue = index_of(obs::ServeEvent::kDequeue);
  const std::ptrdiff_t batch = index_of(obs::ServeEvent::kBatchFormed);
  const std::ptrdiff_t done = index_of(obs::ServeEvent::kSolveDone);
  ASSERT_GE(admit, 0);
  ASSERT_GE(dequeue, 0);
  ASSERT_GE(batch, 0);
  ASSERT_GE(done, 0);
  EXPECT_LT(admit, dequeue);
  EXPECT_LT(dequeue, batch);
  EXPECT_LT(batch, done);

  EXPECT_EQ(events[static_cast<std::size_t>(admit)].request_id, 42u);
  EXPECT_EQ(events[static_cast<std::size_t>(done)].request_id, 42u);
  // Timestamps come from one monotonic clock: never decreasing.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].t_ns, events[i - 1].t_ns);

  // JSONL export: one line per event, named event strings.
  const std::string jsonl = srv->flight_recorder().jsonl();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(jsonl.begin(), jsonl.end(), '\n')),
            events.size());
  EXPECT_NE(jsonl.find(R"("event":"admit")"), std::string::npos);
  EXPECT_NE(jsonl.find(R"("event":"solve_done")"), std::string::npos);
}

TEST_F(ServeObsTest, ZeroCapacityDisablesTheFlightRecorder) {
  ServerOptions options;
  options.flight_recorder = 0;
  auto srv = model.server(options);
  LoopbackTransport client(*srv);
  client.call(solve_request(1));

  EXPECT_FALSE(srv->flight_recorder().enabled());
  EXPECT_TRUE(srv->flight_recorder().dump().empty());
}

TEST_F(ServeObsTest, PrometheusExportCoversServeAndSolverMetrics) {
  auto srv = model.server();
  LoopbackTransport client(*srv);
  client.call(solve_request(1));
  client.call(solve_request(2));

  const std::string text = srv->prometheus();
  EXPECT_NE(text.find("netmon_serve_submitted_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("netmon_serve_served_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE netmon_serve_queue_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("netmon_serve_batch_size_count"), std::string::npos);
  // Solver metrics registered by the server's BatchSolver live in the
  // same registry and export in the same pass.
  EXPECT_NE(text.find("netmon_solver_solves_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("netmon_solver_iterations_total"), std::string::npos);
  EXPECT_NE(text.find("netmon_solver_iterations_bucket{le=\"2000\"}"),
            std::string::npos);
}

TEST_F(ServeObsTest, SolverTraceFlowsThroughTheServer) {
  obs::SolverTrace trace(1024);
  ServerOptions options;
  options.solver_trace = &trace;
  auto srv = model.server(options);
  LoopbackTransport client(*srv);

  const Response response = client.call(solve_request(5));
  ASSERT_EQ(response.status, ResponseStatus::kOk);
  ASSERT_EQ(response.solutions.size(), 1u);

  const auto records = trace.snapshot();
  ASSERT_FALSE(records.empty());
  const obs::TraceRecord& last = records.back();
  ASSERT_TRUE(last.final_record);
  // The trace's final record reports the same KKT numbers the response
  // carries — bit-exact, one shared code path.
  EXPECT_EQ(last.kkt_lambda, response.solutions[0].lambda);
  EXPECT_EQ(static_cast<int>(last.iteration),
            response.solutions[0].iterations);
  EXPECT_EQ(static_cast<opt::SolveStatus>(last.status),
            response.solutions[0].status);
}

}  // namespace
}  // namespace netmon::serve
