// Wire-level integration: monitors -> flow records -> NetFlow v5
// datagrams -> decode -> collector. Verifies the binary path preserves
// the accounting end to end.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "netflow/collector.hpp"
#include "netflow/exporter.hpp"
#include "netflow/v5_codec.hpp"
#include "traffic/flow_generator.hpp"
#include "util/rng.hpp"

namespace netmon::netflow {
namespace {

TEST(WireIntegration, RecordsSurviveTheWire) {
  const topo::Graph graph = test::line_graph();
  const EgressMap egress = EgressMap::for_pop_blocks(graph);
  const auto ab = *graph.find_link(0, 1);

  // Generate flows and run them through a monitor that exports into a
  // wire buffer instead of straight into the collector.
  Rng rng(42);
  const auto flows =
      traffic::generate_flows(rng, {{0, 3}, 150.0}, 0);

  RecordBatch exported;
  LinkMonitor monitor(
      ab, 0.2, FlowTableOptions{},
      [&](const FlowRecord& r, topo::LinkId, double) {
        exported.push_back(r);
      },
      7);
  double last = 0.0;
  for (const traffic::Flow& f : flows) {
    // One observation per packet at evenly spaced times.
    for (std::uint64_t seq = 0; seq < f.packets; ++seq) {
      const double t =
          f.packets == 1
              ? f.start_sec
              : f.start_sec + (f.end_sec - f.start_sec) *
                                  static_cast<double>(seq) /
                                  static_cast<double>(f.packets - 1);
      monitor.offer(f.key, 100, t);
      last = std::max(last, t);
    }
  }
  monitor.flush(last);
  ASSERT_FALSE(exported.empty());

  // Encode to v5, decode, feed the collector.
  const auto datagrams = encode_v5(exported, last, /*1-in-N=*/5);
  Collector collector(egress);
  std::uint64_t wire_records = 0;
  for (const auto& dg : datagrams) {
    const V5Datagram decoded = decode_v5(dg);
    EXPECT_DOUBLE_EQ(v5_sampling_rate(decoded.header), 0.2);
    for (const FlowRecord& r : decoded.records) {
      collector.receive(r, r.input_link, v5_sampling_rate(decoded.header));
      ++wire_records;
    }
  }
  EXPECT_EQ(wire_records, exported.size());
  EXPECT_EQ(collector.received_records(), exported.size());
  EXPECT_EQ(collector.unattributed_records(), 0u);

  // Total sampled packets survive the wire exactly.
  std::uint64_t sampled_direct = 0;
  for (const FlowRecord& r : exported) sampled_direct += r.sampled_packets;
  std::uint64_t sampled_wire = 0;
  for (std::int64_t bin : collector.bins())
    sampled_wire += collector.sampled_packets(bin, {0, 3});
  EXPECT_EQ(sampled_wire, sampled_direct);
  EXPECT_EQ(sampled_direct, monitor.sampled_packets());
}

TEST(WireIntegration, SequenceNumbersDetectLoss) {
  // A collector can detect datagram loss from the flow_sequence gaps.
  RecordBatch batch;
  for (std::uint32_t i = 0; i < 90; ++i) {
    FlowRecord r;
    r.key.src_ip = net::ipv4(10, 0, 0, 1);
    r.key.dst_ip = net::ipv4(10, 3, 0, 1);
    r.sampled_packets = 1;
    batch.push_back(r);
  }
  const auto datagrams = encode_v5(batch, 0.0, 10, /*first_sequence=*/100);
  ASSERT_EQ(datagrams.size(), 3u);
  // Drop the middle datagram; the gap is visible.
  const auto first = decode_v5(datagrams[0]);
  const auto third = decode_v5(datagrams[2]);
  const std::uint32_t expected_after_first =
      first.header.flow_sequence + first.header.count;
  EXPECT_NE(third.header.flow_sequence, expected_after_first);
  EXPECT_EQ(third.header.flow_sequence - expected_after_first, 30u);
}

}  // namespace
}  // namespace netmon::netflow
