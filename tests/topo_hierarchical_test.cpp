// The hierarchical topology generator (topo/hierarchical.hpp): closed-form
// counts, determinism, structure, io round-trip, and the gravity fan-out
// built on top of it (traffic/fanout.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "routing/spf.hpp"
#include "topo/hierarchical.hpp"
#include "topo/io.hpp"
#include "traffic/fanout.hpp"
#include "traffic/link_load.hpp"
#include "util/error.hpp"

namespace netmon::topo {
namespace {

TEST(Hierarchical, CountsMatchClosedForms) {
  const HierarchyOptions o;  // 4 cores x 4 aggs x 30 edges
  const HierarchicalNetwork net = make_hierarchical(o);
  EXPECT_EQ(net.graph.node_count(), hierarchy_node_count(o));
  EXPECT_EQ(net.graph.link_count(), hierarchy_link_count(o));
  EXPECT_EQ(net.cores.size(), 4u);
  EXPECT_EQ(net.aggs.size(), 16u);
  EXPECT_EQ(net.edges.size(), 480u);
  EXPECT_EQ(net.tier_of_node.size(), net.graph.node_count());
  EXPECT_EQ(net.region_of_node.size(), net.graph.node_count());
}

TEST(Hierarchical, ScalePresetClears100kLinks) {
  const HierarchyOptions o = hierarchy_scale_options();
  EXPECT_GE(hierarchy_link_count(o), 100000u);
  EXPECT_GE(hierarchy_node_count(o), 20000u);
}

TEST(Hierarchical, DeterministicAcrossCalls) {
  const HierarchicalNetwork a = make_hierarchical({});
  const HierarchicalNetwork b = make_hierarchical({});
  ASSERT_EQ(a.graph.node_count(), b.graph.node_count());
  for (NodeId v = 0; v < a.graph.node_count(); ++v) {
    EXPECT_EQ(a.graph.node(v).name, b.graph.node(v).name);
    EXPECT_EQ(a.graph.node(v).mass, b.graph.node(v).mass);
  }
  ASSERT_EQ(a.graph.link_count(), b.graph.link_count());
  for (LinkId l = 0; l < a.graph.link_count(); ++l) {
    EXPECT_EQ(a.graph.link(l).src, b.graph.link(l).src);
    EXPECT_EQ(a.graph.link(l).dst, b.graph.link(l).dst);
  }
}

TEST(Hierarchical, EveryEdgeReachesEveryOtherEdge) {
  const HierarchicalNetwork net = make_hierarchical(
      {.cores = 3, .aggs_per_core = 2, .edges_per_agg = 4});
  const routing::SpfResult spf =
      routing::dijkstra(net.graph, net.edges.front());
  for (NodeId e : net.edges) EXPECT_TRUE(spf.reachable(e));
}

TEST(Hierarchical, TiersAndRegionsAreConsistent) {
  const HierarchicalNetwork net = make_hierarchical({});
  for (NodeId v : net.cores) {
    EXPECT_EQ(net.tier_of_node[v], Tier::kCore);
    EXPECT_EQ(net.region_of_node[v], v);  // cores are added first, in order
  }
  for (NodeId v : net.aggs) EXPECT_EQ(net.tier_of_node[v], Tier::kAgg);
  for (NodeId v : net.edges) EXPECT_EQ(net.tier_of_node[v], Tier::kEdge);
  // Edge nodes attach (first home) to an agg of their own region.
  for (NodeId v : net.edges) {
    const LinkId first = net.graph.out_links(v).front();
    EXPECT_EQ(net.region_of_node[net.graph.link(first).dst],
              net.region_of_node[v]);
  }
}

TEST(Hierarchical, IoRoundTripPreservesTheGraph) {
  const HierarchicalNetwork net = make_hierarchical(
      {.cores = 2, .aggs_per_core = 2, .edges_per_agg = 3});
  const Graph parsed = graph_from_string(to_string(net.graph));
  ASSERT_EQ(parsed.node_count(), net.graph.node_count());
  ASSERT_EQ(parsed.link_count(), net.graph.link_count());
  for (NodeId v = 0; v < parsed.node_count(); ++v) {
    EXPECT_EQ(parsed.node(v).name, net.graph.node(v).name);
    // The text format prints at stream precision (6 significant digits).
    EXPECT_NEAR(parsed.node(v).mass, net.graph.node(v).mass,
                1e-5 * net.graph.node(v).mass);
  }
  for (LinkId l = 0; l < parsed.link_count(); ++l) {
    EXPECT_EQ(parsed.link(l).src, net.graph.link(l).src);
    EXPECT_EQ(parsed.link(l).dst, net.graph.link(l).dst);
    EXPECT_EQ(parsed.link(l).capacity_bps, net.graph.link(l).capacity_bps);
    EXPECT_EQ(parsed.link(l).igp_weight, net.graph.link(l).igp_weight);
  }
}

TEST(Hierarchical, RejectsDegenerateShapes) {
  EXPECT_THROW(make_hierarchical({.cores = 1}), netmon::Error);
  EXPECT_THROW(make_hierarchical({.aggs_per_core = 0}), netmon::Error);
}

TEST(Fanout, DeterministicBoundedAndNormalized) {
  const HierarchicalNetwork net = make_hierarchical({});
  traffic::FanoutOptions fo;
  fo.od_count = 2000;
  fo.max_sources = 16;
  const traffic::TrafficMatrix a = traffic::gravity_fanout(net, fo);
  const traffic::TrafficMatrix b = traffic::gravity_fanout(net, fo);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].od, b[i].od);
    EXPECT_EQ(a[i].pkt_per_sec, b[i].pkt_per_sec);
  }

  std::set<NodeId> sources;
  double total = 0.0;
  for (const traffic::Demand& d : a) {
    EXPECT_NE(d.od.src, d.od.dst);
    EXPECT_GE(d.pkt_per_sec, fo.min_pkt_per_sec);
    sources.insert(d.od.src);
    total += d.pkt_per_sec;
  }
  EXPECT_LE(sources.size(), fo.max_sources);
  // The min-rate floor only adds; without it rates sum to the target.
  EXPECT_GE(total, fo.total_pkt_per_sec * (1.0 - 1e-9));
  // Sorted by (src, dst) with no duplicates.
  for (std::size_t i = 1; i < a.size(); ++i) {
    const bool ordered =
        a[i - 1].od.src < a[i].od.src ||
        (a[i - 1].od.src == a[i].od.src && a[i - 1].od.dst < a[i].od.dst);
    EXPECT_TRUE(ordered) << "demand " << i << " out of order";
  }
}

TEST(Fanout, BackgroundLoadsFollowCapacity) {
  const HierarchicalNetwork net = make_hierarchical(
      {.cores = 2, .aggs_per_core = 1, .edges_per_agg = 2});
  const traffic::LinkLoads loads =
      traffic::background_loads(net.graph, 0.1, 500.0);
  ASSERT_EQ(loads.size(), net.graph.link_count());
  for (const Link& l : net.graph.links()) {
    EXPECT_DOUBLE_EQ(loads[l.id], l.capacity_bps * 0.1 / (8.0 * 500.0));
    EXPECT_GT(loads[l.id], 0.0);
  }
}

TEST(Fanout, RoutableOverTheHierarchy) {
  const HierarchicalNetwork net = make_hierarchical({});
  traffic::FanoutOptions fo;
  fo.od_count = 500;
  fo.max_sources = 8;
  const traffic::TrafficMatrix tm = traffic::gravity_fanout(net, fo);
  // Every OD routes (throws on unreachable), and task load lands on links.
  const traffic::LinkLoads loads = traffic::link_loads(net.graph, tm);
  double carried = 0.0;
  for (double l : loads) carried += l;
  EXPECT_GT(carried, 0.0);
}

}  // namespace
}  // namespace netmon::topo
