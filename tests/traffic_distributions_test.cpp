#include "traffic/distributions.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace netmon::traffic {
namespace {

TEST(BoundedPareto, RejectsBadParameters) {
  EXPECT_THROW(BoundedPareto(0.0, 10.0, 1.2), Error);
  EXPECT_THROW(BoundedPareto(10.0, 10.0, 1.2), Error);
  EXPECT_THROW(BoundedPareto(1.0, 10.0, 0.0), Error);
}

TEST(BoundedPareto, SamplesWithinBounds) {
  const BoundedPareto dist(2.0, 500.0, 1.3);
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double x = dist.sample(rng);
    ASSERT_GE(x, 2.0);
    ASSERT_LE(x, 500.0);
  }
}

// Property sweep: the empirical mean must match the analytic mean across
// shapes, including the alpha = 1 special case.
class ParetoMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(ParetoMeanTest, EmpiricalMeanMatchesAnalytic) {
  const double alpha = GetParam();
  const BoundedPareto dist(1.0, 1e5, alpha);
  Rng rng(7);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += dist.sample(rng);
  const double empirical = sum / n;
  const double analytic = dist.mean();
  EXPECT_NEAR(empirical / analytic, 1.0, 0.05)
      << "alpha=" << alpha << " empirical=" << empirical
      << " analytic=" << analytic;
}

INSTANTIATE_TEST_SUITE_P(Shapes, ParetoMeanTest,
                         ::testing::Values(0.8, 1.0, 1.15, 1.5, 2.5));

TEST(BoundedPareto, HeavyTailProducesElephants) {
  const BoundedPareto dist(1.0, 1e5, 1.15);
  Rng rng(11);
  double max_seen = 0.0;
  for (int i = 0; i < 100000; ++i) max_seen = std::max(max_seen, dist.sample(rng));
  EXPECT_GT(max_seen, 1e4);  // the tail must actually be exercised
}

TEST(PacketSizeModel, TrimodalValues) {
  const PacketSizeModel model;
  Rng rng(42);
  int n40 = 0, n576 = 0, n1500 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    switch (model.sample(rng)) {
      case 40: ++n40; break;
      case 576: ++n576; break;
      case 1500: ++n1500; break;
      default: FAIL() << "unexpected packet size";
    }
  }
  EXPECT_NEAR(n40 / double(n), 0.50, 0.01);
  EXPECT_NEAR(n576 / double(n), 0.30, 0.01);
  EXPECT_NEAR(n1500 / double(n), 0.20, 0.01);
  EXPECT_NEAR(model.mean(), 0.5 * 40 + 0.3 * 576 + 0.2 * 1500, 1e-12);
}

TEST(Exponential, MeanIsInverseRate) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += exponential(rng, 4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.005);
  EXPECT_THROW(exponential(rng, 0.0), Error);
}

}  // namespace
}  // namespace netmon::traffic
