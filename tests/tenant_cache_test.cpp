// SolveCache semantics: canonical fingerprints (order-insensitive where
// the solve is, order-sensitive where the response is), bit-identical
// exact hits, LRU eviction, epoch keying, and deterministic nearest()
// warm-start donors.
#include "tenant/solve_cache.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "helpers.hpp"
#include "tenant/snapshot.hpp"

namespace netmon::tenant {
namespace {

TenantModel line_model(double theta = 50000.0) {
  TenantModel model;
  model.graph = test::line_graph();
  model.task.ods = {{0, 3}, {1, 3}};
  model.task.expected_packets = {5000.0, 3000.0};
  model.loads.assign(model.graph.link_count(), 1000.0);
  model.problem.theta = theta;
  return model;
}

serve::Request solve_request(double theta = 0.0) {
  serve::Request request;
  request.kind = serve::RequestKind::kSolve;
  request.theta = theta;
  return request;
}

/// A distinguishable cacheable response (kOk, completed solution).
serve::Response ok_response(double marker) {
  serve::Response response;
  response.status = serve::ResponseStatus::kOk;
  core::PlacementSolution solution;
  solution.rates = {marker, marker / 2.0, 0.0};
  solution.total_utility = marker * 10.0;
  solution.lambda = marker / 100.0;
  solution.iterations = 7;
  response.solutions.push_back(std::move(solution));
  return response;
}

TEST(CacheFingerprint, ExplicitDefaultsMatchOmittedOnes) {
  const TenantSnapshot snapshot("t", 1, line_model(50000.0));
  // theta = 0 means "the snapshot's default": canonically identical to
  // spelling the default out, and distinct from any other value.
  EXPECT_EQ(SolveCache::fingerprint(snapshot, solve_request(0.0)),
            SolveCache::fingerprint(snapshot, solve_request(50000.0)));
  EXPECT_NE(SolveCache::fingerprint(snapshot, solve_request(0.0)),
            SolveCache::fingerprint(snapshot, solve_request(50001.0)));
}

TEST(CacheFingerprint, FailedLinksAreASet) {
  const TenantSnapshot snapshot("t", 1, line_model());
  serve::Request a = solve_request();
  a.failed = {2, 0, 2};
  serve::Request b = solve_request();
  b.failed = {0, 2};
  serve::Request c = solve_request();
  c.failed = {0, 1};
  EXPECT_EQ(SolveCache::fingerprint(snapshot, a),
            SolveCache::fingerprint(snapshot, b));
  EXPECT_NE(SolveCache::fingerprint(snapshot, b),
            SolveCache::fingerprint(snapshot, c));
}

TEST(CacheFingerprint, WhatIfScenarioOrderMattersButInnerOrderDoesNot) {
  const TenantSnapshot snapshot("t", 1, line_model());
  serve::Request a = solve_request();
  a.kind = serve::RequestKind::kWhatIfBatch;
  a.what_if = {{2, 0}, {1}};
  serve::Request b = a;
  b.what_if = {{0, 2}, {1}};  // inner order canonicalized away
  serve::Request c = a;
  c.what_if = {{1}, {0, 2}};  // scenario order orders the response
  EXPECT_EQ(SolveCache::fingerprint(snapshot, a),
            SolveCache::fingerprint(snapshot, b));
  EXPECT_NE(SolveCache::fingerprint(snapshot, a),
            SolveCache::fingerprint(snapshot, c));
}

TEST(CacheFingerprint, DeadlineIsExcludedButBudgetIsNot) {
  const TenantSnapshot snapshot("t", 1, line_model());
  serve::Request a = solve_request();
  serve::Request b = solve_request();
  b.deadline_ms = 250;  // wall-clock: changes cancellation, not answers
  serve::Request c = solve_request();
  c.iteration_budget = 10;  // deterministic truncation: changes answers
  EXPECT_EQ(SolveCache::fingerprint(snapshot, a),
            SolveCache::fingerprint(snapshot, b));
  EXPECT_NE(SolveCache::fingerprint(snapshot, a),
            SolveCache::fingerprint(snapshot, c));
}

TEST(CacheFingerprint, EpochAndTenantKeyTheEntry) {
  const TenantSnapshot e1("t", 1, line_model());
  const TenantSnapshot e2("t", 2, line_model());
  const TenantSnapshot other("u", 1, line_model());
  const serve::Request request = solve_request();
  EXPECT_NE(SolveCache::fingerprint(e1, request),
            SolveCache::fingerprint(e2, request));
  EXPECT_NE(SolveCache::fingerprint(e1, request),
            SolveCache::fingerprint(other, request));
}

TEST(SolveCache, InsertThenLookupIsBitIdentical) {
  const TenantSnapshot snapshot("t", 1, line_model());
  SolveCache cache;
  const serve::Request request = solve_request();
  const std::string key = SolveCache::fingerprint(snapshot, request);

  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_TRUE(cache.insert(key, snapshot, request, ok_response(3.0)));

  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->solutions.size(), 1u);
  EXPECT_EQ(hit->solutions[0].rates, (sampling::RateVector{3.0, 1.5, 0.0}));
  EXPECT_EQ(hit->solutions[0].total_utility, 30.0);
  EXPECT_EQ(hit->solutions[0].lambda, 0.03);
  EXPECT_EQ(hit->solutions[0].iterations, 7);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SolveCache, OnlyCompletedOkResponsesAreStored) {
  const TenantSnapshot snapshot("t", 1, line_model());
  SolveCache cache;
  const serve::Request request = solve_request();

  serve::Response bad = ok_response(1.0);
  bad.status = serve::ResponseStatus::kDeadlineExpired;
  EXPECT_FALSE(cache.insert("a", snapshot, request, bad));

  serve::Response truncated = ok_response(1.0);
  truncated.solutions[0].status = opt::SolveStatus::kCancelled;
  EXPECT_FALSE(cache.insert("b", snapshot, request, truncated));

  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.insert("c", snapshot, request, ok_response(1.0)));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SolveCache, DuplicateInsertRefreshesInsteadOfDuplicating) {
  const TenantSnapshot snapshot("t", 1, line_model());
  SolveCache cache;
  const serve::Request request = solve_request();
  EXPECT_TRUE(cache.insert("k", snapshot, request, ok_response(1.0)));
  EXPECT_FALSE(cache.insert("k", snapshot, request, ok_response(2.0)));
  EXPECT_EQ(cache.size(), 1u);
  // The original answer stays (determinism: same key, same answer).
  EXPECT_EQ(cache.lookup("k")->solutions[0].rates[0], 1.0);
}

TEST(SolveCache, LruEvictsTheColdestAndLookupBumpsRecency) {
  const TenantSnapshot snapshot("t", 1, line_model());
  CacheConfig config;
  config.shards = 1;  // one shard: capacity and LRU order are global
  config.max_entries = 2;
  SolveCache cache(config);
  const serve::Request request = solve_request();

  cache.insert("a", snapshot, request, ok_response(1.0));
  cache.insert("b", snapshot, request, ok_response(2.0));
  EXPECT_TRUE(cache.lookup("a").has_value());  // "a" is now the warmest
  cache.insert("c", snapshot, request, ok_response(3.0));

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.lookup("a").has_value());
  EXPECT_FALSE(cache.lookup("b").has_value());  // the cold one died
  EXPECT_TRUE(cache.lookup("c").has_value());
}

TEST(SolveCache, ZeroCapacityDisablesTheCache) {
  const TenantSnapshot snapshot("t", 1, line_model());
  CacheConfig config;
  config.max_entries = 0;
  SolveCache cache(config);
  EXPECT_FALSE(
      cache.insert("k", snapshot, solve_request(), ok_response(1.0)));
  EXPECT_FALSE(cache.lookup("k").has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SolveCache, NearestDonorPrefersTheClosestTheta) {
  const TenantSnapshot snapshot("t", 1, line_model());
  SolveCache cache;
  serve::Request far = solve_request(80000.0);
  serve::Request near = solve_request(50000.0);
  cache.insert(SolveCache::fingerprint(snapshot, far), snapshot, far,
               ok_response(8.0));
  cache.insert(SolveCache::fingerprint(snapshot, near), snapshot, near,
               ok_response(5.0));

  const auto donor = cache.nearest(snapshot, solve_request(52000.0));
  ASSERT_TRUE(donor.has_value());
  EXPECT_EQ(donor->rates[0], 5.0);  // the theta-50000 entry
  EXPECT_GT(donor->distance, 0.0);
}

TEST(SolveCache, NearestNeverCrossesEpochsOrTenants) {
  const TenantSnapshot e1("t", 1, line_model());
  const TenantSnapshot e2("t", 2, line_model());
  const TenantSnapshot other("u", 1, line_model());
  SolveCache cache;
  const serve::Request request = solve_request(50000.0);
  cache.insert(SolveCache::fingerprint(e1, request), e1, request,
               ok_response(1.0));

  EXPECT_TRUE(cache.nearest(e1, solve_request(60000.0)).has_value());
  EXPECT_FALSE(cache.nearest(e2, solve_request(60000.0)).has_value());
  EXPECT_FALSE(cache.nearest(other, solve_request(60000.0)).has_value());
}

TEST(SolveCache, NearestRespectsTheWarmStartSwitch) {
  const TenantSnapshot snapshot("t", 1, line_model());
  CacheConfig config;
  config.warm_start = false;
  SolveCache cache(config);
  const serve::Request request = solve_request(50000.0);
  const std::string key = SolveCache::fingerprint(snapshot, request);
  cache.insert(key, snapshot, request, ok_response(1.0));

  EXPECT_FALSE(cache.nearest(snapshot, solve_request(60000.0)).has_value());
  // Exact hits still serve with warm starts off.
  EXPECT_TRUE(cache.lookup(key).has_value());
}

TEST(SolveCache, InvalidateDropsOneTenantOnly) {
  const TenantSnapshot t("t", 1, line_model());
  const TenantSnapshot u("u", 1, line_model());
  SolveCache cache;
  const serve::Request request = solve_request();
  cache.insert("t1", t, request, ok_response(1.0));
  cache.insert("t2", t, request, ok_response(2.0));
  cache.insert("u1", u, request, ok_response(3.0));

  EXPECT_EQ(cache.invalidate("t"), 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.lookup("t1").has_value());
  EXPECT_TRUE(cache.lookup("u1").has_value());
  EXPECT_EQ(cache.invalidate("t"), 0u);
}

}  // namespace
}  // namespace netmon::tenant
