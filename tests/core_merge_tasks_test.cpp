#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "core/solver.hpp"
#include "core/task.hpp"
#include "util/error.hpp"

namespace netmon::core {
namespace {

TEST(MergeTasks, ConcatenatesWithTaskWeights) {
  const GeantScenario s = make_geant_scenario();
  MeasurementTask engineering = s.task;  // 20 OD pairs
  MeasurementTask security;
  security.interval_sec = 300.0;
  security.ods.push_back({s.net.janet, *s.net.graph.find_node("LU")});
  security.expected_packets.push_back(6000.0);
  security.weights.push_back(2.0);  // per-OD weight inside the task

  const MeasurementTask merged =
      merge_tasks({engineering, security}, {1.0, 5.0});
  ASSERT_EQ(merged.ods.size(), 21u);
  ASSERT_EQ(merged.weights.size(), 21u);
  EXPECT_DOUBLE_EQ(merged.weights[0], 1.0);
  EXPECT_DOUBLE_EQ(merged.weights[20], 10.0);  // 5 (task) * 2 (OD)
  EXPECT_DOUBLE_EQ(merged.expected_packets[20], 6000.0);
}

TEST(MergeTasks, MergedTaskSolves) {
  const GeantScenario s = make_geant_scenario();
  MeasurementTask watch;
  watch.interval_sec = 300.0;
  watch.ods.push_back({s.net.janet, *s.net.graph.find_node("SK")});
  watch.expected_packets.push_back(7200.0);

  const MeasurementTask merged = merge_tasks({s.task, watch}, {1.0, 8.0});
  const PlacementProblem problem(s.net.graph, merged, s.loads, {});
  const PlacementSolution solution = solve_placement(problem);
  EXPECT_EQ(solution.status, opt::SolveStatus::kOptimal);
  ASSERT_EQ(solution.per_od.size(), 21u);
  // The duplicated, heavily weighted SK watch pulls the SK effective
  // rate above what the plain task gives it.
  const PlacementSolution plain =
      solve_placement(PlacementProblem(s.net.graph, s.task, s.loads, {}));
  EXPECT_GT(solution.per_od[18].rho_approx,  // JANET-SK in Table I order
            plain.per_od[18].rho_approx);
}

TEST(MergeTasks, Validation) {
  const GeantScenario s = make_geant_scenario();
  EXPECT_THROW(merge_tasks({}, {}), Error);
  EXPECT_THROW(merge_tasks({s.task}, {1.0, 2.0}), Error);
  EXPECT_THROW(merge_tasks({s.task}, {0.0}), Error);
  MeasurementTask wrong_interval = s.task;
  wrong_interval.interval_sec = 60.0;
  EXPECT_THROW(merge_tasks({s.task, wrong_interval}, {1.0, 1.0}), Error);
}

}  // namespace
}  // namespace netmon::core
