#include "core/solver.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/scenario.hpp"

namespace netmon::core {
namespace {

class GeantSolveTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new GeantScenario(make_geant_scenario());
    problem_ = new PlacementProblem(make_problem(*scenario_));
    solution_ = new PlacementSolution(solve_placement(*problem_));
  }
  static void TearDownTestSuite() {
    delete solution_;
    delete problem_;
    delete scenario_;
    solution_ = nullptr;
    problem_ = nullptr;
    scenario_ = nullptr;
  }
  static GeantScenario* scenario_;
  static PlacementProblem* problem_;
  static PlacementSolution* solution_;
};

GeantScenario* GeantSolveTest::scenario_ = nullptr;
PlacementProblem* GeantSolveTest::problem_ = nullptr;
PlacementSolution* GeantSolveTest::solution_ = nullptr;

TEST_F(GeantSolveTest, CertifiedOptimalWithinPaperIterationCap) {
  EXPECT_EQ(solution_->status, opt::SolveStatus::kOptimal);
  EXPECT_LE(solution_->iterations, 2000);  // the paper's threshold
}

TEST_F(GeantSolveTest, BudgetFullyUsed) {
  EXPECT_NEAR(solution_->budget_used / problem_->theta(), 1.0, 1e-6);
}

TEST_F(GeantSolveTest, RatesAreProbabilitiesAndLow) {
  for (topo::LinkId id = 0; id < solution_->rates.size(); ++id) {
    EXPECT_GE(solution_->rates[id], 0.0);
    EXPECT_LE(solution_->rates[id], 1.0);
  }
  // Paper §V-B: "the sampling rates are extremely low on most links";
  // the largest rates stay below ~1%.
  const double max_rate =
      *std::max_element(solution_->rates.begin(), solution_->rates.end());
  EXPECT_LT(max_rate, 0.02);
}

TEST_F(GeantSolveTest, ActiveMonitorsMatchTableOne) {
  // The ten active monitors of the paper's Table I.
  std::vector<std::string> names;
  for (topo::LinkId id : solution_->active_monitors)
    names.push_back(scenario_->net.graph.link_name(id));
  const std::vector<std::string> expected{
      "UK->FR", "UK->NL", "UK->SE", "UK->NY", "UK->PT",
      "FR->BE", "FR->LU", "SE->PL", "IT->IL", "CZ->SK"};
  ASSERT_EQ(names.size(), expected.size());
  for (const auto& name : expected) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << "missing monitor " << name;
  }
}

TEST_F(GeantSolveTest, EachOdSampledOnAtMostTwoLinks) {
  // Paper §V-B: "each OD pair is sampled in at most two links", which
  // validates the effective-rate approximation.
  for (const OdReport& od : solution_->per_od) {
    EXPECT_LE(od.monitored_links.size(), 2u);
    EXPECT_GE(od.monitored_links.size(), 1u);
  }
}

TEST_F(GeantSolveTest, UtilitiesBalancedAndHigh) {
  double lo = 1.0, hi = 0.0;
  for (const OdReport& od : solution_->per_od) {
    lo = std::min(lo, od.utility);
    hi = std::max(hi, od.utility);
  }
  EXPECT_GT(lo, 0.9);          // paper: accuracy above 0.89 for every OD
  EXPECT_LT(hi - lo, 0.06);    // good fairness despite sum objective
}

TEST_F(GeantSolveTest, ApproximationValidAtOptimalRates) {
  // rho_approx and rho_exact agree to a fraction of a percent (§V-B).
  for (const OdReport& od : solution_->per_od) {
    ASSERT_GT(od.rho_exact, 0.0);
    EXPECT_NEAR(od.rho_approx / od.rho_exact, 1.0, 5e-3);
  }
}

TEST_F(GeantSolveTest, EvaluateRatesReproducesSolveReport) {
  const PlacementSolution re = evaluate_rates(*problem_, solution_->rates);
  EXPECT_NEAR(re.total_utility, solution_->total_utility, 1e-12);
  EXPECT_EQ(re.active_monitors, solution_->active_monitors);
  ASSERT_EQ(re.per_od.size(), solution_->per_od.size());
  for (std::size_t k = 0; k < re.per_od.size(); ++k) {
    EXPECT_DOUBLE_EQ(re.per_od[k].rho_approx,
                     solution_->per_od[k].rho_approx);
  }
}

TEST_F(GeantSolveTest, LambdaPositive) {
  // The budget constraint must be binding: positive shadow price.
  EXPECT_GT(solution_->lambda, 0.0);
}

}  // namespace
}  // namespace netmon::core
