#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "util/error.hpp"

namespace netmon::obs {
namespace {

TEST(MetricsRegistry, CounterSumsAcrossThreads) {
  MetricsRegistry registry({.shards = 4});
  Counter hits = registry.counter("hits_total", "test counter");

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([hits] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) hits.inc();
    });
  }
  for (std::thread& w : workers) w.join();

  const RegistrySnapshot snap = registry.snapshot();
  const MetricSnapshot* m = snap.find("hits_total");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kCounter);
  EXPECT_EQ(m->value, static_cast<double>(kThreads * kPerThread));
}

TEST(MetricsRegistry, DetachedHandlesAreNoOps) {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  EXPECT_FALSE(static_cast<bool>(counter));
  counter.inc();
  gauge.set(1.0);
  histogram.observe(1.0);  // must not crash
}

TEST(MetricsRegistry, GaugeIsLastWriteWins) {
  MetricsRegistry registry;
  Gauge depth = registry.gauge("queue_depth", "test gauge");
  depth.set(3.0);
  depth.set(7.5);
  const RegistrySnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.find("queue_depth")->value, 7.5);
}

TEST(MetricsRegistry, HistogramBucketEdgesAreInclusiveUpper) {
  MetricsRegistry registry;
  Histogram h = registry.histogram("h", {1.0, 2.0, 4.0});

  // Exactly on a bound lands in that bound's bucket (le semantics);
  // above the last bound lands in the overflow bucket.
  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(1.0);   // bucket 0
  h.observe(1.001); // bucket 1 (<= 2)
  h.observe(2.0);   // bucket 1
  h.observe(4.0);   // bucket 2 (<= 4)
  h.observe(4.5);   // overflow
  h.observe(100.0); // overflow

  const RegistrySnapshot snap = registry.snapshot();
  const MetricSnapshot* m = snap.find("h");
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(m->buckets.size(), 4u);
  EXPECT_EQ(m->buckets[0], 2u);
  EXPECT_EQ(m->buckets[1], 2u);
  EXPECT_EQ(m->buckets[2], 1u);
  EXPECT_EQ(m->buckets[3], 2u);
  EXPECT_EQ(m->count, 7u);
  EXPECT_DOUBLE_EQ(m->sum, 0.5 + 1.0 + 1.001 + 2.0 + 4.0 + 4.5 + 100.0);
  EXPECT_EQ(m->max, 100.0);  // exact, not a bucket bound
}

TEST(MetricsRegistry, HistogramMergesShards) {
  MetricsRegistry registry({.shards = 4});
  Histogram h = registry.histogram("lat", {1.0, 10.0, 100.0});

  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([h, t] {
      for (int i = 0; i < 1000; ++i) h.observe(static_cast<double>(t));
    });
  }
  for (std::thread& w : workers) w.join();

  const RegistrySnapshot snap = registry.snapshot();
  const MetricSnapshot* m = snap.find("lat");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 8000u);
  EXPECT_EQ(m->max, 7.0);
  double sum = 0.0;
  for (int t = 0; t < kThreads; ++t) sum += 1000.0 * t;
  EXPECT_DOUBLE_EQ(m->sum, sum);
  std::uint64_t total = 0;
  for (std::uint64_t b : m->buckets) total += b;
  EXPECT_EQ(total, 8000u);
}

TEST(MetricsRegistry, HistogramHandlesNegativeObservations) {
  MetricsRegistry registry;
  Histogram h = registry.histogram("signed", {0.0, 10.0});
  h.observe(-5.0);
  h.observe(-1.0);
  const RegistrySnapshot snap = registry.snapshot();
  const MetricSnapshot* m = snap.find("signed");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 2u);
  EXPECT_EQ(m->max, -1.0);  // -inf init, not 0
  EXPECT_EQ(m->buckets[0], 2u);
}

TEST(MetricsRegistry, ApproxQuantileUsesBucketUpperBoundCappedAtMax) {
  MetricsRegistry registry;
  Histogram h = registry.histogram("q", {1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 99; ++i) h.observe(0.5);
  h.observe(3.0);

  const RegistrySnapshot snap = registry.snapshot();
  const MetricSnapshot* m = snap.find("q");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->approx_quantile(0.5), 1.0);   // bucket 0 upper bound
  EXPECT_EQ(m->approx_quantile(1.0), 3.0);   // bucket bound 4 capped at max
  EXPECT_EQ(m->mean(), (99 * 0.5 + 3.0) / 100.0);
}

TEST(MetricsRegistry, ReRegistrationReturnsSameMetric) {
  MetricsRegistry registry;
  Counter a = registry.counter("dup_total");
  Counter b = registry.counter("dup_total");
  a.inc();
  b.inc(2);
  EXPECT_EQ(registry.snapshot().find("dup_total")->value, 3.0);
  // Kind mismatch on an existing name is an error.
  EXPECT_THROW(registry.gauge("dup_total"), Error);
  // Histogram bound mismatch too.
  registry.histogram("hist", {1.0, 2.0});
  EXPECT_THROW(registry.histogram("hist", {1.0, 3.0}), Error);
}

TEST(MetricsRegistry, ArenaExhaustionThrows) {
  MetricsRegistry registry({.shards = 1, .cells_per_shard = 3});
  registry.counter("a");
  registry.counter("b");
  registry.counter("c");
  EXPECT_THROW(registry.counter("d"), Error);
}

TEST(PrometheusExport, RendersCountersGaugesAndCumulativeBuckets) {
  MetricsRegistry registry;
  registry.counter("requests_total", "requests seen").inc(5);
  registry.gauge("depth", "queue depth").set(2.0);
  Histogram h = registry.histogram("lat_ms", {1.0, 10.0}, "latency");
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);

  const std::string text = prometheus_text(registry);
  EXPECT_NE(text.find("# HELP requests_total requests seen\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE requests_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("requests_total 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("depth 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_ms histogram\n"), std::string::npos);
  // Buckets are cumulative and end with +Inf == count.
  EXPECT_NE(text.find("lat_ms_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"10\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_sum 55.5\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_count 3\n"), std::string::npos);
}

TEST(JsonlExport, OneObjectPerMetric) {
  MetricsRegistry registry;
  registry.counter("n_total").inc(2);
  Histogram h = registry.histogram("sizes", {1.0, 2.0});
  h.observe(1.5);

  const std::string jsonl = metrics_jsonl(registry);
  // Two metrics -> two lines.
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
  EXPECT_NE(jsonl.find(R"("name":"n_total")"), std::string::npos);
  EXPECT_NE(jsonl.find(R"("kind":"counter")"), std::string::npos);
  EXPECT_NE(jsonl.find(R"("value":2)"), std::string::npos);
  EXPECT_NE(jsonl.find(R"("name":"sizes")"), std::string::npos);
  EXPECT_NE(jsonl.find(R"("buckets":[0,1,0])"), std::string::npos);
  EXPECT_NE(jsonl.find(R"("bounds":[1,2])"), std::string::npos);
}

}  // namespace
}  // namespace netmon::obs
