#include "core/controller.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "util/error.hpp"

namespace netmon::core {
namespace {

TEST(Controller, FirstCycleAlwaysConfigures) {
  const GeantScenario s = make_geant_scenario();
  MonitorController controller(s.net.graph, s.task);
  const CycleResult result = controller.run_cycle(s.loads);
  EXPECT_TRUE(result.reconfigured);
  EXPECT_EQ(result.cycle, 1);
  EXPECT_EQ(controller.reconfigurations(), 1);
  EXPECT_FALSE(controller.current_rates().empty());
  EXPECT_EQ(result.solution.status, opt::SolveStatus::kOptimal);
}

TEST(Controller, SteadyStateDoesNotChurn) {
  const GeantScenario s = make_geant_scenario();
  MonitorController controller(s.net.graph, s.task);
  controller.run_cycle(s.loads);
  // Identical network state: hysteresis keeps the running config.
  for (int i = 0; i < 3; ++i) {
    const CycleResult result = controller.run_cycle(s.loads);
    EXPECT_FALSE(result.reconfigured) << "cycle " << result.cycle;
    EXPECT_LT(result.utility_gain, 1e-3);
  }
  EXPECT_EQ(controller.reconfigurations(), 1);
  EXPECT_EQ(controller.cycles(), 4);
}

TEST(Controller, SmallLoadNoiseIsIgnored) {
  const GeantScenario s = make_geant_scenario();
  MonitorController controller(s.net.graph, s.task);
  controller.run_cycle(s.loads);
  traffic::LinkLoads noisy = s.loads;
  for (double& load : noisy) load *= 1.001;  // 0.1% measurement noise
  const CycleResult result = controller.run_cycle(noisy);
  EXPECT_FALSE(result.reconfigured);
}

TEST(Controller, TopologyChangeForcesReconfiguration) {
  const GeantScenario s = make_geant_scenario();
  MonitorController controller(s.net.graph, s.task);
  controller.run_cycle(s.loads);

  const auto uk_nl = *s.net.graph.find_link("UK", "NL");
  ScenarioOptions failed_options;
  failed_options.failed.insert(uk_nl);
  const GeantScenario failed = make_geant_scenario(failed_options);
  const CycleResult result =
      controller.run_cycle(failed.loads, routing::LinkSet{uk_nl});
  EXPECT_TRUE(result.reconfigured);
  EXPECT_DOUBLE_EQ(result.solution.rates[uk_nl], 0.0);
  // Recovery is also a topology change.
  const CycleResult recovered = controller.run_cycle(s.loads);
  EXPECT_TRUE(recovered.reconfigured);
  EXPECT_EQ(controller.reconfigurations(), 3);
}

TEST(Controller, LargeTrafficShiftTriggersReconfiguration) {
  const GeantScenario s = make_geant_scenario();
  MonitorController controller(s.net.graph, s.task);
  controller.run_cycle(s.loads);

  // The background doubles: the old rates now sample roughly twice the
  // agreed budget — the resource contract is broken even though the
  // over-spend buys utility, and the controller must reconfigure.
  ScenarioOptions heavy;
  heavy.background_pkt_per_sec = 2.8e6;
  const GeantScenario shifted = make_geant_scenario(heavy);
  const CycleResult result = controller.run_cycle(shifted.loads);
  EXPECT_TRUE(result.budget_violated);
  EXPECT_TRUE(result.reconfigured);
  EXPECT_NEAR(result.solution.budget_used / 100000.0, 1.0, 1e-6);
}

TEST(Controller, TaskUpdateApplies) {
  const GeantScenario s = make_geant_scenario();
  MonitorController controller(s.net.graph, s.task);
  controller.run_cycle(s.loads);

  MeasurementTask smaller = s.task;
  smaller.ods.resize(5);
  smaller.expected_packets.resize(5);
  controller.update_task(smaller);
  const CycleResult result = controller.run_cycle(s.loads);
  EXPECT_EQ(result.solution.per_od.size(), 5u);

  MeasurementTask empty;
  EXPECT_THROW(controller.update_task(empty), Error);
}

TEST(Controller, HysteresisIsConfigurable) {
  const GeantScenario s = make_geant_scenario();
  ControllerOptions options;
  options.min_utility_gain = 0.0;  // reconfigure on any gain
  MonitorController controller(s.net.graph, s.task, options);
  controller.run_cycle(s.loads);
  const CycleResult result = controller.run_cycle(s.loads);
  // Even with zero threshold, re-solving an identical problem from the
  // optimum gives (numerically) zero gain, so either outcome must keep
  // the same utility.
  EXPECT_NEAR(result.utility_gain, 0.0, 1e-6);
}

}  // namespace
}  // namespace netmon::core
