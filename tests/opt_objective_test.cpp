#include "opt/objective.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/utility.hpp"
#include "helpers.hpp"
#include "util/error.hpp"

namespace netmon::opt {
namespace {

std::shared_ptr<const Concave1d> log_u(double eps) {
  return std::make_shared<core::LogUtility>(eps);
}

SeparableConcaveObjective small_objective() {
  // f(p) = M0(p0 + p2) + M1(0.5 p1 + p2)
  SeparableConcaveObjective::SparseRows rows{
      {{0, 1.0}, {2, 1.0}},
      {{1, 0.5}, {2, 1.0}},
  };
  return SeparableConcaveObjective(3, std::move(rows),
                                   {log_u(0.1), log_u(0.2)});
}

TEST(SeparableObjective, ValueMatchesManualComputation) {
  const auto f = small_objective();
  const std::vector<double> p{0.1, 0.2, 0.3};
  const double expected =
      std::log1p((0.1 + 0.3) / 0.1) + std::log1p((0.1 + 0.3) / 0.2);
  EXPECT_NEAR(f.value(p), expected, 1e-12);
  const auto x = f.inner(p);
  EXPECT_NEAR(x[0], 0.4, 1e-15);
  EXPECT_NEAR(x[1], 0.4, 1e-15);
}

TEST(SeparableObjective, GradientMatchesFiniteDifference) {
  const auto f = small_objective();
  const std::vector<double> p{0.1, 0.2, 0.3};
  std::vector<double> g(3);
  f.gradient(p, g);
  const auto numeric = test::numeric_gradient(f, p);
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_NEAR(g[j], numeric[j], 1e-6) << "coordinate " << j;
}

TEST(SeparableObjective, DirectionalSecondMatchesFiniteDifference) {
  const auto f = small_objective();
  const std::vector<double> p{0.1, 0.2, 0.3};
  const std::vector<double> s{1.0, -0.5, 0.25};
  const double exact = f.directional_second(p, s);
  EXPECT_NEAR(test::numeric_directional_second(f, p, s) / exact, 1.0, 1e-3);
}

TEST(SeparableObjective, ConcaveAlongAnyLine) {
  const auto f = small_objective();
  const std::vector<double> p{0.1, 0.2, 0.3};
  for (const auto& s :
       {std::vector<double>{1, 0, 0}, {0, 1, 0}, {1, 1, 1}, {0.3, -0.1, 0.7}}) {
    EXPECT_LE(f.directional_second(p, s), 0.0);
  }
}

TEST(SeparableObjective, SreUtilityGradient) {
  SeparableConcaveObjective::SparseRows rows{{{0, 1.0}, {1, 1.0}}};
  SeparableConcaveObjective f(
      2, std::move(rows), {std::make_shared<core::SreUtility>(1e-4)});
  const std::vector<double> p{2e-4, 5e-4};
  std::vector<double> g(2);
  f.gradient(p, g);
  const auto numeric = test::numeric_gradient(f, p, 1e-8);
  for (std::size_t j = 0; j < 2; ++j)
    EXPECT_NEAR(g[j] / numeric[j], 1.0, 1e-3);
}

TEST(SeparableObjective, OffsetsShiftTheInnerProducts) {
  SeparableConcaveObjective::SparseRows rows{{{0, 1.0}}, {{1, 2.0}}};
  const SeparableConcaveObjective f(2, std::move(rows),
                                    {log_u(0.1), log_u(0.1)},
                                    {0.05, -0.01});
  const std::vector<double> p{0.1, 0.2};
  const auto x = f.inner(p);
  EXPECT_NEAR(x[0], 0.15, 1e-15);
  EXPECT_NEAR(x[1], 0.39, 1e-15);
  // Value/gradient consistent with the shifted arguments.
  const double expected =
      std::log1p(0.15 / 0.1) + std::log1p(0.39 / 0.1);
  EXPECT_NEAR(f.value(p), expected, 1e-12);
  std::vector<double> g(2);
  f.gradient(p, g);
  const auto numeric = test::numeric_gradient(f, p);
  for (std::size_t j = 0; j < 2; ++j) EXPECT_NEAR(g[j], numeric[j], 1e-6);
}

TEST(SeparableObjective, OffsetsValidated) {
  SeparableConcaveObjective::SparseRows rows{{{0, 1.0}}};
  EXPECT_THROW(SeparableConcaveObjective(1, rows, {log_u(0.1)},
                                         {0.1, 0.2}),
               Error);
}

TEST(SeparableObjective, ValidatesConstruction) {
  SeparableConcaveObjective::SparseRows bad_col{{{5, 1.0}}};
  EXPECT_THROW(
      SeparableConcaveObjective(3, bad_col, {log_u(0.1)}),
      Error);
  SeparableConcaveObjective::SparseRows neg{{{0, -1.0}}};
  EXPECT_THROW(SeparableConcaveObjective(3, neg, {log_u(0.1)}), Error);
  SeparableConcaveObjective::SparseRows ok{{{0, 1.0}}};
  EXPECT_THROW(SeparableConcaveObjective(3, ok, {}), Error);
  EXPECT_THROW(SeparableConcaveObjective(3, ok, {nullptr}), Error);
}

TEST(SeparableObjective, ValidatesEvaluation) {
  const auto f = small_objective();
  const std::vector<double> wrong{0.1, 0.2};
  EXPECT_THROW(f.value(wrong), Error);
  std::vector<double> g(2);
  const std::vector<double> p{0.1, 0.2, 0.3};
  EXPECT_THROW(f.gradient(p, g), Error);
}

}  // namespace
}  // namespace netmon::opt
