#include "opt/kkt.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace netmon::opt {
namespace {

TEST(Kkt, LambdaLeastSquaresOnFreeSet) {
  // g = lambda*u exactly on the free coordinates -> satisfied.
  const std::vector<double> g{2.0, 4.0, 100.0};
  const std::vector<double> u{1.0, 2.0, 1.0};
  const std::vector<BoundState> bounds{BoundState::kFree, BoundState::kFree,
                                       BoundState::kAtUpper};
  const KktReport r = compute_kkt(g, u, bounds, 1e-9);
  EXPECT_NEAR(r.lambda, 2.0, 1e-12);
  EXPECT_TRUE(r.satisfied);
  // Upper multiplier mu = g - lambda*u = 98 > 0.
  EXPECT_NEAR(r.mu[2], 98.0, 1e-12);
}

TEST(Kkt, NegativeLowerMultiplierDetected) {
  // At a lower bound with g_j > lambda*u_j the constraint should be
  // released: raising p_j would improve the objective.
  const std::vector<double> g{2.0, 50.0};
  const std::vector<double> u{1.0, 1.0};
  const std::vector<BoundState> bounds{BoundState::kFree,
                                       BoundState::kAtLower};
  const KktReport r = compute_kkt(g, u, bounds, 1e-9);
  EXPECT_NEAR(r.lambda, 2.0, 1e-12);
  EXPECT_FALSE(r.satisfied);
  ASSERT_EQ(r.violating.size(), 1u);
  EXPECT_EQ(r.violating[0], 1u);
  EXPECT_NEAR(r.nu[1], -48.0, 1e-12);
  EXPECT_NEAR(r.worst, -48.0, 1e-12);
}

TEST(Kkt, SatisfiedLowerMultiplier) {
  const std::vector<double> g{2.0, 0.5};
  const std::vector<double> u{1.0, 1.0};
  const std::vector<BoundState> bounds{BoundState::kFree,
                                       BoundState::kAtLower};
  const KktReport r = compute_kkt(g, u, bounds, 1e-9);
  EXPECT_TRUE(r.satisfied);
  EXPECT_NEAR(r.nu[1], 1.5, 1e-12);
}

TEST(Kkt, NegativeUpperMultiplierDetected) {
  // At an upper bound with g_j < lambda*u_j the monitor over-spends.
  const std::vector<double> g{2.0, 0.1};
  const std::vector<double> u{1.0, 1.0};
  const std::vector<BoundState> bounds{BoundState::kFree,
                                       BoundState::kAtUpper};
  const KktReport r = compute_kkt(g, u, bounds, 1e-9);
  EXPECT_FALSE(r.satisfied);
  EXPECT_EQ(r.violating, (std::vector<std::size_t>{1}));
  EXPECT_NEAR(r.mu[1], -1.9, 1e-12);
}

TEST(Kkt, EmptyFreeSetFeasibleInterval) {
  // All coordinates at bounds; lambda interval [max_lo, min_hi] nonempty.
  // lower-active needs lambda >= g/u; upper-active needs lambda <= g/u.
  const std::vector<double> g{1.0, 5.0};
  const std::vector<double> u{1.0, 1.0};
  const std::vector<BoundState> bounds{BoundState::kAtLower,
                                       BoundState::kAtUpper};
  const KktReport r = compute_kkt(g, u, bounds, 1e-9);
  EXPECT_TRUE(r.satisfied);
  EXPECT_GE(r.lambda, 1.0 - 1e-9);
  EXPECT_LE(r.lambda, 5.0 + 1e-9);
}

TEST(Kkt, EmptyFreeSetInfeasibleInterval) {
  // lower-active wants lambda >= 5, upper-active wants lambda <= 1:
  // impossible -> violations on the extremes.
  const std::vector<double> g{5.0, 1.0};
  const std::vector<double> u{1.0, 1.0};
  const std::vector<BoundState> bounds{BoundState::kAtLower,
                                       BoundState::kAtUpper};
  const KktReport r = compute_kkt(g, u, bounds, 1e-9);
  EXPECT_FALSE(r.satisfied);
  EXPECT_EQ(r.violating.size(), 2u);
}

TEST(Kkt, AllAtUpperIsOptimalWhenBudgetForces) {
  const std::vector<double> g{3.0, 6.0};
  const std::vector<double> u{1.0, 2.0};
  const std::vector<BoundState> bounds{BoundState::kAtUpper,
                                       BoundState::kAtUpper};
  const KktReport r = compute_kkt(g, u, bounds, 1e-9);
  EXPECT_TRUE(r.satisfied);
}

TEST(Kkt, ValidatesDimensions) {
  EXPECT_THROW(compute_kkt(std::vector<double>{1.0}, std::vector<double>{},
                           {BoundState::kFree}, 1e-9),
               Error);
}

}  // namespace
}  // namespace netmon::opt
