#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/scenario.hpp"
#include "core/strategies.hpp"

namespace netmon::core {
namespace {

class SensitivityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario = new GeantScenario(make_geant_scenario());
    problem = new PlacementProblem(make_problem(*scenario));
    solution = new PlacementSolution(solve_placement(*problem));
    values = new std::vector<MonitorValue>(
        monitor_values(*problem, *solution));
  }
  static void TearDownTestSuite() {
    delete values;
    delete solution;
    delete problem;
    delete scenario;
  }
  static GeantScenario* scenario;
  static PlacementProblem* problem;
  static PlacementSolution* solution;
  static std::vector<MonitorValue>* values;
};

GeantScenario* SensitivityTest::scenario = nullptr;
PlacementProblem* SensitivityTest::problem = nullptr;
PlacementSolution* SensitivityTest::solution = nullptr;
std::vector<MonitorValue>* SensitivityTest::values = nullptr;

TEST_F(SensitivityTest, CoversEveryCandidate) {
  EXPECT_EQ(values->size(), problem->candidates().size());
  // Sorted by ratio, descending.
  for (std::size_t i = 1; i < values->size(); ++i)
    EXPECT_GE((*values)[i - 1].value_ratio, (*values)[i].value_ratio);
}

TEST_F(SensitivityTest, ActiveInteriorLinksPayExactlyForThemselves) {
  for (const MonitorValue& v : *values) {
    if (v.active) {
      EXPECT_NEAR(v.value_ratio, 1.0, 1e-4)
          << scenario->net.graph.link_name(v.link);
    }
  }
}

TEST_F(SensitivityTest, InactiveLinksAreCorrectlyPricedOut) {
  // At a certified optimum no inactive link may be worth more than its
  // cost (that would contradict the KKT certificate).
  std::size_t inactive = 0;
  for (const MonitorValue& v : *values) {
    if (!v.active) {
      ++inactive;
      EXPECT_LE(v.value_ratio, 1.0 + 1e-6)
          << scenario->net.graph.link_name(v.link);
    }
  }
  EXPECT_EQ(inactive, problem->candidates().size() -
                          solution->active_monitors.size());
}

TEST_F(SensitivityTest, NextMonitorIsTheBestPricedInactiveLink) {
  const topo::LinkId next = next_monitor_to_activate(*values);
  ASSERT_NE(next, topo::kInvalidId);
  // It must not be one of the active monitors.
  EXPECT_EQ(std::find(solution->active_monitors.begin(),
                      solution->active_monitors.end(), next),
            solution->active_monitors.end());
  // And it is indeed the highest-ratio inactive candidate.
  double best = -1.0;
  topo::LinkId expected = topo::kInvalidId;
  for (const MonitorValue& v : *values) {
    if (!v.active && v.value_ratio > best) {
      best = v.value_ratio;
      expected = v.link;
    }
  }
  EXPECT_EQ(next, expected);
}

TEST_F(SensitivityTest, SuboptimalPlacementShowsMispricedLinks) {
  // Under the uniform strategy some link must look under- or over-priced
  // (ratio far from 1) — that is exactly the optimizer's opportunity.
  const PlacementSolution uniform =
      evaluate_rates(*problem, uniform_rates(*problem));
  const auto uniform_values = monitor_values(*problem, uniform);
  double worst_gap = 0.0;
  for (const MonitorValue& v : uniform_values)
    worst_gap = std::max(worst_gap, std::abs(v.value_ratio - 1.0));
  EXPECT_GT(worst_gap, 0.5);
}

}  // namespace
}  // namespace netmon::core
