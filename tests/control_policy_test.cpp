#include "control/policy.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace netmon::control {
namespace {

PolicyInput steady_input() {
  PolicyInput input;
  input.bins_since_resolve = 1;
  input.have_incumbent = true;
  input.topology_changed = false;
  input.innovation_rms = 0.5;
  input.budget_used = 100000.0;
  input.theta = 100000.0;
  return input;
}

TEST(Policy, FirstBinAlwaysResolves) {
  const ReoptimizePolicy policy;
  PolicyInput input = steady_input();
  input.have_incumbent = false;
  EXPECT_EQ(policy.decide(input), ResolveReason::kFirstBin);
}

TEST(Policy, SteadyStateDoesNotResolve) {
  const ReoptimizePolicy policy;
  EXPECT_EQ(policy.decide(steady_input()), ResolveReason::kNone);
}

TEST(Policy, TopologyBeatsEverything) {
  const ReoptimizePolicy policy;
  PolicyInput input = steady_input();
  input.topology_changed = true;
  input.innovation_rms = 100.0;  // would also trigger; topology wins
  EXPECT_EQ(policy.decide(input), ResolveReason::kTopology);
}

TEST(Policy, BudgetViolationTriggers) {
  const ReoptimizePolicy policy;
  PolicyInput input = steady_input();
  input.budget_used = 110000.0;  // 10% over on a 2% tolerance
  EXPECT_EQ(policy.decide(input), ResolveReason::kBudget);
  input.budget_used = 90000.0;  // under-spend breaks the contract too
  EXPECT_EQ(policy.decide(input), ResolveReason::kBudget);
  input.budget_used = 101000.0;  // within tolerance
  EXPECT_EQ(policy.decide(input), ResolveReason::kNone);
}

TEST(Policy, InnovationNormTriggers) {
  const ReoptimizePolicy policy;
  PolicyInput input = steady_input();
  input.innovation_rms = 2.0;  // exactly at the threshold triggers
  EXPECT_EQ(policy.decide(input), ResolveReason::kInnovation);
  input.innovation_rms = 1.99;
  EXPECT_EQ(policy.decide(input), ResolveReason::kNone);
}

TEST(Policy, StalenessBoundsTheGapBetweenResolves) {
  const ReoptimizePolicy policy;
  PolicyInput input = steady_input();
  input.bins_since_resolve = 11;
  EXPECT_EQ(policy.decide(input), ResolveReason::kNone);
  input.bins_since_resolve = 12;
  EXPECT_EQ(policy.decide(input), ResolveReason::kElapsed);
}

TEST(Policy, DampingHoldsSignalTriggersButNotContractOnes) {
  PolicyConfig config;
  config.min_bins_between = 4;
  const ReoptimizePolicy policy(config);
  PolicyInput input = steady_input();
  input.bins_since_resolve = 2;
  input.innovation_rms = 50.0;
  // Inside the damping window the innovation trigger is held...
  EXPECT_EQ(policy.decide(input), ResolveReason::kNone);
  // ...but a topology change or budget violation never is.
  input.topology_changed = true;
  EXPECT_EQ(policy.decide(input), ResolveReason::kTopology);
  input.topology_changed = false;
  input.budget_used = 200000.0;
  EXPECT_EQ(policy.decide(input), ResolveReason::kBudget);
  // Outside the window the held trigger fires.
  input.budget_used = 100000.0;
  input.bins_since_resolve = 4;
  EXPECT_EQ(policy.decide(input), ResolveReason::kInnovation);
}

TEST(Policy, RejectsMalformedConfig) {
  PolicyConfig bad;
  bad.max_bins_between = 0;
  EXPECT_THROW(ReoptimizePolicy{bad}, Error);
  bad = PolicyConfig{};
  bad.min_bins_between = bad.max_bins_between;
  EXPECT_THROW(ReoptimizePolicy{bad}, Error);
}

TEST(Policy, ReasonNamesAreStable) {
  EXPECT_STREQ(to_string(ResolveReason::kNone), "none");
  EXPECT_STREQ(to_string(ResolveReason::kFirstBin), "first_bin");
  EXPECT_STREQ(to_string(ResolveReason::kTopology), "topology");
  EXPECT_STREQ(to_string(ResolveReason::kBudget), "budget");
  EXPECT_STREQ(to_string(ResolveReason::kInnovation), "innovation");
  EXPECT_STREQ(to_string(ResolveReason::kElapsed), "elapsed");
}

}  // namespace
}  // namespace netmon::control
