// Pre-sized construction paths (the scale satellite): topo::Graph
// building under reserve(), CsrBuilder under reserve(), and the arena
// routing-matrix build whose allocation count is flat in the OD count.
// Same counting-allocator idiom as opt_zero_alloc_test.cpp.
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <vector>

#include "linalg/sparse.hpp"
#include "routing/routing_matrix.hpp"
#include "topo/graph.hpp"
#include "topo/hierarchical.hpp"

namespace {
std::size_t g_alloc_count = 0;

void* counted_alloc(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_alloc_count;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_alloc_count;
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace netmon {
namespace {

template <typename Fn>
std::size_t allocations_in(Fn&& fn) {
  const std::size_t before = g_alloc_count;
  fn();
  return g_alloc_count - before;
}

TEST(Presize, GraphLinkAddsAllocateNothingAfterReserve) {
  // A ring: every node has out-degree 1 and in-degree 1.
  constexpr std::size_t kNodes = 64;
  topo::Graph graph;
  graph.reserve(kNodes, kNodes, 1);
  std::vector<topo::NodeId> ids;
  ids.reserve(kNodes);
  // Node names allocate (heap strings into the name map), links must not.
  for (std::size_t v = 0; v < kNodes; ++v)
    ids.push_back(graph.add_node("n" + std::to_string(v)));
  const std::size_t allocs = allocations_in([&] {
    for (std::size_t v = 0; v < kNodes; ++v)
      graph.add_link(ids[v], ids[(v + 1) % kNodes], 1e9, 1.0);
  });
  EXPECT_EQ(allocs, 0u) << "add_link reallocated despite reserve()";
}

TEST(Presize, CsrBuilderPushesAllocateNothingAfterReserve) {
  constexpr std::size_t kRows = 128;
  constexpr std::size_t kNnzPerRow = 8;
  linalg::CsrBuilder builder(1024);
  builder.reserve(kRows, kRows * kNnzPerRow);
  const std::size_t allocs = allocations_in([&] {
    for (std::size_t r = 0; r < kRows; ++r) {
      for (std::size_t i = 0; i < kNnzPerRow; ++i)
        builder.push(r + i, 1.0);
      builder.finish_row();
    }
  });
  EXPECT_EQ(allocs, 0u) << "CsrBuilder reallocated despite reserve()";
}

TEST(Presize, HierarchicalGeneratorStaysWithinLinearAllocationBudget) {
  // The generator pre-reserves everything from the closed-form counts;
  // what remains is node-name map inserts (one per node) plus a constant
  // number of adjacency-list growths past the degree hint. Assert the
  // total stays within a small multiple of the node count — quadratic or
  // per-link reallocation would blow far past this.
  const topo::HierarchyOptions o{.cores = 4, .aggs_per_core = 4,
                                 .edges_per_agg = 30};
  const std::size_t nodes = topo::hierarchy_node_count(o);
  const std::size_t allocs =
      allocations_in([&] { (void)topo::make_hierarchical(o); });
  EXPECT_LE(allocs, 6 * nodes + 256)
      << "generator allocation count is not linear-with-small-constant";
}

TEST(Presize, RoutingMatrixAllocationCountIsFlatInTheOdCount) {
  // The arena build allocates per distinct SOURCE (one Dijkstra reuse
  // buffer) and O(log) arena growths — NOT per OD. Compare the same
  // 4-source instance at 40 vs 400 ODs: the small instance's count must
  // not scale with the ~10x OD growth (allow the arena's extra
  // power-of-two doublings).
  const topo::HierarchicalNetwork net = topo::make_hierarchical(
      {.cores = 2, .aggs_per_core = 2, .edges_per_agg = 8});
  auto make_ods = [&](std::size_t count) {
    std::vector<routing::OdPair> ods;
    ods.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      ods.push_back({net.edges[i % 4],
                     net.edges[4 + (i % (net.edges.size() - 4))]});
    return ods;
  };

  auto ods_small = make_ods(40);
  auto ods_large = make_ods(400);
  // Warm once so lazy one-time setup does not skew the comparison.
  (void)routing::RoutingMatrix::single_path(net.graph, make_ods(40));
  const std::size_t small = allocations_in([&] {
    (void)routing::RoutingMatrix::single_path(net.graph,
                                              std::move(ods_small));
  });
  const std::size_t large = allocations_in([&] {
    (void)routing::RoutingMatrix::single_path(net.graph,
                                              std::move(ods_large));
  });
  // Pair-list construction allocated one row vector per OD, so 400 ODs
  // cost >= 360 more allocations than 40. The arena build's delta is a
  // handful of geometric growths.
  EXPECT_LE(large, small + 40)
      << "single_path allocation count scales with the OD count";
}

}  // namespace
}  // namespace netmon
