#include "linalg/sparse.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "linalg/workspace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace netmon::linalg {
namespace {

using PairRows = std::vector<std::vector<std::pair<std::uint32_t, double>>>;

// Random sparse matrix with sorted, duplicate-free columns per row, a
// configurable chance of entirely empty rows, and fractional ECMP-style
// entries. Deterministic via netmon::Rng.
PairRows random_rows(netmon::Rng& rng, std::size_t n_rows, std::size_t n_cols,
                     double empty_prob) {
  PairRows rows(n_rows);
  for (auto& row : rows) {
    if (rng.uniform() < empty_prob) continue;
    for (std::uint32_t c = 0; c < n_cols; ++c) {
      if (rng.uniform() < 0.3)
        row.emplace_back(c, rng.uniform());  // fractional in (0,1)
    }
  }
  return rows;
}

std::vector<std::vector<double>> dense_of(const PairRows& rows,
                                          std::size_t n_cols) {
  std::vector<std::vector<double>> dense(
      rows.size(), std::vector<double>(n_cols, 0.0));
  for (std::size_t r = 0; r < rows.size(); ++r)
    for (const auto& [c, v] : rows[r]) dense[r][c] += v;
  return dense;
}

TEST(SparseCsr, FromRowsRoundTrip) {
  const PairRows rows{{{1, 0.5}, {3, 1.0}}, {}, {{0, 2.0}}};
  const SparseCsr m = SparseCsr::from_rows(4, rows);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.row(0).size(), 2u);
  EXPECT_TRUE(m.row(1).empty());
  EXPECT_EQ(m.row(2).size(), 1u);
  const auto [c0, v0] = m.row(0)[0];
  EXPECT_EQ(c0, 1u);
  EXPECT_DOUBLE_EQ(v0, 0.5);
  // Structured-binding iteration works like the old pair rows.
  std::size_t seen = 0;
  for (const auto& [col, value] : m.row(0)) {
    EXPECT_EQ(col, rows[0][seen].first);
    EXPECT_DOUBLE_EQ(value, rows[0][seen].second);
    ++seen;
  }
  EXPECT_EQ(seen, 2u);
}

TEST(SparseCsr, SpmvMatchesDenseOnRandomMatrices) {
  netmon::Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n_rows = 1 + static_cast<std::size_t>(rng.uniform() * 12);
    const std::size_t n_cols = 1 + static_cast<std::size_t>(rng.uniform() * 9);
    const PairRows rows = random_rows(rng, n_rows, n_cols, 0.25);
    const SparseCsr m = SparseCsr::from_rows(n_cols, rows);
    const auto dense = dense_of(rows, n_cols);

    std::vector<double> x(n_cols);
    for (double& v : x) v = rng.uniform() * 2.0 - 1.0;

    std::vector<double> y(n_rows, -7.0);
    spmv(m, x, y);
    for (std::size_t r = 0; r < n_rows; ++r) {
      double expect = 0.0;
      for (std::size_t c = 0; c < n_cols; ++c) expect += dense[r][c] * x[c];
      EXPECT_NEAR(y[r], expect, 1e-12) << "trial " << trial << " row " << r;
    }
  }
}

TEST(SparseCsr, SpmvTransposedMatchesDense) {
  netmon::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n_rows = 1 + static_cast<std::size_t>(rng.uniform() * 12);
    const std::size_t n_cols = 1 + static_cast<std::size_t>(rng.uniform() * 9);
    const PairRows rows = random_rows(rng, n_rows, n_cols, 0.25);
    const SparseCsr m = SparseCsr::from_rows(n_cols, rows);
    const auto dense = dense_of(rows, n_cols);

    std::vector<double> x(n_rows);
    for (double& v : x) v = rng.uniform() * 2.0 - 1.0;

    std::vector<double> y(n_cols, 99.0);  // spmv_t must zero the output
    spmv_t(m, x, y);
    for (std::size_t c = 0; c < n_cols; ++c) {
      double expect = 0.0;
      for (std::size_t r = 0; r < n_rows; ++r) expect += dense[r][c] * x[r];
      EXPECT_NEAR(y[c], expect, 1e-12) << "trial " << trial << " col " << c;
    }
  }
}

TEST(SparseCsr, RowDotMatchesSpmv) {
  netmon::Rng rng(3);
  const PairRows rows = random_rows(rng, 10, 6, 0.3);
  const SparseCsr m = SparseCsr::from_rows(6, rows);
  std::vector<double> x(6);
  for (double& v : x) v = rng.uniform();
  std::vector<double> y(10);
  spmv(m, x, y);
  for (std::size_t r = 0; r < 10; ++r)
    EXPECT_DOUBLE_EQ(row_dot(m, r, x), y[r]);  // same accumulation order
}

TEST(SparseCsr, TransposeIsInvolutiveAndSorted) {
  netmon::Rng rng(11);
  const PairRows rows = random_rows(rng, 8, 5, 0.2);
  const SparseCsr m = SparseCsr::from_rows(5, rows);
  const SparseCsr t = m.transpose();
  EXPECT_EQ(t.rows(), m.cols());
  EXPECT_EQ(t.cols(), m.rows());
  EXPECT_EQ(t.nnz(), m.nnz());
  // Transposed rows come out sorted by column.
  for (std::size_t r = 0; r < t.rows(); ++r) {
    const auto cols = t.row(r).cols();
    for (std::size_t i = 1; i < cols.size(); ++i)
      EXPECT_LT(cols[i - 1], cols[i]);
  }
  // Double transpose restores every entry (rows were built sorted).
  const SparseCsr tt = t.transpose();
  ASSERT_EQ(tt.rows(), m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    ASSERT_EQ(tt.row(r).size(), m.row(r).size());
    for (std::size_t i = 0; i < m.row(r).size(); ++i) {
      EXPECT_EQ(tt.row(r)[i].first, m.row(r)[i].first);
      EXPECT_DOUBLE_EQ(tt.row(r)[i].second, m.row(r)[i].second);
    }
  }
}

TEST(SparseCsr, BuilderValidatesColumnRange) {
  CsrBuilder builder(3);
  builder.push(2, 1.0);
  EXPECT_THROW(builder.push(3, 1.0), Error);
}

TEST(SparseCsr, KernelsValidateSizes) {
  const SparseCsr m = SparseCsr::from_rows(3, PairRows{{{0, 1.0}}, {}});
  std::vector<double> x(3), y_bad(1), y_ok(2);
  EXPECT_THROW(spmv(m, x, y_bad), Error);
  EXPECT_NO_THROW(spmv(m, x, y_ok));
  std::vector<double> xt(2), yt(3);
  EXPECT_NO_THROW(spmv_t(m, xt, yt));
  EXPECT_THROW(row_dot(m, 2, x), Error);
}

TEST(EvalWorkspace, SlotsGrowAndStayStable) {
  EvalWorkspace ws;
  const std::span<double> a1 = ws.rows_a(4);
  EXPECT_EQ(a1.size(), 4u);
  a1[3] = 42.0;
  // Same size: same backing memory, contents preserved.
  const std::span<double> a2 = ws.rows_a(4);
  EXPECT_EQ(a1.data(), a2.data());
  EXPECT_DOUBLE_EQ(a2[3], 42.0);
  // Smaller request keeps the grown buffer (no shrink).
  const std::span<double> a3 = ws.rows_a(2);
  EXPECT_EQ(a3.size(), 2u);
  EXPECT_EQ(a3.data(), a2.data());
  // Slots are distinct.
  EXPECT_NE(ws.rows_a(4).data(), ws.rows_b(4).data());
  EXPECT_NE(ws.cols_a(4).data(), ws.cols_b(4).data());
}

}  // namespace
}  // namespace netmon::linalg
