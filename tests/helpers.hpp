// Shared helpers for netmon tests.
#pragma once

#include <functional>
#include <vector>

#include "opt/objective.hpp"
#include "topo/graph.hpp"

namespace netmon::test {

/// A 4-node line topology A -> B -> C -> D (duplex links, weight 1,
/// capacity 1 Gb/s). Nodes get masses 4,3,2,1.
inline topo::Graph line_graph() {
  topo::Graph g;
  const auto a = g.add_node("A", 4.0);
  const auto b = g.add_node("B", 3.0);
  const auto c = g.add_node("C", 2.0);
  const auto d = g.add_node("D", 1.0);
  g.add_duplex(a, b, 1e9, 1.0);
  g.add_duplex(b, c, 1e9, 1.0);
  g.add_duplex(c, d, 1e9, 1.0);
  return g;
}

/// A diamond: S -> {X, Y} -> T with equal weights (two equal-cost paths).
inline topo::Graph diamond_graph() {
  topo::Graph g;
  const auto s = g.add_node("S");
  const auto x = g.add_node("X");
  const auto y = g.add_node("Y");
  const auto t = g.add_node("T");
  g.add_duplex(s, x, 1e9, 1.0);
  g.add_duplex(s, y, 1e9, 1.0);
  g.add_duplex(x, t, 1e9, 1.0);
  g.add_duplex(y, t, 1e9, 1.0);
  return g;
}

/// Central-difference numerical gradient of an objective.
inline std::vector<double> numeric_gradient(const opt::Objective& f,
                                            std::vector<double> p,
                                            double h = 1e-7) {
  std::vector<double> g(p.size());
  for (std::size_t j = 0; j < p.size(); ++j) {
    const double orig = p[j];
    p[j] = orig + h;
    const double up = f.value(p);
    p[j] = orig - h;
    const double down = f.value(p);
    p[j] = orig;
    g[j] = (up - down) / (2.0 * h);
  }
  return g;
}

/// Central-difference second derivative along a direction.
inline double numeric_directional_second(const opt::Objective& f,
                                         const std::vector<double>& p,
                                         const std::vector<double>& s,
                                         double h = 1e-4) {
  auto at = [&](double t) {
    std::vector<double> q(p.size());
    for (std::size_t j = 0; j < p.size(); ++j) q[j] = p[j] + t * s[j];
    return f.value(q);
  };
  return (at(h) - 2.0 * at(0.0) + at(-h)) / (h * h);
}

}  // namespace netmon::test
