// Cross-module invariant properties on randomized inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "netflow/collector.hpp"
#include "opt/constraints.hpp"
#include "traffic/flow_generator.hpp"
#include "util/rng.hpp"

namespace netmon {
namespace {

class InvariantSeed : public ::testing::TestWithParam<int> {};

TEST_P(InvariantSeed, EuclideanProjectionIsNonExpansive) {
  // Projection onto a convex set is 1-Lipschitz: |P(x)-P(y)| <= |x-y|.
  Rng rng(61000 + GetParam());
  const std::size_t n = 2 + rng.below(8);
  std::vector<double> u(n), alpha(n);
  double max_budget = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    u[j] = rng.uniform(1.0, 1e4);
    alpha[j] = rng.uniform(0.2, 1.0);
    max_budget += u[j] * alpha[j];
  }
  const opt::BoxBudgetConstraints c(u, alpha,
                                    max_budget * rng.uniform(0.05, 0.9));
  for (int round = 0; round < 50; ++round) {
    std::vector<double> x(n), y(n);
    for (std::size_t j = 0; j < n; ++j) {
      x[j] = rng.uniform(-1.0, 2.0);
      y[j] = rng.uniform(-1.0, 2.0);
    }
    const auto px = c.project(x);
    const auto py = c.project(y);
    double dxy = 0.0, dp = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      dxy += (x[j] - y[j]) * (x[j] - y[j]);
      dp += (px[j] - py[j]) * (px[j] - py[j]);
    }
    EXPECT_LE(std::sqrt(dp), std::sqrt(dxy) + 1e-7);
  }
}

TEST_P(InvariantSeed, GraphAdjacencyIndicesConsistent) {
  Rng rng(62000 + GetParam());
  topo::Graph g;
  const std::size_t nodes = 3 + rng.below(12);
  for (std::size_t i = 0; i < nodes; ++i)
    g.add_node("N" + std::to_string(i));
  const std::size_t links = 1 + rng.below(3 * nodes);
  for (std::size_t l = 0; l < links; ++l) {
    const auto a = static_cast<topo::NodeId>(rng.below(nodes));
    auto b = static_cast<topo::NodeId>(rng.below(nodes));
    if (a == b) b = (b + 1) % nodes;
    g.add_link(a, b, 1e9, 1.0 + rng.below(10));
  }
  // Every link appears exactly once in its endpoints' adjacency lists,
  // and nowhere else.
  std::size_t out_total = 0, in_total = 0;
  for (topo::NodeId v = 0; v < g.node_count(); ++v) {
    for (topo::LinkId id : g.out_links(v)) {
      EXPECT_EQ(g.link(id).src, v);
      ++out_total;
    }
    for (topo::LinkId id : g.in_links(v)) {
      EXPECT_EQ(g.link(id).dst, v);
      ++in_total;
    }
  }
  EXPECT_EQ(out_total, g.link_count());
  EXPECT_EQ(in_total, g.link_count());
}

TEST_P(InvariantSeed, CollectorConservesSampledCounts) {
  Rng rng(63000 + GetParam());
  const topo::Graph g = test::line_graph();
  const netflow::EgressMap map = netflow::EgressMap::for_pop_blocks(g);
  netflow::Collector collector(map);

  std::uint64_t pushed = 0;
  const int records = 200;
  for (int i = 0; i < records; ++i) {
    netflow::FlowRecord r;
    const auto src = static_cast<topo::NodeId>(rng.below(4));
    auto dst = static_cast<topo::NodeId>(rng.below(4));
    if (dst == src) dst = (dst + 1) % 4;
    r.key.src_ip = traffic::pop_prefix(src).base + 1 +
                   static_cast<net::Ipv4>(rng.below(100));
    r.key.dst_ip = traffic::pop_prefix(dst).base + 1 +
                   static_cast<net::Ipv4>(rng.below(100));
    r.sampled_packets = 1 + rng.below(50);
    r.start_sec = rng.uniform(0.0, 1200.0);
    pushed += r.sampled_packets;
    collector.receive(r, static_cast<topo::LinkId>(rng.below(6)), 0.01);
  }
  EXPECT_EQ(collector.unattributed_records(), 0u);

  std::uint64_t recovered = 0;
  for (std::int64_t bin : collector.bins()) {
    for (topo::NodeId s = 0; s < 4; ++s) {
      for (topo::NodeId d = 0; d < 4; ++d) {
        if (s != d) recovered += collector.sampled_packets(bin, {s, d});
      }
    }
  }
  EXPECT_EQ(recovered, pushed);
}

TEST_P(InvariantSeed, FlowPopulationsAreIndependentOfOtherDemands) {
  // Stream splitting: OD k's flows depend only on (seed, k), not on what
  // other demands exist — crucial for reproducible experiments.
  Rng a(64000 + GetParam()), b(64000 + GetParam());
  traffic::TrafficMatrix small{{{0, 1}, 100.0}, {{1, 2}, 50.0}};
  traffic::TrafficMatrix large = small;
  large.push_back({{2, 3}, 400.0});
  const auto flows_small = traffic::generate_all_flows(a, small);
  const auto flows_large = traffic::generate_all_flows(b, large);
  for (std::size_t k = 0; k < small.size(); ++k) {
    ASSERT_EQ(flows_small[k].size(), flows_large[k].size());
    for (std::size_t i = 0; i < flows_small[k].size(); ++i) {
      EXPECT_EQ(flows_small[k][i].packets, flows_large[k][i].packets);
      EXPECT_EQ(flows_small[k][i].key, flows_large[k][i].key);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, InvariantSeed, ::testing::Range(0, 8));

}  // namespace
}  // namespace netmon
