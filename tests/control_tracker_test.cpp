#include "control/tracker.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace netmon::control {
namespace {

core::MeasurementTask small_task(std::vector<double> packets,
                                 double interval = 300.0) {
  core::MeasurementTask task;
  for (std::size_t k = 0; k < packets.size(); ++k)
    task.ods.push_back({static_cast<topo::NodeId>(k),
                        static_cast<topo::NodeId>(k + 1)});
  task.expected_packets = std::move(packets);
  task.interval_sec = interval;
  return task;
}

TrackerStep feed(TrafficTracker& tracker, std::vector<double> z) {
  return tracker.observe(z);
}

TEST(Tracker, SeedsFromExpectedPackets) {
  const TrafficTracker tracker(small_task({3000.0, 30000.0}));
  EXPECT_EQ(tracker.od_count(), 2u);
  EXPECT_DOUBLE_EQ(tracker.rate(0), 10.0);   // 3000 pkts / 300 s
  EXPECT_DOUBLE_EQ(tracker.rate(1), 100.0);
  EXPECT_DOUBLE_EQ(tracker.drift(0), 0.0);
  EXPECT_GT(tracker.level_variance(0), 0.0);
}

TEST(Tracker, ConvergesToSteadyMeasurement) {
  TrafficTracker tracker(small_task({3000.0}));
  // Constant truth at 14 pkt/s, seeded at 10: the filter closes the gap.
  TrackerStep last;
  for (int i = 0; i < 20; ++i) last = feed(tracker, {14.0});
  EXPECT_NEAR(tracker.rate(0), 14.0, 0.1);
  // In steady state the innovations are small relative to their sigma.
  EXPECT_LT(last.innovation_rms, 1.0);
  EXPECT_EQ(last.measured, 1);
  EXPECT_EQ(last.outliers, 0);
}

TEST(Tracker, TracksDiurnalRampThroughDrift) {
  TrafficTracker tracker(small_task({3000.0}));
  // A steady ramp of +0.2 pkt/s per bin: the drift term absorbs it, so
  // late predictions stay close without lagging a fixed offset behind.
  double z = 10.0;
  for (int i = 0; i < 60; ++i) {
    z += 0.2;
    feed(tracker, {z});
  }
  EXPECT_NEAR(tracker.drift(0), 0.2, 0.1);
  EXPECT_NEAR(tracker.rate(0), z, 0.5);
}

TEST(Tracker, GatesIsolatedOutlier) {
  TrafficTracker tracker(small_task({3000.0}));
  for (int i = 0; i < 10; ++i) feed(tracker, {10.0});
  const double before = tracker.rate(0);
  // One wild estimate (inversion glitch): rejected, state barely moves.
  const TrackerStep step = feed(tracker, {500.0});
  EXPECT_EQ(step.outliers, 1);
  EXPECT_EQ(step.reaccepted, 0);
  EXPECT_GT(step.innovation_max, 4.0);
  EXPECT_NEAR(tracker.rate(0), before, 0.5);
  // The next sane measurement clears the outlier run.
  const TrackerStep next = feed(tracker, {10.0});
  EXPECT_EQ(next.outliers, 0);
}

TEST(Tracker, PersistentShiftReseedsTheFilter) {
  TrackerConfig config;
  config.reaccept_after = 3;
  TrafficTracker tracker(small_task({3000.0}), config);
  for (int i = 0; i < 10; ++i) feed(tracker, {10.0});
  // A genuine 8x surge: two bins of rejection, the third re-seeds.
  EXPECT_EQ(feed(tracker, {80.0}).reaccepted, 0);
  EXPECT_EQ(feed(tracker, {80.0}).reaccepted, 0);
  const TrackerStep third = feed(tracker, {80.0});
  EXPECT_EQ(third.reaccepted, 1);
  EXPECT_DOUBLE_EQ(tracker.rate(0), 80.0);
  EXPECT_DOUBLE_EQ(tracker.drift(0), 0.0);
}

TEST(Tracker, MissingMeasurementsCoast) {
  TrafficTracker tracker(small_task({3000.0}));
  for (int i = 0; i < 10; ++i) feed(tracker, {12.0});
  const double before = tracker.rate(0);
  const double var_before = tracker.level_variance(0);
  const TrackerStep step = feed(tracker, {kMissing});
  EXPECT_EQ(step.missing, 1);
  EXPECT_EQ(step.measured, 0);
  EXPECT_DOUBLE_EQ(step.innovation_rms, 0.0);
  // Prediction coasts (drift ~0 in steady state) and uncertainty grows.
  EXPECT_NEAR(tracker.rate(0), before, 0.2);
  EXPECT_GT(tracker.level_variance(0), var_before);
}

TEST(Tracker, TrackedTaskFollowsRatesWithFloor) {
  TrafficTracker tracker(small_task({3000.0, 3000.0}));
  // OD 0 grows to 50 pkt/s; OD 1 goes silent (floored at rate_floor).
  for (int i = 0; i < 40; ++i) feed(tracker, {50.0, 0.0});
  const core::MeasurementTask tracked = tracker.tracked_task();
  EXPECT_NEAR(tracked.expected_packets[0], 15000.0, 500.0);
  // 300 s at the rate floor is below min_expected_packets: the utility
  // floor S >= 2 keeps c = 1/S well-defined.
  EXPECT_DOUBLE_EQ(tracked.expected_packets[1], 2.0);
  // The original task is untouched.
  EXPECT_DOUBLE_EQ(tracker.task().expected_packets[0], 3000.0);
}

TEST(Tracker, RejectsMalformedInput) {
  EXPECT_THROW(TrafficTracker(core::MeasurementTask{}), Error);
  TrafficTracker tracker(small_task({3000.0}));
  const std::vector<double> wrong_size = {1.0, 2.0};
  EXPECT_THROW(tracker.observe(wrong_size), Error);
}

}  // namespace
}  // namespace netmon::control
