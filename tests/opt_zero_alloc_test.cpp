// Acceptance tests for the flat-CSR objective refactor:
//  1. value/gradient are bit-identical to the historical pair-list
//     implementation on the GEANT Table-I problem, and the solver reaches
//     the same active set and rates.
//  2. The objective evaluation entry points and the gradient-projection
//     iteration loop perform ZERO heap allocations at steady state
//     (counting global operator new/delete).
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <vector>

#include "core/scenario.hpp"
#include "core/solver.hpp"
#include "opt/gradient_projection.hpp"
#include "opt/line_search.hpp"
#include "opt/objective.hpp"
#include "util/error.hpp"

// ---------------------------------------------------------------------------
// Counting global allocator. Every variant forwards to malloc/free so the
// count covers all allocation paths of the standard library.
// ---------------------------------------------------------------------------

namespace {
std::size_t g_alloc_count = 0;

void* counted_alloc(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_alloc_count;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_alloc_count;
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace netmon::opt {
namespace {

// Allocations performed by `fn` (single-threaded test binary).
template <typename Fn>
std::size_t allocations_in(Fn&& fn) {
  const std::size_t before = g_alloc_count;
  fn();
  return g_alloc_count - before;
}

// ---------------------------------------------------------------------------
// The pre-refactor pair-list objective, kept verbatim as the bit-identity
// reference: vector-of-vectors rows, per-term virtual dispatch.
// ---------------------------------------------------------------------------
class PairListObjective final : public Objective {
 public:
  using SparseRows = SeparableConcaveObjective::SparseRows;

  PairListObjective(std::size_t dimension, SparseRows rows,
                    std::vector<std::shared_ptr<const Concave1d>> utilities)
      : dimension_(dimension),
        rows_(std::move(rows)),
        utilities_(std::move(utilities)) {}

  std::size_t dimension() const override { return dimension_; }

  std::vector<double> inner(std::span<const double> p) const {
    std::vector<double> x(rows_.size(), 0.0);
    for (std::size_t k = 0; k < rows_.size(); ++k) {
      for (const auto& [col, coeff] : rows_[k]) x[k] += coeff * p[col];
    }
    return x;
  }

  double value(std::span<const double> p) const override {
    const std::vector<double> x = inner(p);
    double sum = 0.0;
    for (std::size_t k = 0; k < x.size(); ++k)
      sum += utilities_[k]->value(x[k]);
    return sum;
  }

  void gradient(std::span<const double> p,
                std::span<double> out) const override {
    const std::vector<double> x = inner(p);
    for (double& g : out) g = 0.0;
    for (std::size_t k = 0; k < rows_.size(); ++k) {
      const double d = utilities_[k]->deriv(x[k]);
      for (const auto& [col, coeff] : rows_[k]) out[col] += coeff * d;
    }
  }

  double directional_second(std::span<const double> p,
                            std::span<const double> s) const override {
    const std::vector<double> x = inner(p);
    double sum = 0.0;
    for (std::size_t k = 0; k < rows_.size(); ++k) {
      double rs = 0.0;
      for (const auto& [col, coeff] : rows_[k]) rs += coeff * s[col];
      sum += utilities_[k]->second(x[k]) * rs * rs;
    }
    return sum;
  }

 private:
  std::size_t dimension_;
  SparseRows rows_;
  std::vector<std::shared_ptr<const Concave1d>> utilities_;
};

// GEANT Table-I problem plus a pair-list clone of its objective.
struct GeantFixture {
  core::GeantScenario scenario = core::make_geant_scenario();
  core::PlacementProblem problem = core::make_problem(scenario);

  PairListObjective pair_list_clone() const {
    const auto& f = problem.objective();
    const linalg::SparseCsr& m = f.matrix();
    PairListObjective::SparseRows rows(m.rows());
    std::vector<std::shared_ptr<const Concave1d>> utilities;
    for (std::size_t k = 0; k < m.rows(); ++k) {
      for (const auto& [col, coeff] : m.row(k))
        rows[k].emplace_back(col, coeff);
    }
    return PairListObjective(f.dimension(), std::move(rows),
                             problem.utilities());
  }

  std::vector<double> interior_point() const {
    return problem.constraints().initial_point();
  }
};

TEST(BitIdentity, ValueGradientMatchPairListImplementationExactly) {
  const GeantFixture fx;
  const auto& f = fx.problem.objective();
  const PairListObjective reference = fx.pair_list_clone();
  const std::vector<double> p = fx.interior_point();

  // Bit-for-bit: the CSR kernels accumulate in the same order as the
  // nested pair-list loops, so EXPECT_EQ on doubles must hold.
  const double v_new = f.value(p);
  const double v_old = reference.value(p);
  EXPECT_EQ(v_new, v_old);

  std::vector<double> g_new(f.dimension()), g_old(f.dimension());
  f.gradient(p, g_new);
  reference.gradient(p, g_old);
  for (std::size_t j = 0; j < g_new.size(); ++j)
    EXPECT_EQ(g_new[j], g_old[j]) << "gradient coordinate " << j;

  std::vector<double> s(f.dimension());
  for (std::size_t j = 0; j < s.size(); ++j)
    s[j] = (j % 2 == 0) ? 1.0 : -0.5;
  EXPECT_EQ(f.directional_second(p, s), reference.directional_second(p, s));
}

TEST(BitIdentity, SolverReachesIdenticalSolutionOnBothImplementations) {
  const GeantFixture fx;
  const PairListObjective reference = fx.pair_list_clone();

  // The generic (use_fused = false) iteration is the strict bit-identity
  // path: both objectives then run the exact same solver sequence. (The
  // fused path changes summation orders; it is compared against this
  // path with tolerances in opt_fused_eval_test.cpp.)
  SolverOptions generic;
  generic.use_fused = false;
  const SolveResult via_csr =
      maximize(fx.problem.objective(), fx.problem.constraints(), generic);
  const SolveResult via_pairs =
      maximize(reference, fx.problem.constraints(), generic);

  EXPECT_EQ(via_csr.status, SolveStatus::kOptimal);
  EXPECT_EQ(via_csr.status, via_pairs.status);
  EXPECT_EQ(via_csr.iterations, via_pairs.iterations);
  EXPECT_EQ(via_csr.release_events, via_pairs.release_events);
  ASSERT_EQ(via_csr.bounds.size(), via_pairs.bounds.size());
  for (std::size_t j = 0; j < via_csr.bounds.size(); ++j)
    EXPECT_EQ(via_csr.bounds[j], via_pairs.bounds[j]) << "active set @" << j;
  ASSERT_EQ(via_csr.p.size(), via_pairs.p.size());
  for (std::size_t j = 0; j < via_csr.p.size(); ++j)
    EXPECT_NEAR(via_csr.p[j], via_pairs.p[j], 1e-12) << "rate @" << j;
}

// ---------------------------------------------------------------------------
// Zero-allocation assertions.
// ---------------------------------------------------------------------------

TEST(ZeroAlloc, ObjectiveEvaluationThroughWarmWorkspace) {
  const GeantFixture fx;
  const auto& f = fx.problem.objective();
  const std::vector<double> p = fx.interior_point();
  std::vector<double> g(f.dimension());
  std::vector<double> s(f.dimension(), 1.0);
  linalg::EvalWorkspace ws;

  // Warm-up grows the workspace slots.
  (void)f.value(p, ws);
  f.gradient(p, g, ws);
  (void)f.directional_second(p, s, ws);

  EXPECT_EQ(allocations_in([&] { (void)f.value(p, ws); }), 0u);
  EXPECT_EQ(allocations_in([&] { f.gradient(p, g, ws); }), 0u);
  EXPECT_EQ(allocations_in([&] { (void)f.directional_second(p, s, ws); }),
            0u);
  // The legacy workspace-less interface has its own internal scratch;
  // warm it separately, then it too is allocation-free.
  (void)f.value(p);
  EXPECT_EQ(allocations_in([&] { (void)f.value(p); }), 0u);
}

TEST(ZeroAlloc, LineSearchThroughWarmWorkspace) {
  const GeantFixture fx;
  const auto& f = fx.problem.objective();
  const std::vector<double> p = fx.interior_point();
  std::vector<double> d(f.dimension());
  f.gradient(p, d);  // ascent direction
  linalg::EvalWorkspace ws;
  (void)maximize_along(f, p, d, 1e-6, {}, ws);  // warm-up
  EXPECT_EQ(allocations_in([&] { (void)maximize_along(f, p, d, 1e-6, {}, ws); }),
            0u);
}

TEST(ZeroAlloc, FusedEvalThroughWarmWorkspace) {
  const GeantFixture fx;
  const auto& f = fx.problem.objective();
  const std::vector<double> p = fx.interior_point();
  std::vector<double> g(f.dimension()), h(f.dimension());
  linalg::EvalWorkspace ws;

  const auto warm = f.fused_eval(p, g, ws);  // grows rows_a..rows_d
  EXPECT_EQ(allocations_in([&] { (void)f.fused_eval(p, g, ws); }), 0u);
  EXPECT_EQ(
      allocations_in([&] { f.grad_hess_diag_from_terms(warm.m1, warm.m2, g, h); }),
      0u);
  std::vector<double> x(warm.x.begin(), warm.x.end());
  EXPECT_EQ(allocations_in([&] { (void)f.fused_eval_from_inner(x, g, ws); }),
            0u);
  EXPECT_EQ(allocations_in([&] { f.inner_axpy(0, 1e-6, x); }), 0u);
}

TEST(ZeroAlloc, RestrictionProbesAfterWarmReset) {
  const GeantFixture fx;
  const auto& f = fx.problem.objective();
  const std::vector<double> p = fx.interior_point();
  const std::vector<double> x0 = f.inner(p);
  std::vector<double> d(f.dimension(), 0.1);

  SeparableRestriction restriction;
  restriction.reset(f, x0, d);  // warm-up grows the compact buffers
  (void)restriction.derivs(1e-5);
  EXPECT_EQ(allocations_in([&] {
              restriction.reset(f, x0, d);
              (void)restriction.derivs(1e-5);
              (void)restriction.derivs(2e-5);
            }),
            0u);
}

TEST(ZeroAlloc, InPlaceKktReusesReportCapacity) {
  const GeantFixture fx;
  const auto& f = fx.problem.objective();
  const std::size_t n = f.dimension();
  const std::vector<double> p = fx.interior_point();
  std::vector<double> g(n);
  f.gradient(p, g);
  const std::vector<BoundState> bounds(n, BoundState::kFree);
  KktReport report;
  compute_kkt(g, fx.problem.constraints().loads(), bounds, 1e-8, report);
  EXPECT_EQ(allocations_in([&] {
              compute_kkt(g, fx.problem.constraints().loads(), bounds, 1e-8,
                          report);
            }),
            0u);
}

TEST(ZeroAlloc, WarmRepeatSolveAllocatesOnlyTheResult) {
  const GeantFixture fx;
  SolverWorkspace workspace;
  const SolveResult first = maximize(fx.problem.objective(),
                                     fx.problem.constraints(), {}, nullptr,
                                     &workspace);
  ASSERT_EQ(first.status, SolveStatus::kOptimal);

  const std::size_t allocs = allocations_in([&] {
    (void)maximize(fx.problem.objective(), fx.problem.constraints(), {},
                   nullptr, &workspace);
  });
  // The iteration loop itself is allocation-free; what remains is the
  // per-call result object (p, bounds, the initial feasible point) — a
  // small constant independent of the iteration count.
  EXPECT_LE(allocs, 8u) << "solver hot path is allocating per iteration";
}

TEST(ZeroAlloc, InstrumentedWarmRepeatSolveAllocatesOnlyTheResult) {
  // Full observability on: per-iteration tracing into the pre-sized ring
  // plus registry counters. The hot loop must STAY zero-allocation — the
  // trace ring and metric cells were sized up front.
  const GeantFixture fx;
  obs::MetricsRegistry registry;
  obs::SolverTrace trace(8192);

  SolverOptions options;
  options.trace = &trace;
  options.counters = obs::register_solver_counters(registry);

  SolverWorkspace workspace;
  const SolveResult first = maximize(fx.problem.objective(),
                                     fx.problem.constraints(), options,
                                     nullptr, &workspace);
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  ASSERT_GT(trace.total_recorded(), 0u);

  const std::size_t allocs = allocations_in([&] {
    (void)maximize(fx.problem.objective(), fx.problem.constraints(), options,
                   nullptr, &workspace);
  });
  EXPECT_LE(allocs, 8u) << "tracing is allocating in the solver hot loop";
  // And tracing records every iteration (plus the final summary).
  EXPECT_EQ(trace.total_recorded(),
            2 * (static_cast<std::uint64_t>(first.iterations) + 1));
}

}  // namespace
}  // namespace netmon::opt
