#include "traffic/link_load.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "util/error.hpp"

namespace netmon::traffic {
namespace {

TEST(LinkLoads, AccumulatesAlongPaths) {
  const topo::Graph g = test::line_graph();
  const TrafficMatrix tm{{{0, 3}, 100.0}, {{1, 3}, 50.0}, {{0, 1}, 10.0}};
  const LinkLoads loads = link_loads(g, tm);
  const auto ab = *g.find_link(0, 1);
  const auto bc = *g.find_link(1, 2);
  const auto cd = *g.find_link(2, 3);
  EXPECT_DOUBLE_EQ(loads[ab], 110.0);
  EXPECT_DOUBLE_EQ(loads[bc], 150.0);
  EXPECT_DOUBLE_EQ(loads[cd], 150.0);
  // Reverse links unused.
  EXPECT_DOUBLE_EQ(loads[*g.find_link(1, 0)], 0.0);
}

TEST(LinkLoads, ConservationAtTransitNodes) {
  const topo::Graph g = test::line_graph();
  const TrafficMatrix tm{{{0, 3}, 100.0}};
  const LinkLoads loads = link_loads(g, tm);
  // Node B and C are pure transit for this demand: in = out.
  double in_b = 0.0, out_b = 0.0;
  for (auto id : g.in_links(1)) in_b += loads[id];
  for (auto id : g.out_links(1)) out_b += loads[id];
  EXPECT_DOUBLE_EQ(in_b, out_b);
}

TEST(LinkLoads, EcmpSplitsEvenly) {
  const topo::Graph g = test::diamond_graph();
  const TrafficMatrix tm{{{0, 3}, 100.0}};
  const LinkLoads loads = link_loads_ecmp(g, tm);
  EXPECT_NEAR(loads[*g.find_link(0, 1)], 50.0, 1e-9);
  EXPECT_NEAR(loads[*g.find_link(0, 2)], 50.0, 1e-9);
  // Single-path routing instead puts everything on one branch.
  const LinkLoads single = link_loads(g, tm);
  EXPECT_DOUBLE_EQ(single[*g.find_link(0, 1)] + single[*g.find_link(0, 2)],
                   100.0);
  EXPECT_TRUE(single[*g.find_link(0, 1)] == 0.0 ||
              single[*g.find_link(0, 2)] == 0.0);
}

TEST(LinkLoads, FailureReroutes) {
  const topo::Graph g = test::diamond_graph();
  const TrafficMatrix tm{{{0, 3}, 100.0}};
  const auto sx = *g.find_link(0, 1);
  const LinkLoads loads = link_loads(g, tm, routing::LinkSet{sx});
  EXPECT_DOUBLE_EQ(loads[sx], 0.0);
  EXPECT_DOUBLE_EQ(loads[*g.find_link(0, 2)], 100.0);
}

TEST(LinkLoads, UnreachableDemandThrows) {
  topo::Graph g;
  g.add_node("A");
  g.add_node("B");
  const TrafficMatrix tm{{{0, 1}, 1.0}};
  EXPECT_THROW(link_loads(g, tm), netmon::Error);
  EXPECT_THROW(link_loads_ecmp(g, tm), netmon::Error);
}

TEST(Utilization, ComputesBitsOverCapacity) {
  const topo::Graph g = test::line_graph();  // 1e9 bps links
  LinkLoads loads(g.link_count(), 0.0);
  const auto ab = *g.find_link(0, 1);
  loads[ab] = 1000.0;  // pkt/s
  // 1000 pkt/s * 500 B * 8 = 4 Mb/s over 1 Gb/s.
  EXPECT_NEAR(utilization(g, ab, loads, 500.0), 0.004, 1e-12);
  EXPECT_THROW(utilization(g, ab, loads, 0.0), netmon::Error);
}

}  // namespace
}  // namespace netmon::traffic
