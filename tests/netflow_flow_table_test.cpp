#include "netflow/flow_table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace netmon::netflow {
namespace {

traffic::FlowKey key(std::uint32_t n) {
  traffic::FlowKey k;
  k.src_ip = n;
  k.dst_ip = n + 1000;
  k.src_port = 1234;
  k.dst_port = 80;
  return k;
}

struct Harness {
  std::vector<FlowRecord> exported;
  FlowTable table;

  explicit Harness(FlowTableOptions options = {})
      : table(7, options,
              [this](const FlowRecord& r) { exported.push_back(r); }) {}
};

TEST(FlowTable, AccumulatesPacketsAndBytes) {
  Harness h;
  h.table.observe(key(1), 100, 1.0);
  h.table.observe(key(1), 200, 2.0);
  h.table.observe(key(1), 300, 3.0);
  EXPECT_EQ(h.table.size(), 1u);
  h.table.flush(3.0);
  ASSERT_EQ(h.exported.size(), 1u);
  EXPECT_EQ(h.exported[0].sampled_packets, 3u);
  EXPECT_EQ(h.exported[0].sampled_bytes, 600u);
  EXPECT_DOUBLE_EQ(h.exported[0].start_sec, 1.0);
  EXPECT_DOUBLE_EQ(h.exported[0].end_sec, 3.0);
  EXPECT_EQ(h.exported[0].input_link, 7u);
}

TEST(FlowTable, IdleTimeoutExpires) {
  FlowTableOptions options;
  options.idle_timeout_sec = 30.0;
  Harness h(options);
  h.table.observe(key(1), 100, 0.0);
  h.table.observe(key(2), 100, 25.0);
  h.table.advance(31.0);  // flow 1 idle for 31s, flow 2 for 6s
  EXPECT_EQ(h.table.size(), 1u);
  ASSERT_EQ(h.exported.size(), 1u);
  EXPECT_EQ(h.exported[0].key, key(1));
}

TEST(FlowTable, IdleKeepsFreshFlows) {
  Harness h;
  h.table.observe(key(1), 100, 0.0);
  h.table.observe(key(1), 100, 20.0);
  h.table.advance(45.0);
  EXPECT_EQ(h.table.size(), 1u);  // idle 25s < 30s
  h.table.advance(51.0);
  EXPECT_EQ(h.table.size(), 0u);  // idle 31s
}

TEST(FlowTable, ActiveTimeoutExpiresLongFlows) {
  FlowTableOptions options;
  options.idle_timeout_sec = 30.0;
  options.active_timeout_sec = 60.0;
  Harness h(options);
  // Keep the flow busy so the idle timer never fires.
  for (double t = 0.0; t <= 70.0; t += 5.0) h.table.observe(key(1), 10, t);
  // The active timeout must have exported at least one record by t=70.
  EXPECT_GE(h.exported.size(), 1u);
}

TEST(FlowTable, FinTriggersImmediateExport) {
  Harness h;
  h.table.observe(key(1), 100, 1.0);
  h.table.observe(key(1), 100, 2.0, /*fin=*/true);
  EXPECT_EQ(h.table.size(), 0u);
  ASSERT_EQ(h.exported.size(), 1u);
  EXPECT_EQ(h.exported[0].sampled_packets, 2u);
}

TEST(FlowTable, CachePressureEvictsLru) {
  FlowTableOptions options;
  options.max_entries = 2;
  Harness h(options);
  h.table.observe(key(1), 100, 1.0);
  h.table.observe(key(2), 100, 2.0);
  h.table.observe(key(1), 100, 3.0);  // key(2) becomes LRU
  h.table.observe(key(3), 100, 4.0);  // evicts key(2)
  EXPECT_EQ(h.table.size(), 2u);
  EXPECT_EQ(h.table.forced_evictions(), 1u);
  ASSERT_EQ(h.exported.size(), 1u);
  EXPECT_EQ(h.exported[0].key, key(2));
}

TEST(FlowTable, FlushExportsEverything) {
  Harness h;
  for (std::uint32_t i = 0; i < 5; ++i) h.table.observe(key(i), 10, 1.0);
  h.table.flush(2.0);
  EXPECT_EQ(h.exported.size(), 5u);
  EXPECT_EQ(h.table.size(), 0u);
  EXPECT_EQ(h.table.exported_records(), 5u);
}

TEST(FlowTable, SeparateFlowsSeparateRecords) {
  Harness h;
  h.table.observe(key(1), 10, 1.0);
  h.table.observe(key(2), 20, 1.0);
  h.table.flush(1.0);
  ASSERT_EQ(h.exported.size(), 2u);
  EXPECT_NE(h.exported[0].key, h.exported[1].key);
}

TEST(FlowTable, RejectsBadOptions) {
  FlowTableOptions bad;
  bad.idle_timeout_sec = 0.0;
  EXPECT_THROW(FlowTable(0, bad, [](const FlowRecord&) {}), Error);
  EXPECT_THROW(FlowTable(0, FlowTableOptions{}, nullptr), Error);
}

}  // namespace
}  // namespace netmon::netflow
