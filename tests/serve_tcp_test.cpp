// The TCP transport's contract: responses over real sockets are
// bit-identical to loopback (both feed the same Service), corrupt peers
// are rejected and disconnected, idle connections close on the injected
// clock, and stop() drains gracefully.
#include "serve/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "helpers.hpp"
#include "obs/clock.hpp"
#include "serve/loopback.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace netmon::serve {
namespace {

using namespace std::chrono_literals;

struct LineModel {
  topo::Graph graph = test::line_graph();
  core::MeasurementTask task;
  traffic::LinkLoads loads;

  LineModel() {
    task.ods = {{0, 3}, {1, 3}};
    task.expected_packets = {5000.0, 3000.0};
    loads.assign(graph.link_count(), 1000.0);
  }

  std::unique_ptr<Server> server(ServerOptions options = {}) const {
    options.problem.theta = 50000.0;
    return std::make_unique<Server>(graph, task, loads, options);
  }
};

struct ServeTcpTest : ::testing::Test {
  LineModel model;
};

/// Spins until `predicate` holds or ~2 s pass. The transport's I/O loop
/// polls every few ms, so state changes land quickly but asynchronously.
template <typename Predicate>
bool eventually(Predicate&& predicate) {
  for (int i = 0; i < 400; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return predicate();
}

/// A representative fleet of every request kind.
std::vector<Request> request_fleet() {
  std::vector<Request> fleet;
  Request solve;
  solve.id = 1;
  fleet.push_back(solve);

  Request sweep;
  sweep.id = 2;
  sweep.kind = RequestKind::kThetaSweep;
  sweep.thetas = {20000.0, 50000.0, 80000.0};
  fleet.push_back(sweep);

  Request what_if;
  what_if.id = 3;
  what_if.kind = RequestKind::kWhatIfBatch;
  what_if.what_if = {{1}, {3}};
  fleet.push_back(what_if);

  Request accuracy;
  accuracy.id = 4;
  accuracy.kind = RequestKind::kAccuracyReport;
  fleet.push_back(accuracy);

  Request failed;
  failed.id = 5;
  failed.failed = {3};
  fleet.push_back(failed);
  return fleet;
}

void expect_identical(const Response& a, const Response& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.error, b.error);
  ASSERT_EQ(a.solutions.size(), b.solutions.size());
  for (std::size_t i = 0; i < a.solutions.size(); ++i) {
    EXPECT_EQ(a.solutions[i].rates, b.solutions[i].rates);
    EXPECT_EQ(a.solutions[i].total_utility, b.solutions[i].total_utility);
    EXPECT_EQ(a.solutions[i].lambda, b.solutions[i].lambda);
    EXPECT_EQ(a.solutions[i].iterations, b.solutions[i].iterations);
    EXPECT_EQ(a.solutions[i].active_monitors, b.solutions[i].active_monitors);
  }
  EXPECT_EQ(a.sweep, b.sweep);
  ASSERT_EQ(a.accuracy.size(), b.accuracy.size());
  for (std::size_t i = 0; i < a.accuracy.size(); ++i)
    EXPECT_EQ(a.accuracy[i], b.accuracy[i]);
}

TEST_F(ServeTcpTest, SolveRoundTripsOverRealSockets) {
  auto srv = model.server();
  TcpServer tcp(*srv);
  ASSERT_GT(tcp.port(), 0);

  TcpClient client("127.0.0.1", tcp.port());
  Request request;
  request.id = 42;
  const Response response = client.call(std::move(request));
  EXPECT_EQ(response.id, 42u);
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  ASSERT_EQ(response.solutions.size(), 1u);
  EXPECT_FALSE(response.solutions[0].rates.empty());
}

TEST_F(ServeTcpTest, TcpAndLoopbackAnswerBitIdentically) {
  // One server, both transports: the acceptance criterion is that the
  // transport never leaks into the answer.
  auto srv = model.server();
  TcpServer tcp(*srv);
  TcpClient tcp_client("127.0.0.1", tcp.port());
  LoopbackTransport loopback(*srv, /*via_wire=*/true);

  for (const Request& request : request_fleet()) {
    Request over_tcp = request;
    Request over_loopback = request;
    over_loopback.id = request.id + 100;  // distinct in-flight ids
    const Response a = tcp_client.call(std::move(over_tcp));
    Response b = loopback.call(std::move(over_loopback));
    b.id = a.id;
    expect_identical(a, b);
  }
}

TEST_F(ServeTcpTest, ManyInFlightRequestsAllComplete) {
  auto srv = model.server();
  TcpServer tcp(*srv);
  TcpClient client("127.0.0.1", tcp.port());

  std::vector<std::future<Response>> futures;
  for (std::uint64_t id = 1; id <= 32; ++id) {
    Request request;
    request.id = id;
    request.theta = 30000.0 + static_cast<double>(id);
    futures.push_back(client.send(std::move(request)));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Response response = futures[i].get();
    EXPECT_EQ(response.id, i + 1);
    EXPECT_EQ(response.status, ResponseStatus::kOk);
  }
}

TEST_F(ServeTcpTest, MultipleClientsShareOneServer) {
  auto srv = model.server();
  TcpServer tcp(*srv);

  std::vector<std::unique_ptr<TcpClient>> clients;
  std::vector<std::future<Response>> futures;
  for (int c = 0; c < 4; ++c) {
    clients.push_back(
        std::make_unique<TcpClient>("127.0.0.1", tcp.port()));
    for (std::uint64_t id = 1; id <= 4; ++id) {
      Request request;
      request.id = id;  // ids only need to be unique per connection
      futures.push_back(clients.back()->send(std::move(request)));
    }
  }
  for (auto& future : futures)
    EXPECT_EQ(future.get().status, ResponseStatus::kOk);
}

TEST_F(ServeTcpTest, CorruptBytesCloseTheConnection) {
  auto srv = model.server();
  TcpServer tcp(*srv);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(tcp.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ASSERT_TRUE(eventually([&] { return tcp.connections() == 1; }));

  // 'X' can start neither a v2 frame (magic is 'N') nor a legacy length
  // prefix (high byte capped at 0x06): rejected at the first byte.
  const char garbage[] = "XXXXXXXX";
  ASSERT_EQ(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(garbage)));

  // The server closes the connection: recv sees EOF.
  char buf[16];
  const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  EXPECT_EQ(n, 0);
  ::close(fd);
  EXPECT_TRUE(eventually([&] { return tcp.connections() == 0; }));
  EXPECT_EQ(tcp.protocol_errors(), 1u);
}

TEST_F(ServeTcpTest, VersionMismatchIsRejected) {
  auto srv = model.server();
  TcpServer tcp(*srv);

  // A well-formed frame claiming wire version 99 must be rejected (the
  // mismatch-reject path) and the connection closed.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(tcp.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  std::vector<std::uint8_t> frame = encode_request(Request{});
  frame[2] = 99;  // version byte
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  char buf[16];
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);
  ::close(fd);
  EXPECT_GE(tcp.protocol_errors(), 1u);
}

TEST_F(ServeTcpTest, ConnectionsBeyondTheCapAreRefused) {
  auto srv = model.server();
  TcpServerOptions options;
  options.max_connections = 1;
  TcpServer tcp(*srv, options);

  TcpClient first("127.0.0.1", tcp.port());
  Request request;
  request.id = 1;
  EXPECT_EQ(first.call(std::move(request)).status, ResponseStatus::kOk);

  // The second connection completes the TCP handshake (backlog) but the
  // server closes it at accept: its requests come back typed, never hang.
  TcpClient second("127.0.0.1", tcp.port());
  Request rejected;
  rejected.id = 1;
  const Response response = second.call(std::move(rejected));
  EXPECT_EQ(response.status, ResponseStatus::kShutdown);
  EXPECT_TRUE(eventually([&] { return !second.connected(); }));
}

TEST_F(ServeTcpTest, IdleConnectionsCloseOnTheInjectedClock) {
  obs::ManualClock clock;
  auto srv = model.server();
  TcpServerOptions options;
  options.idle_timeout = 5s;
  options.clock = &clock;
  TcpServer tcp(*srv, options);

  TcpClient client("127.0.0.1", tcp.port());
  ASSERT_TRUE(eventually([&] { return tcp.connections() == 1; }));

  // Below the timeout: stays open.
  clock.advance(2s);
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(tcp.connections(), 1u);

  // Past it: the idle scan closes the connection, the client sees EOF.
  clock.advance(4s);
  EXPECT_TRUE(eventually([&] { return tcp.connections() == 0; }));
  EXPECT_TRUE(eventually([&] { return !client.connected(); }));
}

TEST_F(ServeTcpTest, StopDrainsInFlightRequestsBeforeClosing) {
  auto srv = model.server();
  TcpServer tcp(*srv);
  TcpClient client("127.0.0.1", tcp.port());

  std::vector<std::future<Response>> futures;
  for (std::uint64_t id = 1; id <= 8; ++id) {
    Request request;
    request.id = id;
    futures.push_back(client.send(std::move(request)));
  }
  // Give the I/O thread a beat to read the frames, then stop: every
  // submitted request must still be answered through the drain.
  std::this_thread::sleep_for(50ms);
  tcp.stop();
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(5s), std::future_status::ready);
    const Response response = future.get();
    // Either served before the drain finished, or typed kShutdown when
    // the connection closed mid-flight — never a hang, never silence.
    EXPECT_TRUE(response.status == ResponseStatus::kOk ||
                response.status == ResponseStatus::kShutdown);
  }
}

TEST_F(ServeTcpTest, StopWithAParkedDispatcherTimesOutTheDrain) {
  // A paused Server never answers, so the drain must give up at
  // drain_timeout and close the connection; the client's future
  // completes typed.
  ServerOptions server_options;
  server_options.start_paused = true;
  auto srv = model.server(server_options);
  TcpServerOptions options;
  options.drain_timeout = 100ms;
  TcpServer tcp(*srv, options);
  TcpClient client("127.0.0.1", tcp.port());

  Request request;
  request.id = 1;
  std::future<Response> future = client.send(std::move(request));
  std::this_thread::sleep_for(50ms);
  tcp.stop();
  ASSERT_EQ(future.wait_for(5s), std::future_status::ready);
  EXPECT_EQ(future.get().status, ResponseStatus::kShutdown);
  srv->stop();
}

}  // namespace
}  // namespace netmon::serve
