// Property tests for routing: Dijkstra against a Bellman-Ford reference
// on random graphs, and structural invariants of ECMP fractions.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "routing/spf.hpp"
#include "util/rng.hpp"

namespace netmon::routing {
namespace {

topo::Graph random_graph(Rng& rng, std::size_t nodes, double edge_prob) {
  topo::Graph g;
  for (std::size_t i = 0; i < nodes; ++i)
    g.add_node("N" + std::to_string(i), 1.0);
  for (std::size_t a = 0; a < nodes; ++a) {
    for (std::size_t b = a + 1; b < nodes; ++b) {
      if (rng.bernoulli(edge_prob)) {
        g.add_duplex(static_cast<topo::NodeId>(a),
                     static_cast<topo::NodeId>(b), 1e9,
                     1.0 + rng.below(20));
      }
    }
  }
  return g;
}

std::vector<double> bellman_ford(const topo::Graph& g, topo::NodeId src) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.node_count(), kInf);
  dist[src] = 0.0;
  for (std::size_t pass = 0; pass + 1 < g.node_count(); ++pass) {
    bool changed = false;
    for (const topo::Link& l : g.links()) {
      if (dist[l.src] + l.igp_weight < dist[l.dst]) {
        dist[l.dst] = dist[l.src] + l.igp_weight;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

class RandomGraphTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomGraphTest, DijkstraMatchesBellmanFord) {
  Rng rng(5000 + GetParam());
  const std::size_t nodes = 4 + rng.below(20);
  const topo::Graph g = random_graph(rng, nodes, 0.3);
  for (topo::NodeId src = 0; src < std::min<std::size_t>(nodes, 5); ++src) {
    const SpfResult spf = dijkstra(g, src);
    const auto reference = bellman_ford(g, src);
    for (topo::NodeId v = 0; v < nodes; ++v) {
      if (std::isinf(reference[v])) {
        EXPECT_FALSE(spf.reachable(v));
      } else {
        ASSERT_TRUE(spf.reachable(v));
        EXPECT_DOUBLE_EQ(spf.dist[v], reference[v])
            << "src=" << src << " dst=" << v;
      }
    }
  }
}

TEST_P(RandomGraphTest, ExtractedPathsHaveShortestLength) {
  Rng rng(6000 + GetParam());
  const std::size_t nodes = 4 + rng.below(15);
  const topo::Graph g = random_graph(rng, nodes, 0.35);
  const SpfResult spf = dijkstra(g, 0);
  for (topo::NodeId v = 1; v < nodes; ++v) {
    if (!spf.reachable(v)) continue;
    const auto path = extract_path(spf, g, v);
    double total = 0.0;
    topo::NodeId at = 0;
    for (topo::LinkId id : path) {
      EXPECT_EQ(g.link(id).src, at);  // contiguous
      total += g.link(id).igp_weight;
      at = g.link(id).dst;
    }
    EXPECT_EQ(at, v);
    EXPECT_DOUBLE_EQ(total, spf.dist[v]);
  }
}

TEST_P(RandomGraphTest, EcmpFlowConservation) {
  Rng rng(7000 + GetParam());
  const std::size_t nodes = 5 + rng.below(12);
  const topo::Graph g = random_graph(rng, nodes, 0.4);
  const SpfResult spf = dijkstra(g, 0);
  for (topo::NodeId dst = 1; dst < nodes; ++dst) {
    if (!spf.reachable(dst)) {
      EXPECT_TRUE(ecmp_fractions(g, 0, dst).empty());
      continue;
    }
    const auto fractions = ecmp_fractions(g, 0, dst);
    ASSERT_FALSE(fractions.empty());
    // Conservation: at every intermediate node, inflow == outflow;
    // 1 leaves the source; 1 enters the destination.
    std::vector<double> in(nodes, 0.0), out(nodes, 0.0);
    for (const auto& [link, frac] : fractions) {
      EXPECT_GT(frac, 0.0);
      EXPECT_LE(frac, 1.0 + 1e-9);
      out[g.link(link).src] += frac;
      in[g.link(link).dst] += frac;
    }
    EXPECT_NEAR(out[0] - in[0], 1.0, 1e-9);
    EXPECT_NEAR(in[dst] - out[dst], 1.0, 1e-9);
    for (topo::NodeId v = 0; v < nodes; ++v) {
      if (v == 0 || v == dst) continue;
      EXPECT_NEAR(in[v], out[v], 1e-9) << "node " << v << " dst " << dst;
    }
    // Every ECMP link lies on some shortest path.
    const std::vector<double> to_dst = [&] {
      // reverse distances via Bellman-Ford on reversed edges
      std::vector<double> dist(g.node_count(),
                               std::numeric_limits<double>::infinity());
      dist[dst] = 0.0;
      for (std::size_t pass = 0; pass + 1 < g.node_count(); ++pass) {
        for (const topo::Link& l : g.links()) {
          if (dist[l.dst] + l.igp_weight < dist[l.src])
            dist[l.src] = dist[l.dst] + l.igp_weight;
        }
      }
      return dist;
    }();
    for (const auto& [link, frac] : fractions) {
      const topo::Link& l = g.link(link);
      EXPECT_NEAR(spf.dist[l.src] + l.igp_weight + to_dst[l.dst],
                  spf.dist[dst], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomGraphTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace netmon::routing
