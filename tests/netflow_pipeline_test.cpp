#include "netflow/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "estimate/accuracy.hpp"
#include "helpers.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace netmon::netflow {
namespace {

// Small end-to-end scenario on the line topology: two OD pairs, one
// monitor on the shared A->B link and one on B->C.
struct LineScenario {
  topo::Graph graph = test::line_graph();
  routing::RoutingMatrix matrix =
      routing::RoutingMatrix::single_path(graph, {{0, 3}, {0, 1}});
  EgressMap egress = EgressMap::for_pop_blocks(graph);
  sampling::RateVector rates;
  std::vector<std::vector<traffic::Flow>> flows;

  explicit LineScenario(double rate_ab = 0.10, double rate_bc = 0.05) {
    rates.assign(graph.link_count(), 0.0);
    rates[*graph.find_link(0, 1)] = rate_ab;
    rates[*graph.find_link(1, 2)] = rate_bc;
    Rng rng(42);
    traffic::FlowGenOptions options;
    options.interval_sec = 300.0;
    flows.push_back(traffic::generate_flows(rng, {{0, 3}, 120.0}, 0, options));
    flows.push_back(traffic::generate_flows(rng, {{0, 1}, 240.0}, 1, options));
  }
};

TEST(NetflowPipeline, MonitorsSeeEveryPacketOnTheirLink) {
  LineScenario s;
  NetflowPipeline pipeline(s.graph, s.matrix, s.rates, s.egress);
  pipeline.run(s.flows);
  const std::uint64_t od0 = traffic::total_packets(s.flows[0]);
  const std::uint64_t od1 = traffic::total_packets(s.flows[1]);
  // A->B carries both ODs; B->C only OD 0.
  EXPECT_EQ(pipeline.offered_packets(), (od0 + od1) + od0);
}

TEST(NetflowPipeline, SamplingRateHonored) {
  LineScenario s;
  NetflowPipeline pipeline(s.graph, s.matrix, s.rates, s.egress);
  pipeline.run(s.flows);
  const double offered = static_cast<double>(pipeline.offered_packets());
  const double sampled = static_cast<double>(pipeline.sampled_packets());
  // Blended expected rate: weighted by per-link offered volumes.
  const std::uint64_t od0 = traffic::total_packets(s.flows[0]);
  const std::uint64_t od1 = traffic::total_packets(s.flows[1]);
  const double expected =
      0.10 * static_cast<double>(od0 + od1) + 0.05 * static_cast<double>(od0);
  EXPECT_NEAR(sampled / offered, expected / offered / 1.0,
              3.0 * std::sqrt(expected) / offered + 0.01);
}

TEST(NetflowPipeline, CollectorAttributesOdPairsCorrectly) {
  LineScenario s;
  NetflowPipeline pipeline(s.graph, s.matrix, s.rates, s.egress);
  pipeline.run(s.flows);
  const Collector& c = pipeline.collector();
  EXPECT_EQ(c.unattributed_records(), 0u);
  // Sampled counts per OD match the monitors' totals (flows starting at
  // the very end of the interval can land in the next bin).
  std::uint64_t x0 = 0, x1 = 0;
  for (std::int64_t bin : c.bins()) {
    x0 += c.sampled_packets(bin, {0, 3});
    x1 += c.sampled_packets(bin, {0, 1});
  }
  EXPECT_EQ(x0 + x1, pipeline.sampled_packets());
  EXPECT_GT(x0, 0u);
  EXPECT_GT(x1, 0u);
}

TEST(NetflowPipeline, EstimatesRecoverOdSizes) {
  LineScenario s;
  NetflowPipeline pipeline(s.graph, s.matrix, s.rates, s.egress);
  pipeline.run(s.flows);
  const Collector& c = pipeline.collector();
  for (std::size_t k = 0; k < 2; ++k) {
    const double rho =
        sampling::effective_rate_approx(s.matrix, k, s.rates);
    const double actual =
        static_cast<double>(traffic::total_packets(s.flows[k]));
    const double estimate =
        c.estimate_packets(0, s.matrix.od(k), rho);
    // 3-sigma binomial band around the truth.
    const double sigma = std::sqrt(actual * (1.0 - rho) / rho);
    EXPECT_NEAR(estimate, actual, 4.0 * sigma)
        << "OD " << k << " rho=" << rho;
    EXPECT_GT(estimate::accuracy(estimate, actual), 0.8);
  }
}

TEST(NetflowPipeline, AgreesWithFastSimulationEngine) {
  // The full pipeline and the binomial fast path are two implementations
  // of the same experiment; their per-OD counts must be statistically
  // indistinguishable.
  LineScenario s;
  RunningStats pipeline_counts, fast_counts;
  Rng rng(9);
  for (int rep = 0; rep < 8; ++rep) {
    PipelineOptions options;
    options.seed = 1000 + rep;
    NetflowPipeline pipeline(s.graph, s.matrix, s.rates, s.egress, options);
    pipeline.run(s.flows);
    pipeline_counts.add(static_cast<double>(
        pipeline.collector().sampled_packets(0, {0, 3})));
    const auto counts = sampling::simulate_sampling(
        rng, s.matrix, s.flows, s.rates,
        sampling::CountMode::kSumAcrossMonitors);
    fast_counts.add(static_cast<double>(counts[0].sampled_packets));
  }
  const double se = std::sqrt(
      (pipeline_counts.variance() + fast_counts.variance()) / 8.0 + 1.0);
  EXPECT_NEAR(pipeline_counts.mean(), fast_counts.mean(), 6.0 * se);
}

TEST(NetflowPipeline, ZeroRateMeansNoMonitors) {
  LineScenario s(0.0, 0.0);
  NetflowPipeline pipeline(s.graph, s.matrix, s.rates, s.egress);
  pipeline.run(s.flows);
  EXPECT_EQ(pipeline.offered_packets(), 0u);
  EXPECT_EQ(pipeline.collector().received_records(), 0u);
}

}  // namespace
}  // namespace netmon::netflow
