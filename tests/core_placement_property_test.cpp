// Property sweeps of the end-to-end placement on the GEANT scenario:
// whatever theta, the solver must certify, spend exactly the budget, keep
// rates in bounds, and behave monotonically in the budget.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/scenario.hpp"
#include "core/solver.hpp"
#include "core/strategies.hpp"

namespace netmon::core {
namespace {

const GeantScenario& shared_scenario() {
  static const GeantScenario* s = new GeantScenario(make_geant_scenario());
  return *s;
}

class ThetaSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ThetaSweepTest, SolverInvariantsHold) {
  const GeantScenario& s = shared_scenario();
  ProblemOptions options;
  options.theta = GetParam();
  const PlacementProblem problem = make_problem(s, options);
  const PlacementSolution solution = solve_placement(problem);

  EXPECT_EQ(solution.status, opt::SolveStatus::kOptimal);
  EXPECT_LE(solution.iterations, 2000);
  EXPECT_NEAR(solution.budget_used / options.theta, 1.0, 1e-6);
  for (topo::LinkId id = 0; id < solution.rates.size(); ++id) {
    EXPECT_GE(solution.rates[id], 0.0);
    EXPECT_LE(solution.rates[id], 1.0 + 1e-12);
  }
  // Every OD pair is observed (SRE utility has huge marginal near 0).
  for (const OdReport& od : solution.per_od) {
    EXPECT_GT(od.rho_approx, 0.0);
    EXPECT_GT(od.utility, 0.0);
    EXPECT_LE(od.utility, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ThetaSweepTest,
                         ::testing::Values(5000.0, 20000.0, 50000.0,
                                           100000.0, 250000.0, 600000.0,
                                           1500000.0, 4000000.0));

TEST(ThetaMonotonicity, MoreBudgetNeverHurts) {
  const GeantScenario& s = shared_scenario();
  double prev_total = -1e300;
  for (double theta : {10000.0, 30000.0, 90000.0, 270000.0, 810000.0}) {
    ProblemOptions options;
    options.theta = theta;
    const PlacementSolution solution =
        solve_placement(make_problem(s, options));
    EXPECT_GT(solution.total_utility, prev_total) << "theta=" << theta;
    prev_total = solution.total_utility;
  }
}

TEST(ThetaMonotonicity, WorstOdUtilityGrowsWithBudget) {
  const GeantScenario& s = shared_scenario();
  auto worst_at = [&](double theta) {
    ProblemOptions options;
    options.theta = theta;
    const PlacementSolution solution =
        solve_placement(make_problem(s, options));
    double w = 1.0;
    for (const auto& od : solution.per_od) w = std::min(w, od.utility);
    return w;
  };
  // Coarse sweep: strict monotonicity is not guaranteed for the *worst*
  // OD under a sum objective, but over decades of budget it must climb.
  EXPECT_LT(worst_at(10000.0), worst_at(100000.0));
  EXPECT_LT(worst_at(100000.0), worst_at(1000000.0));
}

TEST(RestrictionMonotonicity, LargerMonitorSetsNeverHurt) {
  const GeantScenario& s = shared_scenario();
  // Nested restrictions: UK links ⊂ UK+FR links ⊂ everything.
  const auto uk = uk_links(s.net);
  std::vector<topo::LinkId> uk_fr = uk;
  const auto fr = s.net.graph.find_node("FR");
  for (topo::LinkId id : s.net.graph.out_links(*fr)) uk_fr.push_back(id);

  ProblemOptions options;
  const double with_uk =
      solve_restricted(s.net.graph, s.task, s.loads, options, uk)
          .total_utility;
  const double with_uk_fr =
      solve_restricted(s.net.graph, s.task, s.loads, options, uk_fr)
          .total_utility;
  const double unrestricted =
      solve_placement(make_problem(s, options)).total_utility;
  EXPECT_LE(with_uk, with_uk_fr + 1e-9);
  EXPECT_LE(with_uk_fr, unrestricted + 1e-9);
}

class FailureSweepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FailureSweepTest, AnySingleUkLinkFailureIsSurvivable) {
  // GEANT is 2-connected at the UK PoP: failing any single UK link must
  // leave the problem solvable with every OD pair observed.
  const char* dst = GetParam();
  const GeantScenario base = shared_scenario();
  const auto link = base.net.graph.find_link("UK", dst);
  ASSERT_TRUE(link.has_value());

  ScenarioOptions scenario_options;
  scenario_options.failed.insert(*link);
  const GeantScenario failed = make_geant_scenario(scenario_options);
  ProblemOptions options;
  options.failed.insert(*link);
  const PlacementProblem problem(failed.net.graph, failed.task, failed.loads,
                                 options);
  const PlacementSolution solution = solve_placement(problem);
  EXPECT_EQ(solution.status, opt::SolveStatus::kOptimal);
  for (const OdReport& od : solution.per_od) EXPECT_GT(od.rho_approx, 0.0);
}

INSTANTIATE_TEST_SUITE_P(UkLinks, FailureSweepTest,
                         ::testing::Values("FR", "NL", "SE", "NY", "PT"));

}  // namespace
}  // namespace netmon::core
