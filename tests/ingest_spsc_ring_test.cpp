#include "ingest/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace netmon::ingest {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(8192).capacity(), 8192u);
}

TEST(SpscRing, EmptyAndFullEdges) {
  SpscRing<int> ring(4);
  int out[8];
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.pop(out, 8), 0u);

  const int in[4] = {1, 2, 3, 4};
  EXPECT_EQ(ring.try_push(in, 4), 4u);
  EXPECT_EQ(ring.size(), 4u);
  // Full: nothing fits.
  EXPECT_EQ(ring.try_push(in, 1), 0u);

  EXPECT_EQ(ring.pop(out, 8), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], in[i]);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PartialBatchPushReportsWhatFit) {
  SpscRing<int> ring(4);
  const int in[6] = {10, 11, 12, 13, 14, 15};
  EXPECT_EQ(ring.try_push(in, 3), 3u);
  // Only one slot left of the 3 requested.
  EXPECT_EQ(ring.try_push(in + 3, 3), 1u);
  int out[8];
  EXPECT_EQ(ring.pop(out, 8), 4u);
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[3], 13);
}

TEST(SpscRing, PushOrDropCountsOverflow) {
  SpscRing<int> ring(4);
  const int in[7] = {0, 1, 2, 3, 4, 5, 6};
  EXPECT_EQ(ring.push_or_drop(in, 7), 4u);
  EXPECT_EQ(ring.dropped(), 3u);
  int out[8];
  EXPECT_EQ(ring.pop(out, 8), 4u);
  // Drops come off the tail of the batch: the first 4 survive in order.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(ring.push_or_drop(in, 2), 2u);
  EXPECT_EQ(ring.dropped(), 3u);
}

TEST(SpscRing, WraparoundPreservesFifoOrder) {
  // Positions are monotonic tickets; drive them far past the capacity
  // so the slot index wraps many times.
  SpscRing<std::uint32_t> ring(8);
  Rng rng(7);
  std::uint32_t next_in = 0, next_out = 0;
  std::uint32_t buf[8];
  for (int step = 0; step < 10000; ++step) {
    const std::size_t want = 1 + rng.below(6);
    std::uint32_t in[8];
    for (std::size_t i = 0; i < want; ++i) in[i] = next_in + i;
    next_in += static_cast<std::uint32_t>(ring.try_push(in, want));
    const std::size_t got = ring.pop(buf, 1 + rng.below(8));
    for (std::size_t i = 0; i < got; ++i) EXPECT_EQ(buf[i], next_out + i);
    next_out += static_cast<std::uint32_t>(got);
  }
  while (next_out < next_in) {
    const std::size_t got = ring.pop(buf, 8);
    for (std::size_t i = 0; i < got; ++i) EXPECT_EQ(buf[i], next_out + i);
    next_out += static_cast<std::uint32_t>(got);
  }
  EXPECT_EQ(ring.pushed(), ring.popped());
  EXPECT_GT(ring.pushed(), 8u);  // wrapped the slot space many times over
}

/// A slot wide enough that a torn read would be visible: both halves
/// must always agree.
struct Mirrored {
  std::uint64_t value = 0;
  std::uint64_t check = 0;
};

// The TSan leg's star witness: one producer, one consumer, small ring,
// randomized batch sizes. Checks (a) no data race (TSan), (b) exact
// FIFO sequence, (c) no torn reads across the two 64-bit halves.
TEST(SpscRing, ConcurrentInterleaveDeliversExactSequence) {
  constexpr std::uint64_t kTotal = 200000;
  SpscRing<Mirrored> ring(64);

  std::thread producer([&ring] {
    Rng rng(1);
    Mirrored batch[32];
    std::uint64_t next = 0;
    while (next < kTotal) {
      const std::size_t want =
          std::min<std::uint64_t>(1 + rng.below(32), kTotal - next);
      for (std::size_t i = 0; i < want; ++i)
        batch[i] = {next + i, ~(next + i)};
      std::size_t sent = 0;
      while (sent < want) {
        const std::size_t n = ring.try_push(batch + sent, want - sent);
        if (n == 0) std::this_thread::yield();
        sent += n;
      }
      next += want;
    }
  });

  Rng rng(2);
  Mirrored out[48];
  std::uint64_t expected = 0;
  std::uint64_t torn = 0, misordered = 0;
  while (expected < kTotal) {
    const std::size_t n = ring.pop(out, 1 + rng.below(48));
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (out[i].check != ~out[i].value) ++torn;
      if (out[i].value != expected + i) ++misordered;
    }
    expected += n;
  }
  producer.join();
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(misordered, 0u);
  EXPECT_EQ(ring.pushed(), kTotal);
  EXPECT_EQ(ring.popped(), kTotal);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.empty());
}

// Same interleave under the lossy policy: whatever survives must still
// be an order-preserving subsequence, and pushed + dropped must equal
// the offered total.
TEST(SpscRing, ConcurrentDropPolicyKeepsSubsequence) {
  constexpr std::uint64_t kTotal = 100000;
  SpscRing<Mirrored> ring(32);

  std::thread producer([&ring] {
    Mirrored batch[16];
    std::uint64_t next = 0;
    while (next < kTotal) {
      const std::size_t want = std::min<std::uint64_t>(16, kTotal - next);
      for (std::size_t i = 0; i < want; ++i)
        batch[i] = {next + i, ~(next + i)};
      ring.push_or_drop(batch, want);
      next += want;
    }
  });

  Mirrored out[32];
  std::uint64_t last = 0;
  bool have_last = false;
  std::uint64_t received = 0, torn = 0, misordered = 0;
  for (;;) {
    const std::size_t n = ring.pop(out, 32);
    if (n == 0) {
      if (ring.pushed() + ring.dropped() >= kTotal && ring.empty()) break;
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (out[i].check != ~out[i].value) ++torn;
      if (have_last && out[i].value <= last) ++misordered;
      last = out[i].value;
      have_last = true;
    }
    received += n;
  }
  producer.join();
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(misordered, 0u);
  EXPECT_EQ(received, ring.popped());
  EXPECT_EQ(ring.pushed() + ring.dropped(), kTotal);
}

}  // namespace
}  // namespace netmon::ingest
