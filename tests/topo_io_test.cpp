#include "topo/io.hpp"

#include <gtest/gtest.h>

#include "topo/geant.hpp"
#include "util/error.hpp"

namespace netmon::topo {
namespace {

TEST(TopoIo, RoundTripsSmallGraph) {
  Graph g;
  const NodeId a = g.add_node("A", 2.5);
  const NodeId b = g.add_node("B", 1.0);
  g.add_link(a, b, 1e9, 3.0, false);
  g.add_duplex(a, b, 2e9, 4.0);

  const Graph back = graph_from_string(to_string(g));
  ASSERT_EQ(back.node_count(), 2u);
  ASSERT_EQ(back.link_count(), 3u);
  EXPECT_DOUBLE_EQ(back.node(0).mass, 2.5);
  EXPECT_EQ(back.node(1).name, "B");
  EXPECT_FALSE(back.link(0).monitorable);
  EXPECT_TRUE(back.link(1).monitorable);
  EXPECT_DOUBLE_EQ(back.link(2).igp_weight, 4.0);
  EXPECT_DOUBLE_EQ(back.link(1).capacity_bps, 2e9);
}

TEST(TopoIo, RoundTripsGeant) {
  const GeantNetwork net = make_geant();
  const Graph back = graph_from_string(to_string(net.graph));
  ASSERT_EQ(back.node_count(), net.graph.node_count());
  ASSERT_EQ(back.link_count(), net.graph.link_count());
  for (LinkId id = 0; id < back.link_count(); ++id) {
    EXPECT_EQ(back.link(id).src, net.graph.link(id).src);
    EXPECT_EQ(back.link(id).dst, net.graph.link(id).dst);
    EXPECT_DOUBLE_EQ(back.link(id).igp_weight,
                     net.graph.link(id).igp_weight);
    EXPECT_EQ(back.link(id).monitorable, net.graph.link(id).monitorable);
  }
}

TEST(TopoIo, ParsesCommentsAndBlankLines) {
  const Graph g = graph_from_string(
      "# a comment\n"
      "\n"
      "node A 1.0  # trailing comment\n"
      "node B 2.0\n"
      "duplex A B 1000 5 1\n");
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.link_count(), 2u);
}

TEST(TopoIo, ReportsLineNumbersOnErrors) {
  try {
    graph_from_string("node A 1.0\nlink A MISSING 1000 5 1\n");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("MISSING"), std::string::npos);
  }
}

TEST(TopoIo, RejectsMalformedRecords) {
  EXPECT_THROW(graph_from_string("node\n"), Error);
  EXPECT_THROW(graph_from_string("node A 1\nlink A\n"), Error);
  EXPECT_THROW(graph_from_string("frobnicate A B\n"), Error);
}

}  // namespace
}  // namespace netmon::topo
