#include "ingest/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "control/loop.hpp"
#include "control/tracker.hpp"
#include "helpers.hpp"
#include "ingest/synthetic.hpp"
#include "obs/metrics.hpp"
#include "traffic/link_load.hpp"
#include "util/error.hpp"

namespace netmon::ingest {
namespace {

// The ingest estimator's missing-value sentinel must drop straight into
// control::BinObservation::od_rates.
static_assert(kNoEstimate == control::kMissing);

struct LineScenario {
  topo::Graph graph = test::line_graph();
  traffic::TrafficMatrix tm{{{0, 3}, 120.0}, {{0, 1}, 240.0}};
  routing::RoutingMatrix matrix =
      routing::RoutingMatrix::single_path(graph, {{0, 3}, {0, 1}});
  netflow::EgressMap egress = netflow::EgressMap::for_pop_blocks(graph);
  sampling::RateVector rates;
  SyntheticOptions synth;
  topo::LinkId ab, bc;

  LineScenario() {
    ab = *graph.find_link(0, 1);
    bc = *graph.find_link(1, 2);
    rates.assign(graph.link_count(), 0.0);
    rates[ab] = 0.20;
    rates[bc] = 0.10;
    synth.flowgen.interval_sec = 60.0;
  }
};

struct RunConfig {
  unsigned producers = 1;
  unsigned pool_threads = 0;  // 0 = no pool (inline consumer)
  std::size_t ring = 0;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
};

struct RunOutcome {
  IngestStats stats;
  std::vector<double> estimates;
  std::uint64_t unattributed = 0;
};

RunOutcome run_pipeline(const LineScenario& s, const SyntheticTraffic& traffic,
                        RunConfig config, obs::MetricsRegistry* metrics = nullptr) {
  IngestOptions options;
  options.producers = config.producers;
  options.overflow = config.overflow;
  options.ring_capacity = config.ring != 0 ? config.ring : 4096;
  options.collector.bin_sec = s.synth.flowgen.interval_sec;
  IngestDeps deps;
  deps.metrics = metrics;
  std::unique_ptr<runtime::ThreadPool> pool;
  if (config.pool_threads != 0) {
    pool = std::make_unique<runtime::ThreadPool>(config.pool_threads);
    deps.pool = pool.get();
  }
  IngestPipeline pipeline(s.rates, s.egress, options, deps);
  pipeline.add_sources(traffic.sources(s.rates));
  RunOutcome outcome;
  outcome.stats = pipeline.run();
  outcome.estimates =
      od_rate_estimates(pipeline.collector(), s.matrix, s.rates, 0,
                        s.synth.flowgen.interval_sec);
  outcome.unattributed = pipeline.collector().unattributed_records();
  return outcome;
}

TEST(IngestPipeline, BlockingPolicyLosesNothing) {
  LineScenario s;
  SyntheticTraffic traffic(s.matrix, s.tm, s.synth);
  const RunOutcome r = run_pipeline(s, traffic, {.producers = 2,
                                                 .pool_threads = 2,
                                                 .ring = 256});
  EXPECT_EQ(r.stats.sources, 2u);
  EXPECT_EQ(r.stats.offered_packets,
            traffic.packets_on(s.ab) + traffic.packets_on(s.bc));
  EXPECT_EQ(r.stats.consumed_packets, r.stats.offered_packets);
  EXPECT_EQ(r.stats.dropped_packets, 0u);
  EXPECT_EQ(r.stats.drop_rate(), 0.0);
  EXPECT_GT(r.stats.sampled_packets, 0u);
  EXPECT_GT(r.stats.exported_records, 0u);
  EXPECT_EQ(r.unattributed, 0u);
}

TEST(IngestPipeline, SamplingRateHonored) {
  LineScenario s;
  SyntheticTraffic traffic(s.matrix, s.tm, s.synth);
  const RunOutcome r = run_pipeline(s, traffic, {});
  const double expected =
      0.20 * static_cast<double>(traffic.packets_on(s.ab)) +
      0.10 * static_cast<double>(traffic.packets_on(s.bc));
  const double sampled = static_cast<double>(r.stats.sampled_packets);
  EXPECT_NEAR(sampled, expected, 4.0 * std::sqrt(expected) + 1.0);
}

TEST(IngestPipeline, EstimatesRecoverOdRates) {
  LineScenario s;
  SyntheticTraffic traffic(s.matrix, s.tm, s.synth);
  const RunOutcome r = run_pipeline(s, traffic, {.pool_threads = 2});
  const double interval = s.synth.flowgen.interval_sec;
  for (std::size_t k = 0; k < 2; ++k) {
    const double actual_rate =
        static_cast<double>(traffic::total_packets(traffic.flows()[k])) /
        interval;
    const double rho = sampling::effective_rate_approx(s.matrix, k, s.rates);
    ASSERT_GT(rho, 0.0);
    // 4-sigma band of the binomial estimator, in pkt/s.
    const double sigma =
        std::sqrt(actual_rate * interval / rho) / interval;
    EXPECT_NEAR(r.estimates[k], actual_rate, 4.0 * sigma + 1.0)
        << "OD " << k;
  }
}

// The acceptance criterion: for a fixed seed the ingest-derived
// estimates are bit-identical at every producer partition and consumer
// thread count (blocking policy).
TEST(IngestPipeline, DeterministicAcrossThreadCounts) {
  LineScenario s;
  SyntheticTraffic traffic(s.matrix, s.tm, s.synth);
  const RunOutcome base = run_pipeline(s, traffic, {});
  const RunConfig variants[] = {
      {.producers = 2, .pool_threads = 1},
      {.producers = 1, .pool_threads = 2},
      {.producers = 2, .pool_threads = 4, .ring = 128},
      {.producers = 4, .pool_threads = 3, .ring = 64},
  };
  for (const RunConfig& config : variants) {
    const RunOutcome r = run_pipeline(s, traffic, config);
    EXPECT_EQ(r.stats.offered_packets, base.stats.offered_packets);
    EXPECT_EQ(r.stats.sampled_packets, base.stats.sampled_packets);
    EXPECT_EQ(r.stats.exported_records, base.stats.exported_records);
    ASSERT_EQ(r.estimates.size(), base.estimates.size());
    for (std::size_t k = 0; k < r.estimates.size(); ++k)
      EXPECT_EQ(r.estimates[k], base.estimates[k])
          << "OD " << k << " at producers=" << config.producers
          << " pool=" << config.pool_threads;
  }
}

TEST(IngestPipeline, DropPolicyKeepsTheAccountingInvariant) {
  LineScenario s;
  SyntheticTraffic traffic(s.matrix, s.tm, s.synth);
  const RunOutcome r = run_pipeline(
      s, traffic,
      {.producers = 2, .pool_threads = 1, .ring = 16,
       .overflow = OverflowPolicy::kDrop});
  EXPECT_EQ(r.stats.offered_packets,
            r.stats.consumed_packets + r.stats.dropped_packets);
  EXPECT_GE(r.stats.drop_rate(), 0.0);
  EXPECT_LE(r.stats.drop_rate(), 1.0);
}

TEST(IngestPipeline, MetricsSurfaceTheRun) {
  LineScenario s;
  SyntheticTraffic traffic(s.matrix, s.tm, s.synth);
  obs::MetricsRegistry metrics;
  const RunOutcome r =
      run_pipeline(s, traffic, {.pool_threads = 2}, &metrics);
  const obs::RegistrySnapshot snap = metrics.snapshot();
  const obs::MetricSnapshot* packets =
      snap.find("netmon_ingest_packets_total");
  ASSERT_NE(packets, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(packets->value),
            r.stats.offered_packets);
  const obs::MetricSnapshot* sampled =
      snap.find("netmon_ingest_sampled_total");
  ASSERT_NE(sampled, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(sampled->value),
            r.stats.sampled_packets);
  const obs::MetricSnapshot* occupancy =
      snap.find("netmon_ingest_ring_occupancy");
  ASSERT_NE(occupancy, nullptr);
  EXPECT_GT(occupancy->count, 0u);
  EXPECT_NE(snap.find("netmon_ingest_pkts_per_sec"), nullptr);
}

TEST(IngestPipeline, RunIsOneShot) {
  LineScenario s;
  SyntheticTraffic traffic(s.matrix, s.tm, s.synth);
  IngestOptions options;
  options.collector.bin_sec = s.synth.flowgen.interval_sec;
  IngestPipeline pipeline(s.rates, s.egress, options);
  pipeline.add_sources(traffic.sources(s.rates));
  pipeline.run();
  EXPECT_THROW(pipeline.run(), Error);
}

TEST(IngestPipeline, RejectsSourceOnUnmonitoredLink) {
  LineScenario s;
  SyntheticTraffic traffic(s.matrix, s.tm, s.synth);
  sampling::RateVector no_rates(s.graph.link_count(), 0.0);
  IngestPipeline pipeline(no_rates, s.egress);
  EXPECT_THROW(pipeline.add_source(traffic.source(s.ab)), Error);
}

// Closes the loop of the issue: ingest-derived estimates drive
// control::ControlLoop exactly like simulator-derived ones.
TEST(IngestPipeline, EstimatesDriveTheControlLoop) {
  LineScenario s;
  core::MeasurementTask task;
  task.ods = {{0, 3}, {0, 1}};
  task.interval_sec = 300.0;
  for (const auto& demand : s.tm)
    task.expected_packets.push_back(demand.pkt_per_sec * task.interval_sec);
  control::ControlLoop loop(s.graph, task);

  // Bin 1: loads only; the loop solves and installs sampling rates.
  control::BinObservation first;
  first.loads = traffic::link_loads(s.graph, s.tm);
  const control::StepResult r1 = loop.step(first);
  EXPECT_TRUE(r1.reconfigured);
  ASSERT_TRUE(loop.have_rates());

  // Bin 2: replay the interval through ingest under the installed
  // rates and feed the resulting estimates back.
  s.rates = loop.rates();
  SyntheticTraffic traffic(s.matrix, s.tm, s.synth);
  const RunOutcome a =
      run_pipeline(s, traffic, {.producers = 2, .pool_threads = 2});
  const RunOutcome b = run_pipeline(s, traffic, {.producers = 1});
  ASSERT_EQ(a.estimates.size(), task.ods.size());
  EXPECT_EQ(a.estimates, b.estimates);  // deterministic hand-off

  control::BinObservation second;
  second.loads = first.loads;
  second.od_rates = a.estimates;
  const control::StepResult r2 = loop.step(second);
  EXPECT_EQ(r2.bin, 2);
  EXPECT_FALSE(r2.skipped);
  EXPECT_GT(r2.utility, 0.0);

  // The estimates the loop consumed track the true rates.
  for (std::size_t k = 0; k < task.ods.size(); ++k) {
    if (a.estimates[k] == kNoEstimate) continue;
    const double actual = s.tm[k].pkt_per_sec;
    EXPECT_NEAR(a.estimates[k] / actual, 1.0, 0.5) << "OD " << k;
  }
}

}  // namespace
}  // namespace netmon::ingest
