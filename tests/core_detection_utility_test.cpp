#include <gtest/gtest.h>

#include <cmath>

#include "core/scenario.hpp"
#include "core/utility.hpp"
#include "estimate/flow_inversion.hpp"
#include "opt/gradient_projection.hpp"
#include "util/error.hpp"

namespace netmon::core {
namespace {

TEST(DetectionUtility, MatchesDetectionProbability) {
  const DetectionUtility m(100.0);
  for (double rho : {0.0, 0.001, 0.01, 0.1, 0.5}) {
    EXPECT_NEAR(m.value(rho), estimate::detection_probability(
                                  100, rho),
                1e-12)
        << "rho=" << rho;
  }
  EXPECT_DOUBLE_EQ(m.value(0.0), 0.0);
}

TEST(DetectionUtility, IncreasingAndConcave) {
  const DetectionUtility m(50.0);
  double prev_v = -1.0, prev_d = 1e300;
  // Beyond x ~ 0.5 the value saturates below double resolution of 1.0,
  // so strict monotonicity is only checkable on the left part.
  for (double x = 0.0; x <= 0.5; x += 0.005) {
    const double v = m.value(x);
    const double d = m.deriv(x);
    EXPECT_GT(v, prev_v);
    EXPECT_GT(d, 0.0);
    EXPECT_LT(d, prev_d);
    EXPECT_LT(m.second(x), 0.0);
    prev_v = v;
    prev_d = d;
  }
  // The saturated tail is still monotone non-decreasing and bounded by 1.
  for (double x = 0.5; x <= 0.99; x += 0.01) {
    EXPECT_GE(m.value(x), prev_v);
    EXPECT_LE(m.value(x), 1.0);
  }
}

TEST(DetectionUtility, DerivativesMatchFiniteDifferences) {
  const DetectionUtility m(30.0);
  // x=0.8 omitted: value saturates to 1.0 and finite differences vanish.
  for (double x : {0.001, 0.05, 0.3}) {
    const double h = 1e-6;
    const double fd = (m.value(x + h) - m.value(x - h)) / (2.0 * h);
    EXPECT_NEAR(m.deriv(x) / fd, 1.0, 1e-5) << "x=" << x;
    const double h2 = 1e-4;
    const double fd2 = (m.value(x + h2) - 2.0 * m.value(x) + m.value(x - h2)) /
                       (h2 * h2);
    EXPECT_NEAR(m.second(x) / fd2, 1.0, 1e-2) << "x=" << x;
  }
}

TEST(DetectionUtility, ClampsAboveOne) {
  const DetectionUtility m(10.0);
  EXPECT_NO_THROW(m.value(1.2));  // linearized rho can exceed 1
  EXPECT_NEAR(m.value(1.2), 1.0, 1e-9);
  EXPECT_THROW(DetectionUtility(1.0), Error);
  EXPECT_THROW(m.value(-0.5), Error);
}

TEST(DetectionUtility, LargerAnomaliesAreEasierToCatch) {
  const DetectionUtility small(10.0), large(1000.0);
  for (double rho : {0.001, 0.01}) {
    EXPECT_GT(large.value(rho), small.value(rho));
  }
}

TEST(DetectionUtility, DropsIntoThePlacementSolver) {
  // Detection task on GEANT: catch >= 200-packet anomalies on the five
  // smallest OD pairs with a small budget. The framework accepts the
  // alternative utility unchanged (paper §VI).
  const GeantScenario s = make_geant_scenario();
  MeasurementTask task;
  task.interval_sec = 300.0;
  for (const char* dst : {"LU", "SK", "IL", "HR", "SI"}) {
    task.ods.push_back({s.net.janet, *s.net.graph.find_node(dst)});
    task.expected_packets.push_back(10000.0);  // placeholder sizes
  }
  ProblemOptions options;
  options.theta = 150000.0;
  const PlacementProblem problem(s.net.graph, task, s.loads, options);

  // Swap the SRE utilities for detection utilities via a custom
  // objective over the same routing rows.
  opt::SeparableConcaveObjective::SparseRows rows;
  for (std::size_t k = 0; k < task.ods.size(); ++k) {
    std::vector<std::pair<std::size_t, double>> row;
    for (const auto& [link, frac] : problem.routing().row(k)) {
      // compress link -> candidate index
      for (std::size_t j = 0; j < problem.candidates().size(); ++j) {
        if (problem.candidates()[j] == link) row.emplace_back(j, frac);
      }
    }
    rows.push_back(std::move(row));
  }
  std::vector<std::shared_ptr<const opt::Concave1d>> utilities(
      task.ods.size(), std::make_shared<DetectionUtility>(200.0));
  const opt::SeparableConcaveObjective objective(
      problem.candidates().size(), std::move(rows), std::move(utilities));

  const opt::SolveResult r = opt::maximize(objective, problem.constraints());
  EXPECT_EQ(r.status, opt::SolveStatus::kOptimal);
  // Every watched OD pair gets a decent detection probability.
  const auto rates = problem.expand(r.p);
  for (std::size_t k = 0; k < task.ods.size(); ++k) {
    const double rho =
        sampling::effective_rate_approx(problem.routing(), k, rates);
    EXPECT_GT(estimate::detection_probability(200, rho), 0.2) << "od " << k;
  }
}

}  // namespace
}  // namespace netmon::core
