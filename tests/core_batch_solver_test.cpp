#include "core/batch_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/reoptimize.hpp"
#include "core/scenario.hpp"
#include "core/sensitivity.hpp"
#include "runtime/thread_pool.hpp"
#include "util/error.hpp"

namespace netmon::core {
namespace {

const std::vector<double> kThetas = {40000.0, 70000.0, 100000.0, 160000.0,
                                     250000.0};

struct BatchFixture : ::testing::Test {
  GeantScenario scenario = make_geant_scenario();
  std::vector<PlacementProblem> problems =
      make_theta_sweep(scenario.net.graph, scenario.task, scenario.loads, {},
                       kThetas);
};

TEST_F(BatchFixture, MatchesIndividualSolves) {
  BatchOptions options;
  options.threads = 2;
  const auto batch = BatchSolver(options).solve(problems);
  ASSERT_EQ(batch.size(), problems.size());
  for (std::size_t i = 0; i < problems.size(); ++i) {
    const PlacementSolution solo = solve_placement(problems[i]);
    EXPECT_EQ(batch[i].rates, solo.rates) << "theta=" << kThetas[i];
    EXPECT_EQ(batch[i].total_utility, solo.total_utility);
    EXPECT_EQ(batch[i].iterations, solo.iterations);
  }
}

TEST_F(BatchFixture, BitIdenticalAcrossThreadCounts) {
  auto run = [&](unsigned threads) {
    BatchOptions options;
    options.threads = threads;
    return BatchSolver(options).solve(problems);
  };
  const auto serial = run(1);
  for (const unsigned threads :
       {4u, runtime::resolve_threads(0)}) {
    const auto parallel = run(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].rates, serial[i].rates);
      EXPECT_EQ(parallel[i].total_utility, serial[i].total_utility);
      EXPECT_EQ(parallel[i].lambda, serial[i].lambda);
    }
  }
}

TEST_F(BatchFixture, WarmChainBitIdenticalAcrossThreadCounts) {
  auto run = [&](unsigned threads) {
    BatchOptions options;
    options.threads = threads;
    options.warm_chain = true;
    options.chain_chunk = 2;
    return BatchSolver(options).solve(problems);
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(parallel[i].rates, serial[i].rates);
}

TEST_F(BatchFixture, WarmChainReachesSameOptimum) {
  BatchOptions cold;
  const auto cold_solutions = BatchSolver(cold).solve(problems);

  BatchOptions warm;
  warm.warm_chain = true;
  const auto warm_solutions = BatchSolver(warm).solve(problems);

  for (std::size_t i = 0; i < problems.size(); ++i) {
    EXPECT_EQ(warm_solutions[i].status, opt::SolveStatus::kOptimal);
    // Same concave optimum from either start, to solver tolerance.
    EXPECT_NEAR(warm_solutions[i].total_utility,
                cold_solutions[i].total_utility,
                1e-6 * std::abs(cold_solutions[i].total_utility));
  }
}

TEST_F(BatchFixture, EmptyBatchIsFine) {
  const std::vector<const PlacementProblem*> none;
  EXPECT_TRUE(BatchSolver().solve(none).empty());
}

TEST_F(BatchFixture, NullProblemThrows) {
  const std::vector<const PlacementProblem*> bad = {nullptr};
  EXPECT_THROW(BatchSolver().solve(bad), Error);
}

TEST_F(BatchFixture, ResolveWarmBatchMatchesSequentialWarmSolves) {
  const PlacementSolution base = solve_placement(problems[2]);
  std::vector<const PlacementProblem*> pointers;
  for (const auto& p : problems) pointers.push_back(&p);

  BatchOptions options;
  options.threads = 3;
  const auto batch = resolve_warm_batch(pointers, base.rates, options);
  ASSERT_EQ(batch.size(), problems.size());
  for (std::size_t i = 0; i < problems.size(); ++i) {
    const PlacementSolution solo = resolve_warm(problems[i], base.rates);
    EXPECT_EQ(batch[i].rates, solo.rates);
  }
}

TEST_F(BatchFixture, ThetaSensitivityTracksShadowPrice) {
  ProblemOptions base;
  const auto points =
      theta_sensitivity(scenario.net.graph, scenario.task, scenario.loads,
                        base, kThetas, {});
  ASSERT_EQ(points.size(), kThetas.size());
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    // Utility is increasing and concave in theta.
    EXPECT_GT(points[i + 1].total_utility, points[i].total_utility);
    EXPECT_GT(points[i].lambda, 0.0);
    // The secant slope lies between the endpoint shadow prices (concavity),
    // with slack for solver tolerance.
    EXPECT_LE(points[i].empirical_price, points[i].lambda * 1.05);
    EXPECT_GE(points[i].empirical_price, points[i + 1].lambda * 0.95);
  }
}

TEST_F(BatchFixture, ThetaSweepRequiresIncreasingThetas) {
  const std::vector<double> bad = {100000.0, 50000.0};
  EXPECT_THROW(theta_sensitivity(scenario.net.graph, scenario.task,
                                 scenario.loads, {}, bad, {}),
               Error);
}

}  // namespace
}  // namespace netmon::core
