#include "core/two_phase.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/scenario.hpp"
#include "util/error.hpp"

namespace netmon::core {
namespace {

TEST(TwoPhase, FullBudgetOfMonitorsCoversEveryOd) {
  const GeantScenario s = make_geant_scenario();
  TwoPhaseOptions options;
  options.max_monitors = 20;  // no effective cardinality limit
  const TwoPhaseResult result = two_phase_placement(
      s.net.graph, s.task, s.loads, ProblemOptions{}, options);
  EXPECT_NEAR(result.covered_fraction, 1.0, 1e-12);
  for (const auto& od : result.solution.per_od)
    EXPECT_GT(od.rho_approx, 0.0);
}

TEST(TwoPhase, GreedyPrefersAccessLikeLinks) {
  // The first pick must be a high coverage-per-cost link; on our GEANT
  // scenario that is one of the UK first hops (they cover many ODs).
  const GeantScenario s = make_geant_scenario();
  TwoPhaseOptions options;
  options.max_monitors = 1;
  const TwoPhaseResult result = two_phase_placement(
      s.net.graph, s.task, s.loads, ProblemOptions{}, options);
  ASSERT_EQ(result.selected.size(), 1u);
  EXPECT_EQ(s.net.graph.link(result.selected[0]).src, s.net.uk);
}

TEST(TwoPhase, JointOptimumIsNeverWorse) {
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem joint_problem = make_problem(s);
  const PlacementSolution joint = solve_placement(joint_problem);
  for (std::size_t k : {2u, 4u, 6u, 10u}) {
    TwoPhaseOptions options;
    options.max_monitors = k;
    const TwoPhaseResult two = two_phase_placement(
        s.net.graph, s.task, s.loads, ProblemOptions{}, options);
    EXPECT_LE(two.solution.total_utility, joint.total_utility + 1e-9)
        << "k=" << k;
  }
}

TEST(TwoPhase, MoreMonitorsNeverHurtCoverage) {
  const GeantScenario s = make_geant_scenario();
  double prev_coverage = 0.0;
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    TwoPhaseOptions options;
    options.max_monitors = k;
    const TwoPhaseResult result = two_phase_placement(
        s.net.graph, s.task, s.loads, ProblemOptions{}, options);
    EXPECT_GE(result.covered_fraction, prev_coverage - 1e-12) << "k=" << k;
    EXPECT_LE(result.selected.size(), k);
    prev_coverage = result.covered_fraction;
  }
}

TEST(TwoPhase, TightSelectionLeavesSmallOdsBehind) {
  // With very few monitors, phase 1's volume-driven choice leaves the
  // small OD pairs with low effective rates — the gap the paper's joint
  // formulation closes.
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem joint_problem = make_problem(s);
  const PlacementSolution joint = solve_placement(joint_problem);
  TwoPhaseOptions options;
  options.max_monitors = 3;
  const TwoPhaseResult two = two_phase_placement(
      s.net.graph, s.task, s.loads, ProblemOptions{}, options);
  auto worst = [](const PlacementSolution& sol) {
    double w = 1.0;
    for (const auto& od : sol.per_od) w = std::min(w, od.utility);
    return w;
  };
  EXPECT_LT(worst(two.solution), worst(joint));
}

TEST(TwoPhase, BudgetClampedToSelection) {
  // A tiny selection cannot absorb theta = 100k; the restricted solve
  // must still be feasible (theta clamped) rather than throwing.
  const GeantScenario s = make_geant_scenario();
  TwoPhaseOptions options;
  options.max_monitors = 1;
  ProblemOptions problem_options;
  problem_options.theta = 5.0e7;  // far beyond any single link
  const TwoPhaseResult result = two_phase_placement(
      s.net.graph, s.task, s.loads, problem_options, options);
  EXPECT_LE(result.solution.budget_used, 5.0e7);
}

TEST(TwoPhase, ValidatesOptions) {
  const GeantScenario s = make_geant_scenario();
  TwoPhaseOptions bad;
  bad.max_monitors = 0;
  EXPECT_THROW(two_phase_placement(s.net.graph, s.task, s.loads,
                                   ProblemOptions{}, bad),
               Error);
}

}  // namespace
}  // namespace netmon::core
