#include "routing/routing_matrix.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "topo/geant.hpp"
#include "util/error.hpp"

namespace netmon::routing {
namespace {

TEST(RoutingMatrix, SinglePathRowsAreBinary) {
  const topo::Graph g = test::line_graph();
  const auto m =
      RoutingMatrix::single_path(g, {{0, 3}, {1, 2}, {0, 1}});
  ASSERT_EQ(m.od_count(), 3u);
  EXPECT_EQ(m.row(0).size(), 3u);
  EXPECT_EQ(m.row(1).size(), 1u);
  EXPECT_EQ(m.row(2).size(), 1u);
  for (std::size_t k = 0; k < m.od_count(); ++k) {
    for (const auto& [link, frac] : m.row(k)) EXPECT_DOUBLE_EQ(frac, 1.0);
  }
}

TEST(RoutingMatrix, ColumnsMatchRows) {
  const topo::Graph g = test::line_graph();
  const auto m = RoutingMatrix::single_path(g, {{0, 3}, {1, 3}, {2, 3}});
  // The C->D link is crossed by all three OD pairs.
  const auto cd = g.find_link(2, 3);
  ASSERT_TRUE(cd.has_value());
  EXPECT_EQ(m.ods_on_link(*cd).size(), 3u);
  // Consistency: every column entry has a matching row entry.
  for (topo::LinkId link = 0; link < g.link_count(); ++link) {
    for (const auto& [k, frac] : m.ods_on_link(link)) {
      EXPECT_DOUBLE_EQ(m.fraction(k, link), frac);
    }
  }
}

TEST(RoutingMatrix, FractionZeroOffPath) {
  const topo::Graph g = test::line_graph();
  const auto m = RoutingMatrix::single_path(g, {{0, 1}});
  const auto cd = g.find_link(2, 3);
  EXPECT_DOUBLE_EQ(m.fraction(0, *cd), 0.0);
}

TEST(RoutingMatrix, LinksUsedIsSortedAndDistinct) {
  const topo::Graph g = test::line_graph();
  const auto m = RoutingMatrix::single_path(g, {{0, 3}, {1, 3}});
  const auto links = m.links_used();
  ASSERT_EQ(links.size(), 3u);
  for (std::size_t i = 1; i < links.size(); ++i)
    EXPECT_LT(links[i - 1], links[i]);
}

TEST(RoutingMatrix, EcmpFractionsSumToOnePerHopLevel) {
  const topo::Graph g = test::diamond_graph();
  const auto m = RoutingMatrix::ecmp(g, {{0, 3}});
  double into_t = 0.0;
  for (const auto& [link, frac] : m.row(0)) {
    if (g.link(link).dst == 3u) into_t += frac;
  }
  EXPECT_NEAR(into_t, 1.0, 1e-12);
}

TEST(RoutingMatrix, UnreachableOdThrows) {
  topo::Graph g;
  g.add_node("A");
  g.add_node("B");
  EXPECT_THROW(RoutingMatrix::single_path(g, {{0, 1}}), Error);
  EXPECT_THROW(RoutingMatrix::ecmp(g, {{0, 1}}), Error);
}

TEST(RoutingMatrix, FailedLinkReroutes) {
  const topo::Graph g = test::diamond_graph();
  const auto sx = g.find_link(0, 1);
  const auto m = RoutingMatrix::single_path(g, {{0, 3}}, LinkSet{*sx});
  for (const auto& [link, frac] : m.row(0)) EXPECT_NE(link, *sx);
}

TEST(RoutingMatrix, JanetTaskTraversesTwentyOneLinks) {
  // 20 destination tree links + the JANET access link.
  const topo::GeantNetwork net = topo::make_geant();
  std::vector<OdPair> ods;
  for (const auto& name : topo::janet_destinations())
    ods.push_back({net.janet, *net.graph.find_node(name)});
  const auto m = RoutingMatrix::single_path(net.graph, ods);
  EXPECT_EQ(m.links_used().size(), 21u);
  // Every OD pair crosses the access link first.
  for (std::size_t k = 0; k < m.od_count(); ++k) {
    EXPECT_DOUBLE_EQ(m.fraction(k, net.access_in), 1.0);
  }
}

TEST(RoutingMatrix, RowIndexOutOfRangeThrows) {
  const topo::Graph g = test::line_graph();
  const auto m = RoutingMatrix::single_path(g, {{0, 1}});
  EXPECT_THROW(m.row(1), Error);
  EXPECT_THROW(m.ods_on_link(999), Error);
}

}  // namespace
}  // namespace netmon::routing
