#include "util/page_alloc.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <span>
#include <utility>

namespace netmon::util {
namespace {

TEST(PageAllocTest, LargeVectorRoundTripsValues) {
  // Well past kPageAllocThresholdBytes -> dedicated-mapping path.
  const std::size_t n = 1 << 16;
  PageVector<double> v(n);
  std::iota(v.begin(), v.end(), 0.0);
  for (std::size_t i = 0; i < n; i += 4097) {
    EXPECT_EQ(v[i], static_cast<double>(i));
  }
}

TEST(PageAllocTest, SmallVectorRoundTripsValues) {
  // Below the threshold -> operator new path.
  PageVector<double> v(16, 2.5);
  for (const double x : v) EXPECT_EQ(x, 2.5);
}

TEST(PageAllocTest, GrowthAcrossThresholdPreservesContents) {
  PageVector<double> v;
  for (std::size_t i = 0; i < 10000; ++i) v.push_back(static_cast<double>(i));
  for (std::size_t i = 0; i < v.size(); i += 997) {
    EXPECT_EQ(v[i], static_cast<double>(i));
  }
}

TEST(PageAllocTest, MoveAndSwapTransferStorage) {
  PageVector<double> a(5000, 1.0);
  const double* data = a.data();
  PageVector<double> b = std::move(a);
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(b[4999], 1.0);

  PageVector<double> c(10, 3.0);
  std::swap(b, c);
  EXPECT_EQ(c.data(), data);
  EXPECT_EQ(b.size(), 10u);
}

TEST(PageAllocTest, SpanViewsWork) {
  PageVector<double> v(4096, 7.0);
  const std::span<const double> s{v.data(), v.size()};
  EXPECT_EQ(s.size(), 4096u);
  EXPECT_EQ(s[4095], 7.0);
}

TEST(PageAllocTest, AllocatorsCompareEqual) {
  EXPECT_TRUE((PageAllocator<double>{} == PageAllocator<double>{}));
}

}  // namespace
}  // namespace netmon::util
