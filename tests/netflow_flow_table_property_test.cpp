// Randomized stress tests of the flow cache: whatever the event sequence,
// the accounting must balance and the configured limits must hold.
#include <gtest/gtest.h>

#include <map>

#include "netflow/flow_table.hpp"
#include "util/rng.hpp"

namespace netmon::netflow {
namespace {

traffic::FlowKey key(std::uint32_t n) {
  traffic::FlowKey k;
  k.src_ip = n * 2654435761u;
  k.dst_ip = ~k.src_ip;
  k.src_port = static_cast<std::uint16_t>(n);
  return k;
}

class FlowTableStress : public ::testing::TestWithParam<int> {};

TEST_P(FlowTableStress, AccountingAlwaysBalances) {
  Rng rng(9000 + GetParam());
  FlowTableOptions options;
  options.idle_timeout_sec = 5.0 + rng.below(40);
  options.active_timeout_sec = 20.0 + rng.below(200);
  options.max_entries = rng.bernoulli(0.5) ? 0 : 8 + rng.below(64);

  std::uint64_t exported_packets = 0;
  std::uint64_t exported_bytes = 0;

  FlowTable table(3, options, [&](const FlowRecord& r) {
    EXPECT_GE(r.sampled_packets, 1u);
    EXPECT_LE(r.start_sec, r.end_sec);
    EXPECT_EQ(r.input_link, 3u);
    exported_packets += r.sampled_packets;
    exported_bytes += r.sampled_bytes;
  });

  std::uint64_t observed_packets = 0;
  std::uint64_t observed_bytes = 0;
  double now = 0.0;
  const int events = 3000;
  const std::uint32_t distinct = 1 + static_cast<std::uint32_t>(rng.below(80));
  for (int e = 0; e < events; ++e) {
    now += rng.uniform(0.0, 2.0);
    const auto bytes = static_cast<std::uint32_t>(40 + rng.below(1460));
    const bool fin = rng.bernoulli(0.05);
    table.observe(key(static_cast<std::uint32_t>(rng.below(distinct))),
                  bytes, now, fin);
    ++observed_packets;
    observed_bytes += bytes;
    if (options.max_entries > 0) {
      ASSERT_LE(table.size(), options.max_entries);
    }
  }
  table.flush(now);
  EXPECT_EQ(table.size(), 0u);
  // Conservation: every observed packet/byte is exported exactly once.
  EXPECT_EQ(exported_packets, observed_packets);
  EXPECT_EQ(exported_bytes, observed_bytes);
}

TEST_P(FlowTableStress, ExpiredRecordsRespectTimeouts) {
  Rng rng(9500 + GetParam());
  FlowTableOptions options;
  options.idle_timeout_sec = 10.0;
  options.active_timeout_sec = 60.0;

  double now = 0.0;
  FlowTable table(0, options, [&](const FlowRecord& r) {
    // A record only expires idle (>=10s since last packet), over-age
    // (>=60s since first), FIN-terminated, or via the final flush — in
    // this scenario there is no cache pressure and no flush until the
    // end, so any export before the flush satisfies one of the first
    // three. We can at least assert span sanity:
    EXPECT_LE(r.end_sec - r.start_sec, 60.0 + 2.0 + 1e-9);
    (void)now;
  });

  for (int e = 0; e < 2000; ++e) {
    now += rng.uniform(0.0, 1.5);
    table.observe(key(static_cast<std::uint32_t>(rng.below(10))),
                  100, now, rng.bernoulli(0.02));
  }
  table.flush(now);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FlowTableStress, ::testing::Range(0, 10));

}  // namespace
}  // namespace netmon::netflow
