#include "netflow/adaptive.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace netmon::netflow {
namespace {

traffic::FlowKey key(std::uint32_t n) {
  traffic::FlowKey k;
  k.src_ip = n;
  k.dst_ip = ~n;
  return k;
}

AdaptiveOptions small_budget() {
  AdaptiveOptions options;
  options.entry_budget = 16;
  options.table.idle_timeout_sec = 1e6;  // nothing expires on its own
  return options;
}

TEST(AdaptiveMonitor, NoAdaptationUnderLightLoad) {
  std::size_t exported = 0;
  AdaptiveMonitor monitor(0, 0.5, small_budget(),
                          [&](const FlowRecord&) { ++exported; }, 1);
  // Few distinct flows: the table never exceeds the budget.
  for (int i = 0; i < 1000; ++i) monitor.offer(key(i % 8), 100, i * 1e-3);
  EXPECT_DOUBLE_EQ(monitor.current_rate(), 0.5);
  EXPECT_EQ(monitor.adaptations(), 0u);
}

TEST(AdaptiveMonitor, BacksOffUnderCachePressure) {
  AdaptiveMonitor monitor(0, 1.0, small_budget(),
                          [](const FlowRecord&) {}, 1);
  // A flood of distinct flows blows through the 16-entry budget.
  for (int i = 0; i < 5000; ++i) monitor.offer(key(i), 100, i * 1e-4);
  EXPECT_LT(monitor.current_rate(), 1.0);
  EXPECT_GE(monitor.adaptations(), 1u);
  // The rate halves each adaptation.
  EXPECT_NEAR(monitor.current_rate(),
              std::pow(0.5, static_cast<double>(monitor.adaptations())),
              1e-12);
}

TEST(AdaptiveMonitor, RateNeverFallsBelowFloor) {
  AdaptiveOptions options = small_budget();
  options.min_rate = 0.2;
  AdaptiveMonitor monitor(0, 1.0, options, [](const FlowRecord&) {}, 1);
  for (int i = 0; i < 100000; ++i) monitor.offer(key(i), 100, i * 1e-5);
  EXPECT_GE(monitor.current_rate(), 0.2);
}

TEST(AdaptiveMonitor, EstimateStaysUnbiasedAcrossEpochs) {
  // Per-epoch renormalization: the estimated offered volume must track
  // the true offered volume even though the rate changed mid-stream.
  // Realistic router config: the cache also evicts (bounded table) and
  // the rate floor keeps the final epoch statistically meaningful.
  AdaptiveOptions options;
  options.entry_budget = 64;
  options.table.max_entries = 128;  // hard eviction above the soft budget
  options.min_rate = 0.02;
  double total_ratio = 0.0;
  const int reps = 10;
  for (int rep = 0; rep < reps; ++rep) {
    AdaptiveMonitor monitor(0, 1.0, options, [](const FlowRecord&) {},
                            100 + rep);
    const int offered = 50000;
    for (int i = 0; i < offered; ++i) monitor.offer(key(i), 100, i * 1e-4);
    EXPECT_GE(monitor.adaptations(), 1u);
    total_ratio += monitor.estimated_offered() / offered;
  }
  EXPECT_NEAR(total_ratio / reps, 1.0, 0.1);
}

TEST(AdaptiveMonitor, EpochBookkeepingConsistent) {
  AdaptiveMonitor monitor(0, 1.0, small_budget(), [](const FlowRecord&) {},
                          7);
  for (int i = 0; i < 3000; ++i) monitor.offer(key(i), 100, i * 1e-4);
  std::uint64_t offered = 0, sampled = 0;
  for (const RateEpoch& epoch : monitor.epochs()) {
    offered += epoch.offered;
    sampled += epoch.sampled;
    EXPECT_LE(epoch.sampled, epoch.offered);
  }
  EXPECT_EQ(offered, monitor.offered_packets());
  EXPECT_EQ(sampled, monitor.sampled_packets());
}

TEST(AdaptiveMonitor, ValidatesOptions) {
  AdaptiveOptions bad = small_budget();
  bad.backoff = 1.0;
  EXPECT_THROW(AdaptiveMonitor(0, 0.5, bad, [](const FlowRecord&) {}, 1),
               Error);
  AdaptiveOptions zero = small_budget();
  zero.entry_budget = 0;
  EXPECT_THROW(AdaptiveMonitor(0, 0.5, zero, [](const FlowRecord&) {}, 1),
               Error);
}

}  // namespace
}  // namespace netmon::netflow
