#include "sampling/effective_rate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "util/error.hpp"

namespace netmon::sampling {
namespace {

routing::RoutingMatrix line_matrix() {
  static const topo::Graph g = test::line_graph();
  return routing::RoutingMatrix::single_path(g, {{0, 3}, {0, 1}});
}

TEST(EffectiveRate, SingleMonitorExactEqualsRate) {
  const auto m = line_matrix();
  RateVector rates(6, 0.0);
  rates[0] = 0.02;  // A->B, on both paths
  EXPECT_NEAR(effective_rate_exact(m, 1, rates), 0.02, 1e-15);
  EXPECT_NEAR(effective_rate_approx(m, 1, rates), 0.02, 1e-15);
}

TEST(EffectiveRate, MultiMonitorUnionProbability) {
  const auto m = line_matrix();
  RateVector rates(6, 0.0);
  // OD 0 crosses links A->B, B->C, C->D (even link ids 0,2,4).
  rates[0] = 0.1;
  rates[2] = 0.2;
  rates[4] = 0.3;
  const double exact = effective_rate_exact(m, 0, rates);
  EXPECT_NEAR(exact, 1.0 - 0.9 * 0.8 * 0.7, 1e-12);
  EXPECT_NEAR(effective_rate_approx(m, 0, rates), 0.6, 1e-12);
  // Approx always overestimates (union bound).
  EXPECT_GT(effective_rate_approx(m, 0, rates), exact);
}

TEST(EffectiveRate, ApproxTightAtLowRates) {
  const auto m = line_matrix();
  RateVector rates(6, 0.0);
  rates[0] = 1e-3;
  rates[2] = 2e-3;
  const double exact = effective_rate_exact(m, 0, rates);
  const double approx = effective_rate_approx(m, 0, rates);
  EXPECT_NEAR(approx / exact, 1.0, 2e-3);  // paper §IV-B's regime
}

TEST(EffectiveRate, RateOneCaptureseverything) {
  const auto m = line_matrix();
  RateVector rates(6, 0.0);
  rates[2] = 1.0;
  EXPECT_DOUBLE_EQ(effective_rate_exact(m, 0, rates), 1.0);
}

TEST(EffectiveRate, ZeroRatesZeroEffective) {
  const auto m = line_matrix();
  const RateVector rates(6, 0.0);
  EXPECT_DOUBLE_EQ(effective_rate_exact(m, 0, rates), 0.0);
  EXPECT_DOUBLE_EQ(effective_rate_approx(m, 0, rates), 0.0);
}

TEST(EffectiveRate, BatchMatchesScalar) {
  const auto m = line_matrix();
  RateVector rates(6, 0.005);
  const auto exact = effective_rates_exact(m, rates);
  const auto approx = effective_rates_approx(m, rates);
  ASSERT_EQ(exact.size(), 2u);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_DOUBLE_EQ(exact[k], effective_rate_exact(m, k, rates));
    EXPECT_DOUBLE_EQ(approx[k], effective_rate_approx(m, k, rates));
  }
}

TEST(EffectiveRate, LinearizationErrorGrowsWithRates) {
  const auto m = line_matrix();
  RateVector low(6, 1e-3), high(6, 0.2);
  EXPECT_LT(max_linearization_error(m, low),
            max_linearization_error(m, high));
  EXPECT_GT(max_linearization_error(m, high), 0.0);
}

TEST(EffectiveRate, ValidatesInput) {
  const auto m = line_matrix();
  RateVector bad(6, -0.1);
  EXPECT_THROW(effective_rate_exact(m, 0, bad), Error);
  RateVector short_vec(1, 0.0);
  EXPECT_THROW(effective_rate_approx(m, 0, short_vec), Error);
}

TEST(EffectiveRate, EcmpFractionalExponent) {
  const topo::Graph g = test::diamond_graph();
  const auto m = routing::RoutingMatrix::ecmp(g, {{0, 3}});
  RateVector rates(g.link_count(), 0.0);
  rates[*g.find_link(0, 1)] = 0.4;  // branch X, fraction 1/2
  // Exact: 1 - (1-0.4)^(1/2).
  EXPECT_NEAR(effective_rate_exact(m, 0, rates), 1.0 - std::sqrt(0.6), 1e-12);
  EXPECT_NEAR(effective_rate_approx(m, 0, rates), 0.2, 1e-12);
}

}  // namespace
}  // namespace netmon::sampling
