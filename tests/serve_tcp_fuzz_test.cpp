// Frame reassembly fuzzing (satellite of the TCP transport): a valid
// byte stream chopped into ANY segmentation must yield the same frames
// in the same order as whole-frame delivery, and corrupt streams must be
// rejected at the earliest impossible byte, never over-read, and never
// produce a phantom frame. Mirrors the pcap/netflow fuzz suites.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "serve/tcp_transport.hpp"
#include "serve/wire.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace netmon::serve {
namespace {

Request sample_request(std::uint64_t id) {
  Request request;
  request.id = id;
  request.kind = RequestKind::kWhatIfBatch;
  request.tenant = "tenant-" + std::to_string(id % 3);
  request.theta = 50000.0 + static_cast<double>(id);
  request.failed = {1, 4};
  request.what_if = {{2}, {3, 5}};
  request.warm_start = {0.0, 0.25, 0.5};
  request.iteration_budget = 100;
  return request;
}

/// The concatenated wire bytes of `count` distinct request frames.
std::vector<std::uint8_t> sample_stream(std::size_t count) {
  std::vector<std::uint8_t> stream;
  for (std::size_t i = 0; i < count; ++i) {
    const std::vector<std::uint8_t> frame =
        encode_request(sample_request(100 + i));
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  return stream;
}

/// Feeds `stream` in the given chunk sizes, collecting decoded ids.
std::vector<std::uint64_t> feed_chunked(FrameAssembler& assembler,
                                        std::span<const std::uint8_t> stream,
                                        const std::vector<std::size_t>& cuts) {
  std::vector<std::uint64_t> ids;
  std::size_t at = 0;
  for (const std::size_t len : cuts) {
    assembler.feed(stream.subspan(at, len),
                   [&](std::span<const std::uint8_t> frame) {
                     ids.push_back(decode_request(frame).id);
                   });
    at += len;
  }
  EXPECT_EQ(at, stream.size());
  return ids;
}

class TcpFuzzSeed : public ::testing::TestWithParam<int> {};

TEST_P(TcpFuzzSeed, RandomSegmentationDecodesIdenticallyToWholeFrames) {
  Rng rng(52000 + GetParam());
  const std::vector<std::uint8_t> stream = sample_stream(5);

  // Reference: the whole stream in one feed.
  FrameAssembler whole;
  std::vector<std::uint64_t> expected;
  whole.feed(stream, [&](std::span<const std::uint8_t> frame) {
    expected.push_back(decode_request(frame).id);
  });
  ASSERT_EQ(expected.size(), 5u);
  EXPECT_EQ(whole.buffered(), 0u);

  for (int round = 0; round < 50; ++round) {
    std::vector<std::size_t> cuts;
    std::size_t remaining = stream.size();
    while (remaining > 0) {
      const std::size_t len = 1 + rng.below(std::min<std::size_t>(
                                      remaining, 1 + rng.below(64)));
      cuts.push_back(len);
      remaining -= len;
    }
    FrameAssembler assembler;
    EXPECT_EQ(feed_chunked(assembler, stream, cuts), expected);
    EXPECT_EQ(assembler.buffered(), 0u);
  }
}

TEST_P(TcpFuzzSeed, ByteAtATimeEqualsWholeFrames) {
  const std::vector<std::uint8_t> stream = sample_stream(3);
  FrameAssembler assembler;
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < stream.size(); ++i)
    assembler.feed(std::span(&stream[i], 1),
                   [&](std::span<const std::uint8_t> frame) {
                     ids.push_back(decode_request(frame).id);
                   });
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{100, 101, 102}));
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(TcpFrameAssembler, EveryTruncationYieldsNoFrameAndNoThrow) {
  const std::vector<std::uint8_t> frame = encode_request(sample_request(7));
  for (std::size_t len = 0; len < frame.size(); ++len) {
    FrameAssembler assembler;
    std::size_t delivered = 0;
    assembler.feed(std::span(frame.data(), len),
                   [&](std::span<const std::uint8_t>) { ++delivered; });
    // A truncated prefix of a valid frame is simply incomplete: nothing
    // delivered, bytes retained for the rest of the stream.
    EXPECT_EQ(delivered, 0u) << "prefix length " << len;
    EXPECT_EQ(assembler.buffered(), len);
  }
}

TEST(TcpFrameAssembler, HeaderBitFlipsAreRejectedBeforeTheBody) {
  const std::vector<std::uint8_t> frame = encode_request(sample_request(9));
  // Magic, version, and type live in bytes 0..3: any flip there must
  // throw as soon as the byte is seen.
  for (std::size_t at = 0; at < 4; ++at) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> mutated = frame;
      mutated[at] ^= static_cast<std::uint8_t>(1u << bit);
      FrameAssembler assembler;
      std::size_t delivered = 0;
      EXPECT_THROW(
          assembler.feed(mutated,
                         [&](std::span<const std::uint8_t>) { ++delivered; }),
          Error)
          << "byte " << at << " bit " << bit;
      EXPECT_EQ(delivered, 0u);
    }
  }
}

TEST_P(TcpFuzzSeed, RandomBodyBitFlipsNeverCrashOrOverRead) {
  Rng rng(53000 + GetParam());
  const std::vector<std::uint8_t> frame = encode_request(sample_request(11));
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> mutated = frame;
    // Flip inside the body (the header is covered exhaustively above).
    const std::size_t at =
        kWireHeaderSize + rng.below(mutated.size() - kWireHeaderSize);
    mutated[at] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    FrameAssembler assembler;
    try {
      assembler.feed(mutated, [&](std::span<const std::uint8_t> body) {
        // If framing still holds, decoding either succeeds (the flip hit
        // a payload value) or throws a typed Error — never crashes.
        try {
          const Request decoded = decode_request(body);
          EXPECT_LE(decoded.failed.size(), kWireMaxCount);
        } catch (const Error&) {
        }
      });
    } catch (const Error&) {
      // A flip in the length field can make the prefix invalid: a typed
      // reject is the transport's close-connection path.
    }
  }
}

TEST(TcpFrameAssembler, AbsurdLengthPrefixThrowsImmediately) {
  std::vector<std::uint8_t> frame = encode_request(sample_request(13));
  // body length (bytes 4..7) forced past kWireMaxBody.
  frame[4] = 0xFF;
  frame[5] = 0xFF;
  frame[6] = 0xFF;
  frame[7] = 0xFF;
  FrameAssembler assembler;
  EXPECT_THROW(
      assembler.feed(std::span(frame.data(), kWireHeaderSize),
                     [](std::span<const std::uint8_t>) { FAIL(); }),
      Error);
}

TEST(TcpFrameAssembler, GarbageAfterValidFramesIsRejectedAtItsFirstByte) {
  std::vector<std::uint8_t> stream = sample_stream(2);
  const std::size_t valid = stream.size();
  stream.push_back('X');  // not 'N', not a plausible legacy length byte
  FrameAssembler assembler;
  std::vector<std::uint64_t> ids;
  EXPECT_THROW(assembler.feed(stream,
                              [&](std::span<const std::uint8_t> frame) {
                                ids.push_back(decode_request(frame).id);
                              }),
               Error);
  // Both complete frames were delivered before the corrupt byte killed
  // the stream.
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{100, 101}));
  (void)valid;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TcpFuzzSeed, ::testing::Range(0, 5));

}  // namespace
}  // namespace netmon::serve
