#include "control/actuator.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace netmon::control {
namespace {

TEST(Actuator, GainAboveThresholdPushes) {
  const Actuator actuator;  // min_utility_gain = 1e-3
  ActuationInput input;
  input.incumbent_utility = 10.0;
  input.fresh_utility = 10.5;
  const Actuation out = actuator.decide(input);
  EXPECT_TRUE(out.push);
  EXPECT_FALSE(out.forced);
  EXPECT_DOUBLE_EQ(out.utility_gain, 0.5);
}

TEST(Actuator, GainExactlyAtThresholdPushes) {
  ActuatorConfig config;
  config.min_utility_gain = 0.25;
  const Actuator actuator(config);
  ActuationInput input;
  input.incumbent_utility = 10.0;
  input.fresh_utility = 10.25;  // gain == threshold: >= pushes
  EXPECT_TRUE(actuator.decide(input).push);
  input.fresh_utility = 10.2499;
  EXPECT_FALSE(actuator.decide(input).push);
}

TEST(Actuator, NegligibleOrNegativeGainHolds) {
  const Actuator actuator;
  ActuationInput input;
  input.incumbent_utility = 10.0;
  input.fresh_utility = 10.0005;
  EXPECT_FALSE(actuator.decide(input).push);
  input.fresh_utility = 9.0;  // a worse optimum never replaces a better run
  const Actuation out = actuator.decide(input);
  EXPECT_FALSE(out.push);
  EXPECT_DOUBLE_EQ(out.utility_gain, -1.0);
}

TEST(Actuator, ForcedPushOverridesGainAndCooldown) {
  ActuatorConfig config;
  config.min_utility_gain = 1.0;
  config.cooldown_bins = 100;
  const Actuator actuator(config);
  ActuationInput input;
  input.incumbent_utility = 10.0;
  input.fresh_utility = 9.0;  // negative gain
  input.forced = true;        // contract repair: push anyway
  input.bins_since_push = 0;  // deep inside the cooldown: push anyway
  const Actuation out = actuator.decide(input);
  EXPECT_TRUE(out.push);
  EXPECT_TRUE(out.forced);
}

TEST(Actuator, CooldownDampsOscillation) {
  ActuatorConfig config;
  config.min_utility_gain = 0.1;
  config.cooldown_bins = 3;
  const Actuator actuator(config);
  // Oscillating traffic keeps producing threshold-clearing gains; the
  // cooldown admits at most one push per 3 bins.
  int pushes = 0;
  int bins_since_push = 100;
  for (int bin = 0; bin < 12; ++bin) {
    ActuationInput input;
    input.incumbent_utility = 10.0;
    input.fresh_utility = 11.0;  // always clears the threshold
    input.bins_since_push = bins_since_push;
    if (actuator.decide(input).push) {
      ++pushes;
      bins_since_push = 0;
    }
    ++bins_since_push;
  }
  EXPECT_EQ(pushes, 4);  // bins 0, 3, 6, 9 — not all 12
}

TEST(Actuator, RejectsMalformedConfig) {
  ActuatorConfig bad;
  bad.min_utility_gain = -1.0;
  EXPECT_THROW(Actuator{bad}, Error);
  bad = ActuatorConfig{};
  bad.cooldown_bins = -1;
  EXPECT_THROW(Actuator{bad}, Error);
}

}  // namespace
}  // namespace netmon::control
