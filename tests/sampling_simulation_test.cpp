#include "sampling/simulation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "helpers.hpp"
#include "traffic/flow_generator.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace netmon::sampling {
namespace {

struct LineScenario {
  topo::Graph graph = test::line_graph();
  routing::RoutingMatrix matrix =
      routing::RoutingMatrix::single_path(graph, {{0, 3}, {0, 1}});
  std::vector<std::vector<traffic::Flow>> flows;
  RateVector rates;

  LineScenario() : rates(graph.link_count(), 0.0) {
    Rng rng(42);
    traffic::FlowGenOptions options;
    options.interval_sec = 300.0;
    flows.push_back(
        traffic::generate_flows(rng, {{0, 3}, 200.0}, 0, options));
    flows.push_back(
        traffic::generate_flows(rng, {{0, 1}, 400.0}, 1, options));
    rates[0] = 0.05;  // A->B: on both paths
    rates[2] = 0.03;  // B->C: only OD 0
  }
};

TEST(Simulation, FastPathExpectationSumMode) {
  LineScenario s;
  Rng rng(7);
  RunningStats ratio0, ratio1;
  for (int rep = 0; rep < 60; ++rep) {
    const auto counts = simulate_sampling(rng, s.matrix, s.flows, s.rates,
                                          CountMode::kSumAcrossMonitors);
    const double rho0 = effective_rate_approx(s.matrix, 0, s.rates);
    const double rho1 = effective_rate_approx(s.matrix, 1, s.rates);
    ratio0.add(counts[0].sampled_packets /
               (rho0 * counts[0].actual_packets));
    ratio1.add(counts[1].sampled_packets /
               (rho1 * counts[1].actual_packets));
  }
  // The estimator X/rho is unbiased against the linearized rate.
  EXPECT_NEAR(ratio0.mean(), 1.0, 0.01);
  EXPECT_NEAR(ratio1.mean(), 1.0, 0.01);
}

TEST(Simulation, FastPathExpectationDistinctMode) {
  LineScenario s;
  Rng rng(7);
  RunningStats ratio;
  for (int rep = 0; rep < 60; ++rep) {
    const auto counts = simulate_sampling(rng, s.matrix, s.flows, s.rates,
                                          CountMode::kDistinctPackets);
    const double rho = effective_rate_exact(s.matrix, 0, s.rates);
    ratio.add(counts[0].sampled_packets / (rho * counts[0].actual_packets));
  }
  EXPECT_NEAR(ratio.mean(), 1.0, 0.01);
}

TEST(Simulation, DistinctNeverExceedsSum) {
  LineScenario s;
  Rng a(3), b(3);
  // Same seed: not the same draws, but distinct-mode counts must be below
  // actual packets while sum-mode can exceed them only via double counts.
  const auto distinct = simulate_sampling(a, s.matrix, s.flows, s.rates,
                                          CountMode::kDistinctPackets);
  for (const auto& od : distinct)
    EXPECT_LE(od.sampled_packets, od.actual_packets);
  const auto sum = simulate_sampling(b, s.matrix, s.flows, s.rates,
                                     CountMode::kSumAcrossMonitors);
  EXPECT_GT(sum[0].sampled_packets, 0u);
}

TEST(Simulation, PerPacketAgreesWithFastPath) {
  LineScenario s;
  // Shrink the populations so the reference engine is cheap.
  for (auto& pop : s.flows) pop.resize(std::min<std::size_t>(pop.size(), 200));
  Rng fast_rng(11), slow_rng(11);
  RunningStats fast, slow;
  for (int rep = 0; rep < 25; ++rep) {
    const auto f = simulate_sampling(fast_rng, s.matrix, s.flows, s.rates,
                                     CountMode::kSumAcrossMonitors);
    const auto p = simulate_sampling_per_packet(
        slow_rng, s.matrix, s.flows, s.rates, CountMode::kSumAcrossMonitors);
    ASSERT_EQ(f[0].actual_packets, p[0].actual_packets);
    fast.add(static_cast<double>(f[0].sampled_packets));
    slow.add(static_cast<double>(p[0].sampled_packets));
  }
  // Same distribution: means within a few standard errors.
  const double se = std::sqrt((fast.variance() + slow.variance()) / 25.0);
  EXPECT_NEAR(fast.mean(), slow.mean(), 5.0 * se + 1.0);
}

TEST(Simulation, PerPacketDistinctRespectsDedup) {
  LineScenario s;
  for (auto& pop : s.flows) pop.resize(std::min<std::size_t>(pop.size(), 100));
  RateVector high(s.graph.link_count(), 0.0);
  high[0] = 0.9;
  high[2] = 0.9;
  Rng rng(5);
  const auto counts = simulate_sampling_per_packet(
      rng, s.matrix, s.flows, high, CountMode::kDistinctPackets);
  // With two 90% monitors, nearly every packet is sampled at least once
  // but never counted twice.
  EXPECT_LE(counts[0].sampled_packets, counts[0].actual_packets);
  EXPECT_GT(counts[0].sampled_packets, counts[0].actual_packets * 95 / 100);
}

TEST(Simulation, PeriodicSamplerApproximatesRandom) {
  LineScenario s;
  for (auto& pop : s.flows) pop.resize(std::min<std::size_t>(pop.size(), 300));
  Rng rng(5);
  const auto periodic = simulate_sampling_per_packet(
      rng, s.matrix, s.flows, s.rates, CountMode::kSumAcrossMonitors,
      SamplerKind::kPeriodic);
  std::uint64_t actual = periodic[0].actual_packets;
  const double rho = effective_rate_approx(s.matrix, 0, s.rates);
  EXPECT_NEAR(static_cast<double>(periodic[0].sampled_packets),
              rho * static_cast<double>(actual),
              0.2 * rho * static_cast<double>(actual) + 10.0);
}

TEST(Simulation, ParallelPreservesGroundTruthAndDoesNotAdvanceBase) {
  LineScenario s;
  Rng base(2024);
  const std::uint64_t probe = Rng(2024)();
  runtime::ThreadPool pool(4);
  const auto parallel =
      simulate_sampling(pool, base, s.matrix, s.flows, s.rates);

  ASSERT_EQ(parallel.size(), s.matrix.od_count());
  for (std::size_t k = 0; k < s.matrix.od_count(); ++k) {
    std::uint64_t actual = 0;
    for (const auto& f : s.flows[k]) actual += f.packets;
    EXPECT_EQ(parallel[k].actual_packets, actual);
  }
  // The base generator was only read (substreams), never advanced.
  EXPECT_EQ(base(), probe);
}

TEST(Simulation, ParallelBitIdenticalAcrossThreadCounts) {
  LineScenario s;
  const Rng base(99);
  auto run = [&](unsigned threads, CountMode mode) {
    runtime::ThreadPool pool(threads);
    return simulate_sampling(pool, base, s.matrix, s.flows, s.rates, mode);
  };
  for (const CountMode mode :
       {CountMode::kSumAcrossMonitors, CountMode::kDistinctPackets}) {
    const auto serial = run(1, mode);
    for (const unsigned threads : {2u, 4u, 8u}) {
      const auto parallel = run(threads, mode);
      ASSERT_EQ(parallel.size(), serial.size());
      for (std::size_t k = 0; k < serial.size(); ++k) {
        EXPECT_EQ(parallel[k].actual_packets, serial[k].actual_packets);
        EXPECT_EQ(parallel[k].sampled_packets, serial[k].sampled_packets);
      }
    }
  }
}

TEST(Simulation, ParallelRunsBitIdenticalAcrossThreadCounts) {
  LineScenario s;
  const Rng base(7);
  const int kRuns = 12;
  auto run = [&](unsigned threads) {
    runtime::ThreadPool pool(threads);
    return simulate_sampling_runs(pool, base, s.matrix, s.flows, s.rates,
                                  kRuns);
  };
  const auto serial = run(1);
  ASSERT_EQ(serial.size(), static_cast<std::size_t>(kRuns));
  for (const unsigned threads : {3u, 8u}) {
    const auto parallel = run(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t r = 0; r < serial.size(); ++r) {
      for (std::size_t k = 0; k < serial[r].size(); ++k) {
        EXPECT_EQ(parallel[r][k].sampled_packets,
                  serial[r][k].sampled_packets);
      }
    }
  }
}

TEST(Simulation, ParallelRunsAreIndependentExperiments) {
  LineScenario s;
  runtime::ThreadPool pool(2);
  const auto runs =
      simulate_sampling_runs(pool, Rng(7), s.matrix, s.flows, s.rates, 8);
  // Same ground truth every run, but the sampled counts differ across
  // runs (independent substreams).
  std::set<std::uint64_t> distinct;
  for (const auto& counts : runs) {
    EXPECT_EQ(counts[0].actual_packets, runs[0][0].actual_packets);
    distinct.insert(counts[0].sampled_packets);
  }
  EXPECT_GT(distinct.size(), 1u);
}

TEST(Simulation, ParallelUnbiasedAgainstLinearizedRate) {
  LineScenario s;
  runtime::ThreadPool pool(4);
  const auto runs = simulate_sampling_runs(pool, Rng(11), s.matrix, s.flows,
                                           s.rates, 60);
  const double rho0 = effective_rate_approx(s.matrix, 0, s.rates);
  RunningStats ratio;
  for (const auto& counts : runs) {
    ratio.add(counts[0].sampled_packets /
              (rho0 * counts[0].actual_packets));
  }
  EXPECT_NEAR(ratio.mean(), 1.0, 0.01);
}

TEST(Simulation, ValidatesAlignment) {
  LineScenario s;
  Rng rng(1);
  std::vector<std::vector<traffic::Flow>> wrong(1);
  EXPECT_THROW(simulate_sampling(rng, s.matrix, wrong, s.rates), Error);
}

TEST(Simulation, ZeroRatesSampleNothing) {
  LineScenario s;
  Rng rng(1);
  const RateVector zero(s.graph.link_count(), 0.0);
  const auto counts = simulate_sampling(rng, s.matrix, s.flows, zero);
  for (const auto& od : counts) EXPECT_EQ(od.sampled_packets, 0u);
}

}  // namespace
}  // namespace netmon::sampling
