// Fused evaluation layer: bit-identity of the scalar and SIMD kernel
// paths across topologies and utility pivot regimes, fused vs separate
// entry points, the line-search restriction, and the incremental
// inner-product (rho) maintenance.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/scenario.hpp"
#include "core/utility.hpp"
#include "opt/fused_eval.hpp"
#include "opt/gradient_projection.hpp"
#include "opt/line_search.hpp"
#include "opt/objective.hpp"
#include "util/rng.hpp"

namespace netmon::opt {
namespace {

// Restores the SIMD dispatch flag on scope exit so tests that sweep it
// cannot leak state into each other.
class DispatchGuard {
 public:
  DispatchGuard() : saved_(simd_dispatch_enabled()) {}
  ~DispatchGuard() { set_simd_dispatch(saved_); }

 private:
  bool saved_;
};

// A random separable objective: `n` variables, `terms` rows with 1-5
// nonzeros each, utility families mixed per `mix` (0 = all SRE — one
// maximal batch run, the SIMD-dispatch shape; 1 = SRE/log/detect/weighted
// interleaved — many short runs plus scalar-fallback runs).
struct RandomObjective {
  std::unique_ptr<SeparableConcaveObjective> f;
  std::vector<double> p;  // a random interior point

  RandomObjective(std::uint64_t seed, std::size_t n, std::size_t terms,
                  int mix) {
    Rng rng(seed);
    SeparableConcaveObjective::SparseRows rows(terms);
    std::vector<std::shared_ptr<const Concave1d>> utilities;
    for (std::size_t k = 0; k < terms; ++k) {
      const std::size_t nnz = 1 + rng.below(5);
      for (std::size_t i = 0; i < nnz; ++i)
        rows[k].emplace_back(rng.below(n), rng.uniform(0.1, 2.0));
      // c spans (0, 0.5]: pivots x0 = 3c/(1+c) from near 0 to 1, so the
      // interior points below land on both sides of the pivot.
      const double c = rng.uniform(0.01, 0.5);
      if (mix == 0) {
        utilities.push_back(std::make_shared<core::SreUtility>(c));
      } else {
        switch (rng.below(4)) {
          case 0:
            utilities.push_back(std::make_shared<core::SreUtility>(c));
            break;
          case 1:
            utilities.push_back(
                std::make_shared<core::LogUtility>(rng.uniform(0.01, 1.0)));
            break;
          case 2:
            utilities.push_back(std::make_shared<core::DetectionUtility>(
                2.0 + rng.uniform(0.0, 50.0)));
            break;
          default:
            utilities.push_back(std::make_shared<core::WeightedUtility>(
                std::make_shared<core::SreUtility>(c),
                rng.uniform(0.5, 3.0)));
        }
      }
    }
    f = std::make_unique<SeparableConcaveObjective>(n, std::move(rows),
                                                    std::move(utilities));
    for (std::size_t j = 0; j < n; ++j) p.push_back(rng.uniform(0.0, 0.4));
  }
};

void expect_fused_matches_virtuals(const SeparableConcaveObjective& f,
                                   std::span<const double> p) {
  const std::vector<double> x = f.inner(p);
  const std::size_t m = f.term_count();
  std::vector<double> v(m), m1(m), m2(m);
  f.fused_terms(x, v, m1, m2);
  for (std::size_t k = 0; k < m; ++k) {
    EXPECT_EQ(v[k], f.utility(k).value(x[k])) << "M @" << k;
    EXPECT_EQ(m1[k], f.utility(k).deriv(x[k])) << "M' @" << k;
    EXPECT_EQ(m2[k], f.utility(k).second(x[k])) << "M'' @" << k;
  }
}

TEST(FusedKernels, BatchedTermsMatchScalarVirtualsExactly) {
  DispatchGuard guard;
  for (const bool simd : {false, true}) {
    set_simd_dispatch(simd);
    const RandomObjective uniform(7, 40, 300, 0);
    expect_fused_matches_virtuals(*uniform.f, uniform.p);
    const RandomObjective mixed(11, 25, 200, 1);
    expect_fused_matches_virtuals(*mixed.f, mixed.p);
  }
}

TEST(FusedKernels, PivotRegimesBothSidesBitIdentical) {
  DispatchGuard guard;
  // One utility per c, probed strictly below and strictly above its
  // pivot — both select arms of the branch-free kernels.
  std::vector<std::shared_ptr<const Concave1d>> utilities;
  SeparableConcaveObjective::SparseRows rows;
  std::vector<double> p;
  for (const double c : {0.02, 0.1, 0.25, 0.4, 0.5}) {
    const double x0 = core::SreUtility::pivot_for(c);
    for (const double x : {0.25 * x0, 0.9 * x0, x0, 1.1 * x0, 2.0 * x0}) {
      utilities.push_back(std::make_shared<core::SreUtility>(c));
      rows.push_back({{p.size(), 1.0}});
      p.push_back(std::min(x, 1.0));
    }
  }
  const SeparableConcaveObjective f(p.size(), std::move(rows),
                                    std::move(utilities));
  const std::size_t m = f.term_count();
  std::vector<double> v_s(m), m1_s(m), m2_s(m), v_v(m), m1_v(m), m2_v(m);
  set_simd_dispatch(false);
  f.fused_terms(p, v_s, m1_s, m2_s);
  expect_fused_matches_virtuals(f, p);
  set_simd_dispatch(true);
  f.fused_terms(p, v_v, m1_v, m2_v);
  for (std::size_t k = 0; k < m; ++k) {
    EXPECT_EQ(v_s[k], v_v[k]) << "value @" << k;
    EXPECT_EQ(m1_s[k], m1_v[k]) << "deriv @" << k;
    EXPECT_EQ(m2_s[k], m2_v[k]) << "second @" << k;
  }
}

TEST(FusedKernels, ScalarVsSimdSweepAcrossTopologies) {
  DispatchGuard guard;
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  const auto& geant = problem.objective();
  const std::vector<double> geant_p = problem.constraints().initial_point();

  struct Case {
    const SeparableConcaveObjective* f;
    std::span<const double> p;
  };
  const RandomObjective r1(21, 60, 500, 0);
  const RandomObjective r2(22, 30, 250, 1);
  for (const Case& c : {Case{&geant, geant_p}, Case{r1.f.get(), r1.p},
                        Case{r2.f.get(), r2.p}}) {
    linalg::EvalWorkspace ws;
    std::vector<double> g_s(c.f->dimension()), g_v(c.f->dimension());
    set_simd_dispatch(false);
    const auto fe_s = c.f->fused_eval(c.p, g_s, ws);
    const double v_s = fe_s.value;
    set_simd_dispatch(true);
    const auto fe_v = c.f->fused_eval(c.p, g_v, ws);
    EXPECT_EQ(v_s, fe_v.value);
    for (std::size_t j = 0; j < g_s.size(); ++j)
      EXPECT_EQ(g_s[j], g_v[j]) << "gradient @" << j;
  }
}

TEST(FusedEval, MatchesSeparateEntryPointsBitwise) {
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  const auto& f = problem.objective();
  const std::vector<double> p = problem.constraints().initial_point();

  linalg::EvalWorkspace ws_fused, ws_ref;
  std::vector<double> g_fused(f.dimension()), g_ref(f.dimension());
  const auto fe = f.fused_eval(p, g_fused, ws_fused);
  EXPECT_EQ(fe.value, f.value(p, ws_ref));
  f.gradient(p, g_ref, ws_ref);
  for (std::size_t j = 0; j < g_ref.size(); ++j)
    EXPECT_EQ(g_fused[j], g_ref[j]) << "gradient @" << j;

  // The per-term spans feed the directional second derivative without
  // another term pass: compare against the separate entry point.
  std::vector<double> s(f.dimension());
  for (std::size_t j = 0; j < s.size(); ++j) s[j] = (j % 3 == 0) ? 1.0 : -0.25;
  const std::vector<double> rs = [&] {
    std::vector<double> out(f.term_count());
    linalg::spmv(f.matrix(), s, out);
    return out;
  }();
  const double fused_second = f.directional_second_from_terms(fe.m2, rs);
  const double ref_second = f.directional_second(p, s, ws_ref);
  EXPECT_EQ(fused_second, ref_second);
}

TEST(FusedEval, GradHessDiagMatchesSeparateScatters) {
  const RandomObjective r(33, 40, 300, 1);
  const auto& f = *r.f;
  linalg::EvalWorkspace ws;
  std::vector<double> g(f.dimension()), h(f.dimension());
  const auto fe = f.fused_eval(r.p, g, ws);
  std::vector<double> g2(f.dimension()), h2(f.dimension());
  f.grad_hess_diag_from_terms(fe.m1, fe.m2, g2, h2);
  // Gradient from the fused grad+hess scatter == plain spmv_t scatter.
  for (std::size_t j = 0; j < g.size(); ++j) EXPECT_EQ(g[j], g2[j]);
  // Hessian diagonal against a hand scatter over the pair rows.
  std::vector<double> h_ref(f.dimension(), 0.0);
  for (std::size_t k = 0; k < f.term_count(); ++k) {
    for (const auto& [col, coeff] : f.matrix().row(k))
      h_ref[col] += coeff * coeff * fe.m2[k];
  }
  for (std::size_t j = 0; j < h.size(); ++j) EXPECT_EQ(h2[j], h_ref[j]);
}

TEST(Restriction, MatchesGenericPhiAndSkipsUntouchedTerms) {
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  const auto& f = problem.objective();
  const std::vector<double> p = problem.constraints().initial_point();

  // A direction touching a few coordinates: most terms keep rd_k == 0.
  std::vector<double> d(f.dimension(), 0.0);
  d[0] = 1.0;
  d[f.dimension() / 2] = -0.5;

  const std::vector<double> x0 = f.inner(p);
  SeparableRestriction restriction;
  restriction.reset(f, x0, d);
  EXPECT_LT(restriction.active_terms(), f.term_count());
  EXPECT_GT(restriction.active_terms(), 0u);

  linalg::EvalWorkspace ws;
  GenericPhi generic(f, p, d, ws);
  for (const double t : {0.0, 1e-4, 5e-3}) {
    const Phi::Derivs a = restriction.derivs(t);
    const Phi::Derivs b = generic.derivs(t);
    // Same sums in different association orders: equal to rounding.
    EXPECT_NEAR(a.first, b.first,
                1e-12 * std::max(1.0, std::abs(b.first)));
    EXPECT_NEAR(a.second, b.second,
                1e-12 * std::max(1.0, std::abs(b.second)));
  }

  // Probes must not touch terms the direction leaves alone: the compact
  // sums equal full-width sums computed over every term.
  const Phi::Derivs at = restriction.derivs(1e-3);
  std::vector<double> xt(f.term_count()), rd(f.term_count());
  linalg::spmv(f.matrix(), d, rd);
  for (std::size_t k = 0; k < xt.size(); ++k) xt[k] = x0[k] + 1e-3 * rd[k];
  double first = 0.0, second = 0.0;
  for (std::size_t k = 0; k < xt.size(); ++k) {
    if (rd[k] == 0.0) continue;  // exact-zero contributions
    first += f.utility(k).deriv(xt[k]) * rd[k];
    second += f.utility(k).second(xt[k]) * rd[k] * rd[k];
  }
  EXPECT_EQ(at.first, first);
  EXPECT_EQ(at.second, second);
}

TEST(Restriction, SecondAtZeroUsesProvidedCurvature) {
  const RandomObjective r(44, 20, 120, 0);
  const auto& f = *r.f;
  const std::vector<double> x0 = f.inner(r.p);
  std::vector<double> d(f.dimension());
  Rng rng(5);
  for (double& dj : d) dj = rng.uniform(-1.0, 1.0);

  linalg::EvalWorkspace ws;
  std::vector<double> g(f.dimension());
  const auto fe = f.fused_eval(r.p, g, ws);

  SeparableRestriction with_m2, without_m2;
  with_m2.reset(f, x0, d, fe.m2);
  without_m2.reset(f, x0, d);
  EXPECT_EQ(with_m2.second_at_zero(), without_m2.second_at_zero());
}

TEST(IncrementalRho, ColumnAxpyMatchesFullRecompute) {
  const RandomObjective r(55, 30, 200, 1);
  const auto& f = *r.f;
  std::vector<double> x = f.inner(r.p);
  std::vector<double> p = r.p;

  Rng rng(6);
  for (int step = 0; step < 50; ++step) {
    const std::size_t j = rng.below(p.size());
    const double delta = rng.uniform(-0.05, 0.05);
    p[j] += delta;
    f.inner_axpy(j, delta, x);
  }
  const std::vector<double> exact = f.inner(p);
  for (std::size_t k = 0; k < x.size(); ++k)
    EXPECT_NEAR(x[k], exact[k], 1e-12 * std::max(1.0, std::abs(exact[k])))
        << "rho @" << k;
}

TEST(Solver, FusedAndGenericPathsAgree) {
  DispatchGuard guard;
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);

  SolverOptions fused, generic;
  fused.use_fused = true;
  generic.use_fused = false;
  const SolveResult a = maximize(problem.objective(), problem.constraints(),
                                 fused);
  const SolveResult b = maximize(problem.objective(), problem.constraints(),
                                 generic);
  EXPECT_EQ(a.status, SolveStatus::kOptimal);
  EXPECT_EQ(b.status, SolveStatus::kOptimal);
  EXPECT_NEAR(a.value, b.value, 1e-9 * std::abs(b.value));
  ASSERT_EQ(a.p.size(), b.p.size());
  for (std::size_t j = 0; j < a.p.size(); ++j)
    EXPECT_NEAR(a.p[j], b.p[j], 1e-7) << "rate @" << j;

  // The fused solve itself is dispatch-invariant: scalar and SIMD runs
  // take identical trajectories because the kernels are bit-identical.
  set_simd_dispatch(false);
  const SolveResult scalar_run =
      maximize(problem.objective(), problem.constraints(), fused);
  set_simd_dispatch(true);
  const SolveResult simd_run =
      maximize(problem.objective(), problem.constraints(), fused);
  EXPECT_EQ(scalar_run.value, simd_run.value);
  EXPECT_EQ(scalar_run.iterations, simd_run.iterations);
  for (std::size_t j = 0; j < scalar_run.p.size(); ++j)
    EXPECT_EQ(scalar_run.p[j], simd_run.p[j]) << "rate @" << j;
}

TEST(Solver, FusedPathHandlesOffsetsAndRandomInstances) {
  // Random instances with offsets (the sequential-linearization shape)
  // through both paths.
  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    Rng rng(seed);
    const std::size_t n = 12 + rng.below(20);
    const std::size_t terms = n + rng.below(40);
    SeparableConcaveObjective::SparseRows rows(terms);
    std::vector<std::shared_ptr<const Concave1d>> utilities;
    std::vector<double> offsets;
    for (std::size_t k = 0; k < terms; ++k) {
      const std::size_t nnz = 1 + rng.below(4);
      for (std::size_t i = 0; i < nnz; ++i)
        rows[k].emplace_back(rng.below(n), rng.uniform(0.2, 1.5));
      utilities.push_back(
          std::make_shared<core::SreUtility>(rng.uniform(0.02, 0.5)));
      offsets.push_back(rng.uniform(0.0, 0.05));
    }
    const SeparableConcaveObjective f(n, std::move(rows),
                                      std::move(utilities),
                                      std::move(offsets));
    std::vector<double> u(n), alpha(n, 1.0);
    double budget = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      u[j] = rng.uniform(0.5, 2.0);
      budget += u[j];
    }
    const BoxBudgetConstraints constraints(std::move(u), std::move(alpha),
                                           0.2 * budget);
    SolverOptions fused, generic;
    fused.use_fused = true;
    generic.use_fused = false;
    const SolveResult a = maximize(f, constraints, fused);
    const SolveResult b = maximize(f, constraints, generic);
    EXPECT_NEAR(a.value, b.value,
                1e-8 * std::max(1.0, std::abs(b.value)))
        << "seed " << seed;
    EXPECT_EQ(a.status, b.status) << "seed " << seed;
  }
}

}  // namespace
}  // namespace netmon::opt
