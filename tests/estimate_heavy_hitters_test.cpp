#include "estimate/heavy_hitters.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace netmon::estimate {
namespace {

netflow::FlowRecord record(std::uint32_t id, std::uint64_t sampled) {
  netflow::FlowRecord r;
  r.key.src_ip = id;
  r.key.dst_ip = ~id;
  r.sampled_packets = sampled;
  return r;
}

TEST(BinomialUpperTail, KnownValues) {
  EXPECT_DOUBLE_EQ(binomial_upper_tail(10, 0.5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_upper_tail(10, 0.5, 11), 0.0);
  // P(Bin(2, 0.5) >= 1) = 0.75; >= 2 is 0.25.
  EXPECT_NEAR(binomial_upper_tail(2, 0.5, 1), 0.75, 1e-12);
  EXPECT_NEAR(binomial_upper_tail(2, 0.5, 2), 0.25, 1e-12);
  // P(Bin(4, 0.5) >= 2) = 11/16.
  EXPECT_NEAR(binomial_upper_tail(4, 0.5, 2), 11.0 / 16.0, 1e-12);
  EXPECT_DOUBLE_EQ(binomial_upper_tail(5, 0.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(binomial_upper_tail(5, 1.0, 3), 1.0);
}

TEST(BinomialUpperTail, MatchesMonteCarlo) {
  Rng rng(42);
  const std::uint64_t n = 500;
  const double p = 0.02;
  const std::uint64_t j = 15;
  int hits = 0;
  const int reps = 200000;
  for (int r = 0; r < reps; ++r) hits += rng.binomial(n, p) >= j;
  const double analytic = binomial_upper_tail(n, p, j);
  EXPECT_NEAR(static_cast<double>(hits) / reps, analytic,
              5.0 * std::sqrt(analytic / reps) + 1e-4);
}

TEST(BinomialUpperTail, NormalApproximationRegime) {
  // Large n: approximation path. Sanity: tail at the mean ~ 0.5 and
  // decreasing in j.
  const std::uint64_t n = 1000000;
  const double p = 0.01;
  const double at_mean = binomial_upper_tail(n, p, 10000);
  EXPECT_NEAR(at_mean, 0.5, 0.01);
  EXPECT_GT(binomial_upper_tail(n, p, 9800), at_mean);
  EXPECT_LT(binomial_upper_tail(n, p, 10300), 0.01);
}

TEST(HeavyHitters, SeparatesElephantsFromMice) {
  // p=0.01, threshold 5000: a threshold flow yields ~50 samples. An
  // elephant with 120 samples (estimated 12000) is a confident hit; a
  // flow with 55 samples is not (could be a threshold flow).
  netflow::RecordBatch records{record(1, 120), record(2, 55), record(3, 3)};
  const auto hits = heavy_hitters(records, 0.01, 5000, 0.99);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].key.src_ip, 1u);
  EXPECT_NEAR(hits[0].estimated_packets, 12000.0, 1e-9);
  EXPECT_GT(hits[0].confidence, 0.99);
}

TEST(HeavyHitters, SortedByEstimatedSize) {
  netflow::RecordBatch records{record(1, 200), record(2, 500),
                               record(3, 300)};
  const auto hits = heavy_hitters(records, 0.01, 5000, 0.9);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].key.src_ip, 2u);
  EXPECT_EQ(hits[1].key.src_ip, 3u);
  EXPECT_EQ(hits[2].key.src_ip, 1u);
}

TEST(HeavyHitters, EndToEndDetectionRates) {
  // Simulate: 5000 mice (100 pkts) and 5 elephants (50000 pkts) sampled
  // at 1%. All elephants must be found; false positives must be rare.
  Rng rng(7);
  netflow::RecordBatch records;
  for (std::uint32_t f = 0; f < 5000; ++f)
    records.push_back(record(f, rng.binomial(100, 0.01)));
  for (std::uint32_t f = 0; f < 5; ++f)
    records.push_back(record(100000 + f, rng.binomial(50000, 0.01)));

  const auto hits = heavy_hitters(records, 0.01, 10000, 0.999);
  std::size_t elephants_found = 0, false_positives = 0;
  for (const HeavyHitter& hit : hits) {
    if (hit.key.src_ip >= 100000) ++elephants_found;
    else ++false_positives;
  }
  EXPECT_EQ(elephants_found, 5u);
  EXPECT_EQ(false_positives, 0u);
}

TEST(HeavyHitters, Validation) {
  netflow::RecordBatch records{record(1, 10)};
  EXPECT_THROW(heavy_hitters(records, 0.0, 100), netmon::Error);
  EXPECT_THROW(heavy_hitters(records, 0.5, 0), netmon::Error);
  EXPECT_THROW(heavy_hitters(records, 0.5, 100, 1.5), netmon::Error);
}

}  // namespace
}  // namespace netmon::estimate
