#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>

#include "util/error.hpp"

namespace netmon::runtime {
namespace {

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
  EXPECT_GE(resolve_threads(0), 1u);  // hardware_concurrency, at least 1
  EXPECT_LE(resolve_threads(0), kMaxThreads);
  // Explicit requests clamp to the cap instead of being taken literally:
  // resolve_threads(-1 cast to unsigned) must not spawn 4 billion workers.
  EXPECT_EQ(resolve_threads(kMaxThreads), kMaxThreads);
  EXPECT_EQ(resolve_threads(kMaxThreads + 1), kMaxThreads);
  EXPECT_EQ(resolve_threads(static_cast<unsigned>(-1)), kMaxThreads);
}

TEST(ThreadPool, ThreadsFromEnvParsesOverride) {
  ASSERT_EQ(setenv("NETMON_THREADS", "3", 1), 0);
  EXPECT_EQ(threads_from_env(), 3u);
  ASSERT_EQ(setenv("NETMON_THREADS", "not-a-number", 1), 0);
  EXPECT_EQ(threads_from_env(), resolve_threads(0));
  // Negative values must not wrap into a gigantic unsigned thread count
  // (strtoul accepts "-2" as ULONG_MAX - 1); they fall back to the
  // hardware default.
  ASSERT_EQ(setenv("NETMON_THREADS", "-2", 1), 0);
  EXPECT_EQ(threads_from_env(), resolve_threads(0));
  ASSERT_EQ(setenv("NETMON_THREADS", "-1", 1), 0);
  EXPECT_EQ(threads_from_env(), resolve_threads(0));
  ASSERT_EQ(unsetenv("NETMON_THREADS"), 0);
  EXPECT_EQ(threads_from_env(), resolve_threads(0));
}

TEST(ThreadPool, ThreadsFromEnvClampsAbsurdValues) {
  // Absurdly large values — including ones that overflow unsigned long —
  // clamp to the cap instead of being rejected or taken literally.
  ASSERT_EQ(setenv("NETMON_THREADS", "4097", 1), 0);
  EXPECT_EQ(threads_from_env(), kMaxThreads);
  ASSERT_EQ(setenv("NETMON_THREADS", "999999999999", 1), 0);
  EXPECT_EQ(threads_from_env(), kMaxThreads);
  ASSERT_EQ(setenv("NETMON_THREADS",
                   "99999999999999999999999999999999999999", 1), 0);
  EXPECT_EQ(threads_from_env(), kMaxThreads);
  // The cap itself and values below it are honored exactly.
  ASSERT_EQ(setenv("NETMON_THREADS", "4096", 1), 0);
  EXPECT_EQ(threads_from_env(), kMaxThreads);
  ASSERT_EQ(setenv("NETMON_THREADS", "2", 1), 0);
  EXPECT_EQ(threads_from_env(), 2u);
  // "0" keeps its knob meaning: hardware default.
  ASSERT_EQ(setenv("NETMON_THREADS", "0", 1), 0);
  EXPECT_EQ(threads_from_env(), resolve_threads(0));
  ASSERT_EQ(unsetenv("NETMON_THREADS"), 0);
}

TEST(ThreadPool, StartStopRepeatedly) {
  for (int i = 0; i < 20; ++i) {
    ThreadPool pool(2);
    EXPECT_EQ(pool.size(), 2u);
  }
}

TEST(ThreadPool, RunsSubmittedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    TaskGroup group(pool);
    for (int i = 0; i < 100; ++i)
      group.run([&counter] { counter.fetch_add(1); });
    group.wait();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i)
      pool.submit([&counter] { counter.fetch_add(1); });
    // No explicit wait: the destructor must run every submitted task.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, OversubscriptionManyMoreTasksThanThreads) {
  std::atomic<std::int64_t> sum{0};
  ThreadPool pool(2);
  TaskGroup group(pool);
  for (int i = 1; i <= 5000; ++i)
    group.run([&sum, i] { sum.fetch_add(i); });
  group.wait();
  EXPECT_EQ(sum.load(), 5000LL * 5001 / 2);
}

TEST(ThreadPool, TasksRunOnWorkersOrTheHelpingWaiter) {
  // wait() is a helping wait: a task runs either on one of the 3 workers
  // or on the waiting thread itself (claimed before a worker got to it)
  // — never anywhere else.
  ThreadPool pool(3);
  std::mutex mutex;
  std::set<std::thread::id> ids;
  TaskGroup group(pool);
  for (int i = 0; i < 64; ++i) {
    group.run([&] {
      std::lock_guard<std::mutex> lock(mutex);
      ids.insert(std::this_thread::get_id());
    });
  }
  group.wait();
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 4u);  // 3 workers + the helping waiter
}

TEST(ThreadPool, HelpingWaitIsSafeUnderACallerHeldLock) {
  // Regression: the helping wait must only run THIS group's tasks. If it
  // popped arbitrary queued work, an unrelated task locking `mutex` could
  // run on the waiter while the waiter holds it — same-thread relock.
  ThreadPool pool(1);
  std::mutex mutex;
  int shared = 0;
  // Keep the lone worker busy so unrelated work stays queued while the
  // group below waits.
  TaskGroup blocker(pool);
  std::atomic<bool> release{false};
  blocker.run([&] {
    while (!release.load()) std::this_thread::yield();
  });
  // Unrelated work that locks `mutex` — queued behind the blocker.
  TaskGroup unrelated(pool);
  for (int i = 0; i < 8; ++i) {
    unrelated.run([&] {
      std::lock_guard<std::mutex> lock(mutex);
      ++shared;
    });
  }
  {
    // Wait on our own group WHILE holding the mutex the unrelated tasks
    // need. The helper must drain only its own slots.
    std::lock_guard<std::mutex> lock(mutex);
    TaskGroup mine(pool);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) mine.run([&] { ran.fetch_add(1); });
    mine.wait();
    EXPECT_EQ(ran.load(), 8);
  }
  release.store(true);
  unrelated.wait();
  EXPECT_EQ(shared, 8);
}

TEST(TaskGroup, PropagatesFirstException) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> completed{0};
  for (int i = 0; i < 10; ++i) {
    group.run([&completed, i] {
      if (i == 3) throw std::runtime_error("task 3 failed");
      completed.fetch_add(1);
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(completed.load(), 9);  // the other tasks still ran
}

TEST(TaskGroup, UsableAfterExceptionalWait) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.run([] { throw Error("boom"); });
  EXPECT_THROW(group.wait(), Error);

  std::atomic<int> counter{0};
  group.run([&counter] { counter.fetch_add(1); });
  EXPECT_NO_THROW(group.wait());  // error was consumed by the first wait
  EXPECT_EQ(counter.load(), 1);
}

TEST(TaskGroup, WaitOnEmptyGroupReturnsImmediately) {
  ThreadPool pool(1);
  TaskGroup group(pool);
  EXPECT_NO_THROW(group.wait());
}

TEST(ThreadPool, SubmitNullTaskThrows) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), Error);
}

}  // namespace
}  // namespace netmon::runtime
