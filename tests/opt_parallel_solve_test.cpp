// Intra-solve parallelism (SolverOptions::pool): the sharded evaluation
// path must be BIT-IDENTICAL to the serial solver — not merely stable
// across thread counts — because order-sensitive reductions stay serial
// and only elementwise/disjoint-write work is sharded.
#include <gtest/gtest.h>

#include <vector>

#include "core/scenario.hpp"
#include "core/solver.hpp"
#include "linalg/parallel_kernels.hpp"
#include "linalg/sparse.hpp"
#include "opt/gradient_projection.hpp"
#include "runtime/thread_pool.hpp"
#include "util/rng.hpp"

namespace netmon::opt {
namespace {

linalg::SparseCsr random_matrix(std::size_t rows, std::size_t cols,
                                std::size_t nnz_per_row, std::uint64_t seed) {
  netmon::Rng rng(seed);
  linalg::CsrBuilder builder(cols);
  builder.reserve(rows, rows * nnz_per_row);
  for (std::size_t r = 0; r < rows; ++r) {
    std::size_t col = rng.below(cols / nnz_per_row);
    for (std::size_t i = 0; i < nnz_per_row && col < cols; ++i) {
      builder.push(col, rng.uniform(0.1, 2.0));
      col += 1 + rng.below(cols / nnz_per_row);
    }
    builder.finish_row();
  }
  return builder.build();
}

TEST(ParallelKernels, SpmvMatchesSerialBitwise) {
  const linalg::SparseCsr a = random_matrix(997, 512, 7, 3);
  netmon::Rng rng(17);
  std::vector<double> x(a.cols());
  for (double& v : x) v = rng.uniform(-1.0, 1.0);

  std::vector<double> serial(a.rows()), parallel(a.rows());
  linalg::spmv(a, x, serial);
  for (unsigned threads : {1u, 2u, 4u}) {
    runtime::ThreadPool pool(threads);
    linalg::spmv_parallel(a, x, parallel, pool);
    for (std::size_t r = 0; r < serial.size(); ++r)
      EXPECT_EQ(serial[r], parallel[r]) << "row " << r << " @" << threads;
  }
}

TEST(ParallelKernels, TransposedSpmvEqualsSerialScatterBitwise) {
  // The parallel gradient runs as spmv over the stored transpose; the
  // serial reference is the scatter spmv_t over the original. They must
  // agree bit-for-bit: transpose()'s counting sort orders each transposed
  // row by ascending original row, which is exactly the scatter's
  // accumulation order.
  const linalg::SparseCsr a = random_matrix(997, 512, 7, 5);
  const linalg::SparseCsr at = a.transpose();
  netmon::Rng rng(19);
  std::vector<double> x(a.rows());
  for (double& v : x) v = rng.uniform(-1.0, 1.0);

  std::vector<double> scatter(a.cols()), gathered(a.cols());
  linalg::spmv_t(a, x, scatter);
  for (unsigned threads : {1u, 2u, 4u}) {
    runtime::ThreadPool pool(threads);
    linalg::spmv_t_parallel(at, x, gathered, pool);
    for (std::size_t c = 0; c < scatter.size(); ++c)
      EXPECT_EQ(scatter[c], gathered[c]) << "col " << c << " @" << threads;
  }
}

TEST(ParallelSolve, BitIdenticalToSerialAtEveryThreadCount) {
  // GEANT Table-I problem with parallel_min_terms = 0 to force the
  // sharded path even at paper scale. The full SolveResult — iterate
  // count, value, every rate — must EXPECT_EQ the serial solve.
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);

  const SolveResult serial =
      maximize(problem.objective(), problem.constraints());
  ASSERT_EQ(serial.status, SolveStatus::kOptimal);

  for (unsigned threads : {1u, 2u, 4u}) {
    runtime::ThreadPool pool(threads);
    SolverOptions options;
    options.pool = &pool;
    options.parallel_min_terms = 0;
    const SolveResult parallel =
        maximize(problem.objective(), problem.constraints(), options);

    EXPECT_EQ(parallel.status, serial.status) << "@" << threads;
    EXPECT_EQ(parallel.iterations, serial.iterations) << "@" << threads;
    EXPECT_EQ(parallel.release_events, serial.release_events)
        << "@" << threads;
    EXPECT_EQ(parallel.value, serial.value) << "@" << threads;
    EXPECT_EQ(parallel.lambda, serial.lambda) << "@" << threads;
    ASSERT_EQ(parallel.p.size(), serial.p.size());
    for (std::size_t j = 0; j < serial.p.size(); ++j)
      EXPECT_EQ(parallel.p[j], serial.p[j])
          << "rate @" << j << " threads=" << threads;
  }
}

TEST(ParallelSolve, ThresholdKeepsSmallInstancesOnTheSerialPath) {
  // Default parallel_min_terms is far above GEANT's term count, so
  // setting a pool alone must not change a thing (it is never touched).
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  const SolveResult serial =
      maximize(problem.objective(), problem.constraints());

  runtime::ThreadPool pool(2);
  SolverOptions options;
  options.pool = &pool;
  const SolveResult gated =
      maximize(problem.objective(), problem.constraints(), options);
  EXPECT_EQ(gated.iterations, serial.iterations);
  EXPECT_EQ(gated.value, serial.value);
  for (std::size_t j = 0; j < serial.p.size(); ++j)
    EXPECT_EQ(gated.p[j], serial.p[j]);
}

TEST(ParallelSolve, SafeFromTasksOnTheSamePool) {
  // A solve launched FROM a pool task that parallelizes on the same pool
  // must complete (helping waits) and still match the serial result.
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  const SolveResult serial =
      maximize(problem.objective(), problem.constraints());

  runtime::ThreadPool pool(1);  // worst case: no spare worker
  SolveResult nested;
  runtime::TaskGroup group(pool);
  group.run([&] {
    SolverOptions options;
    options.pool = &pool;
    options.parallel_min_terms = 0;
    nested = maximize(problem.objective(), problem.constraints(), options);
  });
  group.wait();
  EXPECT_EQ(nested.iterations, serial.iterations);
  EXPECT_EQ(nested.value, serial.value);
}

}  // namespace
}  // namespace netmon::opt
