#include <gtest/gtest.h>

#include <cmath>

#include "core/scenario.hpp"
#include "core/solver.hpp"
#include "core/utility.hpp"
#include "util/error.hpp"

namespace netmon::core {
namespace {

TEST(WeightedUtility, ScalesValueAndDerivatives) {
  auto base = std::make_shared<SreUtility>(0.01);
  const WeightedUtility weighted(base, 3.0);
  for (double x : {0.001, 0.01, 0.2}) {
    EXPECT_DOUBLE_EQ(weighted.value(x), 3.0 * base->value(x));
    EXPECT_DOUBLE_EQ(weighted.deriv(x), 3.0 * base->deriv(x));
    EXPECT_DOUBLE_EQ(weighted.second(x), 3.0 * base->second(x));
  }
  EXPECT_THROW(WeightedUtility(base, 0.0), Error);
  EXPECT_THROW(WeightedUtility(nullptr, 1.0), Error);
}

TEST(WeightedTask, UnitWeightsChangeNothing) {
  const GeantScenario s = make_geant_scenario();
  MeasurementTask weighted = s.task;
  weighted.weights.assign(weighted.ods.size(), 1.0);
  const PlacementSolution plain =
      solve_placement(PlacementProblem(s.net.graph, s.task, s.loads, {}));
  const PlacementSolution unit =
      solve_placement(PlacementProblem(s.net.graph, weighted, s.loads, {}));
  EXPECT_NEAR(plain.total_utility, unit.total_utility, 1e-9);
}

TEST(WeightedTask, HighPriorityOdGetsHigherEffectiveRate) {
  const GeantScenario s = make_geant_scenario();
  // Give the smallest OD pair (JANET-LU, index 19) a 10x priority.
  MeasurementTask weighted = s.task;
  weighted.weights.assign(weighted.ods.size(), 1.0);
  weighted.weights[19] = 10.0;

  const PlacementSolution plain =
      solve_placement(PlacementProblem(s.net.graph, s.task, s.loads, {}));
  const PlacementSolution boosted = solve_placement(
      PlacementProblem(s.net.graph, weighted, s.loads, {}));
  EXPECT_EQ(boosted.status, opt::SolveStatus::kOptimal);
  EXPECT_GT(boosted.per_od[19].rho_approx, plain.per_od[19].rho_approx);
  // The extra attention comes out of someone else's budget.
  EXPECT_LT(boosted.per_od[0].rho_approx + 1e-15,
            plain.per_od[0].rho_approx * 1.001);
}

TEST(WeightedTask, ValidatesWeightVector) {
  const GeantScenario s = make_geant_scenario();
  MeasurementTask bad = s.task;
  bad.weights = {1.0, 2.0};  // wrong length
  EXPECT_THROW(PlacementProblem(s.net.graph, bad, s.loads, {}), Error);
}

TEST(LambdaSensitivity, MultiplierPredictsMarginalUtility) {
  // The budget multiplier lambda is dU*/dtheta: check against a finite
  // difference of the optimal value. This validates the KKT machinery
  // end to end.
  const GeantScenario s = make_geant_scenario();
  auto solve_at = [&](double theta) {
    ProblemOptions options;
    options.theta = theta;
    return solve_placement(make_problem(s, options));
  };
  const double theta = 100000.0;
  const double h = 2000.0;
  const PlacementSolution at = solve_at(theta);
  const PlacementSolution up = solve_at(theta + h);
  const PlacementSolution down = solve_at(theta - h);
  const double fd = (up.total_utility - down.total_utility) / (2.0 * h);
  EXPECT_NEAR(at.lambda / fd, 1.0, 0.05);
}

}  // namespace
}  // namespace netmon::core
