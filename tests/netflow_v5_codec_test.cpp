#include "netflow/v5_codec.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace netmon::netflow {
namespace {

FlowRecord record(std::uint32_t n) {
  FlowRecord r;
  r.key.src_ip = net::ipv4(10, 1, 0, static_cast<std::uint8_t>(n));
  r.key.dst_ip = net::ipv4(10, 2, 0, static_cast<std::uint8_t>(n));
  r.key.src_port = static_cast<std::uint16_t>(1000 + n);
  r.key.dst_port = 80;
  r.key.proto = 6;
  r.sampled_packets = 10 + n;
  r.sampled_bytes = 1000 + n;
  r.start_sec = 1.5;
  r.end_sec = 2.25;
  r.input_link = 7;
  return r;
}

TEST(V5Codec, RoundTripsSingleRecord) {
  const RecordBatch batch{record(1)};
  const auto datagrams = encode_v5(batch, 100.0, 1000, 42, 9);
  ASSERT_EQ(datagrams.size(), 1u);
  EXPECT_EQ(datagrams[0].size(), kV5HeaderBytes + kV5RecordBytes);

  const V5Datagram decoded = decode_v5(datagrams[0]);
  EXPECT_EQ(decoded.header.version, 5);
  EXPECT_EQ(decoded.header.count, 1);
  EXPECT_EQ(decoded.header.flow_sequence, 42u);
  EXPECT_EQ(decoded.header.engine_id, 9);
  EXPECT_DOUBLE_EQ(v5_sampling_rate(decoded.header), 0.001);

  ASSERT_EQ(decoded.records.size(), 1u);
  const FlowRecord& r = decoded.records[0];
  EXPECT_EQ(r.key, batch[0].key);
  EXPECT_EQ(r.sampled_packets, batch[0].sampled_packets);
  EXPECT_EQ(r.sampled_bytes, batch[0].sampled_bytes);
  EXPECT_EQ(r.input_link, 7u);
  EXPECT_NEAR(r.start_sec, 1.5, 1e-3);
  EXPECT_NEAR(r.end_sec, 2.25, 1e-3);
}

TEST(V5Codec, SplitsLargeBatchesAtThirty) {
  RecordBatch batch;
  for (std::uint32_t i = 0; i < 75; ++i) batch.push_back(record(i));
  const auto datagrams = encode_v5(batch, 10.0, 100);
  ASSERT_EQ(datagrams.size(), 3u);  // 30 + 30 + 15
  EXPECT_EQ(decode_v5(datagrams[0]).header.count, 30);
  EXPECT_EQ(decode_v5(datagrams[1]).header.count, 30);
  EXPECT_EQ(decode_v5(datagrams[2]).header.count, 15);
  // Sequence numbers accumulate across datagrams.
  EXPECT_EQ(decode_v5(datagrams[0]).header.flow_sequence, 0u);
  EXPECT_EQ(decode_v5(datagrams[1]).header.flow_sequence, 30u);
  EXPECT_EQ(decode_v5(datagrams[2]).header.flow_sequence, 60u);
  // All 75 records survive the round trip in order.
  std::size_t i = 0;
  for (const auto& dg : datagrams) {
    for (const FlowRecord& r : decode_v5(dg).records) {
      EXPECT_EQ(r.key, batch[i].key) << "record " << i;
      ++i;
    }
  }
  EXPECT_EQ(i, 75u);
}

TEST(V5Codec, WireFormatIsBigEndian) {
  const RecordBatch batch{record(1)};
  const auto datagrams = encode_v5(batch, 0.0, 0);
  const auto& bytes = datagrams[0];
  // version = 0x0005 big-endian.
  EXPECT_EQ(bytes[0], 0x00);
  EXPECT_EQ(bytes[1], 0x05);
  // First record's srcaddr = 10.1.0.1.
  EXPECT_EQ(bytes[kV5HeaderBytes + 0], 10);
  EXPECT_EQ(bytes[kV5HeaderBytes + 1], 1);
  EXPECT_EQ(bytes[kV5HeaderBytes + 2], 0);
  EXPECT_EQ(bytes[kV5HeaderBytes + 3], 1);
}

TEST(V5Codec, ZeroSamplingIntervalMeansUnknown) {
  const auto datagrams = encode_v5({record(1)}, 0.0, 0);
  const V5Datagram d = decode_v5(datagrams[0]);
  EXPECT_DOUBLE_EQ(v5_sampling_rate(d.header), 0.0);
}

TEST(V5Codec, RejectsMalformedDatagrams) {
  const auto datagrams = encode_v5({record(1)}, 0.0, 100);
  auto truncated = datagrams[0];
  truncated.pop_back();
  EXPECT_THROW(decode_v5(truncated), Error);

  auto wrong_version = datagrams[0];
  wrong_version[1] = 9;
  EXPECT_THROW(decode_v5(wrong_version), Error);

  auto wrong_count = datagrams[0];
  wrong_count[3] = 2;  // claims 2 records, carries 1
  EXPECT_THROW(decode_v5(wrong_count), Error);

  EXPECT_THROW(decode_v5(std::vector<std::uint8_t>(10)), Error);
}

TEST(V5Codec, RejectsOversizedSamplingInterval) {
  EXPECT_THROW(encode_v5({record(1)}, 0.0, 1u << 14), Error);
}

TEST(V5Codec, EmptyBatchProducesNoDatagrams) {
  EXPECT_TRUE(encode_v5({}, 0.0, 100).empty());
}

}  // namespace
}  // namespace netmon::netflow
