#include "traffic/variation.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace netmon::traffic {
namespace {

TEST(DiurnalPattern, PeaksAtConfiguredTime) {
  const DiurnalPattern pattern(0.4, 14.0 * 3600.0);  // 2pm peak
  EXPECT_NEAR(pattern.factor(14.0 * 3600.0), 1.4, 1e-12);
  EXPECT_NEAR(pattern.factor(2.0 * 3600.0), 0.6, 1e-12);  // 2am trough
  // 24h periodicity.
  EXPECT_NEAR(pattern.factor(14.0 * 3600.0 + 86400.0), 1.4, 1e-12);
}

TEST(DiurnalPattern, ZeroAmplitudeIsFlat) {
  const DiurnalPattern flat(0.0, 0.0);
  for (double t = 0.0; t < 86400.0; t += 3600.0)
    EXPECT_DOUBLE_EQ(flat.factor(t), 1.0);
}

TEST(DiurnalPattern, RejectsBadAmplitude) {
  EXPECT_THROW(DiurnalPattern(-0.1, 0.0), Error);
  EXPECT_THROW(DiurnalPattern(1.0, 0.0), Error);
}

TEST(AnomalySpike, ActiveWindowIsHalfOpen) {
  const AnomalySpike spike{{0, 1}, 100.0, 200.0, 50.0};
  EXPECT_FALSE(spike.active_at(99.9));
  EXPECT_TRUE(spike.active_at(100.0));
  EXPECT_TRUE(spike.active_at(199.9));
  EXPECT_FALSE(spike.active_at(200.0));
}

TEST(MatrixAt, AppliesDiurnalAndSpikes) {
  const TrafficMatrix base{{{0, 1}, 100.0}, {{1, 2}, 200.0}};
  const DiurnalPattern pattern(0.5, 0.0);  // peak at t=0: factor 1.5
  const std::vector<AnomalySpike> spikes{{{0, 1}, 0.0, 10.0, 10.0}};

  const TrafficMatrix at0 = matrix_at(base, pattern, spikes, 0.0);
  EXPECT_NEAR(demand_for(at0, {0, 1}), 100.0 * 1.5 * 10.0, 1e-9);
  EXPECT_NEAR(demand_for(at0, {1, 2}), 200.0 * 1.5, 1e-9);

  // After the spike window, only the diurnal factor remains.
  const TrafficMatrix at20 = matrix_at(base, pattern, spikes, 20.0);
  EXPECT_NEAR(demand_for(at20, {0, 1}), 100.0 * pattern.factor(20.0), 1e-9);
}

TEST(MatrixAt, TotalRateFollowsPattern) {
  const TrafficMatrix base{{{0, 1}, 100.0}, {{1, 2}, 200.0}};
  const DiurnalPattern pattern(0.3, 6.0 * 3600.0);
  const double morning = total_rate(matrix_at(base, pattern, {}, 6.0 * 3600.0));
  const double evening =
      total_rate(matrix_at(base, pattern, {}, 18.0 * 3600.0));
  EXPECT_NEAR(morning, 300.0 * 1.3, 1e-9);
  EXPECT_NEAR(evening, 300.0 * 0.7, 1e-9);
}

}  // namespace
}  // namespace netmon::traffic
