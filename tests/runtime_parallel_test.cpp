#include "runtime/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace netmon::runtime {
namespace {

TEST(MakeChunks, CoversRangeExactlyOnce) {
  for (std::size_t n : {0u, 1u, 2u, 7u, 100u, 1000u}) {
    for (std::size_t grain : {1u, 3u, 64u}) {
      const auto chunks = make_chunks(n, {.grain = grain, .max_chunks = 16});
      std::size_t covered = 0;
      std::size_t expect_begin = 0;
      for (const auto& [begin, end] : chunks) {
        EXPECT_EQ(begin, expect_begin);
        EXPECT_LT(begin, end);
        covered += end - begin;
        expect_begin = end;
      }
      EXPECT_EQ(covered, n);
      EXPECT_LE(chunks.size(), 16u);
    }
  }
}

TEST(MakeChunks, IndependentOfAnyThreadNotion) {
  // The layout is a pure function of (n, grain, max_chunks): calling it
  // twice gives the same partition.
  const auto a = make_chunks(12345, {.grain = 10, .max_chunks = 64});
  const auto b = make_chunks(12345, {.grain = 10, .max_chunks = 64});
  EXPECT_EQ(a, b);
}

TEST(MakeChunks, RespectsGrain) {
  const auto chunks = make_chunks(100, {.grain = 30, .max_chunks = 256});
  // ceil(100/30) = 4 chunks of ~25.
  EXPECT_EQ(chunks.size(), 4u);
}

TEST(MakeChunks, ZeroMaxChunksThrows) {
  EXPECT_THROW(make_chunks(10, {.grain = 1, .max_chunks = 0}), Error);
}

TEST(ParallelFor, ComputesEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(10000, 0);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, EmptyAndSingleElementRanges) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(pool, 1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 100,
                            [](std::size_t i) {
                              if (i == 57) throw Error("bad index");
                            }),
               Error);
}

TEST(ParallelFor, SubstreamWorkloadIdenticalAcrossThreadCounts) {
  // The Monte-Carlo pattern: index i draws from base.substream(i). The
  // output vector must not depend on the pool size.
  const Rng base(2024);
  const std::size_t n = 500;
  auto run = [&](unsigned threads) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(n);
    parallel_for(pool, n, [&](std::size_t i) {
      Rng rng = base.substream(i);
      out[i] = rng.binomial(10000, rng.uniform());
    });
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(4));
  EXPECT_EQ(serial, run(resolve_threads(0)));
}

TEST(ParallelReduce, IntegerSumMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 12345;
  const auto sum = parallel_reduce(
      pool, n, std::uint64_t{0}, [](std::size_t i) { return i; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(ParallelReduce, DeterministicAcrossThreadCounts) {
  // Floating-point reduction: grouping is fixed by the chunk layout, so
  // the result is bit-identical at every pool size.
  auto run = [](unsigned threads) {
    ThreadPool pool(threads);
    return parallel_reduce(
        pool, 100000, 0.0,
        [](std::size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); },
        [](double a, double b) { return a + b; });
  };
  const double serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(4));
  EXPECT_EQ(serial, run(8));
}

TEST(ParallelReduce, RunningStatsMerge) {
  ThreadPool pool(3);
  const std::size_t n = 10000;
  const RunningStats stats = parallel_reduce(
      pool, n, RunningStats{},
      [](std::size_t i) {
        RunningStats s;
        s.add(static_cast<double>(i));
        return s;
      },
      [](RunningStats a, const RunningStats& b) {
        a.merge(b);
        return a;
      });
  EXPECT_EQ(stats.count(), n);
  EXPECT_DOUBLE_EQ(stats.mean(), static_cast<double>(n - 1) / 2.0);
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.max(), static_cast<double>(n - 1));
}

TEST(MakeChunksForWidth, RaisesGrainForLargeRanges) {
  // A million-element range on an 8-wide pool must not shatter into
  // thousands of tiny tasks: the effective grain rises so at most
  // kChunksPerWorker chunks exist per worker.
  const auto chunks = make_chunks_for_width(1'000'000, {.grain = 1}, 8);
  EXPECT_LE(chunks.size(), kChunksPerWorker * 8);
  EXPECT_GE(chunks.size(), 8u);  // still enough chunks to occupy the pool
  std::size_t covered = 0;
  std::size_t expect_begin = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin, expect_begin);
    covered += end - begin;
    expect_begin = end;
  }
  EXPECT_EQ(covered, 1'000'000u);
}

TEST(MakeChunksForWidth, NeverLowersAnExplicitGrain) {
  // Small ranges / wide pools: the caller's grain floor still applies.
  const auto chunks = make_chunks_for_width(100, {.grain = 30}, 64);
  EXPECT_LE(chunks.size(), 4u);  // ceil(100/30) chunks, as with make_chunks
  const auto plain = make_chunks(100, {.grain = 30});
  ASSERT_EQ(chunks.size(), plain.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].first, plain[i].first);
    EXPECT_EQ(chunks[i].second, plain[i].second);
  }
}

TEST(MakeChunksForWidth, PureFunctionOfArguments) {
  const auto a = make_chunks_for_width(12345, {.grain = 7}, 3);
  const auto b = make_chunks_for_width(12345, {.grain = 7}, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_EQ(a[i].second, b[i].second);
  }
}

TEST(ParallelFor, NestedFanOutCompletesOnAOneThreadPool) {
  // Deadlock regression: a parallel_for task that runs parallel_for on
  // the SAME pool. The helping TaskGroup wait executes queued tasks on
  // the waiting thread, so even a 1-thread pool makes progress.
  ThreadPool pool(1);
  std::vector<int> out(64, 0);
  parallel_for(pool, 4, [&](std::size_t outer) {
    parallel_for(pool, 16, [&](std::size_t inner) {
      out[outer * 16 + inner] = static_cast<int>(outer * 16 + inner);
    });
  });
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], i);
}

TEST(ParallelFor, NestedFanOutCompletesOnAWidePool) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  parallel_for(pool, 8, [&](std::size_t) {
    parallel_for(pool, 8, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  ThreadPool pool(2);
  const double out = parallel_reduce(
      pool, 0, 42.0, [](std::size_t) { return 1.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(out, 42.0);
}

}  // namespace
}  // namespace netmon::runtime
