#include "topo/graph.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace netmon::topo {
namespace {

TEST(Graph, AddAndLookupNodes) {
  Graph g;
  const NodeId a = g.add_node("A", 2.0);
  const NodeId b = g.add_node("B");
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.node(a).name, "A");
  EXPECT_DOUBLE_EQ(g.node(a).mass, 2.0);
  EXPECT_DOUBLE_EQ(g.node(b).mass, 1.0);
  EXPECT_EQ(g.find_node("A"), a);
  EXPECT_EQ(g.find_node("missing"), std::nullopt);
}

TEST(Graph, RejectsInvalidNodes) {
  Graph g;
  g.add_node("A");
  EXPECT_THROW(g.add_node("A"), Error);   // duplicate
  EXPECT_THROW(g.add_node(""), Error);    // empty
  EXPECT_THROW(g.add_node("B", -1.0), Error);
  EXPECT_THROW(g.node(99), Error);
}

TEST(Graph, AddLinksAndAdjacency) {
  Graph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  const NodeId c = g.add_node("C");
  const LinkId ab = g.add_link(a, b, 1e9, 5.0);
  const LinkId ac = g.add_link(a, c, 2e9, 7.0, /*monitorable=*/false);
  EXPECT_EQ(g.link_count(), 2u);
  EXPECT_EQ(g.link(ab).src, a);
  EXPECT_EQ(g.link(ab).dst, b);
  EXPECT_DOUBLE_EQ(g.link(ac).capacity_bps, 2e9);
  EXPECT_FALSE(g.link(ac).monitorable);
  EXPECT_EQ(g.out_links(a).size(), 2u);
  EXPECT_EQ(g.in_links(b).size(), 1u);
  EXPECT_TRUE(g.out_links(b).empty());
  EXPECT_EQ(g.link_name(ab), "A->B");
}

TEST(Graph, FindLinkByIdsAndNames) {
  Graph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  const LinkId ab = g.add_link(a, b, 1e9, 1.0);
  EXPECT_EQ(g.find_link(a, b), ab);
  EXPECT_EQ(g.find_link(b, a), std::nullopt);
  EXPECT_EQ(g.find_link("A", "B"), ab);
  EXPECT_EQ(g.find_link("A", "Z"), std::nullopt);
}

TEST(Graph, DuplexCreatesBothDirections) {
  Graph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  const auto [fwd, rev] = g.add_duplex(a, b, 1e9, 3.0);
  EXPECT_EQ(g.link(fwd).src, a);
  EXPECT_EQ(g.link(rev).src, b);
  EXPECT_DOUBLE_EQ(g.link(rev).igp_weight, 3.0);
}

TEST(Graph, RejectsInvalidLinks) {
  Graph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  EXPECT_THROW(g.add_link(a, a, 1e9, 1.0), Error);   // self loop
  EXPECT_THROW(g.add_link(a, 99, 1e9, 1.0), Error);  // bad node
  EXPECT_THROW(g.add_link(a, b, 0.0, 1.0), Error);   // zero capacity
  EXPECT_THROW(g.add_link(a, b, 1e9, 0.0), Error);   // zero weight
}

TEST(Graph, MutateLinkAttributes) {
  Graph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  const LinkId ab = g.add_link(a, b, 1e9, 1.0);
  g.set_igp_weight(ab, 9.0);
  g.set_monitorable(ab, false);
  EXPECT_DOUBLE_EQ(g.link(ab).igp_weight, 9.0);
  EXPECT_FALSE(g.link(ab).monitorable);
  EXPECT_THROW(g.set_igp_weight(ab, 0.0), Error);
  EXPECT_THROW(g.set_igp_weight(99, 1.0), Error);
}

}  // namespace
}  // namespace netmon::topo
