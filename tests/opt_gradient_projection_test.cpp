#include "opt/gradient_projection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/utility.hpp"
#include "opt/projected_ascent.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace netmon::opt {
namespace {

std::shared_ptr<const Concave1d> log_u(double eps) {
  return std::make_shared<core::LogUtility>(eps);
}

TEST(GradientProjection, TwoVariableAnalyticOptimum) {
  // max log(1+p0/0.1) + log(1+p1/0.1) s.t. p0 + 2 p1 = 0.5.
  // Interior KKT: eps+p1 = (eps+p0)/2 -> p* = (0.3, 0.1).
  SeparableConcaveObjective::SparseRows rows{{{0, 1.0}}, {{1, 1.0}}};
  const SeparableConcaveObjective f(2, std::move(rows),
                                    {log_u(0.1), log_u(0.1)});
  const BoxBudgetConstraints c({1.0, 2.0}, {1.0, 1.0}, 0.5);
  const SolveResult r = maximize(f, c);
  EXPECT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.p[0], 0.3, 1e-7);
  EXPECT_NEAR(r.p[1], 0.1, 1e-7);
  EXPECT_NEAR(r.lambda, 1.0 / 0.4, 1e-6);
}

TEST(GradientProjection, CornerSolutionDeactivatesMonitor) {
  // Term 1 has negligible marginal utility: all budget goes to p0.
  SeparableConcaveObjective::SparseRows rows{{{0, 1.0}}, {{1, 1.0}}};
  const SeparableConcaveObjective f(2, std::move(rows),
                                    {log_u(0.01), log_u(1000.0)});
  const BoxBudgetConstraints c({1.0, 1.0}, {1.0, 1.0}, 0.2);
  const SolveResult r = maximize(f, c);
  EXPECT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.p[0], 0.2, 1e-7);
  EXPECT_NEAR(r.p[1], 0.0, 1e-9);
  EXPECT_EQ(r.bounds[1], BoundState::kAtLower);
}

TEST(GradientProjection, UpperBoundBinds) {
  // Cheap high-utility variable capped by alpha; remainder spills over.
  SeparableConcaveObjective::SparseRows rows{{{0, 1.0}}, {{1, 1.0}}};
  const SeparableConcaveObjective f(2, std::move(rows),
                                    {log_u(0.001), log_u(10.0)});
  const BoxBudgetConstraints c({1.0, 1.0}, {0.1, 1.0}, 0.5);
  const SolveResult r = maximize(f, c);
  EXPECT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.p[0], 0.1, 1e-9);
  EXPECT_NEAR(r.p[1], 0.4, 1e-7);
  EXPECT_EQ(r.bounds[0], BoundState::kAtUpper);
}

TEST(GradientProjection, SharedMonitorCoversTwoTerms) {
  // Variable 2 helps both terms: it should dominate the solution.
  SeparableConcaveObjective::SparseRows rows{{{0, 1.0}, {2, 1.0}},
                                             {{1, 1.0}, {2, 1.0}}};
  const SeparableConcaveObjective f(
      3, std::move(rows), {log_u(0.1), log_u(0.1)});
  const BoxBudgetConstraints c({1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, 0.3);
  const SolveResult r = maximize(f, c);
  EXPECT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.p[2], 0.3, 1e-7);
  EXPECT_NEAR(r.p[0], 0.0, 1e-9);
  EXPECT_NEAR(r.p[1], 0.0, 1e-9);
}

TEST(GradientProjection, DeterministicAcrossRuns) {
  SeparableConcaveObjective::SparseRows rows{{{0, 1.0}, {1, 0.5}},
                                             {{1, 1.0}}};
  const SeparableConcaveObjective f(2, std::move(rows),
                                    {log_u(0.05), log_u(0.2)});
  const BoxBudgetConstraints c({3.0, 7.0}, {1.0, 1.0}, 2.0);
  const SolveResult a = maximize(f, c);
  const SolveResult b = maximize(f, c);
  ASSERT_EQ(a.p.size(), b.p.size());
  for (std::size_t j = 0; j < a.p.size(); ++j)
    EXPECT_DOUBLE_EQ(a.p[j], b.p[j]);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(GradientProjection, IterationLimitReported) {
  SeparableConcaveObjective::SparseRows rows{{{0, 1.0}}, {{1, 1.0}}};
  const SeparableConcaveObjective f(2, std::move(rows),
                                    {log_u(0.1), log_u(0.1)});
  const BoxBudgetConstraints c({1.0, 2.0}, {1.0, 1.0}, 0.5);
  SolverOptions options;
  options.max_iterations = 1;
  const SolveResult r = maximize(f, c, options);
  EXPECT_EQ(r.status, SolveStatus::kIterationLimit);
  EXPECT_EQ(r.iterations, 1);
}

TEST(GradientProjection, StartPointOverride) {
  SeparableConcaveObjective::SparseRows rows{{{0, 1.0}}, {{1, 1.0}}};
  const SeparableConcaveObjective f(2, std::move(rows),
                                    {log_u(0.1), log_u(0.1)});
  const BoxBudgetConstraints c({1.0, 2.0}, {1.0, 1.0}, 0.5);
  const std::vector<double> start{0.5, 0.0};
  const SolveResult r = maximize(f, c, {}, &start);
  EXPECT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.p[0], 0.3, 1e-6);
  const std::vector<double> infeasible{1.0, 1.0};
  EXPECT_THROW(maximize(f, c, {}, &infeasible), netmon::Error);
}

TEST(GradientProjection, FractionalCoefficientsEcmpStyle) {
  // ECMP rows carry fractional coefficients; the optimum must still
  // certify and match the reference solver.
  SeparableConcaveObjective::SparseRows rows{
      {{0, 0.5}, {1, 0.5}},          // split across two branches
      {{0, 0.25}, {1, 0.25}, {2, 1.0}},
  };
  const SeparableConcaveObjective f(3, std::move(rows),
                                    {log_u(0.05), log_u(0.05)});
  const BoxBudgetConstraints c({1e4, 2e4, 5e3}, {1.0, 1.0, 1.0}, 3e3);
  const SolveResult main = maximize(f, c);
  EXPECT_EQ(main.status, SolveStatus::kOptimal);
  const ProjectedAscentResult ref = maximize_reference(f, c);
  EXPECT_NEAR(main.value, ref.value, 1e-4 * (1.0 + std::abs(main.value)));
  EXPECT_GE(main.value, ref.value - 1e-6);
}

TEST(GradientProjection, ObjectiveWithOffsets) {
  // Offsets (from the exact-rate linearization) must flow through the
  // solver unchanged: shifting a row constant does not move the optimum
  // of a log utility... it does, but the solve must still certify and
  // beat the reference.
  SeparableConcaveObjective::SparseRows rows{{{0, 1.0}}, {{1, 1.0}}};
  const SeparableConcaveObjective f(2, std::move(rows),
                                    {log_u(0.1), log_u(0.1)},
                                    {0.02, -0.005});
  const BoxBudgetConstraints c({1.0, 2.0}, {1.0, 1.0}, 0.5);
  const SolveResult main = maximize(f, c);
  EXPECT_EQ(main.status, SolveStatus::kOptimal);
  const ProjectedAscentResult ref = maximize_reference(f, c);
  EXPECT_GE(main.value, ref.value - 1e-8);
}

// ---------------------------------------------------------------------
// Property sweep: on random instances the active-set solver must certify
// KKT and match the (provably convergent) projected-ascent reference.
// ---------------------------------------------------------------------
class RandomInstanceTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomInstanceTest, MatchesReferenceSolver) {
  Rng rng(1000 + GetParam());
  const std::size_t n = 3 + rng.below(8);       // 3..10 variables
  const std::size_t terms = 2 + rng.below(2 * n);

  SeparableConcaveObjective::SparseRows rows(terms);
  std::vector<std::shared_ptr<const Concave1d>> utilities;
  for (std::size_t k = 0; k < terms; ++k) {
    const std::size_t touches = 1 + rng.below(3);
    for (std::size_t t = 0; t < touches; ++t) {
      const std::size_t col = rng.below(n);
      bool seen = false;
      for (auto& [c2, v] : rows[k]) seen = seen || c2 == col;
      // Mix binary and fractional (ECMP-style) coefficients.
      if (!seen)
        rows[k].emplace_back(col,
                             rng.bernoulli(0.7) ? 1.0 : rng.uniform(0.2, 1.0));
    }
    if (rng.bernoulli(0.5)) {
      utilities.push_back(std::make_shared<core::SreUtility>(
          rng.uniform(1e-5, 0.3)));
    } else {
      utilities.push_back(log_u(rng.uniform(0.001, 0.5)));
    }
  }

  std::vector<double> u(n), alpha(n);
  double max_budget = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    u[j] = rng.uniform(1e3, 1e6);
    alpha[j] = rng.bernoulli(0.5) ? 1.0 : rng.uniform(0.3, 1.0);
    max_budget += u[j] * alpha[j];
  }
  const double theta = max_budget * rng.uniform(0.001, 0.6);

  const SeparableConcaveObjective f(n, rows, utilities);
  const BoxBudgetConstraints c(u, alpha, theta);

  SolverOptions options;
  options.max_iterations = 5000;
  const SolveResult main = maximize(f, c, options);
  EXPECT_EQ(main.status, SolveStatus::kOptimal) << "instance " << GetParam();
  EXPECT_TRUE(c.feasible(main.p, 1e-6));

  ProjectedAscentOptions ref_options;
  ref_options.max_iterations = 20000;
  const ProjectedAscentResult ref = maximize_reference(f, c, ref_options);

  // The certified optimum must not be beaten by the reference, and the
  // two must agree closely in value.
  const double scale = 1.0 + std::abs(main.value);
  EXPECT_GE(main.value, ref.value - 1e-5 * scale)
      << "instance " << GetParam();
  EXPECT_NEAR(main.value, ref.value, 2e-3 * scale)
      << "instance " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomInstanceTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace netmon::opt
