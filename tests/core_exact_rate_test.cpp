#include "core/exact_rate.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "util/error.hpp"

namespace netmon::core {
namespace {

TEST(ExactRate, ExactUtilityNeverExceedsLinearizedUtility) {
  // M is increasing and rho_exact <= rho_approx, so evaluating any rate
  // vector exactly can only lower the utility.
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem problem = make_problem(s);
  const PlacementSolution solution = solve_placement(problem);
  EXPECT_LE(exact_total_utility(problem, solution.rates),
            solution.total_utility + 1e-12);
}

TEST(ExactRate, ScpImprovesOrMatchesTheLinearizedSolution) {
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem problem = make_problem(s);
  const ExactRateResult result = solve_exact_placement(problem);
  EXPECT_GE(result.exact_utility_scp,
            result.exact_utility_linearized - 1e-9);
  EXPECT_GE(result.rounds, 1);
  EXPECT_NEAR(result.solution.budget_used / problem.theta(), 1.0, 1e-6);
}

TEST(ExactRate, GapTinyAtPaperOperatingPoint) {
  // At rates <= 1e-2 the linearization is excellent: SCP moves the exact
  // utility by less than 1e-4 in total (20 OD pairs).
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem problem = make_problem(s);
  const ExactRateResult result = solve_exact_placement(problem);
  EXPECT_LT(result.exact_utility_scp - result.exact_utility_linearized,
            1e-4);
  // And SCP converges in a handful of rounds.
  EXPECT_LE(result.rounds, 10);
}

TEST(ExactRate, HighRateRegimeStaysMonotoneAndFeasible) {
  // Push theta high enough that rates reach tens of percent: eq. (7)
  // overestimates rho substantially. The SCP safeguard must never end
  // below the linearized solution's exact utility, whatever happens.
  const GeantScenario s = make_geant_scenario();
  ProblemOptions options;
  options.theta = 3.0e6;  // 30x the paper's budget
  const PlacementProblem problem = make_problem(s, options);

  // The linearization error itself is now large (deterministic check).
  const PlacementSolution linearized = solve_placement(problem);
  EXPECT_GT(sampling::max_linearization_error(problem.routing(),
                                              linearized.rates),
            0.01);

  const ExactRateResult result = solve_exact_placement(problem);
  EXPECT_GE(result.exact_utility_scp,
            result.exact_utility_linearized - 1e-9);
  EXPECT_GE(result.rounds, 1);
  EXPECT_NEAR(result.solution.budget_used / problem.theta(), 1.0, 1e-6);
}

TEST(ExactRate, ValidatesOptions) {
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem problem = make_problem(s);
  ExactRateOptions bad;
  bad.max_rounds = 0;
  EXPECT_THROW(solve_exact_placement(problem, bad), Error);
}

}  // namespace
}  // namespace netmon::core
