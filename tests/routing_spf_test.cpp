#include "routing/spf.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "helpers.hpp"
#include "util/error.hpp"

namespace netmon::routing {
namespace {

TEST(Spf, DistancesOnLine) {
  const topo::Graph g = test::line_graph();
  const SpfResult spf = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(spf.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(spf.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(spf.dist[2], 2.0);
  EXPECT_DOUBLE_EQ(spf.dist[3], 3.0);
}

TEST(Spf, PathExtractionInTravelOrder) {
  const topo::Graph g = test::line_graph();
  const SpfResult spf = dijkstra(g, 0);
  const auto path = extract_path(spf, g, 3);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(g.link(path[0]).src, 0u);
  EXPECT_EQ(g.link(path[1]).src, 1u);
  EXPECT_EQ(g.link(path[2]).src, 2u);
  EXPECT_EQ(g.link(path[2]).dst, 3u);
}

TEST(Spf, RespectsWeights) {
  topo::Graph g;
  const auto a = g.add_node("A");
  const auto b = g.add_node("B");
  const auto c = g.add_node("C");
  g.add_link(a, b, 1e9, 10.0);
  g.add_link(a, c, 1e9, 1.0);
  g.add_link(c, b, 1e9, 1.0);
  const SpfResult spf = dijkstra(g, a);
  EXPECT_DOUBLE_EQ(spf.dist[b], 2.0);  // via C, not direct
  const auto path = extract_path(spf, g, b);
  ASSERT_EQ(path.size(), 2u);
}

TEST(Spf, DeterministicTieBreakPrefersLowerLinkId) {
  const topo::Graph g = test::diamond_graph();
  const SpfResult spf = dijkstra(g, 0);
  const auto path = extract_path(spf, g, 3);
  ASSERT_EQ(path.size(), 2u);
  // Two equal-cost paths; the one through the lower link ids must win,
  // and repeated runs must agree.
  const SpfResult spf2 = dijkstra(g, 0);
  EXPECT_EQ(extract_path(spf2, g, 3), path);
  EXPECT_EQ(g.link(path[0]).dst, 1u);  // via X (created first)
}

TEST(Spf, FailedLinksAreAvoided) {
  const topo::Graph g = test::diamond_graph();
  // Fail S->X (the preferred branch); traffic must go via Y.
  const auto sx = g.find_link(0, 1);
  ASSERT_TRUE(sx.has_value());
  const SpfResult spf = dijkstra(g, 0, LinkSet{*sx});
  const auto path = extract_path(spf, g, 3);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(g.link(path[0]).dst, 2u);  // via Y
}

TEST(Spf, UnreachableDetected) {
  topo::Graph g;
  g.add_node("A");
  g.add_node("B");  // no links
  const SpfResult spf = dijkstra(g, 0);
  EXPECT_FALSE(spf.reachable(1));
  EXPECT_THROW(extract_path(spf, g, 1), Error);
}

TEST(Spf, SourceOutOfRangeThrows) {
  topo::Graph g;
  g.add_node("A");
  EXPECT_THROW(dijkstra(g, 5), Error);
}

TEST(Ecmp, EvenSplitOnDiamond) {
  const topo::Graph g = test::diamond_graph();
  const auto fractions = ecmp_fractions(g, 0, 3);
  ASSERT_EQ(fractions.size(), 4u);  // both branches, both hops
  double into_t = 0.0;
  for (const auto& [link, frac] : fractions) {
    EXPECT_NEAR(frac, 0.5, 1e-12);
    if (g.link(link).dst == 3u) into_t += frac;
  }
  EXPECT_NEAR(into_t, 1.0, 1e-12);
}

TEST(Ecmp, SinglePathGetsFullFraction) {
  const topo::Graph g = test::line_graph();
  const auto fractions = ecmp_fractions(g, 0, 3);
  ASSERT_EQ(fractions.size(), 3u);
  for (const auto& [link, frac] : fractions) EXPECT_DOUBLE_EQ(frac, 1.0);
}

TEST(Ecmp, FailureCollapsesToSinglePath) {
  const topo::Graph g = test::diamond_graph();
  const auto sx = g.find_link(0, 1);
  const auto fractions = ecmp_fractions(g, 0, 3, LinkSet{*sx});
  ASSERT_EQ(fractions.size(), 2u);
  for (const auto& [link, frac] : fractions) EXPECT_DOUBLE_EQ(frac, 1.0);
}

TEST(Ecmp, UnreachableReturnsEmpty) {
  topo::Graph g;
  g.add_node("A");
  g.add_node("B");
  EXPECT_TRUE(ecmp_fractions(g, 0, 1).empty());
}

TEST(Ecmp, ThreeWaySplit) {
  topo::Graph g;
  const auto s = g.add_node("S");
  const auto t = g.add_node("T");
  std::vector<topo::NodeId> mid;
  for (int i = 0; i < 3; ++i) {
    const auto m = g.add_node("M" + std::to_string(i));
    g.add_link(s, m, 1e9, 1.0);
    g.add_link(m, t, 1e9, 1.0);
    mid.push_back(m);
  }
  const auto fractions = ecmp_fractions(g, s, t);
  ASSERT_EQ(fractions.size(), 6u);
  for (const auto& [link, frac] : fractions)
    EXPECT_NEAR(frac, 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace netmon::routing
