#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "core/solver.hpp"
#include "util/bench_report.hpp"
#include "util/error.hpp"

namespace netmon {
namespace {

std::string render(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream out;
  JsonWriter json(out);
  body(json);
  return out.str();
}

TEST(JsonWriter, FlatObject) {
  const std::string out = render([](JsonWriter& j) {
    j.begin_object();
    j.key("name").value("netmon");
    j.key("version").value(std::int64_t{1});
    j.key("ratio").value(0.5);
    j.key("ok").value(true);
    j.key("none").null();
    j.end_object();
  });
  EXPECT_EQ(out,
            R"({"name":"netmon","version":1,"ratio":0.5,"ok":true,"none":null})");
}

TEST(JsonWriter, NestedArrays) {
  const std::string out = render([](JsonWriter& j) {
    j.begin_array();
    j.value(std::int64_t{1});
    j.begin_array();
    j.value(std::int64_t{2});
    j.value(std::int64_t{3});
    j.end_array();
    j.begin_object();
    j.key("k").value("v");
    j.end_object();
    j.end_array();
  });
  EXPECT_EQ(out, R"([1,[2,3],{"k":"v"}])");
}

TEST(JsonWriter, EscapesStrings) {
  const std::string out = render([](JsonWriter& j) {
    j.value("a\"b\\c\nd\te");
  });
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\"");
}

TEST(JsonWriter, NonFiniteDoublesSerializeAsNull) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::string out = render([&](JsonWriter& j) {
    j.begin_object();
    j.key("nan").value(nan);
    j.key("pos_inf").value(inf);
    j.key("neg_inf").value(-inf);
    j.key("finite").value(1.5);
    j.end_object();
  });
  EXPECT_EQ(out,
            R"({"nan":null,"pos_inf":null,"neg_inf":null,"finite":1.5})");
}

TEST(JsonWriter, BenchReportSurvivesNonFiniteMetrics) {
  // Round trip through the bench-report path: a NaN metric (e.g. a 0/0
  // rate on an empty run) must still yield a valid JSON document.
  BenchReport report("json_test", 1);
  report.result("row").metric("bad", std::nan(""))
      .metric("worse", std::numeric_limits<double>::infinity())
      .metric("fine", 2.0);
  std::ostringstream out;
  report.write(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"bad\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"worse\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"fine\":2"), std::string::npos) << json;
}

TEST(JsonWriter, CompletionTracking) {
  std::ostringstream out;
  JsonWriter json(out);
  EXPECT_FALSE(json.complete());
  json.begin_object();
  EXPECT_FALSE(json.complete());
  json.end_object();
  EXPECT_TRUE(json.complete());
}

TEST(JsonWriter, RejectsMisuse) {
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.begin_object();
    EXPECT_THROW(json.value(1.0), Error);  // value without key
  }
  {
    JsonWriter json(out);
    json.begin_array();
    EXPECT_THROW(json.key("x"), Error);  // key inside array
  }
  {
    JsonWriter json(out);
    EXPECT_THROW(json.end_object(), Error);  // nothing open
  }
  {
    JsonWriter json(out);
    json.value(1.0);
    EXPECT_THROW(json.value(2.0), Error);  // two roots
  }
}

TEST(Report, PlacementSolutionRoundTripsKeyFields) {
  const core::GeantScenario s = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(s);
  const core::PlacementSolution solution = core::solve_placement(problem);
  const std::string json = core::report_json(solution, s.net.graph);

  EXPECT_NE(json.find("\"status\":\"optimal\""), std::string::npos);
  EXPECT_NE(json.find("\"monitors\":["), std::string::npos);
  EXPECT_NE(json.find("\"od_pairs\":["), std::string::npos);
  // Every active monitor appears by name.
  for (topo::LinkId id : solution.active_monitors) {
    EXPECT_NE(json.find("\"" + s.net.graph.link_name(id) + "\""),
              std::string::npos);
  }
  // All 20 OD pairs serialized.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"rho_approx\"", pos)) != std::string::npos) {
    ++count;
    pos += 10;
  }
  EXPECT_EQ(count, 20u);
}

}  // namespace
}  // namespace netmon
