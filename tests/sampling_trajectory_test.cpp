#include "sampling/trajectory.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace netmon::sampling {
namespace {

traffic::FlowKey key(std::uint32_t n) {
  traffic::FlowKey k;
  k.src_ip = n;
  k.dst_ip = ~n;
  return k;
}

TEST(TrajectoryPosition, UniformInUnitInterval) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double pos = trajectory_position(rng());
    ASSERT_GE(pos, 0.0);
    ASSERT_LT(pos, 1.0);
    sum += pos;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(ConsistentSampler, RateMatches) {
  const ConsistentSampler sampler(0.07);
  int hits = 0;
  const int n = 200000;
  for (std::uint32_t f = 0; f < 200; ++f) {
    for (std::uint64_t seq = 0; seq < n / 200; ++seq)
      hits += sampler.sample(packet_id(key(f), seq));
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.07, 0.005);
}

TEST(ConsistentSampler, IdenticalDecisionsAcrossMonitors) {
  // The whole point: two monitors with the same rate sample exactly the
  // same packets — no coordination, no duplicates to reconcile.
  const ConsistentSampler a(0.1), b(0.1);
  for (std::uint64_t seq = 0; seq < 5000; ++seq) {
    const PacketId id = packet_id(key(7), seq);
    EXPECT_EQ(a.sample(id), b.sample(id));
  }
}

TEST(ConsistentSampler, NestedThresholds) {
  // A packet sampled by a low-rate monitor is sampled by every
  // higher-rate monitor: thresholds nest.
  const ConsistentSampler low(0.01), high(0.05);
  int low_hits = 0;
  for (std::uint64_t seq = 0; seq < 100000; ++seq) {
    const PacketId id = packet_id(key(3), seq);
    if (low.sample(id)) {
      ++low_hits;
      EXPECT_TRUE(high.sample(id));
    }
  }
  EXPECT_GT(low_hits, 0);
}

TEST(TrajectoryRates, MinAndMaxOfPath) {
  const TrajectoryRates rates = trajectory_rates({0.02, 0.08, 0.05});
  EXPECT_DOUBLE_EQ(rates.any, 0.08);
  EXPECT_DOUBLE_EQ(rates.all, 0.02);
  const TrajectoryRates empty = trajectory_rates({});
  EXPECT_DOUBLE_EQ(empty.any, 0.0);
  EXPECT_DOUBLE_EQ(empty.all, 0.0);
  EXPECT_THROW(trajectory_rates({1.5}), Error);
}

TEST(TrajectoryRates, EmpiricalMatch) {
  // Simulate a 3-monitor path: the fraction of packets seen by at least
  // one / by all monitors must match max / min of the thresholds.
  const std::vector<double> thresholds{0.02, 0.06, 0.04};
  std::vector<ConsistentSampler> monitors;
  for (double t : thresholds) monitors.emplace_back(t);
  int any = 0, all = 0;
  const int n = 300000;
  for (std::uint64_t seq = 0; seq < static_cast<std::uint64_t>(n); ++seq) {
    const PacketId id = packet_id(key(11), seq);
    int seen = 0;
    for (const auto& m : monitors) seen += m.sample(id);
    any += seen >= 1;
    all += seen == 3;
  }
  const TrajectoryRates rates = trajectory_rates(thresholds);
  EXPECT_NEAR(static_cast<double>(any) / n, rates.any, 0.003);
  EXPECT_NEAR(static_cast<double>(all) / n, rates.all, 0.003);
}

TEST(ConsistentSampler, Validation) {
  EXPECT_THROW(ConsistentSampler(-0.1), Error);
  EXPECT_THROW(ConsistentSampler(1.1), Error);
  const ConsistentSampler never(0.0), always(1.0);
  EXPECT_FALSE(never.sample(123));
  EXPECT_TRUE(always.sample(123));
}

}  // namespace
}  // namespace netmon::sampling
