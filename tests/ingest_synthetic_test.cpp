#include "ingest/synthetic.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "helpers.hpp"
#include "traffic/flow_generator.hpp"

namespace netmon::ingest {
namespace {

struct LineScenario {
  topo::Graph graph = test::line_graph();
  traffic::TrafficMatrix tm{{{0, 3}, 120.0}, {{0, 1}, 240.0}};
  routing::RoutingMatrix matrix =
      routing::RoutingMatrix::single_path(graph, {{0, 3}, {0, 1}});
  topo::LinkId ab, bc;
  SyntheticOptions options;

  LineScenario() {
    ab = *graph.find_link(0, 1);
    bc = *graph.find_link(1, 2);
    options.flowgen.interval_sec = 60.0;
    options.seed = 42;
  }
};

std::vector<PacketRecord> drain(PacketSource& source) {
  std::vector<PacketRecord> out;
  PacketRecord buf[128];
  while (!source.exhausted()) {
    const std::size_t n = source.next_batch(buf, 128);
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  return out;
}

TEST(Synthetic, SchedulesMatchFlowPopulations) {
  LineScenario s;
  SyntheticTraffic traffic(s.matrix, s.tm, s.options);
  ASSERT_EQ(traffic.flows().size(), 2u);
  const std::uint64_t od0 = traffic::total_packets(traffic.flows()[0]);
  const std::uint64_t od1 = traffic::total_packets(traffic.flows()[1]);
  // A->B carries both ODs, B->C only OD 0 (0 -> 3).
  EXPECT_EQ(traffic.packets_on(s.ab), od0 + od1);
  EXPECT_EQ(traffic.packets_on(s.bc), od0);
  EXPECT_GT(od0, 0u);
  EXPECT_GT(od1, 0u);
}

TEST(Synthetic, ReplayDeliversEveryScheduledPacketInTimeOrder) {
  LineScenario s;
  SyntheticTraffic traffic(s.matrix, s.tm, s.options);
  auto source = traffic.source(s.ab);
  ASSERT_NE(source, nullptr);
  EXPECT_EQ(source->link(), s.ab);
  const std::vector<PacketRecord> packets = drain(*source);
  EXPECT_EQ(packets.size(), traffic.packets_on(s.ab));
  double last = -1.0;
  for (const PacketRecord& p : packets) {
    EXPECT_GE(p.ts_sec, last);
    EXPECT_GE(p.ts_sec, 0.0);
    EXPECT_GE(p.bytes, s.options.min_packet_bytes);
    last = p.ts_sec;
  }
  EXPECT_LE(last, s.options.flowgen.interval_sec + 1.0);
  EXPECT_TRUE(source->exhausted());
}

TEST(Synthetic, FinMarksEndOfTcpFlowsOnly) {
  LineScenario s;
  SyntheticTraffic traffic(s.matrix, s.tm, s.options);
  auto source = traffic.source(s.ab);
  std::uint64_t fins = 0;
  for (const PacketRecord& p : drain(*source)) {
    if (p.fin()) {
      EXPECT_EQ(p.key.proto, 6) << "FIN on a non-TCP packet";
      ++fins;
    }
  }
  EXPECT_GT(fins, 0u);
  // At most one FIN per flow appearance on the link.
  std::uint64_t tcp_flows = 0;
  for (const auto& population : traffic.flows())
    for (const auto& flow : population)
      if (flow.key.proto == 6) ++tcp_flows;
  EXPECT_LE(fins, tcp_flows);
}

TEST(Synthetic, DeterministicForFixedSeed) {
  LineScenario s;
  SyntheticTraffic a(s.matrix, s.tm, s.options);
  SyntheticTraffic b(s.matrix, s.tm, s.options);
  auto sa = a.source(s.ab);
  auto sb = b.source(s.ab);
  const std::vector<PacketRecord> pa = drain(*sa);
  const std::vector<PacketRecord> pb = drain(*sb);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].key, pb[i].key);
    EXPECT_EQ(pa[i].bytes, pb[i].bytes);
    EXPECT_EQ(pa[i].flags, pb[i].flags);
    EXPECT_EQ(pa[i].ts_sec, pb[i].ts_sec);  // bit-identical
  }
}

TEST(Synthetic, SeedChangesTheStream) {
  LineScenario s;
  SyntheticTraffic a(s.matrix, s.tm, s.options);
  s.options.seed = 43;
  SyntheticTraffic b(s.matrix, s.tm, s.options);
  EXPECT_NE(a.packets_on(s.ab), b.packets_on(s.ab));
}

TEST(Synthetic, SourcesFollowTheMonitoredSet) {
  LineScenario s;
  SyntheticTraffic traffic(s.matrix, s.tm, s.options);
  sampling::RateVector rates(s.graph.link_count(), 0.0);
  rates[s.ab] = 0.1;
  auto sources = traffic.sources(rates);
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(sources[0]->link(), s.ab);

  rates[s.bc] = 0.2;
  EXPECT_EQ(traffic.sources(rates).size(), 2u);

  // A monitored link nothing is routed over yields no source.
  sampling::RateVector off_path(s.graph.link_count(), 0.0);
  off_path[*s.graph.find_link(3, 2)] = 0.5;
  EXPECT_TRUE(traffic.sources(off_path).empty());
}

TEST(Synthetic, BatchSizeDoesNotChangeTheStream) {
  LineScenario s;
  SyntheticTraffic traffic(s.matrix, s.tm, s.options);
  auto big = traffic.source(s.ab);
  auto small = traffic.source(s.ab);
  const std::vector<PacketRecord> big_stream = drain(*big);
  std::vector<PacketRecord> small_stream;
  PacketRecord one;
  while (small->next_batch(&one, 1) == 1) small_stream.push_back(one);
  ASSERT_EQ(big_stream.size(), small_stream.size());
  for (std::size_t i = 0; i < big_stream.size(); ++i) {
    EXPECT_EQ(big_stream[i].key, small_stream[i].key);
    EXPECT_EQ(big_stream[i].ts_sec, small_stream[i].ts_sec);
  }
}

}  // namespace
}  // namespace netmon::ingest
