#include "netflow/collector.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace netmon::netflow {
namespace {

using net::ipv4;

EgressMap two_pop_map() {
  EgressMap map;
  map.insert({ipv4(10, 0, 0, 0), 16}, 0);
  map.insert({ipv4(10, 1, 0, 0), 16}, 1);
  return map;
}

FlowRecord record(double start, std::uint64_t packets,
                  net::Ipv4 src = ipv4(10, 0, 0, 1),
                  net::Ipv4 dst = ipv4(10, 1, 0, 1)) {
  FlowRecord r;
  r.key.src_ip = src;
  r.key.dst_ip = dst;
  r.sampled_packets = packets;
  r.sampled_bytes = packets * 100;
  r.start_sec = start;
  r.end_sec = start + 1.0;
  return r;
}

TEST(Collector, BinsByStartTime) {
  const EgressMap map = two_pop_map();
  Collector c(map);
  c.receive(record(10.0, 5), 3, 0.01);
  c.receive(record(299.0, 7), 3, 0.01);
  c.receive(record(301.0, 11), 3, 0.01);
  const routing::OdPair od{0, 1};
  EXPECT_EQ(c.sampled_packets(0, od), 12u);
  EXPECT_EQ(c.sampled_packets(1, od), 11u);
  EXPECT_EQ(c.bins(), (std::vector<std::int64_t>{0, 1}));
  EXPECT_EQ(c.bin_of(299.0), 0);
  EXPECT_EQ(c.bin_of(300.0), 1);
}

TEST(Collector, SumsAcrossLinks) {
  const EgressMap map = two_pop_map();
  Collector c(map);
  c.receive(record(0.0, 5), 3, 0.01);
  c.receive(record(0.0, 9), 4, 0.02);
  const routing::OdPair od{0, 1};
  EXPECT_EQ(c.sampled_packets(0, od), 14u);
  EXPECT_EQ(c.sampled_packets_on_link(0, od, 3), 5u);
  EXPECT_EQ(c.sampled_packets_on_link(0, od, 4), 9u);
  EXPECT_EQ(c.sampled_packets_on_link(0, od, 5), 0u);
}

TEST(Collector, AttributesByPrefix) {
  const EgressMap map = two_pop_map();
  Collector c(map);
  c.receive(record(0.0, 5, ipv4(10, 1, 0, 9), ipv4(10, 0, 0, 9)), 1, 0.01);
  EXPECT_EQ(c.sampled_packets(0, {1, 0}), 5u);
  EXPECT_EQ(c.sampled_packets(0, {0, 1}), 0u);
}

TEST(Collector, UnattributedCounted) {
  const EgressMap map = two_pop_map();
  Collector c(map);
  c.receive(record(0.0, 5, ipv4(192, 168, 0, 1), ipv4(10, 1, 0, 1)), 1, 0.01);
  EXPECT_EQ(c.unattributed_records(), 1u);
  EXPECT_EQ(c.received_records(), 1u);
  EXPECT_EQ(c.sampled_packets(0, {0, 1}), 0u);
}

TEST(Collector, EstimateRescalesByRho) {
  const EgressMap map = two_pop_map();
  Collector c(map);
  c.receive(record(0.0, 50), 1, 0.01);
  EXPECT_DOUBLE_EQ(c.estimate_packets(0, {0, 1}, 0.01), 5000.0);
  EXPECT_THROW(c.estimate_packets(0, {0, 1}, 0.0), Error);
}

TEST(Collector, CustomBinLength) {
  const EgressMap map = two_pop_map();
  CollectorOptions options;
  options.bin_sec = 60.0;
  Collector c(map, options);
  EXPECT_EQ(c.bin_of(59.0), 0);
  EXPECT_EQ(c.bin_of(61.0), 1);
  CollectorOptions bad;
  bad.bin_sec = 0.0;
  EXPECT_THROW(Collector(map, bad), Error);
}

}  // namespace
}  // namespace netmon::netflow
