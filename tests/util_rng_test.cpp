#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace netmon {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, BelowStaysInRangeAndCoversAll) {
  Rng rng(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(42);
  int hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.005);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BinomialMeanAndEdgeCases) {
  Rng rng(42);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.binomial(100, 1.0), 100u);
  double sum = 0.0;
  const int reps = 20000;
  for (int i = 0; i < reps; ++i)
    sum += static_cast<double>(rng.binomial(1000, 0.2));
  // mean 200, sd of the mean ~ sqrt(160/reps) ~ 0.09
  EXPECT_NEAR(sum / reps, 200.0, 1.0);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng rng(42);
  Rng a = rng.split(1);
  Rng b = rng.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng r1(42), r2(42);
  Rng a = r1.split(9);
  Rng b = r2.split(9);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SubstreamIsDeterministic) {
  const Rng r1(42), r2(42);
  Rng a = r1.substream(9);
  Rng b = r2.substream(9);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SubstreamDoesNotAdvanceParent) {
  Rng with(42), without(42);
  (void)with.substream(1);
  (void)with.substream(2);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(with(), without());
}

TEST(Rng, SubstreamsAreIndependentAcrossShards) {
  const Rng base(42);
  Rng a = base.substream(0);
  Rng b = base.substream(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, SubstreamIndependentOfDerivationOrder) {
  // Shard k's stream must not depend on how many other shards exist or
  // in which order they were derived — the parallel fan-out contract.
  const Rng base(7);
  Rng late = base.substream(5);
  const Rng base2(7);
  (void)base2.substream(0);
  (void)base2.substream(3);
  Rng early = base2.substream(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(late(), early());
}

TEST(Rng, SubstreamDependsOnParentState) {
  // After drawing, the parent state changed, so substream(k) yields a
  // different (still deterministic) stream.
  Rng base(42);
  Rng before = base.substream(1);
  (void)base();
  Rng after = base.substream(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (before() == after());
  EXPECT_LT(equal, 3);
}

TEST(Rng, WorksWithStdDistributions) {
  Rng rng(42);
  std::normal_distribution<double> normal(0.0, 1.0);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = normal(rng);
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

}  // namespace
}  // namespace netmon
