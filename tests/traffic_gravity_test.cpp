#include "traffic/gravity.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "topo/geant.hpp"
#include "util/error.hpp"

namespace netmon::traffic {
namespace {

TEST(Gravity, TotalRateIsPreserved) {
  const topo::Graph g = test::line_graph();
  GravityOptions options;
  options.total_pkt_per_sec = 12345.0;
  const TrafficMatrix tm = gravity_matrix(g, options);
  EXPECT_NEAR(total_rate(tm), 12345.0, 1e-6);
  EXPECT_EQ(tm.size(), 12u);  // 4*3 ordered pairs
}

TEST(Gravity, DemandsProportionalToMassProduct) {
  const topo::Graph g = test::line_graph();  // masses 4,3,2,1
  const TrafficMatrix tm = gravity_matrix(g);
  const double d01 = demand_for(tm, {0, 1});  // 4*3
  const double d23 = demand_for(tm, {2, 3});  // 2*1
  EXPECT_NEAR(d01 / d23, 6.0, 1e-9);
  // Gravity is symmetric for symmetric masses.
  EXPECT_NEAR(demand_for(tm, {0, 1}), demand_for(tm, {1, 0}), 1e-9);
}

TEST(Gravity, ZeroMassNodesExcluded) {
  topo::Graph g;
  g.add_node("A", 1.0);
  g.add_node("B", 1.0);
  g.add_node("EXT", 0.0);
  const TrafficMatrix tm = gravity_matrix(g);
  EXPECT_EQ(tm.size(), 2u);
  for (const Demand& d : tm) {
    EXPECT_NE(d.od.src, 2u);
    EXPECT_NE(d.od.dst, 2u);
  }
}

TEST(Gravity, JanetExcludedFromGeantBackground) {
  const topo::GeantNetwork net = topo::make_geant();
  const TrafficMatrix tm = gravity_matrix(net.graph);
  EXPECT_EQ(tm.size(), 23u * 22u);
  for (const Demand& d : tm) {
    EXPECT_NE(d.od.src, net.janet);
    EXPECT_NE(d.od.dst, net.janet);
  }
}

TEST(Gravity, RejectsDegenerateInputs) {
  topo::Graph g;
  g.add_node("A", 1.0);
  EXPECT_THROW(gravity_matrix(g), Error);  // single active node
  GravityOptions bad;
  bad.total_pkt_per_sec = 0.0;
  const topo::Graph line = test::line_graph();
  EXPECT_THROW(gravity_matrix(line, bad), Error);
}

TEST(TrafficMatrixHelpers, ScaleAndQuery) {
  TrafficMatrix tm{{{0, 1}, 100.0}, {{1, 0}, 50.0}};
  const TrafficMatrix doubled = scaled(tm, 2.0);
  EXPECT_DOUBLE_EQ(total_rate(doubled), 300.0);
  EXPECT_DOUBLE_EQ(demand_for(doubled, {0, 1}), 200.0);
  EXPECT_DOUBLE_EQ(demand_for(doubled, {0, 2}), 0.0);
}

}  // namespace
}  // namespace netmon::traffic
