// Stress: many concurrent producers hammering a deliberately tiny queue.
// Every future must resolve with a typed response (admission and
// backpressure never lose a request), and the stats must balance. Runs
// under TSan in CI (scripts/ci.sh) to certify the queue/dispatcher/pool
// interplay data-race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "serve/serve.hpp"
#include "helpers.hpp"

namespace netmon::serve {
namespace {

using namespace std::chrono_literals;

struct Tally {
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> expired{0};
  std::atomic<std::uint64_t> shutdown{0};
  std::atomic<std::uint64_t> bad{0};
  std::atomic<std::uint64_t> other{0};

  void record(ResponseStatus status) {
    switch (status) {
      case ResponseStatus::kOk: ++ok; break;
      case ResponseStatus::kRejectedQueueFull: ++rejected; break;
      case ResponseStatus::kDeadlineExpired: ++expired; break;
      case ResponseStatus::kShutdown: ++shutdown; break;
      case ResponseStatus::kBadRequest: ++bad; break;
      default: ++other; break;
    }
  }

  std::uint64_t total() const {
    return ok + rejected + expired + shutdown + bad + other;
  }
};

TEST(ServeStress, ConcurrentProducersAgainstTinyQueue) {
  topo::Graph graph = test::line_graph();
  core::MeasurementTask task;
  task.ods = {{0, 3}, {1, 3}};
  task.expected_packets = {5000.0, 3000.0};
  traffic::LinkLoads loads(graph.link_count(), 1000.0);

  ServerOptions options;
  options.queue_capacity = 4;  // tiny on purpose: exercise backpressure
  options.batch.max_batch = 3;
  options.batch.linger = 1ms;
  options.problem.theta = 50000.0;
  Server server(graph, task, loads, options);

  constexpr int kProducers = 8;
  constexpr int kPerProducer = 40;
  Tally tally;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      LoopbackTransport client(server, /*via_wire=*/p % 2 == 0);
      std::vector<std::future<Response>> futures;
      for (int i = 0; i < kPerProducer; ++i) {
        Request request;
        request.id =
            static_cast<std::uint64_t>(p) * kPerProducer + i;
        switch (i % 4) {
          case 0:
            break;  // plain solve
          case 1:
            request.kind = RequestKind::kWhatIfBatch;
            // Link 1 is a reverse-direction link no task path uses, so
            // the scenario stays routable.
            request.what_if = {{1}};
            break;
          case 2:
            request.iteration_budget = 1;  // deterministic truncation
            break;
          case 3:
            request.deadline_ms = 1;  // may expire in queue or mid-solve
            break;
        }
        futures.push_back(client.send(std::move(request)));
        if (i % 8 == 7) std::this_thread::yield();
      }
      for (auto& future : futures) tally.record(future.get().status);
    });
  }
  for (auto& producer : producers) producer.join();

  // Every single request was answered, with a typed status.
  EXPECT_EQ(tally.total(), static_cast<std::uint64_t>(kProducers) *
                               kPerProducer);
  EXPECT_EQ(tally.other, 0u);
  EXPECT_EQ(tally.bad, 0u);
  EXPECT_EQ(tally.shutdown, 0u);
  EXPECT_GT(tally.ok, 0u);

  const StatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.submitted, tally.total());
  EXPECT_EQ(stats.rejected_queue_full, tally.rejected);
  EXPECT_EQ(stats.served_ok, tally.ok);
  EXPECT_EQ(stats.expired_in_queue + stats.expired_mid_solve,
            tally.expired);
  EXPECT_EQ(stats.submitted, stats.enqueued + stats.rejected_queue_full);
  EXPECT_LE(stats.batch_size_max, 3.0);
  EXPECT_LE(stats.queue_depth_max, 4.0);

  // Stopping with traffic settled is idempotent and answers nothing new.
  server.stop();
  server.stop();
  EXPECT_EQ(server.stats().rejected_shutdown, 0u);
}

TEST(ServeStress, SubmittersRacingShutdownAlwaysGetAnswers) {
  topo::Graph graph = test::line_graph();
  core::MeasurementTask task;
  task.ods = {{0, 3}};
  task.expected_packets = {5000.0};
  traffic::LinkLoads loads(graph.link_count(), 1000.0);

  ServerOptions options;
  options.queue_capacity = 4;
  options.problem.theta = 50000.0;
  Server server(graph, task, loads, options);

  Tally tally;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      LoopbackTransport client(server);
      std::vector<std::future<Response>> futures;
      for (int i = 0; i < 30; ++i) {
        Request request;
        request.id = static_cast<std::uint64_t>(p * 100 + i);
        futures.push_back(client.send(std::move(request)));
      }
      for (auto& future : futures) tally.record(future.get().status);
    });
  }
  // Stop while producers are mid-stream.
  std::this_thread::sleep_for(1ms);
  server.stop();
  for (auto& producer : producers) producer.join();

  EXPECT_EQ(tally.total(), 120u);
  EXPECT_EQ(tally.other, 0u);
  EXPECT_EQ(tally.expired, 0u);
  EXPECT_EQ(tally.bad, 0u);
}

}  // namespace
}  // namespace netmon::serve
