#include "ingest/trace.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace netmon::ingest {
namespace {

using namespace std::chrono_literals;

std::vector<PacketRecord> sample_packets() {
  std::vector<PacketRecord> packets;
  for (int i = 0; i < 10; ++i) {
    PacketRecord p;
    p.key.src_ip = 0x0a000001u + static_cast<std::uint32_t>(i % 3);
    p.key.dst_ip = 0x0a010002u;
    p.key.src_port = static_cast<std::uint16_t>(1000 + i);
    p.key.dst_port = 443;
    p.key.proto = (i % 2 == 0) ? 6 : 17;  // alternate TCP / UDP
    p.bytes = 40 + static_cast<std::uint32_t>(i) * 100;
    p.ts_sec = 0.25 * i;
    if (i == 8) p.flags = kPacketFin;  // i == 8 is TCP (even)
    packets.push_back(p);
  }
  return packets;
}

std::vector<PacketRecord> drain(TraceReader& reader) {
  std::vector<PacketRecord> out;
  PacketRecord buf[4];
  while (!reader.exhausted()) {
    const std::size_t n = reader.next_batch(buf, 4);
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  return out;
}

// --- round trip ---

TEST(Trace, EncodeDecodeRoundTripsEverything) {
  const std::vector<PacketRecord> in = sample_packets();
  TraceReader reader(encode_trace(in), {.link = 3});
  EXPECT_EQ(reader.link(), 3u);
  EXPECT_EQ(reader.frame_count(), in.size());

  const std::vector<PacketRecord> out = drain(reader);
  ASSERT_EQ(out.size(), in.size());
  EXPECT_EQ(reader.malformed_packets(), 0u);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].key, in[i].key) << "packet " << i;
    EXPECT_EQ(out[i].bytes, in[i].bytes) << "packet " << i;
    EXPECT_EQ(out[i].fin(), in[i].fin()) << "packet " << i;
    // Pcap timestamps are microsecond-quantized.
    EXPECT_NEAR(out[i].ts_sec, in[i].ts_sec, 1e-6) << "packet " << i;
  }
}

TEST(Trace, FileRoundTrip) {
  const std::vector<PacketRecord> in = sample_packets();
  const std::string path =
      ::testing::TempDir() + "/netmon_ingest_trace_test.pcap";
  write_trace(path, in);
  TraceReader reader = TraceReader::from_file(path, {.link = 1});
  EXPECT_EQ(reader.frame_count(), in.size());
  EXPECT_EQ(drain(reader).size(), in.size());
  std::remove(path.c_str());
}

TEST(Trace, EmptyTraceIsValidAndExhausted) {
  TraceReader reader(encode_trace({}));
  EXPECT_EQ(reader.frame_count(), 0u);
  EXPECT_TRUE(reader.exhausted());
  PacketRecord buf[1];
  EXPECT_EQ(reader.next_batch(buf, 1), 0u);
}

// --- framing rejection (the reader must throw, never over-read) ---

TEST(Trace, RejectsTruncatedGlobalHeader) {
  std::vector<std::uint8_t> bytes = encode_trace(sample_packets());
  bytes.resize(10);
  EXPECT_THROW(TraceReader{std::move(bytes)}, Error);
}

TEST(Trace, RejectsBadMagic) {
  std::vector<std::uint8_t> bytes = encode_trace(sample_packets());
  bytes[0] ^= 0xff;
  EXPECT_THROW(TraceReader{std::move(bytes)}, Error);
}

TEST(Trace, RejectsWrongLinkType) {
  std::vector<std::uint8_t> bytes = encode_trace(sample_packets());
  bytes[20] = 1;  // network field -> LINKTYPE_ETHERNET
  EXPECT_THROW(TraceReader{std::move(bytes)}, Error);
}

TEST(Trace, RejectsTruncatedFrameHeader) {
  std::vector<std::uint8_t> bytes = encode_trace(sample_packets());
  bytes.resize(24 + 8);  // half a record header after the global header
  EXPECT_THROW(TraceReader{std::move(bytes)}, Error);
}

TEST(Trace, RejectsOverlongCaplen) {
  std::vector<std::uint8_t> bytes = encode_trace(sample_packets());
  // First frame's incl_len claims far more payload than the file holds.
  const std::size_t incl_len_off = 24 + 8;
  bytes[incl_len_off + 0] = 0xff;
  bytes[incl_len_off + 1] = 0xff;
  bytes[incl_len_off + 2] = 0x00;
  bytes[incl_len_off + 3] = 0x00;
  EXPECT_THROW(TraceReader{std::move(bytes)}, Error);
}

TEST(Trace, RejectsCaplenAboveSnaplen) {
  // A caplen that fits the buffer but exceeds the declared snaplen.
  std::vector<PacketRecord> one(1);
  one[0].key.proto = 17;
  one[0].bytes = 40;
  std::vector<std::uint8_t> bytes = encode_trace(one);
  bytes[16] = 4;  // snaplen := 4 (little-endian low byte)
  bytes[17] = bytes[18] = bytes[19] = 0;
  EXPECT_THROW(TraceReader{std::move(bytes)}, Error);
}

TEST(Trace, RejectsTruncatedPayload) {
  std::vector<std::uint8_t> bytes = encode_trace(sample_packets());
  bytes.resize(bytes.size() - 5);  // cut into the last frame's payload
  EXPECT_THROW(TraceReader{std::move(bytes)}, Error);
}

// --- fuzz: arbitrary inputs either throw Error or replay sanely ---

TEST(Trace, FuzzRandomBuffersNeverCrash) {
  Rng rng(123);
  for (int round = 0; round < 300; ++round) {
    std::vector<std::uint8_t> bytes(rng.below(512));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
    try {
      TraceReader reader(std::move(bytes));
      const std::vector<PacketRecord> out = drain(reader);
      EXPECT_LE(out.size(), reader.frame_count());
    } catch (const Error&) {
      // rejected: fine
    }
  }
}

TEST(Trace, FuzzBitFlipsOnValidTrace) {
  const std::vector<std::uint8_t> valid = encode_trace(sample_packets());
  Rng rng(321);
  for (int round = 0; round < 500; ++round) {
    std::vector<std::uint8_t> bytes = valid;
    const std::size_t pos = rng.below(bytes.size());
    bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    try {
      TraceReader reader(std::move(bytes));
      // Framing survived the flip: replay must complete and account for
      // every frame as either delivered or malformed.
      const std::vector<PacketRecord> out = drain(reader);
      EXPECT_EQ(out.size() + reader.malformed_packets(),
                reader.frame_count());
    } catch (const Error&) {
      // rejected: fine
    }
  }
}

TEST(Trace, FuzzTruncationsOnValidTrace) {
  const std::vector<std::uint8_t> valid = encode_trace(sample_packets());
  for (std::size_t len = 0; len < valid.size(); ++len) {
    std::vector<std::uint8_t> bytes(valid.begin(), valid.begin() + len);
    try {
      TraceReader reader(std::move(bytes));
      drain(reader);  // truncation on an exact frame boundary is valid
    } catch (const Error&) {
      // rejected: fine
    }
  }
}

// --- pacing ---

TEST(Trace, ManualClockPacingReleasesOnSchedule) {
  std::vector<PacketRecord> in;
  for (int i = 0; i < 4; ++i) {
    PacketRecord p;
    p.key.proto = 17;
    p.bytes = 40;
    p.ts_sec = static_cast<double>(i);  // t = 0, 1, 2, 3
    in.push_back(p);
  }
  obs::ManualClock clock;
  TraceReader reader(encode_trace(in),
                     {.link = 0, .speed = 1.0, .clock = &clock});
  PacketRecord buf[8];
  // At elapsed 0 only the t=0 packet is due.
  EXPECT_EQ(reader.next_batch(buf, 8), 1u);
  EXPECT_EQ(reader.next_batch(buf, 8), 0u);
  EXPECT_FALSE(reader.exhausted());
  // +2s of clock at speed 1 releases t=1 and t=2.
  clock.advance(2s);
  EXPECT_EQ(reader.next_batch(buf, 8), 2u);
  EXPECT_EQ(reader.next_batch(buf, 8), 0u);
  clock.advance(10s);
  EXPECT_EQ(reader.next_batch(buf, 8), 1u);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Trace, DoubleSpeedHalvesTheWait) {
  std::vector<PacketRecord> in(2);
  in[0].key.proto = 17;
  in[0].bytes = 40;
  in[1] = in[0];
  in[1].ts_sec = 4.0;
  obs::ManualClock clock;
  TraceReader reader(encode_trace(in),
                     {.link = 0, .speed = 2.0, .clock = &clock});
  PacketRecord buf[4];
  EXPECT_EQ(reader.next_batch(buf, 4), 1u);
  clock.advance(2s);  // 2 clock-seconds * speed 2 = 4 trace-seconds
  EXPECT_EQ(reader.next_batch(buf, 4), 1u);
  EXPECT_TRUE(reader.exhausted());
}

}  // namespace
}  // namespace netmon::ingest
