#include "core/utility.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace netmon::core {
namespace {

TEST(SreUtility, PivotFormula) {
  // x0 = 3c/(1+c).
  const SreUtility m(0.002);
  EXPECT_NEAR(m.pivot(), 3.0 * 0.002 / 1.002, 1e-15);
  EXPECT_NEAR(m.pivot(), 0.005988, 1e-6);  // paper Fig. 1, S = 500
}

TEST(SreUtility, PaperFigureOnePivots) {
  // Fig. 1 labels: (0.00599, 0.668) for E[1/S]=1/500 and
  // (0.000599, 0.666) for E[1/S]=1/5000.
  const SreUtility m500(1.0 / 500.0);
  EXPECT_NEAR(m500.pivot(), 0.00599, 1e-5);
  EXPECT_NEAR(m500.value(m500.pivot()), 0.668, 5e-4);
  const SreUtility m5000(1.0 / 5000.0);
  EXPECT_NEAR(m5000.pivot(), 0.000599, 1e-6);
  EXPECT_NEAR(m5000.value(m5000.pivot()), 0.6668, 5e-4);
}

TEST(SreUtility, ZeroAtOrigin) {
  const SreUtility m(0.01);
  EXPECT_DOUBLE_EQ(m.value(0.0), 0.0);
}

TEST(SreUtility, MatchesAccuracyFormAbovePivot) {
  // M(x) = 1 - c(1-x)/x for x >= x0.
  const SreUtility m(0.002);
  for (double x : {0.01, 0.05, 0.3, 1.0}) {
    EXPECT_NEAR(m.value(x), 1.0 - 0.002 * (1.0 - x) / x, 1e-14);
  }
  EXPECT_NEAR(m.value(1.0), 1.0, 1e-14);  // perfect sampling, zero error
}

TEST(SreUtility, CTwoJoinAtPivot) {
  const SreUtility m(0.005);
  const double x0 = m.pivot();
  const double eps = 1e-10;
  EXPECT_NEAR(m.value(x0 - eps), m.value(x0 + eps),
              10.0 * m.deriv(x0) * eps);
  EXPECT_NEAR(m.deriv(x0 - eps), m.deriv(x0 + eps), 1e-4);
  EXPECT_NEAR(m.second(x0 - eps), m.second(x0 + eps),
              1e-4 * std::abs(m.second(x0)));
}

TEST(SreUtility, StrictlyIncreasingAndConcave) {
  const SreUtility m(0.01);
  double prev_value = -1.0;
  double prev_deriv = 1e300;
  for (double x = 0.0; x <= 1.0; x += 0.001) {
    const double v = m.value(x);
    const double d = m.deriv(x);
    EXPECT_GT(v, prev_value);
    EXPECT_GT(d, 0.0);
    EXPECT_LE(d, prev_deriv);   // concavity: derivative non-increasing
    EXPECT_LT(m.second(x), 0.0);  // strictly concave
    prev_value = v;
    prev_deriv = d;
  }
}

TEST(SreUtility, DerivMatchesFiniteDifference) {
  const SreUtility m(0.003);
  for (double x : {0.0005, 0.002, 0.05, 0.4}) {
    const double h = 1e-7;
    const double fd = (m.value(x + h) - m.value(x - h)) / (2.0 * h);
    EXPECT_NEAR(m.deriv(x) / fd, 1.0, 1e-5) << "x=" << x;
    // Larger step for the second difference: it suffers from
    // catastrophic cancellation at small h.
    const double h2 = 1e-4;
    const double fd2 = (m.value(x + h2) - 2.0 * m.value(x) + m.value(x - h2)) /
                       (h2 * h2);
    EXPECT_NEAR(m.second(x) / fd2, 1.0, 5e-2) << "x=" << x;
  }
}

TEST(SreUtility, UtilityConsistentWithExpectedSre) {
  // Above the pivot, M = 1 - E[SRE].
  const double c = 0.001;
  const SreUtility m(c);
  const double rho = 0.02;
  EXPECT_NEAR(m.value(rho), 1.0 - c * (1.0 - rho) / rho, 1e-14);
}

TEST(SreUtility, RejectsBadC) {
  EXPECT_THROW(SreUtility(0.0), Error);
  EXPECT_THROW(SreUtility(-0.1), Error);
  EXPECT_THROW(SreUtility(0.6), Error);  // pivot would exceed 1
  EXPECT_NO_THROW(SreUtility(0.5));
}

TEST(LogUtility, BasicProperties) {
  const LogUtility m(0.1);
  EXPECT_DOUBLE_EQ(m.value(0.0), 0.0);
  EXPECT_GT(m.deriv(0.0), 0.0);
  EXPECT_LT(m.second(0.0), 0.0);
  EXPECT_NEAR(m.value(0.1), std::log(2.0), 1e-12);
  EXPECT_THROW(LogUtility(0.0), Error);
}

}  // namespace
}  // namespace netmon::core
