#include "opt/line_search.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace netmon::opt {
namespace {

// Quadratic test objective f(p) = -sum a_j (p_j - c_j)^2.
class Quadratic final : public Objective {
 public:
  Quadratic(std::vector<double> a, std::vector<double> c)
      : a_(std::move(a)), c_(std::move(c)) {}
  std::size_t dimension() const override { return a_.size(); }
  double value(std::span<const double> p) const override {
    double v = 0.0;
    for (std::size_t j = 0; j < a_.size(); ++j)
      v -= a_[j] * (p[j] - c_[j]) * (p[j] - c_[j]);
    return v;
  }
  void gradient(std::span<const double> p,
                std::span<double> out) const override {
    for (std::size_t j = 0; j < a_.size(); ++j)
      out[j] = -2.0 * a_[j] * (p[j] - c_[j]);
  }
  double directional_second(std::span<const double>,
                            std::span<const double> s) const override {
    double v = 0.0;
    for (std::size_t j = 0; j < a_.size(); ++j) v -= 2.0 * a_[j] * s[j] * s[j];
    return v;
  }

 private:
  std::vector<double> a_, c_;
};

TEST(LineSearch, NewtonFindsQuadraticMaxInOneStep) {
  const Quadratic f({1.0}, {2.0});
  const std::vector<double> p{0.0};
  const std::vector<double> d{1.0};
  const auto r = maximize_along(f, p, d, 10.0);
  EXPECT_NEAR(r.t, 2.0, 1e-10);
  EXPECT_FALSE(r.hit_boundary);
  EXPECT_LE(r.iters, 3);  // Newton is exact on quadratics
}

TEST(LineSearch, StopsAtBoundaryWhenAscending) {
  const Quadratic f({1.0}, {5.0});
  const std::vector<double> p{0.0};
  const std::vector<double> d{1.0};
  const auto r = maximize_along(f, p, d, 1.5);
  EXPECT_DOUBLE_EQ(r.t, 1.5);
  EXPECT_TRUE(r.hit_boundary);
}

TEST(LineSearch, BisectionMatchesNewton) {
  const Quadratic f({1.0, 3.0}, {1.0, 0.5});
  const std::vector<double> p{0.0, 0.0};
  const std::vector<double> d{1.0, 0.7};
  LineSearchOptions newton;
  LineSearchOptions bisect;
  bisect.newton = false;
  bisect.max_iters = 200;
  const auto rn = maximize_along(f, p, d, 5.0, newton);
  const auto rb = maximize_along(f, p, d, 5.0, bisect);
  EXPECT_NEAR(rn.t, rb.t, 1e-6);
  EXPECT_LT(rn.iters, rb.iters);  // Newton converges faster
}

TEST(LineSearch, NonQuadraticConcave) {
  // f(p) = log(1+p0): max along d=(1) on [0,10] is at the boundary.
  class LogObj final : public Objective {
   public:
    std::size_t dimension() const override { return 1; }
    double value(std::span<const double> p) const override {
      return std::log1p(p[0]);
    }
    void gradient(std::span<const double> p,
                  std::span<double> out) const override {
      out[0] = 1.0 / (1.0 + p[0]);
    }
    double directional_second(std::span<const double> p,
                              std::span<const double> s) const override {
      return -s[0] * s[0] / ((1.0 + p[0]) * (1.0 + p[0]));
    }
  } f;
  const std::vector<double> p{0.0};
  const std::vector<double> d{1.0};
  const auto r = maximize_along(f, p, d, 10.0);
  EXPECT_TRUE(r.hit_boundary);  // log is increasing: never levels off
  EXPECT_DOUBLE_EQ(r.t, 10.0);
}

TEST(LineSearch, ValidatesPreconditions) {
  const Quadratic f({1.0}, {2.0});
  const std::vector<double> p{0.0};
  const std::vector<double> d{1.0};
  EXPECT_THROW(maximize_along(f, p, d, 0.0), Error);
}

TEST(LineSearch, DescentDirectionReportsNoProgress) {
  // Near numerical convergence the solver can hand over a direction with
  // phi'(0) <= 0; the search reports t = 0 rather than failing.
  const Quadratic f({1.0}, {2.0});
  const std::vector<double> p{0.0};
  const std::vector<double> descent{-1.0};
  const auto r = maximize_along(f, p, descent, 1.0);
  EXPECT_DOUBLE_EQ(r.t, 0.0);
  EXPECT_FALSE(r.hit_boundary);
}

}  // namespace
}  // namespace netmon::opt
