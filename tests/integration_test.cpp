// End-to-end reproduction checks: the full Table-I experiment (solve,
// generate traffic, simulate sampling, measure accuracy) and the paper's
// qualitative claims (§V-B, §V-C).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "netmon.hpp"
#include "util/stats.hpp"

namespace netmon {
namespace {

class TableOneExperiment : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario = new core::GeantScenario(core::make_geant_scenario());
    problem = new core::PlacementProblem(core::make_problem(*scenario));
    solution = new core::PlacementSolution(core::solve_placement(*problem));

    // Task-OD flow populations (ground truth traffic).
    Rng rng(2024);
    traffic::TrafficMatrix task_demands;
    for (std::size_t k = 0; k < scenario->task.ods.size(); ++k) {
      task_demands.push_back(
          {scenario->task.ods[k],
           scenario->task.expected_packets[k] / scenario->task.interval_sec});
    }
    flows = new std::vector<std::vector<traffic::Flow>>(
        traffic::generate_all_flows(rng, task_demands));
  }
  static void TearDownTestSuite() {
    delete flows;
    delete solution;
    delete problem;
    delete scenario;
  }

  static core::GeantScenario* scenario;
  static core::PlacementProblem* problem;
  static core::PlacementSolution* solution;
  static std::vector<std::vector<traffic::Flow>>* flows;
};

core::GeantScenario* TableOneExperiment::scenario = nullptr;
core::PlacementProblem* TableOneExperiment::problem = nullptr;
core::PlacementSolution* TableOneExperiment::solution = nullptr;
std::vector<std::vector<traffic::Flow>>* TableOneExperiment::flows = nullptr;

TEST_F(TableOneExperiment, TwentyRunAverageAccuracyAboveNinety) {
  // Paper §V-B: 20 sampling experiments; average accuracy above 0.89 for
  // every OD pair.
  const auto& matrix = problem->routing();
  const auto rhos =
      sampling::effective_rates_approx(matrix, solution->rates);
  std::vector<RunningStats> per_od(matrix.od_count());
  Rng rng(7);
  for (int run = 0; run < 20; ++run) {
    const auto counts =
        sampling::simulate_sampling(rng, matrix, *flows, solution->rates);
    const auto accs = estimate::accuracies(counts, rhos);
    for (std::size_t k = 0; k < accs.size(); ++k) per_od[k].add(accs[k]);
  }
  // The paper reports per-OD average accuracy above 0.89 on its data;
  // with our synthetic loads the optimum spends slightly less effective
  // rate on the smallest OD pairs, so we assert >= 0.82 per OD and a
  // fleet-wide mean >= 0.91 (see EXPERIMENTS.md for the comparison).
  RunningStats overall;
  for (std::size_t k = 0; k < per_od.size(); ++k) {
    EXPECT_GT(per_od[k].mean(), 0.82)
        << "JANET-"
        << scenario->net.graph.node(matrix.od(k).dst).name;
    overall.add(per_od[k].mean());
  }
  EXPECT_GT(overall.mean(), 0.91);
}

TEST_F(TableOneExperiment, PredictedAccuracyMatchesMeasured) {
  // The analytic half-normal prediction in OdReport must track the
  // Monte-Carlo measurement within a few points for every OD pair.
  const auto& matrix = problem->routing();
  const auto rhos =
      sampling::effective_rates_approx(matrix, solution->rates);
  std::vector<RunningStats> per_od(matrix.od_count());
  Rng rng(99);
  for (int run = 0; run < 40; ++run) {
    const auto counts =
        sampling::simulate_sampling(rng, matrix, *flows, solution->rates);
    const auto accs = estimate::accuracies(counts, rhos);
    for (std::size_t k = 0; k < accs.size(); ++k) per_od[k].add(accs[k]);
  }
  for (std::size_t k = 0; k < per_od.size(); ++k) {
    EXPECT_NEAR(solution->per_od[k].predicted_accuracy, per_od[k].mean(),
                0.05)
        << "JANET-" << scenario->net.graph.node(matrix.od(k).dst).name;
  }
}

TEST(EcmpPlacement, FractionalRoutingEndToEnd) {
  // A diamond with two equal-cost paths: the ECMP problem must build
  // fractional rows, solve, and simulate consistently.
  topo::Graph g;
  const auto s0 = g.add_node("S", 2.0);
  const auto x = g.add_node("X", 1.0);
  const auto y = g.add_node("Y", 1.0);
  const auto t = g.add_node("T", 2.0);
  g.add_duplex(s0, x, 1e9, 1.0);
  g.add_duplex(s0, y, 1e9, 1.0);
  g.add_duplex(x, t, 1e9, 1.0);
  g.add_duplex(y, t, 1e9, 1.0);

  core::MeasurementTask task;
  task.interval_sec = 300.0;
  task.ods.push_back({s0, t});
  task.expected_packets.push_back(2000.0 * 300.0);

  traffic::TrafficMatrix demands =
      traffic::gravity_matrix(g, {.total_pkt_per_sec = 3e4, .min_mass = 0.0});
  demands.push_back({{s0, t}, 2000.0});
  const traffic::LinkLoads loads = traffic::link_loads_ecmp(g, demands);

  core::ProblemOptions options;
  options.theta = 5000.0;
  options.ecmp = true;
  const core::PlacementProblem problem(g, task, loads, options);
  const core::PlacementSolution solution = core::solve_placement(problem);
  EXPECT_EQ(solution.status, opt::SolveStatus::kOptimal);
  EXPECT_GT(solution.per_od[0].rho_approx, 0.0);

  // Simulated sampling agrees with the fractional effective rate.
  Rng rng(3);
  std::vector<std::vector<traffic::Flow>> flows;
  flows.push_back(
      traffic::generate_flows(rng, {{s0, t}, 2000.0}, 0));
  RunningStats ratio;
  for (int rep = 0; rep < 40; ++rep) {
    const auto counts = sampling::simulate_sampling(
        rng, problem.routing(), flows, solution.rates);
    ratio.add(static_cast<double>(counts[0].sampled_packets) /
              (solution.per_od[0].rho_approx *
               static_cast<double>(counts[0].actual_packets)));
  }
  EXPECT_NEAR(ratio.mean(), 1.0, 0.03);
}

TEST_F(TableOneExperiment, GroundTruthSizesNearNominal) {
  for (std::size_t k = 0; k < flows->size(); ++k) {
    const double actual =
        static_cast<double>(traffic::total_packets((*flows)[k]));
    const double nominal = scenario->task.expected_packets[k];
    EXPECT_NEAR(actual / nominal, 1.0, 0.35) << "OD " << k;
  }
}

TEST_F(TableOneExperiment, LinearizationErrorTiny) {
  // Validates assumption (7) at the optimal rates (§V-B claim i).
  EXPECT_LT(sampling::max_linearization_error(problem->routing(),
                                              solution->rates),
            5e-3);
}

TEST_F(TableOneExperiment, OptimalBeatsUniformOnWorstOd) {
  const auto uniform = core::evaluate_rates(
      *problem, core::uniform_rates(*problem));
  auto worst = [](const core::PlacementSolution& s) {
    double w = 1.0;
    for (const auto& od : s.per_od) w = std::min(w, od.utility);
    return w;
  };
  EXPECT_GT(worst(*solution), worst(uniform));
}

TEST_F(TableOneExperiment, AccessLinkNeedsMoreCapacityForSameAccuracy) {
  // Paper §V-C: matching the optimum's worst effective rate with the
  // access-link-only strategy requires ~70% more capacity.
  // With a single monitor every OD pair gets the same effective rate, so
  // matching the optimum's per-OD accuracy requires the access rate to
  // reach the LARGEST effective rate of the optimum (the one given to
  // the smallest OD pair, JANET-LU).
  double max_rho = 0.0;
  for (const auto& od : solution->per_od)
    max_rho = std::max(max_rho, od.rho_approx);
  const double theta_needed = core::theta_for_single_link(
      *problem, scenario->net.access_in, max_rho);
  EXPECT_GT(theta_needed, problem->theta() * 1.2);
}

TEST_F(TableOneExperiment, NetflowPipelineReproducesFastPath) {
  // Scale down to keep the per-packet pipeline cheap: reuse the smallest
  // eight OD pairs only.
  const auto& graph = scenario->net.graph;
  std::vector<routing::OdPair> ods(scenario->task.ods.end() - 8,
                                   scenario->task.ods.end());
  const auto matrix = routing::RoutingMatrix::single_path(graph, ods);
  std::vector<std::vector<traffic::Flow>> small(flows->end() - 8,
                                                flows->end());
  const netflow::EgressMap egress = netflow::EgressMap::for_pop_blocks(graph);
  netflow::NetflowPipeline pipeline(graph, matrix, solution->rates, egress);
  pipeline.run(small);
  for (std::size_t k = 0; k < ods.size(); ++k) {
    const double rho =
        sampling::effective_rate_approx(matrix, k, solution->rates);
    ASSERT_GT(rho, 0.0);
    const double actual =
        static_cast<double>(traffic::total_packets(small[k]));
    const double estimate =
        pipeline.collector().estimate_packets(0, ods[k], rho);
    const double sigma = std::sqrt(actual / rho);
    EXPECT_NEAR(estimate, actual, 5.0 * sigma + 1.0)
        << "JANET-" << graph.node(ods[k].dst).name;
  }
}

TEST(IntegrationRerouting, FailureTriggersReoptimization) {
  // The paper's motivation: placements must adapt to rerouting events.
  const auto uk_nl_link = [] {
    const core::GeantScenario s = core::make_geant_scenario();
    return *s.net.graph.find_link("UK", "NL");
  }();

  core::ScenarioOptions failed_options;
  failed_options.failed.insert(uk_nl_link);
  const core::GeantScenario failed = core::make_geant_scenario(failed_options);
  core::ProblemOptions options;
  options.failed.insert(uk_nl_link);
  const core::PlacementProblem problem(failed.net.graph, failed.task,
                                       failed.loads, options);
  const core::PlacementSolution solution = core::solve_placement(problem);
  EXPECT_EQ(solution.status, opt::SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(solution.rates[uk_nl_link], 0.0);
  // Every OD pair is still observed.
  for (const auto& od : solution.per_od) EXPECT_GT(od.rho_approx, 0.0);
}

}  // namespace
}  // namespace netmon
