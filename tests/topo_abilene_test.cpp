#include "topo/abilene.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/problem.hpp"
#include "core/solver.hpp"
#include "routing/spf.hpp"
#include "traffic/gravity.hpp"
#include "traffic/link_load.hpp"

namespace netmon::topo {
namespace {

TEST(Abilene, StructureMatchesTheBackbone) {
  const AbileneNetwork net = make_abilene();
  EXPECT_EQ(net.pops.size(), 11u);
  EXPECT_EQ(net.graph.node_count(), 12u);       // + customer
  EXPECT_EQ(net.graph.link_count(), 30u);       // 14 duplex + access pair
  EXPECT_FALSE(net.graph.link(net.access_in).monitorable);
}

TEST(Abilene, FullyConnected) {
  const AbileneNetwork net = make_abilene();
  const auto spf = routing::dijkstra(net.graph, net.customer);
  for (NodeId pop : net.pops) EXPECT_TRUE(spf.reachable(pop));
}

TEST(Abilene, TaskCoversAllOtherPops) {
  const auto rates = abilene_task_rates();
  EXPECT_EQ(rates.size(), 10u);  // every PoP except the attach point
  const AbileneNetwork net = make_abilene();
  for (const auto& [name, rate] : rates) {
    EXPECT_TRUE(net.graph.find_node(name).has_value()) << name;
    EXPECT_GT(rate, 0.0);
  }
}

// The paper's closing claim (§V-C): the method's benefits generalize
// beyond GEANT. Build the analogous customer task on Abilene and verify
// the same qualitative results.
class AbileneGeneralization : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net = new AbileneNetwork(make_abilene());
    core::MeasurementTask task;
    task.interval_sec = 300.0;
    traffic::TrafficMatrix demands = traffic::gravity_matrix(
        net->graph, {.total_pkt_per_sec = 6.0e5, .min_mass = 1e-12});
    for (const auto& [name, rate] : abilene_task_rates()) {
      const auto dst = *net->graph.find_node(name);
      task.ods.push_back({net->customer, dst});
      task.expected_packets.push_back(rate * task.interval_sec);
      demands.push_back({{net->customer, dst}, rate});
    }
    const traffic::LinkLoads loads = traffic::link_loads(net->graph, demands);
    core::ProblemOptions options;
    options.theta = 50000.0;
    problem = new core::PlacementProblem(net->graph, task, loads, options);
    solution = new core::PlacementSolution(core::solve_placement(*problem));
  }
  static void TearDownTestSuite() {
    delete solution;
    delete problem;
    delete net;
  }
  static AbileneNetwork* net;
  static core::PlacementProblem* problem;
  static core::PlacementSolution* solution;
};

AbileneNetwork* AbileneGeneralization::net = nullptr;
core::PlacementProblem* AbileneGeneralization::problem = nullptr;
core::PlacementSolution* AbileneGeneralization::solution = nullptr;

TEST_F(AbileneGeneralization, CertifiedOptimum) {
  EXPECT_EQ(solution->status, opt::SolveStatus::kOptimal);
  EXPECT_LE(solution->iterations, 2000);
  EXPECT_NEAR(solution->budget_used / problem->theta(), 1.0, 1e-6);
}

TEST_F(AbileneGeneralization, SameQualitativeStructureAsGeant) {
  // Low rates, few monitors per OD, every OD observed, balanced utility.
  const double max_rate =
      *std::max_element(solution->rates.begin(), solution->rates.end());
  EXPECT_LT(max_rate, 0.05);
  for (const core::OdReport& od : solution->per_od) {
    EXPECT_GE(od.monitored_links.size(), 1u);
    EXPECT_LE(od.monitored_links.size(), 3u);
    EXPECT_GT(od.utility, 0.9);
  }
  // Fewer active monitors than candidates (sparsity).
  EXPECT_LT(solution->active_monitors.size(), problem->candidates().size());
}

TEST_F(AbileneGeneralization, FirstHopMonitorsDominate) {
  // The attach PoP's outbound links carry the bulk of the budget, as the
  // UK links do on GEANT.
  double first_hop_share = 0.0;
  for (topo::LinkId id : solution->active_monitors) {
    if (net->graph.link(id).src == net->attach) {
      first_hop_share += solution->rates[id] *
                         problem->loads()[id] * 300.0 / problem->theta();
    }
  }
  EXPECT_GT(first_hop_share, 0.3);
}

}  // namespace
}  // namespace netmon::topo
