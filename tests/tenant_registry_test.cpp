// TenantRegistry contract: RCU snapshot swaps never invalidate a pinned
// reader, epochs are per-tenant and monotone, and quotas admit/reject
// deterministically on the injected clock. The concurrent sections are
// the TSan targets (scripts/ci.sh runs this test under -fsanitize=thread).
#include "tenant/tenant.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "helpers.hpp"
#include "obs/clock.hpp"
#include "util/error.hpp"

namespace netmon::tenant {
namespace {

using namespace std::chrono_literals;

TenantModel line_model(double theta = 50000.0) {
  TenantModel model;
  model.graph = test::line_graph();
  model.task.ods = {{0, 3}, {1, 3}};
  model.task.expected_packets = {5000.0, 3000.0};
  model.loads.assign(model.graph.link_count(), 1000.0);
  model.problem.theta = theta;
  return model;
}

TEST(TenantRegistry, PublishAcquireRoundTrip) {
  TenantRegistry registry;
  EXPECT_EQ(registry.acquire("geant"), nullptr);

  EXPECT_EQ(registry.publish("geant", line_model()), 1u);
  const auto snapshot = registry.acquire("geant");
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->name(), "geant");
  EXPECT_EQ(snapshot->epoch(), 1u);
  EXPECT_EQ(snapshot->model().problem.theta, 50000.0);
  EXPECT_EQ(snapshot->routing().od_count(), 2u);

  // The view points into the snapshot's own model.
  const serve::ModelView view = snapshot->view();
  EXPECT_EQ(view.graph, &snapshot->model().graph);
  EXPECT_EQ(view.defaults, &snapshot->model().problem);
}

TEST(TenantRegistry, EpochsArePerTenantAndMonotone) {
  TenantRegistry registry;
  EXPECT_EQ(registry.publish("a", line_model()), 1u);
  EXPECT_EQ(registry.publish("a", line_model(60000.0)), 2u);
  EXPECT_EQ(registry.publish("b", line_model()), 1u);
  EXPECT_EQ(registry.acquire("a")->epoch(), 2u);
  EXPECT_EQ(registry.acquire("a")->model().problem.theta, 60000.0);
  EXPECT_EQ(registry.acquire("b")->epoch(), 1u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(TenantRegistry, EmptyNameResolvesToTheDefaultTenant) {
  TenantRegistry registry;
  EXPECT_EQ(registry.acquire(""), nullptr);
  registry.publish("first", line_model());
  registry.publish("second", line_model());
  // First publish becomes the default.
  EXPECT_EQ(registry.acquire("")->name(), "first");
  registry.set_default("second");
  EXPECT_EQ(registry.acquire("")->name(), "second");
  EXPECT_THROW(registry.set_default("nope"), Error);
}

TEST(TenantRegistry, APinnedSnapshotSurvivesSwapAndRemove) {
  TenantRegistry registry;
  registry.publish("t", line_model(40000.0));
  const auto pinned = registry.acquire("t");

  registry.publish("t", line_model(70000.0));
  EXPECT_TRUE(registry.remove("t"));
  EXPECT_EQ(registry.acquire("t"), nullptr);

  // The pin still reads the model it resolved: RCU, not invalidation.
  EXPECT_EQ(pinned->epoch(), 1u);
  EXPECT_EQ(pinned->model().problem.theta, 40000.0);
  EXPECT_EQ(pinned->view().defaults->theta, 40000.0);
}

TEST(TenantRegistry, InconsistentModelsNeverPublish) {
  TenantRegistry registry;
  TenantModel bad = line_model();
  bad.loads.pop_back();  // loads no longer cover every link
  EXPECT_THROW(registry.publish("t", std::move(bad)), Error);
  EXPECT_EQ(registry.acquire("t"), nullptr);

  registry.publish("t", line_model());
  TenantModel bad2 = line_model();
  bad2.task.ods.clear();
  EXPECT_THROW(registry.publish("t", std::move(bad2)), Error);
  // The previous epoch keeps serving.
  EXPECT_EQ(registry.acquire("t")->epoch(), 1u);
}

// The TSan target: readers continuously acquire and *use* the snapshot
// (touching the model the writer would love to free) while the writer
// swaps epochs. No locks are held across the reads; correctness is
// "every read sees a complete, internally consistent snapshot".
TEST(TenantRegistry, ConcurrentAcquireDuringSwapsIsSafe) {
  TenantRegistry registry;
  registry.publish("t", line_model(10000.0));

  std::atomic<bool> go{true};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (go.load(std::memory_order_acquire)) {
        const auto snapshot = registry.acquire("t");
        ASSERT_NE(snapshot, nullptr);
        // Use the pinned model: epoch must match its own theta schedule
        // (epoch e was published with theta = 10000 * e).
        const double theta = snapshot->model().problem.theta;
        EXPECT_EQ(theta, 10000.0 * static_cast<double>(snapshot->epoch()));
        EXPECT_EQ(snapshot->routing().od_count(), 2u);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::uint64_t epoch = 2; epoch <= 20; ++epoch)
    registry.publish("t",
                     line_model(10000.0 * static_cast<double>(epoch)));

  // The writer can outrun thread startup on a loaded machine; make sure
  // at least one read actually overlapped the final state before
  // stopping.
  while (reads.load(std::memory_order_relaxed) == 0)
    std::this_thread::yield();
  go.store(false, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(registry.acquire("t")->epoch(), 20u);
}

TEST(TenantQuota, UnlimitedByDefault) {
  TenantQuota quota({});
  for (int i = 0; i < 1000; ++i)
    EXPECT_EQ(quota.try_admit(), QuotaDecision::kAdmit);
  EXPECT_EQ(quota.inflight(), 1000u);
}

TEST(TenantQuota, MaxInflightBoundsAdmission) {
  QuotaConfig config;
  config.max_inflight = 2;
  TenantQuota quota(config);
  EXPECT_EQ(quota.try_admit(), QuotaDecision::kAdmit);
  EXPECT_EQ(quota.try_admit(), QuotaDecision::kAdmit);
  EXPECT_EQ(quota.try_admit(), QuotaDecision::kTooManyInflight);
  quota.release();
  EXPECT_EQ(quota.try_admit(), QuotaDecision::kAdmit);
}

TEST(TenantQuota, TokenBucketRefillsOnTheInjectedClock) {
  obs::ManualClock clock;
  QuotaConfig config;
  config.tokens_per_sec = 2.0;
  config.burst = 3.0;
  TenantQuota quota(config, &clock);

  // The bucket starts full: the burst spends, then the bucket is dry.
  EXPECT_EQ(quota.try_admit(), QuotaDecision::kAdmit);
  EXPECT_EQ(quota.try_admit(), QuotaDecision::kAdmit);
  EXPECT_EQ(quota.try_admit(), QuotaDecision::kAdmit);
  EXPECT_EQ(quota.try_admit(), QuotaDecision::kRateLimited);

  // 500 ms at 2 tokens/s = 1 token.
  clock.advance(500ms);
  EXPECT_EQ(quota.try_admit(), QuotaDecision::kAdmit);
  EXPECT_EQ(quota.try_admit(), QuotaDecision::kRateLimited);

  // Refill caps at the burst no matter how long the tenant was quiet.
  clock.advance(1h);
  EXPECT_EQ(quota.try_admit(), QuotaDecision::kAdmit);
  EXPECT_EQ(quota.try_admit(), QuotaDecision::kAdmit);
  EXPECT_EQ(quota.try_admit(), QuotaDecision::kAdmit);
  EXPECT_EQ(quota.try_admit(), QuotaDecision::kRateLimited);
}

TEST(TenantQuota, RegistryQuotaSurvivesTenantRemoval) {
  TenantRegistry registry;
  registry.publish("t", line_model());
  QuotaConfig config;
  config.max_inflight = 1;
  registry.set_quota("t", config);

  const auto quota = registry.quota("t");
  ASSERT_NE(quota, nullptr);
  EXPECT_EQ(quota->try_admit(), QuotaDecision::kAdmit);
  registry.remove("t");
  // The in-flight request still releases into live state.
  quota->release();
  EXPECT_EQ(quota->inflight(), 0u);
}

}  // namespace
}  // namespace netmon::tenant
