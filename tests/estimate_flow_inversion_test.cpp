#include "estimate/flow_inversion.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace netmon::estimate {
namespace {

TEST(DetectionProbability, KnownValues) {
  EXPECT_DOUBLE_EQ(detection_probability(0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(detection_probability(10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(detection_probability(10, 1.0), 1.0);
  EXPECT_NEAR(detection_probability(1, 0.3), 0.3, 1e-15);
  EXPECT_NEAR(detection_probability(2, 0.5), 0.75, 1e-15);
  // Large flows are almost surely detected even at low rates.
  EXPECT_GE(detection_probability(10000, 0.01), 1.0 - 1e-12);
  EXPECT_THROW(detection_probability(1, 1.5), Error);
}

TEST(SampledSizeHistogram, BinsAndClips) {
  const auto h = sampled_size_histogram({0, 1, 1, 2, 5, 99}, 4);
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0], 2u);  // two records of size 1 (size-0 = undetected)
  EXPECT_EQ(h[1], 1u);
  EXPECT_EQ(h[2], 0u);
  EXPECT_EQ(h[3], 2u);  // 5 and 99 clipped into the last bin
  EXPECT_THROW(sampled_size_histogram({1}, 0), Error);
}

// End-to-end inversion: draw flows from a known size distribution,
// sample them, invert, compare aggregate statistics.
class InversionTest : public ::testing::TestWithParam<double> {};

TEST_P(InversionTest, RecoversTotals) {
  const double p = GetParam();
  Rng rng(99);
  // Ground truth: a bimodal flow population (mice of 2-4 packets,
  // elephants of 30-60) — the regime where naive scaling fails badly.
  std::vector<std::uint64_t> true_sizes;
  for (int i = 0; i < 30000; ++i)
    true_sizes.push_back(2 + rng.below(3));  // mice
  for (int i = 0; i < 1500; ++i)
    true_sizes.push_back(30 + rng.below(31));  // elephants
  double true_packets = 0.0;
  for (auto k : true_sizes) true_packets += static_cast<double>(k);

  // Sample each flow; build the sampled-size histogram.
  std::vector<std::uint64_t> sampled;
  sampled.reserve(true_sizes.size());
  for (auto k : true_sizes) sampled.push_back(rng.binomial(k, p));
  const auto histogram = sampled_size_histogram(sampled, 64);

  FlowInversionOptions options;
  options.max_size = 64;
  options.em_iterations = 600;
  const FlowInversionResult result = invert_flow_sizes(histogram, p, options);

  EXPECT_NEAR(result.total_packets / true_packets, 1.0, 0.15) << "p=" << p;
  EXPECT_NEAR(result.total_flows / static_cast<double>(true_sizes.size()),
              1.0, 0.3)
      << "p=" << p;

  // The naive estimate (detected records only) must be far worse on flow
  // counts at low rates: most mice are invisible.
  std::size_t detected = 0;
  for (auto s : sampled) detected += s >= 1;
  if (p <= 0.2) {
    const double naive_err =
        std::abs(static_cast<double>(detected) / true_sizes.size() - 1.0);
    const double em_err =
        std::abs(result.total_flows / true_sizes.size() - 1.0);
    EXPECT_LT(em_err, naive_err) << "p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, InversionTest,
                         ::testing::Values(0.1, 0.2, 0.5));

TEST(Inversion, RecoversElephantMass) {
  // The elephant share of total packets should be approximately
  // preserved through sampling + inversion.
  Rng rng(7);
  const double p = 0.1;
  std::vector<std::uint64_t> true_sizes;
  for (int i = 0; i < 20000; ++i) true_sizes.push_back(2);
  for (int i = 0; i < 1000; ++i) true_sizes.push_back(50);
  std::vector<std::uint64_t> sampled;
  for (auto k : true_sizes) sampled.push_back(rng.binomial(k, p));

  FlowInversionOptions options;
  options.max_size = 60;
  const auto result =
      invert_flow_sizes(sampled_size_histogram(sampled, 60), p, options);

  double large_packets = 0.0;
  for (std::size_t k = 20; k < result.counts.size(); ++k)
    large_packets += static_cast<double>(k + 1) * result.counts[k];
  const double true_large = 1000.0 * 50.0;
  EXPECT_NEAR(large_packets / true_large, 1.0, 0.2);
}

TEST(Inversion, ValidatesInputs) {
  EXPECT_THROW(invert_flow_sizes({}, 0.1), Error);
  EXPECT_THROW(invert_flow_sizes({10}, 0.0), Error);
  FlowInversionOptions tight;
  tight.max_size = 2;
  EXPECT_THROW(invert_flow_sizes({1, 2, 3}, 0.5, tight), Error);
  EXPECT_THROW(invert_flow_sizes({0, 0}, 0.5), Error);  // nothing observed
}

}  // namespace
}  // namespace netmon::estimate
