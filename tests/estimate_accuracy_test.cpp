#include "estimate/accuracy.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace netmon::estimate {
namespace {

TEST(Accuracy, EstimateRescales) {
  EXPECT_DOUBLE_EQ(estimate_size(50, 0.01), 5000.0);
  EXPECT_THROW(estimate_size(50, 0.0), netmon::Error);
}

TEST(Accuracy, SquaredRelativeError) {
  EXPECT_DOUBLE_EQ(squared_relative_error(110.0, 100.0), 0.01);
  EXPECT_DOUBLE_EQ(squared_relative_error(100.0, 100.0), 0.0);
  EXPECT_THROW(squared_relative_error(1.0, 0.0), netmon::Error);
}

TEST(Accuracy, ExpectedSreFormula) {
  // E[SRE] = c (1-rho)/rho (paper §IV-C).
  EXPECT_DOUBLE_EQ(expected_sre(0.002, 0.5), 0.002);
  EXPECT_NEAR(expected_sre(0.002, 0.01), 0.198, 1e-12);
  EXPECT_DOUBLE_EQ(expected_sre(0.0, 0.01), 0.0);
  EXPECT_THROW(expected_sre(0.002, 0.0), netmon::Error);
}

TEST(Accuracy, AccuracyMetric) {
  EXPECT_DOUBLE_EQ(accuracy(95.0, 100.0), 0.95);
  EXPECT_DOUBLE_EQ(accuracy(105.0, 100.0), 0.95);
  EXPECT_DOUBLE_EQ(accuracy(100.0, 100.0), 1.0);
  EXPECT_LT(accuracy(250.0, 100.0), 0.0);  // can go negative
}

TEST(Accuracy, VarianceAndConfidence) {
  // X ~ Binomial(S, rho); Var(X/rho) = S(1-rho)/rho.
  EXPECT_DOUBLE_EQ(estimator_variance(10000, 0.5), 10000.0);
  EXPECT_NEAR(confidence_halfwidth_95(10000, 0.5), 1.96 * 100.0, 1e-9);
}

TEST(Accuracy, EmpiricalSreMatchesExpected) {
  // Monte-Carlo check of the paper's E[SRE] formula.
  netmon::Rng rng(42);
  const std::uint64_t s = 20000;
  const double rho = 0.01;
  netmon::RunningStats sre;
  for (int rep = 0; rep < 4000; ++rep) {
    const auto x = rng.binomial(s, rho);
    sre.add(squared_relative_error(estimate_size(x, rho),
                                   static_cast<double>(s)));
  }
  const double expected = expected_sre(1.0 / static_cast<double>(s), rho);
  EXPECT_NEAR(sre.mean() / expected, 1.0, 0.1);
}

TEST(Accuracy, EstimatorUnbiased) {
  netmon::Rng rng(42);
  const std::uint64_t s = 50000;
  const double rho = 0.004;
  netmon::RunningStats est;
  for (int rep = 0; rep < 2000; ++rep)
    est.add(estimate_size(rng.binomial(s, rho), rho));
  EXPECT_NEAR(est.mean() / static_cast<double>(s), 1.0, 0.01);
}

TEST(Accuracy, BatchAccuracies) {
  std::vector<sampling::OdSampleCount> counts{{1000, 10}, {2000, 0}, {0, 0}};
  const std::vector<double> rhos{0.01, 0.0, 0.5};
  const auto acc = accuracies(counts, rhos);
  ASSERT_EQ(acc.size(), 3u);
  EXPECT_DOUBLE_EQ(acc[0], 1.0);  // 10/0.01 = 1000 exactly
  EXPECT_DOUBLE_EQ(acc[1], 0.0);  // rho == 0 -> no estimate
  EXPECT_DOUBLE_EQ(acc[2], 0.0);  // no actual packets
  EXPECT_THROW(accuracies(counts, {0.1}), netmon::Error);
}

}  // namespace
}  // namespace netmon::estimate
