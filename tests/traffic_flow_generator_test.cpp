#include "traffic/flow_generator.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace netmon::traffic {
namespace {

Demand demand(double pps) { return Demand{{2, 5}, pps}; }

TEST(FlowGenerator, TotalPacketsNearDemand) {
  Rng rng(42);
  const Demand d = demand(1000.0);  // 300k packets expected
  const auto flows = generate_flows(rng, d, 0);
  const double total = static_cast<double>(total_packets(flows));
  EXPECT_NEAR(total / 300000.0, 1.0, 0.15);
}

TEST(FlowGenerator, SmallDemandStillConcentrated) {
  // 20 pkt/s -> 6000 packets; the elephant cap must keep the realized
  // size within a reasonable band of the demand.
  Rng rng(1);
  double worst = 0.0;
  for (int rep = 0; rep < 20; ++rep) {
    Rng stream = rng.split(rep);
    const auto flows = generate_flows(stream, demand(20.0), 0);
    const double ratio =
        static_cast<double>(total_packets(flows)) / 6000.0;
    worst = std::max(worst, std::abs(ratio - 1.0));
  }
  EXPECT_LT(worst, 0.5);
}

TEST(FlowGenerator, DeterministicGivenSeed) {
  Rng a(7), b(7);
  const auto f1 = generate_flows(a, demand(100.0), 3);
  const auto f2 = generate_flows(b, demand(100.0), 3);
  ASSERT_EQ(f1.size(), f2.size());
  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_EQ(f1[i].packets, f2[i].packets);
    EXPECT_EQ(f1[i].key, f2[i].key);
  }
}

TEST(FlowGenerator, StampsOdIndexAndAddresses) {
  Rng rng(42);
  const Demand d = demand(200.0);
  const auto flows = generate_flows(rng, d, 17);
  ASSERT_FALSE(flows.empty());
  const net::Prefix src_block = pop_prefix(2);
  const net::Prefix dst_block = pop_prefix(5);
  for (const Flow& f : flows) {
    EXPECT_EQ(f.od_index, 17u);
    EXPECT_TRUE(src_block.contains(f.key.src_ip));
    EXPECT_TRUE(dst_block.contains(f.key.dst_ip));
    EXPECT_GE(f.packets, 1u);
    EXPECT_GE(f.bytes, f.packets * 40);   // smallest packet is 40 B
    EXPECT_LE(f.bytes, f.packets * 1500);
  }
}

TEST(FlowGenerator, TimesWithinInterval) {
  Rng rng(42);
  FlowGenOptions options;
  options.interval_sec = 60.0;
  const auto flows = generate_flows(rng, demand(500.0), 0, options);
  for (const Flow& f : flows) {
    EXPECT_GE(f.start_sec, 0.0);
    EXPECT_LE(f.end_sec, 60.0 + 1e-9);
    EXPECT_LE(f.start_sec, f.end_sec);
  }
}

TEST(FlowGenerator, ZeroDemandYieldsNoFlows) {
  Rng rng(42);
  EXPECT_TRUE(generate_flows(rng, demand(0.0), 0).empty());
  // Sub-packet demand also rounds to nothing.
  FlowGenOptions options;
  options.interval_sec = 0.5;
  EXPECT_TRUE(generate_flows(rng, demand(1.0), 0, options).empty());
}

TEST(FlowGenerator, GenerateAllIsOrderIndependentPerOd) {
  const TrafficMatrix tm{{{0, 1}, 100.0}, {{1, 2}, 200.0}};
  Rng a(5), b(5);
  const auto all = generate_all_flows(a, tm);
  ASSERT_EQ(all.size(), 2u);
  // Re-generating the second OD alone (same stream id) matches.
  Rng stream = b.split(2);
  const auto second = generate_flows(stream, tm[1], 1);
  ASSERT_EQ(all[1].size(), second.size());
  EXPECT_EQ(total_packets(all[1]), total_packets(second));
  EXPECT_EQ(all[1][0].key, second[0].key);
}

TEST(FlowGenerator, HeavyTailMixesMiceAndElephants) {
  Rng rng(42);
  const auto flows = generate_flows(rng, demand(5000.0), 0);
  std::uint64_t max_flow = 0, mice = 0;
  for (const Flow& f : flows) {
    max_flow = std::max(max_flow, f.packets);
    mice += (f.packets <= 2);
  }
  EXPECT_GT(max_flow, 1000u);                      // elephants exist
  EXPECT_GT(mice, flows.size() / 4);               // plenty of mice
}

TEST(PopPrefix, DistinctPerNode) {
  EXPECT_NE(pop_prefix(1).base, pop_prefix(2).base);
  EXPECT_EQ(pop_prefix(3).len, 16);
  EXPECT_THROW(pop_prefix(256), netmon::Error);
}

}  // namespace
}  // namespace netmon::traffic
