#include "obs/ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace netmon::obs {
namespace {

TEST(CeilPow2, RoundsUp) {
  EXPECT_EQ(ceil_pow2(0), 1u);
  EXPECT_EQ(ceil_pow2(1), 1u);
  EXPECT_EQ(ceil_pow2(2), 2u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(4), 4u);
  EXPECT_EQ(ceil_pow2(1000), 1024u);
  EXPECT_EQ(ceil_pow2(1024), 1024u);
}

TEST(AtomicRing, CapacityIsPow2AndAtLeastTwo) {
  EXPECT_EQ(AtomicRing<1>(0).capacity(), 2u);
  EXPECT_EQ(AtomicRing<1>(1).capacity(), 2u);
  EXPECT_EQ(AtomicRing<1>(5).capacity(), 8u);
  EXPECT_EQ(AtomicRing<1>(64).capacity(), 64u);
}

TEST(AtomicRing, RetainsEverythingBelowCapacity) {
  AtomicRing<2> ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) ring.append({i, 10 * i});
  EXPECT_EQ(ring.total(), 5u);

  const auto records = ring.snapshot();
  ASSERT_EQ(records.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(records[i][0], i);
    EXPECT_EQ(records[i][1], 10 * i);
  }
}

TEST(AtomicRing, WraparoundKeepsNewestOldestFirst) {
  AtomicRing<1> ring(4);  // capacity 4
  for (std::uint64_t i = 0; i < 11; ++i) ring.append({i});
  EXPECT_EQ(ring.total(), 11u);

  const auto records = ring.snapshot();
  ASSERT_EQ(records.size(), 4u);
  // Tickets 7..10 survive, oldest first.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(records[i][0], 7 + i);
}

TEST(AtomicRing, ConcurrentWritersNeverProduceTornRecords) {
  // Each record holds (k, 2k): a torn record would break the invariant.
  AtomicRing<2> ring(64);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t k = static_cast<std::uint64_t>(t) * kPerThread + i;
        ring.append({k, 2 * k});
        if (i % 64 == 0) {
          for (const auto& record : ring.snapshot())
            ASSERT_EQ(record[1], 2 * record[0]);
        }
      }
    });
  }
  for (std::thread& w : writers) w.join();

  EXPECT_EQ(ring.total(), kThreads * kPerThread);
  const auto records = ring.snapshot();
  EXPECT_EQ(records.size(), ring.capacity());
  for (const auto& record : records) EXPECT_EQ(record[1], 2 * record[0]);
}

}  // namespace
}  // namespace netmon::obs
