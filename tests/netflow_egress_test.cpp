#include "netflow/egress_map.hpp"

#include <gtest/gtest.h>

#include "topo/geant.hpp"
#include "traffic/flow.hpp"

namespace netmon::netflow {
namespace {

using net::ipv4;

TEST(EgressMap, BasicInsertLookup) {
  EgressMap map;
  map.insert({ipv4(10, 1, 0, 0), 16}, 1);
  map.insert({ipv4(10, 2, 0, 0), 16}, 2);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.lookup(ipv4(10, 1, 5, 5)), 1u);
  EXPECT_EQ(map.lookup(ipv4(10, 2, 255, 1)), 2u);
  EXPECT_EQ(map.lookup(ipv4(10, 3, 0, 1)), std::nullopt);
}

TEST(EgressMap, LongestPrefixWins) {
  EgressMap map;
  map.insert({ipv4(10, 0, 0, 0), 8}, 1);
  map.insert({ipv4(10, 64, 0, 0), 10}, 2);
  map.insert({ipv4(10, 64, 3, 0), 24}, 3);
  EXPECT_EQ(map.lookup(ipv4(10, 1, 1, 1)), 1u);     // /8 only
  EXPECT_EQ(map.lookup(ipv4(10, 70, 1, 1)), 2u);    // /10 beats /8
  EXPECT_EQ(map.lookup(ipv4(10, 64, 3, 9)), 3u);    // /24 beats both
}

TEST(EgressMap, DefaultRouteCatchesAll) {
  EgressMap map;
  map.insert({0, 0}, 9);
  map.insert({ipv4(10, 0, 0, 0), 8}, 1);
  EXPECT_EQ(map.lookup(ipv4(192, 168, 0, 1)), 9u);
  EXPECT_EQ(map.lookup(ipv4(10, 0, 0, 1)), 1u);
}

TEST(EgressMap, HostRoute) {
  EgressMap map;
  map.insert({ipv4(10, 0, 0, 7), 32}, 5);
  EXPECT_EQ(map.lookup(ipv4(10, 0, 0, 7)), 5u);
  EXPECT_EQ(map.lookup(ipv4(10, 0, 0, 8)), std::nullopt);
}

TEST(EgressMap, OverwriteKeepsSize) {
  EgressMap map;
  map.insert({ipv4(10, 1, 0, 0), 16}, 1);
  map.insert({ipv4(10, 1, 0, 0), 16}, 2);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.lookup(ipv4(10, 1, 2, 3)), 2u);
}

TEST(EgressMap, PopBlocksCoverGeant) {
  const topo::GeantNetwork net = topo::make_geant();
  const EgressMap map = EgressMap::for_pop_blocks(net.graph);
  EXPECT_EQ(map.size(), net.graph.node_count());
  for (const topo::Node& n : net.graph.nodes()) {
    const net::Prefix block = traffic::pop_prefix(n.id);
    EXPECT_EQ(map.lookup(block.base + 1), n.id);
  }
}

TEST(EgressMap, MoveSemantics) {
  EgressMap map;
  map.insert({ipv4(10, 1, 0, 0), 16}, 1);
  EgressMap moved = std::move(map);
  EXPECT_EQ(moved.lookup(ipv4(10, 1, 0, 5)), 1u);
  EXPECT_EQ(moved.size(), 1u);
}

}  // namespace
}  // namespace netmon::netflow
