#include "core/maximin.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/scenario.hpp"
#include "core/solver.hpp"
#include "core/utility.hpp"
#include "helpers.hpp"
#include "opt/gradient_projection.hpp"
#include "util/error.hpp"

namespace netmon::core {
namespace {

opt::SeparableConcaveObjective two_term_base() {
  opt::SeparableConcaveObjective::SparseRows rows{{{0, 1.0}}, {{1, 1.0}}};
  return opt::SeparableConcaveObjective(
      2, std::move(rows),
      {std::make_shared<LogUtility>(0.1), std::make_shared<LogUtility>(0.1)});
}

TEST(SmoothMin, BracketsHardMin) {
  const auto base = two_term_base();
  const SmoothMinObjective f(base, 100.0);
  const std::vector<double> p{0.3, 0.1};
  const double hard = f.hard_min(p);
  const double soft = f.value(p);
  EXPECT_LE(soft, hard + 1e-12);
  EXPECT_GE(soft, hard - std::log(2.0) / 100.0 - 1e-12);
}

TEST(SmoothMin, HardMinIsTheSmallerUtility) {
  const auto base = two_term_base();
  const SmoothMinObjective f(base, 100.0);
  const std::vector<double> p{0.3, 0.1};
  const LogUtility u(0.1);
  EXPECT_DOUBLE_EQ(f.hard_min(p), std::min(u.value(0.3), u.value(0.1)));
}

TEST(SmoothMin, GradientMatchesFiniteDifference) {
  const auto base = two_term_base();
  const SmoothMinObjective f(base, 50.0);
  const std::vector<double> p{0.25, 0.15};
  std::vector<double> g(2);
  f.gradient(p, g);
  const auto numeric = test::numeric_gradient(f, p);
  for (std::size_t j = 0; j < 2; ++j)
    EXPECT_NEAR(g[j], numeric[j], 1e-5 * (1.0 + std::abs(numeric[j])));
}

TEST(SmoothMin, DirectionalSecondMatchesFiniteDifference) {
  const auto base = two_term_base();
  const SmoothMinObjective f(base, 50.0);
  const std::vector<double> p{0.25, 0.15};
  const std::vector<double> s{0.7, -0.4};
  const double exact = f.directional_second(p, s);
  EXPECT_NEAR(test::numeric_directional_second(f, p, s) / exact, 1.0, 1e-2);
}

TEST(SmoothMin, ConcaveAlongLines) {
  const auto base = two_term_base();
  const SmoothMinObjective f(base, 200.0);
  const std::vector<double> p{0.2, 0.3};
  for (const auto& s : {std::vector<double>{1, 0}, {0, 1}, {1, -1}, {0.5, 2}})
    EXPECT_LE(f.directional_second(p, s), 1e-12);
}

TEST(SmoothMin, SolvingRaisesWorstUtility) {
  // On the GEANT task, max-min must not leave any OD pair behind: its
  // worst utility is at least as good as the sum-objective's worst.
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem problem = make_problem(s);
  const PlacementSolution sum_solution = solve_placement(problem);
  double sum_worst = 1.0;
  for (const auto& od : sum_solution.per_od)
    sum_worst = std::min(sum_worst, od.utility);

  const SmoothMinObjective maximin(problem.objective(), 400.0);
  opt::SolverOptions options;
  options.max_iterations = 8000;
  const opt::SolveResult r =
      opt::maximize(maximin, problem.constraints(), options);
  const double maximin_worst = maximin.hard_min(r.p);
  EXPECT_GE(maximin_worst, sum_worst - 5e-3);
  // And the sum objective evaluated at the max-min point cannot beat the
  // sum optimum.
  EXPECT_LE(problem.objective().value(r.p),
            problem.objective().value(problem.compress(sum_solution.rates)) +
                1e-9);
}

TEST(SmoothMin, RejectsBadBeta) {
  const auto base = two_term_base();
  EXPECT_THROW(SmoothMinObjective(base, 0.0), netmon::Error);
}

}  // namespace
}  // namespace netmon::core
