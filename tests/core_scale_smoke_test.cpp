// End-to-end smoke of the scale pipeline at test-sized dimensions: a
// hierarchical instance (a few thousand links), gravity fan-out task,
// pod partition, approximate solve with intra-solve parallelism — and a
// certified gap within the tier's 1% target. The 100k+-link instance
// runs the same path in bench/scaling_perf.cpp.
#include <gtest/gtest.h>

#include <span>

#include "core/approx.hpp"
#include "core/batch_solver.hpp"
#include "core/partition.hpp"
#include "core/scale_scenario.hpp"
#include "core/solver.hpp"
#include "runtime/thread_pool.hpp"

namespace netmon::core {
namespace {

ScaleScenarioOptions smoke_options() {
  ScaleScenarioOptions options;
  options.hierarchy.cores = 4;
  options.hierarchy.aggs_per_core = 3;
  options.hierarchy.edges_per_agg = 40;  // 496 nodes, 2,988 links
  options.fanout.od_count = 3000;
  options.fanout.max_sources = 24;
  return options;
}

TEST(ScaleSmoke, ScenarioAssembles) {
  const ScaleScenario scenario = make_scale_scenario(smoke_options());
  EXPECT_EQ(scenario.net.graph.link_count(),
            topo::hierarchy_link_count(smoke_options().hierarchy));
  EXPECT_EQ(scenario.task.ods.size(), scenario.demands.size());
  ASSERT_EQ(scenario.loads.size(), scenario.net.graph.link_count());
  for (double load : scenario.loads) EXPECT_GT(load, 0.0);
  for (double s : scenario.task.expected_packets) EXPECT_GE(s, 2.0);
}

TEST(ScaleSmoke, ApproxTierCertifiesWithinOnePercent) {
  const ScaleScenario scenario = make_scale_scenario(smoke_options());
  ProblemOptions options;
  options.theta = 0.0;  // default_scale_theta
  const PlacementProblem problem = make_problem(scenario, options);
  EXPECT_GT(problem.candidates().size(), 100u);

  const Partition partition = partition_by_region(problem, scenario.net);
  EXPECT_EQ(partition.group_count(), 4u);  // one group per pod

  runtime::ThreadPool pool(4);
  ApproxOptions approx;
  approx.pool = &pool;
  approx.subsolver.parallel_min_terms = 0;  // exercise nested sharding too
  approx.polish.pool = &pool;
  const ApproxResult result = solve_approx(problem, partition, approx);

  EXPECT_LE(result.certificate.relative_gap, 0.01)
      << "certified gap above the tier's 1% target";
  EXPECT_EQ(result.solution.tier, SolveTier::kApprox);
  EXPECT_GT(result.solution.active_monitors.size(), 0u);
  // Feasibility of the stitched + polished placement.
  EXPECT_NEAR(result.solution.budget_used, problem.theta(),
              1e-6 * problem.theta());
}

TEST(ScaleSmoke, BatchSolverRoutesLargeInstancesToTheApproxTier) {
  const ScaleScenario scenario = make_scale_scenario(smoke_options());
  ProblemOptions po;
  po.theta = 0.0;
  const PlacementProblem problem = make_problem(scenario, po);
  const Partition partition = partition_by_region(problem, scenario.net);

  BatchOptions batch;
  batch.threads = 2;
  batch.tier.approx_min_candidates = 64;  // force routing at test scale
  const BatchSolver solver(batch);

  BatchItem item;
  item.problem = &problem;
  item.partition = &partition;
  const auto solutions =
      solver.solve_items(std::span<const BatchItem>(&item, 1));
  ASSERT_EQ(solutions.size(), 1u);
  EXPECT_EQ(solutions[0].tier, SolveTier::kApprox);
  EXPECT_GT(solutions[0].certified_upper_bound,
            solutions[0].total_utility - 1e-9);

  // Below the threshold the same item solves exactly.
  BatchOptions exact_batch;
  exact_batch.threads = 2;
  exact_batch.tier.approx_min_candidates = 1u << 30;
  const BatchSolver exact_solver(exact_batch);
  const auto exact = exact_solver.solve_items(
      std::span<const BatchItem>(&item, 1));
  EXPECT_EQ(exact[0].tier, SolveTier::kExact);
  EXPECT_EQ(exact[0].certified_gap, 0.0);
}

}  // namespace
}  // namespace netmon::core
