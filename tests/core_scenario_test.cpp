#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include "core/task.hpp"

namespace netmon::core {
namespace {

TEST(Scenario, TaskMatchesTopologyData) {
  const GeantScenario s = make_geant_scenario();
  ASSERT_EQ(s.task.ods.size(), 20u);
  ASSERT_EQ(s.task.expected_packets.size(), 20u);
  EXPECT_DOUBLE_EQ(s.task.interval_sec, 300.0);
  for (const auto& od : s.task.ods) EXPECT_EQ(od.src, s.net.janet);
  // Expected sizes are rates * interval.
  EXPECT_NEAR(s.task.expected_packets.front(), 30266.0 * 300.0, 1e-6);
  EXPECT_NEAR(s.task.expected_packets.back(), 20.0 * 300.0, 1e-6);
}

TEST(Scenario, DemandsIncludeBackgroundAndTask) {
  const GeantScenario s = make_geant_scenario();
  EXPECT_EQ(s.demands.size(), 23u * 22u + 20u);
  // Total offered traffic: background + JANET ingress.
  EXPECT_NEAR(traffic::total_rate(s.demands), 1.4e6 + 57933.0, 1.0);
}

TEST(Scenario, LoadsCoverEveryTaskLink) {
  const GeantScenario s = make_geant_scenario();
  const auto matrix =
      routing::RoutingMatrix::single_path(s.net.graph, s.task.ods);
  for (topo::LinkId id : matrix.links_used()) {
    EXPECT_GT(s.loads[id], 0.0) << s.net.graph.link_name(id);
  }
}

TEST(Scenario, AccessLinkCarriesExactlyJanetIngress) {
  const GeantScenario s = make_geant_scenario();
  EXPECT_NEAR(s.loads[s.net.access_in], 57933.0, 1e-6);
}

TEST(Scenario, UkLinksHelper) {
  const GeantScenario s = make_geant_scenario();
  const auto links = uk_links(s.net);
  ASSERT_EQ(links.size(), 6u);
  for (topo::LinkId id : links) {
    EXPECT_EQ(s.net.graph.link(id).src, s.net.uk);
    EXPECT_TRUE(s.net.graph.link(id).monitorable);
  }
}

TEST(Scenario, FailureRerouting) {
  // Failing UK->NL forces the eastern OD pairs onto other UK links.
  const GeantScenario base = make_geant_scenario();
  const auto uk_nl = *base.net.graph.find_link("UK", "NL");

  ScenarioOptions options;
  options.failed.insert(uk_nl);
  const GeantScenario failed = make_geant_scenario(options);
  EXPECT_DOUBLE_EQ(failed.loads[uk_nl], 0.0);
  // The displaced traffic must show up elsewhere; total conserved per
  // demand, so some other UK link gains load.
  const auto uk_fr = *base.net.graph.find_link("UK", "FR");
  const auto uk_se = *base.net.graph.find_link("UK", "SE");
  EXPECT_GT(failed.loads[uk_fr] + failed.loads[uk_se],
            base.loads[uk_fr] + base.loads[uk_se]);
}

TEST(Scenario, BackgroundScaleIsConfigurable) {
  ScenarioOptions options;
  options.background_pkt_per_sec = 2.8e6;
  const GeantScenario heavy = make_geant_scenario(options);
  const GeantScenario normal = make_geant_scenario();
  const auto nl_de = *normal.net.graph.find_link("NL", "DE");
  // JANET's fixed demand rides on this link too, so the ratio lands just
  // under 2.
  const double ratio = heavy.loads[nl_de] / normal.loads[nl_de];
  EXPECT_GT(ratio, 1.8);
  EXPECT_LE(ratio, 2.0);
}

}  // namespace
}  // namespace netmon::core
