// Wire codec: bit-exact round trips, and clean typed rejection of every
// truncated or corrupt frame.
#include "serve/wire.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace netmon::serve {
namespace {

Request sample_request() {
  Request request;
  request.id = 0x0123456789abcdefULL;
  request.kind = RequestKind::kWhatIfBatch;
  request.tenant = "geant-prod";
  request.theta = 123456.789;
  request.default_alpha = 0.75;
  request.failed = {1, 7, 42};
  request.what_if = {{0}, {3, 4}, {}};
  request.thetas = {1e4, 2.5e5};
  request.warm_start = {0.0, 0.125, 1.0, 3.0e-7};
  request.deadline_ms = 1500;
  request.iteration_budget = 64;
  return request;
}

Response sample_response() {
  Response response;
  response.id = 99;
  response.kind = RequestKind::kAccuracyReport;
  response.status = ResponseStatus::kDeadlineExpired;
  response.error = "deadline expired mid-solve";
  response.tenant = "geant-prod";
  response.cache = CacheOutcome::kWarmStart;

  core::PlacementSolution solution;
  solution.rates = {0.0, 0.5, 0.0625, 1.0};
  solution.active_monitors = {1, 2, 3};
  core::OdReport od;
  od.od = {4, 9};
  od.expected_packets = 5000.0;
  od.rho_approx = 0.123456789012345;
  od.rho_exact = 0.123456789012344;
  od.utility = -3.5;
  od.predicted_accuracy = 0.987;
  od.monitored_links = {1, 3};
  solution.per_od = {od};
  solution.total_utility = -17.25;
  solution.budget_used = 99999.5;
  solution.status = opt::SolveStatus::kCancelled;
  solution.iterations = 12;
  solution.release_events = 2;
  solution.lambda = 1.25e-5;
  response.solutions = {solution};

  response.sweep = {{1e4, -20.0, 2e-5, 6}, {1e5, -10.0, 1e-5, 9}};
  response.accuracy = {{{4, 9}, 5000.0, 0.12, 0.11, 0.98}};
  response.batch_size = 3;
  response.queue_ms = 0.25;
  response.solve_ms = 17.5;
  return response;
}

void expect_equal(const Request& a, const Request& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.tenant, b.tenant);
  EXPECT_EQ(a.theta, b.theta);
  EXPECT_EQ(a.default_alpha, b.default_alpha);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.what_if, b.what_if);
  EXPECT_EQ(a.thetas, b.thetas);
  EXPECT_EQ(a.warm_start, b.warm_start);
  EXPECT_EQ(a.deadline_ms, b.deadline_ms);
  EXPECT_EQ(a.iteration_budget, b.iteration_budget);
}

void expect_equal(const core::PlacementSolution& a,
                  const core::PlacementSolution& b) {
  EXPECT_EQ(a.rates, b.rates);
  EXPECT_EQ(a.active_monitors, b.active_monitors);
  ASSERT_EQ(a.per_od.size(), b.per_od.size());
  for (std::size_t k = 0; k < a.per_od.size(); ++k) {
    EXPECT_EQ(a.per_od[k].od, b.per_od[k].od);
    EXPECT_EQ(a.per_od[k].expected_packets, b.per_od[k].expected_packets);
    EXPECT_EQ(a.per_od[k].rho_approx, b.per_od[k].rho_approx);
    EXPECT_EQ(a.per_od[k].rho_exact, b.per_od[k].rho_exact);
    EXPECT_EQ(a.per_od[k].utility, b.per_od[k].utility);
    EXPECT_EQ(a.per_od[k].predicted_accuracy,
              b.per_od[k].predicted_accuracy);
    EXPECT_EQ(a.per_od[k].monitored_links, b.per_od[k].monitored_links);
  }
  EXPECT_EQ(a.total_utility, b.total_utility);
  EXPECT_EQ(a.budget_used, b.budget_used);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.release_events, b.release_events);
  EXPECT_EQ(a.lambda, b.lambda);
}

void expect_equal(const Response& a, const Response& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.tenant, b.tenant);
  EXPECT_EQ(a.cache, b.cache);
  ASSERT_EQ(a.solutions.size(), b.solutions.size());
  for (std::size_t i = 0; i < a.solutions.size(); ++i)
    expect_equal(a.solutions[i], b.solutions[i]);
  EXPECT_EQ(a.sweep, b.sweep);
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.batch_size, b.batch_size);
  EXPECT_EQ(a.queue_ms, b.queue_ms);
  EXPECT_EQ(a.solve_ms, b.solve_ms);
}

TEST(ServeWire, RequestRoundTripIsBitExact) {
  const Request original = sample_request();
  expect_equal(decode_request(encode_request(original)), original);
}

TEST(ServeWire, EmptyRequestRoundTrips) {
  expect_equal(decode_request(encode_request(Request{})), Request{});
}

TEST(ServeWire, ResponseRoundTripIsBitExact) {
  const Response original = sample_response();
  expect_equal(decode_response(encode_response(original)), original);
}

TEST(ServeWire, DoublesSurviveBitExactlyIncludingSpecialValues) {
  Request request;
  request.kind = RequestKind::kThetaSweep;
  request.thetas = {std::numeric_limits<double>::denorm_min(),
                    std::numeric_limits<double>::max(),
                    -0.0,
                    std::numeric_limits<double>::infinity(),
                    0.1};  // 0.1 has no exact binary representation
  request.warm_start = {std::nan("")};
  const Request decoded = decode_request(encode_request(request));
  ASSERT_EQ(decoded.thetas.size(), request.thetas.size());
  for (std::size_t i = 0; i < request.thetas.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded.thetas[i]),
              std::bit_cast<std::uint64_t>(request.thetas[i]));
  EXPECT_TRUE(std::isnan(decoded.warm_start[0]));
  EXPECT_TRUE(std::signbit(decoded.thetas[2]));
}

TEST(ServeWire, EveryTruncationIsRejected) {
  const std::vector<std::uint8_t> req = encode_request(sample_request());
  const std::vector<std::uint8_t> resp = encode_response(sample_response());
  for (std::size_t n = 0; n < req.size(); ++n) {
    EXPECT_THROW(decode_request(std::span(req.data(), n)), Error)
        << "prefix length " << n;
  }
  for (std::size_t n = 0; n < resp.size(); ++n) {
    EXPECT_THROW(decode_response(std::span(resp.data(), n)), Error)
        << "prefix length " << n;
  }
}

TEST(ServeWire, TrailingBytesAreRejected) {
  std::vector<std::uint8_t> bytes = encode_request(sample_request());
  bytes.push_back(0);
  EXPECT_THROW(decode_request(bytes), Error);
}

TEST(ServeWire, CorruptEnvelopeIsRejected) {
  const std::vector<std::uint8_t> good = encode_request(sample_request());

  auto corrupt = [&](std::size_t at, std::uint8_t value) {
    std::vector<std::uint8_t> bad = good;
    bad[at] = value;
    return bad;
  };
  EXPECT_THROW(decode_request(corrupt(0, 'X')), Error);   // magic 0
  EXPECT_THROW(decode_request(corrupt(1, 'X')), Error);   // magic 1
  EXPECT_THROW(decode_request(corrupt(2, 99)), Error);    // version
  EXPECT_THROW(decode_request(corrupt(3, 7)), Error);     // type
  // A request frame is not a response frame.
  EXPECT_THROW(decode_response(good), Error);
  // Lying length prefix.
  EXPECT_THROW(decode_request(corrupt(7, good[7] + 1)), Error);
}

TEST(ServeWire, AbsurdCountsAreRejectedBeforeAllocation) {
  // The failed-link count sits after id(8) + kind(1) + tenant(4, empty) +
  // theta(8) + alpha(8) in the body (offset 8 for the v2 header).
  std::vector<std::uint8_t> bad = encode_request(Request{});
  const std::size_t count_at = 8 + 8 + 1 + 4 + 8 + 8;
  for (std::size_t i = 0; i < 4; ++i) bad[count_at + i] = 0xff;
  EXPECT_THROW(decode_request(bad), Error);

  // Same for the tenant string length (right after id + kind).
  std::vector<std::uint8_t> bad_string = encode_request(Request{});
  const std::size_t string_at = 8 + 8 + 1;
  for (std::size_t i = 0; i < 4; ++i) bad_string[string_at + i] = 0xff;
  EXPECT_THROW(decode_request(bad_string), Error);
}

TEST(ServeWire, FrameSizeSupportsStreamReassembly) {
  const std::vector<std::uint8_t> frame = encode_request(sample_request());

  // Fewer than 8 buffered bytes (the v2 header): not decidable yet.
  EXPECT_EQ(frame_size(std::span(frame.data(), 0)), 0u);
  EXPECT_EQ(frame_size(std::span(frame.data(), 3)), 0u);
  EXPECT_EQ(frame_size(std::span(frame.data(), 7)), 0u);
  // With the header visible, the full frame size is known.
  EXPECT_EQ(frame_size(std::span(frame.data(), 8)), frame.size());
  EXPECT_EQ(frame_size(frame), frame.size());

  // Two frames back to back split correctly.
  std::vector<std::uint8_t> stream = frame;
  const std::vector<std::uint8_t> second =
      encode_response(sample_response());
  stream.insert(stream.end(), second.begin(), second.end());
  const std::size_t first_size = frame_size(stream);
  ASSERT_EQ(first_size, frame.size());
  expect_equal(decode_request(std::span(stream.data(), first_size)),
               sample_request());
  expect_equal(
      decode_response(std::span(stream).subspan(first_size)),
      sample_response());

  // A corrupt prefix fails fast instead of asking for gigabytes.
  std::vector<std::uint8_t> absurd = {0xff, 0xff, 0xff, 0xff};
  EXPECT_THROW(frame_size(absurd), Error);
  std::vector<std::uint8_t> tiny = {0, 0, 0, 2};
  EXPECT_THROW(frame_size(tiny), Error);
  // A v2 header with a flipped magic/version byte is rejected as soon as
  // that byte is buffered, before the length field is even visible.
  std::vector<std::uint8_t> bad_magic = {kWireMagic0, 'X'};
  EXPECT_THROW(frame_size(bad_magic), Error);
  std::vector<std::uint8_t> bad_version = {kWireMagic0, kWireMagic1, 99};
  EXPECT_THROW(frame_size(bad_version), Error);
}

// --- legacy v1 frames (loopback-era captures) ------------------------

void legacy_put8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void legacy_put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void legacy_put64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  legacy_put32(out, static_cast<std::uint32_t>(v >> 32));
  legacy_put32(out, static_cast<std::uint32_t>(v));
}

void legacy_put_f64(std::vector<std::uint8_t>& out, double v) {
  legacy_put64(out, std::bit_cast<std::uint64_t>(v));
}

// Builds the v1 layout by hand: length prefix | 'N' 'M' | 1 | type | body
// (body has no tenant string).
std::vector<std::uint8_t> legacy_frame(std::uint8_t type,
                                       const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> out;
  legacy_put32(out, static_cast<std::uint32_t>(4 + body.size()));
  legacy_put8(out, kWireMagic0);
  legacy_put8(out, kWireMagic1);
  legacy_put8(out, kWireLegacyVersion);
  legacy_put8(out, type);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<std::uint8_t> legacy_request_frame(const Request& request) {
  std::vector<std::uint8_t> body;
  legacy_put64(body, request.id);
  legacy_put8(body, static_cast<std::uint8_t>(request.kind));
  legacy_put_f64(body, request.theta);
  legacy_put_f64(body, request.default_alpha);
  legacy_put32(body, static_cast<std::uint32_t>(request.failed.size()));
  for (topo::LinkId id : request.failed) legacy_put32(body, id);
  legacy_put32(body, static_cast<std::uint32_t>(request.what_if.size()));
  for (const auto& scenario : request.what_if) {
    legacy_put32(body, static_cast<std::uint32_t>(scenario.size()));
    for (topo::LinkId id : scenario) legacy_put32(body, id);
  }
  legacy_put32(body, static_cast<std::uint32_t>(request.thetas.size()));
  for (double v : request.thetas) legacy_put_f64(body, v);
  legacy_put32(body, static_cast<std::uint32_t>(request.warm_start.size()));
  for (double v : request.warm_start) legacy_put_f64(body, v);
  legacy_put32(body, request.deadline_ms);
  legacy_put32(body, request.iteration_budget);
  return legacy_frame(kWireRequest, body);
}

TEST(ServeWire, LegacyV1RequestStillDecodes) {
  Request expected = sample_request();
  expected.tenant.clear();  // v1 has no tenant field
  const std::vector<std::uint8_t> frame = legacy_request_frame(expected);
  expect_equal(decode_request(frame), expected);
  // frame_size understands the legacy layout too, from its length prefix.
  EXPECT_EQ(frame_size(frame), frame.size());
  EXPECT_EQ(frame_size(std::span(frame.data(), 4)), frame.size());
  EXPECT_EQ(frame_size(std::span(frame.data(), 3)), 0u);
}

TEST(ServeWire, LegacyV1ResponseStillDecodes) {
  // Minimal empty response in the v1 body layout: id, kind, status,
  // error, then empty solutions/sweep/accuracy, then transport metadata.
  std::vector<std::uint8_t> body;
  legacy_put64(body, 77);
  legacy_put8(body, static_cast<std::uint8_t>(RequestKind::kSolve));
  legacy_put8(body, static_cast<std::uint8_t>(ResponseStatus::kShutdown));
  const std::string error = "server stopping";
  legacy_put32(body, static_cast<std::uint32_t>(error.size()));
  body.insert(body.end(), error.begin(), error.end());
  legacy_put32(body, 0);  // solutions
  legacy_put32(body, 0);  // sweep
  legacy_put32(body, 0);  // accuracy
  legacy_put32(body, 2);  // batch_size
  legacy_put_f64(body, 0.5);
  legacy_put_f64(body, 7.25);
  const Response decoded =
      decode_response(legacy_frame(kWireResponse, body));
  EXPECT_EQ(decoded.id, 77u);
  EXPECT_EQ(decoded.status, ResponseStatus::kShutdown);
  EXPECT_EQ(decoded.error, error);
  EXPECT_TRUE(decoded.tenant.empty());
  EXPECT_EQ(decoded.cache, CacheOutcome::kNone);
  EXPECT_EQ(decoded.batch_size, 2u);
  EXPECT_EQ(decoded.queue_ms, 0.5);
  EXPECT_EQ(decoded.solve_ms, 7.25);
}

TEST(ServeWire, LegacyV1EnvelopeCorruptionIsRejected) {
  const std::vector<std::uint8_t> good =
      legacy_request_frame(Request{});
  auto corrupt = [&](std::size_t at, std::uint8_t value) {
    std::vector<std::uint8_t> bad = good;
    bad[at] = value;
    return bad;
  };
  EXPECT_THROW(decode_request(corrupt(4, 'X')), Error);  // magic 0
  EXPECT_THROW(decode_request(corrupt(5, 'X')), Error);  // magic 1
  EXPECT_THROW(decode_request(corrupt(6, 99)), Error);   // version
  EXPECT_THROW(decode_request(corrupt(7, 7)), Error);    // type
  for (std::size_t n = 0; n < good.size(); ++n)
    EXPECT_THROW(decode_request(std::span(good.data(), n)), Error)
        << "prefix length " << n;
}

}  // namespace
}  // namespace netmon::serve
