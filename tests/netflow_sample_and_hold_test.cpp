#include "netflow/sample_and_hold.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace netmon::netflow {
namespace {

traffic::FlowKey key(std::uint32_t n) {
  traffic::FlowKey k;
  k.src_ip = n;
  k.dst_ip = n ^ 0xffffffffu;
  return k;
}

TEST(SampleAndHold, TracksAfterFirstSample) {
  RecordBatch exported;
  SampleAndHoldMonitor monitor(
      1, 1.0, 0, [&](const FlowRecord& r) { exported.push_back(r); }, 7);
  for (int i = 0; i < 100; ++i) monitor.offer(key(1), 50, i * 0.01);
  monitor.flush(1.0);
  ASSERT_EQ(exported.size(), 1u);
  // p = 1: every packet counted.
  EXPECT_EQ(exported[0].sampled_packets, 100u);
  EXPECT_EQ(exported[0].sampled_bytes, 5000u);
  EXPECT_EQ(exported[0].input_link, 1u);
}

TEST(SampleAndHold, ElephantsCountedAlmostExactly) {
  // With p = 0.05, a 10000-packet flow misses only its untracked prefix
  // (expected 19 packets): relative error far below plain sampling.
  RunningStats estimate_error;
  for (int rep = 0; rep < 20; ++rep) {
    RecordBatch exported;
    SampleAndHoldMonitor monitor(
        0, 0.05, 0, [&](const FlowRecord& r) { exported.push_back(r); },
        100 + rep);
    const std::uint64_t true_size = 10000;
    for (std::uint64_t i = 0; i < true_size; ++i)
      monitor.offer(key(9), 100, static_cast<double>(i));
    monitor.flush(1e9);
    ASSERT_EQ(exported.size(), 1u);
    const double estimate =
        monitor.estimate_packets(exported[0].sampled_packets);
    estimate_error.add(std::abs(estimate - 10000.0) / 10000.0);
  }
  // Plain sampling at p=0.05 has sigma/k = sqrt((1-p)/(k p)) ~ 4.4%;
  // sample-and-hold should be an order of magnitude tighter.
  EXPECT_LT(estimate_error.mean(), 0.01);
}

TEST(SampleAndHold, EstimateIsUnbiased) {
  // Across many medium flows the corrected estimate must average to the
  // true size.
  Rng seed_gen(5);
  RunningStats ratio;
  const std::uint64_t true_size = 400;
  for (int rep = 0; rep < 300; ++rep) {
    RecordBatch exported;
    SampleAndHoldMonitor monitor(
        0, 0.02, 0, [&](const FlowRecord& r) { exported.push_back(r); },
        seed_gen());
    for (std::uint64_t i = 0; i < true_size; ++i)
      monitor.offer(key(1), 100, static_cast<double>(i));
    monitor.flush(1.0);
    if (exported.empty()) {
      // Flow never sampled: contributes estimate 0 to the average.
      ratio.add(0.0);
    } else {
      ratio.add(monitor.estimate_packets(exported[0].sampled_packets) /
                static_cast<double>(true_size));
    }
  }
  // E[estimate] = E[held] + (1-p)/p * P(detected)... the standard
  // correction is unbiased conditional on detection for flows >> 1/p;
  // at k*p = 8 detection is ~0.9997, so the mean lands near 1.
  EXPECT_NEAR(ratio.mean(), 1.0, 0.03);
}

TEST(SampleAndHold, MemoryBoundRejectsNewFlows) {
  SampleAndHoldMonitor monitor(0, 1.0, 4, [](const FlowRecord&) {}, 7);
  for (std::uint32_t f = 0; f < 100; ++f) monitor.offer(key(f), 10, 0.1);
  EXPECT_EQ(monitor.tracked_flows(), 4u);
  EXPECT_EQ(monitor.rejected_flows(), 96u);
}

TEST(SampleAndHold, MemoryScalesWithSampledVolume) {
  // Expected table size ~ p * packets for all-mice traffic.
  SampleAndHoldMonitor monitor(0, 0.01, 0, [](const FlowRecord&) {}, 11);
  const int flows = 20000;
  for (int f = 0; f < flows; ++f) {
    for (int i = 0; i < 2; ++i)
      monitor.offer(key(static_cast<std::uint32_t>(f)), 10, f * 1e-3);
  }
  // E[tracked] = flows * (1-(1-p)^2) ~ 20000 * 0.0199 ~ 398.
  EXPECT_NEAR(static_cast<double>(monitor.tracked_flows()), 398.0, 80.0);
}

TEST(SampleAndHold, Validation) {
  EXPECT_THROW(SampleAndHoldMonitor(0, 0.0, 0, [](const FlowRecord&) {}, 1),
               Error);
  EXPECT_THROW(SampleAndHoldMonitor(0, 0.5, 0, nullptr, 1), Error);
}

}  // namespace
}  // namespace netmon::netflow
