#include "telemetry/snmp.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "traffic/gravity.hpp"
#include "util/error.hpp"

namespace netmon::telemetry {
namespace {

TEST(SnmpAgent, CountsAndReads) {
  SnmpAgent agent(3);
  agent.count(0, 10, 5000);
  agent.count(0, 5, 2500);
  agent.count(2, 1, 40);
  EXPECT_EQ(agent.read(0).packets, 15u);
  EXPECT_EQ(agent.read(0).octets, 7500u);
  EXPECT_EQ(agent.read(1).packets, 0u);
  EXPECT_EQ(agent.read(2).packets, 1u);
  EXPECT_THROW(agent.count(3, 1, 1), Error);
  EXPECT_THROW(agent.read(9), Error);
}

TEST(SnmpAgent, Counter32Wraps) {
  SnmpAgent agent(1);
  agent.count(0, 0xffffffffULL, 0);  // counter at max
  agent.count(0, 5, 0);              // wraps to 4
  EXPECT_EQ(agent.read(0).packets, 4u);
}

TEST(Counter32Delta, HandlesWrap) {
  EXPECT_EQ(counter32_delta(10, 25), 15u);
  EXPECT_EQ(counter32_delta(0xfffffff0u, 16), 32u);  // wrapped once
  EXPECT_EQ(counter32_delta(7, 7), 0u);
}

TEST(RatePoller, DerivesRatesFromDeltas) {
  SnmpAgent agent(2);
  RatePoller poller(agent);
  poller.poll(0.0);
  agent.count(0, 3000, 1500000);
  agent.count(1, 600, 30000);
  poller.poll(30.0);
  EXPECT_DOUBLE_EQ(poller.packet_rate(0), 100.0);
  EXPECT_DOUBLE_EQ(poller.packet_rate(1), 20.0);
  EXPECT_DOUBLE_EQ(poller.byte_rate(0), 50000.0);
  const auto loads = poller.loads();
  EXPECT_DOUBLE_EQ(loads[0], 100.0);
}

TEST(RatePoller, RateSpansLastIntervalOnly) {
  SnmpAgent agent(1);
  RatePoller poller(agent);
  poller.poll(0.0);
  agent.count(0, 1000, 0);
  poller.poll(10.0);  // 100 pkt/s
  agent.count(0, 4000, 0);
  poller.poll(30.0);  // 200 pkt/s over the last 20 s
  EXPECT_DOUBLE_EQ(poller.packet_rate(0), 200.0);
}

TEST(RatePoller, ZeroBeforeTwoPolls) {
  SnmpAgent agent(1);
  RatePoller poller(agent);
  EXPECT_DOUBLE_EQ(poller.packet_rate(0), 0.0);
  poller.poll(0.0);
  EXPECT_DOUBLE_EQ(poller.packet_rate(0), 0.0);
  EXPECT_THROW(poller.poll(0.0), Error);  // non-increasing timestamp
}

TEST(RatePoller, SurvivesCounterWrap) {
  SnmpAgent agent(1);
  RatePoller poller(agent);
  agent.count(0, 0xfffffff0ULL, 0);  // near wrap before first poll
  poller.poll(0.0);
  agent.count(0, 100, 0);            // wraps during the interval
  poller.poll(10.0);
  EXPECT_DOUBLE_EQ(poller.packet_rate(0), 10.0);
}

TEST(MeasuredLoads, MatchesOfferedRates) {
  const topo::Graph g = test::line_graph();
  traffic::TrafficMatrix tm{{{0, 3}, 500.0}, {{1, 2}, 300.0}};
  Rng rng(42);
  const traffic::LinkLoads measured =
      measured_loads(g, tm, /*duration=*/120.0, /*poll=*/60.0, rng);
  const traffic::LinkLoads truth = traffic::link_loads(g, tm);
  for (topo::LinkId id = 0; id < g.link_count(); ++id) {
    if (truth[id] <= 0.0) {
      EXPECT_DOUBLE_EQ(measured[id], 0.0);
    } else {
      // Poisson noise over 60s: sigma/mean = 1/sqrt(rate*60) < 1%.
      EXPECT_NEAR(measured[id] / truth[id], 1.0, 0.1)
          << g.link_name(id);
    }
  }
}

TEST(MeasuredLoads, ValidatesArguments) {
  const topo::Graph g = test::line_graph();
  traffic::TrafficMatrix tm{{{0, 1}, 10.0}};
  Rng rng(1);
  EXPECT_THROW(measured_loads(g, tm, 0.0, 1.0, rng), Error);
  EXPECT_THROW(measured_loads(g, tm, 10.0, 20.0, rng), Error);
}

}  // namespace
}  // namespace netmon::telemetry
