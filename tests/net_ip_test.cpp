#include "net/ip.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace netmon::net {
namespace {

TEST(Ipv4, BuildAndRender) {
  const Ipv4 addr = ipv4(10, 3, 0, 1);
  EXPECT_EQ(addr, 0x0a030001u);
  EXPECT_EQ(to_string(addr), "10.3.0.1");
  EXPECT_EQ(to_string(ipv4(255, 255, 255, 255)), "255.255.255.255");
  EXPECT_EQ(to_string(ipv4(0, 0, 0, 0)), "0.0.0.0");
}

TEST(Ipv4, ParseRoundTrip) {
  for (const char* text : {"0.0.0.0", "10.3.0.1", "192.168.255.254"}) {
    EXPECT_EQ(to_string(parse_ipv4(text)), text);
  }
}

TEST(Ipv4, ParseRejectsMalformed) {
  EXPECT_THROW(parse_ipv4("10.3.0"), Error);
  EXPECT_THROW(parse_ipv4("10.3.0.256"), Error);
  EXPECT_THROW(parse_ipv4("10.3.0.1.5"), Error);
  EXPECT_THROW(parse_ipv4("banana"), Error);
  EXPECT_THROW(parse_ipv4("10.3.0.1x"), Error);
}

TEST(Prefix, MaskAndContains) {
  const Prefix p{ipv4(10, 3, 0, 0), 16};
  EXPECT_EQ(p.mask(), 0xffff0000u);
  EXPECT_TRUE(p.contains(ipv4(10, 3, 200, 17)));
  EXPECT_FALSE(p.contains(ipv4(10, 4, 0, 1)));
  EXPECT_EQ(p.size(), 65536u);
}

TEST(Prefix, ZeroLengthMatchesEverything) {
  const Prefix any{0, 0};
  EXPECT_EQ(any.mask(), 0u);
  EXPECT_TRUE(any.contains(ipv4(1, 2, 3, 4)));
  EXPECT_EQ(any.size(), std::uint64_t{1} << 32);
}

TEST(Prefix, HostRoute) {
  const Prefix host{ipv4(10, 0, 0, 1), 32};
  EXPECT_TRUE(host.contains(ipv4(10, 0, 0, 1)));
  EXPECT_FALSE(host.contains(ipv4(10, 0, 0, 2)));
  EXPECT_EQ(host.size(), 1u);
}

TEST(Prefix, ParseAndRender) {
  const Prefix p = parse_prefix("10.3.0.0/16");
  EXPECT_EQ(p.base, ipv4(10, 3, 0, 0));
  EXPECT_EQ(p.len, 16);
  EXPECT_EQ(to_string(p), "10.3.0.0/16");
  EXPECT_THROW(parse_prefix("10.3.0.0"), Error);
  EXPECT_THROW(parse_prefix("10.3.0.0/33"), Error);
  EXPECT_THROW(parse_prefix("10.3.0.0/x"), Error);
}

}  // namespace
}  // namespace netmon::net
