#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace netmon {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  |"), std::string::npos);
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  // Right-aligned numeric column.
  EXPECT_NE(out.find("|     1 |"), std::string::npos);
  EXPECT_NE(out.find("|    22 |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, SeparatorRendersRule) {
  TextTable t({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // header rule + top + separator + bottom = 4 rules
  std::size_t rules = 0, pos = 0;
  while ((pos = out.find("+---", pos)) != std::string::npos) {
    ++rules;
    pos += 4;
  }
  EXPECT_EQ(rules, 4u);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, AlignmentOverride) {
  TextTable t({"a", "b"});
  t.set_align(1, Align::kLeft);
  t.add_row({"x", "y"});
  EXPECT_NE(t.render().find("| y |"), std::string::npos);
}

TEST(TextTable, RejectsBadRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
  EXPECT_THROW(t.set_align(2, Align::kLeft), Error);
  EXPECT_THROW(TextTable({}), Error);
}

TEST(Format, FixedSciPercent) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(-1.0, 0), "-1");
  EXPECT_EQ(fmt_sci(0.000123, 2), "1.23e-04");
  EXPECT_EQ(fmt_percent(0.245, 1), "24.5%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

TEST(CsvWriter, PlainRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row(std::vector<std::string>{"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row(std::vector<std::string>{"a,b", "say \"hi\"", "line\nbreak"});
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvWriter, NumericRowRoundTrips) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row(std::vector<double>{0.5, 1e-9, 1.0 / 3.0});
  std::istringstream in(out.str());
  std::string cell;
  std::getline(in, cell, ',');
  EXPECT_DOUBLE_EQ(std::stod(cell), 0.5);
  std::getline(in, cell, ',');
  EXPECT_DOUBLE_EQ(std::stod(cell), 1e-9);
  std::getline(in, cell);
  EXPECT_DOUBLE_EQ(std::stod(cell), 1.0 / 3.0);  // full precision kept
}

}  // namespace
}  // namespace netmon
