#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "core/utility.hpp"
#include "obs/export.hpp"
#include "opt/gradient_projection.hpp"

namespace netmon::opt {
namespace {

std::shared_ptr<const Concave1d> log_u(double eps) {
  return std::make_shared<core::LogUtility>(eps);
}

/// The two-variable analytic problem from the gradient-projection tests.
struct Fixture {
  Fixture()
      : f(2, SeparableConcaveObjective::SparseRows{{{0, 1.0}}, {{1, 1.0}}},
          {log_u(0.1), log_u(0.1)}),
        c({1.0, 2.0}, {1.0, 1.0}, 0.5) {}
  SeparableConcaveObjective f;
  BoxBudgetConstraints c;
};

TEST(SolverTrace, OneRecordPerIterationPlusFinalSummary) {
  Fixture fx;
  obs::SolverTrace trace(256);
  SolverOptions options;
  options.trace = &trace;

  const SolveResult result = maximize(fx.f, fx.c, options);
  ASSERT_EQ(result.status, SolveStatus::kOptimal);

  const auto records = trace.snapshot();
  ASSERT_EQ(records.size(),
            static_cast<std::size_t>(result.iterations) + 1);
  for (std::size_t i = 0; i + 1 < records.size(); ++i) {
    EXPECT_FALSE(records[i].final_record);
    EXPECT_EQ(records[i].iteration, i + 1);
    EXPECT_TRUE(records[i].fused);
    EXPECT_EQ(records[i].solve_id, records.back().solve_id);
  }
  EXPECT_TRUE(records.back().final_record);
}

TEST(SolverTrace, FinalRecordMatchesSolveResultExactly) {
  Fixture fx;
  obs::SolverTrace trace;
  SolverOptions options;
  options.trace = &trace;

  const SolveResult result = maximize(fx.f, fx.c, options);

  const auto records = trace.snapshot();
  ASSERT_FALSE(records.empty());
  const obs::TraceRecord& last = records.back();
  ASSERT_TRUE(last.final_record);
  // Bit-exact: the summary record stores the SolveResult fields verbatim.
  EXPECT_EQ(last.kkt_lambda, result.lambda);
  EXPECT_EQ(last.kkt_residual, result.worst_multiplier);
  EXPECT_EQ(last.value, result.value);
  EXPECT_EQ(static_cast<int>(last.iteration), result.iterations);
  EXPECT_EQ(static_cast<SolveStatus>(last.status), result.status);
}

TEST(SolverTrace, TracingDoesNotChangeTheSolution) {
  Fixture fx;
  const SolveResult plain = maximize(fx.f, fx.c);

  obs::SolverTrace trace;
  SolverOptions options;
  options.trace = &trace;
  const SolveResult traced = maximize(fx.f, fx.c, options);

  ASSERT_EQ(traced.p.size(), plain.p.size());
  for (std::size_t j = 0; j < plain.p.size(); ++j)
    EXPECT_EQ(traced.p[j], plain.p[j]);  // bit-identical
  EXPECT_EQ(traced.value, plain.value);
  EXPECT_EQ(traced.iterations, plain.iterations);
}

TEST(SolverTrace, DistinctSolvesGetDistinctIds) {
  Fixture fx;
  obs::SolverTrace trace;
  SolverOptions options;
  options.trace = &trace;
  maximize(fx.f, fx.c, options);
  const std::uint64_t first = trace.snapshot().back().solve_id;
  maximize(fx.f, fx.c, options);
  const std::uint64_t second = trace.snapshot().back().solve_id;
  EXPECT_NE(first, second);
}

TEST(SolverTrace, JsonlHasOneObjectPerRecordWithTheSchemaKeys) {
  Fixture fx;
  obs::SolverTrace trace;
  SolverOptions options;
  options.trace = &trace;
  maximize(fx.f, fx.c, options);

  const std::string jsonl = trace.jsonl();
  const auto lines = static_cast<std::size_t>(
      std::count(jsonl.begin(), jsonl.end(), '\n'));
  EXPECT_EQ(lines, trace.snapshot().size());
  for (const char* key :
       {"\"solve\":", "\"iter\":", "\"final\":", "\"fused\":", "\"status\":",
        "\"value\":", "\"grad_inf\":", "\"proj_grad_norm\":", "\"step\":",
        "\"active_set\":", "\"restriction_terms\":", "\"kkt_lambda\":",
        "\"kkt_residual\":"}) {
    EXPECT_NE(jsonl.find(key), std::string::npos) << key;
  }
}

TEST(SolverCounters, CountSolvesIterationsAndReleases) {
  Fixture fx;
  obs::MetricsRegistry registry;
  SolverOptions options;
  options.counters = obs::register_solver_counters(registry);

  const SolveResult a = maximize(fx.f, fx.c, options);
  const SolveResult b = maximize(fx.f, fx.c, options);

  const obs::RegistrySnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.find("netmon_solver_solves_total")->value, 2.0);
  EXPECT_EQ(snap.find("netmon_solver_iterations_total")->value,
            static_cast<double>(a.iterations + b.iterations));
  EXPECT_EQ(snap.find("netmon_solver_release_events_total")->value,
            static_cast<double>(a.release_events + b.release_events));
  EXPECT_EQ(snap.find("netmon_solver_cancelled_total")->value, 0.0);
}

TEST(SolverCounters, CancelledSolvesAreCounted) {
  Fixture fx;
  obs::MetricsRegistry registry;
  SolverOptions options;
  options.counters = obs::register_solver_counters(registry);
  options.should_stop = [](int iterations) { return iterations >= 1; };

  const SolveResult result = maximize(fx.f, fx.c, options);
  EXPECT_EQ(result.status, SolveStatus::kCancelled);
  EXPECT_EQ(registry.snapshot().find("netmon_solver_cancelled_total")->value,
            1.0);
}

}  // namespace
}  // namespace netmon::opt
