// Robustness fuzzing: hostile or random input must produce netmon::Error
// (or a clean parse), never a crash or an inconsistent object.
#include <gtest/gtest.h>

#include <string>

#include "netflow/v5_codec.hpp"
#include "net/ip.hpp"
#include "serve/wire.hpp"
#include "topo/io.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace netmon {
namespace {

class FuzzSeed : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeed, V5DecoderNeverCrashesOnRandomBytes) {
  Rng rng(42000 + GetParam());
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> bytes(rng.below(200));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
    try {
      const auto decoded = netflow::decode_v5(bytes);
      // If it decoded, the invariants must hold.
      EXPECT_EQ(decoded.header.version, 5);
      EXPECT_EQ(decoded.records.size(), decoded.header.count);
    } catch (const Error&) {
      // rejected cleanly: fine
    }
  }
}

TEST_P(FuzzSeed, V5DecoderSurvivesBitFlipsOfValidDatagrams) {
  Rng rng(43000 + GetParam());
  netflow::RecordBatch batch;
  for (std::uint32_t i = 0; i < 3; ++i) {
    netflow::FlowRecord r;
    r.key.src_ip = i;
    r.sampled_packets = i + 1;
    batch.push_back(r);
  }
  const auto datagrams = netflow::encode_v5(batch, 12.0, 100);
  for (int round = 0; round < 300; ++round) {
    auto mutated = datagrams[0];
    const std::size_t at = rng.below(mutated.size());
    mutated[at] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    try {
      const auto decoded = netflow::decode_v5(mutated);
      EXPECT_LE(decoded.records.size(), netflow::kV5MaxRecords);
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeed, TopologyParserNeverCrashes) {
  Rng rng(44000 + GetParam());
  const std::string tokens[] = {"node",  "link", "duplex", "A",  "B",
                                "1e9",   "-3",   "0",      "1",  "#x",
                                "\n",    "C",    "nan",    "",   "2.5"};
  for (int round = 0; round < 200; ++round) {
    std::string text;
    const std::size_t parts = rng.below(30);
    for (std::size_t i = 0; i < parts; ++i) {
      text += tokens[rng.below(std::size(tokens))];
      text += rng.bernoulli(0.3) ? "\n" : " ";
    }
    try {
      const topo::Graph g = topo::graph_from_string(text);
      // Parsed graphs must be internally consistent.
      for (const topo::Link& l : g.links()) {
        EXPECT_LT(l.src, g.node_count());
        EXPECT_LT(l.dst, g.node_count());
      }
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeed, AddressParserNeverCrashes) {
  Rng rng(45000 + GetParam());
  for (int round = 0; round < 300; ++round) {
    std::string text;
    const std::size_t len = rng.below(24);
    for (std::size_t i = 0; i < len; ++i) {
      const char alphabet[] = "0123456789./x -";
      text += alphabet[rng.below(sizeof(alphabet) - 1)];
    }
    try {
      const net::Ipv4 addr = net::parse_ipv4(text);
      // Round trip must hold for accepted inputs.
      EXPECT_EQ(net::parse_ipv4(net::to_string(addr)), addr);
    } catch (const Error&) {
    }
    try {
      const net::Prefix prefix = net::parse_prefix(text);
      EXPECT_GE(prefix.len, 0);
      EXPECT_LE(prefix.len, 32);
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeed, ServeWireDecoderNeverCrashesOnRandomBytes) {
  Rng rng(46000 + GetParam());
  for (int round = 0; round < 300; ++round) {
    std::vector<std::uint8_t> bytes(rng.below(300));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
    try {
      const serve::Request decoded = serve::decode_request(bytes);
      EXPECT_LE(static_cast<std::uint8_t>(decoded.kind), 3);
    } catch (const Error&) {
    }
    try {
      const serve::Response decoded = serve::decode_response(bytes);
      EXPECT_LE(static_cast<std::uint8_t>(decoded.status), 4);
    } catch (const Error&) {
    }
    try {
      const std::size_t size = serve::frame_size(bytes);
      // When decidable, the frame covers at least its envelope.
      EXPECT_TRUE(size == 0 || size >= 8);
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeed, ServeWireDecoderSurvivesBitFlipsOfValidFrames) {
  Rng rng(47000 + GetParam());
  serve::Request request;
  request.id = 17;
  request.kind = serve::RequestKind::kWhatIfBatch;
  request.failed = {1, 2};
  request.what_if = {{0}, {3, 4}};
  request.warm_start = {0.5, 0.25, 0.125};
  const std::vector<std::uint8_t> good = serve::encode_request(request);
  for (int round = 0; round < 300; ++round) {
    auto mutated = good;
    const std::size_t at = rng.below(mutated.size());
    mutated[at] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    try {
      const serve::Request decoded = serve::decode_request(mutated);
      // If it decoded, the structural invariants must hold.
      EXPECT_LE(decoded.failed.size(), serve::kWireMaxCount);
      EXPECT_LE(decoded.what_if.size(), serve::kWireMaxCount);
    } catch (const Error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuzzSeed, ::testing::Range(0, 5));

}  // namespace
}  // namespace netmon
