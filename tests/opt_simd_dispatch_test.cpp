// Leveled SIMD dispatch: NETMON_SIMD parsing, CPUID clamping and forced
// fallback, bit-identity of every available dispatch level against the
// scalar reference (fused terms, line-search restriction probes, and
// full solves on GEANT and Abilene), and the fast-math leg's relative-
// error contract.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/problem.hpp"
#include "core/scenario.hpp"
#include "core/utility.hpp"
#include "opt/fused_eval.hpp"
#include "opt/gradient_projection.hpp"
#include "opt/objective.hpp"
#include "topo/abilene.hpp"
#include "traffic/gravity.hpp"
#include "traffic/link_load.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace netmon::opt {
namespace {

// Restores the dispatch level and the fast-math flag on scope exit so
// tests that sweep them cannot leak state into each other.
class LevelGuard {
 public:
  LevelGuard()
      : level_(simd_dispatch_level()), fastmath_(simd_fastmath_enabled()) {}
  ~LevelGuard() {
    set_simd_dispatch_level(level_);
    set_simd_fastmath(fastmath_);
  }

 private:
  SimdLevel level_;
  bool fastmath_;
};

std::vector<SimdLevel> available_levels() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  for (int l = 1; l <= static_cast<int>(simd_max_level()); ++l)
    levels.push_back(static_cast<SimdLevel>(l));
  return levels;
}

// A random separable objective whose inner products exercise the domain
// edges: x straddling the SRE pivot (below, above, and exactly at x0)
// and slightly negative arguments near the domain floor.
struct EdgeCaseObjective {
  std::unique_ptr<SeparableConcaveObjective> f;
  std::vector<double> x;  // inner products fed to fused_terms directly

  EdgeCaseObjective(std::uint64_t seed, std::size_t terms, bool mix_families) {
    Rng rng(seed);
    SeparableConcaveObjective::SparseRows rows;
    std::vector<std::shared_ptr<const Concave1d>> utilities;
    auto push = [&](std::shared_ptr<const Concave1d> u, double xi) {
      rows.push_back({{x.size(), 1.0}});
      utilities.push_back(std::move(u));
      x.push_back(xi);
    };
    for (std::size_t k = 0; k < terms; ++k) {
      const double c = rng.uniform(0.01, 0.5);
      const double x0 = core::SreUtility::pivot_for(c);
      switch (k % 8) {
        case 0:  // deep in the quadratic regime
          push(std::make_shared<core::SreUtility>(c), 0.1 * x0);
          break;
        case 1:  // just below the pivot
          push(std::make_shared<core::SreUtility>(c),
               std::nextafter(x0, 0.0));
          break;
        case 2:  // exactly at the pivot (x < x0 is false: rational leg)
          push(std::make_shared<core::SreUtility>(c), x0);
          break;
        case 3:  // just above the pivot
          push(std::make_shared<core::SreUtility>(c),
               std::nextafter(x0, 2.0));
          break;
        case 4:  // slightly negative: analytic extension, near the floor
          push(std::make_shared<core::SreUtility>(c), -1e-12);
          break;
        case 5:
          if (mix_families) {
            const double eps = rng.uniform(0.01, 1.0);
            // Near the log domain edge -eps without crossing it.
            push(std::make_shared<core::LogUtility>(eps),
                 -eps + 1e-9 * (1.0 + eps));
            break;
          }
          [[fallthrough]];
        case 6:
          if (mix_families) {
            push(std::make_shared<core::DetectionUtility>(
                     2.0 + rng.uniform(0.0, 50.0)),
                 rng.uniform(0.0, 1.0));
            break;
          }
          [[fallthrough]];
        default:  // random interior point on either side of the pivot
          push(std::make_shared<core::SreUtility>(c),
               rng.uniform(0.0, 2.0 * x0));
      }
    }
    f = std::make_unique<SeparableConcaveObjective>(x.size(), std::move(rows),
                                                    std::move(utilities));
  }
};

TEST(SimdDispatch, ParseLevelAcceptsKnownValues) {
  EXPECT_EQ(parse_simd_level("scalar"), SimdLevel::kScalar);
  EXPECT_EQ(parse_simd_level("0"), SimdLevel::kScalar);
  EXPECT_EQ(parse_simd_level("off"), SimdLevel::kScalar);
  EXPECT_EQ(parse_simd_level("avx2"), SimdLevel::kAvx2);
  EXPECT_EQ(parse_simd_level("avx512"), SimdLevel::kAvx512);
  // "auto"/"on"/"1"/empty resolve to the highest supported level.
  EXPECT_EQ(parse_simd_level("auto"), simd_max_level());
  EXPECT_EQ(parse_simd_level("on"), simd_max_level());
  EXPECT_EQ(parse_simd_level("1"), simd_max_level());
  EXPECT_EQ(parse_simd_level(""), simd_max_level());
}

TEST(SimdDispatch, ParseLevelRejectsUnknownValuesWithClearError) {
  for (const char* bad : {"avx", "AVX2", "2", "fast", "yes", "scalar "}) {
    EXPECT_THROW(parse_simd_level(bad), netmon::Error) << bad;
  }
  try {
    parse_simd_level("avx1024");
    FAIL() << "expected netmon::Error";
  } catch (const netmon::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("avx1024"), std::string::npos) << what;
    EXPECT_NE(what.find("scalar|avx2|avx512|auto"), std::string::npos)
        << what;
  }
}

TEST(SimdDispatch, ParseFastmathAcceptsOnOffAndRejectsJunk) {
  EXPECT_FALSE(parse_simd_fastmath("0"));
  EXPECT_FALSE(parse_simd_fastmath("off"));
  EXPECT_TRUE(parse_simd_fastmath("1"));
  EXPECT_TRUE(parse_simd_fastmath("on"));
  EXPECT_THROW(parse_simd_fastmath("maybe"), netmon::Error);
}

TEST(SimdDispatch, LevelNamesRoundTrip) {
  EXPECT_STREQ(simd_level_name(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(simd_level_name(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(simd_level_name(SimdLevel::kAvx512), "avx512");
  for (const SimdLevel level : available_levels())
    EXPECT_EQ(parse_simd_level(simd_level_name(level)), level);
}

TEST(SimdDispatch, SetLevelClampsToHardwareForcedFallback) {
  LevelGuard guard;
  // Requesting a level the hardware/build lacks falls back to the
  // highest supported one instead of faulting.
  set_simd_dispatch_level(SimdLevel::kAvx512);
  EXPECT_LE(static_cast<int>(simd_dispatch_level()),
            static_cast<int>(simd_max_level()));
  // Every supported level round-trips exactly.
  for (const SimdLevel level : available_levels()) {
    set_simd_dispatch_level(level);
    EXPECT_EQ(simd_dispatch_level(), level);
  }
  // Compat shims: on = highest supported, off = scalar.
  set_simd_dispatch(true);
  EXPECT_EQ(simd_dispatch_level(), simd_max_level());
  EXPECT_EQ(simd_dispatch_enabled(),
            simd_max_level() != SimdLevel::kScalar);
  set_simd_dispatch(false);
  EXPECT_EQ(simd_dispatch_level(), SimdLevel::kScalar);
  EXPECT_FALSE(simd_dispatch_enabled());
}

// Property test: for random term mixes with domain-edge inner products,
// every available dispatch level reproduces the scalar reference
// EXPECT_EQ — including vectors that straddle the pivot and remainder
// tails of every length (term counts are primes, not lane multiples).
TEST(SimdDispatch, FusedTermsBitIdenticalAcrossLevels) {
  LevelGuard guard;
  set_simd_fastmath(false);
  for (const std::uint64_t seed : {3u, 17u, 91u}) {
    for (const bool mixed : {false, true}) {
      const EdgeCaseObjective obj(seed, mixed ? 211 : 127, mixed);
      const std::size_t m = obj.f->term_count();
      std::vector<double> v_ref(m), m1_ref(m), m2_ref(m);
      set_simd_dispatch_level(SimdLevel::kScalar);
      obj.f->fused_terms(obj.x, v_ref, m1_ref, m2_ref);
      // The scalar batch path must match the per-term virtuals exactly.
      for (std::size_t k = 0; k < m; ++k) {
        EXPECT_EQ(v_ref[k], obj.f->utility(k).value(obj.x[k])) << k;
        EXPECT_EQ(m1_ref[k], obj.f->utility(k).deriv(obj.x[k])) << k;
        EXPECT_EQ(m2_ref[k], obj.f->utility(k).second(obj.x[k])) << k;
      }
      for (const SimdLevel level : available_levels()) {
        set_simd_dispatch_level(level);
        std::vector<double> v(m), m1(m), m2(m);
        obj.f->fused_terms(obj.x, v, m1, m2);
        for (std::size_t k = 0; k < m; ++k) {
          EXPECT_EQ(v[k], v_ref[k])
              << simd_level_name(level) << " value @" << k;
          EXPECT_EQ(m1[k], m1_ref[k])
              << simd_level_name(level) << " deriv @" << k;
          EXPECT_EQ(m2[k], m2_ref[k])
              << simd_level_name(level) << " second @" << k;
        }
      }
    }
  }
}

// Line-search restriction probes (regime-partitioned compact slots +
// fma probe fill) are bit-identical across levels as well.
TEST(SimdDispatch, RestrictionProbesBitIdenticalAcrossLevels) {
  LevelGuard guard;
  set_simd_fastmath(false);
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  const auto& f = problem.objective();
  const std::vector<double> p = problem.constraints().initial_point();
  const std::vector<double> x0 = f.inner(p);
  Rng rng(29);
  std::vector<double> d(f.dimension());
  for (double& dj : d) dj = rng.below(3) == 0 ? 0.0 : rng.uniform(-1.0, 1.0);

  SeparableRestriction restriction;
  std::vector<std::pair<double, Phi::Derivs>> ref;
  set_simd_dispatch_level(SimdLevel::kScalar);
  restriction.reset(f, x0, d);
  ASSERT_GT(restriction.active_terms(), 0u);
  for (const double t : {0.0, 1e-5, 1e-3, 5e-3})
    ref.emplace_back(t, restriction.derivs(t));

  for (const SimdLevel level : available_levels()) {
    set_simd_dispatch_level(level);
    restriction.reset(f, x0, d);
    for (const auto& [t, expect] : ref) {
      const Phi::Derivs got = restriction.derivs(t);
      EXPECT_EQ(got.first, expect.first)
          << simd_level_name(level) << " phi' @t=" << t;
      EXPECT_EQ(got.second, expect.second)
          << simd_level_name(level) << " phi'' @t=" << t;
    }
  }
}

void expect_identical_solves_across_levels(
    const SeparableConcaveObjective& f,
    const BoxBudgetConstraints& constraints) {
  SolverOptions options;
  options.use_fused = true;
  set_simd_fastmath(false);
  set_simd_dispatch_level(SimdLevel::kScalar);
  const SolveResult ref = maximize(f, constraints, options);
  EXPECT_EQ(ref.status, SolveStatus::kOptimal);
  for (const SimdLevel level : available_levels()) {
    set_simd_dispatch_level(level);
    const SolveResult run = maximize(f, constraints, options);
    // Full-result bit identity: identical trajectories, not just close
    // optima.
    EXPECT_EQ(run.status, ref.status) << simd_level_name(level);
    EXPECT_EQ(run.value, ref.value) << simd_level_name(level);
    EXPECT_EQ(run.iterations, ref.iterations) << simd_level_name(level);
    ASSERT_EQ(run.p.size(), ref.p.size());
    for (std::size_t j = 0; j < ref.p.size(); ++j)
      EXPECT_EQ(run.p[j], ref.p[j])
          << simd_level_name(level) << " rate @" << j;
  }
}

TEST(SimdDispatch, SolveResultIdenticalAcrossLevelsOnGeant) {
  LevelGuard guard;
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  expect_identical_solves_across_levels(problem.objective(),
                                        problem.constraints());
}

TEST(SimdDispatch, SolveResultIdenticalAcrossLevelsOnAbilene) {
  LevelGuard guard;
  const topo::AbileneNetwork net = topo::make_abilene();
  core::MeasurementTask task;
  task.interval_sec = 300.0;
  traffic::TrafficMatrix demands = traffic::gravity_matrix(
      net.graph, {.total_pkt_per_sec = 6.0e5, .min_mass = 1e-12});
  for (const auto& [name, rate] : topo::abilene_task_rates()) {
    const auto dst = *net.graph.find_node(name);
    task.ods.push_back({net.customer, dst});
    task.expected_packets.push_back(rate * task.interval_sec);
    demands.push_back({{net.customer, dst}, rate});
  }
  const traffic::LinkLoads loads = traffic::link_loads(net.graph, demands);
  core::ProblemOptions options;
  options.theta = 50000.0;
  const core::PlacementProblem problem(net.graph, task, loads, options);
  expect_identical_solves_across_levels(problem.objective(),
                                        problem.constraints());
}

// Fast-math leg: reciprocal + Newton is NOT bit-exact — its contract is
// a relative-error bound against the exact scalar reference.
TEST(SimdDispatch, FastMathStaysWithinRelativeErrorBound) {
  LevelGuard guard;
  if (simd_max_level() == SimdLevel::kScalar)
    GTEST_SKIP() << "no vector level available";
  const EdgeCaseObjective obj(7, 509, false);
  const std::size_t m = obj.f->term_count();
  std::vector<double> v_ref(m), m1_ref(m), m2_ref(m);
  set_simd_fastmath(false);
  set_simd_dispatch_level(SimdLevel::kScalar);
  obj.f->fused_terms(obj.x, v_ref, m1_ref, m2_ref);

  set_simd_fastmath(true);
  for (int l = 1; l <= static_cast<int>(simd_max_level()); ++l) {
    set_simd_dispatch_level(static_cast<SimdLevel>(l));
    std::vector<double> v(m), m1(m), m2(m);
    obj.f->fused_terms(obj.x, v, m1, m2);
    constexpr double kRelTol = 1e-12;
    for (std::size_t k = 0; k < m; ++k) {
      EXPECT_NEAR(v[k], v_ref[k],
                  kRelTol * std::max(1.0, std::abs(v_ref[k])))
          << "level " << l << " value @" << k;
      EXPECT_NEAR(m1[k], m1_ref[k],
                  kRelTol * std::max(1.0, std::abs(m1_ref[k])))
          << "level " << l << " deriv @" << k;
      EXPECT_NEAR(m2[k], m2_ref[k],
                  kRelTol * std::max(1.0, std::abs(m2_ref[k])))
          << "level " << l << " second @" << k;
    }
  }
}

// The domain check is folded into the vector kernels' main loop; every
// level must reject out-of-domain arguments like the scalar reference.
TEST(SimdDispatch, DomainViolationsRejectedAtEveryLevel) {
  LevelGuard guard;
  set_simd_fastmath(false);
  SeparableConcaveObjective::SparseRows rows;
  std::vector<std::shared_ptr<const Concave1d>> utilities;
  std::vector<double> x;
  for (std::size_t k = 0; k < 37; ++k) {
    rows.push_back({{k, 1.0}});
    utilities.push_back(std::make_shared<core::SreUtility>(0.2));
    x.push_back(0.1);
  }
  x[17] = -2.0;  // below the SRE domain floor (x >= -1)
  const SeparableConcaveObjective f(x.size(), std::move(rows),
                                    std::move(utilities));
  std::vector<double> v(x.size()), m1(x.size()), m2(x.size());
  for (const SimdLevel level : available_levels()) {
    set_simd_dispatch_level(level);
    EXPECT_THROW(f.fused_terms(x, v, m1, m2), netmon::Error)
        << simd_level_name(level);
  }
}

}  // namespace
}  // namespace netmon::opt
