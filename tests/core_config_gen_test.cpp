#include "core/config_gen.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "util/error.hpp"

namespace netmon::core {
namespace {

class ConfigGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario = new GeantScenario(make_geant_scenario());
    problem = new PlacementProblem(make_problem(*scenario));
    solution = new PlacementSolution(solve_placement(*problem));
  }
  static void TearDownTestSuite() {
    delete solution;
    delete problem;
    delete scenario;
  }
  static GeantScenario* scenario;
  static PlacementProblem* problem;
  static PlacementSolution* solution;
};

GeantScenario* ConfigGenTest::scenario = nullptr;
PlacementProblem* ConfigGenTest::problem = nullptr;
PlacementSolution* ConfigGenTest::solution = nullptr;

TEST_F(ConfigGenTest, EveryActiveMonitorConfigured) {
  const auto configs = router_configs(*solution, scenario->net.graph);
  std::size_t interfaces = 0;
  for (const RouterConfig& config : configs) interfaces += config.interfaces.size();
  EXPECT_EQ(interfaces, solution->active_monitors.size());
}

TEST_F(ConfigGenTest, GroupedByOwningRouter) {
  const auto configs = router_configs(*solution, scenario->net.graph);
  for (const RouterConfig& config : configs) {
    for (const auto& interface : config.interfaces) {
      EXPECT_EQ(scenario->net.graph.link(interface.link).src, config.router);
    }
  }
  // The UK router owns its five active first-hop monitors.
  for (const RouterConfig& config : configs) {
    if (config.router == scenario->net.uk) {
      EXPECT_EQ(config.interfaces.size(), 5u);
    }
  }
}

TEST_F(ConfigGenTest, QuantizationErrorSmallAtTableOneRates) {
  const auto configs = router_configs(*solution, scenario->net.graph);
  // At rates of ~1e-4..7e-3, rounding 1/p to an integer N is gentle.
  EXPECT_LT(worst_quantization_error(configs), 0.01);
  for (const RouterConfig& config : configs) {
    for (const auto& interface : config.interfaces) {
      EXPECT_GE(interface.sample_one_in, 1u);
      const double quantized = 1.0 / interface.sample_one_in;
      EXPECT_NEAR(quantized, interface.exact_rate,
                  interface.exact_rate * 0.011);
    }
  }
}

TEST_F(ConfigGenTest, ClampsToMaxInterval) {
  // Force a tiny max interval: high rates quantize to 1-in-1, low rates
  // clamp to the max and the error is reported honestly.
  const auto configs = router_configs(*solution, scenario->net.graph, 100);
  for (const RouterConfig& config : configs) {
    for (const auto& interface : config.interfaces) {
      EXPECT_LE(interface.sample_one_in, 100u);
    }
  }
  EXPECT_GT(worst_quantization_error(configs), 0.5);  // 1/100 vs ~1e-4
}

TEST_F(ConfigGenTest, RendersReadableStanza) {
  const auto configs = router_configs(*solution, scenario->net.graph);
  ASSERT_FALSE(configs.empty());
  const std::string text = render_config(configs[0], scenario->net.graph);
  EXPECT_NE(text.find("forwarding-options"), std::string::npos);
  EXPECT_NE(text.find("sampling"), std::string::npos);
  EXPECT_NE(text.find("input rate"), std::string::npos);
  EXPECT_NE(text.find(scenario->net.graph.node(configs[0].router).name),
            std::string::npos);
}

TEST(ConfigGen, Validation) {
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem problem = make_problem(s);
  const PlacementSolution solution = solve_placement(problem);
  EXPECT_THROW(router_configs(solution, s.net.graph, 0), Error);
  RouterConfig empty;
  EXPECT_THROW(render_config(empty, s.net.graph), Error);
}

}  // namespace
}  // namespace netmon::core
