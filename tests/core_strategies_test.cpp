#include "core/strategies.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "util/error.hpp"

namespace netmon::core {
namespace {

TEST(Strategies, UniformConsumesBudget) {
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem problem = make_problem(s);
  const auto rates = uniform_rates(problem);
  EXPECT_NEAR(problem.budget_used(rates) / problem.theta(), 1.0, 1e-9);
  // All candidate links share one rate.
  double rate = -1.0;
  for (topo::LinkId id : problem.candidates()) {
    if (rate < 0.0) rate = rates[id];
    EXPECT_DOUBLE_EQ(rates[id], rate);
  }
}

TEST(Strategies, UniformIsWorseThanOptimal) {
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem problem = make_problem(s);
  const PlacementSolution optimal = solve_placement(problem);
  const PlacementSolution uniform =
      evaluate_rates(problem, uniform_rates(problem));
  EXPECT_GT(optimal.total_utility, uniform.total_utility);
}

TEST(Strategies, SingleLinkPutsAllBudgetOnOneLink) {
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem problem = make_problem(s);
  const auto rates = single_link_rates(problem, s.net.access_in);
  EXPECT_GT(rates[s.net.access_in], 0.0);
  for (topo::LinkId id = 0; id < rates.size(); ++id) {
    if (id != s.net.access_in) {
      EXPECT_DOUBLE_EQ(rates[id], 0.0);
    }
  }
  EXPECT_NEAR(problem.budget_used(rates) / problem.theta(), 1.0, 1e-9);
}

TEST(Strategies, SingleLinkAccessRateMatchesThetaOverLoad) {
  // p = theta / (U * T): with theta=100k and the access link carrying
  // 57,933 pkt/s, p ~ 0.00575 (paper §V-C's arithmetic).
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem problem = make_problem(s);
  const auto rates = single_link_rates(problem, s.net.access_in);
  EXPECT_NEAR(rates[s.net.access_in], 100000.0 / (57933.0 * 300.0), 1e-9);
}

TEST(Strategies, ThetaForSingleLinkScalesWithRho) {
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem problem = make_problem(s);
  const double theta = theta_for_single_link(problem, s.net.access_in, 0.01);
  EXPECT_NEAR(theta, 0.01 * 57933.0 * 300.0, 1e-6);  // = 173,799 (paper)
  EXPECT_THROW(theta_for_single_link(problem, s.net.access_in, 0.0), Error);
}

TEST(Strategies, RestrictedSolveCannotBeatUnrestricted) {
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem full = make_problem(s);
  const PlacementSolution optimal = solve_placement(full);
  const PlacementSolution restricted = solve_restricted(
      s.net.graph, s.task, s.loads, ProblemOptions{}, uk_links(s.net));
  EXPECT_EQ(restricted.status, opt::SolveStatus::kOptimal);
  EXPECT_LE(restricted.total_utility, optimal.total_utility + 1e-9);
  // Restricted monitors stay on UK links only.
  for (topo::LinkId id : restricted.active_monitors)
    EXPECT_EQ(s.net.graph.link(id).src, s.net.uk);
}

TEST(Strategies, RestrictedHurtsSmallOdPairs) {
  // Paper Fig. 2: the UK-links-only solution is much worse for small OD
  // pairs at moderate theta.
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem full = make_problem(s);
  const PlacementSolution optimal = solve_placement(full);
  const PlacementSolution restricted = solve_restricted(
      s.net.graph, s.task, s.loads, ProblemOptions{}, uk_links(s.net));
  const auto worst = [](const PlacementSolution& sol) {
    double w = 1.0;
    for (const auto& od : sol.per_od) w = std::min(w, od.utility);
    return w;
  };
  EXPECT_LT(worst(restricted), worst(optimal));
}

TEST(Strategies, SingleLinkValidation) {
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem problem = make_problem(s);
  EXPECT_THROW(single_link_rates(problem, 9999), Error);
}

}  // namespace
}  // namespace netmon::core
