#include "control/loop.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <vector>

#include "core/scenario.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "traffic/variation.hpp"
#include "util/rng.hpp"

namespace netmon::control {
namespace {

using namespace std::chrono_literals;

/// Builds the bin observation a telemetry pipeline would deliver for the
/// given traffic matrix: routed link loads plus exact per-OD estimates.
BinObservation observe(const core::GeantScenario& s,
                       const traffic::TrafficMatrix& tm,
                       routing::LinkSet failed = {}) {
  BinObservation bin;
  bin.loads = traffic::link_loads(s.net.graph, tm, failed);
  bin.od_rates.reserve(s.task.ods.size());
  for (const routing::OdPair& od : s.task.ods)
    bin.od_rates.push_back(traffic::demand_for(tm, od));
  bin.failed = std::move(failed);
  return bin;
}

TEST(ControlLoop, FirstBinConfigures) {
  const core::GeantScenario s = core::make_geant_scenario();
  ControlLoop loop(s.net.graph, s.task);
  const StepResult r = loop.step(observe(s, s.demands));
  EXPECT_EQ(r.bin, 1);
  EXPECT_EQ(r.reason, ResolveReason::kFirstBin);
  EXPECT_TRUE(r.resolved);
  EXPECT_TRUE(r.reconfigured);
  EXPECT_TRUE(r.forced);
  EXPECT_GT(r.utility, 0.0);
  EXPECT_GT(r.active_monitors, 0u);
  EXPECT_NEAR(r.budget_used, 100000.0, 1.0);
  EXPECT_TRUE(loop.have_rates());
}

TEST(ControlLoop, SteadyStateTracksWithoutChurn) {
  const core::GeantScenario s = core::make_geant_scenario();
  ControlLoop loop(s.net.graph, s.task);
  const BinObservation bin_obs = observe(s, s.demands);
  loop.step(bin_obs);
  for (int bin = 2; bin <= 10; ++bin) {
    const StepResult r = loop.step(bin_obs);
    EXPECT_EQ(r.reason, ResolveReason::kNone) << "bin " << bin;
    EXPECT_FALSE(r.reconfigured);
    EXPECT_LT(r.tracked.innovation_rms, 1.0);
    EXPECT_GT(r.utility, 0.0);  // the incumbent keeps being priced
  }
  EXPECT_EQ(loop.reconfigurations(), 1);
  EXPECT_EQ(loop.resolves(), 1);
}

TEST(ControlLoop, StalenessResolveIsHeldBackByHysteresis) {
  const core::GeantScenario s = core::make_geant_scenario();
  ControlLoop loop(s.net.graph, s.task);
  const BinObservation bin_obs = observe(s, s.demands);
  StepResult r;
  // Default policy re-solves after 12 quiet bins; nothing changed, so
  // the fresh optimum ties the incumbent and the actuator holds it.
  for (int bin = 1; bin <= 13; ++bin) r = loop.step(bin_obs);
  EXPECT_EQ(r.reason, ResolveReason::kElapsed);
  EXPECT_TRUE(r.resolved);
  EXPECT_FALSE(r.reconfigured);
  EXPECT_LT(std::abs(r.utility_gain), 1e-3);
  EXPECT_EQ(loop.holds(), 1);
  EXPECT_EQ(loop.reconfigurations(), 1);
}

TEST(ControlLoop, TrafficSurgeTriggersInnovationResolve) {
  const core::GeantScenario s = core::make_geant_scenario();
  ControlConfig config;
  // Re-accept immediately so the surge snaps the tracked task (and the
  // re-solve sees it) on the surge bin itself.
  config.tracker.reaccept_after = 1;
  ControlLoop loop(s.net.graph, s.task, config);
  loop.step(observe(s, s.demands));

  // 10x surge in the *estimates* of three task ODs while the link loads
  // are still the old ones (the flow estimates lead the SNMP picture by
  // a poll): the budget contract still holds, so the innovation norm is
  // what must trigger the re-solve.
  BinObservation surged = observe(s, s.demands);
  for (int k = 0; k < 3; ++k)
    surged.od_rates[static_cast<std::size_t>(k)] *= 10.0;
  const StepResult r = loop.step(surged);
  EXPECT_EQ(r.reason, ResolveReason::kInnovation);
  EXPECT_GE(r.tracked.innovation_rms, 2.0);
  EXPECT_EQ(r.tracked.reaccepted, 3);
  EXPECT_TRUE(r.resolved);
  EXPECT_TRUE(r.reconfigured);  // the shifted task is worth re-planning
}

TEST(ControlLoop, TopologyEventForcesReconfiguration) {
  const core::GeantScenario s = core::make_geant_scenario();
  ControlLoop loop(s.net.graph, s.task);
  loop.step(observe(s, s.demands));

  const auto uk_nl = *s.net.graph.find_link("UK", "NL");
  const StepResult failed =
      loop.step(observe(s, s.demands, routing::LinkSet{uk_nl}));
  EXPECT_EQ(failed.reason, ResolveReason::kTopology);
  EXPECT_TRUE(failed.forced);
  EXPECT_TRUE(failed.reconfigured);
  EXPECT_DOUBLE_EQ(loop.rates()[uk_nl], 0.0);

  // Recovery is a topology event too.
  const StepResult recovered = loop.step(observe(s, s.demands));
  EXPECT_EQ(recovered.reason, ResolveReason::kTopology);
  EXPECT_TRUE(recovered.reconfigured);
}

TEST(ControlLoop, ExpiredSolveFallsBackToIncumbent) {
  const core::GeantScenario s = core::make_geant_scenario();
  obs::ManualClock clock;
  std::atomic<bool> cancel{false};
  ControlConfig config;
  config.solver.should_stop = [&cancel](int) {
    return cancel.load(std::memory_order_relaxed);
  };
  ControlDeps deps;
  deps.clock = &clock;
  ControlLoop loop(s.net.graph, s.task, config, deps);
  loop.step(observe(s, s.demands));
  const sampling::RateVector incumbent = loop.rates();

  // The topology-triggered re-solve is cancelled mid-flight: the loop
  // must keep the (certified) incumbent rather than push a half-solved
  // point, even though the trigger was a forced one.
  cancel.store(true, std::memory_order_relaxed);
  const auto uk_nl = *s.net.graph.find_link("UK", "NL");
  const StepResult expired =
      loop.step(observe(s, s.demands, routing::LinkSet{uk_nl}));
  EXPECT_EQ(expired.reason, ResolveReason::kTopology);
  EXPECT_TRUE(expired.solve_expired);
  EXPECT_FALSE(expired.resolved);
  EXPECT_FALSE(expired.reconfigured);
  EXPECT_EQ(loop.rates(), incumbent);
  EXPECT_EQ(loop.solve_expirations(), 1);

  // Once solves complete again, the next topology event (the recovery)
  // re-converges the loop.
  cancel.store(false, std::memory_order_relaxed);
  const StepResult recovered = loop.step(observe(s, s.demands));
  EXPECT_EQ(recovered.reason, ResolveReason::kTopology);
  EXPECT_TRUE(recovered.reconfigured);
}

TEST(ControlLoop, NegativeDeadlineExpiresAtFirstPoll) {
  const core::GeantScenario s = core::make_geant_scenario();
  obs::ManualClock clock;  // frozen: now() never advances inside a solve
  ControlConfig config;
  config.solve_deadline = -1ms;
  ControlDeps deps;
  deps.clock = &clock;
  ControlLoop loop(s.net.graph, s.task, config, deps);
  for (int bin = 1; bin <= 2; ++bin) {
    const StepResult r = loop.step(observe(s, s.demands));
    EXPECT_EQ(r.reason, ResolveReason::kFirstBin) << "bin " << bin;
    EXPECT_TRUE(r.solve_expired);
    EXPECT_FALSE(loop.have_rates());
  }
  EXPECT_EQ(loop.solve_expirations(), 2);
}

TEST(ControlLoop, RejectedBinIsSkippedAndIncumbentKept) {
  const core::GeantScenario s = core::make_geant_scenario();
  ControlLoop loop(s.net.graph, s.task);
  loop.step(observe(s, s.demands));
  const sampling::RateVector incumbent = loop.rates();

  // Dead loads on the candidate links: problem assembly rejects the bin.
  BinObservation bad = observe(s, s.demands);
  bad.loads.assign(bad.loads.size(), 0.0);
  const StepResult r = loop.step(bad);
  EXPECT_TRUE(r.skipped);
  EXPECT_FALSE(r.reconfigured);
  EXPECT_EQ(loop.rates(), incumbent);
  EXPECT_EQ(loop.bins(), 2);
}

TEST(ControlLoop, EmitsFlightEventsAndMetrics) {
  const core::GeantScenario s = core::make_geant_scenario();
  obs::ManualClock clock;
  obs::MetricsRegistry metrics;
  obs::FlightRecorder recorder(256);
  ControlDeps deps;
  deps.clock = &clock;
  deps.metrics = &metrics;
  deps.recorder = &recorder;
  ControlLoop loop(s.net.graph, s.task, {}, deps);
  const BinObservation bin_obs = observe(s, s.demands);
  for (int bin = 1; bin <= 3; ++bin) {
    loop.step(bin_obs);
    clock.advance(300s);
  }

  int tracks = 0, resolves = 0, reconfigs = 0;
  std::int64_t last_t = 0;
  for (const obs::FlightRecord& rec : recorder.dump()) {
    if (rec.event == obs::ServeEvent::kControlTrack) ++tracks;
    if (rec.event == obs::ServeEvent::kControlResolve) ++resolves;
    if (rec.event == obs::ServeEvent::kControlReconfigure) ++reconfigs;
    EXPECT_GE(rec.request_id, 1u);
    EXPECT_LE(rec.request_id, 3u);
    EXPECT_GE(rec.t_ns, last_t);  // ManualClock only moves forward
    last_t = rec.t_ns;
  }
  EXPECT_EQ(tracks, 3);
  EXPECT_EQ(resolves, 1);
  EXPECT_EQ(reconfigs, 1);

  const obs::RegistrySnapshot snap = metrics.snapshot();
  ASSERT_NE(snap.find("netmon_control_bins_total"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("netmon_control_bins_total")->value, 3.0);
  EXPECT_DOUBLE_EQ(
      snap.find("netmon_control_reconfigurations_total")->value, 1.0);
  ASSERT_NE(snap.find("netmon_control_step_ms"), nullptr);
  EXPECT_EQ(snap.find("netmon_control_step_ms")->count, 3u);
  EXPECT_DOUBLE_EQ(snap.find("netmon_control_active_monitors")->value,
                   static_cast<double>(loop.step(bin_obs).active_monitors));
}

TEST(ControlLoop, TomogravityFallbackEstimatesPopOds) {
  // The JANET endpoints carry no gravity mass, so the fallback is tested
  // on a PoP-to-PoP task whose demands the inversion can see.
  const core::GeantScenario s = core::make_geant_scenario();
  core::MeasurementTask pop_task;
  for (const traffic::Demand& d : s.demands) {
    if (d.od.src == s.net.janet || d.od.dst == s.net.janet) continue;
    pop_task.ods.push_back(d.od);
    pop_task.expected_packets.push_back(d.pkt_per_sec * 300.0);
    if (pop_task.ods.size() == 8) break;
  }
  ASSERT_EQ(pop_task.ods.size(), 8u);

  const std::vector<double> rates = od_rates_from_tomogravity(
      s.net.graph, s.loads, {}, pop_task);
  ASSERT_EQ(rates.size(), 8u);
  for (std::size_t k = 0; k < rates.size(); ++k) {
    EXPECT_GT(rates[k], 0.0) << "od " << k;
    // Tomogravity is approximate; order-of-magnitude agreement is the
    // contract here (estimate/ has the accuracy tests).
    const double truth = pop_task.expected_packets[k] / 300.0;
    EXPECT_GT(rates[k], 0.1 * truth);
    EXPECT_LT(rates[k], 10.0 * truth);
  }

  // A zero-mass endpoint's OD comes back as "no estimate".
  core::MeasurementTask janet_od;
  janet_od.ods.push_back(s.task.ods.front());
  janet_od.expected_packets.push_back(3000.0);
  const std::vector<double> missing = od_rates_from_tomogravity(
      s.net.graph, s.loads, {}, janet_od);
  EXPECT_LT(missing.front(), 0.0);

  // And the loop consumes the fallback transparently: feeding a bin with
  // no od_rates still tracks (predict-only on missing ODs).
  ControlLoop loop(s.net.graph, pop_task);
  BinObservation no_estimates;
  no_estimates.loads = s.loads;
  const StepResult r = loop.step(no_estimates);
  EXPECT_GT(r.tracked.measured, 0);
  EXPECT_TRUE(r.reconfigured);
}

TEST(ControlLoop, ServerHostsControlLoop) {
  const core::GeantScenario s = core::make_geant_scenario();
  obs::ManualClock clock;
  serve::ServerOptions options;
  options.clock = &clock;
  options.start_paused = true;  // no query traffic in this test
  serve::Server server(s.net.graph, s.task, s.loads, options);
  ASSERT_EQ(server.control_loop(), nullptr);

  server.start_control();
  const BinObservation bin_obs = observe(s, s.demands);
  for (int bin = 1; bin <= 3; ++bin) {
    server.control_step(bin_obs);
    clock.advance(300s);
  }
  ASSERT_NE(server.control_loop(), nullptr);
  EXPECT_EQ(server.control_loop()->bins(), 3);
  EXPECT_EQ(server.control_loop()->reconfigurations(), 1);

  // The loop reports into the server's registry and flight recorder.
  const std::string prom = server.prometheus();
  EXPECT_NE(prom.find("netmon_control_bins_total"), std::string::npos);
  bool saw_reconfig = false;
  for (const obs::FlightRecord& rec : server.flight_recorder().dump())
    if (rec.event == obs::ServeEvent::kControlReconfigure)
      saw_reconfig = true;
  EXPECT_TRUE(saw_reconfig);
}

// The acceptance scenario: a replayed synthetic day of GEANT traffic —
// diurnal background, a mid-run link failure with recovery, and an
// afternoon traffic surge — tracked by the loop against the every-bin
// oracle re-solve. The loop must stay within 5% of the oracle's
// time-averaged utility while issuing at most a quarter of the oracle's
// reconfigurations (the oracle pushes every bin by definition).
TEST(ControlLoop, ReplayedDayStaysNearOracleWithBoundedChurn) {
  const core::GeantScenario s = core::make_geant_scenario();
  const traffic::DiurnalPattern pattern(0.2, 14.0 * 3600.0);
  std::vector<traffic::AnomalySpike> spikes;
  for (int k = 0; k < 3; ++k) {
    traffic::AnomalySpike spike;
    spike.od = s.task.ods[static_cast<std::size_t>(k)];
    spike.start_sec = 18.0 * 3600.0;
    spike.end_sec = 19.0 * 3600.0;
    spike.factor = 8.0;
    spikes.push_back(spike);
  }
  const auto uk_nl = *s.net.graph.find_link("UK", "NL");
  constexpr int kBins = 288;            // one day of 5-minute bins
  constexpr int kFailBin = 97;          // 08:00
  constexpr int kRecoverBin = 193;      // 16:00

  obs::ManualClock clock;
  ControlConfig config;
  config.track_oracle = true;
  ControlDeps deps;
  deps.clock = &clock;
  ControlLoop loop(s.net.graph, s.task, config, deps);

  Rng rng(42);  // seeded: the replay is fully deterministic
  double loop_utility = 0.0;
  double oracle_utility = 0.0;
  for (int bin = 1; bin <= kBins; ++bin) {
    const double t = (bin - 1) * 300.0;
    const traffic::TrafficMatrix tm =
        traffic::matrix_at(s.demands, pattern, spikes, t);
    routing::LinkSet failed;
    if (bin >= kFailBin && bin < kRecoverBin) failed.insert(uk_nl);
    BinObservation bin_obs = observe(s, tm, failed);
    // NetFlow-style estimation noise on the OD rates.
    for (double& rate : bin_obs.od_rates) rate *= rng.uniform(0.95, 1.05);

    const StepResult r = loop.step(bin_obs);
    ASSERT_FALSE(r.skipped) << "bin " << bin;
    EXPECT_GT(r.utility, 0.0) << "bin " << bin;
    loop_utility += r.utility;
    oracle_utility += r.oracle_utility;

    if (bin == kFailBin || bin == kRecoverBin) {
      // The loop reacts to the topology event on the bin it happens.
      EXPECT_EQ(r.reason, ResolveReason::kTopology) << "bin " << bin;
      EXPECT_TRUE(r.reconfigured) << "bin " << bin;
    }
    clock.advance(300s);
  }

  // Time-averaged utility within 5% of the every-bin oracle.
  EXPECT_GT(oracle_utility, 0.0);
  EXPECT_GE(loop_utility, 0.95 * oracle_utility);
  EXPECT_LE(loop_utility, 1.0001 * oracle_utility)
      << "the tracked loop cannot beat the oracle";
  // Bounded churn: at most 25% of the oracle's one-push-per-bin rate.
  EXPECT_LE(loop.reconfigurations(), kBins / 4);
  EXPECT_GE(loop.reconfigurations(), 3);  // it did react to the day
  EXPECT_EQ(loop.bins(), kBins);
}

}  // namespace
}  // namespace netmon::control
