#include "core/problem.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "util/error.hpp"

namespace netmon::core {
namespace {

TEST(PlacementProblem, GeantCandidatesExcludeAccessLink) {
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem problem = make_problem(s);
  // The task traverses 21 links (20 tree links + access); the access link
  // is not monitorable, leaving 20 candidates.
  EXPECT_EQ(problem.routing().links_used().size(), 21u);
  EXPECT_EQ(problem.candidates().size(), 20u);
  for (topo::LinkId id : problem.candidates()) {
    EXPECT_NE(id, s.net.access_in);
    EXPECT_TRUE(s.net.graph.link(id).monitorable);
    EXPECT_GT(s.loads[id], 0.0);
  }
}

TEST(PlacementProblem, RestrictionNarrowsCandidates) {
  const GeantScenario s = make_geant_scenario();
  ProblemOptions options;
  options.restrict_to = uk_links(s.net);
  const PlacementProblem problem = make_problem(s, options);
  EXPECT_EQ(problem.candidates().size(), 5u);  // UK->IE is not in L
  for (topo::LinkId id : problem.candidates())
    EXPECT_EQ(s.net.graph.link(id).src, s.net.uk);
}

TEST(PlacementProblem, ExpandCompressRoundTrip) {
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem problem = make_problem(s);
  std::vector<double> x(problem.candidates().size());
  for (std::size_t j = 0; j < x.size(); ++j) x[j] = 1e-4 * (j + 1);
  const auto rates = problem.expand(x);
  EXPECT_EQ(rates.size(), s.net.graph.link_count());
  EXPECT_EQ(problem.compress(rates), x);
  // Non-candidate links carry rate 0.
  EXPECT_DOUBLE_EQ(rates[s.net.access_in], 0.0);
}

TEST(PlacementProblem, ConstraintsUsePacketsPerInterval) {
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem problem = make_problem(s);
  const auto& u = problem.constraints().loads();
  const auto& candidates = problem.candidates();
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    EXPECT_NEAR(u[j], s.loads[candidates[j]] * 300.0, 1e-6);
  }
  EXPECT_DOUBLE_EQ(problem.constraints().theta(), 100000.0);
}

TEST(PlacementProblem, BudgetUsedCountsAllLinks) {
  const GeantScenario s = make_geant_scenario();
  const PlacementProblem problem = make_problem(s);
  sampling::RateVector rates(s.net.graph.link_count(), 0.0);
  rates[problem.candidates()[0]] = 0.001;
  const double expected =
      0.001 * s.loads[problem.candidates()[0]] * 300.0;
  EXPECT_NEAR(problem.budget_used(rates), expected, 1e-9);
}

TEST(PlacementProblem, ValidatesInputs) {
  const GeantScenario s = make_geant_scenario();
  MeasurementTask bad = s.task;
  bad.expected_packets.pop_back();
  EXPECT_THROW(PlacementProblem(s.net.graph, bad, s.loads, {}), Error);

  MeasurementTask tiny = s.task;
  tiny.expected_packets[0] = 1.0;  // S < 2 not allowed
  EXPECT_THROW(PlacementProblem(s.net.graph, tiny, s.loads, {}), Error);

  traffic::LinkLoads wrong(3, 1.0);
  EXPECT_THROW(PlacementProblem(s.net.graph, s.task, wrong, {}), Error);

  ProblemOptions huge;
  huge.theta = 1e12;  // exceeds samplable volume
  EXPECT_THROW(PlacementProblem(s.net.graph, s.task, s.loads, huge), Error);
}

TEST(PlacementProblem, FailureChangesRouting) {
  const GeantScenario s = make_geant_scenario();
  ProblemOptions options;
  const auto uk_nl = s.net.graph.find_link("UK", "NL");
  ASSERT_TRUE(uk_nl.has_value());
  options.failed.insert(*uk_nl);
  // Loads must be recomputed for the failed topology.
  ScenarioOptions scenario_options;
  scenario_options.failed.insert(*uk_nl);
  const GeantScenario rerouted = make_geant_scenario(scenario_options);
  const PlacementProblem problem(rerouted.net.graph, rerouted.task,
                                 rerouted.loads, options);
  for (std::size_t k = 0; k < problem.routing().od_count(); ++k) {
    EXPECT_DOUBLE_EQ(problem.routing().fraction(k, *uk_nl), 0.0);
  }
}

TEST(PlacementProblem, EcmpOptionBuildsFractionalRows) {
  const GeantScenario s = make_geant_scenario();
  ProblemOptions options;
  options.ecmp = true;
  const PlacementProblem problem = make_problem(s, options);
  EXPECT_EQ(problem.routing().od_count(), 20u);
  // All fractions lie in (0, 1].
  for (std::size_t k = 0; k < 20; ++k) {
    for (const auto& [link, frac] : problem.routing().row(k)) {
      EXPECT_GT(frac, 0.0);
      EXPECT_LE(frac, 1.0 + 1e-12);
    }
  }
}

}  // namespace
}  // namespace netmon::core
