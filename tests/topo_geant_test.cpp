#include "topo/geant.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "routing/spf.hpp"

namespace netmon::topo {
namespace {

TEST(Geant, SizesMatchThePaper) {
  const GeantNetwork net = make_geant();
  // 23 PoPs plus the external JANET node.
  EXPECT_EQ(net.pops.size(), 23u);
  EXPECT_EQ(net.graph.node_count(), 24u);
  // 72 unidirectional GEANT links plus the two access-link directions.
  EXPECT_EQ(net.graph.link_count(), 74u);
}

TEST(Geant, AccessLinkIsNotMonitorable) {
  const GeantNetwork net = make_geant();
  EXPECT_FALSE(net.graph.link(net.access_in).monitorable);
  EXPECT_FALSE(net.graph.link(net.access_out).monitorable);
  EXPECT_EQ(net.graph.link(net.access_in).src, net.janet);
  EXPECT_EQ(net.graph.link(net.access_in).dst, net.uk);
}

TEST(Geant, UkHasSixInterPopLinks) {
  const GeantNetwork net = make_geant();
  int monitorable = 0;
  for (LinkId id : net.graph.out_links(net.uk)) {
    if (net.graph.link(id).monitorable) ++monitorable;
  }
  EXPECT_EQ(monitorable, 6);
}

TEST(Geant, EveryPopReachableFromJanet) {
  const GeantNetwork net = make_geant();
  const auto spf = routing::dijkstra(net.graph, net.janet);
  for (NodeId pop : net.pops) EXPECT_TRUE(spf.reachable(pop));
}

TEST(Geant, TaskDataMatchesTableOneScale) {
  const auto& names = janet_destinations();
  const auto& rates = janet_od_rates();
  ASSERT_EQ(names.size(), 20u);
  ASSERT_EQ(rates.size(), 20u);
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  EXPECT_NEAR(total, 57933.0, 1e-9);  // paper §V-C footnote 2
  EXPECT_GT(rates.front(), 30000.0);  // JANET-NL
  EXPECT_DOUBLE_EQ(rates.back(), 20.0);  // JANET-LU
  EXPECT_EQ(names.front(), "NL");
  EXPECT_EQ(names.back(), "LU");
  // Sizes are sorted in descending Table I order.
  for (std::size_t k = 1; k < rates.size(); ++k)
    EXPECT_LE(rates[k], rates[k - 1]);
}

TEST(Geant, DestinationsExistInTopology) {
  const GeantNetwork net = make_geant();
  for (const auto& name : janet_destinations())
    EXPECT_TRUE(net.graph.find_node(name).has_value()) << name;
}

TEST(Geant, TableOnePathsMatchMonitoredLinks) {
  // The IGP weights must route the small OD pairs over the dedicated
  // links the paper's Table I reports: PL via SE, IL via IT, LU and BE
  // via FR, SK via CZ.
  const GeantNetwork net = make_geant();
  const auto spf = routing::dijkstra(net.graph, net.janet);
  auto last_link = [&](const char* dst) {
    const auto path =
        routing::extract_path(spf, net.graph, *net.graph.find_node(dst));
    return net.graph.link_name(path.back());
  };
  EXPECT_EQ(last_link("PL"), "SE->PL");
  EXPECT_EQ(last_link("IL"), "IT->IL");
  EXPECT_EQ(last_link("LU"), "FR->LU");
  EXPECT_EQ(last_link("BE"), "FR->BE");
  EXPECT_EQ(last_link("SK"), "CZ->SK");
  EXPECT_EQ(last_link("NL"), "UK->NL");
  EXPECT_EQ(last_link("NY"), "UK->NY");
  EXPECT_EQ(last_link("PT"), "UK->PT");
}

TEST(Geant, CapacitiesAreSonetRates) {
  const GeantNetwork net = make_geant();
  for (const Link& l : net.graph.links()) {
    const double c = l.capacity_bps;
    EXPECT_TRUE(c == 155.52e6 || c == 622.08e6 || c == 2488.32e6)
        << net.graph.link_name(l.id) << " capacity " << c;
  }
}

}  // namespace
}  // namespace netmon::topo
