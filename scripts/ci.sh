#!/usr/bin/env bash
# CI entry point: tier-1 verify (full build + ctest) plus three sanitizer
# legs — a ThreadSanitizer build of the parallel execution subsystem
# (the correctness gate for src/runtime/ and everything layered on it),
# an AddressSanitizer build of the flat-CSR linalg kernels and the
# zero-allocation solver hot path (the gate for src/linalg/ span/pointer
# arithmetic and workspace reuse), and a UBSan build of the fused batch
# kernels and solver (the gate for the branch-free select arithmetic in
# src/core/utility_kernels.hpp) — and finally the perf gate comparing
# the solver_perf kernel timings against the committed BENCH_solver.json.
#
# Usage: scripts/ci.sh [build-dir-prefix]
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: build + full test suite =="
cmake -B "${PREFIX}" -S .
cmake --build "${PREFIX}" -j "${JOBS}"
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}"

echo "== tier-2: TSan gate on the runtime + serving + obs subsystems =="
TSAN_TESTS="runtime_thread_pool_test runtime_parallel_test \
core_batch_solver_test sampling_simulation_test serve_service_test \
serve_stress_test obs_ring_test obs_metrics_test serve_obs_test \
control_tracker_test control_policy_test control_actuator_test \
control_loop_test opt_parallel_solve_test core_approx_test \
core_scale_smoke_test ingest_spsc_ring_test ingest_pipeline_test"
cmake -B "${PREFIX}-tsan" -S . -DNETMON_SANITIZE=thread
# shellcheck disable=SC2086
cmake --build "${PREFIX}-tsan" -j "${JOBS}" --target ${TSAN_TESTS}
ctest --test-dir "${PREFIX}-tsan" --output-on-failure -j "${JOBS}" \
  -R 'runtime_thread_pool_test|runtime_parallel_test|core_batch_solver_test|sampling_simulation_test|serve_service_test|serve_stress_test|obs_ring_test|obs_metrics_test|serve_obs_test|control_tracker_test|control_policy_test|control_actuator_test|control_loop_test|opt_parallel_solve_test|core_approx_test|core_scale_smoke_test|ingest_spsc_ring_test|ingest_pipeline_test'

echo "== tier-2: ASan gate on the linalg kernels + solver hot path =="
ASAN_TESTS="linalg_sparse_test opt_objective_test opt_gradient_projection_test \
opt_zero_alloc_test core_solver_test estimate_flow_inversion_test"
cmake -B "${PREFIX}-asan" -S . -DNETMON_SANITIZE=address
# shellcheck disable=SC2086
cmake --build "${PREFIX}-asan" -j "${JOBS}" --target ${ASAN_TESTS}
ctest --test-dir "${PREFIX}-asan" --output-on-failure -j "${JOBS}" \
  -R 'linalg_sparse_test|opt_objective_test|opt_gradient_projection_test|opt_zero_alloc_test|core_solver_test|estimate_flow_inversion_test'

echo "== tier-2: UBSan gate on the fused batch kernels + solver =="
UBSAN_TESTS="core_utility_test opt_fused_eval_test opt_objective_test \
opt_gradient_projection_test core_solver_test"
cmake -B "${PREFIX}-ubsan" -S . -DNETMON_SANITIZE=undefined
# shellcheck disable=SC2086
cmake --build "${PREFIX}-ubsan" -j "${JOBS}" --target ${UBSAN_TESTS}
ctest --test-dir "${PREFIX}-ubsan" --output-on-failure -j "${JOBS}" \
  -R 'core_utility_test|opt_fused_eval_test|opt_objective_test|opt_gradient_projection_test|core_solver_test'

echo "== obs gate: traced run artifacts (trace/metrics/flight/control) =="
cmake --build "${PREFIX}" -j "${JOBS}" --target operations_center \
  continuous_operation ingest_replay
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "${OBS_DIR}"' EXIT
NETMON_OBS_DIR="${OBS_DIR}" "${PREFIX}/examples/operations_center" >/dev/null
NETMON_OBS_DIR="${OBS_DIR}" "${PREFIX}/examples/continuous_operation" \
  >/dev/null
NETMON_OBS_DIR="${OBS_DIR}" "${PREFIX}/examples/ingest_replay" >/dev/null
scripts/check_obs.sh "${OBS_DIR}"

echo "== perf gate: solver_perf + scaling_perf + ingest_perf vs baselines =="
cmake --build "${PREFIX}" -j "${JOBS}" --target solver_perf scaling_perf \
  ingest_perf
scripts/perf_gate.sh "${PREFIX}"

echo "CI OK"
