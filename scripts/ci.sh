#!/usr/bin/env bash
# CI entry point: tier-1 verify (full build + ctest) plus a
# ThreadSanitizer build of the parallel execution subsystem — TSan is the
# correctness gate for src/runtime/ and everything layered on it.
#
# Usage: scripts/ci.sh [build-dir-prefix]
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: build + full test suite =="
cmake -B "${PREFIX}" -S .
cmake --build "${PREFIX}" -j "${JOBS}"
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}"

echo "== tier-2: TSan gate on the runtime subsystem =="
TSAN_TESTS="runtime_thread_pool_test runtime_parallel_test \
core_batch_solver_test sampling_simulation_test"
cmake -B "${PREFIX}-tsan" -S . -DNETMON_SANITIZE=thread
# shellcheck disable=SC2086
cmake --build "${PREFIX}-tsan" -j "${JOBS}" --target ${TSAN_TESTS}
ctest --test-dir "${PREFIX}-tsan" --output-on-failure -j "${JOBS}" \
  -R 'runtime_thread_pool_test|runtime_parallel_test|core_batch_solver_test|sampling_simulation_test'

echo "CI OK"
