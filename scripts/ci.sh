#!/usr/bin/env bash
# CI entry point: tier-1 verify (full build + ctest) plus three sanitizer
# legs — a ThreadSanitizer build of the parallel execution subsystem
# (the correctness gate for src/runtime/ and everything layered on it,
# now including the TCP transport and the multi-tenant RCU registry /
# solve cache), an AddressSanitizer build of the flat-CSR linalg kernels,
# the zero-allocation solver hot path, and the wire codec + TCP frame
# reassembly fuzz suites (the gate for src/linalg/ span/pointer
# arithmetic, workspace reuse, and byte-level decode), and a UBSan
# build of the fused batch
# kernels and solver — including the explicit AVX2/AVX-512 intrinsic TUs
# via opt_simd_dispatch_test (the gate for the branch-free select
# arithmetic in src/core/utility_kernels.hpp and the intrinsic kernels).
# A dedicated -march=x86-64-v3 leg then rebuilds the tree with the wider
# baseline ISA and runs the SIMD suites at EVERY dispatch level
# (NETMON_SIMD=scalar|avx2|avx512|auto), so cross-level bit-identity is
# checked even when the compiler may auto-vectorize the scalar paths.
# Finally the perf gate compares the solver_perf kernel timings against
# the committed BENCH_solver.json.
#
# Usage: scripts/ci.sh [build-dir-prefix]
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: build + full test suite =="
cmake -B "${PREFIX}" -S .
cmake --build "${PREFIX}" -j "${JOBS}"
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}"

echo "== tier-2: TSan gate on the runtime + serving + tenant subsystems =="
TSAN_TESTS="runtime_thread_pool_test runtime_parallel_test \
core_batch_solver_test sampling_simulation_test serve_service_test \
serve_stress_test obs_ring_test obs_metrics_test serve_obs_test \
control_tracker_test control_policy_test control_actuator_test \
control_loop_test opt_parallel_solve_test core_approx_test \
core_scale_smoke_test ingest_spsc_ring_test ingest_pipeline_test \
serve_tcp_test tenant_registry_test tenant_cache_test \
tenant_service_test"
cmake -B "${PREFIX}-tsan" -S . -DNETMON_SANITIZE=thread
# shellcheck disable=SC2086
cmake --build "${PREFIX}-tsan" -j "${JOBS}" --target ${TSAN_TESTS}
ctest --test-dir "${PREFIX}-tsan" --output-on-failure -j "${JOBS}" \
  -R 'runtime_thread_pool_test|runtime_parallel_test|core_batch_solver_test|sampling_simulation_test|serve_service_test|serve_stress_test|obs_ring_test|obs_metrics_test|serve_obs_test|control_tracker_test|control_policy_test|control_actuator_test|control_loop_test|opt_parallel_solve_test|core_approx_test|core_scale_smoke_test|ingest_spsc_ring_test|ingest_pipeline_test|serve_tcp_test|tenant_registry_test|tenant_cache_test|tenant_service_test'

echo "== tier-2: ASan gate on linalg kernels + solver + wire decoding =="
ASAN_TESTS="linalg_sparse_test opt_objective_test opt_gradient_projection_test \
opt_zero_alloc_test core_solver_test estimate_flow_inversion_test \
serve_wire_test serve_tcp_fuzz_test"
cmake -B "${PREFIX}-asan" -S . -DNETMON_SANITIZE=address
# shellcheck disable=SC2086
cmake --build "${PREFIX}-asan" -j "${JOBS}" --target ${ASAN_TESTS}
ctest --test-dir "${PREFIX}-asan" --output-on-failure -j "${JOBS}" \
  -R 'linalg_sparse_test|opt_objective_test|opt_gradient_projection_test|opt_zero_alloc_test|core_solver_test|estimate_flow_inversion_test|serve_wire_test|serve_tcp_fuzz_test'

echo "== tier-2: UBSan gate on the fused batch kernels + solver =="
UBSAN_TESTS="core_utility_test opt_fused_eval_test opt_objective_test \
opt_gradient_projection_test core_solver_test opt_simd_dispatch_test"
cmake -B "${PREFIX}-ubsan" -S . -DNETMON_SANITIZE=undefined
# shellcheck disable=SC2086
cmake --build "${PREFIX}-ubsan" -j "${JOBS}" --target ${UBSAN_TESTS}
ctest --test-dir "${PREFIX}-ubsan" --output-on-failure -j "${JOBS}" \
  -R 'core_utility_test|opt_fused_eval_test|opt_objective_test|opt_gradient_projection_test|core_solver_test|opt_simd_dispatch_test'

echo "== tier-2: x86-64-v3 leg — SIMD suites at every dispatch level =="
# The wider baseline ISA lets the compiler auto-vectorize every TU; the
# explicit kernels must still be bit-identical to the (-fno-tree-
# vectorize pinned) scalar reference at every runtime level. Unsupported
# levels clamp to the hardware maximum, so the env sweep is safe on
# AVX2-only machines.
SIMD_TESTS="opt_simd_dispatch_test opt_fused_eval_test core_utility_test \
opt_objective_test"
cmake -B "${PREFIX}-v3" -S . -DCMAKE_CXX_FLAGS="-march=x86-64-v3"
# shellcheck disable=SC2086
cmake --build "${PREFIX}-v3" -j "${JOBS}" --target ${SIMD_TESTS}
for level in scalar avx2 avx512 auto; do
  echo "-- NETMON_SIMD=${level} --"
  NETMON_SIMD="${level}" ctest --test-dir "${PREFIX}-v3" \
    --output-on-failure -j "${JOBS}" \
    -R 'opt_simd_dispatch_test|opt_fused_eval_test|core_utility_test|opt_objective_test'
done

echo "== obs gate: traced run artifacts (trace/metrics/flight/control) =="
cmake --build "${PREFIX}" -j "${JOBS}" --target operations_center \
  continuous_operation ingest_replay
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "${OBS_DIR}"' EXIT
NETMON_OBS_DIR="${OBS_DIR}" "${PREFIX}/examples/operations_center" >/dev/null
NETMON_OBS_DIR="${OBS_DIR}" "${PREFIX}/examples/continuous_operation" \
  >/dev/null
NETMON_OBS_DIR="${OBS_DIR}" "${PREFIX}/examples/ingest_replay" >/dev/null
scripts/check_obs.sh "${OBS_DIR}"

echo "== perf gate: solver + scaling + ingest + serve perf vs baselines =="
cmake --build "${PREFIX}" -j "${JOBS}" --target solver_perf scaling_perf \
  ingest_perf serve_perf
scripts/perf_gate.sh "${PREFIX}"

echo "CI OK"
