#!/usr/bin/env bash
# Perf gate: reruns the solver_perf kernel sections (fixed seeds, min-
# over-blocks timing) and compares the tracked metrics against the
# committed baseline BENCH_solver.json. Fails on a >20% regression —
# slower for the ns-scale kernel timings, lower for the throughput and
# speedup metrics — on any scalar/SIMD bit-identity mismatch at any
# dispatch level, on simd_speedup below its hard 1.3x floor (when a
# vector level is available; 4.0x is the warn-only target), and on a
# fast-math relative error above 1e-12.
# A second section reruns scaling_perf (the 100k+-link instance) against
# BENCH_scaling.json: the certified approximation gap is a hard <= 1%
# cap, the 8-thread intra-solve speedup has a >= 2x floor on machines
# with >= 8 hardware threads, and the scale timings get a wider (50%)
# regression band — second-scale wall times on a shared machine are
# noisier than the ns-scale kernel minima.
# A third section reruns ingest_perf against BENCH_ingest.json: the
# lossless (kBlock) pipeline must drop exactly nothing and the kDrop
# accounting must close on every run; the >= 1M pkts/sec throughput
# floor applies on machines with >= 4 hardware threads; and both
# throughput rows get the same 50% band as the scale timings.
# A fourth section reruns serve_perf against BENCH_serve.json: the
# cache-hit replay must be bit-identical and must not move the solver
# invocation counter (both hard correctness bits measured per run), the
# exact-hit speedup has a >= 5x floor, the warm-start iteration savings
# from the nearest cached neighbour have a >= 10% floor, and the
# loopback/TCP requests-per-second rows get the wide 50% band.
#
# Usage: scripts/perf_gate.sh [build-dir]
#        (expects solver_perf + scaling_perf + ingest_perf + serve_perf
#        built)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
BASELINE="BENCH_solver.json"
SCALING_BASELINE="BENCH_scaling.json"
INGEST_BASELINE="BENCH_ingest.json"
SERVE_BASELINE="BENCH_serve.json"
BIN="${BUILD}/bench/solver_perf"
SCALING_BIN="${BUILD}/bench/scaling_perf"
INGEST_BIN="${BUILD}/bench/ingest_perf"
SERVE_BIN="${BUILD}/bench/serve_perf"

[ -f "${BASELINE}" ] || { echo "perf_gate: missing ${BASELINE}"; exit 1; }
[ -x "${BIN}" ] || { echo "perf_gate: ${BIN} not built"; exit 1; }

TMP="$(mktemp)"
SCALING_TMP="$(mktemp)"
INGEST_TMP="$(mktemp)"
SERVE_TMP="$(mktemp)"
trap 'rm -f "${TMP}" "${SCALING_TMP}" "${INGEST_TMP}" "${SERVE_TMP}"' EXIT
NETMON_PERF_KERNELS_ONLY=1 NETMON_BENCH_JSON="${TMP}" "${BIN}" >/dev/null

# The bench JSON is one flat object per line with "key":number metrics,
# so plain grep extraction works without a JSON parser.
extract() { # file key -> first numeric value for the key
  grep -o "\"$2\":[0-9.eE+-]*" "$1" | head -1 | cut -d: -f2
}

TOL=1.20 # 20% regression budget
fail=0

# check <key> <lower|higher> — lower: new must be <= old * TOL;
# higher: new must be >= old / TOL.
check() {
  local key="$1" dir="$2" old new
  old="$(extract "${BASELINE}" "${key}")"
  new="$(extract "${TMP}" "${key}")"
  if [ -z "${old}" ] || [ -z "${new}" ]; then
    echo "perf_gate: FAIL ${key}: missing (baseline='${old}' new='${new}')"
    fail=1
    return
  fi
  if awk -v o="${old}" -v n="${new}" -v t="${TOL}" -v d="${dir}" \
      'BEGIN { ok = (d == "lower") ? (n <= o * t) : (n >= o / t);
               exit ok ? 0 : 1 }'; then
    printf 'perf_gate: ok   %-22s baseline=%-12s new=%s\n' \
      "${key}" "${old}" "${new}"
  else
    printf 'perf_gate: FAIL %-22s baseline=%-12s new=%s (>20%% regression)\n' \
      "${key}" "${old}" "${new}"
    fail=1
  fi
}

# Kernel latencies: lower is better.
check spmv_ns lower
check spmv_t_ns lower
check value_ns lower
check gradient_ns lower
check eval_fused_ns lower
check grad_hess_ns lower
check ls_probe_ns lower

# Solver throughput: higher is better.
check iters_per_sec_fused higher

# The fusion win is gated on its absolute acceptance floor (>= 2x)
# rather than the baseline ratio: the separate-path denominator is the
# slow branchy pre-fusion path, whose timing is too noisy for a 20%
# relative band, while the fused numerator is already gated above.
speedup="$(extract "${TMP}" eval_path_speedup)"
if awk -v s="${speedup:-0}" 'BEGIN { exit (s >= 2.0) ? 0 : 1 }'; then
  echo "perf_gate: ok   eval_path_speedup      ${speedup} (floor 2.0)"
else
  echo "perf_gate: FAIL eval_path_speedup      ${speedup} (< 2.0 floor)"
  fail=1
fi

# Observability tax: the warm fused GEANT solve with trace + counters +
# histogram attached must stay within an absolute 3% of the
# uninstrumented throughput. Absolute, like the speedup floor: the
# overhead is a ratio of two same-run timings, so it needs no baseline.
overhead="$(extract "${TMP}" obs_overhead_pct)"
if awk -v o="${overhead:-100}" 'BEGIN { exit (o <= 3.0) ? 0 : 1 }'; then
  echo "perf_gate: ok   obs_overhead_pct       ${overhead} (cap 3.0)"
else
  echo "perf_gate: FAIL obs_overhead_pct       ${overhead} (> 3.0 cap)"
  fail=1
fi

# Scalar/SIMD dispatch must stay bit-identical — a correctness bit, not
# a perf number: any mismatch at any level in any sweep row fails
# outright (the bench aggregates every row into the headline metric).
identical="$(extract "${TMP}" bit_identical)"
if [ "${identical}" != "1" ]; then
  echo "perf_gate: FAIL bit_identical: scalar vs SIMD kernels diverged"
  fail=1
else
  echo "perf_gate: ok   bit_identical"
fi

# Explicit-SIMD throughput on the headline 4096-term fused path
# (regime-partitioned SRE, the solver-shaped layout). Hard floor 1.3x —
# a vectorized kernel slower than that means the dispatch is mis-wired —
# and a 4.0x target that only warns, since the achievable ratio is
# hardware-dependent. Both gated on a vector level actually being
# available in this build + on this CPU (simd_level >= 1).
simd_level="$(extract "${TMP}" simd_level)"
simd_speedup="$(extract "${TMP}" simd_speedup)"
if awk -v l="${simd_level:-0}" 'BEGIN { exit (l >= 1) ? 0 : 1 }'; then
  if awk -v s="${simd_speedup:-0}" 'BEGIN { exit (s >= 1.3) ? 0 : 1 }'; then
    if awk -v s="${simd_speedup:-0}" 'BEGIN { exit (s >= 4.0) ? 0 : 1 }'; then
      echo "perf_gate: ok   simd_speedup           ${simd_speedup} (floor 1.3, target 4.0)"
    else
      echo "perf_gate: warn simd_speedup           ${simd_speedup} (>= 1.3 floor, < 4.0 target)"
    fi
  else
    echo "perf_gate: FAIL simd_speedup           ${simd_speedup} (< 1.3 floor, level=${simd_level})"
    fail=1
  fi
else
  echo "perf_gate: skip simd_speedup           (simd_level=${simd_level:-?}: no vector level)"
fi

# Fast-math leg: the opt-in reciprocal+Newton kernels are NOT bit-exact;
# their contract is the per-run measured relative error against the
# exact scalar reference, capped at 1e-12. The speedup is recorded for
# the trajectory but not gated (it shares the exact leg's floor).
fastmath_rel_err="$(extract "${TMP}" fastmath_rel_err)"
fastmath_speedup="$(extract "${TMP}" fastmath_speedup)"
if awk -v l="${simd_level:-0}" 'BEGIN { exit (l >= 1) ? 0 : 1 }'; then
  if awk -v e="${fastmath_rel_err:-1}" 'BEGIN { exit (e <= 1e-12) ? 0 : 1 }'; then
    echo "perf_gate: ok   fastmath_rel_err       ${fastmath_rel_err} (cap 1e-12, speedup=${fastmath_speedup})"
  else
    echo "perf_gate: FAIL fastmath_rel_err       ${fastmath_rel_err} (> 1e-12 cap)"
    fail=1
  fi
else
  echo "perf_gate: skip fastmath_rel_err       (no vector level)"
fi

# ---- scaling section: the 100k+-link instance -------------------------

[ -f "${SCALING_BASELINE}" ] || {
  echo "perf_gate: missing ${SCALING_BASELINE}"; exit 1; }
[ -x "${SCALING_BIN}" ] || {
  echo "perf_gate: ${SCALING_BIN} not built"; exit 1; }
NETMON_BENCH_JSON="${SCALING_TMP}" "${SCALING_BIN}" >/dev/null || {
  echo "perf_gate: FAIL scaling_perf exited nonzero (gap or bit-identity)"
  fail=1
}

# Certified approximation gap: a hard absolute cap at the tier's 1%
# target — accuracy is measured per run, never trusted from the baseline.
gap_rel="$(extract "${SCALING_TMP}" gap_rel)"
if awk -v g="${gap_rel:-1}" 'BEGIN { exit (g <= 0.01) ? 0 : 1 }'; then
  echo "perf_gate: ok   gap_rel                ${gap_rel} (cap 0.01)"
else
  echo "perf_gate: FAIL gap_rel                ${gap_rel} (> 0.01 cap)"
  fail=1
fi

# The parallel exact solve must stay bit-identical to serial at scale.
solve_identical="$(extract "${SCALING_TMP}" solve_bit_identical)"
if [ "${solve_identical}" != "1" ]; then
  echo "perf_gate: FAIL solve_bit_identical: 1t vs 8t solves diverged"
  fail=1
else
  echo "perf_gate: ok   solve_bit_identical"
fi

# Intra-solve speedup floor: >= 2x at 8 threads — only meaningful when
# the machine actually has 8 hardware threads to run them on.
hw="$(extract "${SCALING_TMP}" hw_threads)"
speedup8="$(extract "${SCALING_TMP}" intra_speedup_8t)"
if awk -v h="${hw:-0}" 'BEGIN { exit (h >= 8) ? 0 : 1 }'; then
  if awk -v s="${speedup8:-0}" 'BEGIN { exit (s >= 2.0) ? 0 : 1 }'; then
    echo "perf_gate: ok   intra_speedup_8t       ${speedup8} (floor 2.0)"
  else
    echo "perf_gate: FAIL intra_speedup_8t       ${speedup8} (< 2.0 floor)"
    fail=1
  fi
else
  echo "perf_gate: skip intra_speedup_8t       ${speedup8} (hw_threads=${hw} < 8)"
fi

# Scale wall times: wider 50% regression band (seconds-scale, noisier).
TOL=1.50
check_scaling() { # key — scale timing, lower is better, vs scaling baseline
  local key="$1" old new
  old="$(extract "${SCALING_BASELINE}" "${key}")"
  new="$(extract "${SCALING_TMP}" "${key}")"
  if [ -z "${old}" ] || [ -z "${new}" ]; then
    echo "perf_gate: FAIL ${key}: missing (baseline='${old}' new='${new}')"
    fail=1
    return
  fi
  if awk -v o="${old}" -v n="${new}" -v t="${TOL}" \
      'BEGIN { exit (n <= o * t) ? 0 : 1 }'; then
    printf 'perf_gate: ok   %-22s baseline=%-12s new=%s\n' \
      "${key}" "${old}" "${new}"
  else
    printf 'perf_gate: FAIL %-22s baseline=%-12s new=%s (>50%% regression)\n' \
      "${key}" "${old}" "${new}"
    fail=1
  fi
}
check_scaling gen_ms
check_scaling build_ms
check_scaling approx_ms
check_scaling solve1_ms

# ---- ingest section: packet pipeline throughput -----------------------

[ -f "${INGEST_BASELINE}" ] || {
  echo "perf_gate: missing ${INGEST_BASELINE}"; exit 1; }
[ -x "${INGEST_BIN}" ] || {
  echo "perf_gate: ${INGEST_BIN} not built"; exit 1; }
NETMON_BENCH_JSON="${INGEST_TMP}" "${INGEST_BIN}" >/dev/null || {
  echo "perf_gate: FAIL ingest_perf exited nonzero (drop accounting)"
  fail=1
}

# The lossless (kBlock) pipeline must deliver every offered packet — a
# correctness bit measured per run, never trusted from the baseline.
drop_rate="$(extract "${INGEST_TMP}" ingest_drop_rate)"
if awk -v d="${drop_rate:-1}" 'BEGIN { exit (d == 0) ? 0 : 1 }'; then
  echo "perf_gate: ok   ingest_drop_rate       0 (lossless)"
else
  echo "perf_gate: FAIL ingest_drop_rate       ${drop_rate} (kBlock must be 0)"
  fail=1
fi

# Under kDrop with a tiny ring, offered == consumed + dropped must hold.
closed="$(extract "${INGEST_TMP}" drop_accounting_closed)"
if [ "${closed}" != "1" ]; then
  echo "perf_gate: FAIL drop_accounting_closed: packets went missing"
  fail=1
else
  echo "perf_gate: ok   drop_accounting_closed"
fi

# Throughput floor: >= 1M pkts/sec through the full pipeline — only
# demanded when the machine has >= 4 hardware threads to run the
# 2 producers + consumers + driver on.
ingest_hw="$(extract "${INGEST_TMP}" hw_threads)"
pkts_per_sec="$(extract "${INGEST_TMP}" ingest_pkts_per_sec)"
if awk -v h="${ingest_hw:-0}" 'BEGIN { exit (h >= 4) ? 0 : 1 }'; then
  if awk -v p="${pkts_per_sec:-0}" 'BEGIN { exit (p >= 1e6) ? 0 : 1 }'; then
    echo "perf_gate: ok   ingest_pkts_per_sec    ${pkts_per_sec} (floor 1e6)"
  else
    echo "perf_gate: FAIL ingest_pkts_per_sec    ${pkts_per_sec} (< 1e6 floor)"
    fail=1
  fi
else
  echo "perf_gate: skip ingest_pkts_per_sec floor (hw_threads=${ingest_hw} < 4)"
fi

# Regression band vs the committed baseline: higher is better, with the
# wide 50% band — seconds-scale pipeline runs share the scaling section's
# noise profile, not the kernel minima's.
check_ingest() { # key — throughput metric, higher is better
  local key="$1" old new
  old="$(extract "${INGEST_BASELINE}" "${key}")"
  new="$(extract "${INGEST_TMP}" "${key}")"
  if [ -z "${old}" ] || [ -z "${new}" ]; then
    echo "perf_gate: FAIL ${key}: missing (baseline='${old}' new='${new}')"
    fail=1
    return
  fi
  if awk -v o="${old}" -v n="${new}" -v t="${TOL}" \
      'BEGIN { exit (n >= o / t) ? 0 : 1 }'; then
    printf 'perf_gate: ok   %-22s baseline=%-12s new=%s\n' \
      "${key}" "${old}" "${new}"
  else
    printf 'perf_gate: FAIL %-22s baseline=%-12s new=%s (>50%% regression)\n' \
      "${key}" "${old}" "${new}"
    fail=1
  fi
}
check_ingest ingest_pkts_per_sec
check_ingest ring_records_per_sec

# ---- serve section: transport throughput + the tenant solve cache ----

[ -f "${SERVE_BASELINE}" ] || {
  echo "perf_gate: missing ${SERVE_BASELINE}"; exit 1; }
[ -x "${SERVE_BIN}" ] || {
  echo "perf_gate: ${SERVE_BIN} not built"; exit 1; }
NETMON_BENCH_JSON="${SERVE_TMP}" "${SERVE_BIN}" >/dev/null

# Exact hits must replay the solved answer bit-identically... —
# correctness bits measured per run, never trusted from the baseline.
hit_identical="$(extract "${SERVE_TMP}" hit_bit_identical)"
if [ "${hit_identical}" != "1" ]; then
  echo "perf_gate: FAIL hit_bit_identical: cached replay diverged"
  fail=1
else
  echo "perf_gate: ok   hit_bit_identical"
fi
# ...and without invoking the solver (the invocation counter is the
# acceptance probe: it must not move while hits are served).
no_solve="$(extract "${SERVE_TMP}" hits_no_solve)"
if [ "${no_solve}" != "1" ]; then
  echo "perf_gate: FAIL hits_no_solve: cache hits invoked the solver"
  fail=1
else
  echo "perf_gate: ok   hits_no_solve"
fi

# Replaying from the cache must beat solving by a wide margin: a hit is
# a sharded-map lookup + response copy vs. a full GEANT solve. The 5x
# floor is absolute (measured per run); typical is two orders.
hit_speedup="$(extract "${SERVE_TMP}" cache_hit_speedup)"
if awk -v s="${hit_speedup:-0}" 'BEGIN { exit (s >= 5.0) ? 0 : 1 }'; then
  echo "perf_gate: ok   cache_hit_speedup      ${hit_speedup} (floor 5.0)"
else
  echo "perf_gate: FAIL cache_hit_speedup      ${hit_speedup} (< 5.0 floor)"
  fail=1
fi

# Warm-starting from the nearest cached neighbour must save iterations
# (the donor must actually have been used). >= 10% floor; typical ~40%.
donor_used="$(extract "${SERVE_TMP}" warm_donor_used)"
savings="$(extract "${SERVE_TMP}" warm_iter_savings_pct)"
if [ "${donor_used}" != "1" ]; then
  echo "perf_gate: FAIL warm_donor_used: nearest() donated nothing"
  fail=1
elif awk -v s="${savings:-0}" 'BEGIN { exit (s >= 10.0) ? 0 : 1 }'; then
  echo "perf_gate: ok   warm_iter_savings_pct  ${savings} (floor 10.0)"
else
  echo "perf_gate: FAIL warm_iter_savings_pct  ${savings} (< 10.0 floor)"
  fail=1
fi

# Throughput rows vs. the committed baseline: higher is better, wide
# 50% band (wall-clock request floods share the ingest noise profile).
check_serve() { # key — throughput metric, higher is better
  local key="$1" old new
  old="$(extract "${SERVE_BASELINE}" "${key}")"
  new="$(extract "${SERVE_TMP}" "${key}")"
  if [ -z "${old}" ] || [ -z "${new}" ]; then
    echo "perf_gate: FAIL ${key}: missing (baseline='${old}' new='${new}')"
    fail=1
    return
  fi
  if awk -v o="${old}" -v n="${new}" -v t="${TOL}" \
      'BEGIN { exit (n >= o / t) ? 0 : 1 }'; then
    printf 'perf_gate: ok   %-22s baseline=%-12s new=%s\n' \
      "${key}" "${old}" "${new}"
  else
    printf 'perf_gate: FAIL %-22s baseline=%-12s new=%s (>50%% regression)\n' \
      "${key}" "${old}" "${new}"
    fail=1
  fi
}
check_serve loopback_reqs_per_sec
check_serve tcp_reqs_per_sec

[ "${fail}" -eq 0 ] && echo "perf_gate: PASS" || echo "perf_gate: FAIL"
exit "${fail}"
