#!/usr/bin/env bash
# Perf gate: reruns the solver_perf kernel sections (fixed seeds, min-
# over-blocks timing) and compares the tracked metrics against the
# committed baseline BENCH_solver.json. Fails on a >20% regression —
# slower for the ns-scale kernel timings, lower for the throughput and
# speedup metrics — and on any scalar/SIMD bit-identity mismatch.
#
# Usage: scripts/perf_gate.sh [build-dir]   (expects solver_perf built)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
BASELINE="BENCH_solver.json"
BIN="${BUILD}/bench/solver_perf"

[ -f "${BASELINE}" ] || { echo "perf_gate: missing ${BASELINE}"; exit 1; }
[ -x "${BIN}" ] || { echo "perf_gate: ${BIN} not built"; exit 1; }

TMP="$(mktemp)"
trap 'rm -f "${TMP}"' EXIT
NETMON_PERF_KERNELS_ONLY=1 NETMON_BENCH_JSON="${TMP}" "${BIN}" >/dev/null

# The bench JSON is one flat object per line with "key":number metrics,
# so plain grep extraction works without a JSON parser.
extract() { # file key -> first numeric value for the key
  grep -o "\"$2\":[0-9.eE+-]*" "$1" | head -1 | cut -d: -f2
}

TOL=1.20 # 20% regression budget
fail=0

# check <key> <lower|higher> — lower: new must be <= old * TOL;
# higher: new must be >= old / TOL.
check() {
  local key="$1" dir="$2" old new
  old="$(extract "${BASELINE}" "${key}")"
  new="$(extract "${TMP}" "${key}")"
  if [ -z "${old}" ] || [ -z "${new}" ]; then
    echo "perf_gate: FAIL ${key}: missing (baseline='${old}' new='${new}')"
    fail=1
    return
  fi
  if awk -v o="${old}" -v n="${new}" -v t="${TOL}" -v d="${dir}" \
      'BEGIN { ok = (d == "lower") ? (n <= o * t) : (n >= o / t);
               exit ok ? 0 : 1 }'; then
    printf 'perf_gate: ok   %-22s baseline=%-12s new=%s\n' \
      "${key}" "${old}" "${new}"
  else
    printf 'perf_gate: FAIL %-22s baseline=%-12s new=%s (>20%% regression)\n' \
      "${key}" "${old}" "${new}"
    fail=1
  fi
}

# Kernel latencies: lower is better.
check spmv_ns lower
check spmv_t_ns lower
check value_ns lower
check gradient_ns lower
check eval_fused_ns lower
check grad_hess_ns lower
check ls_probe_ns lower

# Solver throughput: higher is better.
check iters_per_sec_fused higher

# The fusion win is gated on its absolute acceptance floor (>= 2x)
# rather than the baseline ratio: the separate-path denominator is the
# slow branchy pre-fusion path, whose timing is too noisy for a 20%
# relative band, while the fused numerator is already gated above.
speedup="$(extract "${TMP}" eval_path_speedup)"
if awk -v s="${speedup:-0}" 'BEGIN { exit (s >= 2.0) ? 0 : 1 }'; then
  echo "perf_gate: ok   eval_path_speedup      ${speedup} (floor 2.0)"
else
  echo "perf_gate: FAIL eval_path_speedup      ${speedup} (< 2.0 floor)"
  fail=1
fi

# Observability tax: the warm fused GEANT solve with trace + counters +
# histogram attached must stay within an absolute 3% of the
# uninstrumented throughput. Absolute, like the speedup floor: the
# overhead is a ratio of two same-run timings, so it needs no baseline.
overhead="$(extract "${TMP}" obs_overhead_pct)"
if awk -v o="${overhead:-100}" 'BEGIN { exit (o <= 3.0) ? 0 : 1 }'; then
  echo "perf_gate: ok   obs_overhead_pct       ${overhead} (cap 3.0)"
else
  echo "perf_gate: FAIL obs_overhead_pct       ${overhead} (> 3.0 cap)"
  fail=1
fi

# Scalar/SIMD dispatch must stay bit-identical — a correctness bit, not
# a perf number: any mismatch fails outright.
identical="$(extract "${TMP}" bit_identical)"
if [ "${identical}" != "1" ]; then
  echo "perf_gate: FAIL bit_identical: scalar vs SIMD kernels diverged"
  fail=1
else
  echo "perf_gate: ok   bit_identical"
fi

[ "${fail}" -eq 0 ] && echo "perf_gate: PASS" || echo "perf_gate: FAIL"
exit "${fail}"
