#!/usr/bin/env bash
# Validates the observability artifacts a traced run leaves behind in
# $1 (the NETMON_OBS_DIR handed to examples/operations_center):
#   trace.jsonl   — per-iteration solver trace, schema-complete lines,
#                   one final summary record per solve with KKT fields,
#   metrics.prom  — Prometheus 0.0.4 text: serve + solver families plus
#                   the multi-tenant netmon_cache_* / netmon_tenant_*
#                   families with plausible accounting, cumulative
#                   buckets ending at +Inf == _count,
#   flight.jsonl  — flight-recorder events covering the request
#                   lifecycle (admit through solve_done, plus cache,
#                   quota, and tenant-swap events), timestamps
#                   non-decreasing.
# When the continuous-operation demo also ran into the same directory,
# its control-loop artifacts are validated too:
#   control_flight.jsonl  — control events (track/resolve/reconfig),
#                           at least one reconfiguration, per-bin
#                           timestamps non-decreasing,
#   control_metrics.prom  — netmon_control_* counter and histogram
#                           families with the same bucket invariants.
#
# Usage: scripts/check_obs.sh <obs-dir>
set -euo pipefail

DIR="${1:?usage: scripts/check_obs.sh <obs-dir>}"
fail=0

ok()   { printf 'check_obs: ok   %s\n' "$1"; }
bad()  { printf 'check_obs: FAIL %s\n' "$1"; fail=1; }

for f in trace.jsonl metrics.prom flight.jsonl; do
  [ -s "${DIR}/${f}" ] && ok "${f} exists and is non-empty" \
                       || bad "${f} missing or empty"
done
[ "${fail}" -eq 0 ] || { echo "check_obs: FAIL"; exit 1; }

# -- trace.jsonl: every line carries the full iteration schema. --
TRACE_KEYS='"solve": "iter": "final": "fused": "status": "value":
"grad_inf": "proj_grad_norm": "step": "active_set": "restriction_terms":
"kkt_lambda": "kkt_residual":'
# shellcheck disable=SC2086
if awk -v keys="$(echo ${TRACE_KEYS})" '
    BEGIN { n = split(keys, want, " ") }
    { for (i = 1; i <= n; ++i) if (index($0, want[i]) == 0) {
        printf "line %d missing %s\n", NR, want[i]; exit 1 } }
  ' "${DIR}/trace.jsonl"; then
  ok "trace.jsonl lines carry the full schema"
else
  bad "trace.jsonl schema incomplete"
fi

finals="$(grep -c '"final":true' "${DIR}/trace.jsonl" || true)"
if [ "${finals}" -ge 1 ]; then
  ok "trace.jsonl has ${finals} final summary record(s)"
else
  bad "trace.jsonl has no final summary record"
fi
# The final records report the converged KKT state, not NaN placeholders.
# (Single grep — a `grep | grep -q` pipe dies by SIGPIPE under pipefail
# once -q short-circuits. kkt_residual follows "final" on the line.)
if grep -q '"final":true.*"kkt_residual":-\{0,1\}[0-9]' \
    "${DIR}/trace.jsonl"; then
  ok "final records carry numeric KKT residuals"
else
  bad "final records lack numeric KKT residuals"
fi

# -- metrics.prom: families, types, and cumulative bucket invariants. --
for family in netmon_serve_submitted_total netmon_serve_served_total \
              netmon_serve_batches_total netmon_solver_solves_total \
              netmon_solver_iterations_total; do
  grep -q "^${family} " "${DIR}/metrics.prom" \
    && ok "metrics.prom exports ${family}" \
    || bad "metrics.prom missing ${family}"
done
for hist in netmon_serve_queue_ms netmon_serve_batch_size \
            netmon_solver_iterations; do
  grep -q "^# TYPE ${hist} histogram$" "${DIR}/metrics.prom" \
    && ok "metrics.prom declares histogram ${hist}" \
    || bad "metrics.prom missing histogram ${hist}"
done
# Buckets must be cumulative (non-decreasing in le order, the export
# order) and the +Inf bucket must equal _count for every histogram.
if awk '
    /_bucket\{le="/ {
      name = $1; sub(/_bucket\{.*/, "", name)
      if (name != cur) { cur = name; prev = -1 }
      if ($2 + 0 < prev) { printf "%s buckets not cumulative\n", cur; bad = 1 }
      prev = $2 + 0
      if (index($1, "le=\"+Inf\"")) inf[cur] = $2 + 0
    }
    /_count / { name = $1; sub(/_count$/, "", name); cnt[name] = $2 + 0 }
    END {
      for (h in inf) if (!(h in cnt) || inf[h] != cnt[h]) {
        printf "%s +Inf bucket %d != count %d\n", h, inf[h], cnt[h]; bad = 1 }
      exit bad ? 1 : 0
    }
  ' "${DIR}/metrics.prom"; then
  ok "metrics.prom buckets cumulative, +Inf == _count"
else
  bad "metrics.prom bucket invariants violated"
fi

# -- multi-tenant serving: solve cache + tenant registry families. --
# The operations-center run serves two tenants through the keyed solve
# cache, so the metrics snapshot must export both families with
# plausible accounting: the demo replays at least one exact hit, keeps
# at least one entry resident, and never inserts more entries than it
# missed (only completed kOk misses are cached).
for family in netmon_cache_hits_total netmon_cache_misses_total \
              netmon_cache_warm_starts_total netmon_cache_insertions_total \
              netmon_cache_entries netmon_tenant_swaps_total \
              netmon_tenant_count netmon_tenant_quota_rejects_total; do
  grep -q "^${family} " "${DIR}/metrics.prom" \
    && ok "metrics.prom exports ${family}" \
    || bad "metrics.prom missing ${family}"
done
if awk '
    /^netmon_cache_hits_total /       { hits = $2 + 0 }
    /^netmon_cache_misses_total /     { misses = $2 + 0 }
    /^netmon_cache_insertions_total / { ins = $2 + 0 }
    /^netmon_cache_entries /          { entries = $2 + 0 }
    END { exit (hits >= 1 && entries >= 1 && ins <= misses) ? 0 : 1 }
  ' "${DIR}/metrics.prom"; then
  ok "metrics.prom cache accounting plausible (hits >= 1, inserts <= misses)"
else
  bad "metrics.prom cache accounting implausible"
fi
if awk '
    /^netmon_tenant_swaps_total /        { swaps = $2 + 0 }
    /^netmon_tenant_count /              { count = $2 + 0 }
    /^netmon_tenant_quota_rejects_total /{ rejects = $2 + 0 }
    END { exit (count >= 2 && swaps >= count && rejects >= 1) ? 0 : 1 }
  ' "${DIR}/metrics.prom"; then
  ok "metrics.prom tenant accounting plausible (>= 2 tenants, swaps, rejects)"
else
  bad "metrics.prom tenant accounting implausible"
fi
# The flight recorder sees the same story: cache hits and quota rejects
# are lifecycle events too.
for event in cache_hit cache_miss quota_reject tenant_swap; do
  grep -q "\"event\":\"${event}\"" "${DIR}/flight.jsonl" \
    && ok "flight.jsonl records ${event}" \
    || bad "flight.jsonl missing ${event}"
done

# -- flight.jsonl: lifecycle coverage and causal timestamps. --
for event in admit dequeue batch_formed solve_done; do
  grep -q "\"event\":\"${event}\"" "${DIR}/flight.jsonl" \
    && ok "flight.jsonl records ${event}" \
    || bad "flight.jsonl missing ${event}"
done
# Ring order is append-ticket order; concurrent submitters can claim
# tickets out of timestamp order, so global monotonicity is not the
# invariant. What IS causal: each request's own lifecycle (admit ->
# dequeue -> ... -> solve_done) runs through the queue mutex, so per
# request the timestamps must be non-decreasing in ring order.
if awk '
    {
      t = $0; sub(/.*"t_ns":/, "", t); sub(/,.*/, "", t)
      id = $0; sub(/.*"request_id":/, "", id); sub(/[,}].*/, "", id)
      if (id in prev && t + 0 < prev[id]) {
        printf "request %s t_ns decreases at line %d\n", id, NR; exit 1 }
      prev[id] = t + 0
    }
  ' "${DIR}/flight.jsonl"; then
  ok "flight.jsonl per-request timestamps non-decreasing"
else
  bad "flight.jsonl per-request timestamps not causal"
fi

# -- control-loop artifacts (present when continuous_operation ran). --
if [ -s "${DIR}/control_flight.jsonl" ] || [ -s "${DIR}/control_metrics.prom" ]; then
  for f in control_flight.jsonl control_metrics.prom; do
    [ -s "${DIR}/${f}" ] && ok "${f} exists and is non-empty" \
                         || bad "${f} missing or empty"
  done

  # Every stage of the loop shows up in the event stream, and the day
  # actually reconfigured the network at least once.
  for event in control_track control_resolve control_reconfig; do
    grep -q "\"event\":\"${event}\"" "${DIR}/control_flight.jsonl" \
      && ok "control_flight.jsonl records ${event}" \
      || bad "control_flight.jsonl missing ${event}"
  done
  reconfigs="$(grep -c '"event":"control_reconfig"' \
      "${DIR}/control_flight.jsonl" || true)"
  if [ "${reconfigs}" -ge 1 ]; then
    ok "control_flight.jsonl has ${reconfigs} reconfiguration event(s)"
  else
    bad "control_flight.jsonl has no reconfiguration events"
  fi
  # Control events use the measurement bin as request_id; within one bin
  # the stage timestamps (track -> resolve -> reconfig/hold) are causal.
  if awk '
      /"event":"control_/ {
        t = $0; sub(/.*"t_ns":/, "", t); sub(/,.*/, "", t)
        id = $0; sub(/.*"request_id":/, "", id); sub(/[,}].*/, "", id)
        if (id in prev && t + 0 < prev[id]) {
          printf "bin %s t_ns decreases at line %d\n", id, NR; exit 1 }
        prev[id] = t + 0
      }
    ' "${DIR}/control_flight.jsonl"; then
    ok "control_flight.jsonl per-bin timestamps non-decreasing"
  else
    bad "control_flight.jsonl per-bin timestamps not causal"
  fi

  for family in netmon_control_bins_total netmon_control_resolves_total \
                netmon_control_reconfigurations_total \
                netmon_control_holds_total; do
    grep -q "^${family} " "${DIR}/control_metrics.prom" \
      && ok "control_metrics.prom exports ${family}" \
      || bad "control_metrics.prom missing ${family}"
  done
  for hist in netmon_control_innovation netmon_control_step_ms; do
    grep -q "^# TYPE ${hist} histogram$" "${DIR}/control_metrics.prom" \
      && ok "control_metrics.prom declares histogram ${hist}" \
      || bad "control_metrics.prom missing histogram ${hist}"
  done
  if awk '
      /_bucket\{le="/ {
        name = $1; sub(/_bucket\{.*/, "", name)
        if (name != cur) { cur = name; prev = -1 }
        if ($2 + 0 < prev) { printf "%s buckets not cumulative\n", cur; bad = 1 }
        prev = $2 + 0
        if (index($1, "le=\"+Inf\"")) inf[cur] = $2 + 0
      }
      /_count / { name = $1; sub(/_count$/, "", name); cnt[name] = $2 + 0 }
      END {
        for (h in inf) if (!(h in cnt) || inf[h] != cnt[h]) {
          printf "%s +Inf bucket %d != count %d\n", h, inf[h], cnt[h]; bad = 1 }
        exit bad ? 1 : 0
      }
    ' "${DIR}/control_metrics.prom"; then
    ok "control_metrics.prom buckets cumulative, +Inf == _count"
  else
    bad "control_metrics.prom bucket invariants violated"
  fi
fi

# -- ingest artifacts (present when ingest_replay ran). --
if [ -s "${DIR}/ingest_metrics.prom" ] || [ -s "${DIR}/ingest_metrics.jsonl" ]; then
  for f in ingest_metrics.prom ingest_metrics.jsonl; do
    [ -s "${DIR}/${f}" ] && ok "${f} exists and is non-empty" \
                         || bad "${f} missing or empty"
  done

  for family in netmon_ingest_packets_total netmon_ingest_sampled_total \
                netmon_ingest_dropped_total netmon_ingest_batches_total \
                netmon_ingest_exported_records_total; do
    grep -q "^${family} " "${DIR}/ingest_metrics.prom" \
      && ok "ingest_metrics.prom exports ${family}" \
      || bad "ingest_metrics.prom missing ${family}"
  done
  for hist in netmon_ingest_ring_occupancy netmon_ingest_consume_batch_ns; do
    grep -q "^# TYPE ${hist} histogram$" "${DIR}/ingest_metrics.prom" \
      && ok "ingest_metrics.prom declares histogram ${hist}" \
      || bad "ingest_metrics.prom missing histogram ${hist}"
  done
  # A replay that ingested packets must have sampled some of them, and
  # the sampled count can never exceed the offered count.
  if awk '
      /^netmon_ingest_packets_total / { offered = $2 + 0 }
      /^netmon_ingest_sampled_total / { sampled = $2 + 0 }
      END { exit (offered > 0 && sampled > 0 && sampled <= offered) ? 0 : 1 }
    ' "${DIR}/ingest_metrics.prom"; then
    ok "ingest_metrics.prom 0 < sampled <= offered"
  else
    bad "ingest_metrics.prom sample accounting implausible"
  fi
  if awk '
      /_bucket\{le="/ {
        name = $1; sub(/_bucket\{.*/, "", name)
        if (name != cur) { cur = name; prev = -1 }
        if ($2 + 0 < prev) { printf "%s buckets not cumulative\n", cur; bad = 1 }
        prev = $2 + 0
        if (index($1, "le=\"+Inf\"")) inf[cur] = $2 + 0
      }
      /_count / { name = $1; sub(/_count$/, "", name); cnt[name] = $2 + 0 }
      END {
        for (h in inf) if (!(h in cnt) || inf[h] != cnt[h]) {
          printf "%s +Inf bucket %d != count %d\n", h, inf[h], cnt[h]; bad = 1 }
        exit bad ? 1 : 0
      }
    ' "${DIR}/ingest_metrics.prom"; then
    ok "ingest_metrics.prom buckets cumulative, +Inf == _count"
  else
    bad "ingest_metrics.prom bucket invariants violated"
  fi
  # The JSONL export mirrors the same registry: every Prometheus family
  # name must appear as a "name" field in the JSONL stream.
  if awk '
      NR == FNR {
        if ($0 ~ /^# TYPE netmon_ingest_/) names[$3] = 1
        next
      }
      { for (n in names) if (index($0, "\"" n "\"")) delete names[n] }
      END { for (n in names) { printf "missing %s\n", n; bad = 1 }
            exit bad ? 1 : 0 }
    ' "${DIR}/ingest_metrics.prom" "${DIR}/ingest_metrics.jsonl"; then
    ok "ingest_metrics.jsonl mirrors every Prometheus family"
  else
    bad "ingest_metrics.jsonl missing families"
  fi
fi

[ "${fail}" -eq 0 ] && echo "check_obs: PASS" || echo "check_obs: FAIL"
exit "${fail}"
