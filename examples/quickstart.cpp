// Quickstart: the whole API on a five-node toy network.
//
// Builds a topology, defines a measurement task, computes link loads from
// a traffic matrix, solves the joint monitor-activation / sampling-rate
// problem, and verifies the result with a sampling simulation.
#include <cstdio>

#include "netmon.hpp"

int main() {
  using namespace netmon;

  // 1. Topology: a small ISP with a customer attached at PoP "A".
  //
  //        CUST --- A --- B --- C
  //                  \         /
  //                   +-- D --+
  topo::Graph graph;
  const auto a = graph.add_node("A", 3.0);
  const auto b = graph.add_node("B", 2.0);
  const auto c = graph.add_node("C", 2.0);
  const auto d = graph.add_node("D", 1.0);
  const auto cust = graph.add_node("CUST", 0.0);  // external customer
  graph.add_duplex(a, b, 1e9, 10.0);
  graph.add_duplex(b, c, 1e9, 10.0);
  graph.add_duplex(a, d, 1e9, 12.0);
  graph.add_duplex(d, c, 1e9, 12.0);
  // The customer access link cannot host a monitor (CPE-owned).
  graph.add_duplex(cust, a, 1e9, 5.0, /*monitorable=*/false);

  // 2. Measurement task: estimate the traffic CUST sends to B, C and D.
  core::MeasurementTask task;
  task.interval_sec = 300.0;
  for (auto [dst, pkt_per_sec] :
       {std::pair{b, 4000.0}, {c, 900.0}, {d, 25.0}}) {
    task.ods.push_back({cust, dst});
    task.expected_packets.push_back(pkt_per_sec * task.interval_sec);
  }

  // 3. Link loads: customer demand plus background gravity traffic.
  traffic::TrafficMatrix demands = traffic::gravity_matrix(
      graph, {.total_pkt_per_sec = 60000.0, .min_mass = 1e-12});
  for (std::size_t k = 0; k < task.ods.size(); ++k) {
    demands.push_back(
        {task.ods[k], task.expected_packets[k] / task.interval_sec});
  }
  const traffic::LinkLoads loads = traffic::link_loads(graph, demands);

  // 4. Solve: which monitors, at which sampling rates, for a budget of
  // 50,000 sampled packets per 5-minute interval?
  core::ProblemOptions options;
  options.theta = 50000.0;
  const core::PlacementProblem problem(graph, task, loads, options);
  const core::PlacementSolution solution = core::solve_placement(problem);

  std::printf("solver: %s in %d iterations\n",
              solution.status == opt::SolveStatus::kOptimal
                  ? "global optimum (KKT certified)"
                  : "iteration limit",
              solution.iterations);
  for (topo::LinkId id : solution.active_monitors) {
    std::printf("  monitor %-8s rate %.5f  (load %.0f pkt/s)\n",
                graph.link_name(id).c_str(), solution.rates[id], loads[id]);
  }
  for (const auto& od : solution.per_od) {
    std::printf("  CUST->%s: effective rate %.5f, utility %.4f\n",
                graph.node(od.od.dst).name.c_str(), od.rho_approx,
                od.utility);
  }

  // 5. Verify by simulation: generate flows and sample them at the
  // configured rates.
  Rng rng(1);
  std::vector<std::vector<traffic::Flow>> flows;
  for (std::size_t k = 0; k < task.ods.size(); ++k) {
    flows.push_back(traffic::generate_flows(
        rng, {task.ods[k], task.expected_packets[k] / task.interval_sec},
        static_cast<std::uint32_t>(k)));
  }
  const auto counts =
      sampling::simulate_sampling(rng, problem.routing(), flows,
                                  solution.rates);
  const auto rhos =
      sampling::effective_rates_approx(problem.routing(), solution.rates);
  std::printf("one sampling experiment:\n");
  for (std::size_t k = 0; k < counts.size(); ++k) {
    const double estimate =
        estimate::estimate_size(counts[k].sampled_packets, rhos[k]);
    std::printf(
        "  CUST->%s: actual %llu pkts, sampled %llu, estimate %.0f"
        " (accuracy %.3f)\n",
        graph.node(task.ods[k].dst).name.c_str(),
        static_cast<unsigned long long>(counts[k].actual_packets),
        static_cast<unsigned long long>(counts[k].sampled_packets), estimate,
        estimate::accuracy(estimate,
                           static_cast<double>(counts[k].actual_packets)));
  }
  return 0;
}
