// Example: the paper's evaluation task on GEANT (§V-B).
//
// Builds the GEANT scenario (gravity background + JANET demands), solves
// the joint activation/rate problem at theta = 100,000 packets per
// 5-minute interval, and prints the resulting placement: which monitors
// are on, at which rate, which OD pairs they observe, and the utility of
// every OD pair.
#include <cstdio>
#include <iostream>

#include "core/sensitivity.hpp"
#include "netmon.hpp"
#include "util/table.hpp"

int main() {
  using namespace netmon;

  const core::GeantScenario scenario = core::make_geant_scenario();
  core::ProblemOptions options;
  options.theta = 100000.0;  // packets per 5-minute interval
  const core::PlacementProblem problem = core::make_problem(scenario, options);

  std::printf("GEANT: %zu PoPs (+JANET), %zu unidirectional links\n",
              scenario.net.pops.size(), scenario.net.graph.link_count() - 2);
  std::printf("Task: %zu OD pairs over %zu links, %zu candidate monitors\n",
              problem.routing().od_count(),
              problem.routing().links_used().size(),
              problem.candidates().size());

  const core::PlacementSolution solution = core::solve_placement(problem);
  std::printf(
      "Solver: %s after %d iterations (%d constraint releases), lambda=%.3e\n",
      solution.status == opt::SolveStatus::kOptimal ? "OPTIMAL"
                                                    : "iteration limit",
      solution.iterations, solution.release_events, solution.lambda);
  std::printf("Budget used: %.0f / %.0f packets per interval\n\n",
              solution.budget_used, problem.theta());

  TextTable monitors({"monitor", "rate p_i", "load (pkt/s)", "share of theta"});
  for (topo::LinkId id : solution.active_monitors) {
    const double share = solution.rates[id] * scenario.loads[id] *
                         problem.interval_sec() / problem.theta();
    monitors.add_row({scenario.net.graph.link_name(id),
                      fmt_sci(solution.rates[id], 3),
                      fmt_fixed(scenario.loads[id], 0), fmt_percent(share)});
  }
  std::cout << monitors.render() << "\n";

  TextTable ods({"OD pair", "pkt/s", "rho (eq.7)", "utility", "monitors"});
  for (const core::OdReport& od : solution.per_od) {
    std::string where;
    for (topo::LinkId id : od.monitored_links) {
      if (!where.empty()) where += ", ";
      where += scenario.net.graph.link_name(id);
    }
    ods.add_row({"JANET-" + scenario.net.graph.node(od.od.dst).name,
                 fmt_fixed(od.expected_packets / problem.interval_sec(), 0),
                 fmt_sci(od.rho_approx, 3), fmt_fixed(od.utility, 4), where});
  }
  std::cout << ods.render();

  // What-if economics from the KKT multipliers: which monitor would the
  // optimizer switch on next if the budget grew?
  const auto values = core::monitor_values(problem, solution);
  const topo::LinkId next = core::next_monitor_to_activate(values);
  if (next != topo::kInvalidId) {
    double ratio = 0.0;
    for (const auto& v : values) {
      if (v.link == next) ratio = v.value_ratio;
    }
    std::printf(
        "\nsensitivity: lambda = %.3e utility per budgeted packet; next"
        " monitor to activate\nwould be %s (marginal value %.0f%% of its"
        " budget price).\n",
        solution.lambda, scenario.net.graph.link_name(next).c_str(),
        100.0 * ratio);
  }
  return 0;
}
