// Anomaly watch: a security-flavoured task (paper §I: "a specific network
// prefix that is below the radars for traffic engineering purposes may
// play an important role in the early detection of anomalies").
//
// The operator watches a handful of *small* prefixes spread across GEANT
// and needs every one of them observed adequately — a max-min style goal.
// This example contrasts the sum-of-utilities objective with the
// smooth max-min extension (paper §III / §VI), and shows the end-to-end
// NetFlow pipeline (flow tables, export, longest-prefix-match egress
// attribution) producing estimates for the watched prefixes.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "netmon.hpp"
#include "util/table.hpp"

int main() {
  using namespace netmon;

  std::printf("== anomaly watch: max-min monitoring of small prefixes ==\n\n");

  const core::GeantScenario scenario = core::make_geant_scenario();
  const auto& graph = scenario.net.graph;

  // Watch small flows from JANET towards five "quiet" destinations.
  core::MeasurementTask task;
  task.interval_sec = 300.0;
  struct Watch {
    const char* dst;
    double pkt_per_sec;
  };
  for (const Watch& w : {Watch{"LU", 18.0}, Watch{"SK", 22.0},
                         Watch{"IL", 35.0}, Watch{"HR", 40.0},
                         Watch{"SI", 55.0}}) {
    task.ods.push_back({scenario.net.janet, *graph.find_node(w.dst)});
    task.expected_packets.push_back(w.pkt_per_sec * task.interval_sec);
  }

  // A small dedicated budget for the watch task.
  core::ProblemOptions options;
  options.theta = 15000.0;
  const core::PlacementProblem problem(graph, task, scenario.loads, options);

  // Sum objective vs smooth max-min.
  const core::PlacementSolution sum_solution = core::solve_placement(problem);
  const core::SmoothMinObjective maximin(problem.objective(), 400.0);
  opt::SolverOptions mm_options;
  mm_options.max_iterations = 8000;
  const opt::SolveResult mm =
      opt::maximize(maximin, problem.constraints(), mm_options);
  const core::PlacementSolution mm_solution =
      core::evaluate_rates(problem, problem.expand(mm.p));

  TextTable table({"prefix watch", "rho (sum)", "utility (sum)",
                   "rho (max-min)", "utility (max-min)"});
  for (std::size_t k = 0; k < task.ods.size(); ++k) {
    table.add_row({"JANET-" + graph.node(task.ods[k].dst).name,
                   fmt_sci(sum_solution.per_od[k].rho_approx, 2),
                   fmt_fixed(sum_solution.per_od[k].utility, 4),
                   fmt_sci(mm_solution.per_od[k].rho_approx, 2),
                   fmt_fixed(mm_solution.per_od[k].utility, 4)});
  }
  std::cout << table.render();
  auto worst = [](const core::PlacementSolution& s) {
    double w = 1.0;
    for (const auto& od : s.per_od) w = std::min(w, od.utility);
    return w;
  };
  std::printf("worst watched prefix: sum %.4f vs max-min %.4f\n\n",
              worst(sum_solution), worst(mm_solution));

  // End-to-end check through the real NetFlow pipeline with the max-min
  // rates: flow tables, one-minute export, LPM attribution at the
  // collector.
  Rng rng(7);
  std::vector<std::vector<traffic::Flow>> flows;
  for (std::size_t k = 0; k < task.ods.size(); ++k) {
    flows.push_back(traffic::generate_flows(
        rng, {task.ods[k], task.expected_packets[k] / task.interval_sec},
        static_cast<std::uint32_t>(k)));
  }
  const netflow::EgressMap egress = netflow::EgressMap::for_pop_blocks(graph);
  netflow::NetflowPipeline pipeline(graph, problem.routing(),
                                    mm_solution.rates, egress);
  pipeline.run(flows);

  std::printf("NetFlow pipeline: %llu packets offered, %llu sampled, %llu"
              " records collected\n",
              static_cast<unsigned long long>(pipeline.offered_packets()),
              static_cast<unsigned long long>(pipeline.sampled_packets()),
              static_cast<unsigned long long>(
                  pipeline.collector().received_records()));
  for (std::size_t k = 0; k < task.ods.size(); ++k) {
    const double rho = mm_solution.per_od[k].rho_approx;
    if (rho <= 0.0) continue;
    std::uint64_t sampled = 0;
    for (std::int64_t bin : pipeline.collector().bins())
      sampled += pipeline.collector().sampled_packets(bin, task.ods[k]);
    const double actual =
        static_cast<double>(traffic::total_packets(flows[k]));
    const double est = estimate::estimate_size(sampled, rho);
    std::printf("  JANET-%s: actual %.0f pkts, estimated %.0f (accuracy"
                " %.3f)\n",
                graph.node(task.ods[k].dst).name.c_str(), actual, est,
                estimate::accuracy(est, actual));
  }
  return 0;
}
