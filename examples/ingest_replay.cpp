// Ingest replay demo: the full packet-to-placement chain, driven
// deterministically by a ManualClock — no sleeps, no wall-clock races.
//
//   1. The control loop solves the JANET task on GEANT and installs
//      sampling rates (bin 1, loads only).
//   2. One measurement interval of synthetic traffic is replayed through
//      the ingest pipeline (sources -> SPSC rings -> per-link samplers
//      -> flow tables -> collector) under those rates; the X_k / rho_k
//      estimates feed bin 2.
//   3. The same monitored streams are written out as pcap traces and
//      replayed back through TraceReader sources — the trace path and
//      the synthetic path drive the loop with the same estimates.
//   4. A paced TraceReader shows deterministic clock-driven release:
//      advancing the ManualClock releases exactly the packets due.
//
// With NETMON_OBS_DIR set, writes ingest_metrics.prom and
// ingest_metrics.jsonl for scripts/check_obs.sh to validate.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "netmon.hpp"

using namespace netmon;
using namespace std::chrono_literals;

namespace {

/// One interval replayed through an IngestPipeline built from `make`.
std::vector<double> replay_bin(
    const sampling::RateVector& rates, const netflow::EgressMap& egress,
    const routing::RoutingMatrix& matrix, double interval_sec,
    obs::MetricsRegistry& metrics,
    std::vector<std::unique_ptr<ingest::PacketSource>> sources,
    ingest::IngestStats* stats_out) {
  ingest::IngestOptions options;
  options.collector.bin_sec = interval_sec;
  options.producers = 2;
  options.expected_flows_per_link = 1 << 12;
  ingest::IngestDeps deps;
  deps.metrics = &metrics;
  ingest::IngestPipeline pipeline(rates, egress, options, deps);
  pipeline.add_sources(std::move(sources));
  const ingest::IngestStats stats = pipeline.run();
  if (stats_out != nullptr) *stats_out = stats;
  return ingest::od_rate_estimates(pipeline.collector(), matrix, rates, 0,
                                   interval_sec);
}

}  // namespace

int main() {
  std::printf("== ingest_replay: packets -> estimates -> control ==\n\n");

  // The JANET measurement task on GEANT, compressed to 30-second
  // intervals so the demo replays a few hundred thousand packets.
  const topo::GeantNetwork net = topo::make_geant();
  core::MeasurementTask task = core::janet_task(net);
  const traffic::TrafficMatrix demands = core::janet_demands(net);
  constexpr double kIntervalSec = 30.0;
  task.interval_sec = kIntervalSec;
  for (double& expected : task.expected_packets)
    expected *= kIntervalSec / 300.0;  // rescale Table-I sizes

  std::vector<routing::OdPair> ods;
  for (const traffic::Demand& d : demands) ods.push_back(d.od);
  const routing::RoutingMatrix matrix =
      routing::RoutingMatrix::single_path(net.graph, ods);
  const netflow::EgressMap egress =
      netflow::EgressMap::for_pop_blocks(net.graph);

  obs::ManualClock clock;
  obs::MetricsRegistry metrics;
  control::ControlDeps loop_deps;
  loop_deps.clock = &clock;
  control::ControlLoop loop(net.graph, task, {}, loop_deps);

  // -- bin 1: loads only; the loop installs sampling rates. --
  control::BinObservation first;
  first.loads = traffic::link_loads(net.graph, demands);
  const control::StepResult r1 = loop.step(first);
  std::size_t monitors = 0;
  for (double rate : loop.rates())
    if (rate > 0.0) ++monitors;
  std::printf("bin 1: solved from loads — %zu monitors, utility %.4g\n",
              monitors, r1.utility);
  clock.advance(30s);

  // -- bin 2: synthetic packets through the ingest pipeline. --
  ingest::SyntheticOptions synth;
  synth.flowgen.interval_sec = kIntervalSec;
  const ingest::SyntheticTraffic traffic(matrix, demands, synth);
  ingest::IngestStats stats;
  const std::vector<double> estimates =
      replay_bin(loop.rates(), egress, matrix, kIntervalSec, metrics,
                 traffic.sources(loop.rates()), &stats);
  std::printf(
      "bin 2: ingest replay — %zu sources, %llu packets, %llu sampled,\n"
      "       %llu flow records, drop rate %.4f, %.2fM pkts/sec\n",
      stats.sources, static_cast<unsigned long long>(stats.offered_packets),
      static_cast<unsigned long long>(stats.sampled_packets),
      static_cast<unsigned long long>(stats.exported_records),
      stats.drop_rate(), stats.packets_per_sec * 1e-6);

  control::BinObservation second;
  second.loads = first.loads;
  second.od_rates = estimates;
  const control::StepResult r2 = loop.step(second);
  std::size_t estimated = 0;
  for (double e : estimates)
    if (e != ingest::kNoEstimate) ++estimated;
  std::printf("       loop consumed %zu/%zu OD estimates -> %s\n", estimated,
              estimates.size(),
              r2.reconfigured ? "reconfigured" : "held placement");
  clock.advance(30s);

  // -- bin 3: the same streams, via pcap traces on disk. --
  const char* tmp = std::getenv("TMPDIR");
  const std::string dir = tmp != nullptr ? tmp : "/tmp";
  std::vector<std::unique_ptr<ingest::PacketSource>> replayed;
  std::uint64_t trace_bytes = 0;
  for (auto& source : traffic.sources(loop.rates())) {
    std::vector<ingest::PacketRecord> packets;
    ingest::PacketRecord buf[512];
    for (std::size_t n; (n = source->next_batch(buf, 512)) > 0;)
      packets.insert(packets.end(), buf, buf + n);
    const std::vector<std::uint8_t> bytes = ingest::encode_trace(packets);
    trace_bytes += bytes.size();
    const std::string path = dir + "/netmon_ingest_replay_link" +
                             std::to_string(source->link()) + ".pcap";
    ingest::write_trace(path, packets);
    replayed.push_back(std::make_unique<ingest::TraceReader>(
        ingest::TraceReader::from_file(path, {.link = source->link()})));
    std::remove(path.c_str());
  }
  const std::vector<double> trace_estimates =
      replay_bin(loop.rates(), egress, matrix, kIntervalSec, metrics,
                 std::move(replayed), nullptr);
  double worst = 0.0;
  for (std::size_t k = 0; k < estimates.size(); ++k) {
    if (estimates[k] == ingest::kNoEstimate) continue;
    const double rel =
        std::abs(trace_estimates[k] - estimates[k]) /
        std::max(1.0, estimates[k]);
    if (rel > worst) worst = rel;
  }
  std::printf(
      "bin 3: pcap round trip — %.1f MB of traces re-ingested;\n"
      "       worst estimate divergence vs synthetic path: %.2g\n",
      static_cast<double>(trace_bytes) * 1e-6, worst);
  control::BinObservation third;
  third.loads = first.loads;
  third.od_rates = trace_estimates;
  loop.step(third);
  clock.advance(30s);

  // -- pacing demo: the ManualClock releases packets on schedule. --
  std::vector<ingest::PacketRecord> paced_packets;
  for (int i = 0; i < 10; ++i) {
    ingest::PacketRecord p;
    p.key.src_ip = 0x0a000001;
    p.key.dst_ip = 0x0a010001;
    p.key.proto = 17;
    p.bytes = 100;
    p.ts_sec = static_cast<double>(i);
    paced_packets.push_back(p);
  }
  ingest::TraceReader paced(
      ingest::encode_trace(paced_packets),
      {.link = 0, .speed = 2.0, .clock = &clock});
  std::printf("pacing: 10 packets at 1 Hz replayed at speed 2 —");
  ingest::PacketRecord buf[16];
  std::size_t released = paced.next_batch(buf, 16);
  std::printf(" t+0s:%zu", released);
  for (int step = 0; step < 3 && !paced.exhausted(); ++step) {
    clock.advance(1s);  // 1 clock-second = 2 trace-seconds
    released = paced.next_batch(buf, 16);
    std::printf(" +1s:%zu", released);
  }
  clock.advance(10s);
  released = paced.next_batch(buf, 16);
  std::printf(" +10s:%zu -> exhausted=%s\n", released,
              paced.exhausted() ? "yes" : "no");

  std::printf("\nloop summary: %d bins, %d re-solves, %d pushes\n",
              loop.bins(), loop.resolves(), loop.reconfigurations());

  const char* obs_dir = std::getenv("NETMON_OBS_DIR");
  if (obs_dir != nullptr) {
    const std::string out(obs_dir);
    std::ofstream(out + "/ingest_metrics.prom")
        << obs::prometheus_text(metrics);
    std::ofstream(out + "/ingest_metrics.jsonl")
        << obs::metrics_jsonl(metrics);
    std::printf("obs artifacts: %s/{ingest_metrics.prom,"
                "ingest_metrics.jsonl}\n", obs_dir);
  }
  return 0;
}
