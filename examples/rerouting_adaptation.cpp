// Rerouting adaptation: the paper's core motivation is that a static
// monitor placement turns sub-optimal when routing changes. This example
// fails the UK->NL link of GEANT, recomputes routing and loads, and
// re-optimizes — comparing three configurations:
//   (a) the pre-failure optimum evaluated on the pre-failure network,
//   (b) the pre-failure (stale) rates evaluated on the failed network,
//   (c) the re-optimized rates on the failed network.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "netmon.hpp"
#include "util/table.hpp"

namespace {

using namespace netmon;

double worst_utility(const core::PlacementSolution& s) {
  double w = 1.0;
  for (const auto& od : s.per_od) w = std::min(w, od.utility);
  return w;
}

double blind_ods(const core::PlacementSolution& s) {
  double n = 0;
  for (const auto& od : s.per_od) n += od.rho_approx <= 0.0;
  return n;
}

}  // namespace

int main() {
  std::printf("== rerouting adaptation: fail UK->NL, re-optimize ==\n\n");

  // Before the failure.
  const core::GeantScenario before = core::make_geant_scenario();
  const core::PlacementProblem problem_before = core::make_problem(before);
  const core::PlacementSolution opt_before =
      core::solve_placement(problem_before);

  // The failure: UK->NL goes down; IS-IS reroutes, loads shift.
  const topo::LinkId uk_nl = *before.net.graph.find_link("UK", "NL");
  core::ScenarioOptions failed_options;
  failed_options.failed.insert(uk_nl);
  const core::GeantScenario after = core::make_geant_scenario(failed_options);

  core::ProblemOptions options;
  options.failed.insert(uk_nl);
  const core::PlacementProblem problem_after(after.net.graph, after.task,
                                             after.loads, options);

  // Stale configuration: keep the old rates running on the new routes.
  const core::PlacementSolution stale =
      core::evaluate_rates(problem_after, opt_before.rates);
  // Adaptive configuration: re-run the optimization.
  const core::PlacementSolution readapted =
      core::solve_placement(problem_after);

  TextTable table({"configuration", "sum utility", "worst OD utility",
                   "unobserved ODs", "budget used"});
  auto add = [&](const char* name, const core::PlacementSolution& s) {
    table.add_row({name, fmt_fixed(s.total_utility, 3),
                   fmt_fixed(worst_utility(s), 4),
                   fmt_fixed(blind_ods(s), 0), fmt_fixed(s.budget_used, 0)});
  };
  add("pre-failure optimum (old routes)", opt_before);
  add("stale rates after failure", stale);
  add("re-optimized after failure", readapted);
  std::cout << table.render() << "\n";

  std::printf("monitors before: ");
  for (topo::LinkId id : opt_before.active_monitors)
    std::printf("%s ", before.net.graph.link_name(id).c_str());
  std::printf("\nmonitors after:  ");
  for (topo::LinkId id : readapted.active_monitors)
    std::printf("%s ", after.net.graph.link_name(id).c_str());
  std::printf(
      "\n\nthe stale configuration wastes budget on the dead link's old path"
      "\nand under-samples the rerouted OD pairs; re-optimizing restores"
      " coverage\n(this is why the paper argues for re-runnable, router-"
      "embedded placement).\n");
  return 0;
}
