// What-if fleet: an operations center does not wait for a failure to
// happen — it keeps, for every plausible single-link failure, a
// pre-computed re-optimized placement ready to push. That is a batch of
// placement problems (one per scenario), all warm-started from the
// currently-running rates: exactly the workload the BatchSolver fans
// across the runtime thread pool (NETMON_THREADS, default all cores).
//
// The fan-out is deterministic — each scenario's solution is a pure
// function of its own inputs — so the printed fleet is identical at any
// thread count.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "netmon.hpp"
#include "util/bench_report.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace {

using namespace netmon;

double worst_utility(const core::PlacementSolution& s) {
  double w = 1.0;
  for (const auto& od : s.per_od) w = std::min(w, od.utility);
  return w;
}

}  // namespace

int main() {
  std::printf(
      "== what-if fleet: one re-optimized placement per candidate link"
      " failure ==\n\n");

  const unsigned threads = runtime::threads_from_env();

  // The placement currently running.
  const core::GeantScenario base = core::make_geant_scenario();
  const core::PlacementProblem base_problem = core::make_problem(base);
  const core::PlacementSolution running = core::solve_placement(base_problem);

  // One scenario per monitored link's failure: routing recomputes around
  // the dead link, loads shift, the placement must adapt. Failures that
  // disconnect an OD of the task (GEANT has single-homed PoPs) are not
  // placement problems at all — skip them. Scenarios are kept alive for
  // the problems that reference their graphs.
  std::vector<core::GeantScenario> scenarios;
  std::vector<topo::LinkId> failed_links;
  scenarios.reserve(running.active_monitors.size());
  for (const topo::LinkId link : running.active_monitors) {
    core::ScenarioOptions what_if;
    what_if.failed.insert(link);
    try {
      scenarios.push_back(core::make_geant_scenario(what_if));
      failed_links.push_back(link);
    } catch (const netmon::Error&) {
      std::printf("(skipping %s: failure disconnects the task)\n",
                  base.net.graph.link_name(link).c_str());
    }
  }
  std::vector<core::PlacementProblem> problems;
  problems.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    core::ProblemOptions options;
    options.failed.insert(failed_links[i]);
    problems.emplace_back(scenarios[i].net.graph, scenarios[i].task,
                          scenarios[i].loads, options);
  }
  std::vector<const core::PlacementProblem*> pointers;
  for (const auto& p : problems) pointers.push_back(&p);

  // Warm-start every what-if solve from the running rates.
  core::BatchOptions batch;
  batch.threads = threads;
  StopWatch watch;
  const std::vector<core::PlacementSolution> fleet =
      core::resolve_warm_batch(pointers, running.rates, batch);
  const double wall_ms = watch.elapsed_ms();

  TextTable table({"failed link", "sum utility", "worst OD utility",
                   "monitors", "iterations"});
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    table.add_row({base.net.graph.link_name(failed_links[i]),
                   fmt_fixed(fleet[i].total_utility, 3),
                   fmt_fixed(worst_utility(fleet[i]), 4),
                   std::to_string(fleet[i].active_monitors.size()),
                   std::to_string(fleet[i].iterations)});
  }
  std::cout << table.render() << "\n";
  std::printf(
      "%zu warm-started what-if solves on %u threads: %.0f ms wall\n"
      "(baseline: sum utility %.3f with %zu monitors; any failure above"
      " can be\nanswered by pushing its pre-computed rates immediately)\n",
      fleet.size(), threads, wall_ms, running.total_utility,
      running.active_monitors.size());
  return 0;
}
