// Flow census: recovering flow-level statistics from sampled NetFlow.
//
// Packet sampling hides most mice flows entirely (a 3-packet flow at a
// 1% rate is invisible 97% of the time) and truncates the rest, so
// counting exported records wildly underestimates flow counts. This
// example runs the paper's machinery end to end on one monitored link —
// sample flows, export records, histogram the sampled sizes — and then
// applies the zero-truncated-binomial EM inversion (paper refs [12]-[14])
// to recover the original flow count and size distribution.
#include <cstdio>

#include "netmon.hpp"
#include "util/table.hpp"

int main() {
  using namespace netmon;

  std::printf("== flow census: inverting sampled flow statistics ==\n\n");

  // Ground truth: a realistic mice/elephants population on one link.
  Rng rng(123);
  traffic::FlowGenOptions gen;
  gen.max_flow_packets = 200.0;  // keep the EM support compact
  const auto flows =
      traffic::generate_flows(rng, {{0, 1}, 2000.0}, 0, gen);
  const std::uint64_t true_flows = flows.size();
  const std::uint64_t true_packets = traffic::total_packets(flows);

  const double p = 0.05;  // the monitor's sampling rate
  std::printf("link carries %llu flows, %llu packets; sampling at p=%.2f\n",
              static_cast<unsigned long long>(true_flows),
              static_cast<unsigned long long>(true_packets), p);

  // Sample: per flow, Binomial(k, p) packets survive.
  std::vector<std::uint64_t> sampled_sizes;
  sampled_sizes.reserve(flows.size());
  std::uint64_t detected = 0, sampled_packets = 0;
  for (const traffic::Flow& f : flows) {
    const std::uint64_t s = rng.binomial(f.packets, p);
    sampled_sizes.push_back(s);
    detected += s >= 1;
    sampled_packets += s;
  }

  // Invert.
  const auto histogram = estimate::sampled_size_histogram(sampled_sizes, 64);
  estimate::FlowInversionOptions options;
  options.max_size = 220;
  options.em_iterations = 800;
  const auto inverted = estimate::invert_flow_sizes(histogram, p, options);

  TextTable table({"quantity", "ground truth", "naive (records)",
                   "inverted (EM)"});
  table.add_row({"flows", std::to_string(true_flows),
                 std::to_string(detected),
                 fmt_fixed(inverted.total_flows, 0)});
  table.add_row({"packets", std::to_string(true_packets),
                 fmt_fixed(static_cast<double>(sampled_packets) / p, 0),
                 fmt_fixed(inverted.total_packets, 0)});
  table.add_row(
      {"mean flow size",
       fmt_fixed(static_cast<double>(true_packets) / true_flows, 2),
       fmt_fixed(static_cast<double>(sampled_packets) / p / detected, 2),
       fmt_fixed(inverted.total_packets / inverted.total_flows, 2)});
  std::printf("%s", table.render().c_str());

  // Size-distribution shape: share of flows below 5 packets.
  std::uint64_t true_mice = 0;
  for (const traffic::Flow& f : flows) true_mice += f.packets < 5;
  double est_mice = 0.0;
  for (std::size_t k = 0; k < 4 && k < inverted.counts.size(); ++k)
    est_mice += inverted.counts[k];
  std::printf(
      "\nmice (<5 pkts): true share %.1f%%, inverted share %.1f%% — the"
      " naive view sees\nalmost none of them (a k-packet flow is detected"
      " with prob 1-(1-p)^k).\n",
      100.0 * static_cast<double>(true_mice) / true_flows,
      100.0 * est_mice / inverted.total_flows);
  return 0;
}
