// Continuous operation: a day in the life of the monitoring system.
//
// This example wires the full operational loop the paper envisions
// (§I, §VI): traffic follows a diurnal cycle with a mid-day anomaly
// spike; link loads are not oracle values but come from SNMP counters via
// the RatePoller; the traffic matrix itself is reconstructed from those
// loads with tomogravity; every 2-hour epoch the placement is re-solved
// with a warm start from the previous rates; and per-epoch accuracy is
// verified by Monte-Carlo sampling of the true traffic.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/reoptimize.hpp"
#include "estimate/tomogravity.hpp"
#include "netmon.hpp"
#include "telemetry/snmp.hpp"
#include "traffic/variation.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace netmon;

  std::printf("== continuous operation: 24h with diurnal traffic, an"
              " anomaly, SNMP-fed re-optimization ==\n\n");

  const core::GeantScenario base = core::make_geant_scenario();
  const auto& graph = base.net.graph;

  // Diurnal pattern peaking at 14:00, 35% swing; a 50x anomaly towards
  // Luxembourg between 11:00 and 13:00 (paper §I: small prefixes matter
  // for anomaly detection).
  const traffic::DiurnalPattern pattern(0.35, 14.0 * 3600.0);
  const std::vector<traffic::AnomalySpike> spikes{
      {{base.net.janet, *graph.find_node("LU")}, 11.0 * 3600.0,
       13.0 * 3600.0, 50.0}};

  Rng rng(2026);
  sampling::RateVector running_rates(graph.link_count(), 0.0);
  bool have_rates = false;

  TextTable table({"epoch", "diurnal", "theta load factor", "solver iters",
                   "warm iters", "avg acc", "worst acc", "worst OD"});

  for (int hour = 0; hour < 24; hour += 2) {
    const double t = hour * 3600.0;
    // True demands at this time (background + task, both modulated).
    const traffic::TrafficMatrix true_demands =
        traffic::matrix_at(base.demands, pattern, spikes, t);

    // --- Measurement plane: SNMP counters -> loads. ---
    Rng snmp_rng = rng.split(hour + 1);
    const traffic::LinkLoads measured = telemetry::measured_loads(
        graph, true_demands, /*duration=*/120.0, /*poll=*/60.0, snmp_rng);

    // --- Optional: reconstruct the background TM from the loads (shown
    // here as a sanity metric; the placement needs only the loads). ---
    const estimate::TomogravityResult tomo =
        estimate::tomogravity(graph, measured);

    // --- Task sizes as currently believed (scale with diurnal). ---
    core::MeasurementTask task = base.task;
    for (std::size_t k = 0; k < task.ods.size(); ++k) {
      double rate = task.expected_packets[k] / task.interval_sec;
      rate *= pattern.factor(t);
      for (const auto& spike : spikes) {
        if (spike.od == task.ods[k] && spike.active_at(t))
          rate *= spike.factor;
      }
      task.expected_packets[k] = rate * task.interval_sec;
    }

    core::ProblemOptions options;
    options.theta = 100000.0;
    const core::PlacementProblem problem(graph, task, measured, options);

    // Cold vs warm solve (warm from the previous epoch's rates).
    const core::PlacementSolution cold = core::solve_placement(problem);
    core::PlacementSolution current =
        have_rates ? core::resolve_warm(problem, running_rates) : cold;
    running_rates = current.rates;
    have_rates = true;

    // --- Verification: sample the *true* traffic at the chosen rates. ---
    traffic::TrafficMatrix task_true;
    for (std::size_t k = 0; k < task.ods.size(); ++k)
      task_true.push_back(
          {task.ods[k], task.expected_packets[k] / task.interval_sec});
    Rng flow_rng = rng.split(1000 + hour);
    const auto flows = traffic::generate_all_flows(flow_rng, task_true);
    const auto rhos =
        sampling::effective_rates_approx(problem.routing(), current.rates);
    std::vector<RunningStats> acc(task.ods.size());
    Rng sim_rng = rng.split(2000 + hour);
    for (int run = 0; run < 5; ++run) {
      const auto counts = sampling::simulate_sampling(
          sim_rng, problem.routing(), flows, current.rates);
      const auto a = estimate::accuracies(counts, rhos);
      for (std::size_t k = 0; k < a.size(); ++k) acc[k].add(a[k]);
    }
    double avg = 0.0, worst = 1.0;
    std::size_t worst_k = 0;
    for (std::size_t k = 0; k < acc.size(); ++k) {
      avg += acc[k].mean();
      if (acc[k].mean() < worst) {
        worst = acc[k].mean();
        worst_k = k;
      }
    }
    avg /= static_cast<double>(acc.size());

    char label[32];
    std::snprintf(label, sizeof(label), "%02d:00-%02d:00", hour, hour + 2);
    table.add_row(
        {label, fmt_fixed(pattern.factor(t), 2),
         fmt_fixed(problem.budget_used(current.rates) / options.theta, 2),
         std::to_string(cold.iterations), std::to_string(current.iterations),
         fmt_fixed(avg, 3), fmt_fixed(worst, 3),
         "JANET-" + graph.node(task.ods[worst_k].dst).name});
    (void)tomo;
  }

  std::cout << table.render();
  std::printf(
      "\nnotes: the 11:00/13:00 epochs include the 50x JANET-LU anomaly —"
      " re-optimization\nshifts budget towards FR-LU automatically; warm"
      " starts cut solver iterations\nroughly in half once the system is"
      " in steady state.\n");
  return 0;
}
