// Continuous operation: one replayed day of GEANT traffic under the
// streaming re-optimization loop (src/control/), hosted by the placement
// service (src/serve/).
//
// The day's script: a diurnal cycle peaking at 14:00 (20% swing), the
// UK-NL link down from 08:00 to 16:00, and an 8x surge on three JANET OD
// pairs from 18:00 to 19:00. Every 5-minute bin the loop is fed what a
// real telemetry plane would deliver:
//   - link loads from simulated SNMP counter polls (telemetry::), and
//   - per-OD rate estimates inverted from NetFlow records sampled *at
//     the rates the loop itself deployed* (sampling:: X_k / rho_k) — the
//     measurement loop is closed: the placement in force produces the
//     estimates that drive the next placement.
// An injected obs::ManualClock drives every timestamp and deadline, so
// the whole day replays deterministically in seconds of wall time, and
// an every-bin oracle re-solve runs alongside (config.track_oracle) to
// show tracked utility staying within a few percent of always-fresh
// optima at a fraction of the router pushes.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "netmon.hpp"
#include "util/table.hpp"

namespace {

std::string hhmm(int bin) {
  const int minutes = (bin - 1) * 5;
  char out[8];
  std::snprintf(out, sizeof(out), "%02d:%02d", minutes / 60, minutes % 60);
  return out;
}

}  // namespace

int main() {
  using namespace netmon;
  using namespace std::chrono_literals;

  std::printf("== continuous operation: a replayed day under the control"
              " loop ==\n\n");

  const core::GeantScenario base = core::make_geant_scenario();
  const auto& graph = base.net.graph;
  const double interval = base.task.interval_sec;  // 300 s bins

  // The day's script.
  const traffic::DiurnalPattern pattern(0.2, 14.0 * 3600.0);
  std::vector<traffic::AnomalySpike> spikes;
  for (int k = 0; k < 3; ++k) {
    traffic::AnomalySpike spike;
    spike.od = base.task.ods[static_cast<std::size_t>(k)];
    spike.start_sec = 18.0 * 3600.0;
    spike.end_sec = 19.0 * 3600.0;
    spike.factor = 8.0;
    spikes.push_back(spike);
  }
  const topo::LinkId uk_nl = *graph.find_link("UK", "NL");
  constexpr int kBins = 288;             // one day of 5-minute bins
  constexpr int kFailBin = 97;           // 08:00: UK-NL goes down
  constexpr int kRecoverBin = 193;       // 16:00: ...and comes back

  // One clock for the server, the loop, and every flight-recorder event.
  obs::ManualClock clock;
  serve::ServerOptions service;
  service.clock = &clock;
  service.threads = 4;
  service.flight_recorder = 4096;  // hold the full day's events
  serve::Server server(graph, base.task, base.loads, service);

  control::ControlConfig config;
  config.track_oracle = true;  // the regret reference: re-solve every bin
  server.start_control(config);
  const control::ControlLoop& loop = *server.control_loop();

  Rng rng(2026);
  TextTable table({"window", "diurnal", "innov rms", "resolves", "pushes",
                   "monitors", "utility", "oracle"});
  double loop_utility = 0.0;
  double oracle_utility = 0.0;
  int window_resolves = 0;
  int window_pushes = 0;

  for (int bin = 1; bin <= kBins; ++bin) {
    const double t = (bin - 1) * interval;
    const traffic::TrafficMatrix tm =
        traffic::matrix_at(base.demands, pattern, spikes, t);
    routing::LinkSet failed;
    if (bin >= kFailBin && bin < kRecoverBin) failed.insert(uk_nl);

    control::BinObservation bin_obs;
    bin_obs.failed = failed;

    // SNMP plane: two minutes of per-second Poisson counter increments,
    // polled every 60 s.
    Rng snmp_rng = rng.split(bin);
    bin_obs.loads =
        telemetry::measured_loads(graph, tm, 120.0, 60.0, snmp_rng, failed);

    // NetFlow plane: sample the bin's true task flows at the rates the
    // loop currently has deployed, then invert the counts back to OD
    // rates (X_k / rho_k). Before the first placement exists there are
    // no flow records at all — the loop falls back to tomogravity on the
    // loads (and JANET ODs the inversion cannot see coast on the prior).
    if (loop.have_rates()) {
      // Packet-count sampling only sees per-OD totals, so each OD's bin
      // is its Poisson packet total in a single flow record (the full
      // heavy-tailed populations are exercised in the accuracy benches).
      Rng flow_rng = rng.split(1000 + bin);
      std::vector<std::vector<traffic::Flow>> flows(base.task.ods.size());
      for (std::size_t k = 0; k < base.task.ods.size(); ++k) {
        std::poisson_distribution<std::uint64_t> packets(
            traffic::demand_for(tm, base.task.ods[k]) * interval);
        traffic::Flow flow;
        flow.packets = packets(flow_rng);
        flow.od_index = static_cast<std::uint32_t>(k);
        flows[k].push_back(flow);
      }
      const auto matrix =
          routing::RoutingMatrix::single_path(graph, base.task.ods, failed);
      const auto rhos =
          sampling::effective_rates_approx(matrix, loop.rates());
      Rng sim_rng = rng.split(2000 + bin);
      const auto counts =
          sampling::simulate_sampling(sim_rng, matrix, flows, loop.rates());
      bin_obs.od_rates.assign(counts.size(), control::kMissing);
      for (std::size_t k = 0; k < counts.size(); ++k)
        if (rhos[k] > 1e-9)
          bin_obs.od_rates[k] =
              static_cast<double>(counts[k].sampled_packets) /
              (rhos[k] * interval);
    }

    const control::StepResult r = server.control_step(bin_obs);
    loop_utility += r.utility;
    oracle_utility += r.oracle_utility;
    if (r.resolved) ++window_resolves;
    if (r.reconfigured) ++window_pushes;

    // Narrate the contract events; routine diurnal churn goes in the
    // table.
    if (r.reason == control::ResolveReason::kFirstBin ||
        r.reason == control::ResolveReason::kTopology)
      std::printf("[%s] %s -> %s (%zu monitors, utility %.4g)\n",
                  hhmm(bin).c_str(), control::to_string(r.reason),
                  r.reconfigured ? "reconfigured" : "held",
                  r.active_monitors, r.utility);

    if (bin % 24 == 0) {  // one row per 2 hours
      table.add_row({hhmm(bin - 23) + "-" + hhmm(bin + 1),
                     fmt_fixed(pattern.factor(t), 2),
                     fmt_fixed(r.tracked.innovation_rms, 2),
                     std::to_string(window_resolves),
                     std::to_string(window_pushes),
                     std::to_string(r.active_monitors),
                     fmt_sci(r.utility, 3), fmt_sci(r.oracle_utility, 3)});
      window_resolves = 0;
      window_pushes = 0;
    }

    clock.advance(300s);
  }

  std::printf("\n%s", table.render().c_str());
  const obs::RegistrySnapshot metrics = server.metrics().snapshot();
  const obs::MetricSnapshot* outliers =
      metrics.find("netmon_control_outliers_total");
  std::printf(
      "\nday summary: %d bins, %d re-solves, %d pushes (the oracle pushes"
      " all %d),\n%d hysteresis holds, %d gated outlier estimates\n"
      "tracked utility / every-bin-oracle utility = %.4f (time-averaged)\n",
      loop.bins(), loop.resolves(), loop.reconfigurations(), kBins,
      loop.holds(), outliers != nullptr ? static_cast<int>(outliers->value) : 0,
      loop_utility / oracle_utility);
  std::printf(
      "\nnotes: the 08:00 failure and 16:00 recovery reconfigure on the"
      " bin they happen;\nthe 18:00 surge is first gated as an outlier,"
      " then re-seeds the tracker and\ntriggers an innovation re-solve;"
      " in between, the budget contract tracks the\ndiurnal swing with"
      " far fewer pushes than an every-bin re-solve.\n");

  const char* obs_dir = std::getenv("NETMON_OBS_DIR");
  if (obs_dir != nullptr) {
    const std::string dir(obs_dir);
    std::ofstream(dir + "/control_metrics.prom") << server.prometheus();
    std::ofstream(dir + "/control_flight.jsonl")
        << server.flight_recorder().jsonl();
    std::printf("\nobs artifacts: %s/{control_metrics.prom,"
                "control_flight.jsonl} (%zu flight events)\n",
                obs_dir, server.flight_recorder().dump().size());
  }
  return 0;
}
