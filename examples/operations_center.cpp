// Operations center: every control-plane substrate wired together.
//
// What a deployment of the paper's system actually looks like:
//   - the BGP RIB maps customer prefixes to egress PoPs (Feldmann [4]),
//   - the IS-IS LSDB tells the controller which links are down,
//   - SNMP counters supply measured link loads,
//   - the MonitorController re-optimizes with hysteresis and warm starts,
//   - accepted placements are rendered as router sampling stanzas.
// The run simulates four cycles: steady state, a noisy-load cycle (no
// reconfiguration thanks to hysteresis), a link failure advertised via an
// LSP, and recovery.
#include <cstdio>
#include <iostream>

#include "netmon.hpp"
#include "util/table.hpp"

int main() {
  using namespace netmon;

  std::printf("== operations center: BGP + IS-IS + SNMP + controller ==\n\n");

  const core::GeantScenario scenario = core::make_geant_scenario();
  const auto& graph = scenario.net.graph;

  // --- Control plane 1: BGP-derived egress mapping. ---
  bgp::Rib rib;
  std::uint32_t peer = 1;
  for (const topo::Node& node : graph.nodes()) {
    // Each PoP announces its block; JANET's block is also announced at
    // the UK PoP with a better local-pref from the customer session.
    rib.insert({traffic::pop_prefix(node.id), node.id, 100, 2, peer++});
  }
  rib.insert({traffic::pop_prefix(scenario.net.janet), scenario.net.uk, 200,
              1, peer++});
  const netflow::EgressMap egress = rib.to_egress_map();
  std::printf("BGP RIB: %zu prefixes, %zu routes -> LPM map with %zu"
              " entries\n",
              rib.prefix_count(), rib.route_count(), egress.size());

  // --- Control plane 2: IS-IS LSDB. ---
  isis::LinkStateDb lsdb(graph);
  for (const isis::Lsp& lsp : isis::LinkStateDb::full_database(graph, 1))
    lsdb.install(lsp);
  std::printf("IS-IS LSDB complete: %s; failed links: %zu\n\n",
              lsdb.complete() ? "yes" : "no", lsdb.failed_links().size());

  // --- The controller loop. ---
  core::MonitorController controller(graph, scenario.task);
  Rng rng(7);
  const topo::LinkId uk_nl = *graph.find_link("UK", "NL");

  TextTable table({"cycle", "event", "reconfigured", "utility gain",
                   "active monitors"});
  auto run = [&](const char* event, double load_noise,
                 std::uint32_t lsp_seq, bool link_down) {
    // IS-IS event, if any.
    if (lsp_seq > 1) {
      isis::Lsp update;
      update.origin = graph.link(uk_nl).src;
      update.sequence = lsp_seq;
      for (topo::LinkId id : graph.out_links(update.origin))
        update.adjacencies.push_back(
            isis::Adjacency{id, !(link_down && id == uk_nl)});
      lsdb.install(update);
    }
    const routing::LinkSet failed = lsdb.failed_links();

    // SNMP-measured loads on the LSDB's topology view.
    traffic::TrafficMatrix demands = scenario.demands;
    for (traffic::Demand& d : demands)
      d.pkt_per_sec *= 1.0 + rng.uniform(-load_noise, load_noise);
    Rng snmp = rng.split(controller.cycles() + 1);
    const traffic::LinkLoads loads =
        telemetry::measured_loads(graph, demands, 120.0, 60.0, snmp, failed);

    const core::CycleResult cycle = controller.run_cycle(loads, failed);
    table.add_row({std::to_string(cycle.cycle), event,
                   cycle.reconfigured ? "yes" : "no (hysteresis)",
                   fmt_sci(cycle.utility_gain, 2),
                   std::to_string(cycle.solution.active_monitors.size())});
    return cycle;
  };

  run("cold start", 0.0, 1, false);
  run("load noise 0.5%", 0.005, 1, false);
  const core::CycleResult failure = run("UK->NL fails (LSP seq 2)", 0.0, 2, true);
  run("UK->NL recovers (LSP seq 3)", 0.0, 3, false);
  std::cout << table.render() << "\n";

  // --- Deployment artifacts for the failure-epoch placement. ---
  const auto configs =
      core::router_configs(failure.solution, graph);
  std::printf("router configs for the failure epoch (%zu routers, worst"
              " 1-in-N quantization error %.3f%%):\n\n",
              configs.size(),
              100.0 * core::worst_quantization_error(configs));
  std::printf("%s", core::render_config(configs.front(), graph).c_str());

  std::printf("\nJSON report (truncated): %.120s...\n",
              core::report_json(failure.solution, graph).c_str());
  return 0;
}
