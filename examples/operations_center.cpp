// Operations center: every control-plane substrate wired into the
// multi-tenant placement query service.
//
// What a deployment of the paper's system actually looks like:
//   - the BGP RIB maps customer prefixes to egress PoPs (Feldmann [4]),
//   - the IS-IS LSDB tells the operator which links are down,
//   - SNMP counters supply measured link loads,
//   - placement queries go through tenant::TenantService, the
//     long-running multi-tenant query service: each network (here the
//     GEANT backbone and the Abilene research network) is a tenant with
//     its own immutable RCU snapshot, admission quota, and slice of the
//     keyed solve cache,
//   - operator consoles reach the service over a REAL TCP socket (the
//     epoll transport) as well as the in-process loopback, and both
//     answer bit-identically,
//   - accepted placements are rendered as router sampling stanzas.
// The run also demonstrates the multi-tenant contract: a repeated query
// is an exact cache hit replayed without invoking the solver, a
// near-miss warm-starts from the nearest cached neighbour, a tenant
// publish swaps the model under live traffic (and implicitly
// invalidates the tenant's cached answers — epochs key the cache),
// quota-exhausted tenants get typed kRejectedQuota answers, and
// backpressure stays typed — never a hang, never a silent drop.
//
// Environment knobs:
//   NETMON_OBS_DIR       — directory for trace/metrics/flight artifacts
//   NETMON_TCP_PORT      — TCP listen port (default 0 = ephemeral)
//   NETMON_CACHE_ENTRIES — solve cache capacity (default 256; 0 = off)
//   NETMON_QUOTA_RPS     — Abilene's sustained requests/sec (default 2)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "netmon.hpp"
#include "util/table.hpp"

namespace {

double env_or(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

bool bit_identical(const netmon::core::PlacementSolution& a,
                   const netmon::core::PlacementSolution& b) {
  return a.rates == b.rates && a.total_utility == b.total_utility &&
         a.lambda == b.lambda && a.iterations == b.iterations;
}

}  // namespace

int main() {
  using namespace netmon;

  // With NETMON_OBS_DIR set, the run leaves its observability artifacts
  // behind: the per-iteration solver trace, the Prometheus metrics
  // snapshot (serve + solver + cache + tenant families, one registry),
  // and the flight-recorder event log.
  const char* obs_dir = std::getenv("NETMON_OBS_DIR");

  std::printf("== operations center: BGP + IS-IS + SNMP + multi-tenant"
              " query service ==\n\n");

  const core::GeantScenario scenario = core::make_geant_scenario();
  const auto& graph = scenario.net.graph;

  // --- Control plane 1: BGP-derived egress mapping. ---
  bgp::Rib rib;
  std::uint32_t peer = 1;
  for (const topo::Node& node : graph.nodes()) {
    // Each PoP announces its block; JANET's block is also announced at
    // the UK PoP with a better local-pref from the customer session.
    rib.insert({traffic::pop_prefix(node.id), node.id, 100, 2, peer++});
  }
  rib.insert({traffic::pop_prefix(scenario.net.janet), scenario.net.uk, 200,
              1, peer++});
  const netflow::EgressMap egress = rib.to_egress_map();
  std::printf("BGP RIB: %zu prefixes, %zu routes -> LPM map with %zu"
              " entries\n",
              rib.prefix_count(), rib.route_count(), egress.size());

  // --- Control plane 2: IS-IS LSDB. ---
  isis::LinkStateDb lsdb(graph);
  for (const isis::Lsp& lsp : isis::LinkStateDb::full_database(graph, 1))
    lsdb.install(lsp);
  const topo::LinkId uk_nl = *graph.find_link("UK", "NL");
  std::printf("IS-IS LSDB complete: %s; failed links: %zu\n",
              lsdb.complete() ? "yes" : "no", lsdb.failed_links().size());

  // --- Control plane 3: SNMP-measured link loads. ---
  Rng snmp(7);
  const traffic::LinkLoads loads = telemetry::measured_loads(
      graph, scenario.demands, 120.0, 60.0, snmp, {});
  std::printf("SNMP: %zu link load measurements\n\n", loads.size());

  // --- The multi-tenant query service. ---
  // One injected clock drives deadline stamping, quota refill, and
  // flight-recorder timestamps, so the backpressure demonstrations below
  // age requests out by advancing time instead of sleeping — the run is
  // deterministic and never waits on the wall clock.
  obs::ManualClock clock;
  obs::SolverTrace trace(1 << 14);

  tenant::TenantRegistry registry(&clock);

  tenant::TenantServiceOptions service_options;
  service_options.queue_capacity = 16;
  service_options.batch.max_batch = 8;
  service_options.clock = &clock;
  service_options.cache.max_entries =
      static_cast<std::size_t>(env_or("NETMON_CACHE_ENTRIES", 256));
  if (obs_dir != nullptr) service_options.solver_trace = &trace;
  tenant::TenantService service(registry, service_options);

  // Tenant 1: the GEANT backbone, from the control planes above. First
  // publish makes it the default tenant for requests with no name.
  tenant::TenantModel geant_model;
  geant_model.graph = graph;
  geant_model.task = scenario.task;
  geant_model.loads = loads;
  std::uint64_t geant_epoch = registry.publish("geant", geant_model);

  // Tenant 2: the Abilene research network, its own task and loads — a
  // second customer of the same serving fleet (the paper's §V-C
  // generalization network).
  const topo::AbileneNetwork abilene = topo::make_abilene();
  tenant::TenantModel abilene_model;
  abilene_model.graph = abilene.graph;
  abilene_model.task.interval_sec = 300.0;
  traffic::TrafficMatrix abilene_demands = traffic::gravity_matrix(
      abilene.graph, {.total_pkt_per_sec = 6.0e5, .min_mass = 1e-12});
  for (const auto& [name, rate] : topo::abilene_task_rates()) {
    const topo::NodeId dst = *abilene.graph.find_node(name);
    abilene_model.task.ods.push_back({abilene.customer, dst});
    abilene_model.task.expected_packets.push_back(
        rate * abilene_model.task.interval_sec);
    abilene_demands.push_back({{abilene.customer, dst}, rate});
  }
  abilene_model.loads = traffic::link_loads(abilene.graph, abilene_demands);
  abilene_model.problem.theta = 50000.0;
  registry.publish("abilene", abilene_model);
  std::printf("tenants: %zu published (default '%s'), geant epoch %llu\n",
              registry.size(), registry.default_tenant().c_str(),
              static_cast<unsigned long long>(geant_epoch));

  // --- Two consoles: in-process loopback and a real TCP socket. ---
  serve::LoopbackTransport console(service, /*via_wire=*/true);

  serve::TcpServerOptions tcp_options;
  tcp_options.port =
      static_cast<std::uint16_t>(env_or("NETMON_TCP_PORT", 0));
  serve::TcpServer tcp_server(service, tcp_options);
  serve::TcpClient remote("127.0.0.1", tcp_server.port());
  std::printf("service up: %u worker threads, queue capacity %zu, cache"
              " capacity %zu, TCP on 127.0.0.1:%u\n\n",
              service.threads(), service_options.queue_capacity,
              service_options.cache.max_entries, tcp_server.port());

  // Query 1 (loopback): the running GEANT placement. Empty tenant field
  // resolves to the default.
  serve::Request solve;
  solve.id = 1;
  const serve::Response running = console.call(solve);
  std::printf("[query 1] loopback solve -> tenant '%s': %s, %zu active"
              " monitors, utility %.3f (cache: %s)\n",
              running.tenant.c_str(), serve::to_string(running.status),
              running.solutions[0].active_monitors.size(),
              running.solutions[0].total_utility,
              serve::to_string(running.cache));

  // Query 2 (TCP): the same query over the socket. Same tenant, same
  // epoch, same effective parameters -> same fingerprint: the service
  // replays the cached answer bit-identically without invoking the
  // solver, and the wire transport carries it unchanged.
  const std::uint64_t solves_before = service.solver_invocations();
  serve::Request solve_remote;
  solve_remote.id = 2;
  const serve::Response remote_running = remote.send(solve_remote).get();
  std::printf("[query 2] TCP solve -> cache: %s, bit-identical to"
              " loopback: %s, solver invocations unchanged: %s\n",
              serve::to_string(remote_running.cache),
              bit_identical(remote_running.solutions[0],
                            running.solutions[0])
                  ? "yes"
                  : "NO",
              service.solver_invocations() == solves_before ? "yes" : "NO");

  // Query 3: the Abilene tenant — a different network answered by the
  // same service, isolated by name.
  serve::Request abilene_solve;
  abilene_solve.id = 3;
  abilene_solve.tenant = "abilene";
  const serve::Response abilene_running = console.call(abilene_solve);
  std::printf("[query 3] tenant 'abilene': %s, %zu active monitors,"
              " utility %.3f\n",
              serve::to_string(abilene_running.status),
              abilene_running.solutions[0].active_monitors.size(),
              abilene_running.solutions[0].total_utility);

  // Query 4: what-if failure fleet on GEANT, warm-started from the
  // running rates (the LSDB says which links to worry about; here:
  // UK->NL and its reverse). A client-provided warm start is left alone
  // by the cache.
  serve::Request what_if;
  what_if.id = 4;
  what_if.kind = serve::RequestKind::kWhatIfBatch;
  what_if.what_if = {{uk_nl}, {*graph.find_link("NL", "UK")}};
  what_if.warm_start = running.solutions[0].rates;
  const serve::Response failures = console.call(what_if);
  TextTable fail_table({"scenario", "status", "monitors", "utility"});
  for (std::size_t i = 0; i < failures.solutions.size(); ++i)
    fail_table.add_row(
        {"fail link " + std::to_string(what_if.what_if[i][0]),
         serve::to_string(failures.status),
         std::to_string(failures.solutions[i].active_monitors.size()),
         fmt_sci(failures.solutions[i].total_utility, 3)});
  std::printf("[query 4] what-if batch (served in a batch of %u):\n%s\n",
              failures.batch_size, fail_table.render().c_str());

  // Query 5: theta sensitivity sweep on GEANT.
  serve::Request sweep;
  sweep.id = 5;
  sweep.kind = serve::RequestKind::kThetaSweep;
  sweep.thetas = {40000.0, 70000.0, 100000.0, 160000.0, 250000.0};
  const serve::Response sensitivity = console.call(sweep);
  TextTable sweep_table({"theta", "utility", "lambda", "monitors"});
  for (const serve::ThetaPoint& point : sensitivity.sweep)
    sweep_table.add_row({fmt_sci(point.theta, 1),
                         fmt_sci(point.total_utility, 3),
                         fmt_sci(point.lambda, 2),
                         std::to_string(point.active_monitors)});
  std::printf("[query 5] theta sweep:\n%s\n", sweep_table.render().c_str());

  // Query 6: a near-miss — theta 4%% off the cached running placement.
  // No exact entry exists, so the solve warm-starts from the nearest
  // cached neighbour's rates instead of from zero.
  serve::Request near_miss;
  near_miss.id = 6;
  near_miss.theta = 104000.0;
  const serve::Response warmed = console.call(near_miss);
  std::printf("[query 6] theta 104000 near-miss -> cache: %s, %llu"
              " iterations\n",
              serve::to_string(warmed.cache),
              static_cast<unsigned long long>(warmed.solutions[0].iterations));

  // --- RCU snapshot swap under live traffic. ---
  // SNMP re-measures (a new noise draw), the operator republishes GEANT.
  // The swap is one atomic pointer store: in-flight requests keep the
  // snapshot they resolved against, and the new epoch implicitly
  // invalidates every cached GEANT answer — the repeated query 1 is now
  // a fresh solve, not a stale hit.
  Rng resnmp(8);
  tenant::TenantModel remeasured = geant_model;
  remeasured.loads = telemetry::measured_loads(graph, scenario.demands,
                                               120.0, 60.0, resnmp, {});
  geant_epoch = registry.publish("geant", remeasured);
  serve::Request resolve_again;
  resolve_again.id = 7;
  const serve::Response after_swap = console.call(resolve_again);
  std::printf("[swap] geant republished as epoch %llu -> repeated query 1:"
              " cache %s (old epoch's entries unreachable), utility %.3f\n",
              static_cast<unsigned long long>(geant_epoch),
              serve::to_string(after_swap.cache),
              after_swap.solutions[0].total_utility);

  // --- Per-tenant quota. ---
  // Abilene gets a token bucket: burst 4, NETMON_QUOTA_RPS sustained.
  // Eight back-to-back submissions on the frozen clock spend the burst
  // and the rest are typed kRejectedQuota — admission never blocks and
  // never silently drops, and GEANT's quota is untouched.
  tenant::QuotaConfig abilene_quota;
  abilene_quota.tokens_per_sec = env_or("NETMON_QUOTA_RPS", 2.0);
  abilene_quota.burst = 4.0;
  registry.set_quota("abilene", abilene_quota);
  std::vector<std::future<serve::Response>> burst;
  for (std::uint64_t i = 0; i < 8; ++i) {
    serve::Request query;
    query.id = 10 + i;
    query.tenant = "abilene";
    burst.push_back(console.send(std::move(query)));
  }
  std::size_t quota_rejected = 0;
  for (auto& future : burst)
    if (future.get().status == serve::ResponseStatus::kRejectedQuota)
      ++quota_rejected;
  std::printf("[quota] 8 abilene submissions against burst 4 @ %.1f rps ->"
              " %zu typed kRejectedQuota\n",
              abilene_quota.tokens_per_sec, quota_rejected);

  // --- Backpressure demonstration. ---
  // A deadline the service cannot meet is answered with a typed
  // kDeadlineExpired, not a hang: pause the dispatcher so the request
  // ages out in the queue. Distinct thetas make every request a cache
  // miss — hits would be answered synchronously and never park.
  service.pause();
  serve::Request urgent;
  urgent.id = 20;
  urgent.theta = 77700.0;
  urgent.deadline_ms = 1;
  auto urgent_future = console.send(urgent);

  // And submissions beyond the queue bound are rejected immediately.
  std::size_t rejected = 0;
  std::vector<std::future<serve::Response>> flood;
  for (std::uint64_t i = 0; i < 24; ++i) {
    serve::Request query;
    query.id = 100 + i;
    query.theta = 90000.0 + 100.0 * static_cast<double>(i);
    flood.push_back(console.send(std::move(query)));
  }
  clock.advance(std::chrono::milliseconds(10));  // age it out, no sleep
  service.resume();
  const serve::Response urgent_response = urgent_future.get();
  std::printf("[deadline] 1 ms deadline while paused -> %s (%s)\n",
              serve::to_string(urgent_response.status),
              urgent_response.error.c_str());
  for (auto& future : flood)
    if (future.get().status == serve::ResponseStatus::kRejectedQueueFull)
      ++rejected;
  std::printf("[flood] 24 submissions against capacity %zu -> %zu typed"
              " rejections, rest served\n\n",
              service_options.queue_capacity, rejected);

  // --- Deployment artifacts for the failure-epoch placement. ---
  const auto configs = core::router_configs(failures.solutions[0], graph);
  std::printf("router configs for the failure epoch (%zu routers, worst"
              " 1-in-N quantization error %.3f%%):\n\n",
              configs.size(),
              100.0 * core::worst_quantization_error(configs));
  std::printf("%s", core::render_config(configs.front(), graph).c_str());

  const serve::StatsSnapshot stats = service.stats();
  std::printf("\nservice stats: submitted %llu, served_ok %llu, batches"
              " %llu, problems_solved %llu\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.served_ok),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.problems_solved));
  std::printf("cache: %zu entries; tcp: %llu protocol errors\n",
              service.cache().size(),
              static_cast<unsigned long long>(tcp_server.protocol_errors()));

  if (obs_dir != nullptr) {
    const std::string dir(obs_dir);
    std::ofstream(dir + "/trace.jsonl") << trace.jsonl();
    std::ofstream(dir + "/metrics.prom") << service.prometheus();
    std::ofstream(dir + "/flight.jsonl") << service.flight_recorder().jsonl();
    std::printf("obs artifacts: %s/{trace.jsonl,metrics.prom,flight.jsonl}"
                " (%zu trace records, %zu flight events)\n",
                obs_dir, trace.snapshot().size(),
                service.flight_recorder().dump().size());
  }
  return 0;
}
