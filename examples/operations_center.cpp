// Operations center: every control-plane substrate wired into the
// placement query service.
//
// What a deployment of the paper's system actually looks like:
//   - the BGP RIB maps customer prefixes to egress PoPs (Feldmann [4]),
//   - the IS-IS LSDB tells the operator which links are down,
//   - SNMP counters supply measured link loads,
//   - placement queries go through serve::Server, the long-running query
//     service: operator consoles submit solves, failure what-ifs, and
//     theta sweeps over a LoopbackTransport and get typed responses,
//   - accepted placements are rendered as router sampling stanzas.
// The run also demonstrates the service's backpressure contract: a
// request with an impossible deadline gets a typed kDeadlineExpired, and
// submissions beyond the queue bound get a typed kRejectedQueueFull —
// never a hang, never a silent drop.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "netmon.hpp"
#include "util/table.hpp"

int main() {
  using namespace netmon;

  // With NETMON_OBS_DIR set, the run leaves its observability artifacts
  // behind: the per-iteration solver trace, the Prometheus metrics
  // snapshot, and the flight-recorder event log.
  const char* obs_dir = std::getenv("NETMON_OBS_DIR");

  std::printf("== operations center: BGP + IS-IS + SNMP + query service ==\n\n");

  const core::GeantScenario scenario = core::make_geant_scenario();
  const auto& graph = scenario.net.graph;

  // --- Control plane 1: BGP-derived egress mapping. ---
  bgp::Rib rib;
  std::uint32_t peer = 1;
  for (const topo::Node& node : graph.nodes()) {
    // Each PoP announces its block; JANET's block is also announced at
    // the UK PoP with a better local-pref from the customer session.
    rib.insert({traffic::pop_prefix(node.id), node.id, 100, 2, peer++});
  }
  rib.insert({traffic::pop_prefix(scenario.net.janet), scenario.net.uk, 200,
              1, peer++});
  const netflow::EgressMap egress = rib.to_egress_map();
  std::printf("BGP RIB: %zu prefixes, %zu routes -> LPM map with %zu"
              " entries\n",
              rib.prefix_count(), rib.route_count(), egress.size());

  // --- Control plane 2: IS-IS LSDB. ---
  isis::LinkStateDb lsdb(graph);
  for (const isis::Lsp& lsp : isis::LinkStateDb::full_database(graph, 1))
    lsdb.install(lsp);
  const topo::LinkId uk_nl = *graph.find_link("UK", "NL");
  std::printf("IS-IS LSDB complete: %s; failed links: %zu\n",
              lsdb.complete() ? "yes" : "no", lsdb.failed_links().size());

  // --- Control plane 3: SNMP-measured link loads. ---
  Rng snmp(7);
  const traffic::LinkLoads loads = telemetry::measured_loads(
      graph, scenario.demands, 120.0, 60.0, snmp, {});
  std::printf("SNMP: %zu link load measurements\n\n", loads.size());

  // --- The query service. ---
  // One injected clock drives deadline stamping, expiry checks, and
  // flight-recorder timestamps, so the backpressure demonstration below
  // ages requests out by advancing time instead of sleeping — the run is
  // deterministic and never waits on the wall clock.
  obs::ManualClock clock;
  obs::SolverTrace trace(1 << 14);
  serve::ServerOptions service_options;
  service_options.queue_capacity = 16;
  service_options.batch.max_batch = 8;
  service_options.clock = &clock;
  if (obs_dir != nullptr) service_options.solver_trace = &trace;
  serve::Server server(graph, scenario.task, loads, service_options);
  serve::LoopbackTransport console(server, /*via_wire=*/true);
  std::printf("service up: %u worker threads, queue capacity %zu, wire"
              " transport\n\n",
              server.threads(), service_options.queue_capacity);

  // Query 1: the running placement.
  serve::Request solve;
  solve.id = 1;
  const serve::Response running = console.call(solve);
  std::printf("[query 1] solve: %s, %zu active monitors, utility %.3f\n",
              serve::to_string(running.status),
              running.solutions[0].active_monitors.size(),
              running.solutions[0].total_utility);

  // Query 2: what-if failure fleet, warm-started from the running rates
  // (the LSDB says which links to worry about; here: UK->NL and its
  // reverse).
  serve::Request what_if;
  what_if.id = 2;
  what_if.kind = serve::RequestKind::kWhatIfBatch;
  what_if.what_if = {{uk_nl}, {*graph.find_link("NL", "UK")}};
  what_if.warm_start = running.solutions[0].rates;
  const serve::Response failures = console.call(what_if);
  TextTable fail_table({"scenario", "status", "monitors", "utility"});
  for (std::size_t i = 0; i < failures.solutions.size(); ++i)
    fail_table.add_row(
        {"fail link " + std::to_string(what_if.what_if[i][0]),
         serve::to_string(failures.status),
         std::to_string(failures.solutions[i].active_monitors.size()),
         fmt_sci(failures.solutions[i].total_utility, 3)});
  std::printf("[query 2] what-if batch (served in a batch of %u):\n%s\n",
              failures.batch_size, fail_table.render().c_str());

  // Query 3: theta sensitivity sweep.
  serve::Request sweep;
  sweep.id = 3;
  sweep.kind = serve::RequestKind::kThetaSweep;
  sweep.thetas = {40000.0, 70000.0, 100000.0, 160000.0, 250000.0};
  const serve::Response sensitivity = console.call(sweep);
  TextTable sweep_table({"theta", "utility", "lambda", "monitors"});
  for (const serve::ThetaPoint& point : sensitivity.sweep)
    sweep_table.add_row({fmt_sci(point.theta, 1),
                         fmt_sci(point.total_utility, 3),
                         fmt_sci(point.lambda, 2),
                         std::to_string(point.active_monitors)});
  std::printf("[query 3] theta sweep:\n%s\n", sweep_table.render().c_str());

  // --- Backpressure demonstration. ---
  // A deadline the service cannot meet is answered with a typed
  // kDeadlineExpired, not a hang: pause the dispatcher so the request
  // ages out in the queue.
  server.pause();
  serve::Request urgent;
  urgent.id = 4;
  urgent.deadline_ms = 1;
  auto urgent_future = console.send(urgent);

  // And submissions beyond the queue bound are rejected immediately.
  std::size_t rejected = 0;
  std::vector<std::future<serve::Response>> flood;
  for (std::uint64_t i = 0; i < 24; ++i) {
    serve::Request query;
    query.id = 100 + i;
    flood.push_back(console.send(std::move(query)));
  }
  clock.advance(std::chrono::milliseconds(10));  // age it out, no sleep
  server.resume();
  const serve::Response urgent_response = urgent_future.get();
  std::printf("[query 4] 1 ms deadline while paused -> %s (%s)\n",
              serve::to_string(urgent_response.status),
              urgent_response.error.c_str());
  for (auto& future : flood)
    if (future.get().status == serve::ResponseStatus::kRejectedQueueFull)
      ++rejected;
  std::printf("[flood] 24 submissions against capacity %zu -> %zu typed"
              " rejections, rest served\n\n",
              service_options.queue_capacity, rejected);

  // --- Deployment artifacts for the failure-epoch placement. ---
  const auto configs = core::router_configs(failures.solutions[0], graph);
  std::printf("router configs for the failure epoch (%zu routers, worst"
              " 1-in-N quantization error %.3f%%):\n\n",
              configs.size(),
              100.0 * core::worst_quantization_error(configs));
  std::printf("%s", core::render_config(configs.front(), graph).c_str());

  std::printf("\nservice stats: %s\n", server.stats_json().c_str());

  if (obs_dir != nullptr) {
    const std::string dir(obs_dir);
    std::ofstream(dir + "/trace.jsonl") << trace.jsonl();
    std::ofstream(dir + "/metrics.prom") << server.prometheus();
    std::ofstream(dir + "/flight.jsonl") << server.flight_recorder().jsonl();
    std::printf("obs artifacts: %s/{trace.jsonl,metrics.prom,flight.jsonl}"
                " (%zu trace records, %zu flight events)\n",
                obs_dir, trace.snapshot().size(),
                server.flight_recorder().dump().size());
  }
  return 0;
}
