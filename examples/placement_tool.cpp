// placement_tool — a small command-line front end to the library.
//
// Usage:
//   placement_tool                      # demo on the built-in GEANT scenario
//   placement_tool --topology FILE --task FILE [options]
//
// Options:
//   --topology FILE   topology in the topo::read_graph text format
//   --task FILE       task file: lines "od <src> <dst> <pkt_per_sec>"
//   --theta N         budget in packets per interval   (default 100000)
//   --interval SEC    measurement interval             (default 300)
//   --alpha X         per-link max sampling rate       (default 1.0)
//   --background PPS  gravity background traffic       (default 1.4e6)
//   --fail SRC DST    fail the link SRC->DST (repeatable)
//   --maximin         optimize the smooth max-min objective
//   --json            print the solution as JSON instead of a table
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/maximin.hpp"
#include "core/report.hpp"
#include "netmon.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace {

using namespace netmon;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--topology FILE --task FILE] [--theta N]\n"
               "          [--interval SEC] [--alpha X] [--background PPS]\n"
               "          [--fail SRC DST]... [--maximin] [--json]\n",
               argv0);
  std::exit(2);
}

core::MeasurementTask read_task(const topo::Graph& graph,
                                const std::string& path,
                                double interval_sec) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open task file: " + path);
  core::MeasurementTask task;
  task.interval_sec = interval_sec;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string kind, src, dst;
    double pps = 0.0;
    if (!(fields >> kind)) continue;
    if (kind != "od" || !(fields >> src >> dst >> pps))
      throw Error("task parse error at line " + std::to_string(line_no) +
                  ": expected 'od <src> <dst> <pkt_per_sec>'");
    const auto s = graph.find_node(src);
    const auto d = graph.find_node(dst);
    if (!s || !d)
      throw Error("task references unknown node at line " +
                  std::to_string(line_no));
    task.ods.push_back({*s, *d});
    task.expected_packets.push_back(pps * interval_sec);
  }
  if (task.ods.empty()) throw Error("task file contains no OD pairs");
  return task;
}

}  // namespace

int main(int argc, char** argv) {
  std::string topology_path, task_path;
  double theta = 100000.0, interval = 300.0, alpha = 1.0;
  double background = 1.4e6;
  bool maximin = false, json = false;
  std::vector<std::pair<std::string, std::string>> failures;

  for (int i = 1; i < argc; ++i) {
    auto need = [&](int extra) {
      if (i + extra >= argc) usage(argv[0]);
    };
    if (!std::strcmp(argv[i], "--topology")) { need(1); topology_path = argv[++i]; }
    else if (!std::strcmp(argv[i], "--task")) { need(1); task_path = argv[++i]; }
    else if (!std::strcmp(argv[i], "--theta")) { need(1); theta = std::atof(argv[++i]); }
    else if (!std::strcmp(argv[i], "--interval")) { need(1); interval = std::atof(argv[++i]); }
    else if (!std::strcmp(argv[i], "--alpha")) { need(1); alpha = std::atof(argv[++i]); }
    else if (!std::strcmp(argv[i], "--background")) { need(1); background = std::atof(argv[++i]); }
    else if (!std::strcmp(argv[i], "--fail")) { need(2); failures.emplace_back(argv[i + 1], argv[i + 2]); i += 2; }
    else if (!std::strcmp(argv[i], "--maximin")) { maximin = true; }
    else if (!std::strcmp(argv[i], "--json")) { json = true; }
    else usage(argv[0]);
  }

  try {
    // Assemble topology + task (user files or the built-in demo).
    topo::GeantNetwork demo;  // keeps the demo graph alive
    topo::Graph user_graph;
    core::MeasurementTask task;
    const bool use_files = !topology_path.empty() || !task_path.empty();
    if (use_files) {
      if (topology_path.empty() || task_path.empty()) usage(argv[0]);
      std::ifstream topo_in(topology_path);
      if (!topo_in) throw Error("cannot open topology: " + topology_path);
      user_graph = topo::read_graph(topo_in);
      task = read_task(user_graph, task_path, interval);
    } else {
      demo = topo::make_geant();
      task = core::janet_task(demo);
      // janet_task assumes a 5-minute interval; rescale if overridden.
      for (double& s : task.expected_packets) s *= interval / task.interval_sec;
      task.interval_sec = interval;
    }
    const topo::Graph& graph = use_files ? user_graph : demo.graph;

    routing::LinkSet failed;
    for (const auto& [src, dst] : failures) {
      const auto link = graph.find_link(src, dst);
      if (!link) throw Error("cannot fail unknown link " + src + "->" + dst);
      failed.insert(*link);
    }

    // Demands: gravity background + the task itself.
    traffic::TrafficMatrix demands = traffic::gravity_matrix(
        graph, {.total_pkt_per_sec = background, .min_mass = 1e-12});
    for (std::size_t k = 0; k < task.ods.size(); ++k)
      demands.push_back(
          {task.ods[k], task.expected_packets[k] / task.interval_sec});
    const traffic::LinkLoads loads =
        traffic::link_loads(graph, demands, failed);

    core::ProblemOptions options;
    options.theta = theta;
    options.default_alpha = alpha;
    options.failed = failed;
    const core::PlacementProblem problem(graph, task, loads, options);

    core::PlacementSolution solution;
    if (maximin) {
      const core::SmoothMinObjective objective(problem.objective(), 400.0);
      opt::SolverOptions solver;
      solver.max_iterations = 8000;
      const opt::SolveResult raw =
          opt::maximize(objective, problem.constraints(), solver);
      solution = core::evaluate_rates(problem, problem.expand(raw.p));
      solution.status = raw.status;
      solution.iterations = raw.iterations;
      solution.release_events = raw.release_events;
      solution.lambda = raw.lambda;
    } else {
      solution = core::solve_placement(problem);
    }

    if (json) {
      core::write_report(std::cout, solution, graph);
      return 0;
    }

    std::printf("%s after %d iterations; budget %.0f/%.0f\n",
                solution.status == opt::SolveStatus::kOptimal
                    ? "OPTIMAL (KKT certified)"
                    : "ITERATION LIMIT",
                solution.iterations, solution.budget_used, theta);
    TextTable monitors({"monitor", "rate"});
    for (topo::LinkId id : solution.active_monitors)
      monitors.add_row({graph.link_name(id), fmt_sci(solution.rates[id], 3)});
    std::cout << monitors.render();
    TextTable ods({"OD pair", "rho", "utility"});
    for (const auto& od : solution.per_od)
      ods.add_row({graph.node(od.od.src).name + "->" +
                       graph.node(od.od.dst).name,
                   fmt_sci(od.rho_approx, 3), fmt_fixed(od.utility, 4)});
    std::cout << ods.render();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
