// TAB1 — reproduces Table I of the paper: optimal sampling rates for the
// JANET measurement task on GEANT at theta = 100,000 packets per 5-minute
// interval, alpha_i = 1, plus per-OD utility and measured accuracy
// (average of 20 Monte-Carlo sampling experiments, §V-B).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "netmon.hpp"
#include "util/bench_report.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace netmon;

  std::printf(
      "== TAB1: optimal sampling rates, JANET task on GEANT (paper Table I)"
      " ==\n\n");

  const unsigned threads = runtime::threads_from_env();
  runtime::ThreadPool pool(threads);
  BenchReport report("table1_optimal_rates", threads);
  StopWatch total_watch;

  StopWatch solve_watch;
  const core::GeantScenario scenario = core::make_geant_scenario();
  core::ProblemOptions options;
  options.theta = 100000.0;
  const core::PlacementProblem problem = core::make_problem(scenario, options);
  const core::PlacementSolution solution = core::solve_placement(problem);
  const double solve_ms = solve_watch.elapsed_ms();

  std::printf("theta = %.0f packets / 5 min, alpha_i = 1 for all links\n",
              problem.theta());
  std::printf("solver: %s, %d iterations, %d release events, lambda=%.3e\n\n",
              solution.status == opt::SolveStatus::kOptimal
                  ? "OPTIMAL (KKT certified)"
                  : "iteration limit",
              solution.iterations, solution.release_events, solution.lambda);

  // --- Monte-Carlo accuracy: 20 sampling experiments (paper §V-B),
  // fanned across the pool. Run r draws from substream r of the fixed
  // seed, so the accuracies below are bit-identical at any NETMON_THREADS.
  Rng rng(2024);
  traffic::TrafficMatrix task_demands;
  for (std::size_t k = 0; k < scenario.task.ods.size(); ++k) {
    task_demands.push_back(
        {scenario.task.ods[k],
         scenario.task.expected_packets[k] / scenario.task.interval_sec});
  }
  const auto flows = traffic::generate_all_flows(rng, task_demands);
  const auto& matrix = problem.routing();
  const auto rhos = sampling::effective_rates_approx(matrix, solution.rates);
  std::vector<RunningStats> accuracy(matrix.od_count());
  StopWatch mc_watch;
  const int kRuns = 20;
  const auto runs = sampling::simulate_sampling_runs(
      pool, Rng(7), matrix, flows, solution.rates, kRuns);
  for (const auto& counts : runs) {
    const auto accs = estimate::accuracies(counts, rhos);
    for (std::size_t k = 0; k < accs.size(); ++k) accuracy[k].add(accs[k]);
  }
  const double mc_ms = mc_watch.elapsed_ms();

  // --- Monitor table (columns of the paper's Table I). ---
  TextTable monitors(
      {"monitor", "rate p_i", "load (pkt/s)", "contribution to theta"});
  for (topo::LinkId id : solution.active_monitors) {
    const double share = solution.rates[id] * scenario.loads[id] *
                         problem.interval_sec() / problem.theta();
    monitors.add_row({scenario.net.graph.link_name(id),
                      fmt_sci(solution.rates[id], 3),
                      fmt_fixed(scenario.loads[id], 0), fmt_percent(share)});
  }
  std::cout << monitors.render() << "\n";
  std::printf("active monitors: %zu of %zu candidates\n\n",
              solution.active_monitors.size(), problem.candidates().size());

  // --- Per-OD table (rows of the paper's Table I). ---
  TextTable ods({"OD pair", "pkt/s", "rho (eq.7)", "utility",
                 "acc (pred)", "acc (meas)", "monitored on"});
  double worst_acc = 1.0, sum_acc = 0.0;
  for (std::size_t k = 0; k < solution.per_od.size(); ++k) {
    const core::OdReport& od = solution.per_od[k];
    std::string where;
    for (topo::LinkId id : od.monitored_links) {
      if (!where.empty()) where += ", ";
      where += scenario.net.graph.link_name(id);
    }
    const double acc = accuracy[k].mean();
    worst_acc = std::min(worst_acc, acc);
    sum_acc += acc;
    ods.add_row({"JANET-" + scenario.net.graph.node(od.od.dst).name,
                 fmt_fixed(od.expected_packets / problem.interval_sec(), 0),
                 fmt_sci(od.rho_approx, 3), fmt_fixed(od.utility, 4),
                 fmt_fixed(od.predicted_accuracy, 4), fmt_fixed(acc, 4),
                 where});
  }
  std::cout << ods.render() << "\n";

  std::printf("paper claims vs measured:\n");
  std::printf("  (rates)    paper: 'extremely low', <= ~0.9%%; measured max"
              " p_i = %.4f\n",
              *std::max_element(solution.rates.begin(), solution.rates.end()));
  std::size_t max_monitors = 0;
  for (const auto& od : solution.per_od)
    max_monitors = std::max(max_monitors, od.monitored_links.size());
  std::printf("  (eq.7)     paper: each OD sampled on <= 2 links; measured"
              " max = %zu; max linearization error = %.2e\n",
              max_monitors,
              sampling::max_linearization_error(matrix, solution.rates));
  std::printf("  (fairness) paper: accuracy >= 0.89 on average for any OD;"
              " measured worst = %.3f, mean = %.3f\n",
              worst_acc, sum_acc / static_cast<double>(matrix.od_count()));

  report.result("solve")
      .metric("wall_ms", solve_ms)
      .metric("iterations", solution.iterations)
      .metric("release_events", solution.release_events)
      .metric("total_utility", solution.total_utility)
      .metric("active_monitors",
              static_cast<double>(solution.active_monitors.size()));
  report.result("monte_carlo")
      .metric("wall_ms", mc_ms)
      .metric("runs", kRuns)
      .metric("worst_accuracy", worst_acc)
      .metric("mean_accuracy",
              sum_acc / static_cast<double>(matrix.od_count()));
  report.result("total").metric("wall_ms", total_watch.elapsed_ms());
  report.emit();
  return 0;
}
