// EXT5 — router monitoring primitives under a fixed memory budget.
//
// The paper's resource model charges theta per sampled packet; inside the
// router the scarce resource is flow-table memory, and the literature it
// builds on (Estan & Varghese / ref. [11]) proposes primitives with very
// different accuracy-per-memory profiles. This bench compares, on one
// heavy-tailed link:
//   - plain packet sampling + 1/p rescaling,
//   - sample-and-hold (near-exact elephants),
//   - adaptive NetFlow (rate backs off under cache pressure),
// reporting per-flow error on elephants, detection of heavy hitters, and
// the flow-table footprint.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "netmon.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace netmon;

struct Outcome {
  double elephant_error = 0.0;  // mean |rel err| on >= 5000-pkt flows
  double table_entries = 0.0;   // mean flow-table footprint
  double hh_recall = 0.0;       // heavy hitters (>=5000 pkts) found
};

}  // namespace

int main() {
  std::printf(
      "== EXT5: sampling primitives at equal packet budget (ref. [11]"
      " lineage) ==\n\n");

  // Traffic: heavy-tailed population; elephants are the >= 5000-pkt tail.
  Rng rng(31);
  traffic::FlowGenOptions gen;
  gen.max_flow_packets = 5e4;
  const auto flows = traffic::generate_flows(rng, {{0, 1}, 4000.0}, 0, gen);
  std::vector<std::size_t> elephants;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].packets >= 5000) elephants.push_back(i);
  }
  std::printf("population: %zu flows, %llu packets, %zu elephants"
              " (>= 5000 pkts)\n\n",
              flows.size(),
              static_cast<unsigned long long>(traffic::total_packets(flows)),
              elephants.size());

  const double p = 0.01;
  const int reps = 5;

  Outcome plain, sah;
  RunningStats adaptive_rate;
  for (int rep = 0; rep < reps; ++rep) {
    Rng lane = rng.substream(rep + 1);

    // --- plain sampling ---
    {
      RunningStats err;
      std::size_t hh_found = 0;
      for (std::size_t i : elephants) {
        const double est = static_cast<double>(
                               lane.binomial(flows[i].packets, p)) /
                           p;
        err.add(std::abs(est - static_cast<double>(flows[i].packets)) /
                static_cast<double>(flows[i].packets));
        if (est >= 5000.0) ++hh_found;
      }
      plain.elephant_error += err.mean() / reps;
      plain.hh_recall +=
          static_cast<double>(hh_found) / elephants.size() / reps;
      // Footprint ~ detected flows.
      double detected = 0.0;
      for (const auto& f : flows)
        detected += 1.0 - std::pow(1.0 - p, static_cast<double>(f.packets));
      plain.table_entries += detected / reps;
    }

    // --- sample-and-hold ---
    {
      netflow::RecordBatch exported;
      netflow::SampleAndHoldMonitor monitor(
          0, p, 0,
          [&](const netflow::FlowRecord& r) { exported.push_back(r); },
          lane());
      for (const auto& f : flows) {
        for (std::uint64_t i = 0; i < f.packets; ++i)
          monitor.offer(f.key, 100, 0.0);
      }
      const double entries = static_cast<double>(monitor.tracked_flows());
      monitor.flush(0.0);
      RunningStats err;
      std::size_t hh_found = 0;
      for (std::size_t i : elephants) {
        // Find the elephant's record.
        double est = 0.0;
        for (const auto& r : exported) {
          if (r.key == flows[i].key)
            est = monitor.estimate_packets(r.sampled_packets);
        }
        if (est >= 5000.0) ++hh_found;
        err.add(std::abs(est - static_cast<double>(flows[i].packets)) /
                static_cast<double>(flows[i].packets));
      }
      sah.elephant_error += err.mean() / reps;
      sah.hh_recall +=
          static_cast<double>(hh_found) / elephants.size() / reps;
      sah.table_entries += entries / reps;
    }

    // --- adaptive NetFlow: record the equilibrium rate under pressure ---
    {
      netflow::AdaptiveOptions options;
      options.entry_budget = 2048;
      options.table.max_entries = 4096;
      options.min_rate = 1e-4;
      netflow::AdaptiveMonitor monitor(0, p, options,
                                       [](const netflow::FlowRecord&) {},
                                       lane());
      for (const auto& f : flows) {
        for (std::uint64_t i = 0; i < f.packets; ++i)
          monitor.offer(f.key, 100, 0.0);
      }
      adaptive_rate.add(monitor.current_rate());
    }
  }

  TextTable table({"primitive", "elephant mean |rel err|",
                   "flow-table entries", "heavy-hitter recall"});
  table.add_row({"plain sampling 1%", fmt_fixed(plain.elephant_error, 4),
                 fmt_fixed(plain.table_entries, 0),
                 fmt_percent(plain.hh_recall)});
  table.add_row({"sample-and-hold 1%", fmt_fixed(sah.elephant_error, 4),
                 fmt_fixed(sah.table_entries, 0),
                 fmt_percent(sah.hh_recall)});
  std::cout << table.render();
  std::printf(
      "\nadaptive NetFlow under the same traffic settles at rate %.4f"
      " (from %.2f target)\nto keep its 2048-entry budget — the local"
      " mechanism the paper calls complementary\nto its global rate"
      " assignment (§II).\n",
      adaptive_rate.mean(), p);
  return 0;
}
