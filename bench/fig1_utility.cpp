// FIG1 — reproduces Figure 1 of the paper: the utility function M(rho)
// for two OD-pair size regimes (E[1/S] = 1/500 and 1/5000), including the
// pivot points x0 where the quadratic extension joins the accuracy curve.
//
// Paper reference values: pivots (0.00599, 0.668) and (0.000599, 0.666).
#include <cstdio>
#include <iostream>

#include "core/utility.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace netmon;

  std::printf("== FIG1: utility function M(rho) (paper Fig. 1) ==\n\n");

  const core::SreUtility m500(1.0 / 500.0);
  const core::SreUtility m5000(1.0 / 5000.0);

  TextTable pivots({"average size S", "E[1/S]", "pivot x0", "M(x0)",
                    "paper x0", "paper M(x0)"});
  pivots.add_row({"500", fmt_sci(1.0 / 500.0, 3), fmt_fixed(m500.pivot(), 6),
                  fmt_fixed(m500.value(m500.pivot()), 4), "0.00599", "0.668"});
  pivots.add_row({"5000", fmt_sci(1.0 / 5000.0, 3),
                  fmt_fixed(m5000.pivot(), 6),
                  fmt_fixed(m5000.value(m5000.pivot()), 4), "0.000599",
                  "0.666"});
  std::cout << pivots.render() << "\n";

  std::printf("series (CSV): rho, M_S500, M_S5000\n");
  CsvWriter csv(std::cout);
  csv.row(std::vector<std::string>{"rho", "M_S500", "M_S5000"});
  // Log-spaced sweep emphasizing the knee, as in the paper's figure.
  for (double rho = 1e-5; rho <= 1.0; rho *= 1.25) {
    csv.row(std::vector<double>{rho, m500.value(rho), m5000.value(rho)});
  }
  csv.row(std::vector<double>{1.0, m500.value(1.0), m5000.value(1.0)});

  // Sanity lines mirroring the figure's shape claims.
  std::printf("\nshape checks:\n");
  std::printf("  M(0) = %.3f (must be 0)\n", m500.value(0.0));
  std::printf("  M(1) = %.6f for S=500 (perfect sampling -> ~1)\n",
              m500.value(1.0));
  std::printf("  knee: M rises to %.3f by rho = %.4f (x0), then saturates\n",
              m500.value(m500.pivot()), m500.pivot());
  return 0;
}
