// EXT4 — cross-topology generalization (paper §V-C closing claim):
// "Several studies have shown that this is a general property of current
// network design, and we argue that the benefits are not limited to the
// specific network topology under consideration in this work."
//
// The same customer-to-all-PoPs task is solved on GEANT and on Abilene;
// the bench reports, for both, the optimal vs uniform worst-OD utility
// and the structural signature (sparsity, <= 2 monitors per OD, low
// rates) that the paper observed on GEANT.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "netmon.hpp"
#include "topo/abilene.hpp"
#include "util/table.hpp"

namespace {

using namespace netmon;

struct Row {
  std::string network;
  std::size_t candidates = 0;
  std::size_t active = 0;
  std::size_t max_monitors_per_od = 0;
  double max_rate = 0.0;
  double worst_opt = 1.0;
  double worst_uniform = 1.0;
};

Row study(const std::string& name, const topo::Graph& graph,
          const core::MeasurementTask& task,
          const traffic::LinkLoads& loads, double theta) {
  core::ProblemOptions options;
  options.theta = theta;
  const core::PlacementProblem problem(graph, task, loads, options);
  const core::PlacementSolution optimal = core::solve_placement(problem);
  const core::PlacementSolution uniform =
      core::evaluate_rates(problem, core::uniform_rates(problem));

  Row row;
  row.network = name;
  row.candidates = problem.candidates().size();
  row.active = optimal.active_monitors.size();
  row.max_rate =
      *std::max_element(optimal.rates.begin(), optimal.rates.end());
  for (const core::OdReport& od : optimal.per_od) {
    row.max_monitors_per_od =
        std::max(row.max_monitors_per_od, od.monitored_links.size());
    row.worst_opt = std::min(row.worst_opt, od.utility);
  }
  for (const core::OdReport& od : uniform.per_od)
    row.worst_uniform = std::min(row.worst_uniform, od.utility);
  return row;
}

}  // namespace

int main() {
  std::printf("== EXT4: the method on a second backbone (paper §V-C"
              " closing claim) ==\n\n");

  std::vector<Row> rows;

  // GEANT with the JANET task.
  {
    const core::GeantScenario s = core::make_geant_scenario();
    rows.push_back(study("GEANT (23 PoPs, 72 links)", s.net.graph, s.task,
                         s.loads, 100000.0));
  }

  // Abilene with the analogous customer task.
  {
    const topo::AbileneNetwork net = topo::make_abilene();
    core::MeasurementTask task;
    task.interval_sec = 300.0;
    traffic::TrafficMatrix demands = traffic::gravity_matrix(
        net.graph, {.total_pkt_per_sec = 6.0e5, .min_mass = 1e-12});
    for (const auto& [name, rate] : topo::abilene_task_rates()) {
      const auto dst = *net.graph.find_node(name);
      task.ods.push_back({net.customer, dst});
      task.expected_packets.push_back(rate * task.interval_sec);
      demands.push_back({{net.customer, dst}, rate});
    }
    const traffic::LinkLoads loads =
        traffic::link_loads(net.graph, demands);
    rows.push_back(study("Abilene (11 PoPs, 28 links)", net.graph, task,
                         loads, 50000.0));
  }

  TextTable table({"network", "candidates", "active", "max monitors/OD",
                   "max rate", "worst OD (opt)", "worst OD (uniform)"});
  for (const Row& row : rows) {
    table.add_row({row.network, std::to_string(row.candidates),
                   std::to_string(row.active),
                   std::to_string(row.max_monitors_per_od),
                   fmt_sci(row.max_rate, 2), fmt_fixed(row.worst_opt, 4),
                   fmt_fixed(row.worst_uniform, 4)});
  }
  std::cout << table.render();
  std::printf(
      "\nthe signature carries over: sparse activation, <= a few monitors"
      " per OD pair,\nper-mille rates, and a clear worst-OD advantage over"
      " the uniform configuration\n— on both backbones.\n");
  return 0;
}
