// EXT1 — two-phase baseline (Suh et al., paper ref. [10]) vs the paper's
// joint formulation.
//
// The related-work section argues that splitting the problem — first
// place monitors, then tune rates — yields near-optimal heuristics at
// best, while the joint convex formulation certifies the global optimum.
// This bench quantifies the gap as a function of the monitor-count budget
// K given to the two-phase heuristic.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/two_phase.hpp"
#include "netmon.hpp"
#include "util/table.hpp"

int main() {
  using namespace netmon;

  std::printf(
      "== EXT1: two-phase heuristic (ref. [10] style) vs joint optimum"
      " ==\n\n");

  const core::GeantScenario scenario = core::make_geant_scenario();
  core::ProblemOptions options;
  options.theta = 100000.0;

  const core::PlacementProblem joint_problem =
      core::make_problem(scenario, options);
  const core::PlacementSolution joint = core::solve_placement(joint_problem);
  auto worst_of = [](const core::PlacementSolution& s) {
    double w = 1.0;
    for (const auto& od : s.per_od) w = std::min(w, od.utility);
    return w;
  };

  TextTable table({"strategy", "monitors", "coverage", "sum utility",
                   "worst OD utility", "gap to joint"});
  table.add_row({"joint optimum (paper)",
                 std::to_string(joint.active_monitors.size()), "100.0%",
                 fmt_fixed(joint.total_utility, 3),
                 fmt_fixed(worst_of(joint), 4), "-"});

  for (std::size_t k : {1u, 2u, 3u, 4u, 6u, 8u, 10u, 14u, 20u}) {
    core::TwoPhaseOptions two_phase;
    two_phase.max_monitors = k;
    const core::TwoPhaseResult result = core::two_phase_placement(
        scenario.net.graph, scenario.task, scenario.loads, options,
        two_phase);
    table.add_row(
        {"two-phase K=" + std::to_string(k),
         std::to_string(result.selected.size()),
         fmt_percent(result.covered_fraction),
         fmt_fixed(result.solution.total_utility, 3),
         fmt_fixed(worst_of(result.solution), 4),
         fmt_fixed(joint.total_utility - result.solution.total_utility, 3)});
  }
  std::cout << table.render();

  std::printf(
      "\nreading: at small K the volume-greedy selection leaves small OD"
      " pairs entirely\nuncovered (worst utility 0). And because the"
      " phase-1 goal is COVERAGE, the greedy\nstops as soon as every OD"
      " crosses some monitor (5 links here) — it can never\ndiscover that"
      " adding the lightly-loaded FR->LU / CZ->SK / IT->IL monitors is"
      "\nworth it, which is exactly what the joint formulation finds.\n");
  return 0;
}
