// FIG2 — reproduces Figure 2 of the paper: measurement accuracy
// (average / worst / best over the 20 OD pairs) as a function of the
// resource constraint theta, for the network-wide optimum and for the
// solution restricted to the six UK links (§V-C).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "netmon.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace netmon;

struct SeriesPoint {
  double avg = 0.0;
  double worst = 0.0;
  double best = 0.0;
};

SeriesPoint measure(const core::PlacementProblem& problem,
                    const core::PlacementSolution& solution,
                    const std::vector<std::vector<traffic::Flow>>& flows,
                    Rng& rng, int runs) {
  const auto& matrix = problem.routing();
  const auto rhos = sampling::effective_rates_approx(matrix, solution.rates);
  std::vector<RunningStats> acc(matrix.od_count());
  for (int run = 0; run < runs; ++run) {
    const auto counts =
        sampling::simulate_sampling(rng, matrix, flows, solution.rates);
    const auto a = estimate::accuracies(counts, rhos);
    for (std::size_t k = 0; k < a.size(); ++k) acc[k].add(a[k]);
  }
  SeriesPoint point;
  point.worst = 1.0;
  point.best = -1.0;
  for (const auto& stat : acc) {
    point.avg += stat.mean();
    point.worst = std::min(point.worst, stat.mean());
    point.best = std::max(point.best, stat.mean());
  }
  point.avg /= static_cast<double>(acc.size());
  return point;
}

}  // namespace

int main() {
  std::printf(
      "== FIG2: accuracy vs theta, optimum vs UK-links-only (paper Fig. 2)"
      " ==\n\n");

  const core::GeantScenario scenario = core::make_geant_scenario();

  Rng rng(2024);
  traffic::TrafficMatrix task_demands;
  for (std::size_t k = 0; k < scenario.task.ods.size(); ++k) {
    task_demands.push_back(
        {scenario.task.ods[k],
         scenario.task.expected_packets[k] / scenario.task.interval_sec});
  }
  const auto flows = traffic::generate_all_flows(rng, task_demands);
  const auto restricted_set = core::uk_links(scenario.net);

  TextTable table({"theta", "avg (opt)", "worst (opt)", "best (opt)",
                   "avg (UK)", "worst (UK)", "best (UK)"});
  std::vector<std::vector<double>> csv_rows;

  Rng sim_rng(7);
  const int kRuns = 10;
  for (double theta : {20000.0, 35000.0, 60000.0, 100000.0, 175000.0,
                       300000.0, 520000.0, 900000.0, 1500000.0}) {
    core::ProblemOptions options;
    options.theta = theta;
    const core::PlacementProblem full = core::make_problem(scenario, options);
    const core::PlacementSolution opt_solution = core::solve_placement(full);
    const SeriesPoint opt_point =
        measure(full, opt_solution, flows, sim_rng, kRuns);

    core::ProblemOptions restricted_options = options;
    restricted_options.restrict_to = restricted_set;
    const core::PlacementProblem restricted =
        core::make_problem(scenario, restricted_options);
    const core::PlacementSolution uk_solution =
        core::solve_placement(restricted);
    const SeriesPoint uk_point =
        measure(restricted, uk_solution, flows, sim_rng, kRuns);

    table.add_row({fmt_fixed(theta, 0), fmt_fixed(opt_point.avg, 3),
                   fmt_fixed(opt_point.worst, 3), fmt_fixed(opt_point.best, 3),
                   fmt_fixed(uk_point.avg, 3), fmt_fixed(uk_point.worst, 3),
                   fmt_fixed(uk_point.best, 3)});
    csv_rows.push_back({theta, opt_point.avg, opt_point.worst, opt_point.best,
                        uk_point.avg, uk_point.worst, uk_point.best});
  }
  std::cout << table.render() << "\n";

  std::printf("series (CSV): theta, avg_opt, worst_opt, best_opt, avg_uk,"
              " worst_uk, best_uk\n");
  CsvWriter csv(std::cout);
  for (const auto& row : csv_rows) csv.row(row);

  std::printf(
      "\npaper claims vs measured:\n"
      "  - the UK-only solution has 'poor performance with respect to small"
      " OD pairs':\n"
      "    at every theta, worst(UK) <= worst(opt); the gap closes only as"
      " theta grows large.\n");
  return 0;
}
