// FIG2 — reproduces Figure 2 of the paper: measurement accuracy
// (average / worst / best over the 20 OD pairs) as a function of the
// resource constraint theta, for the network-wide optimum and for the
// solution restricted to the six UK links (§V-C).
//
// Both theta sweeps are solved by the BatchSolver (warm-chained in sweep
// order, fanned across NETMON_THREADS workers), and each point's
// Monte-Carlo accuracy runs draw from per-point substreams, so the whole
// figure is bit-identical at any thread count.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "netmon.hpp"
#include "util/bench_report.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace netmon;

struct SeriesPoint {
  double avg = 0.0;
  double worst = 0.0;
  double best = 0.0;
};

SeriesPoint measure(runtime::ThreadPool& pool,
                    const core::PlacementProblem& problem,
                    const core::PlacementSolution& solution,
                    const std::vector<std::vector<traffic::Flow>>& flows,
                    const Rng& base, int runs) {
  const auto& matrix = problem.routing();
  const auto rhos = sampling::effective_rates_approx(matrix, solution.rates);
  std::vector<RunningStats> acc(matrix.od_count());
  const auto all_counts = sampling::simulate_sampling_runs(
      pool, base, matrix, flows, solution.rates, runs);
  for (const auto& counts : all_counts) {
    const auto a = estimate::accuracies(counts, rhos);
    for (std::size_t k = 0; k < a.size(); ++k) acc[k].add(a[k]);
  }
  SeriesPoint point;
  point.worst = 1.0;
  point.best = -1.0;
  for (const auto& stat : acc) {
    point.avg += stat.mean();
    point.worst = std::min(point.worst, stat.mean());
    point.best = std::max(point.best, stat.mean());
  }
  point.avg /= static_cast<double>(acc.size());
  return point;
}

}  // namespace

int main() {
  std::printf(
      "== FIG2: accuracy vs theta, optimum vs UK-links-only (paper Fig. 2)"
      " ==\n\n");

  const unsigned threads = runtime::threads_from_env();
  runtime::ThreadPool pool(threads);
  BenchReport report("fig2_theta_sweep", threads);

  const core::GeantScenario scenario = core::make_geant_scenario();

  Rng rng(2024);
  traffic::TrafficMatrix task_demands;
  for (std::size_t k = 0; k < scenario.task.ods.size(); ++k) {
    task_demands.push_back(
        {scenario.task.ods[k],
         scenario.task.expected_packets[k] / scenario.task.interval_sec});
  }
  const auto flows = traffic::generate_all_flows(rng, task_demands);
  const auto restricted_set = core::uk_links(scenario.net);

  const std::vector<double> thetas = {20000.0,  35000.0,  60000.0,
                                      100000.0, 175000.0, 300000.0,
                                      520000.0, 900000.0, 1500000.0};

  // Solve both sweeps as batches: consecutive thetas are close, so the
  // chained warm starts converge quickly, and the chunks fan out.
  StopWatch solve_watch;
  core::BatchOptions batch;
  batch.threads = threads;
  batch.warm_chain = true;
  const core::BatchSolver solver(batch);

  const auto full_problems = core::make_theta_sweep(
      scenario.net.graph, scenario.task, scenario.loads, {}, thetas);
  const auto full_solutions = solver.solve(full_problems);

  core::ProblemOptions restricted_base;
  restricted_base.restrict_to = restricted_set;
  const auto uk_problems =
      core::make_theta_sweep(scenario.net.graph, scenario.task,
                             scenario.loads, restricted_base, thetas);
  const auto uk_solutions = solver.solve(uk_problems);
  const double solve_ms = solve_watch.elapsed_ms();

  TextTable table({"theta", "avg (opt)", "worst (opt)", "best (opt)",
                   "avg (UK)", "worst (UK)", "best (UK)"});
  std::vector<std::vector<double>> csv_rows;

  StopWatch mc_watch;
  const Rng sim_base(7);
  const int kRuns = 10;
  for (std::size_t t = 0; t < thetas.size(); ++t) {
    const SeriesPoint opt_point =
        measure(pool, full_problems[t], full_solutions[t], flows,
                sim_base.substream(2 * t), kRuns);
    const SeriesPoint uk_point =
        measure(pool, uk_problems[t], uk_solutions[t], flows,
                sim_base.substream(2 * t + 1), kRuns);

    table.add_row({fmt_fixed(thetas[t], 0), fmt_fixed(opt_point.avg, 3),
                   fmt_fixed(opt_point.worst, 3), fmt_fixed(opt_point.best, 3),
                   fmt_fixed(uk_point.avg, 3), fmt_fixed(uk_point.worst, 3),
                   fmt_fixed(uk_point.best, 3)});
    csv_rows.push_back({thetas[t], opt_point.avg, opt_point.worst,
                        opt_point.best, uk_point.avg, uk_point.worst,
                        uk_point.best});
    report.result("theta_" + std::to_string(static_cast<long>(thetas[t])))
        .metric("avg_opt", opt_point.avg)
        .metric("worst_opt", opt_point.worst)
        .metric("avg_uk", uk_point.avg)
        .metric("worst_uk", uk_point.worst);
  }
  const double mc_ms = mc_watch.elapsed_ms();
  std::cout << table.render() << "\n";

  std::printf("series (CSV): theta, avg_opt, worst_opt, best_opt, avg_uk,"
              " worst_uk, best_uk\n");
  CsvWriter csv(std::cout);
  for (const auto& row : csv_rows) csv.row(row);

  std::printf(
      "\npaper claims vs measured:\n"
      "  - the UK-only solution has 'poor performance with respect to small"
      " OD pairs':\n"
      "    at every theta, worst(UK) <= worst(opt); the gap closes only as"
      " theta grows large.\n");

  report.result("batch_solve")
      .metric("wall_ms", solve_ms)
      .metric("problems", static_cast<double>(2 * thetas.size()));
  report.result("monte_carlo")
      .metric("wall_ms", mc_ms)
      .metric("runs_per_point", kRuns);
  report.emit();
  return 0;
}
