// EXT2 — why static placements age: the paper's motivation, quantified.
//
// "A static placement of monitors cannot be optimal given the short-term
// and long-term variations in traffic due to re-routing events, anomalies
// and the normal network evolution" (paper abstract). We simulate a day
// of operation — diurnal traffic, a mid-day anomaly towards a small PoP,
// and a link failure in the evening — and compare:
//   static   : rates frozen at the midnight optimum,
//   adaptive : re-optimized (warm start) every 2-hour epoch.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/reoptimize.hpp"
#include "netmon.hpp"
#include "traffic/variation.hpp"
#include "util/table.hpp"

namespace {

using namespace netmon;

double worst_of(const core::PlacementSolution& s) {
  double w = 1.0;
  for (const auto& od : s.per_od) w = std::min(w, od.utility);
  return w;
}

}  // namespace

int main() {
  std::printf("== EXT2: static vs re-optimized placement over 24h ==\n\n");

  const core::GeantScenario base = core::make_geant_scenario();
  const auto& graph = base.net.graph;
  const topo::LinkId uk_nl = *graph.find_link("UK", "NL");

  const traffic::DiurnalPattern pattern(0.35, 14.0 * 3600.0);
  const std::vector<traffic::AnomalySpike> spikes{
      {{base.net.janet, *graph.find_node("LU")}, 11.0 * 3600.0,
       13.0 * 3600.0, 50.0}};
  const double failure_from = 18.0 * 3600.0;  // UK->NL down from 18:00

  // Midnight optimum = the static configuration.
  const core::PlacementProblem problem0 = core::make_problem(base);
  const core::PlacementSolution static_solution =
      core::solve_placement(problem0);

  TextTable table({"epoch", "event", "worst OD (static)",
                   "worst OD (adaptive)", "sum (static)", "sum (adaptive)",
                   "budget (static)"});
  sampling::RateVector warm_rates = static_solution.rates;
  double static_worst_min = 1.0, adaptive_worst_min = 1.0;

  for (int hour = 0; hour < 24; hour += 2) {
    const double t = hour * 3600.0;
    const bool failed_now = t >= failure_from;

    // Ground truth at time t.
    routing::LinkSet failed;
    if (failed_now) failed.insert(uk_nl);
    traffic::TrafficMatrix demands =
        traffic::matrix_at(base.demands, pattern, spikes, t);
    const traffic::LinkLoads loads =
        traffic::link_loads(graph, demands, failed);

    core::MeasurementTask task = base.task;
    for (std::size_t k = 0; k < task.ods.size(); ++k) {
      double rate = task.expected_packets[k] / task.interval_sec;
      rate *= pattern.factor(t);
      for (const auto& spike : spikes) {
        if (spike.od == task.ods[k] && spike.active_at(t))
          rate *= spike.factor;
      }
      task.expected_packets[k] = rate * task.interval_sec;
    }

    core::ProblemOptions options;
    options.theta = 100000.0;
    options.failed = failed;
    const core::PlacementProblem problem(graph, task, loads, options);

    const core::PlacementSolution as_static =
        core::evaluate_rates(problem, static_solution.rates);
    const core::PlacementSolution adaptive =
        core::resolve_warm(problem, warm_rates);
    warm_rates = adaptive.rates;

    static_worst_min = std::min(static_worst_min, worst_of(as_static));
    adaptive_worst_min = std::min(adaptive_worst_min, worst_of(adaptive));

    const char* event = "";
    if (t >= 11.0 * 3600.0 && t < 13.0 * 3600.0) event = "LU anomaly 50x";
    else if (failed_now) event = "UK->NL failed";
    char label[32];
    std::snprintf(label, sizeof(label), "%02d:00", hour);
    table.add_row({label, event, fmt_fixed(worst_of(as_static), 4),
                   fmt_fixed(worst_of(adaptive), 4),
                   fmt_fixed(as_static.total_utility, 3),
                   fmt_fixed(adaptive.total_utility, 3),
                   fmt_percent(as_static.budget_used / options.theta, 0)});
  }
  std::cout << table.render();
  std::printf(
      "\nover the day, the static configuration's worst OD utility dips to"
      " %.4f while the\nre-optimized one never drops below %.4f — the gap"
      " opens exactly at the anomaly\nand failure epochs. Note also the"
      " budget column: frozen rates silently overshoot\ntheta at the"
      " diurnal peak (and undershoot at night), i.e. a static placement"
      "\nviolates the resource constraint the moment traffic moves —"
      " the paper's case for\nre-runnable, router-embedded placement.\n",
      static_worst_min, adaptive_worst_min);
  return 0;
}
