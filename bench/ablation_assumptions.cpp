// ABL — ablations of the design choices called out in DESIGN.md §5:
//  1. linear effective-rate approximation (eq. 7) vs exact union (eq. 1);
//  2. Newton 1-D search vs bisection (convergence cost);
//  3. Polak-Ribiere direction mixing vs plain projected gradient
//     (the "zigzag" problem of paper §IV-D);
//  4. sum-of-utilities vs smooth max-min objective (paper §III trade-off);
//  5. i.i.d. Bernoulli vs periodic 1-in-N sampling (paper ref. [12]);
//  6. sequential convex programming on the exact rate (eq. 1) vs the
//     one-shot linearized solve — how much does assumption §IV-B cost?
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>

#include "core/exact_rate.hpp"
#include "opt/barrier.hpp"
#include "opt/projected_ascent.hpp"
#include "netmon.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace netmon;

  std::printf("== ABL: design-choice ablations ==\n\n");

  const core::GeantScenario scenario = core::make_geant_scenario();
  core::ProblemOptions options;
  options.theta = 100000.0;
  const core::PlacementProblem problem = core::make_problem(scenario, options);
  const core::PlacementSolution optimal = core::solve_placement(problem);

  // --- 1. eq.(7) vs eq.(1) at the optimal rates. ---
  std::printf("[1] effective-rate linearization (eq.7 vs eq.1)\n");
  const double max_err = sampling::max_linearization_error(
      problem.routing(), optimal.rates);
  std::printf("    max relative gap over the 20 OD pairs: %.3e"
              " (paper argues it is negligible at rates ~1e-2)\n\n",
              max_err);

  // --- 2 & 3. solver variants. ---
  std::printf("[2/3] solver variants (same instance, same optimum)\n");
  TextTable solver_table(
      {"variant", "iterations", "releases", "value", "time (ms)"});
  auto run_variant = [&](const char* name, bool newton, bool pr) {
    opt::SolverOptions so;
    so.line_search.newton = newton;
    so.line_search.max_iters = newton ? 80 : 200;
    so.polak_ribiere = pr;
    so.max_iterations = 20000;
    const auto start = std::chrono::steady_clock::now();
    const core::PlacementSolution s = core::solve_placement(problem, so);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    solver_table.add_row({name, std::to_string(s.iterations),
                          std::to_string(s.release_events),
                          fmt_fixed(s.total_utility, 6), fmt_fixed(ms, 1)});
    return s.total_utility;
  };
  const double v_full = run_variant("Newton + Polak-Ribiere (paper)", true, true);
  const double v_nopr = run_variant("Newton, no PR mixing", true, false);
  const double v_bis = run_variant("bisection + Polak-Ribiere", false, true);
  std::cout << solver_table.render();
  std::printf("    value agreement: |full-noPR| = %.2e, |full-bisect| = %.2e\n\n",
              std::abs(v_full - v_nopr), std::abs(v_full - v_bis));

  // --- 4. sum vs smooth max-min. ---
  std::printf("[4] sum-of-utilities vs smooth max-min (paper §III)\n");
  const core::SmoothMinObjective maximin(problem.objective(), 400.0);
  opt::SolverOptions mm_options;
  mm_options.max_iterations = 8000;
  const opt::SolveResult mm =
      opt::maximize(maximin, problem.constraints(), mm_options);
  const core::PlacementSolution mm_report =
      core::evaluate_rates(problem, problem.expand(mm.p));
  auto worst_of = [](const core::PlacementSolution& s) {
    double w = 1.0;
    for (const auto& od : s.per_od) w = std::min(w, od.utility);
    return w;
  };
  TextTable obj_table({"objective", "sum utility", "worst OD utility"});
  obj_table.add_row({"sum (paper)", fmt_fixed(optimal.total_utility, 4),
                     fmt_fixed(worst_of(optimal), 4)});
  obj_table.add_row({"smooth max-min (beta=400)",
                     fmt_fixed(mm_report.total_utility, 4),
                     fmt_fixed(worst_of(mm_report), 4)});
  std::cout << obj_table.render();
  std::printf("    max-min trades total utility for the worst OD pair, as"
              " §III anticipates\n\n");

  // --- 5. Bernoulli vs periodic sampling. ---
  std::printf("[5] i.i.d. Bernoulli vs periodic 1-in-N sampling (ref. [12])\n");
  Rng rng(99);
  traffic::TrafficMatrix demands;
  for (std::size_t k = 0; k < scenario.task.ods.size(); ++k) {
    demands.push_back(
        {scenario.task.ods[k],
         scenario.task.expected_packets[k] / scenario.task.interval_sec});
  }
  // Scale to the 8 smallest OD pairs for the per-packet engine.
  std::vector<routing::OdPair> small_ods(scenario.task.ods.end() - 8,
                                         scenario.task.ods.end());
  const auto matrix =
      routing::RoutingMatrix::single_path(scenario.net.graph, small_ods);
  auto all_flows = traffic::generate_all_flows(rng, demands);
  std::vector<std::vector<traffic::Flow>> flows(all_flows.end() - 8,
                                                all_flows.end());
  const auto rhos = sampling::effective_rates_approx(matrix, optimal.rates);
  RunningStats bern_err, per_err;
  for (int rep = 0; rep < 10; ++rep) {
    Rng r1 = rng.substream(rep * 2 + 1), r2 = rng.substream(rep * 2 + 2);
    const auto bern = sampling::simulate_sampling_per_packet(
        r1, matrix, flows, optimal.rates,
        sampling::CountMode::kSumAcrossMonitors,
        sampling::SamplerKind::kBernoulli);
    const auto peri = sampling::simulate_sampling_per_packet(
        r2, matrix, flows, optimal.rates,
        sampling::CountMode::kSumAcrossMonitors,
        sampling::SamplerKind::kPeriodic);
    for (std::size_t k = 0; k < matrix.od_count(); ++k) {
      if (rhos[k] <= 0.0) continue;
      const double actual = static_cast<double>(bern[k].actual_packets);
      bern_err.add(std::abs(
          estimate::estimate_size(bern[k].sampled_packets, rhos[k]) - actual) /
          actual);
      per_err.add(std::abs(
          estimate::estimate_size(peri[k].sampled_packets, rhos[k]) - actual) /
          actual);
    }
  }
  std::printf(
      "    mean |relative error|: Bernoulli %.4f vs periodic %.4f\n"
      "    (periodic sampling of a single aggregate is a stratified sample:"
      " far lower\n     count variance; Duffield et al. report parity for"
      " flow-level statistics,\n     where phase alignment matters)\n\n",
      bern_err.mean(), per_err.mean());

  // --- 6. exact-rate SCP vs one-shot linearization. ---
  std::printf("[6] exact-rate SCP (eq.1) vs one-shot linearized solve"
              " (eq.7)\n");
  TextTable scp_table({"theta", "exact utility (eq.7 solve)",
                       "exact utility (SCP)", "gap", "SCP rounds"});
  for (double theta : {100000.0, 1.0e6, 3.0e6}) {
    core::ProblemOptions scp_options;
    scp_options.theta = theta;
    const core::PlacementProblem scp_problem =
        core::make_problem(scenario, scp_options);
    const core::ExactRateResult scp =
        core::solve_exact_placement(scp_problem);
    scp_table.add_row(
        {fmt_fixed(theta, 0), fmt_fixed(scp.exact_utility_linearized, 6),
         fmt_fixed(scp.exact_utility_scp, 6),
         fmt_sci(scp.exact_utility_scp - scp.exact_utility_linearized, 2),
         std::to_string(scp.rounds)});
  }
  std::cout << scp_table.render();
  std::printf("    at the paper's operating point the linearized solution"
              " is already a fixed point\n    of the exact problem to"
              " ~1e-4 — assumption §IV-B costs essentially nothing.\n\n");

  // --- 7. three independent solvers must meet at the same optimum. ---
  std::printf("[7] solver cross-validation on the Table I instance\n");
  TextTable solvers({"algorithm", "objective value", "time (ms)"});
  auto timed = [&](const char* name, auto&& fn) {
    const auto start = std::chrono::steady_clock::now();
    const double value = fn();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    solvers.add_row({name, fmt_fixed(value, 9), fmt_fixed(ms, 1)});
  };
  timed("gradient projection (paper)", [&] {
    return opt::maximize(problem.objective(), problem.constraints()).value;
  });
  timed("interior point (log barrier)", [&] {
    return opt::maximize_barrier(problem.objective(), problem.constraints())
        .value;
  });
  timed("projected gradient ascent", [&] {
    opt::ProjectedAscentOptions pa;
    pa.max_iterations = 200000;
    return opt::maximize_reference(problem.objective(),
                                   problem.constraints(), pa)
        .value;
  });
  std::cout << solvers.render();
  std::printf("    three algorithms, one optimum — the KKT certificate is"
              " corroborated numerically.\n");
  return 0;
}
