// PERF — serving-layer throughput and the tenant solve cache's value.
// Emits BENCH_serve.json rows the perf gate tracks:
//   transport — requests/sec through the full multi-tenant pipeline via
//               LoopbackTransport vs. a real TCP socket pair (same
//               service, so the delta IS the transport tax)
//   cache     — exact-hit replay latency vs. the solved miss it replays,
//               plus two correctness bits measured per run: the hit is
//               bit-identical to the original answer, and the solver
//               invocation counter did not move while hits were served
//   warm      — solver iterations for a cold solve vs. the same query
//               warm-started from the nearest cached neighbour (the
//               fleet pattern: many close-by scenarios)
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "netmon.hpp"
#include "util/bench_report.hpp"

namespace {

using namespace netmon;

tenant::TenantModel geant_model(double theta = 0.0) {
  const core::GeantScenario scenario = core::make_geant_scenario();
  tenant::TenantModel model;
  model.graph = scenario.net.graph;
  model.task = scenario.task;
  model.loads = scenario.loads;
  if (theta > 0.0) model.problem.theta = theta;
  return model;
}

serve::Request solve_at(std::uint64_t id, double theta) {
  serve::Request request;
  request.id = id;
  request.theta = theta;
  return request;
}

bool identical(const serve::Response& a, const serve::Response& b) {
  if (a.solutions.size() != b.solutions.size()) return false;
  for (std::size_t i = 0; i < a.solutions.size(); ++i) {
    const core::PlacementSolution& x = a.solutions[i];
    const core::PlacementSolution& y = b.solutions[i];
    if (x.rates != y.rates || x.total_utility != y.total_utility ||
        x.lambda != y.lambda || x.iterations != y.iterations ||
        x.active_monitors != y.active_monitors)
      return false;
  }
  return true;
}

/// Requests/sec for `count` distinct queries through `send`, pipelined.
template <typename Send>
double reqs_per_sec(std::size_t count, Send&& send) {
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(count);
  StopWatch watch;
  for (std::size_t i = 0; i < count; ++i) futures.push_back(send(i));
  for (auto& future : futures)
    if (future.get().status != serve::ResponseStatus::kOk) return 0.0;
  return static_cast<double>(count) / (watch.elapsed_ms() / 1000.0);
}

}  // namespace

int main() {
  std::printf("== serve_perf: transport throughput + solve cache ==\n");
  const unsigned hw = std::thread::hardware_concurrency();
  BenchReport report("serve_perf", hw);

  // --- Transport throughput: loopback vs. real sockets. ---
  // Distinct thetas defeat the cache, so every request runs the whole
  // pipeline (resolve -> validate -> queue -> batch -> solve); the GEANT
  // solve dominates, which is exactly the deployed ratio.
  {
    tenant::TenantRegistry registry;
    registry.publish("geant", geant_model());
    tenant::TenantServiceOptions options;
    options.queue_capacity = 2048;
    options.batch.max_batch = 32;
    tenant::TenantService service(registry, options);

    constexpr std::size_t kCount = 256;
    serve::LoopbackTransport loopback(service, /*via_wire=*/true);
    const double loopback_rps = reqs_per_sec(kCount, [&](std::size_t i) {
      return loopback.send(
          solve_at(1000 + i, 90000.0 + 10.0 * static_cast<double>(i)));
    });

    serve::TcpServer tcp_server(service);
    serve::TcpClient tcp(
        "127.0.0.1", tcp_server.port());
    const double tcp_rps = reqs_per_sec(kCount, [&](std::size_t i) {
      return tcp.send(
          solve_at(5000 + i, 70000.0 + 10.0 * static_cast<double>(i)));
    });

    std::printf("  loopback %.0f req/s, tcp %.0f req/s (%zu distinct"
                " queries each)\n",
                loopback_rps, tcp_rps, kCount);
    report.result("transport")
        .metric("hw_threads", hw)
        .metric("loopback_reqs_per_sec", loopback_rps)
        .metric("tcp_reqs_per_sec", tcp_rps);
  }

  // --- Cache: exact-hit replay vs. the miss it replays. ---
  {
    tenant::TenantRegistry registry;
    registry.publish("geant", geant_model());
    tenant::TenantService service(registry);

    serve::Request query = solve_at(1, 100000.0);
    StopWatch miss_watch;
    const serve::Response first = service.submit(query).get();
    const double miss_ms = miss_watch.elapsed_ms();
    const std::uint64_t solves_before_hits = service.solver_invocations();

    double hit_ms_min = 0.0;
    bool bit_identical = first.status == serve::ResponseStatus::kOk;
    constexpr int kHits = 200;
    for (int i = 0; i < kHits; ++i) {
      serve::Request repeat = query;
      repeat.id = 100 + static_cast<std::uint64_t>(i);
      StopWatch hit_watch;
      const serve::Response hit = service.submit(repeat).get();
      const double ms = hit_watch.elapsed_ms();
      if (i == 0 || ms < hit_ms_min) hit_ms_min = ms;
      bit_identical = bit_identical &&
                      hit.cache == serve::CacheOutcome::kHit &&
                      identical(first, hit);
    }
    const bool no_solve =
        service.solver_invocations() == solves_before_hits;
    const double speedup = hit_ms_min > 0.0 ? miss_ms / hit_ms_min : 0.0;

    std::printf("  miss %.3f ms, best hit %.4f ms (%.0fx), bit_identical=%d,"
                " hits_no_solve=%d\n",
                miss_ms, hit_ms_min, speedup, bit_identical ? 1 : 0,
                no_solve ? 1 : 0);
    report.result("cache")
        .metric("miss_ms", miss_ms)
        .metric("hit_ms", hit_ms_min)
        .metric("cache_hit_speedup", speedup)
        .metric("hit_bit_identical", bit_identical ? 1.0 : 0.0)
        .metric("hits_no_solve", no_solve ? 1.0 : 0.0);
  }

  // --- Warm start: iterations with and without a cached neighbour. ---
  {
    const double seed_theta = 100000.0;
    const double query_theta = 104000.0;

    // Cold reference: no cache at all.
    tenant::TenantRegistry cold_registry;
    cold_registry.publish("geant", geant_model());
    tenant::TenantServiceOptions cold_options;
    cold_options.cache.max_entries = 0;
    tenant::TenantService cold(cold_registry, cold_options);
    const serve::Response cold_answer =
        cold.submit(solve_at(1, query_theta)).get();
    const double iters_cold =
        cold_answer.status == serve::ResponseStatus::kOk
            ? static_cast<double>(cold_answer.solutions[0].iterations)
            : 0.0;

    // Warm: the cache holds the neighbouring theta's solution.
    tenant::TenantRegistry warm_registry;
    warm_registry.publish("geant", geant_model());
    tenant::TenantService warm(warm_registry, {});
    (void)warm.submit(solve_at(2, seed_theta)).get();
    const serve::Response warm_answer =
        warm.submit(solve_at(3, query_theta)).get();
    const bool warm_started =
        warm_answer.cache == serve::CacheOutcome::kWarmStart;
    const double iters_warm =
        warm_answer.status == serve::ResponseStatus::kOk
            ? static_cast<double>(warm_answer.solutions[0].iterations)
            : iters_cold;
    const double savings_pct =
        iters_cold > 0.0 ? 100.0 * (1.0 - iters_warm / iters_cold) : 0.0;

    std::printf("  cold %d iters, warm-started %d iters -> %.1f%% saved"
                " (donor used=%d)\n",
                static_cast<int>(iters_cold), static_cast<int>(iters_warm),
                savings_pct, warm_started ? 1 : 0);
    report.result("warm")
        .metric("iters_cold", iters_cold)
        .metric("iters_warm", iters_warm)
        .metric("warm_iter_savings_pct", savings_pct)
        .metric("warm_donor_used", warm_started ? 1.0 : 0.0);
  }

  report.emit();
  return 0;
}
