// SCALE — the Internet-scale pipeline end to end: deterministic
// hierarchical generation (100k+ directed links), gravity fan-out task,
// arena routing-matrix build, the partitioned approximation tier with
// its certified gap, and the intra-solve parallel speedup of the exact
// solver at 1 vs 8 threads. Emits the BENCH_scaling.json block the perf
// gate tracks: the certified gap is capped at the tier's 1% target and
// the 8-thread speedup floor applies on machines with >= 8 hardware
// threads (hw_threads is recorded so the gate can tell).
#include <cstdio>
#include <thread>
#include <vector>

#include "netmon.hpp"
#include "util/bench_report.hpp"

namespace {

using namespace netmon;

// Min-over-reps wall time of a deterministic body: scheduling noise only
// ever adds time, so the minimum is the robust statistic for a gate.
template <typename Fn>
double min_ms(int reps, Fn&& body) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    StopWatch watch;
    body();
    const double ms = watch.elapsed_ms();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

int run() {
  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf("scaling bench: hw_threads=%u\n", hw_threads);

  // -- generation: the 100k+-link preset --------------------------------
  core::ScaleScenarioOptions scenario_options;
  scenario_options.hierarchy = topo::hierarchy_scale_options();
  StopWatch gen_watch;
  const core::ScaleScenario scenario = make_scale_scenario(scenario_options);
  const double gen_ms = gen_watch.elapsed_ms();
  const std::size_t nodes = scenario.net.graph.node_count();
  const std::size_t links = scenario.net.graph.link_count();
  std::printf("  generate: %zu nodes, %zu links, %zu ODs in %.1f ms\n",
              nodes, links, scenario.task.ods.size(), gen_ms);

  // -- problem build: routing matrix (arena path) + objective -----------
  StopWatch theta_watch;
  const double theta = core::default_scale_theta(scenario);
  const double theta_ms = theta_watch.elapsed_ms();
  core::ProblemOptions problem_options;
  problem_options.theta = theta;
  StopWatch build_watch;
  const core::PlacementProblem problem =
      core::make_problem(scenario, problem_options);
  const double build_ms = build_watch.elapsed_ms();
  const std::size_t candidates = problem.candidates().size();
  const std::size_t terms = problem.objective().term_count();
  std::printf("  problem: %zu candidates, %zu terms, theta=%.4g "
              "(theta %.1f ms, build %.1f ms)\n",
              candidates, terms, theta, theta_ms, build_ms);

  // -- approximation tier: pod partition, certified gap -----------------
  const core::Partition partition =
      core::partition_by_region(problem, scenario.net);
  runtime::ThreadPool approx_pool(runtime::resolve_threads(0));
  core::ApproxOptions approx_options;
  approx_options.pool = &approx_pool;
  approx_options.polish.pool = &approx_pool;
  StopWatch approx_watch;
  const core::ApproxResult approx =
      core::solve_approx(problem, partition, approx_options);
  const double approx_ms = approx_watch.elapsed_ms();
  const double gap_rel = approx.certificate.relative_gap;
  std::printf("  approx tier: %zu groups, value=%.6g, certified gap=%.3g "
              "(%.4f%%) in %.1f ms [%lld subsolve iters] %s\n",
              approx.groups, approx.solution.total_utility,
              approx.certificate.gap, gap_rel * 100.0, approx_ms,
              approx.subsolve_iterations,
              gap_rel <= 0.01 ? "<= 1% target" : "ABOVE 1% TARGET");

  // -- intra-solve parallel speedup: 1 vs 8 threads ---------------------
  // Fixed-iteration exact solves (identical deterministic work: the
  // parallel path is bit-identical to serial, so both runs execute the
  // same iterates) measure the per-iteration sharding win.
  opt::SolverOptions solve_options;
  solve_options.max_iterations = 200;
  solve_options.parallel_min_terms = 0;
  const auto timed_solve = [&](unsigned threads) {
    runtime::ThreadPool pool(threads);
    opt::SolverOptions options = solve_options;
    options.pool = &pool;
    opt::SolverWorkspace workspace;
    double value = 0.0;
    const double ms = min_ms(2, [&] {
      value = opt::maximize(problem.objective(), problem.constraints(),
                            options, nullptr, &workspace)
                  .value;
    });
    return std::pair<double, double>(ms, value);
  };
  const auto [solve1_ms, value1] = timed_solve(1);
  const auto [solve8_ms, value8] = timed_solve(8);
  const double intra_speedup_8t = solve1_ms / solve8_ms;
  std::printf("  exact %d-iter solve: 1t=%.1f ms  8t=%.1f ms  "
              "speedup=%.2fx (%s)\n",
              solve_options.max_iterations, solve1_ms, solve8_ms,
              intra_speedup_8t,
              value1 == value8 ? "bit-identical" : "MISMATCH");

  BenchReport report("scaling_perf", hw_threads);
  report.result("scale_instance")
      .metric("hw_threads", static_cast<double>(hw_threads))
      .metric("nodes", static_cast<double>(nodes))
      .metric("links", static_cast<double>(links))
      .metric("ods", static_cast<double>(scenario.task.ods.size()))
      .metric("candidates", static_cast<double>(candidates))
      .metric("terms", static_cast<double>(terms))
      .metric("gen_ms", gen_ms)
      .metric("build_ms", theta_ms + build_ms)
      .metric("approx_groups", static_cast<double>(approx.groups))
      .metric("approx_ms", approx_ms)
      .metric("approx_value", approx.solution.total_utility)
      .metric("gap_rel", gap_rel)
      .metric("subsolve_iters",
              static_cast<double>(approx.subsolve_iterations))
      .metric("solve1_ms", solve1_ms)
      .metric("solve8_ms", solve8_ms)
      .metric("intra_speedup_8t", intra_speedup_8t)
      .metric("solve_bit_identical", value1 == value8 ? 1.0 : 0.0);
  report.emit();

  // The bench itself enforces the two correctness bits so a manual run
  // fails loudly; the perf gate re-checks them from the JSON.
  if (gap_rel > 0.01 || value1 != value8) return 1;
  return 0;
}

}  // namespace

int main() { return run(); }
