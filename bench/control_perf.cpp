// PERF — control-loop step latency, decomposed by stage. The streaming
// re-optimization loop (src/control/) runs once per 5-minute measurement
// bin, so its absolute budget is generous; what matters is that the
// common path (track -> decide -> hold) stays microseconds-cheap so an
// operator can run it per-bin for thousands of tasks, and that the
// re-solve path is dominated by the (warm-started) solver, not by loop
// bookkeeping. Emits BENCH_control.json rows:
//   stages       — tracker observe / policy decide / actuator decide, ns
//   step_track   — full ControlLoop::step on a steady bin (no re-solve)
//   step_resolve — full step with a forced warm re-solve + push
#include <cstdio>
#include <vector>

#include "netmon.hpp"
#include "util/bench_report.hpp"

namespace {

using namespace netmon;

/// Min-over-blocks timing (scheduling noise only ever adds time).
template <typename Body>
double min_ns_per_call(int reps, Body&& body) {
  double best = 0.0;
  for (int b = 0; b < 5; ++b) {
    StopWatch watch;
    for (int i = 0; i < reps; ++i) body();
    const double ns = watch.elapsed_ms() * 1e6 / reps;
    if (b == 0 || ns < best) best = ns;
  }
  return best;
}

control::BinObservation steady_observation(const core::GeantScenario& s) {
  control::BinObservation bin;
  bin.loads = s.loads;
  bin.od_rates.reserve(s.task.ods.size());
  for (const routing::OdPair& od : s.task.ods)
    bin.od_rates.push_back(traffic::demand_for(s.demands, od));
  return bin;
}

}  // namespace

int main() {
  std::printf("== control_perf: loop step latency by stage ==\n");
  const core::GeantScenario scenario = core::make_geant_scenario();
  const control::BinObservation bin = steady_observation(scenario);

  BenchReport report("control_perf", 1);

  // --- Stage microbenchmarks. ---
  control::TrafficTracker tracker(scenario.task);
  const double track_ns = min_ns_per_call(
      20000, [&] { (void)tracker.observe(bin.od_rates); });

  control::ReoptimizePolicy policy;
  control::PolicyInput decide_input;
  decide_input.bins_since_resolve = 1;
  decide_input.have_incumbent = true;
  decide_input.innovation_rms = 0.5;
  decide_input.budget_used = 100000.0;
  decide_input.theta = 100000.0;
  double sink = 0.0;
  const double decide_ns = min_ns_per_call(200000, [&] {
    decide_input.innovation_rms += 1e-9;  // defeat value caching
    sink += static_cast<double>(policy.decide(decide_input));
  });

  const control::Actuator actuator;
  control::ActuationInput act_input;
  act_input.incumbent_utility = 10.0;
  act_input.fresh_utility = 10.5;
  act_input.bins_since_push = 5;
  const double actuate_ns = min_ns_per_call(200000, [&] {
    act_input.fresh_utility += 1e-12;
    sink += actuator.decide(act_input).utility_gain ? 1.0 : 0.0;
  });

  std::printf("  tracker.observe(20 ODs)=%.0f ns  policy.decide=%.0f ns"
              "  actuator.decide=%.0f ns (sink %.3g)\n",
              track_ns, decide_ns, actuate_ns, sink);
  report.result("stages")
      .metric("track_ns", track_ns)
      .metric("decide_ns", decide_ns)
      .metric("actuate_ns", actuate_ns);

  // --- Full steps: the steady (hold) path and the re-solve path. ---
  // Steady: after convergence the policy stops triggering, so step() is
  // track + incumbent evaluation + decide.
  {
    control::ControlLoop loop(scenario.net.graph, scenario.task);
    for (int i = 0; i < 8; ++i) (void)loop.step(bin);  // converge
    const double step_us =
        min_ns_per_call(500, [&] { (void)loop.step(bin); }) / 1e3;
    std::printf("  step(track+hold)=%.1f us\n", step_us);
    report.result("step_track").metric("step_us", step_us);
  }

  // Re-solve: staleness bound of 1 forces a warm re-solve every bin, a
  // zero hysteresis threshold pushes every fresh optimum, and the
  // observed rates swing +/-20% between bins in alternating directions
  // per OD (a uniform swing would leave the optimal allocation fixed),
  // so each warm solve does real tracker-sized-delta work instead of
  // confirming a fixed point.
  {
    control::ControlConfig config;
    config.policy.max_bins_between = 1;
    config.actuator.min_utility_gain = 0.0;
    control::ControlLoop loop(scenario.net.graph, scenario.task, config);
    control::BinObservation hi = bin, lo = bin;
    for (std::size_t k = 0; k < bin.od_rates.size(); ++k) {
      hi.od_rates[k] *= (k % 2 == 0) ? 1.20 : 0.80;
      lo.od_rates[k] *= (k % 2 == 0) ? 0.80 : 1.20;
    }
    (void)loop.step(hi);
    (void)loop.step(lo);  // warm the scratch on both phases
    int iterations = 0;
    bool flip = false;
    const double step_us = min_ns_per_call(200, [&] {
                             flip = !flip;
                             const control::StepResult r =
                                 loop.step(flip ? hi : lo);
                             iterations = r.solve_iterations;
                           }) /
                           1e3;
    std::printf("  step(track+resolve+actuate)=%.1f us (%d warm solver"
                " iterations per bin)\n",
                step_us, iterations);
    report.result("step_resolve")
        .metric("step_us", step_us)
        .metric("solve_iterations", iterations);
  }

  report.emit();
  return 0;
}
