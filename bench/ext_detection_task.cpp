// EXT3 — anomaly detection as the measurement task (paper §VI: "Our
// ongoing work is centered on defining new expressions for the utility
// function for applications such as anomaly detection").
//
// Utility: M(rho) = 1 - (1-rho)^S, the probability that an anomalous
// flow of S packets crossing the network is seen by at least one monitor.
// The bench sweeps the anomaly size S and reports, for each, the worst
// per-OD detection probability achievable at theta = 100,000 — for the
// jointly optimized placement and for the uniform "NetFlow everywhere"
// baseline — i.e. the smallest anomaly the network can reliably catch.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>

#include "core/maximin.hpp"
#include "netmon.hpp"
#include "util/table.hpp"

namespace {

using namespace netmon;

// Builds the detection objective over the problem's routing rows.
opt::SeparableConcaveObjective detection_objective(
    const core::PlacementProblem& problem, double anomaly_packets) {
  opt::SeparableConcaveObjective::SparseRows rows;
  const auto& candidates = problem.candidates();
  for (std::size_t k = 0; k < problem.routing().od_count(); ++k) {
    std::vector<std::pair<std::size_t, double>> row;
    for (const auto& [link, frac] : problem.routing().row(k)) {
      const auto it =
          std::find(candidates.begin(), candidates.end(), link);
      if (it != candidates.end())
        row.emplace_back(
            static_cast<std::size_t>(it - candidates.begin()), frac);
    }
    rows.push_back(std::move(row));
  }
  std::vector<std::shared_ptr<const opt::Concave1d>> utilities(
      problem.routing().od_count(),
      std::make_shared<core::DetectionUtility>(anomaly_packets));
  return opt::SeparableConcaveObjective(candidates.size(), std::move(rows),
                                        std::move(utilities));
}

double worst_detection(const core::PlacementProblem& problem,
                       const sampling::RateVector& rates,
                       double anomaly_packets) {
  const core::DetectionUtility m(anomaly_packets);
  double worst = 1.0;
  for (std::size_t k = 0; k < problem.routing().od_count(); ++k) {
    const double rho =
        sampling::effective_rate_approx(problem.routing(), k, rates);
    worst = std::min(worst, m.value(rho));
  }
  return worst;
}

}  // namespace

int main() {
  std::printf(
      "== EXT3: anomaly-detection utility M(rho) = 1-(1-rho)^S (paper §VI)"
      " ==\n\n");

  const core::GeantScenario scenario = core::make_geant_scenario();
  core::ProblemOptions options;
  options.theta = 100000.0;
  const core::PlacementProblem problem = core::make_problem(scenario, options);

  TextTable table({"anomaly size S (pkts)", "worst detect (sum)",
                   "worst detect (max-min)", "worst detect (uniform)",
                   "active monitors"});
  const sampling::RateVector uniform = core::uniform_rates(problem);

  for (double s : {50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0}) {
    const auto objective = detection_objective(problem, s);
    opt::SolverOptions solver;
    solver.max_iterations = 8000;
    const opt::SolveResult r =
        opt::maximize(objective, problem.constraints(), solver);
    const sampling::RateVector rates = problem.expand(r.p);
    // Max-min variant of the same detection objective.
    const core::SmoothMinObjective maximin(objective, 200.0);
    const opt::SolveResult mm =
        opt::maximize(maximin, problem.constraints(), solver);
    const sampling::RateVector mm_rates = problem.expand(mm.p);
    std::size_t active = 0;
    for (double p : rates) active += p > 1e-9;
    table.add_row({fmt_fixed(s, 0),
                   fmt_fixed(worst_detection(problem, rates, s), 4),
                   fmt_fixed(worst_detection(problem, mm_rates, s), 4),
                   fmt_fixed(worst_detection(problem, uniform, s), 4),
                   std::to_string(active)});
  }
  std::cout << table.render();

  std::printf(
      "\nreading: with the detection utility the SUM objective triages —"
      " for small anomalies\nit abandons the OD pairs that are expensive"
      " to watch (worst = 0) to maximize the\ntotal catch; the max-min"
      " variant spreads the budget so every OD pair keeps the best\n"
      "achievable floor, and for sizable anomalies the optimized placement"
      " detects flows\nseveral times smaller than the uniform"
      " configuration at equal budget.\n");
  return 0;
}
