// SEC4D — reproduces the algorithm statistics of paper §IV-D:
// 200 independent executions with different inputs (OD pair sizes, link
// loads, capacity theta). The paper reports: optimum found in < 2000
// iterations in 98.6% of cases; constraint-release events (negative
// Lagrange multipliers) average 1.64 with standard deviation 1.17.
#include <cstdio>
#include <iostream>

#include "netmon.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace netmon;

  std::printf(
      "== SEC4D: solver convergence over 200 randomized executions"
      " (paper §IV-D) ==\n\n");

  Rng rng(4242);
  RunningStats iterations, releases;
  int converged = 0;
  const int kRuns = 200;

  for (int run = 0; run < kRuns; ++run) {
    // Different inputs per execution: background volume, OD sizes, theta.
    core::ScenarioOptions scenario_options;
    scenario_options.background_pkt_per_sec = rng.uniform(0.7e6, 2.2e6);
    core::GeantScenario scenario = core::make_geant_scenario(scenario_options);
    for (double& s : scenario.task.expected_packets)
      s *= rng.uniform(0.4, 2.5);

    core::ProblemOptions options;
    options.theta = rng.uniform(30000.0, 400000.0);
    const core::PlacementProblem problem(scenario.net.graph, scenario.task,
                                         scenario.loads, options);
    opt::SolverOptions solver;
    solver.max_iterations = 2000;  // the paper's threshold
    const core::PlacementSolution solution =
        core::solve_placement(problem, solver);

    iterations.add(solution.iterations);
    releases.add(solution.release_events);
    converged += solution.status == opt::SolveStatus::kOptimal;
  }

  TextTable table({"metric", "measured", "paper"});
  table.add_row({"runs", std::to_string(kRuns), "200"});
  table.add_row({"converged < 2000 iterations",
                 fmt_percent(static_cast<double>(converged) / kRuns),
                 "98.6%"});
  table.add_row({"iterations (mean)", fmt_fixed(iterations.mean(), 1), "-"});
  table.add_row({"iterations (max)", fmt_fixed(iterations.max(), 0), "-"});
  table.add_row(
      {"constraint releases (mean)", fmt_fixed(releases.mean(), 2), "1.64"});
  table.add_row(
      {"constraint releases (std)", fmt_fixed(releases.stddev(), 2), "1.17"});
  table.add_row({"constraint releases (max)", fmt_fixed(releases.max(), 0),
                 "-"});
  std::cout << table.render();
  return 0;
}
