// SEC4D — reproduces the algorithm statistics of paper §IV-D:
// 200 independent executions with different inputs (OD pair sizes, link
// loads, capacity theta). The paper reports: optimum found in < 2000
// iterations in 98.6% of cases; constraint-release events (negative
// Lagrange multipliers) average 1.64 with standard deviation 1.17.
//
// The runs are embarrassingly parallel and fan out across the runtime
// thread pool (NETMON_THREADS, default hardware_concurrency). Run r
// draws every random input from substream r of the fixed seed, so the
// statistics are bit-identical at any thread count.
#include <cstdio>
#include <iostream>
#include <vector>

#include "netmon.hpp"
#include "util/bench_report.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace netmon;

  std::printf(
      "== SEC4D: solver convergence over 200 randomized executions"
      " (paper §IV-D) ==\n\n");

  const unsigned threads = runtime::threads_from_env();
  runtime::ThreadPool pool(threads);
  const Rng base(4242);
  const int kRuns = 200;

  struct RunResult {
    int iterations = 0;
    int release_events = 0;
    bool converged = false;
  };
  std::vector<RunResult> results(kRuns);

  StopWatch watch;
  runtime::parallel_for(pool, kRuns, [&](std::size_t run) {
    // Different inputs per execution: background volume, OD sizes, theta —
    // all drawn from this run's private substream.
    Rng rng = base.substream(run);
    core::ScenarioOptions scenario_options;
    scenario_options.background_pkt_per_sec = rng.uniform(0.7e6, 2.2e6);
    core::GeantScenario scenario = core::make_geant_scenario(scenario_options);
    for (double& s : scenario.task.expected_packets)
      s *= rng.uniform(0.4, 2.5);

    core::ProblemOptions options;
    options.theta = rng.uniform(30000.0, 400000.0);
    const core::PlacementProblem problem(scenario.net.graph, scenario.task,
                                         scenario.loads, options);
    opt::SolverOptions solver;
    solver.max_iterations = 2000;  // the paper's threshold
    const core::PlacementSolution solution =
        core::solve_placement(problem, solver);

    results[run] = {solution.iterations, solution.release_events,
                    solution.status == opt::SolveStatus::kOptimal};
  });
  const double wall_ms = watch.elapsed_ms();

  RunningStats iterations, releases;
  int converged = 0;
  for (const RunResult& r : results) {
    iterations.add(r.iterations);
    releases.add(r.release_events);
    converged += r.converged;
  }

  TextTable table({"metric", "measured", "paper"});
  table.add_row({"runs", std::to_string(kRuns), "200"});
  table.add_row({"converged < 2000 iterations",
                 fmt_percent(static_cast<double>(converged) / kRuns),
                 "98.6%"});
  table.add_row({"iterations (mean)", fmt_fixed(iterations.mean(), 1), "-"});
  table.add_row({"iterations (max)", fmt_fixed(iterations.max(), 0), "-"});
  table.add_row(
      {"constraint releases (mean)", fmt_fixed(releases.mean(), 2), "1.64"});
  table.add_row(
      {"constraint releases (std)", fmt_fixed(releases.stddev(), 2), "1.17"});
  table.add_row({"constraint releases (max)", fmt_fixed(releases.max(), 0),
                 "-"});
  std::cout << table.render();
  std::printf("\n%d runs on %u threads: %.0f ms wall\n", kRuns, threads,
              wall_ms);

  BenchReport report("sec4d_convergence", threads);
  report.result("randomized_runs")
      .metric("wall_ms", wall_ms)
      .metric("runs", kRuns)
      .metric("converged", converged)
      .metric("iterations_mean", iterations.mean())
      .metric("iterations_max", iterations.max())
      .metric("releases_mean", releases.mean())
      .metric("releases_std", releases.stddev());
  report.emit();
  return 0;
}
