// PERF — google-benchmark microbenchmarks: solver scaling in the number
// of candidate links and OD pairs, routing matrix construction on GEANT,
// and the Monte-Carlo sampling engine throughput. A custom main() then
// measures batch-solve and Monte-Carlo throughput across thread counts
// and emits the machine-readable JSON block tracked across PRs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "netmon.hpp"
#include "opt/barrier.hpp"
#include "util/bench_report.hpp"

namespace {

using namespace netmon;

// Synthetic placement instance: `n` links, `n` OD pairs, each OD crossing
// a shared "first hop" plus its own dedicated link — the structure of the
// GEANT task at configurable scale.
struct SyntheticInstance {
  std::unique_ptr<opt::SeparableConcaveObjective> objective;
  std::unique_ptr<opt::BoxBudgetConstraints> constraints;

  explicit SyntheticInstance(std::size_t n) {
    Rng rng(n);
    opt::SeparableConcaveObjective::SparseRows rows(n);
    std::vector<std::shared_ptr<const opt::Concave1d>> utilities;
    std::vector<double> u(n), alpha(n, 1.0);
    for (std::size_t k = 0; k < n; ++k) {
      rows[k].emplace_back(0, 1.0);            // shared first hop
      if (k != 0) rows[k].emplace_back(k, 1.0);  // dedicated link
      utilities.push_back(std::make_shared<core::SreUtility>(
          1.0 / rng.uniform(5e3, 1e7)));
      u[k] = rng.uniform(1e5, 5e7);
    }
    objective = std::make_unique<opt::SeparableConcaveObjective>(
        n, std::move(rows), std::move(utilities));
    double max_budget = 0.0;
    for (double uj : u) max_budget += uj;
    constraints = std::make_unique<opt::BoxBudgetConstraints>(
        std::move(u), std::move(alpha), max_budget * 0.01);
  }
};

void BM_GradientProjectionSolve(benchmark::State& state) {
  const SyntheticInstance instance(static_cast<std::size_t>(state.range(0)));
  opt::SolverOptions options;
  options.max_iterations = 20000;
  for (auto _ : state) {
    const opt::SolveResult r =
        opt::maximize(*instance.objective, *instance.constraints, options);
    benchmark::DoNotOptimize(r.value);
  }
  state.counters["links"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_GradientProjectionSolve)->Arg(10)->Arg(20)->Arg(50)->Arg(100)->Arg(200);

void BM_BarrierSolve(benchmark::State& state) {
  const SyntheticInstance instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const opt::BarrierResult r =
        opt::maximize_barrier(*instance.objective, *instance.constraints);
    benchmark::DoNotOptimize(r.value);
  }
  state.counters["links"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_BarrierSolve)->Arg(10)->Arg(20)->Arg(50);

void BM_GeantEndToEndSolve(benchmark::State& state) {
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  for (auto _ : state) {
    const core::PlacementSolution s = core::solve_placement(problem);
    benchmark::DoNotOptimize(s.total_utility);
  }
}
BENCHMARK(BM_GeantEndToEndSolve);

void BM_ScenarioBuild(benchmark::State& state) {
  for (auto _ : state) {
    const core::GeantScenario scenario = core::make_geant_scenario();
    benchmark::DoNotOptimize(scenario.loads.size());
  }
}
BENCHMARK(BM_ScenarioBuild);

void BM_RoutingMatrixGeant(benchmark::State& state) {
  const core::GeantScenario scenario = core::make_geant_scenario();
  for (auto _ : state) {
    const auto matrix = routing::RoutingMatrix::single_path(
        scenario.net.graph, scenario.task.ods);
    benchmark::DoNotOptimize(matrix.od_count());
  }
}
BENCHMARK(BM_RoutingMatrixGeant);

void BM_SamplingSimulationFastPath(benchmark::State& state) {
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  const core::PlacementSolution solution = core::solve_placement(problem);
  Rng rng(1);
  traffic::TrafficMatrix demands;
  for (std::size_t k = 0; k < scenario.task.ods.size(); ++k) {
    demands.push_back(
        {scenario.task.ods[k],
         scenario.task.expected_packets[k] / scenario.task.interval_sec});
  }
  const auto flows = traffic::generate_all_flows(rng, demands);
  Rng sim(2);
  for (auto _ : state) {
    const auto counts = sampling::simulate_sampling(
        sim, problem.routing(), flows, solution.rates);
    benchmark::DoNotOptimize(counts.size());
  }
}
BENCHMARK(BM_SamplingSimulationFastPath);

void BM_EffectiveRates(benchmark::State& state) {
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  const core::PlacementSolution solution = core::solve_placement(problem);
  for (auto _ : state) {
    const auto rhos = sampling::effective_rates_exact(problem.routing(),
                                                      solution.rates);
    benchmark::DoNotOptimize(rhos.size());
  }
}
BENCHMARK(BM_EffectiveRates);

// -- linalg kernel microbenchmarks on the GEANT objective's CSR matrix --

void BM_SpmvGeant(benchmark::State& state) {
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  const linalg::SparseCsr& m = problem.objective().matrix();
  std::vector<double> x(m.cols(), 0.01), y(m.rows());
  for (auto _ : state) {
    linalg::spmv(m, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["nnz"] = static_cast<double>(m.nnz());
}
BENCHMARK(BM_SpmvGeant);

void BM_SpmvTransposedGeant(benchmark::State& state) {
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  const linalg::SparseCsr& m = problem.objective().matrix();
  std::vector<double> x(m.rows(), 0.01), y(m.cols());
  for (auto _ : state) {
    linalg::spmv_t(m, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["nnz"] = static_cast<double>(m.nnz());
}
BENCHMARK(BM_SpmvTransposedGeant);

void BM_ObjectiveValueGeant(benchmark::State& state) {
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  const auto& f = problem.objective();
  const std::vector<double> p = problem.constraints().initial_point();
  linalg::EvalWorkspace ws;
  (void)f.value(p, ws);  // warm the workspace: the loop is allocation-free
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.value(p, ws));
  }
}
BENCHMARK(BM_ObjectiveValueGeant);

void BM_ObjectiveGradientGeant(benchmark::State& state) {
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  const auto& f = problem.objective();
  const std::vector<double> p = problem.constraints().initial_point();
  std::vector<double> g(f.dimension());
  linalg::EvalWorkspace ws;
  f.gradient(p, g, ws);
  for (auto _ : state) {
    f.gradient(p, g, ws);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_ObjectiveGradientGeant);

void BM_EgressLpmLookup(benchmark::State& state) {
  const core::GeantScenario scenario = core::make_geant_scenario();
  const netflow::EgressMap map =
      netflow::EgressMap::for_pop_blocks(scenario.net.graph);
  Rng rng(3);
  std::vector<net::Ipv4> addrs;
  for (int i = 0; i < 1024; ++i) {
    addrs.push_back(net::ipv4(10, static_cast<std::uint8_t>(rng.below(24)), 1,
                              static_cast<std::uint8_t>(rng.below(250))));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.lookup(addrs[i++ & 1023]));
  }
}
BENCHMARK(BM_EgressLpmLookup);

// Kernel timing section: nanosecond-scale timings of the flat-CSR
// kernels and the workspace-based objective evaluation on GEANT, plus
// cold-vs-warm solve times (warm = reused SolverWorkspace). Lands in
// the JSON report so kernel regressions show up across PRs.
void RunKernelBench() {
  std::printf("\n-- linalg kernels on GEANT --\n");
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  const auto& f = problem.objective();
  const linalg::SparseCsr& m = f.matrix();
  const std::vector<double> p = problem.constraints().initial_point();

  constexpr int kReps = 20000;
  const auto ns_per_call = [](const StopWatch& watch) {
    return watch.elapsed_ms() * 1e6 / kReps;
  };

  std::vector<double> y_rows(m.rows()), y_cols(m.cols());
  StopWatch spmv_watch;
  for (int i = 0; i < kReps; ++i) linalg::spmv(m, p, y_rows);
  const double spmv_ns = ns_per_call(spmv_watch);

  StopWatch spmv_t_watch;
  for (int i = 0; i < kReps; ++i) linalg::spmv_t(m, y_rows, y_cols);
  const double spmv_t_ns = ns_per_call(spmv_t_watch);

  linalg::EvalWorkspace ws;
  double sink = f.value(p, ws);
  StopWatch value_watch;
  for (int i = 0; i < kReps; ++i) sink += f.value(p, ws);
  const double value_ns = ns_per_call(value_watch);

  std::vector<double> g(f.dimension());
  StopWatch gradient_watch;
  for (int i = 0; i < kReps; ++i) f.gradient(p, g, ws);
  const double gradient_ns = ns_per_call(gradient_watch);

  StopWatch cold_watch;
  const core::PlacementSolution cold = core::solve_placement(problem);
  const double solve_cold_ms = cold_watch.elapsed_ms();

  opt::SolverWorkspace solver_ws;
  (void)core::solve_placement(problem, {}, &solver_ws);  // warm the scratch
  StopWatch warm_watch;
  const core::PlacementSolution warm =
      core::solve_placement(problem, {}, &solver_ws);
  const double solve_warm_ms = warm_watch.elapsed_ms();

  std::printf(
      "  spmv=%.0f ns  spmv_t=%.0f ns  value=%.0f ns  gradient=%.0f ns\n"
      "  solve cold=%.2f ms  warm=%.2f ms  (utility %s, sink %.3g)\n",
      spmv_ns, spmv_t_ns, value_ns, gradient_ns, solve_cold_ms, solve_warm_ms,
      cold.total_utility == warm.total_utility ? "bit-identical" : "MISMATCH",
      sink);

  BenchReport report("solver_perf_kernels", 1);
  report.result("geant_kernels")
      .metric("nnz", static_cast<double>(m.nnz()))
      .metric("spmv_ns", spmv_ns)
      .metric("spmv_t_ns", spmv_t_ns)
      .metric("value_ns", value_ns)
      .metric("gradient_ns", gradient_ns)
      .metric("solve_cold_ms", solve_cold_ms)
      .metric("solve_warm_ms", solve_warm_ms);
  report.emit();
}

// Thread-scaling section: the same batch of problems and the same
// Monte-Carlo experiment at 1..8 worker threads. Outputs are
// deterministic per problem, so this doubles as a cross-thread-count
// consistency check; wall times land in the JSON report.
void RunThreadScaling() {
  std::printf("\n-- thread scaling: batch solve + Monte-Carlo --\n");
  const core::GeantScenario scenario = core::make_geant_scenario();

  // 32 placement problems with randomized budgets (the re-optimization
  // workload shape: same network, shifting constraints).
  Rng rng(99);
  std::vector<double> thetas;
  for (int i = 0; i < 32; ++i)
    thetas.push_back(rng.uniform(30000.0, 400000.0));
  std::sort(thetas.begin(), thetas.end());
  const auto problems = core::make_theta_sweep(
      scenario.net.graph, scenario.task, scenario.loads, {}, thetas);

  const core::PlacementProblem problem = core::make_problem(scenario);
  const core::PlacementSolution solution = core::solve_placement(problem);
  Rng flow_rng(1);
  traffic::TrafficMatrix demands;
  for (std::size_t k = 0; k < scenario.task.ods.size(); ++k) {
    demands.push_back(
        {scenario.task.ods[k],
         scenario.task.expected_packets[k] / scenario.task.interval_sec});
  }
  const auto flows = traffic::generate_all_flows(flow_rng, demands);

  BenchReport report("solver_perf", runtime::threads_from_env());
  double reference_utility = 0.0;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    core::BatchOptions batch;
    batch.threads = threads;
    StopWatch solve_watch;
    const auto solutions = core::BatchSolver(batch).solve(problems);
    const double solve_ms = solve_watch.elapsed_ms();

    double utility = 0.0;
    for (const auto& s : solutions) utility += s.total_utility;
    if (threads == 1) reference_utility = utility;

    runtime::ThreadPool mc_pool(threads);
    StopWatch mc_watch;
    const auto runs = sampling::simulate_sampling_runs(
        mc_pool, Rng(7), problem.routing(), flows, solution.rates, 64);
    const double mc_ms = mc_watch.elapsed_ms();

    std::printf("  threads=%u  batch_solve(32)=%7.1f ms  monte_carlo(64)="
                "%7.1f ms  sum_utility=%.6f (%s)\n",
                threads, solve_ms, mc_ms, utility,
                utility == reference_utility ? "bit-identical" : "MISMATCH");
    report.result("threads_" + std::to_string(threads))
        .metric("batch_solve_ms", solve_ms)
        .metric("monte_carlo_ms", mc_ms)
        .metric("batch_problems", static_cast<double>(problems.size()))
        .metric("mc_runs", static_cast<double>(runs.size()))
        .metric("sum_utility", utility);
  }
  report.emit();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  RunKernelBench();
  RunThreadScaling();
  return 0;
}
