// PERF — google-benchmark microbenchmarks: solver scaling in the number
// of candidate links and OD pairs, routing matrix construction on GEANT,
// and the Monte-Carlo sampling engine throughput. A custom main() then
// measures batch-solve and Monte-Carlo throughput across thread counts
// and emits the machine-readable JSON block tracked across PRs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "netmon.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "opt/barrier.hpp"
#include "opt/fused_eval.hpp"
#include "util/bench_report.hpp"
#include "util/page_alloc.hpp"

namespace {

using namespace netmon;

// Synthetic placement instance: `n` links, `n` OD pairs, each OD crossing
// a shared "first hop" plus its own dedicated link — the structure of the
// GEANT task at configurable scale.
struct SyntheticInstance {
  std::unique_ptr<opt::SeparableConcaveObjective> objective;
  std::unique_ptr<opt::BoxBudgetConstraints> constraints;

  explicit SyntheticInstance(std::size_t n) {
    Rng rng(n);
    opt::SeparableConcaveObjective::SparseRows rows(n);
    std::vector<std::shared_ptr<const opt::Concave1d>> utilities;
    std::vector<double> u(n), alpha(n, 1.0);
    for (std::size_t k = 0; k < n; ++k) {
      rows[k].emplace_back(0, 1.0);            // shared first hop
      if (k != 0) rows[k].emplace_back(k, 1.0);  // dedicated link
      utilities.push_back(std::make_shared<core::SreUtility>(
          1.0 / rng.uniform(5e3, 1e7)));
      u[k] = rng.uniform(1e5, 5e7);
    }
    objective = std::make_unique<opt::SeparableConcaveObjective>(
        n, std::move(rows), std::move(utilities));
    double max_budget = 0.0;
    for (double uj : u) max_budget += uj;
    constraints = std::make_unique<opt::BoxBudgetConstraints>(
        std::move(u), std::move(alpha), max_budget * 0.01);
  }
};

void BM_GradientProjectionSolve(benchmark::State& state) {
  const SyntheticInstance instance(static_cast<std::size_t>(state.range(0)));
  opt::SolverOptions options;
  options.max_iterations = 20000;
  for (auto _ : state) {
    const opt::SolveResult r =
        opt::maximize(*instance.objective, *instance.constraints, options);
    benchmark::DoNotOptimize(r.value);
  }
  state.counters["links"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_GradientProjectionSolve)->Arg(10)->Arg(20)->Arg(50)->Arg(100)->Arg(200);

void BM_BarrierSolve(benchmark::State& state) {
  const SyntheticInstance instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const opt::BarrierResult r =
        opt::maximize_barrier(*instance.objective, *instance.constraints);
    benchmark::DoNotOptimize(r.value);
  }
  state.counters["links"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_BarrierSolve)->Arg(10)->Arg(20)->Arg(50);

void BM_GeantEndToEndSolve(benchmark::State& state) {
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  for (auto _ : state) {
    const core::PlacementSolution s = core::solve_placement(problem);
    benchmark::DoNotOptimize(s.total_utility);
  }
}
BENCHMARK(BM_GeantEndToEndSolve);

void BM_ScenarioBuild(benchmark::State& state) {
  for (auto _ : state) {
    const core::GeantScenario scenario = core::make_geant_scenario();
    benchmark::DoNotOptimize(scenario.loads.size());
  }
}
BENCHMARK(BM_ScenarioBuild);

void BM_RoutingMatrixGeant(benchmark::State& state) {
  const core::GeantScenario scenario = core::make_geant_scenario();
  for (auto _ : state) {
    const auto matrix = routing::RoutingMatrix::single_path(
        scenario.net.graph, scenario.task.ods);
    benchmark::DoNotOptimize(matrix.od_count());
  }
}
BENCHMARK(BM_RoutingMatrixGeant);

void BM_SamplingSimulationFastPath(benchmark::State& state) {
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  const core::PlacementSolution solution = core::solve_placement(problem);
  Rng rng(1);
  traffic::TrafficMatrix demands;
  for (std::size_t k = 0; k < scenario.task.ods.size(); ++k) {
    demands.push_back(
        {scenario.task.ods[k],
         scenario.task.expected_packets[k] / scenario.task.interval_sec});
  }
  const auto flows = traffic::generate_all_flows(rng, demands);
  Rng sim(2);
  for (auto _ : state) {
    const auto counts = sampling::simulate_sampling(
        sim, problem.routing(), flows, solution.rates);
    benchmark::DoNotOptimize(counts.size());
  }
}
BENCHMARK(BM_SamplingSimulationFastPath);

void BM_EffectiveRates(benchmark::State& state) {
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  const core::PlacementSolution solution = core::solve_placement(problem);
  for (auto _ : state) {
    const auto rhos = sampling::effective_rates_exact(problem.routing(),
                                                      solution.rates);
    benchmark::DoNotOptimize(rhos.size());
  }
}
BENCHMARK(BM_EffectiveRates);

// -- linalg kernel microbenchmarks on the GEANT objective's CSR matrix --

void BM_SpmvGeant(benchmark::State& state) {
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  const linalg::SparseCsr& m = problem.objective().matrix();
  std::vector<double> x(m.cols(), 0.01), y(m.rows());
  for (auto _ : state) {
    linalg::spmv(m, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["nnz"] = static_cast<double>(m.nnz());
}
BENCHMARK(BM_SpmvGeant);

void BM_SpmvTransposedGeant(benchmark::State& state) {
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  const linalg::SparseCsr& m = problem.objective().matrix();
  std::vector<double> x(m.rows(), 0.01), y(m.cols());
  for (auto _ : state) {
    linalg::spmv_t(m, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["nnz"] = static_cast<double>(m.nnz());
}
BENCHMARK(BM_SpmvTransposedGeant);

void BM_ObjectiveValueGeant(benchmark::State& state) {
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  const auto& f = problem.objective();
  const std::vector<double> p = problem.constraints().initial_point();
  linalg::EvalWorkspace ws;
  (void)f.value(p, ws);  // warm the workspace: the loop is allocation-free
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.value(p, ws));
  }
}
BENCHMARK(BM_ObjectiveValueGeant);

void BM_ObjectiveGradientGeant(benchmark::State& state) {
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  const auto& f = problem.objective();
  const std::vector<double> p = problem.constraints().initial_point();
  std::vector<double> g(f.dimension());
  linalg::EvalWorkspace ws;
  f.gradient(p, g, ws);
  for (auto _ : state) {
    f.gradient(p, g, ws);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_ObjectiveGradientGeant);

void BM_EgressLpmLookup(benchmark::State& state) {
  const core::GeantScenario scenario = core::make_geant_scenario();
  const netflow::EgressMap map =
      netflow::EgressMap::for_pop_blocks(scenario.net.graph);
  Rng rng(3);
  std::vector<net::Ipv4> addrs;
  for (int i = 0; i < 1024; ++i) {
    addrs.push_back(net::ipv4(10, static_cast<std::uint8_t>(rng.below(24)), 1,
                              static_cast<std::uint8_t>(rng.below(250))));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.lookup(addrs[i++ & 1023]));
  }
}
BENCHMARK(BM_EgressLpmLookup);

// Kernel timing section: nanosecond-scale timings of the flat-CSR
// kernels and the workspace-based objective evaluation on GEANT, plus
// cold-vs-warm solve times (warm = reused SolverWorkspace). Lands in
// the JSON report so kernel regressions show up across PRs.
void RunKernelBench() {
  std::printf("\n-- linalg kernels on GEANT --\n");
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem problem = core::make_problem(scenario);
  const auto& f = problem.objective();
  const linalg::SparseCsr& m = f.matrix();
  const std::vector<double> p = problem.constraints().initial_point();

  // Nanosecond-scale sections are timed as min over kBlocks repeated
  // blocks — the minimum is the noise-robust statistic for a perf gate
  // (scheduling and frequency excursions only ever add time).
  constexpr int kReps = 20000;
  constexpr int kBlocks = 5;
  const auto min_ns_per_call = [](auto&& body) {
    double best = 0.0;
    for (int b = 0; b < kBlocks; ++b) {
      StopWatch watch;
      for (int i = 0; i < kReps; ++i) body();
      const double ns = watch.elapsed_ms() * 1e6 / kReps;
      if (b == 0 || ns < best) best = ns;
    }
    return best;
  };

  std::vector<double> y_rows(m.rows()), y_cols(m.cols());
  const double spmv_ns = min_ns_per_call([&] { linalg::spmv(m, p, y_rows); });
  const double spmv_t_ns =
      min_ns_per_call([&] { linalg::spmv_t(m, y_rows, y_cols); });

  linalg::EvalWorkspace ws;
  double sink = f.value(p, ws);
  const double value_ns = min_ns_per_call([&] { sink += f.value(p, ws); });

  std::vector<double> g(f.dimension());
  const double gradient_ns = min_ns_per_call([&] { f.gradient(p, g, ws); });

  // Per-iteration evaluate path, before vs after fusion. "Separate" is
  // the pre-fusion shape: objective value, gradient, and directional
  // Hessian as three entry points (three matrix traversals plus three
  // term passes). "Fused" is what the solver hot loop now runs: inner
  // products maintained incrementally, so one fused term pass plus one
  // transposed scatter yields value + gradient + per-term M'', and the
  // directional second derivative is a dot over the cached M''.
  std::vector<double> s_dir(f.dimension());
  for (std::size_t j = 0; j < s_dir.size(); ++j)
    s_dir[j] = (j % 2 == 0) ? 1e-3 : -5e-4;

  const double separate_ns = min_ns_per_call([&] {
    sink += f.value(p, ws);
    f.gradient(p, g, ws);
    sink += f.directional_second(p, s_dir, ws);
  });

  std::vector<double> x(f.term_count()), rs(f.term_count());
  f.inner_into(p, x);
  linalg::spmv(m, s_dir, rs);
  opt::SeparableConcaveObjective::FusedEval fe =
      f.fused_eval_from_inner(x, g, ws);  // warm
  const double fused_ns = min_ns_per_call([&] {
    fe = f.fused_eval_from_inner(x, g, ws);
    sink += fe.value + f.directional_second_from_terms(fe.m2, rs);
  });
  const double eval_path_speedup = separate_ns / fused_ns;

  std::vector<double> h(f.dimension());
  const double grad_hess_ns = min_ns_per_call(
      [&] { f.grad_hess_diag_from_terms(fe.m1, fe.m2, g, h); });

  // A line-search probe after reset: one batched pass over the terms
  // the direction actually touches (no matrix traversal).
  opt::SeparableRestriction restriction;
  restriction.reset(f, x, s_dir);
  sink += restriction.derivs(0.5).first;  // warm
  double probe_t = 0.5;
  const double probe_ns = min_ns_per_call([&] {
    probe_t += 1e-8;
    sink += restriction.derivs(probe_t).first;
  });

  StopWatch cold_watch;
  const core::PlacementSolution cold = core::solve_placement(problem);
  const double solve_cold_ms = cold_watch.elapsed_ms();

  opt::SolverWorkspace solver_ws;
  (void)core::solve_placement(problem, {}, &solver_ws);  // warm the scratch
  StopWatch warm_watch;
  const core::PlacementSolution warm =
      core::solve_placement(problem, {}, &solver_ws);
  const double solve_warm_ms = warm_watch.elapsed_ms();

  // Whole-solve throughput with the fused path on vs off (the generic
  // path is the pre-fusion solver, kept for ablation), warm workspaces.
  // Same min-over-blocks scheme: iteration counts are deterministic per
  // options, so it/s = iterations * solves-per-second.
  constexpr int kSolveReps = 50;
  const auto solve_iters_per_sec = [&](const opt::SolverOptions& options,
                                       opt::SolverWorkspace& sws) {
    const int iters =
        core::solve_placement(problem, options, &sws).iterations;  // warm
    double best_ms = 0.0;
    for (int b = 0; b < kBlocks; ++b) {
      StopWatch watch;
      for (int i = 0; i < kSolveReps; ++i)
        (void)core::solve_placement(problem, options, &sws);
      const double ms = watch.elapsed_ms() / kSolveReps;
      if (b == 0 || ms < best_ms) best_ms = ms;
    }
    return static_cast<double>(iters) * 1e3 / best_ms;
  };

  opt::SolverOptions fused_opt;  // use_fused defaults to true
  opt::SolverOptions generic_opt;
  generic_opt.use_fused = false;
  const double iters_per_sec_fused = solve_iters_per_sec(fused_opt, solver_ws);
  opt::SolverWorkspace generic_ws;
  const double iters_per_sec_generic =
      solve_iters_per_sec(generic_opt, generic_ws);

  // Observability tax on the warm GEANT eval path, two tiers:
  //   metrics-enabled — the solver counter bundle attached (what a
  //     production BatchSolver-with-registry runs); the perf gate caps
  //     this at 3%.
  //   traced — per-iteration SolverTrace records on top; opt-in
  //     diagnostics, reported but not gated.
  // All variants alternate per solve on the SAME workspace so the memory
  // layout is identical and only the instrumentation differs; each side
  // keeps its per-solve minimum — a warm solve is deterministic work, so
  // the min over hundreds of samples is that variant's noise-free time.
  obs::MetricsRegistry obs_registry;
  obs::SolverTrace obs_trace(1 << 10);  // holds a full GEANT solve
  opt::SolverOptions metrics_opt;
  metrics_opt.counters = obs::register_solver_counters(obs_registry);
  opt::SolverOptions traced_opt = metrics_opt;
  traced_opt.trace = &obs_trace;
  const int instr_iters =
      core::solve_placement(problem, traced_opt, &solver_ws).iterations;
  double min_plain_ms = 0.0, min_metrics_ms = 0.0, min_traced_ms = 0.0;
  for (int i = 0; i < kBlocks * kSolveReps; ++i) {
    StopWatch plain_watch;
    (void)core::solve_placement(problem, fused_opt, &solver_ws);
    const double plain_ms = plain_watch.elapsed_ms();
    if (i == 0 || plain_ms < min_plain_ms) min_plain_ms = plain_ms;
    StopWatch metrics_watch;
    (void)core::solve_placement(problem, metrics_opt, &solver_ws);
    const double metrics_ms = metrics_watch.elapsed_ms();
    if (i == 0 || metrics_ms < min_metrics_ms) min_metrics_ms = metrics_ms;
    StopWatch traced_watch;
    (void)core::solve_placement(problem, traced_opt, &solver_ws);
    const double traced_ms = traced_watch.elapsed_ms();
    if (i == 0 || traced_ms < min_traced_ms) min_traced_ms = traced_ms;
  }
  const double iters_per_sec_instrumented =
      static_cast<double>(instr_iters) * 1e3 / min_metrics_ms;
  const double obs_overhead_pct =
      std::max(0.0, (min_metrics_ms / min_plain_ms - 1.0) * 100.0);
  const double trace_overhead_pct =
      std::max(0.0, (min_traced_ms / min_plain_ms - 1.0) * 100.0);

  std::printf(
      "  spmv=%.0f ns  spmv_t=%.0f ns  value=%.0f ns  gradient=%.0f ns\n"
      "  eval path: separate=%.0f ns  fused=%.0f ns  speedup=%.2fx\n"
      "  grad+hess scatter=%.0f ns  line-search probe=%.0f ns "
      "(%zu/%zu active terms)\n"
      "  solve cold=%.2f ms  warm=%.2f ms  (utility %s, sink %.3g)\n"
      "  solve throughput: fused=%.0f it/s  generic=%.0f it/s  (%.2fx)\n"
      "  metrics-enabled=%.0f it/s  obs overhead=%.2f%%  traced=+%.2f%%\n",
      spmv_ns, spmv_t_ns, value_ns, gradient_ns, separate_ns, fused_ns,
      eval_path_speedup, grad_hess_ns, probe_ns, restriction.active_terms(),
      f.term_count(), solve_cold_ms, solve_warm_ms,
      cold.total_utility == warm.total_utility ? "bit-identical" : "MISMATCH",
      sink, iters_per_sec_fused, iters_per_sec_generic,
      iters_per_sec_fused / iters_per_sec_generic, iters_per_sec_instrumented,
      obs_overhead_pct, trace_overhead_pct);

  BenchReport report("solver_perf_kernels", 1);
  report.result("geant_kernels")
      .metric("nnz", static_cast<double>(m.nnz()))
      .metric("spmv_ns", spmv_ns)
      .metric("spmv_t_ns", spmv_t_ns)
      .metric("value_ns", value_ns)
      .metric("gradient_ns", gradient_ns)
      .metric("eval_separate_ns", separate_ns)
      .metric("eval_fused_ns", fused_ns)
      .metric("eval_path_speedup", eval_path_speedup)
      .metric("grad_hess_ns", grad_hess_ns)
      .metric("ls_probe_ns", probe_ns)
      .metric("solve_cold_ms", solve_cold_ms)
      .metric("solve_warm_ms", solve_warm_ms)
      .metric("iters_per_sec_fused", iters_per_sec_fused)
      .metric("iters_per_sec_generic", iters_per_sec_generic)
      .metric("iters_per_sec_instrumented", iters_per_sec_instrumented)
      .metric("obs_overhead_pct", obs_overhead_pct)
      .metric("trace_overhead_pct", trace_overhead_pct);
  report.emit();
}

// Leveled SIMD sweep over the utility batch kernels: per-family rows
// (SRE — the vectorized family — and log, the scalar-only control) and
// per-regime-mix rows (all-quadratic, all-rational, regime-partitioned
// split, unpartitioned interleave) at 256 / 4096 / 65536 terms. Every
// row times the scalar reference and every available dispatch level
// (min over blocks) and verifies bit identity across ALL levels. The
// headline row, sre_fused_4096, is the regime-partitioned split at 4096
// terms — the layout the line-search restriction feeds the kernels
// after its reset()-time partition — and carries the gated metrics
// (fused_scalar_ns / fused_simd_ns / simd_speedup / bit_identical /
// simd_level) plus the opt-in fast-math leg's speedup and measured
// relative error.
void RunSimdKernelSweep() {
  const opt::SimdLevel max_level = opt::simd_max_level();
  std::printf(
      "\n-- utility batch kernels: leveled SIMD dispatch (max=%s) --\n",
      opt::simd_level_name(max_level));
  const opt::SimdLevel saved_level = opt::simd_dispatch_level();
  const bool saved_fm = opt::simd_fastmath_enabled();
  opt::set_simd_fastmath(false);

  enum Mix { kQuad, kRat, kSplit, kInterleaved, kLogUniform };
  struct Sweep {
    std::unique_ptr<opt::SeparableConcaveObjective> f;
    // Page-backed like the solver's own workspace buffers, so the sweep
    // times the kernels under the library's buffer placement.
    util::PageVector<double> x;
  };
  const auto make_sweep = [](Mix mix, std::size_t terms) {
    Sweep s;
    Rng rng(terms * 31 + static_cast<std::size_t>(mix));
    opt::SeparableConcaveObjective::SparseRows rows(terms);
    std::vector<std::shared_ptr<const opt::Concave1d>> utilities;
    for (std::size_t k = 0; k < terms; ++k) {
      rows[k].emplace_back(0, 1.0);
      if (mix == kLogUniform) {
        utilities.push_back(
            std::make_shared<core::LogUtility>(rng.uniform(0.01, 1.0)));
        s.x.push_back(rng.uniform(0.0, 1.0));
        continue;
      }
      const double c = rng.uniform(0.01, 0.5);
      const double x0 = core::SreUtility::pivot_for(c);
      utilities.push_back(std::make_shared<core::SreUtility>(c));
      const bool quad = mix == kQuad || (mix == kSplit && k < terms / 2) ||
                        (mix == kInterleaved && rng.below(2) == 0);
      s.x.push_back(quad ? x0 * rng.uniform(0.05, 0.95)
                         : x0 * (1.0 + rng.uniform(0.05, 3.0)));
    }
    s.f = std::make_unique<opt::SeparableConcaveObjective>(
        1, std::move(rows), std::move(utilities));
    return s;
  };

  // Rep counts scale inversely with the term count so every size gets
  // comparable total work per timed block; min over blocks as usual.
  const auto min_ns = [](const Sweep& s, util::PageVector<double>& v,
                         util::PageVector<double>& m1,
                         util::PageVector<double>& m2) {
    const int reps = static_cast<int>(
        std::max<std::size_t>(32, (std::size_t{1} << 23) / s.x.size()));
    s.f->fused_terms(s.x, v, m1, m2);  // warm
    double best = 0.0;
    for (int b = 0; b < 5; ++b) {
      StopWatch watch;
      for (int i = 0; i < reps; ++i) s.f->fused_terms(s.x, v, m1, m2);
      const double ns = watch.elapsed_ms() * 1e6 / reps;
      if (b == 0 || ns < best) best = ns;
    }
    return best;
  };
  const auto bits_equal = [](const util::PageVector<double>& a,
                             const util::PageVector<double>& b) {
    return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
  };

  // One sweep row: scalar baseline, then every available vector level —
  // timed and bit-compared against the scalar outputs.
  struct Row {
    std::string name;
    std::size_t terms = 0;
    double scalar_ns = 0.0;
    double simd_ns = 0.0;  // at max_level
    bool identical = true;
  };
  const auto run_row = [&](const char* name, Mix mix, std::size_t terms,
                           std::vector<double>* scalar_out = nullptr) {
    const Sweep s = make_sweep(mix, terms);
    const std::size_t m = s.x.size();
    util::PageVector<double> v_s(m), m1_s(m), m2_s(m), v(m), m1(m), m2(m);
    Row row;
    row.name = name;
    row.terms = terms;
    opt::set_simd_dispatch_level(opt::SimdLevel::kScalar);
    row.scalar_ns = min_ns(s, v_s, m1_s, m2_s);
    row.simd_ns = row.scalar_ns;
    for (int l = 1; l <= static_cast<int>(max_level); ++l) {
      opt::set_simd_dispatch_level(static_cast<opt::SimdLevel>(l));
      row.simd_ns = min_ns(s, v, m1, m2);
      row.identical = row.identical && bits_equal(v_s, v) &&
                      bits_equal(m1_s, m1) && bits_equal(m2_s, m2);
    }
    std::printf("  %-18s terms=%-6zu scalar=%8.0f ns  %s=%8.0f ns  "
                "speedup=%.2fx  %s\n",
                name, terms, row.scalar_ns, opt::simd_level_name(max_level),
                row.simd_ns, row.scalar_ns / row.simd_ns,
                row.identical ? "bit-identical" : "MISMATCH");
    if (scalar_out != nullptr) {
      scalar_out->clear();
      scalar_out->insert(scalar_out->end(), v_s.begin(), v_s.end());
      scalar_out->insert(scalar_out->end(), m1_s.begin(), m1_s.end());
      scalar_out->insert(scalar_out->end(), m2_s.begin(), m2_s.end());
    }
    return row;
  };

  // Headline case first: regime-partitioned SRE at 4096 terms, plus its
  // fast-math leg (reciprocal + Newton; gated on relative error, not on
  // bit identity).
  std::vector<double> headline_ref;
  const Row headline = run_row("sre_split_4096", kSplit, 4096, &headline_ref);
  double fastmath_ns = headline.simd_ns;
  double fastmath_rel_err = 0.0;
  if (max_level != opt::SimdLevel::kScalar) {
    const Sweep s = make_sweep(kSplit, 4096);
    const std::size_t m = s.x.size();
    util::PageVector<double> v(m), m1(m), m2(m);
    opt::set_simd_dispatch_level(max_level);
    opt::set_simd_fastmath(true);
    fastmath_ns = min_ns(s, v, m1, m2);
    opt::set_simd_fastmath(false);
    const auto rel = [&](double got, double ref) {
      return std::abs(got - ref) / std::max(1.0, std::abs(ref));
    };
    for (std::size_t k = 0; k < m; ++k) {
      fastmath_rel_err = std::max(
          {fastmath_rel_err, rel(v[k], headline_ref[k]),
           rel(m1[k], headline_ref[m + k]), rel(m2[k], headline_ref[2 * m + k])});
    }
    std::printf("  %-18s terms=%-6zu fastmath=%6.0f ns  speedup=%.2fx  "
                "rel_err=%.2e\n",
                "sre_split_4096/fm", m, fastmath_ns,
                headline.scalar_ns / fastmath_ns, fastmath_rel_err);
  }

  // The full grid: every family x regime mix x size.
  std::vector<Row> rows;
  for (const std::size_t terms : {std::size_t{256}, std::size_t{4096},
                                  std::size_t{65536}}) {
    const auto label = [terms](const char* mix) {
      return std::string("sre_") + mix + "_" + std::to_string(terms);
    };
    rows.push_back(run_row(label("quad").c_str(), kQuad, terms));
    rows.push_back(run_row(label("rat").c_str(), kRat, terms));
    rows.push_back(run_row(label("split").c_str(), kSplit, terms));
    rows.push_back(run_row(label("mixed").c_str(), kInterleaved, terms));
    rows.push_back(run_row(
        ("log_uniform_" + std::to_string(terms)).c_str(), kLogUniform,
        terms));
  }
  opt::set_simd_dispatch_level(saved_level);
  opt::set_simd_fastmath(saved_fm);

  bool all_identical = headline.identical;
  for (const Row& row : rows) all_identical = all_identical && row.identical;

  // Headline row first so the gate's first-match extraction lands on the
  // gated keys; bit_identical aggregates EVERY row at EVERY level.
  BenchReport report("solver_perf_simd", 1);
  report.result("sre_fused_4096")
      .metric("terms", static_cast<double>(headline.terms))
      .metric("simd_level", static_cast<double>(max_level))
      .metric("fused_scalar_ns", headline.scalar_ns)
      .metric("fused_simd_ns", headline.simd_ns)
      .metric("simd_speedup", headline.scalar_ns / headline.simd_ns)
      .metric("fastmath_ns", fastmath_ns)
      .metric("fastmath_speedup", headline.scalar_ns / fastmath_ns)
      .metric("fastmath_rel_err", fastmath_rel_err)
      .metric("bit_identical", all_identical ? 1.0 : 0.0);
  for (const Row& row : rows) {
    report.result(row.name)
        .metric("terms", static_cast<double>(row.terms))
        .metric("scalar_ns", row.scalar_ns)
        .metric("simd_ns", row.simd_ns)
        .metric("speedup", row.scalar_ns / row.simd_ns)
        .metric("identical", row.identical ? 1.0 : 0.0);
  }
  report.emit();
}

// Warm-start savings at control-loop perturbation sizes: the streaming
// loop (src/control/) re-solves a problem whose task sizes moved a few
// percent between 5-minute bins — tracker-tracked diurnal drift — and
// warm-starts from the incumbent rates. This section measures how many
// solver iterations the warm start saves versus a cold solve of the
// same perturbed problem, across small/medium/large deltas.
void RunWarmDeltaBench() {
  std::printf("\n-- warm-start savings on tracker-sized deltas --\n");
  const core::GeantScenario scenario = core::make_geant_scenario();
  const core::PlacementProblem base_problem = core::make_problem(scenario);
  const core::PlacementSolution incumbent = core::solve_placement(base_problem);

  BenchReport report("solver_perf_warm_delta", 1);
  constexpr int kSolveReps = 50;
  constexpr int kBlocks = 5;
  for (const double delta : {0.01, 0.05, 0.20}) {
    // One bin of drift at the tracker's scale: every OD's size moves by
    // uniform(1 +/- delta).
    core::MeasurementTask task = scenario.task;
    Rng d_rng(static_cast<std::uint64_t>(delta * 1000.0));
    for (double& s : task.expected_packets)
      s *= d_rng.uniform(1.0 - delta, 1.0 + delta);
    const core::PlacementProblem problem(scenario.net.graph, task,
                                         scenario.loads, {});

    // Iteration counts are deterministic per (problem, start point).
    opt::SolverWorkspace cold_ws, warm_ws;
    const int cold_iters =
        core::solve_placement(problem, {}, &cold_ws).iterations;
    const int warm_iters =
        core::resolve_warm(problem, incumbent.rates, {}, &warm_ws).iterations;

    const auto min_solve_ms = [&](auto&& body) {
      double best = 0.0;
      for (int b = 0; b < kBlocks; ++b) {
        StopWatch watch;
        for (int i = 0; i < kSolveReps; ++i) body();
        const double ms = watch.elapsed_ms() / kSolveReps;
        if (b == 0 || ms < best) best = ms;
      }
      return best;
    };
    const double cold_ms = min_solve_ms(
        [&] { (void)core::solve_placement(problem, {}, &cold_ws); });
    const double warm_ms = min_solve_ms([&] {
      (void)core::resolve_warm(problem, incumbent.rates, {}, &warm_ws);
    });

    const double savings =
        1.0 - static_cast<double>(warm_iters) / cold_iters;
    std::printf("  delta=%.0f%%  cold=%d iters (%.3f ms)  warm=%d iters"
                " (%.3f ms)  savings=%.0f%%\n",
                delta * 100.0, cold_iters, cold_ms, warm_iters, warm_ms,
                savings * 100.0);
    report.result("delta_" + std::to_string(static_cast<int>(delta * 100)))
        .metric("delta_pct", delta * 100.0)
        .metric("cold_iters", cold_iters)
        .metric("warm_iters", warm_iters)
        .metric("warm_iter_savings", savings)
        .metric("cold_ms", cold_ms)
        .metric("warm_ms", warm_ms);
  }
  report.emit();
}

// Thread-scaling section: the same batch of problems and the same
// Monte-Carlo experiment at 1..8 worker threads. Outputs are
// deterministic per problem, so this doubles as a cross-thread-count
// consistency check; wall times land in the JSON report.
void RunThreadScaling() {
  std::printf("\n-- thread scaling: batch solve + Monte-Carlo --\n");
  const core::GeantScenario scenario = core::make_geant_scenario();

  // 32 placement problems with randomized budgets (the re-optimization
  // workload shape: same network, shifting constraints).
  Rng rng(99);
  std::vector<double> thetas;
  for (int i = 0; i < 32; ++i)
    thetas.push_back(rng.uniform(30000.0, 400000.0));
  std::sort(thetas.begin(), thetas.end());
  const auto problems = core::make_theta_sweep(
      scenario.net.graph, scenario.task, scenario.loads, {}, thetas);

  const core::PlacementProblem problem = core::make_problem(scenario);
  const core::PlacementSolution solution = core::solve_placement(problem);
  Rng flow_rng(1);
  traffic::TrafficMatrix demands;
  for (std::size_t k = 0; k < scenario.task.ods.size(); ++k) {
    demands.push_back(
        {scenario.task.ods[k],
         scenario.task.expected_packets[k] / scenario.task.interval_sec});
  }
  const auto flows = traffic::generate_all_flows(flow_rng, demands);

  BenchReport report("solver_perf", runtime::threads_from_env());
  double reference_utility = 0.0;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    core::BatchOptions batch;
    batch.threads = threads;
    StopWatch solve_watch;
    const auto solutions = core::BatchSolver(batch).solve(problems);
    const double solve_ms = solve_watch.elapsed_ms();

    double utility = 0.0;
    for (const auto& s : solutions) utility += s.total_utility;
    if (threads == 1) reference_utility = utility;

    runtime::ThreadPool mc_pool(threads);
    StopWatch mc_watch;
    const auto runs = sampling::simulate_sampling_runs(
        mc_pool, Rng(7), problem.routing(), flows, solution.rates, 64);
    const double mc_ms = mc_watch.elapsed_ms();

    std::printf("  threads=%u  batch_solve(32)=%7.1f ms  monte_carlo(64)="
                "%7.1f ms  sum_utility=%.6f (%s)\n",
                threads, solve_ms, mc_ms, utility,
                utility == reference_utility ? "bit-identical" : "MISMATCH");
    report.result("threads_" + std::to_string(threads))
        .metric("batch_solve_ms", solve_ms)
        .metric("monte_carlo_ms", mc_ms)
        .metric("batch_problems", static_cast<double>(problems.size()))
        .metric("mc_runs", static_cast<double>(runs.size()))
        .metric("sum_utility", utility);
  }
  report.emit();
}

}  // namespace

int main(int argc, char** argv) {
  // NETMON_PERF_KERNELS_ONLY=1 runs just the kernel timing sections (the
  // ones the perf gate compares against the committed baseline) and skips
  // the google-benchmark suite and the thread-scaling sweep.
  const char* kernels_only_env = std::getenv("NETMON_PERF_KERNELS_ONLY");
  const bool kernels_only = kernels_only_env && *kernels_only_env &&
                            std::string_view(kernels_only_env) != "0";
  if (!kernels_only) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  RunKernelBench();
  RunSimdKernelSweep();
  RunWarmDeltaBench();
  if (!kernels_only) RunThreadScaling();
  return 0;
}
