// SEC5C — reproduces the paper's §V-C comparison with naive solutions:
//  (1) monitor only the JANET access link: to track the smallest OD pair
//      (JANET-LU) with the optimum's accuracy, the access link must sample
//      at the optimum's largest effective rate, requiring a capacity
//      theta ~70% higher in the paper's data (173,798 vs ~100,000 sampled
//      packets per 5-minute interval);
//  (2) monitor the six UK links only (optimally): poor accuracy on small
//      OD pairs;
//  (3) uniform "NetFlow everywhere at a low rate" (paper §I option (i)).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "netmon.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace netmon;

struct Row {
  double total_utility = 0.0;
  double worst_utility = 1.0;
  double budget = 0.0;
};

Row evaluate(const core::PlacementSolution& solution) {
  Row row;
  row.total_utility = solution.total_utility;
  for (const auto& od : solution.per_od)
    row.worst_utility = std::min(row.worst_utility, od.utility);
  row.budget = solution.budget_used;
  return row;
}

}  // namespace

int main() {
  std::printf("== SEC5C: optimal vs naive solutions (paper §V-C) ==\n\n");

  const core::GeantScenario scenario = core::make_geant_scenario();
  core::ProblemOptions options;
  options.theta = 100000.0;
  const core::PlacementProblem problem = core::make_problem(scenario, options);

  const core::PlacementSolution optimal = core::solve_placement(problem);
  const core::PlacementSolution uniform =
      core::evaluate_rates(problem, core::uniform_rates(problem));
  const core::PlacementSolution access = core::evaluate_rates(
      problem, core::single_link_rates(problem, scenario.net.access_in));
  const core::PlacementSolution uk_only = core::solve_restricted(
      scenario.net.graph, scenario.task, scenario.loads, options,
      core::uk_links(scenario.net));

  TextTable table({"strategy", "sum utility", "worst OD utility",
                   "budget used (pkts/5min)"});
  auto add = [&](const char* name, const Row& row) {
    table.add_row({name, fmt_fixed(row.total_utility, 3),
                   fmt_fixed(row.worst_utility, 4), fmt_fixed(row.budget, 0)});
  };
  add("network-wide optimum", evaluate(optimal));
  add("UK links only (optimal on 5)", evaluate(uk_only));
  add("access link only", evaluate(access));
  add("uniform everywhere", evaluate(uniform));
  std::cout << table.render() << "\n";

  // Capacity needed by the access-link strategy to match the optimum's
  // largest effective rate (the rate granted to JANET-LU).
  double max_rho = 0.0;
  std::string max_od;
  for (const auto& od : optimal.per_od) {
    if (od.rho_approx > max_rho) {
      max_rho = od.rho_approx;
      max_od = scenario.net.graph.node(od.od.dst).name;
    }
  }
  const double theta_access = core::theta_for_single_link(
      problem, scenario.net.access_in, max_rho);
  std::printf("access-link capacity to match the optimum on JANET-%s"
              " (rho = %.4f):\n",
              max_od.c_str(), max_rho);
  std::printf("  theta_needed = %.0f packets/5min = %.2fx the optimum's"
              " theta (paper: 1%% rate -> 173,798 pkts = ~1.7x)\n\n",
              theta_access, theta_access / problem.theta());

  // The paper's exact arithmetic for reference: at a 1% sampling rate the
  // access link (57,933 pkt/s) yields 0.01 * 57,933 * 300 sampled packets.
  std::printf("paper footnote 2 arithmetic: 0.01 * 57933 pkt/s * 300 s = %.0f"
              " sampled packets per interval\n",
              0.01 * 57933.0 * 300.0);

  std::printf(
      "\nconclusion:\n"
      "  - among MONITORABLE placements the optimum dominates: worst-OD"
      " utility beats\n    both the UK-only and the uniform strategy at"
      " equal budget;\n"
      "  - the access link is efficient (it carries zero cross traffic) but"
      " is CPE-owned\n    and not monitorable (paper §V-C); even if it"
      " were, matching the optimum's\n    smallest-OD accuracy requires"
      " %.2fx the budget (paper: ~1.7x).\n",
      theta_access / problem.theta());
  return 0;
}
