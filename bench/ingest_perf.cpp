// PERF — ingest pipeline throughput. Replays one interval of GEANT-wide
// synthetic traffic (gravity background + JANET task demands) through
// the full packet path — per-link sources -> SPSC rings -> per-link
// samplers -> flow tables — and reports sustained packets/sec for the
// blocking (lossless) policy, the drop-policy accounting, and the raw
// ring transfer rate. Emits BENCH_ingest.json rows:
//   throughput — pkts/sec through the full pipeline (kBlock, best of 3),
//                drop_rate (must be 0), offered/exported volumes
//   drop       — same instance under kDrop with a tiny ring: the
//                offered == consumed + dropped invariant, observed rate
//   ring       — raw 2-thread SPSC transfer rate, records/sec
// scripts/perf_gate.sh holds throughput to a >= 1M pkts/sec floor (on
// machines with >= 4 hardware threads), drop_rate to exactly 0, and
// both throughput rows to a regression band against the baseline.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "netmon.hpp"
#include "util/bench_report.hpp"

namespace {

using namespace netmon;

struct Instance {
  core::GeantScenario scenario = core::make_geant_scenario();
  routing::RoutingMatrix matrix;
  netflow::EgressMap egress;
  ingest::SyntheticTraffic traffic;
  sampling::RateVector rates;

  static routing::RoutingMatrix demand_matrix(const core::GeantScenario& s) {
    std::vector<routing::OdPair> ods;
    ods.reserve(s.demands.size());
    for (const traffic::Demand& d : s.demands) ods.push_back(d.od);
    return routing::RoutingMatrix::single_path(s.net.graph, ods);
  }

  static ingest::SyntheticOptions synth_options() {
    ingest::SyntheticOptions options;
    // ~4 trace-seconds of the 1.4M pkt/s network: several million
    // packets total, a few hundred thousand per monitored link.
    options.flowgen.interval_sec = 4.0;
    return options;
  }

  Instance()
      : matrix(demand_matrix(scenario)),
        egress(netflow::EgressMap::for_pop_blocks(scenario.net.graph)),
        traffic(matrix, scenario.demands, synth_options()) {
    // Monitor the 8 busiest links at a deployment-plausible 5%.
    std::vector<topo::LinkId> links(scenario.net.graph.link_count());
    std::iota(links.begin(), links.end(), topo::LinkId{0});
    std::sort(links.begin(), links.end(), [&](topo::LinkId a, topo::LinkId b) {
      return traffic.packets_on(a) > traffic.packets_on(b);
    });
    rates.assign(scenario.net.graph.link_count(), 0.0);
    for (std::size_t i = 0; i < 8 && i < links.size(); ++i)
      rates[links[i]] = 0.05;
  }

  ingest::IngestStats run(runtime::ThreadPool& pool,
                          ingest::OverflowPolicy overflow,
                          std::size_t ring_capacity) {
    ingest::IngestOptions options;
    options.overflow = overflow;
    options.ring_capacity = ring_capacity;
    options.producers = 2;
    options.expected_flows_per_link = 1 << 14;
    options.collector.bin_sec = 4.0;
    ingest::IngestDeps deps;
    deps.pool = &pool;
    ingest::IngestPipeline pipeline(rates, egress, options, deps);
    pipeline.add_sources(traffic.sources(rates));
    return pipeline.run();
  }
};

/// Raw SPSC transfer rate: one producer, one consumer, batch 256.
double ring_records_per_sec() {
  constexpr std::uint64_t kTotal = 1 << 24;
  ingest::SpscRing<ingest::PacketRecord> ring(1 << 16);
  StopWatch watch;
  std::thread producer([&ring] {
    ingest::PacketRecord batch[256];
    std::uint64_t sent = 0;
    while (sent < kTotal) {
      std::size_t n = 0;
      while (n == 0) n = ring.try_push(batch, 256);
      sent += n;
    }
  });
  ingest::PacketRecord out[256];
  std::uint64_t got = 0;
  while (got < kTotal) got += ring.pop(out, 256);
  producer.join();
  return static_cast<double>(kTotal) / (watch.elapsed_ms() * 1e-3);
}

}  // namespace

int main() {
  const unsigned threads = runtime::threads_from_env();
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("== ingest_perf: packet pipeline throughput (%u threads) ==\n",
              threads);

  Instance instance;
  runtime::ThreadPool pool(threads);
  std::uint64_t offered = 0;
  for (topo::LinkId l = 0; l < instance.rates.size(); ++l)
    if (instance.rates[l] > 0.0) offered += instance.traffic.packets_on(l);
  std::printf("  instance: %zu monitored links, %llu packets offered\n",
              instance.traffic.sources(instance.rates).size(),
              static_cast<unsigned long long>(offered));

  // Lossless throughput: best of 3 (scheduling noise only slows a run).
  ingest::IngestStats best{};
  for (int round = 0; round < 3; ++round) {
    const ingest::IngestStats stats =
        instance.run(pool, ingest::OverflowPolicy::kBlock, 1 << 16);
    if (round == 0 || stats.packets_per_sec > best.packets_per_sec)
      best = stats;
  }
  std::printf(
      "  throughput: %.2fM pkts/sec (drop rate %.4f, %llu sampled, "
      "%llu records exported, %.1f ms)\n",
      best.packets_per_sec * 1e-6, best.drop_rate(),
      static_cast<unsigned long long>(best.sampled_packets),
      static_cast<unsigned long long>(best.exported_records),
      best.elapsed_sec * 1e3);

  // Drop policy on a deliberately tiny ring: accounting must close.
  const ingest::IngestStats lossy =
      instance.run(pool, ingest::OverflowPolicy::kDrop, 1 << 10);
  const bool accounted =
      lossy.offered_packets == lossy.consumed_packets + lossy.dropped_packets;
  std::printf("  drop policy: %.2fM pkts/sec, drop rate %.4f, %s\n",
              lossy.packets_per_sec * 1e-6, lossy.drop_rate(),
              accounted ? "accounting closed" : "ACCOUNTING BROKEN");

  const double ring_rate = ring_records_per_sec();
  std::printf("  raw ring: %.1fM records/sec (2 threads, batch 256)\n",
              ring_rate * 1e-6);

  BenchReport report("ingest_perf", threads);
  report.result("throughput")
      .metric("ingest_pkts_per_sec", best.packets_per_sec)
      .metric("ingest_drop_rate", best.drop_rate())
      .metric("offered_packets", static_cast<double>(best.offered_packets))
      .metric("exported_records",
              static_cast<double>(best.exported_records))
      .metric("elapsed_ms", best.elapsed_sec * 1e3)
      .metric("hw_threads", static_cast<double>(hw));
  report.result("drop")
      .metric("drop_pkts_per_sec", lossy.packets_per_sec)
      .metric("drop_rate", lossy.drop_rate())
      .metric("drop_accounting_closed", accounted ? 1.0 : 0.0);
  report.result("ring").metric("ring_records_per_sec", ring_rate);
  report.emit();
  return accounted ? 0 : 1;
}
