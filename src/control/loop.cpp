#include "control/loop.hpp"

#include <chrono>
#include <optional>
#include <utility>

#include "core/reoptimize.hpp"
#include "estimate/tomogravity.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace netmon::control {

namespace {

core::BatchOptions make_batch_options(const ControlConfig& config,
                                      const ControlDeps& deps) {
  core::BatchOptions options;
  options.threads = 1;
  options.solver = config.solver;
  options.metrics = deps.metrics;
  options.tier = config.tier;
  options.approx = config.approx;
  options.approx_groups = config.approx_groups;
  return options;
}

}  // namespace

std::vector<double> od_rates_from_tomogravity(
    const topo::Graph& graph, const traffic::LinkLoads& loads,
    const routing::LinkSet& failed, const core::MeasurementTask& task) {
  const estimate::TomogravityResult result =
      estimate::tomogravity(graph, loads, failed);
  std::vector<double> out(task.ods.size(), kMissing);
  for (std::size_t k = 0; k < task.ods.size(); ++k) {
    // demand_for() returns 0 for ODs the inversion dropped (e.g. a
    // zero-gravity-mass external endpoint): no estimate, not "rate 0".
    const double rate = traffic::demand_for(result.matrix, task.ods[k]);
    if (rate > 0.0) out[k] = rate;
  }
  return out;
}

ControlLoop::ControlLoop(const topo::Graph& graph, core::MeasurementTask task,
                         ControlConfig config, ControlDeps deps)
    : graph_(graph),
      config_(std::move(config)),
      clock_(deps.clock != nullptr ? deps.clock : &obs::Clock::system()),
      metrics_(deps.metrics),
      recorder_(deps.recorder),
      pool_(deps.pool),
      tracker_(task, config_.tracker),
      policy_(config_.policy),
      actuator_(config_.actuator),
      solver_(make_batch_options(config_, deps)) {
  if (metrics_ != nullptr) {
    bins_total_ = metrics_->counter("netmon_control_bins_total",
                                    "Measurement bins stepped");
    outliers_total_ =
        metrics_->counter("netmon_control_outliers_total",
                          "Measurements rejected by the innovation gate");
    resolves_total_ = metrics_->counter("netmon_control_resolves_total",
                                        "Re-solves completed");
    reconfigs_total_ =
        metrics_->counter("netmon_control_reconfigurations_total",
                          "Placements pushed to the network");
    holds_total_ =
        metrics_->counter("netmon_control_holds_total",
                          "Fresh optima held back by hysteresis");
    solve_expired_total_ =
        metrics_->counter("netmon_control_solve_expired_total",
                          "Re-solves abandoned on their deadline");
    skipped_total_ =
        metrics_->counter("netmon_control_skipped_bins_total",
                          "Bins whose problem assembly was rejected");
    innovation_ = metrics_->histogram(
        "netmon_control_innovation",
        {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0},
        "Per-bin normalized innovation RMS across the task");
    step_ms_ = metrics_->histogram(
        "netmon_control_step_ms",
        {0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0},
        "Wall time of one loop step (track+decide+solve+actuate)");
    active_monitors_ = metrics_->gauge("netmon_control_active_monitors",
                                       "Monitors in the running placement");
    // The re-solve path reports into the shared solver counter family
    // (same cells the serving layer's batch solver bumps — registration
    // is idempotent).
    solver_counters_ = obs::register_solver_counters(*metrics_);
  }
}

void ControlLoop::record(obs::ServeEvent event, std::uint64_t arg) noexcept {
  if (recorder_ != nullptr) {
    recorder_->record(event, static_cast<std::uint64_t>(bin_), arg,
                      clock_->now());
  }
}

std::span<const double> ControlLoop::measurements(
    const BinObservation& observation, std::vector<double>& scratch) const {
  if (!observation.od_rates.empty()) {
    NETMON_REQUIRE(observation.od_rates.size() == tracker_.od_count(),
                   "BinObservation::od_rates size must equal the task's "
                   "OD count");
    return observation.od_rates;
  }
  if (config_.tomogravity_fallback) {
    scratch = od_rates_from_tomogravity(graph_, observation.loads,
                                        observation.failed, tracker_.task());
  } else {
    scratch.assign(tracker_.od_count(), kMissing);
  }
  return scratch;
}

core::PlacementSolution ControlLoop::solve(
    const core::PlacementProblem& problem, obs::TimePoint bin_start) {
  opt::SolverOptions options = config_.solver;
  options.counters = solver_counters_;
  if (config_.solve_deadline != obs::Duration::zero()) {
    // Deadline on the injected clock, composed over any caller hook. A
    // non-positive budget is already expired at the first poll — the
    // deterministic way to exercise the fallback path under a frozen
    // ManualClock.
    const obs::TimePoint deadline = bin_start + config_.solve_deadline;
    auto base = options.should_stop;
    options.should_stop = [this, deadline,
                           base = std::move(base)](int iterations) {
      if (base && base(iterations)) return true;
      return clock_->now() >= deadline;
    };
  }
  if (pool_ != nullptr) {
    core::BatchItem item;
    item.problem = &problem;
    item.warm = have_rates_ ? &rates_ : nullptr;
    item.solver = &options;
    auto solutions = solver_.solve_items(
        *pool_, std::span<const core::BatchItem>(&item, 1));
    return std::move(solutions.front());
  }
  if (have_rates_) {
    return core::resolve_warm(problem, rates_, options, &workspace_);
  }
  return core::solve_placement(problem, options, &workspace_);
}

StepResult ControlLoop::step(const BinObservation& observation) {
  const obs::TimePoint bin_start = clock_->now();
  StepResult out;
  out.bin = ++bin_;
  ++bins_since_resolve_;
  ++bins_since_push_;
  bins_total_.inc();

  // 1. Track: predict/correct every OD on this bin's estimates.
  std::vector<double> scratch;
  out.tracked = tracker_.observe(measurements(observation, scratch));
  outliers_total_.inc(static_cast<std::uint64_t>(out.tracked.outliers));
  innovation_.observe(out.tracked.innovation_rms);
  record(obs::ServeEvent::kControlTrack,
         static_cast<std::uint64_t>(out.tracked.outliers));

  // 2. Topology: compare the bin's failed set against the last one.
  const bool topology_changed = observation.failed != last_failed_;
  if (topology_changed) {
    last_failed_ = observation.failed;
    record(obs::ServeEvent::kControlTopology, observation.failed.size());
  }

  // 3. Assemble this bin's problem from the tracked task. A bin the
  // assembly rejects (a failure disconnecting a task OD, a dead load on
  // a candidate link) changes nothing: the incumbent stays in force and
  // the loop retries next bin.
  std::optional<core::PlacementProblem> problem;
  core::ProblemOptions problem_options = config_.problem;
  problem_options.failed = observation.failed;
  try {
    problem.emplace(graph_, tracker_.tracked_task(), observation.loads,
                    problem_options);
  } catch (const Error&) {
    out.skipped = true;
    skipped_total_.inc();
    finish(bin_start);
    return out;
  }

  // 4. The incumbent placement, priced on this bin's problem.
  double utility = 0.0;
  double budget_used = 0.0;
  std::size_t active = 0;
  if (have_rates_) {
    const core::PlacementSolution incumbent =
        core::evaluate_rates(*problem, rates_);
    utility = incumbent.total_utility;
    budget_used = incumbent.budget_used;
    active = incumbent.active_monitors.size();
  }

  // 5. Decide whether this bin re-solves at all.
  PolicyInput policy_input;
  policy_input.bins_since_resolve = bins_since_resolve_;
  policy_input.have_incumbent = have_rates_;
  policy_input.topology_changed = topology_changed;
  policy_input.innovation_rms = out.tracked.innovation_rms;
  policy_input.budget_used = budget_used;
  policy_input.theta = problem->theta();
  out.reason = policy_.decide(policy_input);

  if (out.reason != ResolveReason::kNone) {
    record(obs::ServeEvent::kControlResolve,
           static_cast<std::uint64_t>(out.reason));
    core::PlacementSolution fresh = solve(*problem, bin_start);
    out.solve_iterations = fresh.iterations;
    if (fresh.status == opt::SolveStatus::kCancelled) {
      // Deadline fired mid-solve: the point is feasible but uncertified,
      // so the incumbent stays in force and the trigger re-fires next
      // bin (bins_since_resolve_ keeps growing).
      out.solve_expired = true;
      ++solve_expirations_;
      solve_expired_total_.inc();
      record(obs::ServeEvent::kControlSolveExpired,
             static_cast<std::uint64_t>(fresh.iterations));
    } else {
      out.resolved = true;
      ++resolves_;
      resolves_total_.inc();
      bins_since_resolve_ = 0;

      // 6. Hysteresis: push only when the gain earns the churn (or the
      // push repairs a broken contract).
      ActuationInput actuation_input;
      actuation_input.incumbent_utility = utility;
      actuation_input.fresh_utility = fresh.total_utility;
      actuation_input.forced = !have_rates_ ||
                               out.reason == ResolveReason::kTopology ||
                               out.reason == ResolveReason::kBudget;
      actuation_input.bins_since_push = bins_since_push_;
      const Actuation actuation = actuator_.decide(actuation_input);
      out.utility_gain = actuation.utility_gain;
      out.forced = actuation.forced;
      if (actuation.push) {
        out.reconfigured = true;
        utility = fresh.total_utility;
        budget_used = fresh.budget_used;
        active = fresh.active_monitors.size();
        rates_ = std::move(fresh.rates);
        have_rates_ = true;
        bins_since_push_ = 0;
        ++reconfigurations_;
        reconfigs_total_.inc();
        record(obs::ServeEvent::kControlReconfigure,
               static_cast<std::uint64_t>(active));
      } else {
        ++holds_;
        holds_total_.inc();
        record(obs::ServeEvent::kControlHold, 0);
      }
    }
  }

  out.utility = utility;
  out.budget_used = budget_used;
  out.active_monitors = active;
  active_monitors_.set(static_cast<double>(active));

  // 7. Oracle reference: the every-bin re-solve the actuated placement
  // is measured against (warm from the oracle's own previous optimum, so
  // the comparison isolates staleness + hysteresis, not solver effort).
  if (config_.track_oracle) {
    core::PlacementSolution oracle =
        have_oracle_ ? core::resolve_warm(*problem, oracle_rates_,
                                          config_.solver, &oracle_workspace_)
                     : core::solve_placement(*problem, config_.solver,
                                             &oracle_workspace_);
    out.oracle_utility = oracle.total_utility;
    oracle_rates_ = std::move(oracle.rates);
    have_oracle_ = true;
  }

  finish(bin_start);
  return out;
}

void ControlLoop::finish(obs::TimePoint bin_start) {
  const obs::Duration elapsed = clock_->now() - bin_start;
  step_ms_.observe(
      std::chrono::duration<double, std::milli>(elapsed).count());
}

}  // namespace netmon::control
