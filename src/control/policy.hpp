// ReoptimizePolicy: when is the placement problem worth re-solving?
//
// Re-solving is cheap (~0.2 ms warm on GEANT) but not free at fleet
// scale, and every re-solve is a chance for the actuator to churn the
// network. The policy separates *information* triggers — the tracker's
// innovation norm says the traffic model moved, a topology event says the
// routing moved, the incumbent's spend says the resource contract broke —
// from a *staleness* bound (elapsed bins) that guarantees the placement
// is never older than a configurable horizon even when every bin looks
// quiet (cf. the SDN dynamic-flow-rates operation model, arXiv:2409.05966).
#pragma once

#include <cstdint>

namespace netmon::control {

/// Why a re-solve was (or was not) triggered, in priority order.
enum class ResolveReason : std::uint8_t {
  kNone = 0,
  /// No incumbent yet: the first bin always solves.
  kFirstBin = 1,
  /// The failed-link set changed since the last bin.
  kTopology = 2,
  /// The incumbent's spend on this bin's loads violates the budget
  /// contract beyond tolerance.
  kBudget = 3,
  /// The tracker's innovation norm says the traffic model moved.
  kInnovation = 4,
  /// Staleness bound: too many bins since the last re-solve.
  kElapsed = 5,
};

const char* to_string(ResolveReason reason) noexcept;

/// Trigger thresholds.
struct PolicyConfig {
  /// Re-solve when the tracker's normalized-innovation RMS reaches this
  /// (steady state sits near 1 when the model fits).
  double innovation_threshold = 2.0;
  /// Staleness bound: re-solve after this many bins regardless of
  /// signals (12 x 5-min bins = hourly).
  int max_bins_between = 12;
  /// Damping: innovation/staleness triggers are suppressed this many
  /// bins after a re-solve (topology/budget triggers are never damped).
  int min_bins_between = 0;
  /// Relative budget-contract tolerance: the incumbent violates when
  /// |spend - theta| > budget_tolerance * theta.
  double budget_tolerance = 0.02;
};

/// What the policy sees each bin.
struct PolicyInput {
  /// Bins since the last re-solve (0 on the bin right after one).
  int bins_since_resolve = 0;
  bool have_incumbent = false;
  /// The failed-link set changed since the previous bin.
  bool topology_changed = false;
  /// Tracker innovation RMS for this bin.
  double innovation_rms = 0.0;
  /// Incumbent spend on this bin's loads (packets per interval).
  double budget_used = 0.0;
  /// Budget theta of the problem.
  double theta = 0.0;
};

/// Pure decision function over the thresholds (stateless: the loop owns
/// the counters that feed PolicyInput).
class ReoptimizePolicy {
 public:
  explicit ReoptimizePolicy(PolicyConfig config = {});

  ResolveReason decide(const PolicyInput& input) const noexcept;

  /// Whether the incumbent's spend violates the budget contract.
  bool budget_violated(double budget_used, double theta) const noexcept;

  const PolicyConfig& config() const noexcept { return config_; }

 private:
  PolicyConfig config_;
};

}  // namespace netmon::control
