// ControlLoop: the streaming re-optimization loop — tracker -> policy ->
// warm re-solve -> hysteresis actuator — advanced one measurement bin at
// a time.
//
//   BinObservation (loads, OD-rate estimates, failed links)
//        |
//        v
//   TrafficTracker.observe()          predict/correct per OD,
//        |                            innovation RMS + outlier gating
//        v
//   PlacementProblem(tracked task)    incumbent evaluated on the bin
//        |
//        v
//   ReoptimizePolicy.decide()         first-bin / topology / budget /
//        |  (re-solve?)               innovation / staleness
//        v
//   core::BatchSolver warm-start      from the incumbent rates, on the
//        |  (deadline-bounded)        host's runtime pool; an expired
//        v                            solve keeps the incumbent
//   Actuator.decide()                 push only when the gain clears the
//        |                            hysteresis threshold (or forced)
//        v
//   rates() — the configuration in force
//
// Every step stamps FlightRecorder events (request_id = bin) and bumps
// MetricsRegistry counters/histograms through the injected obs::Clock,
// so a served loop and its deadline decisions replay deterministically
// under a ManualClock — the integration tests run a full synthetic day
// without a single sleep.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "control/actuator.hpp"
#include "control/policy.hpp"
#include "control/tracker.hpp"
#include "core/batch_solver.hpp"
#include "core/problem.hpp"
#include "core/solver.hpp"
#include "obs/clock.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace netmon::control {

/// Loop configuration: the three stages plus solve bounds.
struct ControlConfig {
  TrackerConfig tracker;
  PolicyConfig policy;
  ActuatorConfig actuator;
  /// Problem assembly defaults (theta, alpha caps, ecmp); the per-bin
  /// failed set comes from the observation.
  core::ProblemOptions problem;
  /// Solver settings for re-solves (and the oracle reference).
  opt::SolverOptions solver;
  /// Budget for one re-solve on the loop's clock; zero = unbounded, and
  /// a negative budget is already expired at the solver's first poll
  /// (how tests exercise the fallback under a frozen ManualClock). An
  /// expired solve is abandoned and the incumbent placement stays in
  /// force — the loop never actuates an uncertified point.
  obs::Duration solve_deadline{};
  /// Also re-solve every bin from scratch as an oracle reference
  /// (StepResult::oracle_utility). Doubles the solve work; for demos,
  /// benches, and the regret assertions in tests.
  bool track_oracle = false;
  /// When an observation carries no OD-rate estimates, reconstruct them
  /// from the link loads via estimate::tomogravity (ODs the inversion
  /// cannot see are treated as missing measurements).
  bool tomogravity_fallback = true;
  /// Tier selection for re-solves (core/approx): per-bin problems at or
  /// above tier.approx_min_candidates route to the partitioned
  /// approximation tier when approx_groups > 0 enables it (partitions
  /// are derived per problem by deterministic BFS, since the candidate
  /// space can change bin to bin). 0 keeps every re-solve exact.
  core::TierPolicy tier;
  std::size_t approx_groups = 0;
  /// Approximation-tier solve configuration.
  core::ApproxOptions approx;
};

/// One measurement bin's inputs.
struct BinObservation {
  /// Measured per-link loads (pkt/s), full link-id space.
  traffic::LinkLoads loads;
  /// Estimated task OD rates (pkt/s; kMissing = no estimate), one per
  /// task OD — typically NetFlow counts inverted through estimate::.
  /// Empty = derive from the loads via tomogravity (see config).
  std::vector<double> od_rates;
  /// Links currently down.
  routing::LinkSet failed;
};

/// Everything one step did, for callers and tests.
struct StepResult {
  /// 1-based bin number.
  int bin = 0;
  /// Tracker pass summary.
  TrackerStep tracked;
  /// Why the bin re-solved (kNone = tracked only).
  ResolveReason reason = ResolveReason::kNone;
  bool resolved = false;
  /// The re-solve hit its deadline and was abandoned.
  bool solve_expired = false;
  /// Fresh rates were pushed this bin.
  bool reconfigured = false;
  /// The push (if any) was a forced contract repair.
  bool forced = false;
  /// Fresh minus incumbent utility on this bin (when resolved).
  double utility_gain = 0.0;
  /// Utility of the configuration in force, on this bin's problem.
  double utility = 0.0;
  /// Spend of the configuration in force (packets per interval).
  double budget_used = 0.0;
  /// Every-bin oracle re-solve utility (when config.track_oracle).
  double oracle_utility = 0.0;
  /// Solver iterations spent on the re-solve (0 when not resolved).
  int solve_iterations = 0;
  /// Active monitors of the configuration in force.
  std::size_t active_monitors = 0;
  /// Problem assembly rejected the bin (e.g. a failure disconnecting a
  /// task OD): nothing changed, the incumbent stays in force.
  bool skipped = false;
};

/// Host infrastructure the loop plugs into. serve::Server hands in its
/// own clock/metrics/recorder/pool when hosting a loop; standalone loops
/// (unit tests, benches) may leave any of these null.
struct ControlDeps {
  /// Timestamps, solve deadlines, and latency accounting. Null = the
  /// process steady clock. Borrowed; must outlive the loop.
  const obs::Clock* clock = nullptr;
  /// Counter/histogram sink. Null = detached no-op handles.
  obs::MetricsRegistry* metrics = nullptr;
  /// Event sink (request_id = bin). Null = no events.
  obs::FlightRecorder* recorder = nullptr;
  /// Re-solve fan-out pool. Null = solve on the calling thread.
  runtime::ThreadPool* pool = nullptr;
};

/// The long-lived loop. Not thread-safe: steps are strictly sequential
/// (serve::Server serializes its hosted loop behind a mutex).
class ControlLoop {
 public:
  /// The graph is borrowed and must outlive the loop; the task seeds the
  /// tracker.
  ControlLoop(const topo::Graph& graph, core::MeasurementTask task,
              ControlConfig config = {}, ControlDeps deps = {});

  /// Advances the loop one measurement bin.
  StepResult step(const BinObservation& observation);

  /// The sampling rates currently in force (empty before the first
  /// successful solve).
  const sampling::RateVector& rates() const noexcept { return rates_; }
  bool have_rates() const noexcept { return have_rates_; }

  const TrafficTracker& tracker() const noexcept { return tracker_; }
  const ControlConfig& config() const noexcept { return config_; }
  const obs::Clock& clock() const noexcept { return *clock_; }

  int bins() const noexcept { return bin_; }
  int resolves() const noexcept { return resolves_; }
  int reconfigurations() const noexcept { return reconfigurations_; }
  int holds() const noexcept { return holds_; }
  int solve_expirations() const noexcept { return solve_expirations_; }

 private:
  void record(obs::ServeEvent event, std::uint64_t arg) noexcept;
  /// Observes the step latency on the injected clock.
  void finish(obs::TimePoint bin_start);
  /// OD-rate estimates for this bin: the observation's own, or the
  /// tomogravity reconstruction written into `scratch`.
  std::span<const double> measurements(const BinObservation& observation,
                                       std::vector<double>& scratch) const;
  core::PlacementSolution solve(const core::PlacementProblem& problem,
                                obs::TimePoint bin_start);

  const topo::Graph& graph_;
  ControlConfig config_;
  const obs::Clock* clock_;  // never null
  obs::MetricsRegistry* metrics_;
  obs::FlightRecorder* recorder_;
  runtime::ThreadPool* pool_;

  TrafficTracker tracker_;
  ReoptimizePolicy policy_;
  Actuator actuator_;
  core::BatchSolver solver_;
  opt::SolverWorkspace workspace_;         // caller-thread solves
  opt::SolverWorkspace oracle_workspace_;  // oracle reference solves

  sampling::RateVector rates_;
  bool have_rates_ = false;
  sampling::RateVector oracle_rates_;
  bool have_oracle_ = false;
  routing::LinkSet last_failed_;

  int bin_ = 0;
  int bins_since_resolve_ = 0;
  int bins_since_push_ = 0;
  int resolves_ = 0;
  int reconfigurations_ = 0;
  int holds_ = 0;
  int solve_expirations_ = 0;

  // Metrics handles (detached no-ops without a registry).
  obs::Counter bins_total_;
  obs::Counter outliers_total_;
  obs::Counter resolves_total_;
  obs::Counter reconfigs_total_;
  obs::Counter holds_total_;
  obs::Counter solve_expired_total_;
  obs::Counter skipped_total_;
  obs::Histogram innovation_;
  obs::Histogram step_ms_;
  obs::Gauge active_monitors_;
  /// Shared solver counter family (detached without a registry).
  obs::SolverCounters solver_counters_;
};

/// Reconstructs the task ODs' rate estimates (pkt/s) from measured link
/// loads via estimate::tomogravity; ODs absent from the inversion (e.g.
/// zero-gravity-mass endpoints) come back as kMissing. The standalone
/// entry point the loop's fallback uses — callers with real NetFlow
/// estimates pass BinObservation::od_rates instead.
std::vector<double> od_rates_from_tomogravity(
    const topo::Graph& graph, const traffic::LinkLoads& loads,
    const routing::LinkSet& failed, const core::MeasurementTask& task);

}  // namespace netmon::control
