// TrafficTracker: Kalman-style predict/correct filtering of the task's
// OD rates across measurement bins.
//
// The paper computes one optimal placement for a *known* traffic matrix,
// but the matrix drifts the moment traffic changes (§I). Following the
// state-space formulation of Kallitsis et al. (arXiv:1306.5793), each OD
// pair carries a local-linear-trend filter — a level (pkt/s) plus a
// per-bin drift term that absorbs the diurnal ramp — corrected every bin
// by the NetFlow/tomogravity rate estimate for that pair. Innovations are
// gated: a measurement more than `gate_sigmas` predicted standard
// deviations away is rejected as an estimation outlier, but a *persistent*
// run of gated innovations is a genuine level shift (a surge, a rerouted
// customer) and snaps the filter onto the new level so the control loop
// re-converges in bins, not hours. The normalized innovation RMS across
// the task is the drift signal the ReoptimizePolicy triggers on.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/task.hpp"

namespace netmon::control {

/// Sentinel for "no measurement for this OD this bin" (any negative
/// value is treated the same; rates are never negative).
inline constexpr double kMissing = -1.0;

/// Filter configuration. Noise magnitudes are relative to the current
/// level, so one configuration covers ODs spanning 20..30,000 pkt/s.
struct TrackerConfig {
  /// Measurement noise: sigma_z = meas_noise_rel * max(z, rate_floor).
  /// NetFlow-estimated rates carry ~10% error at Table-I sizes.
  double meas_noise_rel = 0.10;
  /// Per-bin process noise on the level (random walk component).
  double level_noise_rel = 0.02;
  /// Per-bin process noise on the drift (how fast the slope can turn;
  /// the diurnal cycle turns over hours, so this is small).
  double drift_noise_rel = 0.005;
  /// Initial state uncertainty relative to the seed level.
  double init_noise_rel = 0.5;
  /// Innovation gate in predicted standard deviations.
  double gate_sigmas = 4.0;
  /// A run of this many consecutive gated innovations on one OD is a
  /// level shift: the filter re-seeds on the latest measurement.
  int reaccept_after = 3;
  /// Rates are floored here (pkt/s): keeps the state positive and the
  /// noise scales well-defined when an OD goes quiet.
  double rate_floor = 1e-3;
  /// Floor on tracked_task() interval sizes (packets): the SRE utility
  /// needs c = 1/S <= 0.5, i.e. S >= 2.
  double min_expected_packets = 2.0;
};

/// Per-bin summary of one predict/correct pass.
struct TrackerStep {
  /// RMS of the normalized innovations over the measured ODs (≈1 in
  /// steady state when the model fits; the policy triggers above ~2).
  double innovation_rms = 0.0;
  /// Largest |normalized innovation| this bin.
  double innovation_max = 0.0;
  /// ODs that received a measurement.
  int measured = 0;
  /// Measurements rejected by the innovation gate this bin.
  int outliers = 0;
  /// ODs re-seeded after a persistent outlier run (level shifts).
  int reaccepted = 0;
  /// ODs with no measurement (predict-only).
  int missing = 0;
};

/// One filter per task OD pair, advanced one measurement bin at a time.
class TrafficTracker {
 public:
  /// Seeds every OD's level from the task's expected interval sizes
  /// (expected_packets / interval_sec) with init_noise_rel uncertainty.
  explicit TrafficTracker(const core::MeasurementTask& task,
                          TrackerConfig config = {});

  /// One bin: predicts every OD one bin ahead, then corrects with the
  /// measurements (pkt/s; negative/kMissing = predict-only for that OD).
  /// `measurements.size()` must equal od_count().
  TrackerStep observe(std::span<const double> measurements);

  std::size_t od_count() const noexcept { return level_.size(); }
  /// Tracked rate of OD k (pkt/s), floored at rate_floor.
  double rate(std::size_t k) const noexcept { return level_[k]; }
  /// Tracked per-bin drift of OD k (pkt/s per bin).
  double drift(std::size_t k) const noexcept { return drift_[k]; }
  /// Level variance of OD k (diagnostics and tests).
  double level_variance(std::size_t k) const noexcept { return p00_[k]; }
  /// Bins observed so far.
  int bins() const noexcept { return bins_; }

  /// The task with expected_packets refreshed from the tracked rates
  /// (each size floored at min_expected_packets so the per-OD utility
  /// stays well-defined).
  core::MeasurementTask tracked_task() const;

  /// The task as given at construction (OD order = measurement order).
  const core::MeasurementTask& task() const noexcept { return task_; }

  const TrackerConfig& config() const noexcept { return config_; }

 private:
  core::MeasurementTask task_;
  TrackerConfig config_;
  // SoA filter state: level/drift and the symmetric 2x2 covariance.
  std::vector<double> level_;
  std::vector<double> drift_;
  std::vector<double> p00_;
  std::vector<double> p01_;
  std::vector<double> p11_;
  std::vector<int> outlier_run_;
  int bins_ = 0;
};

}  // namespace netmon::control
