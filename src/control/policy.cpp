#include "control/policy.hpp"

#include <cmath>

#include "util/error.hpp"

namespace netmon::control {

const char* to_string(ResolveReason reason) noexcept {
  switch (reason) {
    case ResolveReason::kNone: return "none";
    case ResolveReason::kFirstBin: return "first_bin";
    case ResolveReason::kTopology: return "topology";
    case ResolveReason::kBudget: return "budget";
    case ResolveReason::kInnovation: return "innovation";
    case ResolveReason::kElapsed: return "elapsed";
  }
  return "unknown";
}

ReoptimizePolicy::ReoptimizePolicy(PolicyConfig config) : config_(config) {
  NETMON_REQUIRE(config_.innovation_threshold >= 0.0,
                 "innovation threshold must be >= 0");
  NETMON_REQUIRE(config_.max_bins_between >= 1,
                 "staleness bound must be >= 1 bin");
  NETMON_REQUIRE(config_.min_bins_between >= 0 &&
                     config_.min_bins_between < config_.max_bins_between,
                 "damping must be shorter than the staleness bound");
  NETMON_REQUIRE(config_.budget_tolerance >= 0.0,
                 "budget tolerance must be >= 0");
}

bool ReoptimizePolicy::budget_violated(double budget_used,
                                       double theta) const noexcept {
  return std::abs(budget_used - theta) > config_.budget_tolerance * theta;
}

ResolveReason ReoptimizePolicy::decide(
    const PolicyInput& input) const noexcept {
  if (!input.have_incumbent) return ResolveReason::kFirstBin;
  // Contract triggers first: they are never damped.
  if (input.topology_changed) return ResolveReason::kTopology;
  if (budget_violated(input.budget_used, input.theta))
    return ResolveReason::kBudget;
  // Signal triggers respect the damping window.
  if (input.bins_since_resolve < config_.min_bins_between)
    return ResolveReason::kNone;
  if (input.innovation_rms >= config_.innovation_threshold)
    return ResolveReason::kInnovation;
  if (input.bins_since_resolve >= config_.max_bins_between)
    return ResolveReason::kElapsed;
  return ResolveReason::kNone;
}

}  // namespace netmon::control
