#include "control/actuator.hpp"

#include "util/error.hpp"

namespace netmon::control {

Actuator::Actuator(ActuatorConfig config) : config_(config) {
  NETMON_REQUIRE(config_.min_utility_gain >= 0.0,
                 "hysteresis threshold must be >= 0");
  NETMON_REQUIRE(config_.cooldown_bins >= 0, "cooldown must be >= 0");
}

Actuation Actuator::decide(const ActuationInput& input) const noexcept {
  Actuation out;
  out.utility_gain = input.fresh_utility - input.incumbent_utility;
  if (input.forced) {
    out.push = true;
    out.forced = true;
    return out;
  }
  if (input.bins_since_push < config_.cooldown_bins) return out;
  out.push = out.utility_gain >= config_.min_utility_gain;
  return out;
}

}  // namespace netmon::control
