// Umbrella header for the streaming re-optimization control loop:
// per-OD Kalman tracking, re-solve trigger policy, hysteresis actuation,
// and the long-lived ControlLoop that serve::Server hosts.
#pragma once

#include "control/actuator.hpp"
#include "control/loop.hpp"
#include "control/policy.hpp"
#include "control/tracker.hpp"
