// Hysteresis actuator: should the fresh optimum actually be pushed?
//
// Re-solving and reconfiguring are different decisions. A re-solve is a
// computation; a reconfiguration touches every router whose sampling rate
// changes, and a fleet that flaps monitors on/off for 0.1% utility is
// operationally worse than one running 0.1% below optimal (the paper's
// "low resource consumption" goal, §I). The actuator pushes a fresh
// placement only when its predicted utility gain over the running
// configuration clears a threshold, with an optional cooldown that bounds
// the push rate even when oscillating traffic keeps clearing the
// threshold. Contract repairs (topology change, budget violation, first
// configuration) are forced: correctness beats damping.
//
// This header is dependency-free on purpose: core::MonitorController
// delegates its legacy per-cycle decision here, so there is exactly one
// hysteresis implementation in the tree.
#pragma once

namespace netmon::control {

/// Damping knobs.
struct ActuatorConfig {
  /// Push only when fresh utility - incumbent utility >= this (a gain
  /// exactly at the threshold pushes). Matches the legacy
  /// core::ControllerOptions::min_utility_gain default.
  double min_utility_gain = 1e-3;
  /// Minimum bins between non-forced pushes (0 = no cooldown). Bounds
  /// the reconfiguration rate under oscillating traffic whose per-bin
  /// gain keeps clearing the threshold.
  int cooldown_bins = 0;
};

/// What the actuator sees after a re-solve.
struct ActuationInput {
  /// Utility of the running rates evaluated on the current bin's problem.
  double incumbent_utility = 0.0;
  /// Utility of the fresh optimum on the same problem.
  double fresh_utility = 0.0;
  /// Contract repair (first config, topology change, budget violation):
  /// push regardless of gain or cooldown.
  bool forced = false;
  /// Bins since the last push (large when never pushed).
  int bins_since_push = 0;
};

/// The decision.
struct Actuation {
  bool push = false;
  bool forced = false;
  /// fresh - incumbent utility (negative gains never push unforced).
  double utility_gain = 0.0;
};

class Actuator {
 public:
  explicit Actuator(ActuatorConfig config = {});

  Actuation decide(const ActuationInput& input) const noexcept;

  const ActuatorConfig& config() const noexcept { return config_; }

 private:
  ActuatorConfig config_;
};

}  // namespace netmon::control
