#include "control/tracker.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace netmon::control {

TrafficTracker::TrafficTracker(const core::MeasurementTask& task,
                               TrackerConfig config)
    : task_(task), config_(config) {
  NETMON_REQUIRE(!task_.ods.empty(), "tracker needs >= 1 OD pair");
  NETMON_REQUIRE(task_.expected_packets.size() == task_.ods.size(),
                 "task sizes must match the OD set");
  NETMON_REQUIRE(task_.interval_sec > 0.0, "interval must be positive");
  NETMON_REQUIRE(config_.meas_noise_rel > 0.0 &&
                     config_.level_noise_rel > 0.0 &&
                     config_.drift_noise_rel >= 0.0,
                 "noise scales must be positive");
  NETMON_REQUIRE(config_.gate_sigmas > 0.0, "gate must be positive");
  NETMON_REQUIRE(config_.reaccept_after >= 1,
                 "reaccept_after must be >= 1");

  const std::size_t n = task_.ods.size();
  level_.resize(n);
  drift_.assign(n, 0.0);
  p00_.resize(n);
  p01_.assign(n, 0.0);
  p11_.resize(n);
  outlier_run_.assign(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    const double seed = std::max(
        config_.rate_floor, task_.expected_packets[k] / task_.interval_sec);
    level_[k] = seed;
    const double sigma0 = config_.init_noise_rel * seed;
    p00_[k] = sigma0 * sigma0;
    // Drift is unknown at seed time; give it the same order of freedom
    // the per-bin drift noise would accumulate over ~one diurnal quarter.
    const double sigma_d = config_.drift_noise_rel * seed * 10.0;
    p11_[k] = sigma_d * sigma_d;
  }
}

TrackerStep TrafficTracker::observe(std::span<const double> measurements) {
  NETMON_REQUIRE(measurements.size() == level_.size(),
                 "measurement vector must cover every tracked OD");
  ++bins_;
  TrackerStep step;
  double sum_sq = 0.0;

  for (std::size_t k = 0; k < level_.size(); ++k) {
    // -- Predict: local linear trend, x = [level, drift], F = [[1,1],[0,1]].
    const double scale = std::max(level_[k], config_.rate_floor);
    const double q_l = config_.level_noise_rel * scale;
    const double q_d = config_.drift_noise_rel * scale;
    double level = level_[k] + drift_[k];
    const double drift = drift_[k];
    double p00 = p00_[k] + 2.0 * p01_[k] + p11_[k] + q_l * q_l;
    double p01 = p01_[k] + p11_[k];
    double p11 = p11_[k] + q_d * q_d;
    if (level < config_.rate_floor) level = config_.rate_floor;

    const double z = measurements[k];
    if (!(z >= 0.0) || !std::isfinite(z)) {
      // Predict-only bin: coast on the model.
      ++step.missing;
      level_[k] = level;
      drift_[k] = drift;
      p00_[k] = p00;
      p01_[k] = p01;
      p11_[k] = p11;
      continue;
    }

    ++step.measured;
    const double sigma_z =
        config_.meas_noise_rel * std::max(z, config_.rate_floor);
    const double r = sigma_z * sigma_z;
    const double innovation = z - level;
    const double s = p00 + r;
    const double normalized = innovation / std::sqrt(s);
    sum_sq += normalized * normalized;
    step.innovation_max =
        std::max(step.innovation_max, std::abs(normalized));

    if (std::abs(normalized) > config_.gate_sigmas) {
      ++step.outliers;
      if (++outlier_run_[k] >= config_.reaccept_after) {
        // Persistent disagreement is a level shift, not noise: re-seed
        // the filter on the measurement so it re-converges immediately.
        ++step.reaccepted;
        outlier_run_[k] = 0;
        level_[k] = std::max(z, config_.rate_floor);
        drift_[k] = 0.0;
        const double sigma0 = config_.init_noise_rel * level_[k];
        p00_[k] = sigma0 * sigma0;
        p01_[k] = 0.0;
        const double sigma_d = config_.drift_noise_rel * level_[k] * 10.0;
        p11_[k] = sigma_d * sigma_d;
      } else {
        // Reject the measurement; keep the prediction.
        level_[k] = level;
        drift_[k] = drift;
        p00_[k] = p00;
        p01_[k] = p01;
        p11_[k] = p11;
      }
      continue;
    }

    // -- Correct: H = [1, 0].
    outlier_run_[k] = 0;
    const double k0 = p00 / s;
    const double k1 = p01 / s;
    level_[k] = std::max(level + k0 * innovation, config_.rate_floor);
    drift_[k] = drift + k1 * innovation;
    p00_[k] = (1.0 - k0) * p00;
    p01_[k] = (1.0 - k0) * p01;
    p11_[k] = p11 - k1 * p01;
  }

  if (step.measured > 0)
    step.innovation_rms =
        std::sqrt(sum_sq / static_cast<double>(step.measured));
  return step;
}

core::MeasurementTask TrafficTracker::tracked_task() const {
  core::MeasurementTask task = task_;
  for (std::size_t k = 0; k < level_.size(); ++k) {
    task.expected_packets[k] = std::max(
        config_.min_expected_packets, level_[k] * task_.interval_sec);
  }
  return task;
}

}  // namespace netmon::control
