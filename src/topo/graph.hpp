// Directed network topology model.
//
// A Graph owns a set of named nodes (PoPs, external ASes) and directed
// links between them. Links carry the attributes the placement problem
// needs: capacity, IGP weight (for shortest-path routing) and a
// `monitorable` flag (access links owned by the customer side — CPE in the
// paper's terminology — cannot host a monitor, see paper §V-C).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace netmon::topo {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

/// Sentinel for "no such node/link".
inline constexpr std::uint32_t kInvalidId =
    std::numeric_limits<std::uint32_t>::max();

/// A network node: a PoP or an external attachment point (e.g. JANET).
struct Node {
  NodeId id = kInvalidId;
  std::string name;
  /// Relative traffic "mass" used by the gravity traffic-matrix model.
  double mass = 1.0;
};

/// A unidirectional link.
struct Link {
  LinkId id = kInvalidId;
  NodeId src = kInvalidId;
  NodeId dst = kInvalidId;
  /// Line rate in bits per second (OC-3 .. OC-48 in the reference topology).
  double capacity_bps = 0.0;
  /// IGP (IS-IS style) weight used by shortest-path routing.
  double igp_weight = 1.0;
  /// Whether a monitor may be activated on this link. Access links to
  /// customer premises are not monitorable (paper §V-C).
  bool monitorable = true;
};

/// Directed multigraph with stable integer ids and name lookup.
class Graph {
 public:
  /// Pre-sizes every container for a known build plan: `nodes` / `links`
  /// are upper bounds on the add_node / add_link calls to come, and a
  /// non-zero `links_per_node` additionally pre-reserves each node's
  /// adjacency lists at add_node time. With accurate bounds the whole
  /// build performs no vector reallocation (generators building 100k+
  /// link instances call this first; see topo/hierarchical.hpp).
  void reserve(std::size_t nodes, std::size_t links,
               std::size_t links_per_node = 0);

  /// Adds a node; names must be unique and non-empty. Returns its id.
  NodeId add_node(std::string name, double mass = 1.0);

  /// Adds one directed link. Returns its id.
  LinkId add_link(NodeId src, NodeId dst, double capacity_bps,
                  double igp_weight, bool monitorable = true);

  /// Adds a pair of opposite directed links with identical attributes.
  /// Returns {forward id, reverse id}.
  std::pair<LinkId, LinkId> add_duplex(NodeId a, NodeId b, double capacity_bps,
                                       double igp_weight,
                                       bool monitorable = true);

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t link_count() const noexcept { return links_.size(); }

  /// Node by id; throws on out-of-range id.
  const Node& node(NodeId id) const;
  /// Link by id; throws on out-of-range id.
  const Link& link(LinkId id) const;

  /// All nodes / links in id order.
  const std::vector<Node>& nodes() const noexcept { return nodes_; }
  const std::vector<Link>& links() const noexcept { return links_; }

  /// Node id by name, or nullopt.
  std::optional<NodeId> find_node(std::string_view name) const;
  /// Id of the first link src->dst, or nullopt.
  std::optional<LinkId> find_link(NodeId src, NodeId dst) const;
  /// Id of the first link between the named nodes, or nullopt.
  std::optional<LinkId> find_link(std::string_view src,
                                  std::string_view dst) const;

  /// Ids of links leaving `node` (in insertion order).
  const std::vector<LinkId>& out_links(NodeId node) const;
  /// Ids of links entering `node` (in insertion order).
  const std::vector<LinkId>& in_links(NodeId node) const;

  /// Human-readable link label "SRC->DST".
  std::string link_name(LinkId id) const;

  /// Updates the mutable attributes of a link (weight/monitorable);
  /// endpoints and capacity are fixed at creation.
  void set_igp_weight(LinkId id, double weight);
  void set_monitorable(LinkId id, bool monitorable);

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_;
  std::vector<std::vector<LinkId>> in_;
  std::unordered_map<std::string, NodeId> by_name_;
  /// Per-node adjacency reservation applied in add_node (reserve()).
  std::size_t degree_hint_ = 0;
};

}  // namespace netmon::topo
