// Second reference topology: the Abilene (Internet2) backbone, 2004.
//
// The paper closes §V-C arguing that the structural property its method
// exploits — small OD pairs surfacing on lightly-loaded links away from
// the heavy core — "is a general property of current network design, and
// ... the benefits are not limited to the specific network topology under
// consideration". Abilene (11 PoPs, 14 duplex links, the standard second
// backbone of the measurement literature) lets tests and benches check
// that claim on an independent network.
#pragma once

#include <vector>

#include "topo/graph.hpp"

namespace netmon::topo {

/// The Abilene backbone plus an external customer AS ("CUST") attached at
/// the Seattle PoP through a non-monitorable access link.
struct AbileneNetwork {
  Graph graph;
  NodeId customer = kInvalidId;
  NodeId attach = kInvalidId;  // STTL
  std::vector<NodeId> pops;
  LinkId access_in = kInvalidId;   // CUST -> STTL
  LinkId access_out = kInvalidId;  // STTL -> CUST
};

/// Builds the network. Deterministic.
AbileneNetwork make_abilene();

/// A customer measurement task mirroring the JANET structure: traffic
/// from CUST to every other PoP, heavy-tailed sizes (pkt/s).
std::vector<std::pair<std::string, double>> abilene_task_rates();

}  // namespace netmon::topo
