#include "topo/abilene.hpp"

#include "topo/capacities.hpp"
#include "util/error.hpp"

namespace netmon::topo {

namespace {

struct PopSpec {
  const char* name;
  double mass;
};

// The 11 Abilene PoPs, masses roughly tracking 2004 regional volume.
constexpr PopSpec kPops[] = {
    {"STTL", 2.0}, {"SNVA", 6.0}, {"LOSA", 6.5}, {"DNVR", 3.0},
    {"KSCY", 2.5}, {"HSTN", 4.0}, {"IPLS", 3.5}, {"CHIN", 7.0},
    {"ATLA", 5.0}, {"WASH", 6.0}, {"NYCM", 8.0},
};

struct LinkSpec {
  const char* a;
  const char* b;
  double weight;
};

// The classic 14 duplex links (OC-192 in reality; we reuse OC-48 rates —
// only relative loads matter to the formulation).
constexpr LinkSpec kLinks[] = {
    {"STTL", "SNVA", 10}, {"STTL", "DNVR", 10}, {"SNVA", "LOSA", 10},
    {"SNVA", "DNVR", 12}, {"LOSA", "HSTN", 14}, {"DNVR", "KSCY", 10},
    {"KSCY", "HSTN", 10}, {"KSCY", "IPLS", 10}, {"HSTN", "ATLA", 12},
    {"IPLS", "CHIN", 10}, {"CHIN", "NYCM", 12}, {"ATLA", "WASH", 10},
    {"ATLA", "IPLS", 12}, {"WASH", "NYCM", 10},
};

const std::vector<std::pair<std::string, double>> kTaskRates = {
    {"NYCM", 12000.0}, {"CHIN", 5200.0}, {"WASH", 3100.0}, {"LOSA", 2400.0},
    {"SNVA", 1900.0},  {"ATLA", 700.0},  {"HSTN", 260.0},  {"IPLS", 90.0},
    {"KSCY", 35.0},    {"DNVR", 12.0},
};

}  // namespace

AbileneNetwork make_abilene() {
  AbileneNetwork net;
  for (const PopSpec& pop : kPops) {
    const NodeId id = net.graph.add_node(pop.name, pop.mass);
    net.pops.push_back(id);
    if (std::string_view(pop.name) == "STTL") net.attach = id;
  }
  for (const LinkSpec& spec : kLinks) {
    const auto a = net.graph.find_node(spec.a);
    const auto b = net.graph.find_node(spec.b);
    NETMON_REQUIRE(a && b, "Abilene link references unknown PoP");
    net.graph.add_duplex(*a, *b, kOc48Bps, spec.weight);
  }
  net.customer = net.graph.add_node("CUST", 0.0);
  const auto [in, out] = net.graph.add_duplex(net.customer, net.attach,
                                              kOc48Bps, 5.0,
                                              /*monitorable=*/false);
  net.access_in = in;
  net.access_out = out;
  return net;
}

std::vector<std::pair<std::string, double>> abilene_task_rates() {
  return kTaskRates;
}

}  // namespace netmon::topo
