#include "topo/hierarchical.hpp"

#include <cmath>
#include <string>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace netmon::topo {

namespace {

/// Compact deterministic names: "c3", "a3.7", "e3.7.250". All fit in
/// small-string storage, so naming 25k nodes costs no heap traffic
/// beyond the node vector itself.
std::string core_name(unsigned c) { return "c" + std::to_string(c); }
std::string agg_name(unsigned c, unsigned a) {
  return "a" + std::to_string(c) + "." + std::to_string(a);
}
std::string edge_name(unsigned c, unsigned a, unsigned e) {
  return "e" + std::to_string(c) + "." + std::to_string(a) + "." +
         std::to_string(e);
}

}  // namespace

std::size_t hierarchy_node_count(const HierarchyOptions& o) {
  const std::size_t cores = o.cores;
  const std::size_t aggs = cores * o.aggs_per_core;
  return cores + aggs + aggs * o.edges_per_agg;
}

std::size_t hierarchy_link_count(const HierarchyOptions& o) {
  const std::size_t cores = o.cores;
  const std::size_t aggs = cores * o.aggs_per_core;
  const std::size_t edges = aggs * o.edges_per_agg;
  // Core full mesh: one duplex pair per unordered core pair. Every agg
  // and every edge is dual-homed: two duplex pairs = four directed links.
  return cores * (cores - 1) + aggs * 4 + edges * 4;
}

HierarchicalNetwork make_hierarchical(const HierarchyOptions& options) {
  NETMON_REQUIRE(options.cores >= 2, "hierarchy needs at least 2 cores");
  NETMON_REQUIRE(options.aggs_per_core >= 1, "aggs_per_core must be >= 1");
  NETMON_REQUIRE(options.edges_per_agg >= 1, "edges_per_agg must be >= 1");

  HierarchicalNetwork net;
  net.options = options;
  const unsigned C = options.cores;
  const unsigned A = options.aggs_per_core;
  const unsigned E = options.edges_per_agg;

  const std::size_t nodes = hierarchy_node_count(options);
  const std::size_t links = hierarchy_link_count(options);
  // Degree hint 4 fits the edge tier exactly (two duplex homes), which
  // is the overwhelming majority of nodes; core/agg adjacency lists grow
  // past it O(log degree) times — a constant number of reallocations.
  net.graph.reserve(nodes, links, 4);
  net.tier_of_node.reserve(nodes);
  net.region_of_node.reserve(nodes);
  net.cores.reserve(C);
  net.aggs.reserve(std::size_t{C} * A);
  net.edges.reserve(std::size_t{C} * A * E);

  const netmon::Rng base(options.seed);

  // Nodes, tier by tier: cores, then aggs, then edges — ids are dense
  // per tier, and region (pod) labels follow ownership.
  for (unsigned c = 0; c < C; ++c) {
    net.cores.push_back(net.graph.add_node(core_name(c), 0.0));
    net.tier_of_node.push_back(Tier::kCore);
    net.region_of_node.push_back(c);
  }
  for (unsigned c = 0; c < C; ++c) {
    for (unsigned a = 0; a < A; ++a) {
      net.aggs.push_back(net.graph.add_node(agg_name(c, a), 0.0));
      net.tier_of_node.push_back(Tier::kAgg);
      net.region_of_node.push_back(c);
    }
  }
  for (unsigned c = 0; c < C; ++c) {
    for (unsigned a = 0; a < A; ++a) {
      for (unsigned e = 0; e < E; ++e) {
        // Heavy-tailed gravity mass, deterministic per edge index.
        const std::size_t index =
            (static_cast<std::size_t>(c) * A + a) * E + e;
        netmon::Rng rng = base.substream(index);
        const double mass =
            options.edge_mass *
            std::exp(rng.uniform(-options.mass_log_spread,
                                 options.mass_log_spread));
        net.edges.push_back(net.graph.add_node(edge_name(c, a, e), mass));
        net.tier_of_node.push_back(Tier::kEdge);
        net.region_of_node.push_back(c);
      }
    }
  }

  // Core full mesh.
  for (unsigned i = 0; i < C; ++i) {
    for (unsigned j = i + 1; j < C; ++j) {
      net.graph.add_duplex(net.cores[i], net.cores[j],
                           options.core_capacity_bps,
                           options.core_igp_weight);
    }
  }
  // Aggs: dual-homed to the owning core and the next pod's core.
  for (unsigned c = 0; c < C; ++c) {
    for (unsigned a = 0; a < A; ++a) {
      const NodeId agg = net.aggs[std::size_t{c} * A + a];
      net.graph.add_duplex(agg, net.cores[c], options.agg_capacity_bps,
                           options.agg_igp_weight);
      net.graph.add_duplex(agg, net.cores[(c + 1) % C],
                           options.agg_capacity_bps,
                           options.agg_igp_weight);
    }
  }
  // Edges: dual-homed to the owning agg and the next agg in the pod
  // (same agg twice would create parallel links when A == 1, so fall
  // back to the owning core as the second home in that degenerate case).
  for (unsigned c = 0; c < C; ++c) {
    for (unsigned a = 0; a < A; ++a) {
      const NodeId agg = net.aggs[std::size_t{c} * A + a];
      const NodeId second =
          A > 1 ? net.aggs[std::size_t{c} * A + (a + 1) % A] : net.cores[c];
      for (unsigned e = 0; e < E; ++e) {
        const NodeId edge =
            net.edges[(std::size_t{c} * A + a) * E + e];
        net.graph.add_duplex(edge, agg, options.edge_capacity_bps,
                             options.edge_igp_weight);
        net.graph.add_duplex(edge, second, options.edge_capacity_bps,
                             options.edge_igp_weight);
      }
    }
  }

  NETMON_REQUIRE(net.graph.node_count() == nodes &&
                     net.graph.link_count() == links,
                 "hierarchy closed-form counts out of sync with generator");
  return net;
}

HierarchyOptions hierarchy_scale_options() {
  HierarchyOptions o;
  o.cores = 10;
  o.aggs_per_core = 8;
  o.edges_per_agg = 320;
  return o;
}

}  // namespace netmon::topo
