#include "topo/io.hpp"

#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace netmon::topo {

void write_graph(std::ostream& out, const Graph& graph) {
  out << "# netmon topology: " << graph.node_count() << " nodes, "
      << graph.link_count() << " links\n";
  for (const Node& n : graph.nodes()) {
    out << "node " << n.name << " " << n.mass << "\n";
  }
  for (const Link& l : graph.links()) {
    out << "link " << graph.node(l.src).name << " " << graph.node(l.dst).name
        << " " << l.capacity_bps << " " << l.igp_weight << " "
        << (l.monitorable ? 1 : 0) << "\n";
  }
}

Graph read_graph(std::istream& in) {
  Graph graph;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind)) continue;  // blank line

    auto bad = [&](const std::string& why) {
      throw Error("topology parse error at line " + std::to_string(line_no) +
                  ": " + why);
    };

    if (kind == "node") {
      std::string name;
      double mass = 1.0;
      if (!(fields >> name >> mass)) bad("expected: node <name> <mass>");
      graph.add_node(name, mass);
    } else if (kind == "link" || kind == "duplex") {
      std::string src, dst;
      double capacity = 0.0, weight = 0.0;
      int monitorable = 1;
      if (!(fields >> src >> dst >> capacity >> weight >> monitorable))
        bad("expected: " + kind +
            " <src> <dst> <capacity_bps> <weight> <monitorable>");
      const auto s = graph.find_node(src);
      const auto d = graph.find_node(dst);
      if (!s) bad("unknown node: " + src);
      if (!d) bad("unknown node: " + dst);
      if (kind == "link")
        graph.add_link(*s, *d, capacity, weight, monitorable != 0);
      else
        graph.add_duplex(*s, *d, capacity, weight, monitorable != 0);
    } else {
      bad("unknown record kind: " + kind);
    }
  }
  return graph;
}

std::string to_string(const Graph& graph) {
  std::ostringstream out;
  write_graph(out, graph);
  return out.str();
}

Graph graph_from_string(const std::string& text) {
  std::istringstream in(text);
  return read_graph(in);
}

}  // namespace netmon::topo
