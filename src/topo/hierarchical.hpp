// Deterministic hierarchical topology generator: core / aggregation /
// edge (PoP) tiers at Internet scale.
//
// The paper's evaluation stops at GEANT (72 links); the production
// north-star is topologies three orders of magnitude larger. This
// generator builds them with the structure real ISP networks have —
// a full-mesh core, aggregation routers dual-homed across adjacent core
// pods, and edge/PoP routers dual-homed across adjacent aggregation
// routers — so the routing matrix a scale instance induces has the same
// shape (heavy shared trunks, long thin access tails) the placement
// problem exploits on the reference networks.
//
// Everything is a pure function of HierarchyOptions: node order, link
// order, names, masses, capacities and IGP weights are all derived from
// tier indices (masses through Rng::substream of the seed), so two
// builds with equal options are equal graph-for-graph, and the expected
// node/link counts are closed-form (hierarchy_node_count /
// hierarchy_link_count) — which is also what lets the generator
// Graph::reserve() everything up front and build without reallocation.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/graph.hpp"

namespace netmon::topo {

/// Shape and attribute knobs. The defaults build a small (~2k links)
/// instance; scale presets live in hierarchy_scale_options().
struct HierarchyOptions {
  /// Full-mesh core routers; each owns one "pod" of the hierarchy.
  unsigned cores = 4;
  /// Aggregation routers per pod, each dual-homed to its own core and
  /// the next pod's core.
  unsigned aggs_per_core = 4;
  /// Edge (PoP) routers per aggregation router, each dual-homed to its
  /// own aggregation router and the next one in the same pod.
  unsigned edges_per_agg = 30;

  /// Tier line rates (bps).
  double core_capacity_bps = 400e9;
  double agg_capacity_bps = 100e9;
  double edge_capacity_bps = 25e9;

  /// Tier IGP weights: core < agg < edge keeps transit traffic on the
  /// trunk mesh, like production IS-IS metrics do.
  double core_igp_weight = 1.0;
  double agg_igp_weight = 4.0;
  double edge_igp_weight = 10.0;

  /// Gravity mass scale of an edge node; per-node masses are heavy-tailed
  /// around it (deterministic in `seed`). Core/agg nodes carry no mass —
  /// traffic originates and terminates at the edge.
  double edge_mass = 1.0;
  /// Mass spread: per-edge mass = edge_mass * exp(U[-s, s]).
  double mass_log_spread = 1.5;
  std::uint64_t seed = 7;
};

/// Node tier labels (HierarchicalNetwork::tier_of_node).
enum class Tier : std::uint8_t { kCore = 0, kAgg = 1, kEdge = 2 };

/// A generated instance plus the hierarchy metadata the partitioned
/// approximation tier keys on.
struct HierarchicalNetwork {
  Graph graph;
  /// Tier of every node, indexed by NodeId.
  std::vector<Tier> tier_of_node;
  /// Owning pod (core index) of every node, indexed by NodeId. Pods are
  /// the natural solve partition: intra-pod traffic never leaves them.
  std::vector<std::uint32_t> region_of_node;
  std::vector<NodeId> cores;
  std::vector<NodeId> aggs;
  std::vector<NodeId> edges;
  HierarchyOptions options;
};

/// Closed-form node count for `options` (cores + aggs + edges).
std::size_t hierarchy_node_count(const HierarchyOptions& options);
/// Closed-form directed-link count for `options`: the core mesh plus
/// four unidirectional links per agg and per edge (two duplex homes).
std::size_t hierarchy_link_count(const HierarchyOptions& options);

/// Builds the network. Deterministic in `options`; reserves everything
/// up front from the closed-form counts.
HierarchicalNetwork make_hierarchical(const HierarchyOptions& options = {});

/// Preset that clears the 100k directed-link bar used by the scaling
/// bench: 10 pods x 8 aggs x 320 edges = 25,690 nodes, 102,810 links.
HierarchyOptions hierarchy_scale_options();

}  // namespace netmon::topo
