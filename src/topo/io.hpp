// Text serialization of topologies so experiments can be run against
// user-provided networks.
//
// Format (one record per line, '#' starts a comment):
//   node <name> <mass>
//   link <src-name> <dst-name> <capacity_bps> <igp_weight> <monitorable:0|1>
//   duplex <a-name> <b-name> <capacity_bps> <igp_weight> <monitorable:0|1>
#pragma once

#include <iosfwd>
#include <string>

#include "topo/graph.hpp"

namespace netmon::topo {

/// Serializes a graph in the text format above (nodes first, then links).
void write_graph(std::ostream& out, const Graph& graph);

/// Parses a graph from the text format above. Throws netmon::Error with a
/// line number on malformed input.
Graph read_graph(std::istream& in);

/// Convenience: round-trips through a string.
std::string to_string(const Graph& graph);
Graph graph_from_string(const std::string& text);

}  // namespace netmon::topo
