#include "topo/graph.hpp"

#include "util/error.hpp"

namespace netmon::topo {

void Graph::reserve(std::size_t nodes, std::size_t links,
                    std::size_t links_per_node) {
  nodes_.reserve(nodes);
  out_.reserve(nodes);
  in_.reserve(nodes);
  by_name_.reserve(nodes);
  links_.reserve(links);
  degree_hint_ = links_per_node;
}

NodeId Graph::add_node(std::string name, double mass) {
  NETMON_REQUIRE(!name.empty(), "node name must be non-empty");
  NETMON_REQUIRE(by_name_.find(name) == by_name_.end(),
                 "duplicate node name: " + name);
  NETMON_REQUIRE(mass >= 0.0, "node mass must be non-negative");
  const auto id = static_cast<NodeId>(nodes_.size());
  by_name_.emplace(name, id);
  nodes_.push_back(Node{id, std::move(name), mass});
  out_.emplace_back();
  in_.emplace_back();
  if (degree_hint_ != 0) {
    out_.back().reserve(degree_hint_);
    in_.back().reserve(degree_hint_);
  }
  return id;
}

LinkId Graph::add_link(NodeId src, NodeId dst, double capacity_bps,
                       double igp_weight, bool monitorable) {
  NETMON_REQUIRE(src < nodes_.size(), "link source node out of range");
  NETMON_REQUIRE(dst < nodes_.size(), "link destination node out of range");
  NETMON_REQUIRE(src != dst, "self-loop links are not allowed");
  NETMON_REQUIRE(capacity_bps > 0.0, "link capacity must be positive");
  NETMON_REQUIRE(igp_weight > 0.0, "IGP weight must be positive");
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{id, src, dst, capacity_bps, igp_weight, monitorable});
  out_[src].push_back(id);
  in_[dst].push_back(id);
  return id;
}

std::pair<LinkId, LinkId> Graph::add_duplex(NodeId a, NodeId b,
                                            double capacity_bps,
                                            double igp_weight,
                                            bool monitorable) {
  const LinkId fwd = add_link(a, b, capacity_bps, igp_weight, monitorable);
  const LinkId rev = add_link(b, a, capacity_bps, igp_weight, monitorable);
  return {fwd, rev};
}

const Node& Graph::node(NodeId id) const {
  NETMON_REQUIRE(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

const Link& Graph::link(LinkId id) const {
  NETMON_REQUIRE(id < links_.size(), "link id out of range");
  return links_[id];
}

std::optional<NodeId> Graph::find_node(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<LinkId> Graph::find_link(NodeId src, NodeId dst) const {
  if (src >= nodes_.size()) return std::nullopt;
  for (LinkId id : out_[src]) {
    if (links_[id].dst == dst) return id;
  }
  return std::nullopt;
}

std::optional<LinkId> Graph::find_link(std::string_view src,
                                       std::string_view dst) const {
  const auto s = find_node(src);
  const auto d = find_node(dst);
  if (!s || !d) return std::nullopt;
  return find_link(*s, *d);
}

const std::vector<LinkId>& Graph::out_links(NodeId node) const {
  NETMON_REQUIRE(node < nodes_.size(), "node id out of range");
  return out_[node];
}

const std::vector<LinkId>& Graph::in_links(NodeId node) const {
  NETMON_REQUIRE(node < nodes_.size(), "node id out of range");
  return in_[node];
}

std::string Graph::link_name(LinkId id) const {
  const Link& l = link(id);
  return nodes_[l.src].name + "->" + nodes_[l.dst].name;
}

void Graph::set_igp_weight(LinkId id, double weight) {
  NETMON_REQUIRE(id < links_.size(), "link id out of range");
  NETMON_REQUIRE(weight > 0.0, "IGP weight must be positive");
  links_[id].igp_weight = weight;
}

void Graph::set_monitorable(LinkId id, bool monitorable) {
  NETMON_REQUIRE(id < links_.size(), "link id out of range");
  links_[id].monitorable = monitorable;
}

}  // namespace netmon::topo
