// Reference topology modelled on the GEANT European research backbone as
// of November 2004, the network used in the paper's evaluation (§V).
//
// The paper reports 72 unidirectional links among the GEANT PoPs; we build
// 23 PoPs joined by 36 duplex links (= 72 unidirectional links), with
// capacities in the OC-3..OC-48 range and IGP weights chosen so that the
// shortest paths of the JANET measurement task match the monitored links
// reported in Table I (PL reached via SE, IL via IT, BE/LU via FR, SK via
// CZ). The JANET AS attaches to the UK PoP through a non-monitorable
// access link (CPE-owned, paper §V-C).
#pragma once

#include <vector>

#include "topo/graph.hpp"

namespace netmon::topo {

/// The GEANT-like reference network plus the external JANET attachment.
struct GeantNetwork {
  Graph graph;
  /// The external JANET node (origin of the paper's measurement task).
  NodeId janet = kInvalidId;
  /// The UK PoP where JANET attaches.
  NodeId uk = kInvalidId;
  /// All GEANT PoPs (excludes the JANET node), in creation order.
  std::vector<NodeId> pops;
  /// The two unidirectional access links JANET<->UK (not monitorable).
  LinkId access_in = kInvalidId;   // JANET -> UK
  LinkId access_out = kInvalidId;  // UK -> JANET
};

/// Builds the reference network. Deterministic: no randomness involved.
GeantNetwork make_geant();

/// Destination PoP names of the paper's JANET task, in Table I row order
/// (largest to smallest OD pair).
const std::vector<std::string>& janet_destinations();

/// "Actual" sizes (packets/second) of the 20 JANET OD pairs, in the same
/// order as janet_destinations(). Calibrated to Table I's scale: the sum
/// is 57,933 pkt/s (the paper's JANET ingress volume), the largest OD pair
/// exceeds 30,000 pkt/s (JANET-NL) and the smallest is 20 pkt/s (JANET-LU).
const std::vector<double>& janet_od_rates();

}  // namespace netmon::topo
