#include "topo/geant.hpp"

#include "topo/capacities.hpp"
#include "util/error.hpp"

namespace netmon::topo {

namespace {

struct PopSpec {
  const char* name;
  double mass;  // gravity-model weight, tuned to 2004-era traffic shares
};

// 23 PoPs. Masses drive the gravity cross-traffic: large western-European
// PoPs dominate; LU/SK/IL/HR/SI are small, which is what makes their
// access links the cheap places to sample small OD pairs (paper §V-C).
constexpr PopSpec kPops[] = {
    {"UK", 5.0},  {"FR", 9.0}, {"DE", 13.0}, {"NL", 8.5},  {"IT", 8.0},
    {"ES", 6.0},  {"SE", 4.5}, {"CH", 4.5},  {"AT", 4.5},  {"BE", 1.0},
    {"CZ", 3.5},  {"PL", 4.5}, {"PT", 2.2},  {"GR", 3.2},  {"HU", 3.5},
    {"DK", 2.5},  {"IE", 1.8}, {"NY", 6.0},  {"SI", 2.6},  {"HR", 3.0},
    {"SK", 0.4},  {"IL", 0.45}, {"LU", 0.25},
};

struct LinkSpec {
  const char* a;
  const char* b;
  double capacity;
  double weight;
};

// 36 duplex links = 72 unidirectional links (paper §V-A). Weights are
// chosen so every shortest path relevant to the JANET task is unique and
// matches the monitor placement of Table I.
constexpr LinkSpec kLinks[] = {
    // UK's six inter-PoP links (paper §V-C: "all links that connect the
    // UK PoP to the other PoPs", six of them). Weight 25 keeps the UK PoP
    // out of continental transit paths.
    {"UK", "FR", kOc48Bps, 25}, {"UK", "NL", kOc48Bps, 25},
    {"UK", "SE", kOc48Bps, 25}, {"UK", "NY", kOc48Bps, 25},
    {"UK", "PT", kOc3Bps, 25},  {"UK", "IE", kOc12Bps, 25},
    // France fan-out.
    {"FR", "BE", kOc12Bps, 10}, {"FR", "LU", kOc3Bps, 10},
    {"FR", "CH", kOc48Bps, 10}, {"FR", "IT", kOc48Bps, 15},
    {"FR", "ES", kOc12Bps, 15}, {"FR", "DE", kOc48Bps, 15},
    // Benelux / Germany.
    {"NL", "BE", kOc12Bps, 16}, {"NL", "DE", kOc48Bps, 10},
    {"NL", "DK", kOc12Bps, 14},
    // Germany fan-out.
    {"DE", "DK", kOc12Bps, 15}, {"DE", "AT", kOc48Bps, 10},
    {"DE", "CZ", kOc12Bps, 10}, {"DE", "PL", kOc12Bps, 20},
    {"DE", "NY", kOc48Bps, 34},
    // Nordics.
    {"SE", "DK", kOc12Bps, 15}, {"SE", "PL", kOc3Bps, 15},
    // Switzerland / Italy / Iberia.
    {"CH", "IT", kOc48Bps, 20}, {"CH", "AT", kOc12Bps, 15},
    {"IT", "GR", kOc12Bps, 15}, {"IT", "IL", kOc3Bps, 15},
    {"IT", "SI", kOc3Bps, 25},  {"ES", "PT", kOc12Bps, 20},
    // Central / eastern Europe.
    {"AT", "HU", kOc12Bps, 10}, {"AT", "SI", kOc3Bps, 15},
    {"AT", "CZ", kOc12Bps, 10}, {"HU", "HR", kOc3Bps, 10},
    {"HU", "SK", kOc3Bps, 15},  {"CZ", "SK", kOc3Bps, 10},
    {"SI", "HR", kOc3Bps, 15},  {"IE", "NY", kOc12Bps, 30},
};

// Table I row order (largest to smallest OD pair).
const std::vector<std::string> kDestinations = {
    "NL", "NY", "DE", "SE", "CH", "FR", "PL", "GR", "ES", "SI",
    "IT", "AT", "CZ", "BE", "PT", "HU", "HR", "IL", "SK", "LU"};

// Calibrated to the paper: sum = 57,933 pkt/s (JANET ingress volume,
// §V-C footnote 2); JANET-NL > 30,000 pkt/s; JANET-LU = 20 pkt/s.
const std::vector<double> kOdRates = {
    30266, 7370, 6280, 3830, 2750, 2260, 1530, 960, 785, 580,
    450,   250,  210,  130,  98,   65,   45,   30,  24,  20};

}  // namespace

GeantNetwork make_geant() {
  GeantNetwork net;
  for (const PopSpec& pop : kPops) {
    const NodeId id = net.graph.add_node(pop.name, pop.mass);
    net.pops.push_back(id);
    if (std::string_view(pop.name) == "UK") net.uk = id;
  }
  for (const LinkSpec& spec : kLinks) {
    const auto a = net.graph.find_node(spec.a);
    const auto b = net.graph.find_node(spec.b);
    NETMON_REQUIRE(a && b, "link references unknown PoP");
    net.graph.add_duplex(*a, *b, spec.capacity, spec.weight);
  }
  // The external JANET AS: mass 0 (its demand is given explicitly by the
  // measurement task, not by the gravity model); access link owned by the
  // customer side, hence not monitorable.
  net.janet = net.graph.add_node("JANET", 0.0);
  const auto [in, out] = net.graph.add_duplex(net.janet, net.uk, kOc48Bps,
                                              5.0, /*monitorable=*/false);
  net.access_in = in;
  net.access_out = out;
  return net;
}

const std::vector<std::string>& janet_destinations() { return kDestinations; }

const std::vector<double>& janet_od_rates() { return kOdRates; }

}  // namespace netmon::topo
