// SONET line-rate constants used by the reference topology.
#pragma once

namespace netmon::topo {

/// OC-3 line rate (155.52 Mb/s).
inline constexpr double kOc3Bps = 155.52e6;
/// OC-12 line rate (622.08 Mb/s).
inline constexpr double kOc12Bps = 622.08e6;
/// OC-48 line rate (2.488 Gb/s) — the fastest links in GEANT circa 2004.
inline constexpr double kOc48Bps = 2488.32e6;

}  // namespace netmon::topo
