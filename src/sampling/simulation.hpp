// Network-wide sampling simulation (the paper's evaluation methodology,
// §V-A): "each sampling experiment consists in simulating a random
// sampling process on the flow records observed on link i using the
// sampling rate p_i".
//
// Two equivalent engines are provided:
//  - a fast path that draws per-OD binomial counts (used by the benches,
//    where Table I needs 20 independent runs over ~17M packets), and
//  - a per-packet reference path that walks every packet over every
//    monitor with dedup (used by tests to validate the fast path and by
//    the ablation on periodic samplers).
#pragma once

#include <cstdint>
#include <vector>

#include "routing/routing_matrix.hpp"
#include "runtime/thread_pool.hpp"
#include "sampling/effective_rate.hpp"
#include "sampling/sampler.hpp"
#include "traffic/flow.hpp"
#include "util/rng.hpp"

namespace netmon::sampling {

/// How multi-point samples are counted.
enum class CountMode {
  /// Sum of samples across monitors (no dedup). Unbiased against the
  /// linearized rate of eq. (7): E[X_k] = S_k * sum_i r_ki p_i.
  kSumAcrossMonitors,
  /// Distinct packets sampled at least once (dedup). Unbiased against
  /// the exact rate of eq. (1): E[X_k] = S_k * rho_k.
  kDistinctPackets,
};

/// Per-OD outcome of one sampling experiment.
struct OdSampleCount {
  /// Ground-truth packets of the OD pair in the interval (S_k).
  std::uint64_t actual_packets = 0;
  /// Packets counted by the monitors under the chosen CountMode (X_k).
  std::uint64_t sampled_packets = 0;
};

/// Fast engine: exact distributional draw per OD pair.
/// `flows[k]` must be the flow population of matrix.od(k).
std::vector<OdSampleCount> simulate_sampling(
    Rng& rng, const routing::RoutingMatrix& matrix,
    const std::vector<std::vector<traffic::Flow>>& flows,
    const RateVector& rates, CountMode mode = CountMode::kSumAcrossMonitors);

/// Fast engine, parallel per OD pair: OD k draws from base.substream(k),
/// so the output is bit-identical at every pool size (and to a serial
/// loop over the same substreams) — unlike the sequential overload, whose
/// draw order couples consecutive ODs. `base` is not advanced.
std::vector<OdSampleCount> simulate_sampling(
    runtime::ThreadPool& pool, const Rng& base,
    const routing::RoutingMatrix& matrix,
    const std::vector<std::vector<traffic::Flow>>& flows,
    const RateVector& rates, CountMode mode = CountMode::kSumAcrossMonitors);

/// Monte-Carlo fan-out: `runs` independent sampling experiments, run r
/// drawing from base.substream(r) (per-OD substreams nested inside), all
/// fanned across the pool. result[r][k] is OD k in run r; bit-identical
/// at every thread count, which is what makes the paper's 20-run Table I
/// accuracy experiment reproducible under parallel execution.
std::vector<std::vector<OdSampleCount>> simulate_sampling_runs(
    runtime::ThreadPool& pool, const Rng& base,
    const routing::RoutingMatrix& matrix,
    const std::vector<std::vector<traffic::Flow>>& flows,
    const RateVector& rates, int runs,
    CountMode mode = CountMode::kSumAcrossMonitors);

// SamplerKind (used by the per-packet reference engine below and by the
// ingest pipeline) lives in sampling/sampler.hpp next to the samplers.

/// Reference engine: walks every packet of every flow over every monitor
/// on its path. O(total packets x monitors) — use at reduced scale.
std::vector<OdSampleCount> simulate_sampling_per_packet(
    Rng& rng, const routing::RoutingMatrix& matrix,
    const std::vector<std::vector<traffic::Flow>>& flows,
    const RateVector& rates, CountMode mode = CountMode::kSumAcrossMonitors,
    SamplerKind sampler = SamplerKind::kBernoulli);

}  // namespace netmon::sampling
