#include "sampling/dedup.hpp"

namespace netmon::sampling {

PacketId packet_id(const traffic::FlowKey& key, std::uint64_t seq) noexcept {
  // Mix the flow-key hash with the sequence index (splitmix64 finalizer).
  std::uint64_t h = traffic::FlowKeyHash{}(key);
  h ^= seq + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace netmon::sampling
