// Packet samplers.
//
// The paper assumes i.i.d. random sampling; router implementations often
// use periodic (deterministic 1-in-N) sampling instead. Duffield et al.
// (paper ref. [12]) show the two behave alike on high-speed links — the
// ablation bench revisits this with both samplers.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace netmon::sampling {

/// i.i.d. Bernoulli packet sampler with probability p.
class BernoulliSampler {
 public:
  BernoulliSampler(double probability, std::uint64_t seed);

  /// Decides for the next packet.
  bool sample();

  double rate() const noexcept { return p_; }

 private:
  double p_;
  Rng rng_;
};

/// Deterministic periodic sampler: picks one packet out of every period
/// (rounded from 1/p), starting at a random phase.
class PeriodicSampler {
 public:
  PeriodicSampler(double probability, std::uint64_t seed);

  /// Decides for the next packet.
  bool sample();

  /// The realized sampling rate 1/period (0 when disabled).
  double rate() const noexcept;

 private:
  std::uint64_t period_;
  std::uint64_t next_;
  std::uint64_t counter_ = 0;
};

/// Sampler policy selector — how the ingest pipeline configures its
/// per-link monitors.
enum class SamplerKind : std::uint8_t { kBernoulli, kPeriodic };

const char* to_string(SamplerKind kind) noexcept;

/// A per-link sampler of either policy behind one branch (no virtual
/// dispatch on the packet path).
class LinkSampler {
 public:
  LinkSampler(SamplerKind kind, double probability, std::uint64_t seed);

  /// Decides for the next packet.
  bool sample() {
    return kind_ == SamplerKind::kBernoulli ? bernoulli_.sample()
                                            : periodic_.sample();
  }

  SamplerKind kind() const noexcept { return kind_; }
  /// The realized sampling rate of the active policy.
  double rate() const noexcept;

 private:
  SamplerKind kind_;
  BernoulliSampler bernoulli_;
  PeriodicSampler periodic_;
};

}  // namespace netmon::sampling
