// Packet samplers.
//
// The paper assumes i.i.d. random sampling; router implementations often
// use periodic (deterministic 1-in-N) sampling instead. Duffield et al.
// (paper ref. [12]) show the two behave alike on high-speed links — the
// ablation bench revisits this with both samplers.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace netmon::sampling {

/// i.i.d. Bernoulli packet sampler with probability p.
class BernoulliSampler {
 public:
  BernoulliSampler(double probability, std::uint64_t seed);

  /// Decides for the next packet.
  bool sample();

  double rate() const noexcept { return p_; }

 private:
  double p_;
  Rng rng_;
};

/// Deterministic periodic sampler: picks one packet out of every period
/// (rounded from 1/p), starting at a random phase.
class PeriodicSampler {
 public:
  PeriodicSampler(double probability, std::uint64_t seed);

  /// Decides for the next packet.
  bool sample();

  /// The realized sampling rate 1/period (0 when disabled).
  double rate() const noexcept;

 private:
  std::uint64_t period_;
  std::uint64_t next_;
  std::uint64_t counter_ = 0;
};

}  // namespace netmon::sampling
