#include "sampling/effective_rate.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace netmon::sampling {

double effective_rate_exact(const routing::RoutingMatrix& matrix,
                            std::size_t k, const RateVector& rates) {
  double log_miss = 0.0;  // log prod (1-p_i)^{r_ki}
  for (const auto& [link, frac] : matrix.row(k)) {
    NETMON_REQUIRE(link < rates.size(), "rate vector too short");
    const double p = rates[link];
    NETMON_REQUIRE(p >= 0.0 && p <= 1.0, "sampling rate out of [0,1]");
    if (p >= 1.0) return 1.0;
    log_miss += frac * std::log1p(-p);
  }
  return -std::expm1(log_miss);
}

double effective_rate_approx(const routing::RoutingMatrix& matrix,
                             std::size_t k, const RateVector& rates) {
  double rho = 0.0;
  for (const auto& [link, frac] : matrix.row(k)) {
    NETMON_REQUIRE(link < rates.size(), "rate vector too short");
    rho += frac * rates[link];
  }
  return rho;
}

std::vector<double> effective_rates_exact(const routing::RoutingMatrix& matrix,
                                          const RateVector& rates) {
  std::vector<double> out(matrix.od_count());
  for (std::size_t k = 0; k < out.size(); ++k)
    out[k] = effective_rate_exact(matrix, k, rates);
  return out;
}

std::vector<double> effective_rates_approx(
    const routing::RoutingMatrix& matrix, const RateVector& rates) {
  std::vector<double> out(matrix.od_count());
  if (rates.size() >= matrix.link_count()) {
    // All rows at once: rho = R p. Row-wise left-to-right accumulation,
    // identical to the per-row scalar path.
    linalg::spmv(matrix.csr(), rates, out);
    return out;
  }
  // Short rate vector: fall back to the per-row path, which validates
  // only the links actually traversed.
  for (std::size_t k = 0; k < out.size(); ++k)
    out[k] = effective_rate_approx(matrix, k, rates);
  return out;
}

double max_linearization_error(const routing::RoutingMatrix& matrix,
                               const RateVector& rates) {
  double worst = 0.0;
  for (std::size_t k = 0; k < matrix.od_count(); ++k) {
    const double exact = effective_rate_exact(matrix, k, rates);
    if (exact <= 0.0) continue;
    const double approx = effective_rate_approx(matrix, k, rates);
    worst = std::max(worst, std::abs(approx - exact) / exact);
  }
  return worst;
}

}  // namespace netmon::sampling
