// Multi-point sample deduplication.
//
// The exact effective-rate estimator needs "means to discern whether the
// same packet is sampled at multiple locations in the network" (paper
// §III). We implement the standard approach (trajectory-sampling style):
// derive a packet identity by hashing invariant packet content — here the
// flow key plus the packet's sequence index within its flow — and keep a
// set of identities already counted.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "traffic/flow.hpp"

namespace netmon::sampling {

/// Identity of one packet, stable across observation points.
using PacketId = std::uint64_t;

/// Computes the network-wide identity of packet `seq` of a flow.
PacketId packet_id(const traffic::FlowKey& key, std::uint64_t seq) noexcept;

/// Set of already-counted packet identities.
class PacketIdDedup {
 public:
  /// Registers an identity; returns true when it was NOT seen before
  /// (i.e. this observation should be counted).
  bool insert(PacketId id) { return seen_.insert(id).second; }

  /// Number of distinct identities registered.
  std::size_t distinct() const noexcept { return seen_.size(); }

  void clear() { seen_.clear(); }

 private:
  std::unordered_set<PacketId> seen_;
};

}  // namespace netmon::sampling
