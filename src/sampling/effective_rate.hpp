// Effective sampling rate of an OD pair (paper §III).
//
// Exact (eq. 1): rho_k = 1 - prod_i (1 - p_i)^{r_ki} — probability that a
// packet is sampled at least once along its path, monitors independent.
// Approximate (eq. 7): rho_k = sum_i r_ki p_i — valid for low rates and
// few monitors per path; this is what the optimizer uses (§IV-B), and the
// evaluation validates the approximation.
#pragma once

#include <vector>

#include "routing/routing_matrix.hpp"

namespace netmon::sampling {

/// Per-link sampling probabilities indexed by link id.
using RateVector = std::vector<double>;

/// Exact effective rate of OD row k under rates p (eq. 1).
/// Fractional routing entries are treated as exponents, i.e. the expected
/// per-packet sampling probability under ECMP path selection.
double effective_rate_exact(const routing::RoutingMatrix& matrix,
                            std::size_t k, const RateVector& rates);

/// Linearized effective rate of OD row k (eq. 7).
double effective_rate_approx(const routing::RoutingMatrix& matrix,
                             std::size_t k, const RateVector& rates);

/// Both rates for all OD rows at once.
std::vector<double> effective_rates_exact(const routing::RoutingMatrix& matrix,
                                          const RateVector& rates);
std::vector<double> effective_rates_approx(
    const routing::RoutingMatrix& matrix, const RateVector& rates);

/// Largest relative gap |approx-exact|/exact over all OD rows with a
/// non-zero rate; the evaluation uses this to validate assumption (7).
double max_linearization_error(const routing::RoutingMatrix& matrix,
                               const RateVector& rates);

}  // namespace netmon::sampling
