#include "sampling/trajectory.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace netmon::sampling {

double trajectory_position(PacketId id) noexcept {
  // The packet id is already a well-mixed 64-bit hash; map its top 53
  // bits into [0,1).
  return static_cast<double>(id >> 11) * 0x1.0p-53;
}

ConsistentSampler::ConsistentSampler(double rate) : rate_(rate) {
  NETMON_REQUIRE(rate >= 0.0 && rate <= 1.0, "sampling rate out of [0,1]");
}

bool ConsistentSampler::sample(PacketId id) const noexcept {
  return trajectory_position(id) < rate_;
}

TrajectoryRates trajectory_rates(const std::vector<double>& path_rates) {
  TrajectoryRates rates;
  if (path_rates.empty()) return rates;
  rates.any = 0.0;
  rates.all = 1.0;
  for (double r : path_rates) {
    NETMON_REQUIRE(r >= 0.0 && r <= 1.0, "sampling rate out of [0,1]");
    rates.any = std::max(rates.any, r);
    rates.all = std::min(rates.all, r);
  }
  return rates;
}

}  // namespace netmon::sampling
