#include "sampling/simulation.hpp"

#include <memory>

#include "sampling/dedup.hpp"
#include "sampling/sampler.hpp"
#include "util/error.hpp"

namespace netmon::sampling {

std::vector<OdSampleCount> simulate_sampling(
    Rng& rng, const routing::RoutingMatrix& matrix,
    const std::vector<std::vector<traffic::Flow>>& flows,
    const RateVector& rates, CountMode mode) {
  NETMON_REQUIRE(flows.size() == matrix.od_count(),
                 "one flow population per OD row required");
  std::vector<OdSampleCount> out(matrix.od_count());
  for (std::size_t k = 0; k < matrix.od_count(); ++k) {
    std::uint64_t actual = 0;
    for (const traffic::Flow& f : flows[k]) actual += f.packets;
    out[k].actual_packets = actual;

    if (mode == CountMode::kDistinctPackets) {
      // Every packet is counted at most once; it is counted iff sampled
      // by at least one monitor, which happens with the exact rate.
      const double rho = effective_rate_exact(matrix, k, rates);
      out[k].sampled_packets = rng.binomial(actual, rho);
    } else {
      // Counts at different monitors are independent given the packet
      // stream (independent sampling processes), each Binomial(S_k, r*p).
      std::uint64_t sum = 0;
      for (const auto& [link, frac] : matrix.row(k)) {
        NETMON_REQUIRE(link < rates.size(), "rate vector too short");
        sum += rng.binomial(actual, frac * rates[link]);
      }
      out[k].sampled_packets = sum;
    }
  }
  return out;
}

std::vector<OdSampleCount> simulate_sampling_per_packet(
    Rng& rng, const routing::RoutingMatrix& matrix,
    const std::vector<std::vector<traffic::Flow>>& flows,
    const RateVector& rates, CountMode mode, SamplerKind sampler) {
  NETMON_REQUIRE(flows.size() == matrix.od_count(),
                 "one flow population per OD row required");

  // One sampler per link, shared by all OD pairs crossing it.
  std::vector<std::unique_ptr<BernoulliSampler>> bernoulli(rates.size());
  std::vector<std::unique_ptr<PeriodicSampler>> periodic(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const std::uint64_t seed = rng.split(i + 101)();
    if (sampler == SamplerKind::kBernoulli)
      bernoulli[i] = std::make_unique<BernoulliSampler>(rates[i], seed);
    else
      periodic[i] = std::make_unique<PeriodicSampler>(rates[i], seed);
  }
  auto draw = [&](topo::LinkId link) {
    return sampler == SamplerKind::kBernoulli ? bernoulli[link]->sample()
                                              : periodic[link]->sample();
  };

  std::vector<OdSampleCount> out(matrix.od_count());
  PacketIdDedup dedup;
  for (std::size_t k = 0; k < matrix.od_count(); ++k) {
    const auto& row = matrix.row(k);
    std::uint64_t actual = 0;
    std::uint64_t counted = 0;
    for (const traffic::Flow& f : flows[k]) {
      actual += f.packets;
      for (std::uint64_t seq = 0; seq < f.packets; ++seq) {
        bool captured_once = false;
        for (const auto& [link, frac] : row) {
          NETMON_REQUIRE(link < rates.size(), "rate vector too short");
          // Under ECMP (frac < 1) the packet crosses this link only with
          // probability frac.
          if (frac < 1.0 && !rng.bernoulli(frac)) continue;
          if (!draw(link)) continue;
          if (mode == CountMode::kSumAcrossMonitors) {
            ++counted;
          } else if (!captured_once && dedup.insert(packet_id(f.key, seq))) {
            ++counted;
            captured_once = true;
          }
        }
      }
    }
    out[k].actual_packets = actual;
    out[k].sampled_packets = counted;
  }
  return out;
}

}  // namespace netmon::sampling
