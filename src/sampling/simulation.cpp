#include "sampling/simulation.hpp"

#include <memory>

#include "runtime/parallel.hpp"
#include "sampling/dedup.hpp"
#include "sampling/sampler.hpp"
#include "util/error.hpp"

namespace netmon::sampling {

namespace {

/// One OD pair of the fast engine: a pure function of (rng, OD inputs),
/// shared by the sequential and the parallel entry points.
OdSampleCount sample_one_od(Rng& rng, const routing::RoutingMatrix& matrix,
                            std::size_t k,
                            const std::vector<traffic::Flow>& flows,
                            const RateVector& rates, CountMode mode) {
  OdSampleCount out;
  std::uint64_t actual = 0;
  for (const traffic::Flow& f : flows) actual += f.packets;
  out.actual_packets = actual;

  if (mode == CountMode::kDistinctPackets) {
    // Every packet is counted at most once; it is counted iff sampled
    // by at least one monitor, which happens with the exact rate.
    const double rho = effective_rate_exact(matrix, k, rates);
    out.sampled_packets = rng.binomial(actual, rho);
  } else {
    // Counts at different monitors are independent given the packet
    // stream (independent sampling processes), each Binomial(S_k, r*p).
    std::uint64_t sum = 0;
    for (const auto& [link, frac] : matrix.row(k)) {
      NETMON_REQUIRE(link < rates.size(), "rate vector too short");
      sum += rng.binomial(actual, frac * rates[link]);
    }
    out.sampled_packets = sum;
  }
  return out;
}

}  // namespace

std::vector<OdSampleCount> simulate_sampling(
    Rng& rng, const routing::RoutingMatrix& matrix,
    const std::vector<std::vector<traffic::Flow>>& flows,
    const RateVector& rates, CountMode mode) {
  NETMON_REQUIRE(flows.size() == matrix.od_count(),
                 "one flow population per OD row required");
  std::vector<OdSampleCount> out(matrix.od_count());
  for (std::size_t k = 0; k < matrix.od_count(); ++k)
    out[k] = sample_one_od(rng, matrix, k, flows[k], rates, mode);
  return out;
}

std::vector<OdSampleCount> simulate_sampling(
    runtime::ThreadPool& pool, const Rng& base,
    const routing::RoutingMatrix& matrix,
    const std::vector<std::vector<traffic::Flow>>& flows,
    const RateVector& rates, CountMode mode) {
  NETMON_REQUIRE(flows.size() == matrix.od_count(),
                 "one flow population per OD row required");
  std::vector<OdSampleCount> out(matrix.od_count());
  runtime::parallel_for(pool, matrix.od_count(), [&](std::size_t k) {
    Rng od_rng = base.substream(k);
    out[k] = sample_one_od(od_rng, matrix, k, flows[k], rates, mode);
  });
  return out;
}

std::vector<std::vector<OdSampleCount>> simulate_sampling_runs(
    runtime::ThreadPool& pool, const Rng& base,
    const routing::RoutingMatrix& matrix,
    const std::vector<std::vector<traffic::Flow>>& flows,
    const RateVector& rates, int runs, CountMode mode) {
  NETMON_REQUIRE(flows.size() == matrix.od_count(),
                 "one flow population per OD row required");
  NETMON_REQUIRE(runs >= 0, "runs must be non-negative");
  std::vector<std::vector<OdSampleCount>> out(
      static_cast<std::size_t>(runs));
  // Parallelize over (run, od) jointly so small matrices with many runs
  // still spread across the pool; slot (r, k) is written exactly once.
  const std::size_t ods = matrix.od_count();
  for (auto& run : out) run.resize(ods);
  runtime::parallel_for(
      pool, static_cast<std::size_t>(runs) * ods, [&](std::size_t job) {
        const std::size_t r = job / ods;
        const std::size_t k = job % ods;
        Rng od_rng = base.substream(r).substream(k);
        out[r][k] = sample_one_od(od_rng, matrix, k, flows[k], rates, mode);
      });
  return out;
}

std::vector<OdSampleCount> simulate_sampling_per_packet(
    Rng& rng, const routing::RoutingMatrix& matrix,
    const std::vector<std::vector<traffic::Flow>>& flows,
    const RateVector& rates, CountMode mode, SamplerKind sampler) {
  NETMON_REQUIRE(flows.size() == matrix.od_count(),
                 "one flow population per OD row required");

  // One sampler per link, shared by all OD pairs crossing it.
  std::vector<std::unique_ptr<BernoulliSampler>> bernoulli(rates.size());
  std::vector<std::unique_ptr<PeriodicSampler>> periodic(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const std::uint64_t seed = rng.split(i + 101)();
    if (sampler == SamplerKind::kBernoulli)
      bernoulli[i] = std::make_unique<BernoulliSampler>(rates[i], seed);
    else
      periodic[i] = std::make_unique<PeriodicSampler>(rates[i], seed);
  }
  auto draw = [&](topo::LinkId link) {
    return sampler == SamplerKind::kBernoulli ? bernoulli[link]->sample()
                                              : periodic[link]->sample();
  };

  std::vector<OdSampleCount> out(matrix.od_count());
  PacketIdDedup dedup;
  for (std::size_t k = 0; k < matrix.od_count(); ++k) {
    const auto& row = matrix.row(k);
    std::uint64_t actual = 0;
    std::uint64_t counted = 0;
    for (const traffic::Flow& f : flows[k]) {
      actual += f.packets;
      for (std::uint64_t seq = 0; seq < f.packets; ++seq) {
        bool captured_once = false;
        for (const auto& [link, frac] : row) {
          NETMON_REQUIRE(link < rates.size(), "rate vector too short");
          // Under ECMP (frac < 1) the packet crosses this link only with
          // probability frac.
          if (frac < 1.0 && !rng.bernoulli(frac)) continue;
          if (!draw(link)) continue;
          if (mode == CountMode::kSumAcrossMonitors) {
            ++counted;
          } else if (!captured_once && dedup.insert(packet_id(f.key, seq))) {
            ++counted;
            captured_once = true;
          }
        }
      }
    }
    out[k].actual_packets = actual;
    out[k].sampled_packets = counted;
  }
  return out;
}

}  // namespace netmon::sampling
