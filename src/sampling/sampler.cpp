#include "sampling/sampler.hpp"

#include <cmath>

#include "util/error.hpp"

namespace netmon::sampling {

BernoulliSampler::BernoulliSampler(double probability, std::uint64_t seed)
    : p_(probability), rng_(seed) {
  NETMON_REQUIRE(probability >= 0.0 && probability <= 1.0,
                 "sampling probability out of [0,1]");
}

bool BernoulliSampler::sample() { return rng_.bernoulli(p_); }

PeriodicSampler::PeriodicSampler(double probability, std::uint64_t seed)
    : period_(0), next_(0) {
  NETMON_REQUIRE(probability >= 0.0 && probability <= 1.0,
                 "sampling probability out of [0,1]");
  if (probability > 0.0) {
    period_ = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(1.0 / probability)));
    Rng rng(seed);
    next_ = rng.below(period_);  // random phase
  }
}

bool PeriodicSampler::sample() {
  if (period_ == 0) return false;
  const bool hit = (counter_ % period_) == next_;
  ++counter_;
  return hit;
}

double PeriodicSampler::rate() const noexcept {
  return period_ == 0 ? 0.0 : 1.0 / static_cast<double>(period_);
}

const char* to_string(SamplerKind kind) noexcept {
  switch (kind) {
    case SamplerKind::kBernoulli: return "bernoulli";
    case SamplerKind::kPeriodic: return "periodic";
  }
  return "?";
}

LinkSampler::LinkSampler(SamplerKind kind, double probability,
                         std::uint64_t seed)
    : kind_(kind),
      bernoulli_(probability, seed),
      periodic_(probability, seed) {}

double LinkSampler::rate() const noexcept {
  return kind_ == SamplerKind::kBernoulli ? bernoulli_.rate()
                                          : periodic_.rate();
}

}  // namespace netmon::sampling
