// Trajectory (hash-consistent) sampling.
//
// The paper's effective-rate model assumes monitors sample independently,
// and §III notes the infrastructure must "discern whether the same packet
// is sampled at multiple locations". Trajectory sampling (Duffield &
// Grossglauser) removes the problem at the source: every monitor hashes
// invariant packet content into [0,1) and samples exactly the packets
// whose hash falls below its threshold. Packets are then either sampled
// at EVERY monitor on their path (if the thresholds allow) or at none —
// their trajectory is observed directly and deduplication is trivial.
#pragma once

#include <cstdint>
#include <vector>

#include "sampling/dedup.hpp"
#include "traffic/flow.hpp"

namespace netmon::sampling {

/// Maps a packet identity to a uniform position in [0, 1). All monitors
/// compute the same position for the same packet.
double trajectory_position(PacketId id) noexcept;

/// Hash-consistent sampler: samples packet `id` iff its position falls
/// below this monitor's threshold (= its sampling rate).
class ConsistentSampler {
 public:
  /// `rate` in [0,1].
  explicit ConsistentSampler(double rate);

  /// Deterministic per-packet decision, identical at every monitor with
  /// the same rate.
  bool sample(PacketId id) const noexcept;

  double rate() const noexcept { return rate_; }

 private:
  double rate_;
};

/// Effective rates of a path under trajectory sampling: a packet is seen
/// by at least one monitor iff its position < max(rate_i), and by every
/// monitor on the path (full trajectory) iff position < min(rate_i).
/// Contrast with independent sampling, where P(any) = 1 - prod(1-p_i).
struct TrajectoryRates {
  /// P(seen by >= 1 monitor) = max over the path's rates.
  double any = 0.0;
  /// P(seen by every monitor — full trajectory) = min over the rates.
  double all = 0.0;
};

/// Computes both rates for a set of per-monitor thresholds on a path.
TrajectoryRates trajectory_rates(const std::vector<double>& path_rates);

}  // namespace netmon::sampling
