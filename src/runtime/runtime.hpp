// Umbrella header for the parallel execution subsystem: fixed-size
// thread pool, structured fork/join, and deterministic parallel_for /
// parallel_reduce. See runtime/parallel.hpp for the determinism contract.
#pragma once

#include "runtime/parallel.hpp"     // IWYU pragma: export
#include "runtime/thread_pool.hpp"  // IWYU pragma: export
