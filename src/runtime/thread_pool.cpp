#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "util/error.hpp"

#if !defined(NETMON_TSAN) && defined(__SANITIZE_THREAD__)
#define NETMON_TSAN 1
#endif
#if !defined(NETMON_TSAN) && defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NETMON_TSAN 1
#endif
#endif

#ifdef NETMON_TSAN
// glibc's lgamma — reached through std::binomial_distribution's parameter
// setup in the Monte-Carlo simulation — writes the process-global
// `signgam` (POSIX marks lgamma MT-Unsafe race:signgam). The library
// never reads signgam, so suppress that one report instead of
// serializing every binomial draw.
extern "C" const char* __tsan_default_suppressions() {
  return "race:lgamma\n";
}
#endif

namespace netmon::runtime {

unsigned resolve_threads(unsigned requested) noexcept {
  if (requested != 0) return std::min(requested, kMaxThreads);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : std::min(hw, kMaxThreads);
}

unsigned threads_from_env() noexcept {
  // Digits only: strtoul would silently wrap "-2" to a huge unsigned
  // value, so negative (or otherwise non-numeric) input falls back to
  // the hardware default instead of being taken literally.
  const char* raw = std::getenv("NETMON_THREADS");
  if (raw == nullptr || *raw == '\0') return resolve_threads(0);
  for (const char* c = raw; *c != '\0'; ++c)
    if (*c < '0' || *c > '9') return resolve_threads(0);
  errno = 0;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0') return resolve_threads(0);
  // Absurdly large (including overflowed) values clamp to the cap: the
  // operator clearly asked for "as many as possible".
  if (errno == ERANGE || parsed > kMaxThreads) return kMaxThreads;
  return resolve_threads(static_cast<unsigned>(parsed));
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = resolve_threads(threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  NETMON_REQUIRE(task != nullptr, "ThreadPool::submit requires a task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    NETMON_REQUIRE(!stopping_, "ThreadPool::submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: the destructor promises that
      // every submitted task runs.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

// Completion state shared between the group, its pool wrappers, and the
// helping waiter. A shared_ptr keeps it alive past group destruction:
// a slot claimed and executed by the helper leaves its no-op pool
// wrapper queued, and that wrapper may run after the group is gone.
struct TaskGroup::State {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t pending = 0;
  std::exception_ptr error;
};

struct TaskGroup::Slot {
  Slot(std::shared_ptr<State> s, std::function<void()> f)
      : state(std::move(s)), fn(std::move(f)) {}
  std::shared_ptr<State> state;
  std::function<void()> fn;
  /// Exactly one of {a pool worker, the helping waiter} wins the claim
  /// and executes; the loser does nothing.
  std::atomic<bool> claimed{false};
};

TaskGroup::TaskGroup(ThreadPool& pool)
    : pool_(pool), state_(std::make_shared<State>()) {}

void TaskGroup::execute(Slot& slot) {
  std::exception_ptr error;
  try {
    slot.fn();
  } catch (...) {
    error = std::current_exception();
  }
  State& state = *slot.state;
  std::lock_guard<std::mutex> lock(state.mutex);
  if (error && !state.error) state.error = error;
  if (--state.pending == 0) state.cv.notify_all();
}

void TaskGroup::run(std::function<void()> fn) {
  NETMON_REQUIRE(fn != nullptr, "TaskGroup::run requires a task");
  auto slot = std::make_shared<Slot>(state_, std::move(fn));
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    ++state_->pending;
  }
  slots_.push_back(slot);
  pool_.submit([slot] {
    if (!slot->claimed.exchange(true)) execute(*slot);
  });
}

void TaskGroup::help_until_done() {
  // Scoped helping: claim and run THIS group's unstarted tasks on the
  // waiting thread; a task whose claim is already taken is executing on
  // some worker. Unrelated pool work is never run here — the caller may
  // hold locks around wait(), and an arbitrary task could re-enter
  // them. Nested fan-outs still cannot deadlock: even with every worker
  // busy, the owner drains its own slots itself.
  while (!slots_.empty()) {
    const std::shared_ptr<Slot> slot = std::move(slots_.front());
    slots_.pop_front();
    if (!slot->claimed.exchange(true)) execute(*slot);
  }
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [this] { return state_->pending == 0; });
}

void TaskGroup::wait() {
  help_until_done();
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (state_->error) {
    std::exception_ptr error = state_->error;
    state_->error = nullptr;
    std::rethrow_exception(error);
  }
}

void TaskGroup::wait_no_throw() noexcept {
  try {
    help_until_done();
  } catch (...) {
    // help_until_done only throws through a task body, and execute()
    // captures those; nothing to do.
  }
}

}  // namespace netmon::runtime
