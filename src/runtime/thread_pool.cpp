#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "util/error.hpp"

#if !defined(NETMON_TSAN) && defined(__SANITIZE_THREAD__)
#define NETMON_TSAN 1
#endif
#if !defined(NETMON_TSAN) && defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NETMON_TSAN 1
#endif
#endif

#ifdef NETMON_TSAN
// glibc's lgamma — reached through std::binomial_distribution's parameter
// setup in the Monte-Carlo simulation — writes the process-global
// `signgam` (POSIX marks lgamma MT-Unsafe race:signgam). The library
// never reads signgam, so suppress that one report instead of
// serializing every binomial draw.
extern "C" const char* __tsan_default_suppressions() {
  return "race:lgamma\n";
}
#endif

namespace netmon::runtime {

unsigned resolve_threads(unsigned requested) noexcept {
  if (requested != 0) return std::min(requested, kMaxThreads);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : std::min(hw, kMaxThreads);
}

unsigned threads_from_env() noexcept {
  // Digits only: strtoul would silently wrap "-2" to a huge unsigned
  // value, so negative (or otherwise non-numeric) input falls back to
  // the hardware default instead of being taken literally.
  const char* raw = std::getenv("NETMON_THREADS");
  if (raw == nullptr || *raw == '\0') return resolve_threads(0);
  for (const char* c = raw; *c != '\0'; ++c)
    if (*c < '0' || *c > '9') return resolve_threads(0);
  errno = 0;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0') return resolve_threads(0);
  // Absurdly large (including overflowed) values clamp to the cap: the
  // operator clearly asked for "as many as possible".
  if (errno == ERANGE || parsed > kMaxThreads) return kMaxThreads;
  return resolve_threads(static_cast<unsigned>(parsed));
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = resolve_threads(threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  NETMON_REQUIRE(task != nullptr, "ThreadPool::submit requires a task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    NETMON_REQUIRE(!stopping_, "ThreadPool::submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: the destructor promises that
      // every submitted task runs.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void TaskGroup::run(std::function<void()> fn) {
  NETMON_REQUIRE(fn != nullptr, "TaskGroup::run requires a task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  pool_.submit([this, fn = std::move(fn)] {
    std::exception_ptr error;
    try {
      fn();
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (error && !error_) error_ = error;
    if (--pending_ == 0) cv_.notify_all();
  });
}

void TaskGroup::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return pending_ == 0; });
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void TaskGroup::wait_no_throw() noexcept {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace netmon::runtime
