// Deterministic data-parallel primitives on top of ThreadPool.
//
// Work over [0, n) is split into chunks whose boundaries are a pure
// function of n and the grain option — never of the thread count or of
// scheduling order. parallel_for writes into caller-owned slots (disjoint
// per index), and parallel_reduce folds each chunk left-to-right and then
// combines the per-chunk results in chunk order. Consequently the result
// of either primitive is bit-identical whether the pool has 1, 4, or 64
// threads; stochastic workloads stay reproducible by drawing from
// Rng::substream(i) per index instead of sharing one sequential stream.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace netmon::runtime {

/// Chunking knobs for the parallel primitives.
struct ChunkOptions {
  /// Minimum indices per chunk. Raise it when per-index work is tiny and
  /// scheduling overhead would dominate. parallel_for additionally
  /// derives an effective grain from the range size and the pool width
  /// (see make_chunks_for_width), so very large ranges produce O(width)
  /// chunks instead of max_chunks tiny ones.
  std::size_t grain = 1;
  /// Upper bound on the number of chunks per call (bounds queue pressure
  /// for huge n). Must be >= 1.
  std::size_t max_chunks = 256;
};

/// Chunks-per-worker target for the width-derived grain: enough slack to
/// balance uneven per-index work without flooding the queue.
inline constexpr std::size_t kChunksPerWorker = 4;

/// Half-open index ranges covering [0, n): pure function of (n, options),
/// independent of thread count — the determinism anchor of this module.
std::vector<std::pair<std::size_t, std::size_t>> make_chunks(
    std::size_t n, const ChunkOptions& options = {});

/// The layout parallel_for dispatches on a pool of `width` workers: like
/// make_chunks, but the effective grain is raised to
/// ceil(n / (kChunksPerWorker * width)) so the chunk count scales with
/// the pool instead of hitting max_chunks on very large ranges. Still a
/// pure function of its arguments. parallel_for may depend on width
/// because per-index writes are disjoint — the *result* stays identical
/// at every pool size; parallel_reduce keeps the width-independent
/// make_chunks layout so reduction grouping never varies with width.
std::vector<std::pair<std::size_t, std::size_t>> make_chunks_for_width(
    std::size_t n, const ChunkOptions& options, unsigned width);

/// Runs fn(i) for every i in [0, n) on the pool and blocks until done.
/// fn must only touch per-index state (e.g. out[i]); exceptions from any
/// invocation are rethrown (first captured wins).
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn,
                  const ChunkOptions& options = {}) {
  const auto chunks = make_chunks_for_width(n, options, pool.size());
  if (chunks.empty()) return;
  if (chunks.size() == 1) {
    // No point bouncing a single chunk through the queue.
    for (std::size_t i = chunks[0].first; i < chunks[0].second; ++i) fn(i);
    return;
  }
  TaskGroup group(pool);
  for (const auto& [begin, end] : chunks) {
    group.run([&fn, begin = begin, end = end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  group.wait();
}

/// Folds map(i) over [0, n): within each chunk the fold runs left to
/// right from a copy of `identity`, and the per-chunk results are then
/// combined in chunk index order. The grouping depends only on (n,
/// options), so the result is identical at every thread count; it equals
/// the plain serial fold whenever `combine` is associative with
/// `identity` as neutral element (always for integer sums and
/// RunningStats::merge).
template <typename T, typename Map, typename Combine>
T parallel_reduce(ThreadPool& pool, std::size_t n, T identity, Map&& map,
                  Combine&& combine, const ChunkOptions& options = {}) {
  const auto chunks = make_chunks(n, options);
  if (chunks.empty()) return identity;

  std::vector<T> partial(chunks.size(), identity);
  parallel_for(
      pool, chunks.size(),
      [&](std::size_t c) {
        T acc = identity;
        for (std::size_t i = chunks[c].first; i < chunks[c].second; ++i)
          acc = combine(std::move(acc), map(i));
        partial[c] = std::move(acc);
      },
      ChunkOptions{.grain = 1, .max_chunks = options.max_chunks});

  T result = std::move(partial[0]);
  for (std::size_t c = 1; c < partial.size(); ++c)
    result = combine(std::move(result), std::move(partial[c]));
  return result;
}

}  // namespace netmon::runtime
