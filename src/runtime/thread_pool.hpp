// Fixed-size thread pool with a shared task queue — the execution layer
// under every parallel fan-out in netmon (Monte-Carlo sampling runs,
// batch placement solves, randomized convergence sweeps).
//
// The pool is deliberately dumb: workers pop std::function tasks from one
// mutex-protected queue until shutdown. Determinism and exception
// propagation live one layer up (TaskGroup, runtime/parallel.hpp), where
// work is split into chunks whose boundaries never depend on the thread
// count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace netmon::runtime {

/// Hard cap on any resolved thread count. Guards against misconfigured
/// knobs (NETMON_THREADS=999999999, a negative value wrapped through an
/// unsigned conversion) asking the pool to spawn an absurd number of
/// workers; 4096 is far above any real machine while staying spawnable.
inline constexpr unsigned kMaxThreads = 4096;

/// Resolves a thread-count knob: 0 means "one thread per hardware
/// thread"; anything else is taken literally, clamped to kMaxThreads.
/// Never returns 0.
unsigned resolve_threads(unsigned requested) noexcept;

/// The benches' thread-count knob: reads NETMON_THREADS from the
/// environment (they run with no CLI arguments); unset, empty, or
/// unparsable (including negative values) means hardware_concurrency;
/// absurdly large values clamp to kMaxThreads.
unsigned threads_from_env() noexcept;

/// Fixed-size worker pool. Tasks submitted after construction run on one
/// of `size()` worker threads; the destructor drains the queue and joins.
class ThreadPool {
 public:
  /// Spawns the workers. `threads` follows resolve_threads().
  explicit ThreadPool(unsigned threads = 0);

  /// Waits for queued tasks to finish, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task. The task must not throw — wrap work that can throw
  /// in a TaskGroup, which captures and rethrows on wait().
  void submit(std::function<void()> task);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// Structured fork/join on top of a pool: run() schedules a task, wait()
/// blocks until every scheduled task finished and rethrows the first
/// exception any of them raised (first in completion order; the group
/// stays usable afterwards).
///
/// wait() is a *helping* wait, scoped to THIS group's tasks: while some
/// of them have not been started by a worker, the waiting thread claims
/// and runs them itself, and only sleeps once every remaining task is
/// already executing on some worker. That makes nested fan-outs
/// deadlock-free at any pool size — a pool task that forks its own
/// TaskGroup executes its children itself if no worker is free — while
/// never running *unrelated* queued work on the waiter, which could
/// re-enter a lock the caller holds around wait().
///
/// A group must be driven from one thread at a time (run/wait are not
/// concurrency-safe against each other), matching fork/join usage.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool);
  ~TaskGroup() { wait_no_throw(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `fn` on the pool; exceptions are captured for wait().
  void run(std::function<void()> fn);

  /// Helps run this group's unstarted tasks until all scheduled tasks
  /// completed; rethrows the first captured exception (clearing it, so
  /// the group can be reused).
  void wait();

 private:
  struct State;  // shared completion state, outlives the group
  struct Slot;   // one scheduled task + its claim flag

  /// Claims-checked execution + completion bookkeeping on `slot.state`.
  static void execute(Slot& slot);
  /// The helping loop shared by wait() and the destructor.
  void help_until_done();
  void wait_no_throw() noexcept;

  ThreadPool& pool_;
  std::shared_ptr<State> state_;
  /// This group's scheduled tasks, claimable by the helping waiter.
  /// Touched only by the owning thread (run/wait), never by workers.
  std::deque<std::shared_ptr<Slot>> slots_;
};

}  // namespace netmon::runtime
