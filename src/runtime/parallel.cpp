#include "runtime/parallel.hpp"

#include "util/error.hpp"

namespace netmon::runtime {

std::vector<std::pair<std::size_t, std::size_t>> make_chunks(
    std::size_t n, const ChunkOptions& options) {
  NETMON_REQUIRE(options.max_chunks >= 1, "max_chunks must be >= 1");
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  if (n == 0) return chunks;

  const std::size_t grain = options.grain == 0 ? 1 : options.grain;
  std::size_t count = (n + grain - 1) / grain;
  if (count > options.max_chunks) count = options.max_chunks;

  // Balanced split: the first (n % count) chunks get one extra index, so
  // sizes differ by at most one and the layout is canonical for (n,
  // grain, max_chunks).
  const std::size_t base = n / count;
  const std::size_t extra = n % count;
  chunks.reserve(count);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < count; ++c) {
    const std::size_t size = base + (c < extra ? 1 : 0);
    chunks.emplace_back(begin, begin + size);
    begin += size;
  }
  return chunks;
}

std::vector<std::pair<std::size_t, std::size_t>> make_chunks_for_width(
    std::size_t n, const ChunkOptions& options, unsigned width) {
  NETMON_REQUIRE(width >= 1, "pool width must be >= 1");
  const std::size_t target = kChunksPerWorker * static_cast<std::size_t>(width);
  const std::size_t width_grain = (n + target - 1) / target;
  ChunkOptions effective = options;
  if (width_grain > effective.grain) effective.grain = width_grain;
  return make_chunks(n, effective);
}

}  // namespace netmon::runtime
