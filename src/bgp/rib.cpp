#include "bgp/rib.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace netmon::bgp {

bool better_route(const Route& a, const Route& b) noexcept {
  if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;
  if (a.as_path_len != b.as_path_len) return a.as_path_len < b.as_path_len;
  return a.peer_id < b.peer_id;
}

void Rib::insert(const Route& route) {
  NETMON_REQUIRE(route.egress != topo::kInvalidId,
                 "route must name an egress PoP");
  NETMON_REQUIRE(route.prefix.len >= 0 && route.prefix.len <= 32,
                 "route prefix length out of range");
  auto& candidates =
      routes_[PrefixKey{route.prefix.base & route.prefix.mask(),
                        route.prefix.len}];
  // One route per (prefix, peer): a re-announcement replaces the old one.
  for (Route& existing : candidates) {
    if (existing.peer_id == route.peer_id) {
      existing = route;
      return;
    }
  }
  candidates.push_back(route);
}

std::size_t Rib::withdraw(const net::Prefix& prefix, std::uint32_t peer_id) {
  const PrefixKey key{prefix.base & prefix.mask(), prefix.len};
  auto it = routes_.find(key);
  if (it == routes_.end()) return 0;
  auto& candidates = it->second;
  const auto before = candidates.size();
  candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                  [&](const Route& r) {
                                    return r.peer_id == peer_id;
                                  }),
                   candidates.end());
  const std::size_t removed = before - candidates.size();
  if (candidates.empty()) routes_.erase(it);
  return removed;
}

std::optional<Route> Rib::best(const net::Prefix& prefix) const {
  const PrefixKey key{prefix.base & prefix.mask(), prefix.len};
  const auto it = routes_.find(key);
  if (it == routes_.end() || it->second.empty()) return std::nullopt;
  const Route* best = &it->second.front();
  for (const Route& candidate : it->second) {
    if (better_route(candidate, *best)) best = &candidate;
  }
  return *best;
}

std::vector<Route> Rib::best_routes() const {
  std::vector<Route> out;
  out.reserve(routes_.size());
  for (const auto& [key, candidates] : routes_) {
    const Route* best = &candidates.front();
    for (const Route& candidate : candidates) {
      if (better_route(candidate, *best)) best = &candidate;
    }
    out.push_back(*best);
  }
  return out;
}

std::size_t Rib::route_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [key, candidates] : routes_) n += candidates.size();
  return n;
}

netflow::EgressMap Rib::to_egress_map() const {
  netflow::EgressMap map;
  for (const Route& route : best_routes())
    map.insert(route.prefix, route.egress);
  return map;
}

}  // namespace netmon::bgp
