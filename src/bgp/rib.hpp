// BGP-derived egress mapping.
//
// The paper's evaluation "associate[s] to each flow record the egress
// PoP, computed from the destination IP address using the technique
// presented in [4]" (Feldmann et al.): join the BGP RIB with the IGP view
// to find, for every prefix, the PoP where traffic leaves the network.
// This module implements the control-plane half: a RIB holding candidate
// routes per prefix, BGP-style best-path selection, and export to the
// data-plane netflow::EgressMap.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/ip.hpp"
#include "netflow/egress_map.hpp"
#include "topo/graph.hpp"

namespace netmon::bgp {

/// One candidate route for a prefix.
struct Route {
  net::Prefix prefix;
  /// PoP through which traffic to this prefix exits the network.
  topo::NodeId egress = topo::kInvalidId;
  /// Selection attributes, in decision order.
  std::uint32_t local_pref = 100;
  std::uint32_t as_path_len = 1;
  /// Arbitrary stable identifier used as the final tie-break (stands in
  /// for the router id).
  std::uint32_t peer_id = 0;
};

/// Returns true when `a` is preferred over `b` by the BGP decision
/// process (higher local-pref, then shorter AS path, then lower peer id).
bool better_route(const Route& a, const Route& b) noexcept;

/// The routing information base: all candidate routes, best-path
/// selection per prefix.
class Rib {
 public:
  /// Adds a candidate route. Multiple routes for the same prefix coexist;
  /// withdraw() removes them.
  void insert(const Route& route);

  /// Removes every route for `prefix` learned from `peer_id`.
  /// Returns how many were removed.
  std::size_t withdraw(const net::Prefix& prefix, std::uint32_t peer_id);

  /// The best route for exactly this prefix (no longest-prefix matching
  /// here; that happens in the data plane).
  std::optional<Route> best(const net::Prefix& prefix) const;

  /// All best routes, one per prefix.
  std::vector<Route> best_routes() const;

  /// Number of prefixes with at least one route.
  std::size_t prefix_count() const noexcept { return routes_.size(); }
  /// Total candidate routes held.
  std::size_t route_count() const noexcept;

  /// Exports the best route of every prefix into a data-plane LPM map.
  netflow::EgressMap to_egress_map() const;

 private:
  struct PrefixKey {
    net::Ipv4 base;
    int len;
    friend bool operator<(const PrefixKey& a, const PrefixKey& b) {
      return a.base != b.base ? a.base < b.base : a.len < b.len;
    }
  };
  std::map<PrefixKey, std::vector<Route>> routes_;
};

}  // namespace netmon::bgp
