// The routing matrix R of the paper's formulation (§III).
//
// Rows are OD pairs, columns are links; entry r_{k,i} is the fraction of
// OD pair k's traffic crossing link i (1/0 under single-path routing,
// fractional under ECMP). Stored sparsely in both row-major and
// column-major form because the optimizer iterates both ways.
#pragma once

#include <vector>

#include "routing/spf.hpp"
#include "topo/graph.hpp"

namespace netmon::routing {

/// An origin-destination pair. "Origin or destination could refer to any
/// end-host, network prefix, autonomous system" (paper §I) — here they are
/// topology nodes; prefix-level tasks map prefixes to nodes beforehand
/// (see netflow::EgressMap).
struct OdPair {
  topo::NodeId src = topo::kInvalidId;
  topo::NodeId dst = topo::kInvalidId;

  friend bool operator==(const OdPair&, const OdPair&) = default;
};

/// Sparse routing matrix over a fixed OD pair set.
class RoutingMatrix {
 public:
  /// Builds R with deterministic single shortest paths (r_{k,i} in {0,1}).
  /// Throws if any OD pair is unreachable.
  static RoutingMatrix single_path(const topo::Graph& graph,
                                   std::vector<OdPair> ods,
                                   const LinkSet& failed = {});

  /// Builds R with ECMP fractions (r_{k,i} in (0,1]).
  static RoutingMatrix ecmp(const topo::Graph& graph, std::vector<OdPair> ods,
                            const LinkSet& failed = {});

  /// Number of OD pairs (rows).
  std::size_t od_count() const noexcept { return rows_.size(); }
  /// Number of links in the underlying graph (columns).
  std::size_t link_count() const noexcept { return cols_.size(); }

  /// The OD pair of row k.
  const OdPair& od(std::size_t k) const { return ods_[k]; }
  /// All OD pairs in row order.
  const std::vector<OdPair>& ods() const noexcept { return ods_; }

  /// Sparse row k: (link id, fraction) pairs sorted by link id.
  const std::vector<std::pair<topo::LinkId, double>>& row(
      std::size_t k) const;

  /// Sparse column: (od index, fraction) pairs for one link.
  const std::vector<std::pair<std::size_t, double>>& ods_on_link(
      topo::LinkId link) const;

  /// Dense entry r_{k,i}; 0 when k does not traverse i.
  double fraction(std::size_t k, topo::LinkId link) const;

  /// Distinct links traversed by at least one OD pair, sorted by id —
  /// the set L of the paper.
  std::vector<topo::LinkId> links_used() const;

 private:
  RoutingMatrix() = default;
  void index_columns(std::size_t n_links);

  std::vector<OdPair> ods_;
  std::vector<std::vector<std::pair<topo::LinkId, double>>> rows_;
  std::vector<std::vector<std::pair<std::size_t, double>>> cols_;
};

}  // namespace netmon::routing
