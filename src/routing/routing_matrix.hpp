// The routing matrix R of the paper's formulation (§III).
//
// Rows are OD pairs, columns are links; entry r_{k,i} is the fraction of
// OD pair k's traffic crossing link i (1/0 under single-path routing,
// fractional under ECMP). Stored as one flat CSR arena plus its
// transpose (the CSC view) because the optimizer iterates both ways;
// both are linalg::SparseCsr, so the solver kernels (spmv et al.)
// operate on R directly.
#pragma once

#include <vector>

#include "linalg/sparse.hpp"
#include "routing/spf.hpp"
#include "topo/graph.hpp"

namespace netmon::routing {

/// An origin-destination pair. "Origin or destination could refer to any
/// end-host, network prefix, autonomous system" (paper §I) — here they are
/// topology nodes; prefix-level tasks map prefixes to nodes beforehand
/// (see netflow::EgressMap).
struct OdPair {
  topo::NodeId src = topo::kInvalidId;
  topo::NodeId dst = topo::kInvalidId;

  friend bool operator==(const OdPair&, const OdPair&) = default;
};

/// Sparse routing matrix over a fixed OD pair set: a thin wrapper around
/// one CSR (OD rows) / CSC (link columns) pair.
class RoutingMatrix {
 public:
  /// A (column, fraction) row slice of either orientation.
  using RowView = linalg::SparseCsr::RowView;

  /// Builds R with deterministic single shortest paths (r_{k,i} in {0,1}).
  /// Throws if any OD pair is unreachable.
  static RoutingMatrix single_path(const topo::Graph& graph,
                                   std::vector<OdPair> ods,
                                   const LinkSet& failed = {});

  /// Builds R with ECMP fractions (r_{k,i} in (0,1]).
  static RoutingMatrix ecmp(const topo::Graph& graph, std::vector<OdPair> ods,
                            const LinkSet& failed = {});

  /// Number of OD pairs (rows).
  std::size_t od_count() const noexcept { return csr_.rows(); }
  /// Number of links in the underlying graph (columns).
  std::size_t link_count() const noexcept { return csr_.cols(); }

  /// The OD pair of row k.
  const OdPair& od(std::size_t k) const { return ods_[k]; }
  /// All OD pairs in row order.
  const std::vector<OdPair>& ods() const noexcept { return ods_; }

  /// Sparse row k: (link id, fraction) pairs sorted by link id.
  RowView row(std::size_t k) const;

  /// Sparse column: (od index, fraction) pairs for one link, sorted by od.
  RowView ods_on_link(topo::LinkId link) const;

  /// Dense entry r_{k,i}; 0 when k does not traverse i. Binary search on
  /// the sorted link ids of row k.
  double fraction(std::size_t k, topo::LinkId link) const;

  /// Distinct links traversed by at least one OD pair, sorted by id —
  /// the set L of the paper.
  std::vector<topo::LinkId> links_used() const;

  /// R itself (OD rows x link columns) for the solver kernels.
  const linalg::SparseCsr& csr() const noexcept { return csr_; }
  /// R^T (link rows x OD columns) — the CSC view.
  const linalg::SparseCsr& csc() const noexcept { return csc_; }

 private:
  RoutingMatrix() = default;

  std::vector<OdPair> ods_;
  linalg::SparseCsr csr_;
  linalg::SparseCsr csc_;
};

}  // namespace netmon::routing
