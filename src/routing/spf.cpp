#include "routing/spf.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace netmon::routing {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Dijkstra over reversed links: distance from every node *to* `sink`.
// Used by ECMP to identify links on shortest paths.
std::vector<double> reverse_distances(const topo::Graph& graph,
                                      topo::NodeId sink,
                                      const LinkSet& failed) {
  std::vector<double> dist(graph.node_count(), kInf);
  using Item = std::pair<double, topo::NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  dist[sink] = 0.0;
  queue.emplace(0.0, sink);
  while (!queue.empty()) {
    const auto [d, v] = queue.top();
    queue.pop();
    if (d > dist[v]) continue;
    for (topo::LinkId id : graph.in_links(v)) {
      if (failed.count(id)) continue;
      const topo::Link& l = graph.link(id);
      const double nd = d + l.igp_weight;
      if (nd < dist[l.src]) {
        dist[l.src] = nd;
        queue.emplace(nd, l.src);
      }
    }
  }
  return dist;
}
}  // namespace

bool SpfResult::reachable(topo::NodeId v) const {
  return v < dist.size() && std::isfinite(dist[v]);
}

void dijkstra_into(const topo::Graph& graph, topo::NodeId source,
                   const LinkSet& failed, SpfResult& out) {
  NETMON_REQUIRE(source < graph.node_count(), "SPF source out of range");
  out.source = source;
  out.dist.assign(graph.node_count(), kInf);
  out.parent.assign(graph.node_count(), topo::kInvalidId);
  out.dist[source] = 0.0;

  using Item = std::pair<double, topo::NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  queue.emplace(0.0, source);
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > out.dist[u]) continue;
    for (topo::LinkId id : graph.out_links(u)) {
      if (failed.count(id)) continue;
      const topo::Link& l = graph.link(id);
      const double nd = d + l.igp_weight;
      if (nd < out.dist[l.dst] ||
          (nd == out.dist[l.dst] && id < out.parent[l.dst])) {
        out.dist[l.dst] = nd;
        out.parent[l.dst] = id;
        queue.emplace(nd, l.dst);
      }
    }
  }
}

SpfResult dijkstra(const topo::Graph& graph, topo::NodeId source,
                   const LinkSet& failed) {
  SpfResult result;
  dijkstra_into(graph, source, failed, result);
  return result;
}

void extract_path_into(const SpfResult& spf, const topo::Graph& graph,
                       topo::NodeId dst, std::vector<topo::LinkId>& out) {
  NETMON_REQUIRE(dst < graph.node_count(), "path destination out of range");
  NETMON_REQUIRE(spf.reachable(dst), "destination unreachable: " +
                                         graph.node(dst).name);
  const std::size_t begin = out.size();
  topo::NodeId v = dst;
  while (v != spf.source) {
    const topo::LinkId id = spf.parent[v];
    out.push_back(id);
    v = graph.link(id).src;
  }
  std::reverse(out.begin() + static_cast<std::ptrdiff_t>(begin), out.end());
}

std::vector<topo::LinkId> extract_path(const SpfResult& spf,
                                       const topo::Graph& graph,
                                       topo::NodeId dst) {
  std::vector<topo::LinkId> path;
  extract_path_into(spf, graph, dst, path);
  return path;
}

std::vector<std::pair<topo::LinkId, double>> ecmp_fractions(
    const topo::Graph& graph, topo::NodeId src, topo::NodeId dst,
    const LinkSet& failed) {
  NETMON_REQUIRE(src < graph.node_count(), "ECMP source out of range");
  NETMON_REQUIRE(dst < graph.node_count(), "ECMP destination out of range");
  const SpfResult fwd = dijkstra(graph, src, failed);
  if (!fwd.reachable(dst)) return {};
  const std::vector<double> to_dst = reverse_distances(graph, dst, failed);
  const double total = fwd.dist[dst];

  // A link u->v is on a shortest path iff dist(src,u) + w + dist(v,dst)
  // equals the shortest distance (within numerical slack).
  auto on_shortest = [&](const topo::Link& l) {
    if (!std::isfinite(fwd.dist[l.src]) || !std::isfinite(to_dst[l.dst]))
      return false;
    const double through = fwd.dist[l.src] + l.igp_weight + to_dst[l.dst];
    return std::abs(through - total) <= 1e-9 * std::max(1.0, total);
  };

  // Process nodes in increasing distance from src; split each node's
  // incoming fraction evenly across its shortest-path out-links.
  std::vector<topo::NodeId> order(graph.node_count());
  for (topo::NodeId v = 0; v < order.size(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](topo::NodeId a, topo::NodeId b) {
    return fwd.dist[a] < fwd.dist[b];
  });

  std::vector<double> node_fraction(graph.node_count(), 0.0);
  std::vector<double> link_fraction(graph.link_count(), 0.0);
  node_fraction[src] = 1.0;
  for (topo::NodeId u : order) {
    if (node_fraction[u] <= 0.0 || u == dst) continue;
    std::vector<topo::LinkId> next;
    for (topo::LinkId id : graph.out_links(u)) {
      if (failed.count(id)) continue;
      if (on_shortest(graph.link(id))) next.push_back(id);
    }
    if (next.empty()) continue;  // u is not on any shortest path to dst
    const double share = node_fraction[u] / static_cast<double>(next.size());
    for (topo::LinkId id : next) {
      link_fraction[id] += share;
      node_fraction[graph.link(id).dst] += share;
    }
  }

  std::vector<std::pair<topo::LinkId, double>> result;
  for (topo::LinkId id = 0; id < link_fraction.size(); ++id) {
    if (link_fraction[id] > 0.0) result.emplace_back(id, link_fraction[id]);
  }
  return result;
}

}  // namespace netmon::routing
