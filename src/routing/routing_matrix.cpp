#include "routing/routing_matrix.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace netmon::routing {

namespace {

using PairRows = std::vector<std::vector<std::pair<topo::LinkId, double>>>;

}  // namespace

RoutingMatrix RoutingMatrix::single_path(const topo::Graph& graph,
                                         std::vector<OdPair> ods,
                                         const LinkSet& failed) {
  RoutingMatrix matrix;
  matrix.ods_ = std::move(ods);
  const std::size_t count = matrix.ods_.size();

  // Visit rows grouped by source (stable within a source) so each
  // distinct source needs exactly one Dijkstra, reused in place.
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (matrix.ods_[a].src != matrix.ods_[b].src)
      return matrix.ods_[a].src < matrix.ods_[b].src;
    return a < b;
  });

  // All paths land in one LinkId arena with per-row spans: allocation
  // count stays flat in the OD count (the arena grows O(log nnz) times).
  std::vector<topo::LinkId> arena;
  arena.reserve(count * 8);
  std::vector<std::pair<std::size_t, std::size_t>> spans(count);
  SpfResult spf;
  for (std::size_t pos = 0; pos < count; ++pos) {
    const std::size_t k = order[pos];
    const topo::NodeId src = matrix.ods_[k].src;
    if (pos == 0 || src != matrix.ods_[order[pos - 1]].src)
      dijkstra_into(graph, src, failed, spf);
    const std::size_t begin = arena.size();
    extract_path_into(spf, graph, matrix.ods_[k].dst, arena);
    spans[k] = {begin, arena.size()};
    std::sort(arena.begin() + static_cast<std::ptrdiff_t>(begin),
              arena.end());
  }

  linalg::CsrBuilder builder(graph.link_count());
  builder.reserve(count, arena.size());
  for (const auto& [begin, end] : spans) {
    for (std::size_t i = begin; i < end; ++i) builder.push(arena[i], 1.0);
    builder.finish_row();
  }
  matrix.csr_ = builder.build();
  matrix.csc_ = matrix.csr_.transpose();
  return matrix;
}

RoutingMatrix RoutingMatrix::ecmp(const topo::Graph& graph,
                                  std::vector<OdPair> ods,
                                  const LinkSet& failed) {
  RoutingMatrix matrix;
  matrix.ods_ = std::move(ods);
  PairRows rows(matrix.ods_.size());
  for (std::size_t k = 0; k < matrix.ods_.size(); ++k) {
    auto row = ecmp_fractions(graph, matrix.ods_[k].src, matrix.ods_[k].dst,
                              failed);
    NETMON_REQUIRE(!row.empty(),
                   "OD pair destination unreachable: " +
                       graph.node(matrix.ods_[k].dst).name);
    std::sort(row.begin(), row.end());
    rows[k] = std::move(row);
  }
  matrix.csr_ = linalg::SparseCsr::from_rows(graph.link_count(), rows);
  matrix.csc_ = matrix.csr_.transpose();
  return matrix;
}

RoutingMatrix::RowView RoutingMatrix::row(std::size_t k) const {
  NETMON_REQUIRE(k < csr_.rows(), "OD row index out of range");
  return csr_.row(k);
}

RoutingMatrix::RowView RoutingMatrix::ods_on_link(topo::LinkId link) const {
  NETMON_REQUIRE(link < csc_.rows(), "link id out of range");
  return csc_.row(link);
}

double RoutingMatrix::fraction(std::size_t k, topo::LinkId link) const {
  const RowView r = row(k);
  const std::span<const linalg::SparseCsr::Index> cols = r.cols();
  const auto it = std::lower_bound(cols.begin(), cols.end(), link);
  if (it == cols.end() || *it != link) return 0.0;
  return r.values()[static_cast<std::size_t>(it - cols.begin())];
}

std::vector<topo::LinkId> RoutingMatrix::links_used() const {
  std::size_t used = 0;
  for (topo::LinkId id = 0; id < csc_.rows(); ++id) {
    if (!csc_.row(id).empty()) ++used;
  }
  std::vector<topo::LinkId> links;
  links.reserve(used);
  for (topo::LinkId id = 0; id < csc_.rows(); ++id) {
    if (!csc_.row(id).empty()) links.push_back(id);
  }
  return links;
}

}  // namespace netmon::routing
