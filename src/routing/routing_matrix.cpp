#include "routing/routing_matrix.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace netmon::routing {

RoutingMatrix RoutingMatrix::single_path(const topo::Graph& graph,
                                         std::vector<OdPair> ods,
                                         const LinkSet& failed) {
  RoutingMatrix matrix;
  matrix.ods_ = std::move(ods);
  matrix.rows_.resize(matrix.ods_.size());

  // Group OD pairs by source so each source needs one Dijkstra run.
  std::map<topo::NodeId, std::vector<std::size_t>> by_source;
  for (std::size_t k = 0; k < matrix.ods_.size(); ++k)
    by_source[matrix.ods_[k].src].push_back(k);

  for (const auto& [src, rows] : by_source) {
    const SpfResult spf = dijkstra(graph, src, failed);
    for (std::size_t k : rows) {
      const auto path = extract_path(spf, graph, matrix.ods_[k].dst);
      auto& row = matrix.rows_[k];
      row.reserve(path.size());
      for (topo::LinkId id : path) row.emplace_back(id, 1.0);
      std::sort(row.begin(), row.end());
    }
  }
  matrix.index_columns(graph.link_count());
  return matrix;
}

RoutingMatrix RoutingMatrix::ecmp(const topo::Graph& graph,
                                  std::vector<OdPair> ods,
                                  const LinkSet& failed) {
  RoutingMatrix matrix;
  matrix.ods_ = std::move(ods);
  matrix.rows_.resize(matrix.ods_.size());
  for (std::size_t k = 0; k < matrix.ods_.size(); ++k) {
    auto row = ecmp_fractions(graph, matrix.ods_[k].src, matrix.ods_[k].dst,
                              failed);
    NETMON_REQUIRE(!row.empty(),
                   "OD pair destination unreachable: " +
                       graph.node(matrix.ods_[k].dst).name);
    std::sort(row.begin(), row.end());
    matrix.rows_[k] = std::move(row);
  }
  matrix.index_columns(graph.link_count());
  return matrix;
}

void RoutingMatrix::index_columns(std::size_t n_links) {
  cols_.assign(n_links, {});
  for (std::size_t k = 0; k < rows_.size(); ++k) {
    for (const auto& [link, frac] : rows_[k]) cols_[link].emplace_back(k, frac);
  }
}

const std::vector<std::pair<topo::LinkId, double>>& RoutingMatrix::row(
    std::size_t k) const {
  NETMON_REQUIRE(k < rows_.size(), "OD row index out of range");
  return rows_[k];
}

const std::vector<std::pair<std::size_t, double>>& RoutingMatrix::ods_on_link(
    topo::LinkId link) const {
  NETMON_REQUIRE(link < cols_.size(), "link id out of range");
  return cols_[link];
}

double RoutingMatrix::fraction(std::size_t k, topo::LinkId link) const {
  for (const auto& [id, frac] : row(k)) {
    if (id == link) return frac;
  }
  return 0.0;
}

std::vector<topo::LinkId> RoutingMatrix::links_used() const {
  std::vector<topo::LinkId> links;
  for (topo::LinkId id = 0; id < cols_.size(); ++id) {
    if (!cols_[id].empty()) links.push_back(id);
  }
  return links;
}

}  // namespace netmon::routing
