#include "routing/routing_matrix.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace netmon::routing {

namespace {

using PairRows = std::vector<std::vector<std::pair<topo::LinkId, double>>>;

}  // namespace

RoutingMatrix RoutingMatrix::single_path(const topo::Graph& graph,
                                         std::vector<OdPair> ods,
                                         const LinkSet& failed) {
  RoutingMatrix matrix;
  matrix.ods_ = std::move(ods);
  PairRows rows(matrix.ods_.size());

  // Group OD pairs by source so each source needs one Dijkstra run.
  std::map<topo::NodeId, std::vector<std::size_t>> by_source;
  for (std::size_t k = 0; k < matrix.ods_.size(); ++k)
    by_source[matrix.ods_[k].src].push_back(k);

  for (const auto& [src, row_ids] : by_source) {
    const SpfResult spf = dijkstra(graph, src, failed);
    for (std::size_t k : row_ids) {
      const auto path = extract_path(spf, graph, matrix.ods_[k].dst);
      auto& row = rows[k];
      row.reserve(path.size());
      for (topo::LinkId id : path) row.emplace_back(id, 1.0);
      std::sort(row.begin(), row.end());
    }
  }
  matrix.csr_ = linalg::SparseCsr::from_rows(graph.link_count(), rows);
  matrix.csc_ = matrix.csr_.transpose();
  return matrix;
}

RoutingMatrix RoutingMatrix::ecmp(const topo::Graph& graph,
                                  std::vector<OdPair> ods,
                                  const LinkSet& failed) {
  RoutingMatrix matrix;
  matrix.ods_ = std::move(ods);
  PairRows rows(matrix.ods_.size());
  for (std::size_t k = 0; k < matrix.ods_.size(); ++k) {
    auto row = ecmp_fractions(graph, matrix.ods_[k].src, matrix.ods_[k].dst,
                              failed);
    NETMON_REQUIRE(!row.empty(),
                   "OD pair destination unreachable: " +
                       graph.node(matrix.ods_[k].dst).name);
    std::sort(row.begin(), row.end());
    rows[k] = std::move(row);
  }
  matrix.csr_ = linalg::SparseCsr::from_rows(graph.link_count(), rows);
  matrix.csc_ = matrix.csr_.transpose();
  return matrix;
}

RoutingMatrix::RowView RoutingMatrix::row(std::size_t k) const {
  NETMON_REQUIRE(k < csr_.rows(), "OD row index out of range");
  return csr_.row(k);
}

RoutingMatrix::RowView RoutingMatrix::ods_on_link(topo::LinkId link) const {
  NETMON_REQUIRE(link < csc_.rows(), "link id out of range");
  return csc_.row(link);
}

double RoutingMatrix::fraction(std::size_t k, topo::LinkId link) const {
  const RowView r = row(k);
  const std::span<const linalg::SparseCsr::Index> cols = r.cols();
  const auto it = std::lower_bound(cols.begin(), cols.end(), link);
  if (it == cols.end() || *it != link) return 0.0;
  return r.values()[static_cast<std::size_t>(it - cols.begin())];
}

std::vector<topo::LinkId> RoutingMatrix::links_used() const {
  std::size_t used = 0;
  for (topo::LinkId id = 0; id < csc_.rows(); ++id) {
    if (!csc_.row(id).empty()) ++used;
  }
  std::vector<topo::LinkId> links;
  links.reserve(used);
  for (topo::LinkId id = 0; id < csc_.rows(); ++id) {
    if (!csc_.row(id).empty()) links.push_back(id);
  }
  return links;
}

}  // namespace netmon::routing
