// Shortest-path-first routing (IS-IS style) over a topo::Graph.
//
// Provides single-source Dijkstra with deterministic tie-breaking, path
// extraction, and equal-cost multipath (ECMP) split fractions. Link
// failures are modelled by an exclusion set so that rerouting events — the
// paper's motivation for re-running the placement optimization — are a
// recompute with a different exclusion set.
#pragma once

#include <unordered_set>
#include <vector>

#include "topo/graph.hpp"

namespace netmon::routing {

/// Set of failed (excluded) links.
using LinkSet = std::unordered_set<topo::LinkId>;

/// Result of a single-source shortest-path computation.
struct SpfResult {
  topo::NodeId source = topo::kInvalidId;
  /// dist[v]: IGP distance from source to v; +inf when unreachable.
  std::vector<double> dist;
  /// parent[v]: the link over which the (deterministically chosen)
  /// shortest path reaches v; kInvalidId at the source / unreachable nodes.
  std::vector<topo::LinkId> parent;

  /// Whether node v is reachable from the source.
  bool reachable(topo::NodeId v) const;
};

/// Runs Dijkstra from `source`, ignoring links in `failed`.
/// Ties are broken towards the lower link id, making single-path routing
/// deterministic.
SpfResult dijkstra(const topo::Graph& graph, topo::NodeId source,
                   const LinkSet& failed = {});

/// Same computation into a caller-owned result: `out`'s vectors are
/// assign()ed in place, so running many sources through one SpfResult
/// reuses its buffers after the first call — the per-source unit of
/// routing-matrix construction at scale (RoutingMatrix::single_path).
void dijkstra_into(const topo::Graph& graph, topo::NodeId source,
                   const LinkSet& failed, SpfResult& out);

/// Extracts the single shortest path source->dst as a sequence of link ids
/// (in travel order). Throws netmon::Error if dst is unreachable.
std::vector<topo::LinkId> extract_path(const SpfResult& spf,
                                       const topo::Graph& graph,
                                       topo::NodeId dst);

/// Appends the path (travel order) to `out` instead of allocating a
/// fresh vector — paths from many ODs share one arena.
void extract_path_into(const SpfResult& spf, const topo::Graph& graph,
                       topo::NodeId dst, std::vector<topo::LinkId>& out);

/// Equal-cost multipath fractions for one OD pair: for every link on some
/// shortest src->dst path, the fraction of the OD traffic crossing it under
/// even per-node splitting. Fractions on the links entering dst sum to 1.
/// Returns an empty vector when dst is unreachable.
std::vector<std::pair<topo::LinkId, double>> ecmp_fractions(
    const topo::Graph& graph, topo::NodeId src, topo::NodeId dst,
    const LinkSet& failed = {});

}  // namespace netmon::routing
