#include "tenant/registry.hpp"

#include <utility>

#include "util/error.hpp"

namespace netmon::tenant {

TenantRegistry::TenantRegistry(const obs::Clock* clock)
    : clock_(clock != nullptr ? clock : &obs::Clock::system()) {}

void TenantRegistry::bind(obs::MetricsRegistry* metrics,
                          obs::FlightRecorder* recorder) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  recorder_ = recorder;
  if (metrics != nullptr) {
    swaps_ = metrics->counter("netmon_tenant_swaps_total",
                              "Tenant snapshot publishes (RCU swaps)");
    tenant_gauge_ =
        metrics->gauge("netmon_tenant_count", "Registered tenants");
    tenant_gauge_.set(static_cast<double>(tenants_.size()));
  } else {
    swaps_ = obs::Counter();
    tenant_gauge_ = obs::Gauge();
  }
}

std::shared_ptr<TenantRegistry::State> TenantRegistry::find(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const std::string& resolved = name.empty() ? default_ : name;
  if (resolved.empty()) return nullptr;
  const auto it = tenants_.find(resolved);
  return it == tenants_.end() ? nullptr : it->second;
}

std::uint64_t TenantRegistry::publish(const std::string& name,
                                      TenantModel model) {
  NETMON_REQUIRE(!name.empty(), "tenant name must be non-empty");
  std::shared_ptr<State> state;
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    auto& slot = tenants_[name];
    if (slot == nullptr) {
      slot = std::make_shared<State>();
      slot->quota =
          std::make_shared<TenantQuota>(QuotaConfig{}, clock_);
      if (default_.empty()) default_ = name;
      tenant_gauge_.set(static_cast<double>(tenants_.size()));
    }
    state = slot;
  }
  // The expensive part — copying the model in, validating it, routing
  // precompute — runs outside the map lock; only same-tenant publishes
  // serialize. A throw here (inconsistent model) publishes nothing and
  // leaves the previous epoch serving.
  std::lock_guard<std::mutex> publish_lock(state->publish_mutex);
  const std::uint64_t epoch = state->epoch + 1;
  auto snapshot =
      std::make_shared<const TenantSnapshot>(name, epoch, std::move(model));
  state->epoch = epoch;
  {
    std::lock_guard<std::mutex> slot_lock(state->slot_mutex);
    state->snapshot = std::move(snapshot);
  }
  swaps_.inc();
  if (recorder_ != nullptr)
    recorder_->record(obs::ServeEvent::kTenantSwap, 0, epoch, clock_->now());
  return epoch;
}

std::shared_ptr<const TenantSnapshot> TenantRegistry::acquire(
    const std::string& name) const {
  const std::shared_ptr<State> state = find(name);
  if (state == nullptr) return nullptr;
  // A freshly created (never published) entry cannot be observed here:
  // publish() stores the first snapshot before returning, and the entry
  // is only created by publish(). Still, this copy may race that first
  // store and see null — callers treat null as unknown either way.
  std::lock_guard<std::mutex> slot_lock(state->slot_mutex);
  return state->snapshot;
}

std::shared_ptr<TenantQuota> TenantRegistry::quota(
    const std::string& name) const {
  const std::shared_ptr<State> state = find(name);
  return state == nullptr ? nullptr : state->quota;
}

void TenantRegistry::set_quota(const std::string& name, QuotaConfig config) {
  const std::shared_ptr<State> state = find(name);
  NETMON_REQUIRE(state != nullptr, "unknown tenant: " + name);
  state->quota->configure(config);
}

bool TenantRegistry::remove(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  const auto it = tenants_.find(name);
  if (it == tenants_.end()) return false;
  tenants_.erase(it);
  if (default_ == name) default_.clear();
  tenant_gauge_.set(static_cast<double>(tenants_.size()));
  return true;
}

void TenantRegistry::set_default(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  NETMON_REQUIRE(tenants_.find(name) != tenants_.end(),
                 "unknown tenant: " + name);
  default_ = name;
}

std::string TenantRegistry::default_tenant() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return default_;
}

std::vector<std::string> TenantRegistry::tenants() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_) names.push_back(name);
  return names;
}

std::size_t TenantRegistry::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return tenants_.size();
}

}  // namespace netmon::tenant
