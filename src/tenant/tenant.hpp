// Umbrella header for the multi-tenant serving subsystem (src/tenant/):
// immutable RCU tenant snapshots, the tenant registry, per-tenant
// admission quotas, the keyed solve cache, and the multi-tenant
// serve::Service implementation.
#pragma once

#include "tenant/quota.hpp"
#include "tenant/registry.hpp"
#include "tenant/service.hpp"
#include "tenant/snapshot.hpp"
#include "tenant/solve_cache.hpp"
