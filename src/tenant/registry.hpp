// The tenant directory: name -> (RCU snapshot slot, admission quota).
//
// Reads never wait on model builds: acquire() takes a shared lock on
// the map *shape* (bounded, never held across a solve) and then copies
// the snapshot shared_ptr under a per-tenant slot mutex whose critical
// section is one refcount bump. publish() builds the replacement
// TenantSnapshot — the expensive part, routing precompute included —
// entirely outside any lock readers touch, then swaps it in with one
// pointer store under that same slot mutex. An
// in-flight request keeps the snapshot it resolved against alive through
// its queue context pin, so a swap retires the old model only when the
// last solve against it answers: classic RCU, with shared_ptr epochs as
// the grace period.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "tenant/quota.hpp"
#include "tenant/snapshot.hpp"

namespace netmon::tenant {

class TenantRegistry {
 public:
  /// `clock` seeds each tenant's quota bucket and stamps swap events;
  /// null = the process steady clock. Borrowed; must outlive the
  /// registry.
  explicit TenantRegistry(const obs::Clock* clock = nullptr);

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Attaches observability: netmon_tenant_* metrics on `metrics` and
  /// kTenantSwap events on `recorder` (either may be null). Borrowed;
  /// call before concurrent use (TenantService binds its own registry
  /// here at construction).
  void bind(obs::MetricsRegistry* metrics, obs::FlightRecorder* recorder);

  /// Publishes `model` as the next epoch of `name`, creating the tenant
  /// on first publish. Returns the new epoch (per-tenant, strictly
  /// increasing from 1). The snapshot is built outside the read path;
  /// concurrent publishes to one tenant serialize per tenant. Throws
  /// netmon::Error (and publishes nothing) on an inconsistent model.
  std::uint64_t publish(const std::string& name, TenantModel model);

  /// The current snapshot of `name`, or null when unknown. Empty name
  /// resolves to the default tenant (set_default / first publish). The
  /// returned shared_ptr is the caller's pin: hold it across any use of
  /// the view.
  std::shared_ptr<const TenantSnapshot> acquire(const std::string& name) const;

  /// The tenant's admission quota (created unlimited at first publish).
  /// Null when unknown; empty name resolves like acquire(). The
  /// shared_ptr keeps release() safe even if the tenant is removed while
  /// requests are in flight.
  std::shared_ptr<TenantQuota> quota(const std::string& name) const;

  /// Replaces the tenant's admission limits. Throws when unknown.
  void set_quota(const std::string& name, QuotaConfig config);

  /// Removes the tenant. In-flight requests pinned to its snapshots are
  /// unaffected. Returns false when unknown.
  bool remove(const std::string& name);

  /// Explicit default tenant for requests with an empty tenant field.
  /// Throws when unknown. (The first published tenant becomes the
  /// default automatically.)
  void set_default(const std::string& name);
  std::string default_tenant() const;

  /// Registered tenant names, unordered.
  std::vector<std::string> tenants() const;
  std::size_t size() const;

 private:
  struct State {
    /// The RCU slot. A plain shared_ptr behind a dedicated slot mutex
    /// held only for the pointer copy/swap — never across a snapshot
    /// build or a solve — so a reader's critical section is one
    /// refcount bump. (std::atomic<shared_ptr> is the obvious
    /// spelling, but libstdc++'s embedded lock-bit implementation is
    /// opaque to TSan and trips the CI race gate; an uncontended
    /// std::mutex costs the same one CAS and stays visible to the
    /// tool.)
    mutable std::mutex slot_mutex;
    std::shared_ptr<const TenantSnapshot> snapshot;
    std::shared_ptr<TenantQuota> quota;
    /// Serializes publishes to this tenant (snapshot builds happen under
    /// it, epoch assignment included) without touching the read path.
    std::mutex publish_mutex;
    std::uint64_t epoch = 0;  // guarded by publish_mutex
  };

  /// Looks the state up under the shared lock, resolving an empty name
  /// to the default tenant. Null when unknown. Shared ownership so a
  /// concurrent remove() can never free state a caller still touches.
  std::shared_ptr<State> find(const std::string& name) const;

  const obs::Clock* clock_;  // never null

  /// Guards the map shape and the default name only — never held while
  /// building a snapshot or running a solve.
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<State>> tenants_;
  std::string default_;

  obs::FlightRecorder* recorder_ = nullptr;
  obs::Counter swaps_;
  obs::Gauge tenant_gauge_;
};

}  // namespace netmon::tenant
