// Per-tenant admission quotas: a token-bucket rate limit plus a maximum
// in-flight bound, layered on the serving queue's typed-reject contract.
//
// try_admit() is the whole protocol: it either admits (and counts the
// request in flight until release()) or returns a typed reason the
// caller turns into ResponseStatus::kRejectedQuota — never blocks,
// never queues. The bucket refills on an injected obs::Clock, so tests
// drive rate-limit recovery deterministically with a ManualClock.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "obs/clock.hpp"

namespace netmon::tenant {

/// Admission limits for one tenant. Zeros disable the matching check,
/// so the default config admits everything.
struct QuotaConfig {
  /// Sustained request rate; 0 = unlimited.
  double tokens_per_sec = 0.0;
  /// Bucket capacity in requests (the burst the tenant may spend at
  /// once). Clamped to >= 1 when rate limiting is on.
  double burst = 1.0;
  /// Maximum requests admitted but not yet answered; 0 = unlimited.
  std::size_t max_inflight = 0;
};

/// Why a request was (not) admitted.
enum class QuotaDecision : std::uint8_t {
  kAdmit = 0,
  /// The token bucket is empty (sustained rate exceeded).
  kRateLimited = 1,
  /// max_inflight requests are already in flight.
  kTooManyInflight = 2,
};

const char* to_string(QuotaDecision decision) noexcept;

/// Thread-safe admission state of one tenant. The in-flight gate is a
/// lock-free CAS; only the token bucket takes a (tiny) mutex.
class TenantQuota {
 public:
  /// `clock` drives bucket refill; null = the process steady clock.
  /// Borrowed; must outlive the quota.
  explicit TenantQuota(QuotaConfig config, const obs::Clock* clock = nullptr);

  /// Admits or rejects, never blocks. On kAdmit the caller owes exactly
  /// one release() once the request is answered (any status).
  QuotaDecision try_admit();

  /// Returns an admitted request's in-flight slot.
  void release() noexcept;

  /// Replaces the limits. In-flight accounting carries over; the bucket
  /// restarts full at the new burst.
  void configure(QuotaConfig config);

  QuotaConfig config() const;
  std::size_t inflight() const noexcept {
    return inflight_.load(std::memory_order_acquire);
  }

 private:
  const obs::Clock* clock_;  // never null

  mutable std::mutex mutex_;  // config_ + bucket state
  QuotaConfig config_;
  double tokens_ = 0.0;
  obs::TimePoint refilled_at_{};

  std::atomic<std::size_t> inflight_{0};
};

}  // namespace netmon::tenant
