#include "tenant/quota.hpp"

#include <algorithm>
#include <chrono>

namespace netmon::tenant {

const char* to_string(QuotaDecision decision) noexcept {
  switch (decision) {
    case QuotaDecision::kAdmit: return "admit";
    case QuotaDecision::kRateLimited: return "rate_limited";
    case QuotaDecision::kTooManyInflight: return "too_many_inflight";
  }
  return "unknown";
}

TenantQuota::TenantQuota(QuotaConfig config, const obs::Clock* clock)
    : clock_(clock != nullptr ? clock : &obs::Clock::system()),
      config_(config) {
  if (config_.tokens_per_sec > 0.0)
    config_.burst = std::max(config_.burst, 1.0);
  tokens_ = config_.burst;
  refilled_at_ = clock_->now();
}

QuotaDecision TenantQuota::try_admit() {
  // Admissions serialize on the bucket mutex (it is held for a handful
  // of arithmetic ops); release() stays lock-free so completion paths
  // never contend with admission.
  std::lock_guard<std::mutex> lock(mutex_);
  if (config_.max_inflight > 0 &&
      inflight_.load(std::memory_order_acquire) >= config_.max_inflight)
    return QuotaDecision::kTooManyInflight;
  if (config_.tokens_per_sec > 0.0) {
    const obs::TimePoint now = clock_->now();
    const double elapsed_sec =
        std::chrono::duration<double>(now - refilled_at_).count();
    if (elapsed_sec > 0.0) {
      tokens_ = std::min(config_.burst,
                         tokens_ + elapsed_sec * config_.tokens_per_sec);
      refilled_at_ = now;
    }
    if (tokens_ < 1.0) return QuotaDecision::kRateLimited;
    tokens_ -= 1.0;
  }
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  return QuotaDecision::kAdmit;
}

void TenantQuota::release() noexcept {
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
}

void TenantQuota::configure(QuotaConfig config) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = config;
  if (config_.tokens_per_sec > 0.0)
    config_.burst = std::max(config_.burst, 1.0);
  tokens_ = config_.burst;
  refilled_at_ = clock_->now();
}

QuotaConfig TenantQuota::config() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return config_;
}

}  // namespace netmon::tenant
