// The multi-tenant query service: registry -> quota -> cache -> the
// shared serve pipeline.
//
//   transports (any thread)                dispatcher (one thread)
//   ----------------------                 -----------------------
//   submit(Request)                        Batcher::collect()
//     resolve tenant (RCU acquire) ─ pin      |
//     validate against the snapshot           v
//     quota try_admit -> kRejectedQuota    per-slot ModelView from the
//     cache lookup -> exact hit answers    request's *pinned* snapshot
//       bit-identically, no solve            |
//     miss -> nearest donor warm start       v
//     RequestQueue::try_push            BatchSolver::solve_items(pool)
//       (context pins the snapshot)         |
//                                           v
//                                    responses: stamp tenant + cache
//                                    outcome, insert kOk into cache,
//                                    release quota, invoke callback
//
// Requests from different tenants coalesce into one dispatch batch —
// each slot expands against its own pinned snapshot, so a registry swap
// mid-batch never changes what an admitted request resolves against.
// The serve layer stays tenant-agnostic: this class is just another
// serve::Service, so LoopbackTransport and TcpServer front it unchanged.
#pragma once

#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_solver.hpp"
#include "obs/clock.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/batcher.hpp"
#include "serve/exec.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/stats.hpp"
#include "serve/transport.hpp"
#include "tenant/registry.hpp"
#include "tenant/solve_cache.hpp"

namespace netmon::tenant {

struct TenantServiceOptions {
  /// Bound on parked requests (all tenants share one queue; per-tenant
  /// fairness comes from the quotas).
  std::size_t queue_capacity = 64;
  serve::BatchPolicy batch;
  /// Worker threads for the solve fan-out; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Base solver configuration; per-request hooks layer on a copy.
  opt::SolverOptions solver;
  /// Optional solver iteration trace shared by every tenant's solves
  /// (obs/trace.hpp; lock-free ring, safe across worker threads).
  /// Borrowed; must outlive the service.
  obs::SolverTrace* solver_trace = nullptr;
  /// Solve cache configuration; max_entries = 0 disables caching.
  CacheConfig cache;
  /// Start with the dispatcher parked; resume() starts serving.
  bool start_paused = false;
  /// Injected clock (deadlines, quota refill, flight recorder); null =
  /// the process steady clock. Borrowed; must outlive the service.
  const obs::Clock* clock = nullptr;
  /// Flight-recorder capacity in events; 0 disables.
  std::size_t flight_recorder = 1024;
};

/// serve::Service over a TenantRegistry. Construction binds the
/// registry's observability (netmon_tenant_* metrics, kTenantSwap
/// events) to this service's registry/recorder.
class TenantService final : public serve::Service {
 public:
  /// The registry is borrowed and must outlive the service.
  TenantService(TenantRegistry& registry, TenantServiceOptions options = {});

  /// Stops and drains (typed kShutdown responses for parked requests).
  ~TenantService() override;

  TenantService(const TenantService&) = delete;
  TenantService& operator=(const TenantService&) = delete;

  /// Submits a query. `done` runs exactly once: synchronously for typed
  /// rejections (unknown tenant kBadRequest, kRejectedQuota,
  /// kRejectedQueueFull, kShutdown) and cache hits, or from the
  /// dispatcher for solved responses. Responses carry the resolved
  /// tenant name and the cache outcome.
  void submit(serve::Request request, serve::ResponseCallback done) override;

  /// Future-style submit; same contract.
  std::future<serve::Response> submit(serve::Request request) {
    return serve::submit_future(*this, std::move(request));
  }

  /// Parks / resumes the dispatcher (same contract as serve::Server).
  void pause();
  void resume();

  /// Stops the dispatcher and answers everything still queued with
  /// kShutdown. Idempotent.
  void stop();

  std::size_t queue_depth() const { return queue_.size(); }
  unsigned threads() const noexcept { return pool_.size(); }
  const TenantServiceOptions& options() const noexcept { return options_; }

  serve::StatsSnapshot stats() const { return stats_.snapshot(); }
  SolveCache& cache() noexcept { return cache_; }
  const SolveCache& cache() const noexcept { return cache_; }
  TenantRegistry& registry() noexcept { return registry_; }

  /// Lifetime solver invocations (core::BatchSolver::solves) — the
  /// cache acceptance probe: exact hits must not move this.
  std::uint64_t solver_invocations() const noexcept {
    return solver_.solves();
  }

  /// Serve + solver + cache + tenant metrics, one registry.
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }
  /// Prometheus text exposition of metrics().
  std::string prometheus() const;
  const obs::FlightRecorder& flight_recorder() const noexcept {
    return recorder_;
  }
  const obs::Clock& clock() const noexcept { return *clock_; }

 private:
  void dispatch_loop();
  void process_batch(std::vector<serve::QueuedRequest> batch);

  TenantRegistry& registry_;
  TenantServiceOptions options_;

  /// Declared before solver_, stats_, cache_: all register here.
  obs::MetricsRegistry metrics_;
  const obs::Clock* clock_;  // never null
  obs::FlightRecorder recorder_;

  runtime::ThreadPool pool_;
  core::BatchSolver solver_;
  serve::RequestQueue queue_;
  serve::Batcher batcher_;
  serve::ServeStats stats_;
  SolveCache cache_;

  obs::Counter quota_rejects_;
  obs::Counter unknown_tenants_;

  std::mutex state_mutex_;
  std::condition_variable state_cv_;
  bool paused_ = false;
  bool parked_ = false;
  bool stopping_ = false;
  std::once_flag stop_once_;
  std::thread dispatcher_;
};

}  // namespace netmon::tenant
