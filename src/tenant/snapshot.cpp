#include "tenant/snapshot.hpp"

#include <utility>

#include "util/error.hpp"

namespace netmon::tenant {

namespace {

TenantModel validated(TenantModel model) {
  NETMON_REQUIRE(model.loads.size() == model.graph.link_count(),
                 "tenant loads must cover every link");
  NETMON_REQUIRE(!model.task.ods.empty(),
                 "tenant task must have at least one OD pair");
  NETMON_REQUIRE(model.task.expected_packets.size() == model.task.ods.size(),
                 "tenant task expected_packets must match its OD pairs");
  return model;
}

routing::RoutingMatrix build_routing(const TenantModel& model) {
  return model.problem.ecmp
             ? routing::RoutingMatrix::ecmp(model.graph, model.task.ods,
                                            model.problem.failed)
             : routing::RoutingMatrix::single_path(
                   model.graph, model.task.ods, model.problem.failed);
}

}  // namespace

TenantSnapshot::TenantSnapshot(std::string name, std::uint64_t epoch,
                               TenantModel model)
    : name_(std::move(name)),
      epoch_(epoch),
      model_(validated(std::move(model))),
      routing_(build_routing(model_)) {
  NETMON_REQUIRE(!name_.empty(), "tenant name must be non-empty");
  NETMON_REQUIRE(epoch_ >= 1, "tenant epochs start at 1");
}

}  // namespace netmon::tenant
