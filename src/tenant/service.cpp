#include "tenant/service.hpp"

#include <deque>
#include <span>
#include <utility>

#include "obs/export.hpp"
#include "util/error.hpp"

namespace netmon::tenant {

namespace {

core::BatchOptions make_batch_options(const TenantServiceOptions& options,
                                      obs::MetricsRegistry& metrics) {
  core::BatchOptions batch;
  batch.threads = options.threads;
  batch.solver = options.solver;
  batch.trace = options.solver_trace;
  batch.metrics = &metrics;
  return batch;
}

}  // namespace

TenantService::TenantService(TenantRegistry& registry,
                             TenantServiceOptions options)
    : registry_(registry),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : &obs::Clock::system()),
      recorder_(options_.flight_recorder),
      pool_(options_.threads),
      solver_(make_batch_options(options_, metrics_)),
      queue_(options_.queue_capacity),
      batcher_(queue_, options_.batch),
      stats_(metrics_),
      cache_(options_.cache, &metrics_) {
  quota_rejects_ =
      metrics_.counter("netmon_tenant_quota_rejects_total",
                       "Requests rejected by a tenant admission quota");
  unknown_tenants_ =
      metrics_.counter("netmon_tenant_unknown_total",
                       "Requests naming a tenant the registry does not know");
  registry_.bind(&metrics_, &recorder_);
  paused_ = options_.start_paused;
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

TenantService::~TenantService() { stop(); }

std::string TenantService::prometheus() const {
  return obs::prometheus_text(metrics_);
}

void TenantService::submit(serve::Request request,
                           serve::ResponseCallback done) {
  stats_.on_submitted();

  auto answer = [&](serve::ResponseStatus status, std::string error) {
    serve::Response response;
    response.id = request.id;
    response.kind = request.kind;
    response.tenant = request.tenant;
    response.status = status;
    response.error = std::move(error);
    done(std::move(response));
  };

  // Tenant resolution is the RCU read: one atomic shared_ptr load, and
  // the returned pin rides the request to completion.
  std::shared_ptr<const TenantSnapshot> snapshot =
      registry_.acquire(request.tenant);
  if (snapshot == nullptr) {
    stats_.on_bad_request();
    unknown_tenants_.inc();
    recorder_.record(obs::ServeEvent::kBadRequest, request.id, 0,
                     clock_->now());
    answer(serve::ResponseStatus::kBadRequest,
           request.tenant.empty()
               ? "no default tenant is registered"
               : "unknown tenant: " + request.tenant);
    return;
  }
  // Echo the resolved name (empty = default tenant) so the cache key,
  // the response, and the quota all name the same tenant.
  request.tenant = snapshot->name();

  if (std::string error = validate_request(snapshot->view(), request);
      !error.empty()) {
    stats_.on_bad_request();
    recorder_.record(obs::ServeEvent::kBadRequest, request.id, 0,
                     clock_->now());
    answer(serve::ResponseStatus::kBadRequest, std::move(error));
    return;
  }

  std::shared_ptr<TenantQuota> quota = registry_.quota(request.tenant);
  if (quota != nullptr) {
    const QuotaDecision decision = quota->try_admit();
    if (decision != QuotaDecision::kAdmit) {
      quota_rejects_.inc();
      recorder_.record(obs::ServeEvent::kQuotaReject, request.id,
                       static_cast<std::uint64_t>(decision), clock_->now());
      answer(serve::ResponseStatus::kRejectedQuota,
             decision == QuotaDecision::kRateLimited
                 ? "tenant rate limit exceeded"
                 : "tenant in-flight limit reached");
      return;
    }
  }

  // Exact cache hit: replay the stored answer bit-identically — the
  // solver never runs, only transport metadata is re-stamped.
  const std::string key = SolveCache::fingerprint(*snapshot, request);
  if (std::optional<serve::Response> hit = cache_.lookup(key)) {
    recorder_.record(obs::ServeEvent::kCacheHit, request.id, 0,
                     clock_->now());
    serve::Response response = std::move(*hit);
    response.id = request.id;
    response.tenant = request.tenant;
    response.cache = serve::CacheOutcome::kHit;
    response.batch_size = 0;
    response.queue_ms = 0.0;
    response.solve_ms = 0.0;
    stats_.on_served(0.0, 0.0);
    if (quota != nullptr) quota->release();
    done(std::move(response));
    return;
  }

  // Miss: the nearest cached solution of this snapshot donates a warm
  // start when the request brought none of its own. The donated rates
  // do not enter the fingerprint the response is stored under — the
  // stored key is the *request's* fingerprint, computed above.
  serve::CacheOutcome outcome = serve::CacheOutcome::kNone;
  if (request.warm_start.empty()) {
    if (std::optional<WarmStartDonor> donor =
            cache_.nearest(*snapshot, request)) {
      request.warm_start = std::move(donor->rates);
      outcome = serve::CacheOutcome::kWarmStart;
      cache_.on_warm_start();
    }
  }
  recorder_.record(obs::ServeEvent::kCacheMiss, request.id,
                   outcome == serve::CacheOutcome::kWarmStart ? 1 : 0,
                   clock_->now());

  // Similarity metadata nearest() will index this answer under — kept
  // aside because the request itself moves into the queue.
  serve::Request meta;
  meta.kind = request.kind;
  meta.theta = request.theta;
  meta.default_alpha = request.default_alpha;
  meta.failed = request.failed;

  serve::QueuedRequest item;
  item.enqueued_at = clock_->now();
  if (request.deadline_ms > 0)
    item.deadline =
        item.enqueued_at + std::chrono::milliseconds(request.deadline_ms);
  item.request = std::move(request);
  item.context = snapshot;  // the RCU pin rides the queue

  // The completion wrapper stamps tenancy onto every response (served,
  // expired, shutdown alike), stores completed answers, and returns the
  // quota slot — exactly once, because `done` runs exactly once.
  item.done = [this, quota, key, outcome, snapshot, meta = std::move(meta),
               inner = std::move(done)](serve::Response&& response) {
    response.tenant = snapshot->name();
    if (response.status == serve::ResponseStatus::kOk) {
      response.cache = outcome;
      // Keyed by the original request fingerprint: a repeat of the same
      // query replays these bits without solving.
      cache_.insert(key, *snapshot, meta, response);
    }
    if (quota != nullptr) quota->release();
    inner(std::move(response));
  };

  const std::uint64_t id = item.request.id;
  const auto enqueued_at = item.enqueued_at;
  const serve::PushResult pushed =
      queue_.try_push(item, [&](std::size_t depth) {
        stats_.on_enqueued(depth);
        recorder_.record(obs::ServeEvent::kAdmit, id, depth, enqueued_at);
      });
  if (pushed == serve::PushResult::kOk) return;

  serve::Response response;
  response.id = item.request.id;
  response.kind = item.request.kind;
  if (pushed == serve::PushResult::kFull) {
    stats_.on_rejected_queue_full();
    recorder_.record(obs::ServeEvent::kRejectFull, item.request.id,
                     queue_.capacity(), item.enqueued_at);
    response.status = serve::ResponseStatus::kRejectedQueueFull;
    response.error = "queue full (capacity " +
                     std::to_string(queue_.capacity()) + ")";
  } else {
    stats_.on_rejected_shutdown();
    response.status = serve::ResponseStatus::kShutdown;
    response.error = "service stopped";
  }
  item.done(std::move(response));
}

void TenantService::pause() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  paused_ = true;
  state_cv_.wait(lock, [this] { return parked_ || stopping_; });
}

void TenantService::resume() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    paused_ = false;
  }
  state_cv_.notify_all();
}

void TenantService::stop() {
  std::call_once(stop_once_, [this] {
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      stopping_ = true;
    }
    state_cv_.notify_all();
    queue_.close();
    if (dispatcher_.joinable()) dispatcher_.join();
    recorder_.record(obs::ServeEvent::kShutdown, 0, queue_.size(),
                     clock_->now());
    for (serve::QueuedRequest& item : queue_.drain()) {
      stats_.on_rejected_shutdown();
      serve::Response response;
      response.id = item.request.id;
      response.kind = item.request.kind;
      response.status = serve::ResponseStatus::kShutdown;
      response.error = "service stopped before the request was served";
      item.done(std::move(response));
    }
  });
}

void TenantService::dispatch_loop() {
  constexpr std::chrono::milliseconds kPoll{20};
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state_mutex_);
      parked_ = true;
      state_cv_.notify_all();
      state_cv_.wait(lock, [this] { return stopping_ || !paused_; });
      parked_ = false;
      if (stopping_) return;
    }
    std::vector<serve::QueuedRequest> batch = batcher_.collect(kPoll);
    if (!batch.empty()) process_batch(std::move(batch));
  }
}

void TenantService::process_batch(std::vector<serve::QueuedRequest> batch) {
  const serve::ServeClock::time_point dispatch_time = clock_->now();

  // One slot per still-live request, each expanding against the model
  // its context pin froze at admission — a mixed-tenant batch is just a
  // batch whose slots carry different views.
  struct Slot {
    serve::QueuedRequest item;
    opt::SolverOptions solver;
    std::size_t first = 0;
    std::size_t count = 0;
  };
  std::vector<Slot> slots;
  slots.reserve(batch.size());
  std::deque<core::PlacementProblem> problems;

  auto answer_now = [&](serve::QueuedRequest& item,
                        serve::ResponseStatus status, std::string error) {
    serve::Response response;
    response.id = item.request.id;
    response.kind = item.request.kind;
    response.status = status;
    response.error = std::move(error);
    response.batch_size = static_cast<std::uint32_t>(batch.size());
    response.queue_ms = serve::ms_between(item.enqueued_at, dispatch_time);
    item.done(std::move(response));
  };

  for (serve::QueuedRequest& item : batch) {
    recorder_.record(obs::ServeEvent::kDequeue, item.request.id,
                     queue_.size(), dispatch_time);
    if (dispatch_time >= item.deadline) {
      stats_.on_expired_in_queue();
      recorder_.record(obs::ServeEvent::kDeadlineMissQueue, item.request.id,
                       0, dispatch_time);
      answer_now(item, serve::ResponseStatus::kDeadlineExpired,
                 "deadline expired in queue");
      continue;
    }

    const auto* snapshot =
        static_cast<const TenantSnapshot*>(item.context.get());
    const serve::ModelView model = snapshot->view();

    Slot slot;
    slot.first = problems.size();
    try {
      slot.count = expand_request(model, item.request, problems);
    } catch (const Error& error) {
      stats_.on_bad_request();
      answer_now(item, serve::ResponseStatus::kBadRequest, error.what());
      continue;
    }
    slot.solver = request_solver_options(options_.solver, item.request,
                                         item.deadline, clock_);
    slot.item = std::move(item);
    slots.push_back(std::move(slot));
  }

  std::vector<core::BatchItem> items;
  items.reserve(problems.size());
  for (Slot& slot : slots) {
    const sampling::RateVector* warm = slot.item.request.warm_start.empty()
                                           ? nullptr
                                           : &slot.item.request.warm_start;
    for (std::size_t i = 0; i < slot.count; ++i)
      items.push_back(
          core::BatchItem{&problems[slot.first + i], warm, &slot.solver});
  }
  stats_.on_batch(batch.size(), items.size());
  recorder_.record(obs::ServeEvent::kBatchFormed, 0, batch.size(),
                   dispatch_time);

  std::vector<core::PlacementSolution> solutions;
  if (!items.empty()) solutions = solver_.solve_items(pool_, items);
  const serve::ServeClock::time_point solved_at = clock_->now();
  const double solve_ms = serve::ms_between(dispatch_time, solved_at);

  std::size_t next = 0;
  for (Slot& slot : slots) {
    const std::span<core::PlacementSolution> slice(solutions.data() + next,
                                                   slot.count);
    next += slot.count;
    const serve::Request& request = slot.item.request;

    serve::AssembledResponse assembled = assemble_response(request, slice);
    serve::Response& response = assembled.response;
    response.batch_size = static_cast<std::uint32_t>(batch.size());
    response.queue_ms = serve::ms_between(slot.item.enqueued_at,
                                          dispatch_time);
    response.solve_ms = solve_ms;

    if (assembled.cancelled) {
      stats_.on_expired_mid_solve();
      recorder_.record(
          obs::ServeEvent::kDeadlineMissSolve, request.id,
          static_cast<std::uint64_t>(assembled.cancelled_iterations),
          solved_at);
    } else {
      stats_.on_served(response.queue_ms, solve_ms);
      recorder_.record(obs::ServeEvent::kSolveDone, request.id, slot.count,
                       solved_at);
    }
    slot.item.done(std::move(response));
  }
}

}  // namespace netmon::tenant
