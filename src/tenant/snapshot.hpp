// Immutable per-tenant network models for the multi-tenant serving
// layer.
//
// A TenantSnapshot owns everything a request resolves against — the
// topology, the measurement task, the link loads, the problem-assembly
// defaults, plus the precomputed baseline routing matrix — frozen at
// publish time and never mutated. The registry swaps whole snapshots
// RCU-style (shared_ptr epochs): an in-flight solve pins the snapshot it
// started against via the queue's context pin, so reconfiguration never
// blocks a reader and a retired model is freed exactly when its last
// in-flight request answers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/problem.hpp"
#include "core/task.hpp"
#include "routing/routing_matrix.hpp"
#include "serve/exec.hpp"
#include "topo/graph.hpp"
#include "traffic/link_load.hpp"

namespace netmon::tenant {

/// Everything a tenant's queries resolve against, by value: publishing a
/// model hands ownership to the snapshot, so nothing a tenant serves
/// from can dangle or be mutated behind its back.
struct TenantModel {
  topo::Graph graph;
  core::MeasurementTask task;
  traffic::LinkLoads loads;
  /// Scenario defaults (theta, alpha, restrict_to, baseline failures,
  /// ecmp); a request's theta / default_alpha / failed override per
  /// query exactly as on the single-tenant Server.
  core::ProblemOptions problem;
};

/// One immutable published model version of one tenant. Epochs are
/// per-tenant and strictly increasing from 1; the solve cache keys on
/// (tenant, epoch), so a swap implicitly invalidates every cached answer
/// of the previous model.
class TenantSnapshot {
 public:
  /// Validates the model (loads must cover every link; the task must be
  /// non-empty) and precomputes the baseline routing matrix under the
  /// model's default failure set. Throws netmon::Error on an
  /// inconsistent model — a bad publish never becomes visible.
  TenantSnapshot(std::string name, std::uint64_t epoch, TenantModel model);

  const std::string& name() const noexcept { return name_; }
  std::uint64_t epoch() const noexcept { return epoch_; }
  const TenantModel& model() const noexcept { return model_; }

  /// The baseline routing of the task's OD pairs (model defaults: ecmp
  /// flag and default failure set applied). Requests with extra failures
  /// recompute routing during problem assembly as usual.
  const routing::RoutingMatrix& routing() const noexcept { return routing_; }

  /// The borrowed view request execution runs against (serve/exec.hpp).
  /// Valid while this snapshot lives — pin the owning shared_ptr for the
  /// duration of any use.
  serve::ModelView view() const noexcept {
    return serve::ModelView{&model_.graph, &model_.task, &model_.loads,
                            &model_.problem};
  }

 private:
  std::string name_;
  std::uint64_t epoch_;
  TenantModel model_;
  routing::RoutingMatrix routing_;
};

}  // namespace netmon::tenant
