#include "tenant/solve_cache.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <utility>

#include "opt/gradient_projection.hpp"

namespace netmon::tenant {

namespace {

void put8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put32(std::string& out, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8)
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
}

void put64(std::string& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
}

/// Bit-exact double encoding: fingerprint equality means the solve sees
/// the exact same value, -0.0 vs 0.0 included.
void put_double(std::string& out, double v) {
  put64(out, std::bit_cast<std::uint64_t>(v));
}

std::vector<topo::LinkId> canonical_links(
    const std::vector<topo::LinkId>& links) {
  std::vector<topo::LinkId> sorted = links;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return sorted;
}

void put_links(std::string& out, const std::vector<topo::LinkId>& sorted) {
  put32(out, static_cast<std::uint32_t>(sorted.size()));
  for (const topo::LinkId id : sorted)
    put32(out, static_cast<std::uint32_t>(id));
}

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

double effective_theta(const TenantSnapshot& snapshot,
                       const serve::Request& request) {
  return request.theta > 0.0 ? request.theta
                             : snapshot.model().problem.theta;
}

/// Set symmetric-difference size of two sorted, deduped id vectors.
std::size_t symmetric_difference(const std::vector<topo::LinkId>& a,
                                 const std::vector<topo::LinkId>& b) {
  std::size_t diff = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++i, ++j;
    } else if (a[i] < b[j]) {
      ++diff, ++i;
    } else {
      ++diff, ++j;
    }
  }
  return diff + (a.size() - i) + (b.size() - j);
}

}  // namespace

SolveCache::SolveCache(CacheConfig config, obs::MetricsRegistry* metrics)
    : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  per_shard_cap_ = config_.max_entries == 0
                       ? 0
                       : (config_.max_entries + config_.shards - 1) /
                             config_.shards;
  shards_ = std::make_unique<Shard[]>(config_.shards);
  if (metrics != nullptr) {
    hits_ = metrics->counter("netmon_cache_hits_total",
                             "Solve cache exact fingerprint hits");
    misses_ = metrics->counter("netmon_cache_misses_total",
                               "Solve cache lookups that missed");
    warm_starts_ =
        metrics->counter("netmon_cache_warm_starts_total",
                         "Misses warm-started from a cached solution");
    insertions_ = metrics->counter("netmon_cache_insertions_total",
                                   "Responses stored in the solve cache");
    evictions_ = metrics->counter("netmon_cache_evictions_total",
                                  "LRU evictions from the solve cache");
    invalidations_ =
        metrics->counter("netmon_cache_invalidations_total",
                         "Entries dropped by explicit invalidation");
    entries_ = metrics->gauge("netmon_cache_entries",
                              "Responses currently cached");
  }
}

std::string SolveCache::fingerprint(const TenantSnapshot& snapshot,
                                    const serve::Request& request) {
  std::string key;
  key.reserve(64 + 4 * request.failed.size() + 8 * request.thetas.size() +
              8 * request.warm_start.size());
  key.append(snapshot.name());
  key.push_back('\0');
  put64(key, snapshot.epoch());
  put8(key, static_cast<std::uint8_t>(request.kind));
  put_double(key, effective_theta(snapshot, request));
  put_double(key, request.default_alpha > 0.0
                      ? request.default_alpha
                      : snapshot.model().problem.default_alpha);
  put_links(key, canonical_links(request.failed));
  put32(key, static_cast<std::uint32_t>(request.what_if.size()));
  for (const std::vector<topo::LinkId>& scenario : request.what_if)
    put_links(key, canonical_links(scenario));
  put32(key, static_cast<std::uint32_t>(request.thetas.size()));
  for (const double theta : request.thetas) put_double(key, theta);
  put32(key, static_cast<std::uint32_t>(request.warm_start.size()));
  for (const double rate : request.warm_start) put_double(key, rate);
  put32(key, request.iteration_budget);
  return key;
}

SolveCache::Shard& SolveCache::shard_for(const std::string& key) const {
  return shards_[fnv1a(key) % config_.shards];
}

std::optional<serve::Response> SolveCache::lookup(const std::string& key) {
  if (per_shard_cap_ == 0) {
    misses_n_.fetch_add(1, std::memory_order_relaxed);
    misses_.inc();
    return std::nullopt;
  }
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    misses_n_.fetch_add(1, std::memory_order_relaxed);
    misses_.inc();
    return std::nullopt;
  }
  shard.order.splice(shard.order.begin(), shard.order, it->second.lru);
  hits_n_.fetch_add(1, std::memory_order_relaxed);
  hits_.inc();
  return it->second.response;
}

bool SolveCache::insert(const std::string& key,
                        const TenantSnapshot& snapshot,
                        const serve::Request& request,
                        const serve::Response& response) {
  if (per_shard_cap_ == 0) return false;
  if (response.status != serve::ResponseStatus::kOk) return false;
  for (const core::PlacementSolution& solution : response.solutions)
    if (solution.status == opt::SolveStatus::kCancelled) return false;

  Entry entry;
  entry.response = response;
  entry.tenant = snapshot.name();
  entry.epoch = snapshot.epoch();
  entry.kind = request.kind;
  entry.theta = effective_theta(snapshot, request);
  entry.failed = canonical_links(request.failed);
  entry.seq = seq_.fetch_add(1, std::memory_order_relaxed);

  Shard& shard = shard_for(key);
  std::size_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      // Same fingerprint, same answer: refresh recency, keep one copy.
      shard.order.splice(shard.order.begin(), shard.order, it->second.lru);
      return false;
    }
    shard.order.push_front(key);
    entry.lru = shard.order.begin();
    shard.entries.emplace(key, std::move(entry));
    count_.fetch_add(1, std::memory_order_relaxed);
    while (shard.entries.size() > per_shard_cap_) {
      shard.entries.erase(shard.order.back());
      shard.order.pop_back();
      ++evicted;
    }
  }
  if (evicted > 0) {
    count_.fetch_sub(evicted, std::memory_order_relaxed);
    evicts_n_.fetch_add(evicted, std::memory_order_relaxed);
    evictions_.inc(evicted);
  }
  inserts_n_.fetch_add(1, std::memory_order_relaxed);
  insertions_.inc();
  entries_.set(static_cast<double>(count_.load(std::memory_order_relaxed)));
  return true;
}

std::optional<WarmStartDonor> SolveCache::nearest(
    const TenantSnapshot& snapshot, const serve::Request& request) const {
  if (!config_.warm_start || per_shard_cap_ == 0) return std::nullopt;
  const double theta = effective_theta(snapshot, request);
  const std::vector<topo::LinkId> failed = canonical_links(request.failed);

  std::optional<WarmStartDonor> best;
  double best_distance = std::numeric_limits<double>::infinity();
  std::uint64_t best_seq = 0;
  for (std::size_t s = 0; s < config_.shards; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, entry] : shard.entries) {
      if (entry.tenant != snapshot.name() || entry.epoch != snapshot.epoch())
        continue;
      if (entry.response.solutions.empty() ||
          entry.response.solutions.front().rates.empty())
        continue;
      double distance =
          std::abs(std::log(entry.theta / theta)) +
          static_cast<double>(symmetric_difference(entry.failed, failed));
      if (entry.kind != request.kind) distance += 0.5;
      // Deterministic winner for a given cache state: distance first,
      // oldest insertion breaks ties.
      if (distance < best_distance ||
          (distance == best_distance && best && entry.seq < best_seq)) {
        best_distance = distance;
        best_seq = entry.seq;
        best = WarmStartDonor{entry.response.solutions.front().rates,
                              distance};
      }
    }
  }
  return best;
}

void SolveCache::on_warm_start() noexcept {
  warm_n_.fetch_add(1, std::memory_order_relaxed);
  warm_starts_.inc();
}

std::size_t SolveCache::invalidate(const std::string& tenant) {
  std::size_t dropped = 0;
  for (std::size_t s = 0; s < config_.shards; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      if (it->second.tenant == tenant) {
        shard.order.erase(it->second.lru);
        it = shard.entries.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  if (dropped > 0) {
    count_.fetch_sub(dropped, std::memory_order_relaxed);
    invalidations_.inc(dropped);
    entries_.set(static_cast<double>(count_.load(std::memory_order_relaxed)));
  }
  return dropped;
}

std::size_t SolveCache::size() const {
  return count_.load(std::memory_order_relaxed);
}

}  // namespace netmon::tenant
