// Keyed solve cache over canonicalized request fingerprints.
//
// Every served query is a pure function of (tenant snapshot, request),
// so an answer can be replayed bit-identically for any request with the
// same canonical fingerprint — without invoking the solver at all. The
// fingerprint covers exactly the inputs that reach the solve:
//
//   tenant name + snapshot epoch         (a swap invalidates implicitly)
//   kind
//   effective theta / default_alpha      (request override or snapshot
//                                         default — canonicalized, so an
//                                         explicit default matches an
//                                         omitted one)
//   failed links, sorted + deduped       (a set in routing; order never
//                                         affects the answer)
//   what-if scenarios, order preserved,  (scenario order orders the
//     each sorted + deduped               response; within a scenario it
//                                         is a set)
//   sweep thetas, order preserved
//   warm-start rates, bit-exact          (the start point can change
//                                         iterate paths)
//   iteration budget                     (deterministic truncation knob)
//
// deadline_ms is deliberately excluded: a wall-clock deadline changes
// when a solve is cancelled, never what a completed solve returns, and
// only completed (kOk) responses are cached.
//
// Misses can still help: nearest() finds the closest cached solution of
// the same tenant+epoch and donates its rates as a warm start, reusing
// core::BatchSolver's resolve_warm machinery (projection onto the new
// feasible set), which converges in far fewer iterations when the
// scenarios are close — the common fleet pattern.
//
// The cache is sharded by fingerprint hash (per-shard mutex + LRU), so
// concurrent submit threads rarely contend.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "sampling/effective_rate.hpp"
#include "serve/request.hpp"
#include "tenant/snapshot.hpp"
#include "topo/graph.hpp"

namespace netmon::tenant {

struct CacheConfig {
  /// Shard count (rounded up to >= 1). More shards, less contention.
  std::size_t shards = 8;
  /// Total cached responses across shards; 0 disables the cache
  /// entirely (every lookup misses, nothing is stored).
  std::size_t max_entries = 256;
  /// When false, nearest() never donates (exact hits still serve).
  bool warm_start = true;
};

/// A warm-start donor: the cached solution's rates plus where they came
/// from (for logging/metrics).
struct WarmStartDonor {
  sampling::RateVector rates;
  double distance = 0.0;
};

class SolveCache {
 public:
  /// Registers the netmon_cache_* metric family on `metrics` when set
  /// (borrowed; must outlive the cache).
  explicit SolveCache(CacheConfig config = {},
                      obs::MetricsRegistry* metrics = nullptr);

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// The canonical fingerprint of `request` resolved against `snapshot`
  /// (see the header comment for what it covers). Pure.
  static std::string fingerprint(const TenantSnapshot& snapshot,
                                 const serve::Request& request);

  /// Exact hit: a copy of the cached Response (solutions / sweep /
  /// accuracy bit-identical to the original solve), or nullopt. Bumps
  /// LRU recency and the hit/miss counters. The caller re-stamps id,
  /// tenant, cache outcome, and transport metadata.
  std::optional<serve::Response> lookup(const std::string& key);

  /// Stores `response` under `key` if it is cacheable: status kOk and
  /// every solution completed (no kCancelled truncations). Returns
  /// whether it was stored. Evicts the shard's LRU tail past capacity.
  bool insert(const std::string& key, const TenantSnapshot& snapshot,
              const serve::Request& request, const serve::Response& response);

  /// The nearest cached solution of the same tenant + epoch, as a
  /// warm-start donor, or nullopt (cache empty for that epoch, or
  /// warm_start disabled). Distance: |log(theta_a/theta_b)| + the failed
  /// set symmetric difference + a flat penalty across kinds; insertion
  /// order breaks ties, so the donor is deterministic for a given cache
  /// state.
  std::optional<WarmStartDonor> nearest(const TenantSnapshot& snapshot,
                                        const serve::Request& request) const;

  /// Drops every entry of `tenant` (all epochs); returns how many.
  /// publish() epoch bumps already unreference old entries — this is for
  /// explicit reclamation (tenant removed, operator flush).
  std::size_t invalidate(const std::string& tenant);

  std::size_t size() const;
  const CacheConfig& config() const noexcept { return config_; }

  std::uint64_t hits() const noexcept { return hits_n_.load(); }
  std::uint64_t misses() const noexcept { return misses_n_.load(); }
  std::uint64_t warm_starts() const noexcept { return warm_n_.load(); }
  std::uint64_t insertions() const noexcept { return inserts_n_.load(); }
  std::uint64_t evictions() const noexcept { return evicts_n_.load(); }

  /// Counts a nearest() donation actually used (the service calls this
  /// when it installs the donor into the request).
  void on_warm_start() noexcept;

 private:
  struct Entry {
    serve::Response response;
    // Similarity metadata for nearest().
    std::string tenant;
    std::uint64_t epoch = 0;
    serve::RequestKind kind = serve::RequestKind::kSolve;
    double theta = 0.0;
    std::vector<topo::LinkId> failed;  // sorted + deduped
    std::uint64_t seq = 0;             // global insertion order
    std::list<std::string>::iterator lru;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Entry> entries;
    /// Most-recent first; holds the map keys.
    std::list<std::string> order;
  };

  Shard& shard_for(const std::string& key) const;

  CacheConfig config_;
  std::size_t per_shard_cap_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::size_t> count_{0};

  std::atomic<std::uint64_t> hits_n_{0}, misses_n_{0}, warm_n_{0},
      inserts_n_{0}, evicts_n_{0};
  obs::Counter hits_, misses_, warm_starts_, insertions_, evictions_,
      invalidations_;
  obs::Gauge entries_;
};

}  // namespace netmon::tenant
