// Umbrella header for the placement query service.
//
// serve/ turns the optimizer into a long-running service: transports
// submit placement queries (solves, failure what-ifs, theta sweeps,
// accuracy reports) into a bounded queue; a dispatcher coalesces
// compatible requests into core::BatchSolver batches and answers every
// admitted request with exactly one typed Response. See
// serve/server.hpp for the dataflow and the backpressure contract.
#pragma once

#include "serve/batcher.hpp"        // IWYU pragma: export
#include "serve/exec.hpp"           // IWYU pragma: export
#include "serve/loopback.hpp"       // IWYU pragma: export
#include "serve/queue.hpp"          // IWYU pragma: export
#include "serve/request.hpp"        // IWYU pragma: export
#include "serve/server.hpp"         // IWYU pragma: export
#include "serve/stats.hpp"          // IWYU pragma: export
#include "serve/tcp_transport.hpp"  // IWYU pragma: export
#include "serve/transport.hpp"      // IWYU pragma: export
#include "serve/wire.hpp"           // IWYU pragma: export
