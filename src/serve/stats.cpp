#include "serve/stats.hpp"

#include <bit>
#include <cmath>
#include <sstream>

namespace netmon::serve {

namespace {

std::size_t bucket_of(double value) noexcept {
  if (!(value > 1.0)) return 0;  // <= 1 (and NaN) land in bucket 0
  const double clamped = std::min(value, 1e18);
  const auto ceiled = static_cast<std::uint64_t>(std::ceil(clamped));
  const std::size_t bits = std::bit_width(ceiled - 1) + 1;
  return std::min<std::size_t>(bits - 1, 39);
}

}  // namespace

void Histogram::add(double value) noexcept {
  stats_.add(value);
  ++buckets_[bucket_of(value)];
}

double Histogram::approx_quantile(double q) const noexcept {
  const std::uint64_t n = stats_.count();
  if (n == 0) return 0.0;
  const double clamped_q = std::min(std::max(q, 0.0), 1.0);
  const auto rank = static_cast<std::uint64_t>(std::ceil(clamped_q * n));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      const double upper = b == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(b));
      return std::min(upper, stats_.max());
    }
  }
  return stats_.max();
}

void ServeStats::on_enqueued(std::size_t queue_depth_after) {
  enqueued_.fetch_add(1);
  std::lock_guard<std::mutex> lock(mutex_);
  queue_depth_.add(static_cast<double>(queue_depth_after));
}

void ServeStats::on_batch(std::size_t batch_size,
                          std::size_t problem_count) {
  batches_.fetch_add(1);
  problems_solved_.fetch_add(problem_count);
  std::lock_guard<std::mutex> lock(mutex_);
  batch_size_.add(static_cast<double>(batch_size));
}

void ServeStats::on_served(double queue_ms, double solve_ms) {
  served_ok_.fetch_add(1);
  std::lock_guard<std::mutex> lock(mutex_);
  queue_ms_.add(queue_ms);
  solve_ms_.add(solve_ms);
}

StatsSnapshot ServeStats::snapshot() const {
  StatsSnapshot s;
  s.submitted = submitted_.load();
  s.enqueued = enqueued_.load();
  s.rejected_queue_full = rejected_full_.load();
  s.rejected_shutdown = rejected_shutdown_.load();
  s.bad_requests = bad_requests_.load();
  s.expired_in_queue = expired_in_queue_.load();
  s.expired_mid_solve = expired_mid_solve_.load();
  s.served_ok = served_ok_.load();
  s.batches = batches_.load();
  s.problems_solved = problems_solved_.load();

  std::lock_guard<std::mutex> lock(mutex_);
  const auto fill = [](const Histogram& h, double& mean, double* max,
                       double& p99) {
    const RunningStats& r = h.summary();
    mean = r.count() ? r.mean() : 0.0;
    if (max != nullptr) *max = r.count() ? r.max() : 0.0;
    p99 = h.approx_quantile(0.99);
  };
  fill(queue_depth_, s.queue_depth_mean, &s.queue_depth_max,
       s.queue_depth_p99);
  fill(batch_size_, s.batch_size_mean, &s.batch_size_max, s.batch_size_p99);
  fill(queue_ms_, s.queue_ms_mean, nullptr, s.queue_ms_p99);
  fill(solve_ms_, s.solve_ms_mean, nullptr, s.solve_ms_p99);
  return s;
}

void ServeStats::fill(BenchReport& report) const {
  const StatsSnapshot s = snapshot();
  report.result("counters")
      .metric("submitted", static_cast<double>(s.submitted))
      .metric("enqueued", static_cast<double>(s.enqueued))
      .metric("rejected_queue_full",
              static_cast<double>(s.rejected_queue_full))
      .metric("rejected_shutdown", static_cast<double>(s.rejected_shutdown))
      .metric("bad_requests", static_cast<double>(s.bad_requests))
      .metric("expired_in_queue", static_cast<double>(s.expired_in_queue))
      .metric("expired_mid_solve", static_cast<double>(s.expired_mid_solve))
      .metric("served_ok", static_cast<double>(s.served_ok))
      .metric("batches", static_cast<double>(s.batches))
      .metric("problems_solved", static_cast<double>(s.problems_solved));
  report.result("queue_depth")
      .metric("mean", s.queue_depth_mean)
      .metric("max", s.queue_depth_max)
      .metric("p99", s.queue_depth_p99);
  report.result("batch_size")
      .metric("mean", s.batch_size_mean)
      .metric("max", s.batch_size_max)
      .metric("p99", s.batch_size_p99);
  report.result("latency_ms")
      .metric("queue_mean", s.queue_ms_mean)
      .metric("queue_p99", s.queue_ms_p99)
      .metric("solve_mean", s.solve_ms_mean)
      .metric("solve_p99", s.solve_ms_p99);
}

std::string ServeStats::json(const std::string& name,
                             unsigned threads) const {
  BenchReport report(name, threads);
  fill(report);
  std::ostringstream out;
  report.write(out);
  return out.str();
}

}  // namespace netmon::serve
