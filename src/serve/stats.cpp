#include "serve/stats.hpp"

#include <sstream>
#include <vector>

namespace netmon::serve {

namespace {

/// Power-of-two bucket bounds, the historical serve histogram shape:
/// bucket 0 counts values <= 1, bucket b counts (2^(b-1), 2^b].
std::vector<double> pow2_bounds(int max_exp) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(max_exp) + 1);
  double bound = 1.0;
  for (int e = 0; e <= max_exp; ++e, bound *= 2.0) bounds.push_back(bound);
  return bounds;
}

std::uint64_t as_count(const obs::MetricSnapshot* metric) noexcept {
  return metric != nullptr ? static_cast<std::uint64_t>(metric->value) : 0;
}

}  // namespace

ServeStats::ServeStats()
    : owned_(std::make_unique<obs::MetricsRegistry>()),
      registry_(owned_.get()) {
  register_metrics();
}

ServeStats::ServeStats(obs::MetricsRegistry& registry)
    : registry_(&registry) {
  register_metrics();
}

void ServeStats::register_metrics() {
  obs::MetricsRegistry& r = *registry_;
  submitted_ = r.counter("netmon_serve_submitted_total",
                         "Requests submitted (accepted or not)");
  enqueued_ = r.counter("netmon_serve_enqueued_total", "Requests admitted");
  rejected_full_ = r.counter("netmon_serve_rejected_queue_full_total",
                             "Requests rejected: queue full");
  rejected_shutdown_ = r.counter("netmon_serve_rejected_shutdown_total",
                                 "Requests rejected: server stopping");
  bad_requests_ =
      r.counter("netmon_serve_bad_requests_total", "Requests failing validation");
  expired_in_queue_ = r.counter("netmon_serve_expired_in_queue_total",
                                "Deadlines missed while queued");
  expired_mid_solve_ = r.counter("netmon_serve_expired_mid_solve_total",
                                 "Deadlines missed during the solve");
  served_ok_ = r.counter("netmon_serve_served_total", "Requests served");
  batches_ = r.counter("netmon_serve_batches_total", "Batches dispatched");
  problems_solved_ = r.counter("netmon_serve_problems_solved_total",
                               "Placement problems solved");
  // Depth/size: pow2 buckets to 2^16; latencies: pow2 milliseconds to
  // ~134 s. Per-shard exact max keeps StatsSnapshot max fields exact.
  queue_depth_ = r.histogram("netmon_serve_queue_depth", pow2_bounds(16),
                             "Queue depth after each admit");
  batch_size_ = r.histogram("netmon_serve_batch_size", pow2_bounds(16),
                            "Requests per dispatched batch");
  queue_ms_ = r.histogram("netmon_serve_queue_ms", pow2_bounds(27),
                          "Admit-to-dispatch latency, ms");
  solve_ms_ = r.histogram("netmon_serve_solve_ms", pow2_bounds(27),
                          "Batch solve latency share, ms");
}

StatsSnapshot ServeStats::snapshot() const {
  const obs::RegistrySnapshot reg = registry_->snapshot();
  StatsSnapshot s;
  s.submitted = as_count(reg.find("netmon_serve_submitted_total"));
  s.enqueued = as_count(reg.find("netmon_serve_enqueued_total"));
  s.rejected_queue_full =
      as_count(reg.find("netmon_serve_rejected_queue_full_total"));
  s.rejected_shutdown =
      as_count(reg.find("netmon_serve_rejected_shutdown_total"));
  s.bad_requests = as_count(reg.find("netmon_serve_bad_requests_total"));
  s.expired_in_queue =
      as_count(reg.find("netmon_serve_expired_in_queue_total"));
  s.expired_mid_solve =
      as_count(reg.find("netmon_serve_expired_mid_solve_total"));
  s.served_ok = as_count(reg.find("netmon_serve_served_total"));
  s.batches = as_count(reg.find("netmon_serve_batches_total"));
  s.problems_solved =
      as_count(reg.find("netmon_serve_problems_solved_total"));

  if (const auto* h = reg.find("netmon_serve_queue_depth")) {
    s.queue_depth_mean = h->mean();
    s.queue_depth_max = h->max;
    s.queue_depth_p99 = h->approx_quantile(0.99);
  }
  if (const auto* h = reg.find("netmon_serve_batch_size")) {
    s.batch_size_mean = h->mean();
    s.batch_size_max = h->max;
    s.batch_size_p99 = h->approx_quantile(0.99);
  }
  if (const auto* h = reg.find("netmon_serve_queue_ms")) {
    s.queue_ms_mean = h->mean();
    s.queue_ms_p99 = h->approx_quantile(0.99);
  }
  if (const auto* h = reg.find("netmon_serve_solve_ms")) {
    s.solve_ms_mean = h->mean();
    s.solve_ms_p99 = h->approx_quantile(0.99);
  }
  return s;
}

void ServeStats::fill(BenchReport& report) const {
  const StatsSnapshot s = snapshot();
  report.result("counters")
      .metric("submitted", static_cast<double>(s.submitted))
      .metric("enqueued", static_cast<double>(s.enqueued))
      .metric("rejected_queue_full",
              static_cast<double>(s.rejected_queue_full))
      .metric("rejected_shutdown", static_cast<double>(s.rejected_shutdown))
      .metric("bad_requests", static_cast<double>(s.bad_requests))
      .metric("expired_in_queue", static_cast<double>(s.expired_in_queue))
      .metric("expired_mid_solve", static_cast<double>(s.expired_mid_solve))
      .metric("served_ok", static_cast<double>(s.served_ok))
      .metric("batches", static_cast<double>(s.batches))
      .metric("problems_solved", static_cast<double>(s.problems_solved));
  report.result("queue_depth")
      .metric("mean", s.queue_depth_mean)
      .metric("max", s.queue_depth_max)
      .metric("p99", s.queue_depth_p99);
  report.result("batch_size")
      .metric("mean", s.batch_size_mean)
      .metric("max", s.batch_size_max)
      .metric("p99", s.batch_size_p99);
  report.result("latency_ms")
      .metric("queue_mean", s.queue_ms_mean)
      .metric("queue_p99", s.queue_ms_p99)
      .metric("solve_mean", s.solve_ms_mean)
      .metric("solve_p99", s.solve_ms_p99);
}

std::string ServeStats::json(const std::string& name,
                             unsigned threads) const {
  BenchReport report(name, threads);
  fill(report);
  std::ostringstream out;
  report.write(out);
  return out.str();
}

}  // namespace netmon::serve
