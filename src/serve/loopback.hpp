// In-process transport: submits directly to a Service, optionally
// round-tripping request and response through the wire codec.
//
// Loopback is the deterministic reference transport — tests and examples
// use it to talk to the service exactly the way a remote client would
// (typed rejections, deadlines, batching) with no sockets involved. The
// `via_wire` mode encodes every request and decodes every response
// through serve/wire, so it also proves the codec is lossless on live
// traffic: responses are bit-identical either way, and bit-identical to
// the same fleet sent over serve::TcpClient.
#pragma once

#include <future>
#include <memory>
#include <utility>

#include "serve/transport.hpp"
#include "serve/wire.hpp"

namespace netmon::serve {

class LoopbackTransport final : public Transport {
 public:
  /// Borrows the service; `via_wire` routes every request/response
  /// through encode/decode as a real byte transport would.
  explicit LoopbackTransport(Service& service, bool via_wire = false)
      : service_(service), via_wire_(via_wire) {}

  std::future<Response> send(Request request) override {
    auto promise = std::make_shared<std::promise<Response>>();
    std::future<Response> future = promise->get_future();
    if (!via_wire_) {
      service_.submit(std::move(request),
                      [promise](Response&& response) {
                        promise->set_value(std::move(response));
                      });
    } else {
      Request decoded = decode_request(encode_request(request));
      service_.submit(std::move(decoded),
                      [promise](Response&& response) {
                        promise->set_value(
                            decode_response(encode_response(response)));
                      });
    }
    return future;
  }

  Service& service() noexcept { return service_; }
  bool via_wire() const noexcept { return via_wire_; }

 private:
  Service& service_;
  bool via_wire_;
};

}  // namespace netmon::serve
