// In-process transport: submits directly to a Server, optionally
// round-tripping request and response through the wire codec.
//
// Loopback is the deterministic reference transport — tests and examples
// use it to talk to the service exactly the way a remote client would
// (typed rejections, deadlines, batching) with no sockets involved. The
// `via_wire` mode encodes every request and decodes every response
// through serve/wire, so it also proves the codec is lossless on live
// traffic: responses are bit-identical either way.
#pragma once

#include <future>
#include <utility>

#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace netmon::serve {

class LoopbackTransport {
 public:
  /// Borrows the server; `via_wire` routes every request/response through
  /// encode/decode as a real byte transport would.
  explicit LoopbackTransport(Server& server, bool via_wire = false)
      : server_(server), via_wire_(via_wire) {}

  /// Fire-and-forget submit; the future always completes (typed).
  std::future<Response> send(Request request) {
    if (!via_wire_) return server_.submit(std::move(request));
    Request decoded = decode_request(encode_request(request));
    std::future<Response> inner = server_.submit(std::move(decoded));
    // Re-frame the response on the way back, asynchronously, so send()
    // stays non-blocking.
    return std::async(std::launch::deferred,
                      [inner = std::move(inner)]() mutable {
                        return decode_response(
                            encode_response(inner.get()));
                      });
  }

  /// Blocking request/response call.
  Response call(Request request) { return send(std::move(request)).get(); }

  Server& server() noexcept { return server_; }
  bool via_wire() const noexcept { return via_wire_; }

 private:
  Server& server_;
  bool via_wire_;
};

}  // namespace netmon::serve
