// Binary wire format for the placement query service.
//
// Frames are self-describing byte strings a stream transport (TCP, a
// pipe, a file of captured queries) can reassemble without parsing
// bodies. The v2 frame puts the protocol magic FIRST so a TCP peer
// validates who it is talking to before trusting any length field:
//
//   'N' 'M' | u8 version (=2) | u8 type (1=request, 2=response)
//   | u32 body length | body
//
// v2 bodies carry the tenant routing fields (Request::tenant,
// Response::tenant / Response::cache). The legacy v1 frame
// (`u32 length | 'N' 'M' | 1 | type | body`, no tenant fields) is still
// decoded — captured loopback traffic and old clients keep working —
// but encoders emit v2 only. The two layouts are unambiguous from the
// first byte: a v1 frame starts with the big-endian length prefix whose
// high byte is at most 0x06 (the payload cap is ~100 MB), while v2
// starts with 'N' = 0x4E.
//
// All integers are big-endian (network byte order, same convention as
// netflow/v5_codec); doubles travel as the big-endian bytes of their
// IEEE-754 bit pattern, so a decode(encode(x)) round trip is bit-exact —
// the serving layer's determinism guarantee survives the wire. Decoders
// are defensive: truncated, corrupt, or absurdly-sized frames throw
// netmon::Error, never read out of bounds, and never allocate
// attacker-controlled amounts of memory.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "serve/request.hpp"

namespace netmon::serve {

/// Frame magic + versions.
inline constexpr std::uint8_t kWireMagic0 = 'N';
inline constexpr std::uint8_t kWireMagic1 = 'M';
/// Current (magic-first, tenant-aware) frame layout.
inline constexpr std::uint8_t kWireVersion = 2;
/// Legacy length-first layout from the loopback-only era; decode only.
inline constexpr std::uint8_t kWireLegacyVersion = 1;
/// Frame type bytes.
inline constexpr std::uint8_t kWireRequest = 1;
inline constexpr std::uint8_t kWireResponse = 2;
/// Upper bound on any element count in a frame (links, scenarios, OD
/// rows, string bytes). Corrupt length fields beyond this are rejected
/// before any allocation.
inline constexpr std::uint32_t kWireMaxCount = 1u << 22;
/// Upper bound on a frame body: a handful of scalar fields plus at most
/// a few count-bounded arrays of 24-byte elements. Length prefixes
/// beyond this are a corrupt stream, not a large frame.
inline constexpr std::uint64_t kWireMaxBody = 64 + 24ULL * kWireMaxCount;
/// v2 header size: magic(2) + version(1) + type(1) + body length(4).
inline constexpr std::size_t kWireHeaderSize = 8;

/// Encodes one request/response as a single v2 frame.
std::vector<std::uint8_t> encode_request(const Request& request);
std::vector<std::uint8_t> encode_response(const Response& response);

/// Decodes one complete frame (v2 or legacy v1). Throws netmon::Error on
/// truncation, bad magic/version, wrong frame type, or corrupt field
/// values. Legacy frames decode with empty tenant / CacheOutcome::kNone.
Request decode_request(std::span<const std::uint8_t> frame);
Response decode_response(std::span<const std::uint8_t> frame);

/// Stream reassembly helper: the total size of the frame starting at
/// `buffer[0]`, or 0 when too few bytes are buffered to tell (v2 needs
/// its 8-byte header, legacy its 4-byte length prefix). Throws
/// netmon::Error as soon as the buffered prefix cannot start any valid
/// frame (bad magic/version, absurd length), so transports fail fast
/// instead of waiting for 4 GiB.
std::size_t frame_size(std::span<const std::uint8_t> buffer);

}  // namespace netmon::serve
