// Binary wire format for the placement query service.
//
// Frames are length-prefixed so a byte-stream transport (TCP, a pipe, a
// file of captured queries) can reassemble them without parsing bodies:
//
//   u32 length  | payload (`length` bytes)
//   payload  =  'N' 'M' | u8 version (=1) | u8 type (1=request,
//               2=response) | body
//
// All integers are big-endian (network byte order, same convention as
// netflow/v5_codec); doubles travel as the big-endian bytes of their
// IEEE-754 bit pattern, so a decode(encode(x)) round trip is bit-exact —
// the serving layer's determinism guarantee survives the wire. Decoders
// are defensive: truncated, corrupt, or absurdly-sized frames throw
// netmon::Error, never read out of bounds, and never allocate
// attacker-controlled amounts of memory.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "serve/request.hpp"

namespace netmon::serve {

/// Frame payload magic + version.
inline constexpr std::uint8_t kWireMagic0 = 'N';
inline constexpr std::uint8_t kWireMagic1 = 'M';
inline constexpr std::uint8_t kWireVersion = 1;
/// Frame type bytes.
inline constexpr std::uint8_t kWireRequest = 1;
inline constexpr std::uint8_t kWireResponse = 2;
/// Upper bound on any element count in a frame (links, scenarios, OD
/// rows, string bytes). Corrupt length fields beyond this are rejected
/// before any allocation.
inline constexpr std::uint32_t kWireMaxCount = 1u << 22;

/// Encodes one request/response as a single length-prefixed frame.
std::vector<std::uint8_t> encode_request(const Request& request);
std::vector<std::uint8_t> encode_response(const Response& response);

/// Decodes one complete frame. Throws netmon::Error on truncation, bad
/// magic/version, wrong frame type, or corrupt field values.
Request decode_request(std::span<const std::uint8_t> frame);
Response decode_response(std::span<const std::uint8_t> frame);

/// Stream reassembly helper: the total size of the frame starting at
/// `buffer[0]`, or 0 when fewer than 4 bytes are buffered. Throws
/// netmon::Error when the length prefix itself is absurd (corrupt
/// stream), so transports fail fast instead of waiting for 4 GiB.
std::size_t frame_size(std::span<const std::uint8_t> buffer);

}  // namespace netmon::serve
